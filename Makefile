GO ?= go

.PHONY: build test bench fmt vet ci

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full test suite under the race detector
test:
	$(GO) test -race ./...

## bench: one-iteration benchmark smoke run (perf code must keep compiling and running)
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

## fmt: fail if any file needs gofmt
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## vet: static analysis
vet:
	$(GO) vet ./...

## ci: exactly what .github/workflows/ci.yml runs
ci: fmt vet build test bench
