GO ?= go
STATICCHECK ?= staticcheck

.PHONY: build test bench bench-smoke fmt vet staticcheck ci

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full test suite under the race detector
test:
	$(GO) test -race ./...

## bench: one-iteration benchmark smoke run (perf code must keep compiling and running)
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

## bench-smoke: run the system-path experiments end to end (E9 scaled
## DSP, E10 gateway, E11 delta re-publish, E12 durable WAL store,
## E13 segmented durable tier)
bench-smoke:
	$(GO) run ./cmd/sdsbench E9 E10 E11 E12 E13

## fmt: fail if any file needs gofmt
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## vet: static analysis
vet:
	$(GO) vet ./...

## staticcheck: deeper static analysis (skipped with a note when the
## tool is not installed; CI installs it)
staticcheck:
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2025.1.1, the version CI pins)"; \
	fi

## ci: exactly what .github/workflows/ci.yml runs
ci: fmt vet staticcheck build test bench bench-smoke
