GO ?= go
STATICCHECK ?= staticcheck

# Newest checked-in perf baseline (BENCH_<pr>.json, version-sorted) —
# what bench-compare gates against. See docs/BENCHMARKS.md.
BENCH_BASELINE ?= $(shell ls BENCH_*.json 2>/dev/null | sort -V | tail -1)
# CI runners differ wildly from the machines baselines are recorded on,
# so the compare threshold is generous: only a gated metric that gets
# >50% worse fails the build.
BENCH_THRESHOLD ?= 0.5

.PHONY: build test test-nommap test-nosendfile bench bench-smoke bench-json bench-compare bench-chain gateway-soak fuzz-smoke fmt vet staticcheck ci

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full test suite under the race detector
test:
	$(GO) test -race ./...

## test-nommap: exercise the portable (heap-copy) checkpoint read path —
## the fallback non-unix platforms and dspd -mmap=false take
test-nommap:
	$(GO) test -tags nommap ./internal/dsp/

## test-nosendfile: exercise the writev-only cold serve path — what
## non-linux platforms and dspd -sendfile=false take — plus the fully
## portable combination (no mmap tier, no sendfile)
test-nosendfile:
	$(GO) test -tags nosendfile ./internal/dsp/
	$(GO) test -tags nommap,nosendfile ./internal/dsp/

## bench: one-iteration benchmark smoke run (perf code must keep compiling and running)
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

## bench-smoke: run the system-path experiments end to end (E9 scaled
## DSP, E10 gateway, E11 delta re-publish, E12 durable WAL store,
## E13 segmented durable tier, E14 session-pooled gateway daemon)
bench-smoke:
	$(GO) run ./cmd/sdsbench E9 E10 E11 E12 E13 E14

## bench-json: run E9-E14 and write the machine-readable result file
## (bench-run.json, the sds-bench-result/v1 schema of docs/BENCHMARKS.md)
bench-json:
	$(GO) run ./cmd/sdsbench -json bench-run.json -label local E9 E10 E11 E12 E13 E14

## bench-compare: run E9-E14 and diff the result against the newest
## checked-in BENCH_*.json; fails on a gated-metric regression beyond
## BENCH_THRESHOLD
bench-compare: bench-json
	@if [ -z "$(BENCH_BASELINE)" ]; then \
		echo "no BENCH_*.json baseline checked in; skipping compare"; \
	else \
		$(GO) run ./cmd/sdsbench -compare -threshold $(BENCH_THRESHOLD) $(BENCH_BASELINE) bench-run.json; \
	fi

## bench-chain: verify the checked-in baselines gate against each other
## in sequence (BENCH_7 -> BENCH_8 and so on): each cut must pass the
## compare gate against its predecessor, so the trajectory file never
## hides a regression between two commits
bench-chain:
	@set -e; prev=""; \
	for f in $$(ls BENCH_*.json 2>/dev/null | sort -V); do \
		if [ -n "$$prev" ]; then \
			echo "gate: $$prev -> $$f"; \
			$(GO) run ./cmd/sdsbench -compare -threshold $(BENCH_THRESHOLD) $$prev $$f; \
		fi; \
		prev=$$f; \
	done; \
	if [ -z "$$prev" ]; then echo "no BENCH_*.json checked in"; fi

## gateway-soak: hammer gatewayd over loopback TCP under the race
## detector — hundreds of subjects churning connect/query/disconnect,
## session-pool leak checks, drain-mid-query, both stats surfaces
gateway-soak:
	$(GO) test -race -count=2 -run 'TestGatewayd' ./internal/gateway/

## fuzz-smoke: short fuzz runs over the decrypt surfaces (stored blocks
## and sealed blobs on arbitrary/mutated inputs); CI runs this on every
## push, longer runs stay manual
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzDecryptBlock -fuzztime=10s ./internal/secure/
	$(GO) test -run=NONE -fuzz=FuzzDecryptBlob -fuzztime=10s ./internal/secure/

## fmt: fail if any file needs gofmt
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## vet: static analysis
vet:
	$(GO) vet ./...

## staticcheck: deeper static analysis (skipped with a note when the
## tool is not installed; CI installs it)
staticcheck:
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2025.1.1, the version CI pins)"; \
	fi

## ci: exactly what .github/workflows/ci.yml runs
ci: fmt vet staticcheck build test test-nommap test-nosendfile gateway-soak fuzz-smoke bench bench-compare bench-chain
