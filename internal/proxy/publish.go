package proxy

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/accessrule"
	"repro/internal/card"
	"repro/internal/docenc"
	"repro/internal/dsp"
	"repro/internal/secure"
	"repro/internal/xmlstream"
)

// Publisher is the document-owner side: it encodes documents and seals
// rule sets for the DSP. Three publish shapes:
//
//   - PublishDocument: the historical buffered one-shot — encode the
//     whole container in memory, upload it in one PutDocument.
//   - PublishStream: the io-driven path — the streaming encoder hands
//     blocks to the store's update handshake as they are produced, so
//     memory stays bounded regardless of document size.
//   - Republish: the delta path — encode the new tree as the successor
//     of the stored version and upload only the changed block runs,
//     atomically, with the version negotiated from the store.
type Publisher struct {
	Store dsp.Store
}

// streamBatchBlocks bounds one PutBlocks round trip of the streaming
// publish path.
const streamBatchBlocks = 256

// streamBatchBytes bounds the staged bytes of one round trip, well under
// the wire frame limit even with maximal blocks.
const streamBatchBytes = 4 << 20

// PublishDocument encodes and uploads a document in one buffered step.
func (p *Publisher) PublishDocument(root *xmlstream.Node, opts docenc.EncodeOptions) (*docenc.EncodeInfo, error) {
	container, info, err := docenc.Encode(root, opts)
	if err != nil {
		return nil, err
	}
	if err := p.Store.PutDocument(container); err != nil {
		return nil, err
	}
	return info, nil
}

// PublishStream encodes and uploads a document in a single streaming
// pass: blocks leave for the store as the encoder produces them, through
// the begin/commit handshake, so the upload is atomic and nothing larger
// than one batch is resident. When the document already exists its
// version is negotiated (opts.Version 0 means "stored version plus
// one"); a store without the handshake falls back to the buffered path.
func (p *Publisher) PublishStream(root *xmlstream.Node, opts docenc.EncodeOptions) (*docenc.EncodeInfo, error) {
	base, exists, err := p.currentVersion(opts.DocID)
	if err != nil {
		return nil, err
	}
	if exists {
		if opts.Version == 0 {
			opts.Version = base + 1
		} else if opts.Version <= base {
			return nil, fmt.Errorf("proxy: publish version %d does not advance stored version %d",
				opts.Version, base)
		}
	}

	up, ok := p.Store.(dsp.DocUpdater)
	if !ok {
		return p.PublishDocument(root, opts)
	}
	enc, err := docenc.NewEncoder(root, opts)
	if err != nil {
		return nil, err
	}
	if !exists {
		base = 0
	}
	token, err := up.BeginUpdate(enc.Header(), base)
	if err != nil {
		return nil, err
	}
	batch := newBlockBatcher(up, token)
	if err := enc.Run(batch.add); err != nil {
		_ = up.AbortUpdate(token)
		return nil, err
	}
	if err := batch.flush(); err != nil {
		_ = up.AbortUpdate(token)
		return nil, err
	}
	if err := up.CommitUpdate(token); err != nil {
		return nil, err
	}
	return enc.Info(), nil
}

// blockBatcher groups the encoder's sequential blocks into bounded
// PutBlocks round trips.
type blockBatcher struct {
	up    dsp.DocUpdater
	token uint64
	start int
	buf   [][]byte
	bytes int
}

func newBlockBatcher(up dsp.DocUpdater, token uint64) *blockBatcher {
	return &blockBatcher{up: up, token: token, start: -1}
}

func (b *blockBatcher) add(idx int, stored []byte) error {
	if b.start < 0 {
		b.start = idx
	}
	// The encoder owns no buffer for stored blocks (EncryptBlock
	// allocates), so retaining the slice is safe.
	b.buf = append(b.buf, stored)
	b.bytes += len(stored)
	if len(b.buf) >= streamBatchBlocks || b.bytes >= streamBatchBytes {
		return b.flush()
	}
	return nil
}

func (b *blockBatcher) flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	err := b.up.PutBlocks(b.token, b.start, b.buf)
	b.start, b.buf, b.bytes = -1, b.buf[:0], 0
	return err
}

// RepublishInfo describes a delta re-publication.
type RepublishInfo struct {
	// Info is the encoding breakdown of the new version.
	Info *docenc.EncodeInfo
	// Version is the committed successor version.
	Version uint32
	// TotalBlocks / ChangedBlocks: the delta's shrinkage.
	TotalBlocks   int
	ChangedBlocks int
	// ChangedRuns counts the contiguous runs the changes coalesced into
	// (one PutBlocks round trip each, batching aside).
	ChangedRuns int
	// BytesUploaded is the stored block bytes that actually travelled
	// (the whole container when Fallback).
	BytesUploaded int64
	// Fallback reports that the store lacks the block-patch protocol and
	// the new version went up as a whole container.
	Fallback bool
}

// Republish encodes root as the successor of the stored version of
// opts.DocID and uploads only the changed blocks, atomically. The stored
// container is fetched and authenticated (under opts.Key) before it is
// trusted as the diff base, so a tampering store cannot poison the new
// version; the version is negotiated: stored version plus one.
func (p *Publisher) Republish(root *xmlstream.Node, opts docenc.EncodeOptions) (*RepublishInfo, error) {
	if opts.DocID == "" {
		return nil, fmt.Errorf("proxy: republish needs a DocID")
	}
	h, err := p.Store.Header(opts.DocID)
	if err != nil {
		return nil, fmt.Errorf("proxy: republish base: %w", err)
	}
	blocks, err := dsp.ReadBlockRange(p.Store, opts.DocID, 0, h.NumBlocks())
	if err != nil {
		return nil, fmt.Errorf("proxy: republish base: %w", err)
	}
	old := &docenc.Container{Header: h, Blocks: blocks}

	delta, info, err := docenc.DiffEncode(root, opts, old)
	if err != nil {
		return nil, err
	}
	ri := &RepublishInfo{
		Info:          info,
		Version:       delta.Header.Version,
		TotalBlocks:   delta.TotalBlocks,
		ChangedBlocks: delta.ChangedBlocks,
		ChangedRuns:   len(delta.Runs),
		BytesUploaded: delta.BytesChanged,
	}
	switch err := dsp.ApplyDelta(p.Store, delta); {
	case err == nil:
		return ri, nil
	case updateUnsupported(err):
		applied, err := delta.Apply(old)
		if err != nil {
			return nil, err
		}
		if err := p.Store.PutDocument(applied); err != nil {
			return nil, err
		}
		ri.Fallback = true
		ri.BytesUploaded = int64(applied.StoredSize())
		return ri, nil
	default:
		return nil, err
	}
}

// updateUnsupported recognizes dsp.ErrUpdateUnsupported locally and
// through a server's error response (which flattens it to a string).
func updateUnsupported(err error) bool {
	return errors.Is(err, dsp.ErrUpdateUnsupported) ||
		strings.Contains(err.Error(), dsp.ErrUpdateUnsupported.Error())
}

// currentVersion probes the stored version of a document. Only a
// definite "unknown document" answer reads as absent; any other header
// failure (transport, server fault) aborts the publish — treating it as
// absent would let the fallback path silently overwrite an existing
// document at version 0.
func (p *Publisher) currentVersion(docID string) (uint32, bool, error) {
	if docID == "" {
		return 0, false, fmt.Errorf("proxy: publish needs a DocID")
	}
	h, err := p.Store.Header(docID)
	switch {
	case err == nil:
		return h.Version, true, nil
	case dsp.IsUnknownDocument(err):
		return 0, false, nil
	default:
		return 0, false, fmt.Errorf("proxy: probing the stored version: %w", err)
	}
}

// GrantRules seals a rule set under the document key and uploads it. The
// rule set's DocID must match; its version should increase on every
// change (the card refuses rollbacks).
func (p *Publisher) GrantRules(key secure.DocKey, rs *accessrule.RuleSet) error {
	if err := rs.Validate(); err != nil {
		return err
	}
	if rs.DocID == "" {
		return fmt.Errorf("proxy: rule set must name its document")
	}
	plain, err := rs.MarshalBinary()
	if err != nil {
		return err
	}
	sealed, err := secure.EncryptBlob(key, card.RuleBlobNamespace(rs.DocID, rs.Subject), 0, plain)
	if err != nil {
		return err
	}
	return p.Store.PutRuleSet(rs.DocID, rs.Subject, rs.Version, sealed)
}
