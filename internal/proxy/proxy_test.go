package proxy

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/accessrule"
	"repro/internal/card"
	"repro/internal/docenc"
	"repro/internal/dsp"
	"repro/internal/secure"
	"repro/internal/soe"
	"repro/internal/workload"
	"repro/internal/xmlstream"
	"repro/internal/xpath"
)

// rig is a complete test bench: store, publisher, provisioned card,
// terminal.
type rig struct {
	store *dsp.MemStore
	pub   *Publisher
	card  *card.Card
	term  *Terminal
	key   secure.DocKey
}

// newRig publishes the document under docID and provisions the card for
// every rule set given (rule sets must carry DocID=docID).
func newRig(t *testing.T, doc *xmlstream.Node, docID string, profile card.Profile, encOpts docenc.EncodeOptions, rulesets ...*accessrule.RuleSet) *rig {
	t.Helper()
	r := &rig{
		store: dsp.NewMemStore(),
		key:   secure.KeyFromSeed("test:" + docID),
	}
	r.pub = &Publisher{Store: r.store}
	encOpts.DocID = docID
	encOpts.Key = r.key
	if _, err := r.pub.PublishDocument(doc, encOpts); err != nil {
		t.Fatalf("publish: %v", err)
	}
	r.card = card.New(profile)
	if err := r.card.PutKey(docID, r.key); err != nil {
		t.Fatalf("put key: %v", err)
	}
	r.term = &Terminal{Store: r.store, Card: r.card}
	for _, rs := range rulesets {
		rs.DocID = docID
		if err := r.pub.GrantRules(r.key, rs); err != nil {
			t.Fatalf("grant rules: %v", err)
		}
		if err := r.term.InstallRules(rs.Subject, docID); err != nil {
			t.Fatalf("install rules: %v", err)
		}
	}
	return r
}

func TestEndToEndPull(t *testing.T) {
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 3, Patients: 4, VisitsPerPatient: 3})
	rs := workload.MustParseRules(`
subject nurse
default -
+ /folder
- //ssn
- //contact
- //prescription`)
	r := newRig(t, doc, "folder1", card.Modern, docenc.EncodeOptions{}, rs)

	res, err := r.term.Query("nurse", "folder1", "")
	if err != nil {
		t.Fatal(err)
	}
	want := accessrule.ApplyTree(doc, rs)
	if !res.Tree.Equal(want) {
		t.Fatalf("end-to-end result diverges from oracle:\ngot:  %s\nwant: %s",
			render(res.Tree), render(want))
	}
	if res.Stats.BlocksFetched == 0 || res.Stats.Session.Core.Opens == 0 {
		t.Errorf("implausible stats: %+v", res.Stats)
	}
	if strings.Contains(res.XML(), "ssn") {
		t.Error("result leaks a denied tag")
	}
}

func TestEndToEndDifferential(t *testing.T) {
	iterations := 120
	if testing.Short() {
		iterations = 25
	}
	for seed := int64(0); seed < int64(iterations); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			doc := workload.RandomDocument(workload.TreeConfig{
				Seed:      seed,
				Elements:  40 + int(seed%80),
				MaxDepth:  7,
				MaxFanout: 4,
				AttrProb:  0.25,
				TextProb:  0.7,
				Tags:      []string{"a", "b", "c", "d", "e", "f"},
			})
			rcfg := workload.RuleConfig{
				Seed:          seed + 500,
				Count:         1 + int(seed%5),
				Tags:          []string{"a", "b", "c", "d", "e", "f", "@a"},
				MaxSteps:      4,
				DescProb:      0.4,
				WildProb:      0.1,
				PredProb:      0.35,
				ValuePredProb: 0.3,
				NegProb:       0.4,
			}
			if seed%3 == 0 {
				rcfg.DefaultSign = accessrule.Permit
			}
			rs := workload.RandomRuleSet("u", rcfg)

			query := ""
			if seed%2 == 1 {
				query = workload.RandomQuery(workload.RuleConfig{
					Seed: seed + 900, Tags: rcfg.Tags, MaxSteps: 3,
					DescProb: 0.5, PredProb: 0.3,
				}).String()
			}

			// Small blocks + low skip threshold exercise skipping hard.
			r := newRig(t, doc, "doc", card.Modern,
				docenc.EncodeOptions{BlockPlain: 64, MinSkipBytes: 24}, rs)
			res, err := r.term.Query("u", "doc", query)
			if err != nil {
				t.Fatalf("query: %v\nrules:\n%s", err, rs)
			}

			var q *xpath.Path
			if query != "" {
				q = xpath.MustParse(query)
			}
			want := accessrule.ApplyTreeQuery(doc, rs, q)
			if !res.Tree.Equal(want) {
				t.Fatalf("diverges from oracle\nrules:\n%s\nquery: %s\ngot:  %s\nwant: %s",
					rs, query, render(res.Tree), render(want))
			}

			// The skip path must agree with the no-skip path bit for bit.
			r.term.Options = soe.Options{DisableSkip: true, DisableCopy: true}
			res2, err := r.term.Query("u", "doc", query)
			if err != nil {
				t.Fatalf("no-skip query: %v", err)
			}
			if !res2.Tree.Equal(res.Tree) {
				t.Fatalf("skip and no-skip paths disagree")
			}
			if res2.Stats.BlocksFetched < res.Stats.BlocksFetched {
				t.Errorf("skipping fetched MORE blocks (%d) than linear reading (%d)",
					res.Stats.BlocksFetched, res2.Stats.BlocksFetched)
			}
		})
	}
}

func TestSkipSavesTransfer(t *testing.T) {
	// Emergency profile on a large folder: the emergency record is a tiny
	// fraction of each patient, and no visit subtree can ever satisfy a
	// rule (the 'emergency' tag does not occur under 'visit'), so the
	// index must let the card jump over the bulk of the document.
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 5, Patients: 40, VisitsPerPatient: 6})
	rs := workload.MustParseRules(`
subject emergency
default -
+ //emergency
+ //patient/name`)
	r := newRig(t, doc, "folder", card.EGate, docenc.EncodeOptions{MinSkipBytes: 32}, rs)

	res, err := r.term.Query("emergency", "folder", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree == nil {
		t.Fatal("expected a non-empty result")
	}
	if len(res.Tree.Find("emergency")) == 0 || len(res.Tree.Find("name")) == 0 {
		t.Fatalf("result lacks granted content: %s", render(res.Tree))
	}
	if got := len(res.Tree.Find("diagnosis")); got != 0 {
		t.Fatalf("result leaks %d diagnosis elements", got)
	}
	if res.Stats.Session.Core.SkippedSubtrees == 0 {
		t.Fatal("no subtree was skipped")
	}
	if res.Stats.BlocksFetched >= res.Stats.BlocksTotal*2/3 {
		t.Errorf("skip index ineffective: fetched %d of %d blocks",
			res.Stats.BlocksFetched, res.Stats.BlocksTotal)
	}

	// The ablation baseline must fetch everything.
	r.term.Options = soe.Options{DisableSkip: true}
	res2, err := r.term.Query("emergency", "folder", "")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.BlocksFetched != res2.Stats.BlocksTotal {
		t.Errorf("no-index baseline fetched %d of %d blocks",
			res2.Stats.BlocksFetched, res2.Stats.BlocksTotal)
	}
	if !res2.Tree.Equal(res.Tree) {
		t.Error("skip and no-skip results differ")
	}
}

func TestAttributePredicateFailFast(t *testing.T) {
	// Value predicates on attributes resolve during the attribute phase;
	// once the attribute mismatches, product subtrees inside the denied
	// category are skippable. With a low indexing threshold the card must
	// skip at least the product subtrees of mismatched categories.
	doc := workload.Catalog(workload.CatalogConfig{Seed: 5, Categories: 12, ProductsPerCategory: 8})
	rs := workload.MustParseRules(`
subject narrow
default -
+ /catalog/category[@name = "cat07"]`)
	r := newRig(t, doc, "cat", card.Modern, docenc.EncodeOptions{MinSkipBytes: 16}, rs)

	res, err := r.term.Query("narrow", "cat", "")
	if err != nil {
		t.Fatal(err)
	}
	want := accessrule.ApplyTree(doc, rs)
	if !res.Tree.Equal(want) {
		t.Fatalf("result diverges from oracle:\ngot:  %s\nwant: %s", render(res.Tree), render(want))
	}
	if res.Stats.Session.Core.SkippedSubtrees == 0 {
		t.Error("attribute fail-fast produced no skips")
	}
}

func TestQuerySkipIrrelevantSubtrees(t *testing.T) {
	// Pull query for one tag: subtrees that cannot contain it are
	// irrelevant and must be skipped even though they are authorized.
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 8, Patients: 30, VisitsPerPatient: 6})
	rs := workload.MustParseRules("subject all\ndefault +")
	r := newRig(t, doc, "folder", card.EGate, docenc.EncodeOptions{MinSkipBytes: 32}, rs)

	res, err := r.term.Query("all", "folder", "//emergency")
	if err != nil {
		t.Fatal(err)
	}
	want := accessrule.ApplyTreeQuery(doc, rs, xpath.MustParse("//emergency"))
	if !res.Tree.Equal(want) {
		t.Fatalf("query result diverges from oracle")
	}
	if res.Stats.Session.Core.SkippedSubtrees == 0 {
		t.Fatal("query-irrelevant subtrees were not skipped")
	}
	if res.Stats.BlocksFetched >= res.Stats.BlocksTotal*2/3 {
		t.Errorf("query skip ineffective: fetched %d of %d blocks",
			res.Stats.BlocksFetched, res.Stats.BlocksTotal)
	}
}

func TestAblationCombinations(t *testing.T) {
	// Every combination of the two optimizations must produce the same
	// result; only costs may differ.
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 21, Patients: 8, VisitsPerPatient: 3})
	rs := workload.MustParseRules("subject u\ndefault -\n+ //patient\n- //ssn\n- //report")
	r := newRig(t, doc, "folder", card.Modern, docenc.EncodeOptions{MinSkipBytes: 32}, rs)

	combos := []soe.Options{
		{},
		{DisableSkip: true},
		{DisableCopy: true},
		{DisableSkip: true, DisableCopy: true},
	}
	var baseline *xmlstream.Node
	for i, opts := range combos {
		r.term.Options = opts
		res, err := r.term.Query("u", "folder", "")
		if err != nil {
			t.Fatalf("combo %d: %v", i, err)
		}
		if i == 0 {
			baseline = res.Tree
			if res.Stats.Session.Core.CopiedEvents == 0 {
				t.Error("copy-through never engaged on a mostly-authorized view")
			}
			continue
		}
		if !res.Tree.Equal(baseline) {
			t.Fatalf("combo %d produced a different result", i)
		}
	}
}

func TestIndexFreeContainer(t *testing.T) {
	// A container encoded without any index records must still evaluate
	// correctly (no skips possible, no metas to read).
	doc := workload.Agenda(workload.AgendaConfig{Seed: 22, Members: 5, EventsPerMember: 3})
	rs := workload.MustParseRules("subject u\ndefault +\n- //phone")
	r := newRig(t, doc, "agenda", card.Modern, docenc.EncodeOptions{DisableIndex: true}, rs)
	res, err := r.term.Query("u", "agenda", "")
	if err != nil {
		t.Fatal(err)
	}
	want := accessrule.ApplyTree(doc, rs)
	if !res.Tree.Equal(want) {
		t.Fatal("index-free container diverges from oracle")
	}
	if res.Stats.Session.Core.SkippedSubtrees != 0 {
		t.Error("skips reported on an index-free container")
	}
	if res.Stats.BlocksFetched != res.Stats.BlocksTotal {
		t.Error("an index-free container must be read linearly")
	}
}

func TestIntegrityTamperDetected(t *testing.T) {
	doc := workload.Agenda(workload.AgendaConfig{Seed: 1, Members: 4, EventsPerMember: 3})
	rs := workload.MustParseRules("subject u\ndefault +")
	r := newRig(t, doc, "agenda", card.Modern, docenc.EncodeOptions{}, rs)

	if err := r.store.Tamper("agenda", 2, 5); err != nil {
		t.Fatal(err)
	}
	_, err := r.term.Query("u", "agenda", "")
	if !errors.Is(err, secure.ErrIntegrity) {
		t.Fatalf("tampered block must fail integrity, got %v", err)
	}
}

func TestIntegrityBlockSwapDetected(t *testing.T) {
	doc := workload.Agenda(workload.AgendaConfig{Seed: 2, Members: 4, EventsPerMember: 3})
	rs := workload.MustParseRules("subject u\ndefault +")
	r := newRig(t, doc, "agenda", card.Modern, docenc.EncodeOptions{}, rs)

	if err := r.store.SwapBlocks("agenda", 1, 3); err != nil {
		t.Fatal(err)
	}
	_, err := r.term.Query("u", "agenda", "")
	if !errors.Is(err, secure.ErrIntegrity) {
		t.Fatalf("swapped blocks must fail integrity, got %v", err)
	}
}

func TestRuleSetReplayRejected(t *testing.T) {
	doc := workload.Catalog(workload.CatalogConfig{Seed: 3, Categories: 2, ProductsPerCategory: 2})
	generous := workload.MustParseRules("subject u\ndefault +")
	generous.Version = 1
	r := newRig(t, doc, "cat", card.Modern, docenc.EncodeOptions{}, generous)

	// The owner revokes: a stricter version 2 replaces version 1.
	strict := workload.MustParseRules("subject u\ndefault -\n+ //name")
	strict.DocID = "cat"
	strict.Version = 2
	if err := r.pub.GrantRules(r.key, strict); err != nil {
		t.Fatal(err)
	}
	if err := r.term.InstallRules("u", "cat"); err != nil {
		t.Fatal(err)
	}

	// A malicious DSP replays the generous version-1 blob: the card must
	// refuse the rollback.
	plain, _ := generous.MarshalBinary()
	sealed, err := secure.EncryptBlob(r.key, card.RuleBlobNamespace("cat", "u"), 0, plain)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.card.PutSealedRuleSet("cat", "u", sealed); err == nil {
		t.Fatal("replayed stale rule set must be rejected")
	}
}

func TestRuleSetCrossSubjectRejected(t *testing.T) {
	doc := workload.Catalog(workload.CatalogConfig{Seed: 4, Categories: 2, ProductsPerCategory: 2})
	alice := workload.MustParseRules("subject alice\ndefault +")
	r := newRig(t, doc, "cat", card.Modern, docenc.EncodeOptions{}, alice)

	sealed, err := r.store.RuleSet("cat", "alice")
	if err != nil {
		t.Fatal(err)
	}
	// The store hands alice's generous blob when bob's rights are asked:
	// unsealing under bob's namespace must fail.
	if err := r.card.PutSealedRuleSet("cat", "bob", sealed); err == nil {
		t.Fatal("cross-subject rule blob must be rejected")
	}
}

func TestEGateRAMBudgetHolds(t *testing.T) {
	// A realistic workload must fit the paper's 1 KB working memory.
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 9, Patients: 10, VisitsPerPatient: 4})
	rs := workload.MustParseRules(`
subject doctor
default -
+ //patient
- //ssn`)
	r := newRig(t, doc, "folder", card.EGate, docenc.EncodeOptions{}, rs)
	res, err := r.term.Query("doctor", "folder", "")
	if err != nil {
		t.Fatalf("the e-gate budget should suffice: %v", err)
	}
	if res.Stats.Session.RAMPeak > card.EGate.RAMBudget {
		t.Errorf("RAM peak %d exceeds budget %d", res.Stats.Session.RAMPeak, card.EGate.RAMBudget)
	}
	if res.Stats.Session.RAMPeak == 0 {
		t.Error("RAM accounting recorded nothing")
	}
}

func TestQueryThroughCard(t *testing.T) {
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 11, Patients: 5, VisitsPerPatient: 2})
	rs := workload.MustParseRules("subject u\ndefault +\n- //ssn")
	r := newRig(t, doc, "folder", card.Modern, docenc.EncodeOptions{}, rs)

	res, err := r.term.Query("u", "folder", `//visit[diagnosis = "asthma"]`)
	if err != nil {
		t.Fatal(err)
	}
	want := accessrule.ApplyTreeQuery(doc, rs, xpath.MustParse(`//visit[diagnosis = "asthma"]`))
	if !res.Tree.Equal(want) {
		t.Fatalf("query result diverges:\ngot:  %s\nwant: %s", render(res.Tree), render(want))
	}
}

func TestSimulatedTimeBreakdown(t *testing.T) {
	doc := workload.Catalog(workload.CatalogConfig{Seed: 6, Categories: 5, ProductsPerCategory: 8})
	rs := workload.MustParseRules("subject u\ndefault +")
	r := newRig(t, doc, "cat", card.EGate, docenc.EncodeOptions{}, rs)

	res, err := r.term.Query("u", "cat", "")
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Stats.Time
	if tb.Transfer <= 0 || tb.Crypto <= 0 || tb.Evaluate <= 0 {
		t.Errorf("time breakdown has empty components: %+v", tb)
	}
	// On a 2 KB/s link, transfer must dominate crypto on a 33 MHz core
	// with hardware crypto — the paper's stated bottleneck.
	if tb.Transfer < tb.Crypto {
		t.Errorf("expected transfer-bound behaviour on e-gate: transfer=%v crypto=%v",
			tb.Transfer, tb.Crypto)
	}
}

// TestPipelinedMatchesSerial: the prefetching pipeline must be invisible
// to the card — same result tree, same card work, same useful blocks —
// for skip-heavy, linear and query-driven sessions alike.
func TestPipelinedMatchesSerial(t *testing.T) {
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 5, Patients: 20, VisitsPerPatient: 5})
	cases := []struct {
		name  string
		rules string
		query string
		opts  soe.Options
	}{
		{"skip-heavy", "subject u\ndefault -\n+ //emergency\n+ //patient/name", "", soe.Options{}},
		{"linear", "subject u\ndefault +\n- //ssn", "", soe.Options{DisableSkip: true, DisableCopy: true}},
		{"query", "subject u\ndefault +", "//emergency", soe.Options{}},
		{"mostly-authorized", "subject u\ndefault +\n- //ssn", "", soe.Options{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rs := workload.MustParseRules(tc.rules)
			r := newRig(t, doc, "doc", card.Modern, docenc.EncodeOptions{BlockPlain: 128, MinSkipBytes: 32}, rs)
			r.term.Options = tc.opts
			serial, err := r.term.Query("u", "doc", tc.query)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 3, DefaultPrefetch} {
				r.term.Prefetch = k
				piped, err := r.term.Query("u", "doc", tc.query)
				if err != nil {
					t.Fatalf("prefetch=%d: %v", k, err)
				}
				if (piped.Tree == nil) != (serial.Tree == nil) ||
					(piped.Tree != nil && !piped.Tree.Equal(serial.Tree)) {
					t.Fatalf("prefetch=%d result diverges from serial:\ngot:  %s\nwant: %s",
						k, render(piped.Tree), render(serial.Tree))
				}
				if piped.Stats.Meter != serial.Stats.Meter {
					t.Errorf("prefetch=%d card meter diverges:\ngot:  %+v\nwant: %+v",
						k, piped.Stats.Meter, serial.Stats.Meter)
				}
				// Useful transfer is identical; anything extra is waste.
				useful := piped.Stats.BlocksFetched - piped.Stats.BlocksWasted
				if useful != serial.Stats.BlocksFetched {
					t.Errorf("prefetch=%d useful blocks %d (fetched %d - wasted %d), serial fetched %d",
						k, useful, piped.Stats.BlocksFetched, piped.Stats.BlocksWasted,
						serial.Stats.BlocksFetched)
				}
				if piped.Stats.BlocksWasted < 0 {
					t.Errorf("negative waste: %+v", piped.Stats)
				}
			}
			// The ablated linear session promises a waste-free pipeline
			// (NeedRun's contiguity bound covers the whole remainder).
			if tc.opts.DisableSkip {
				r.term.Prefetch = DefaultPrefetch
				res, err := r.term.Query("u", "doc", tc.query)
				if err != nil {
					t.Fatal(err)
				}
				if res.Stats.BlocksWasted != 0 {
					t.Errorf("linear session wasted %d speculative blocks", res.Stats.BlocksWasted)
				}
			}
			r.term.Prefetch = 0
		})
	}
}

func render(n *xmlstream.Node) string {
	if n == nil {
		return "(nothing)"
	}
	s, err := xmlstream.Serialize(n.Events(), xmlstream.WriterOptions{})
	if err != nil {
		return fmt.Sprintf("(unserializable: %v)", err)
	}
	return s
}
