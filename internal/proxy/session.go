package proxy

import (
	"fmt"
	"sync"

	"repro/internal/card"
	"repro/internal/dsp"
	"repro/internal/secure"
	"repro/internal/soe"
	"repro/internal/xpath"
)

// Session is a poolable, restartable pull-session object: one card, a
// store lease, and the pipeline configuration, packaged so that a
// gateway can check the whole bundle out of a pool, run a query, and
// recycle it with the expensive state intact — the installed document
// keys, the card's amortized cipher contexts, and the sealed rule sets
// all survive across queries.
//
// A Session models the card's single-threaded applet: exactly one query
// runs at a time (a concurrent Query refuses instead of corrupting card
// state), but the object itself is long-lived and reusable. Every
// pooled resource a query borrows — client block frames, prepared-run
// plaintext buffers, mmap pins riding the store responses — is released
// on every drop path before Query returns, so Reset and Close never
// have dangling frames to chase: they only guard the lifecycle.
//
// Terminal remains the one-shot convenience facade over this type.
type Session struct {
	store    dsp.Store
	card     *card.Card
	opts     soe.Options
	prefetch int

	mu      sync.Mutex
	busy    bool
	closed  bool
	queries int64
}

// NewSession builds a reusable session over a store lease and a card.
// prefetch > 0 selects the two-stage prefetching pipeline (see
// Terminal.Prefetch); 0 keeps the serial pull loop.
func NewSession(store dsp.Store, c *card.Card, opts soe.Options, prefetch int) *Session {
	return &Session{store: store, card: c, opts: opts, prefetch: prefetch}
}

// Card exposes the session's card (provisioning, meters).
func (s *Session) Card() *card.Card { return s.card }

// Store exposes the session's store lease.
func (s *Session) Store() dsp.Store { return s.store }

// Queries reports how many queries this session has served since it was
// built — the pool's reuse measure.
func (s *Session) Queries() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries
}

// acquire takes single-session ownership for one query.
func (s *Session) acquire() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("proxy: session is closed")
	}
	if s.busy {
		return fmt.Errorf("proxy: session is busy (single-session ownership: one query at a time)")
	}
	s.busy = true
	return nil
}

func (s *Session) release() {
	s.mu.Lock()
	s.busy = false
	s.queries++
	s.mu.Unlock()
}

// Provision installs a document key on the session's card and warms the
// card's amortized cipher state (AES schedule + precomputed HMAC pads),
// so every query this session runs against docID shares one context.
func (s *Session) Provision(docID string, key secure.DocKey) error {
	if err := s.card.PutKey(docID, key); err != nil {
		return err
	}
	_, err := s.card.DecryptContext(docID)
	return err
}

// InstallRules pulls the subject's sealed rule set from the store and
// installs it on the card. The card's version monotonicity rejects
// rollbacks, so re-installing is always safe.
func (s *Session) InstallRules(subject, docID string) error {
	sealed, err := s.store.RuleSet(docID, subject)
	if err != nil {
		return err
	}
	return s.card.PutSealedRuleSet(docID, subject, sealed)
}

// RuleVersion reports the rule-set version installed on this session's
// card for (subject, doc), -1 when none is installed.
func (s *Session) RuleVersion(subject, docID string) int64 {
	return s.card.RuleVersion(subject, docID)
}

// Reset returns the session to a reusable state between checkouts. Card
// provisioning is deliberately kept (that is what makes pooling pay);
// per-query state is stack-scoped and already torn down when Query
// returns, so Reset's job is the lifecycle check: a session still
// running a query must not be recycled.
func (s *Session) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.busy {
		return fmt.Errorf("proxy: resetting a session with a query in flight")
	}
	return nil
}

// Close retires the session: new queries refuse; a query already in
// flight finishes normally (its drop paths release every pooled frame
// and pin it borrowed).
func (s *Session) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// Query runs a pull request: fetch, decrypt-on-card, filter, reassemble.
// query is an XP{[],*,//} expression, or "" for the full authorized view.
func (s *Session) Query(subject, docID, query string) (*Result, error) {
	if err := s.acquire(); err != nil {
		return nil, err
	}
	defer s.release()

	var q *xpath.Path
	if query != "" {
		var err error
		q, err = xpath.Parse(query)
		if err != nil {
			return nil, err
		}
	}

	meterBefore := s.card.Meter

	sess, err := soe.NewSession(s.card, docID, subject, q, s.opts)
	if err != nil {
		return nil, err
	}
	defer sess.Abort()

	header, err := s.store.Header(docID)
	if err != nil {
		return nil, err
	}
	hdrBytes, err := header.MarshalBinary()
	if err != nil {
		return nil, err
	}
	if err := sess.LoadHeader(hdrBytes); err != nil {
		return nil, err
	}

	col := NewCollector()
	stats := ResultStats{BlocksTotal: header.NumBlocks()}
	if s.prefetch > 0 {
		err = s.runPipelined(sess, docID, header.NumBlocks(), col, &stats)
	} else {
		err = s.runSerial(sess, docID, col, &stats)
	}
	if err != nil {
		return nil, err
	}
	if !sess.Done() {
		return nil, fmt.Errorf("proxy: stream ended but session is not done")
	}
	tree, err := col.Result()
	if err != nil {
		return nil, err
	}

	stats.Session = sess.Stats()
	stats.Meter = s.card.Meter.Sub(meterBefore)
	stats.Time = stats.Meter.Price(s.card.Profile)
	stats.PendingEvents, stats.PendingBytes = col.PendingLoad()
	return &Result{Tree: tree, Version: header.Version, Stats: stats}, nil
}

// runSerial is the historical pull loop: one store round trip per block
// the card demands, nothing speculative.
func (s *Session) runSerial(sess *soe.Session, docID string, col *Collector, stats *ResultStats) error {
	for {
		idx := sess.NeedBlock()
		if idx < 0 {
			return nil
		}
		blk, err := s.store.ReadBlock(docID, idx)
		if err != nil {
			return err
		}
		stats.BlocksFetched++
		stats.BytesFetched += int64(len(blk))
		if err := feedBlock(sess, col, idx, blk); err != nil {
			return err
		}
	}
}
