package proxy

import (
	"testing"

	"repro/internal/card"
	"repro/internal/docenc"
	"repro/internal/dsp"
	"repro/internal/secure"
	"repro/internal/workload"
	"repro/internal/xmlstream"
)

// republishWorld is one publish/provision/query fixture.
type republishWorld struct {
	store dsp.Store
	pub   *Publisher
	key   secure.DocKey
	term  *Terminal
}

func newRepublishWorld(t *testing.T, store dsp.Store, doc *xmlstream.Node, docID, rules string) *republishWorld {
	t.Helper()
	w := &republishWorld{
		store: store,
		pub:   &Publisher{Store: store},
		key:   secure.KeyFromSeed("republish:" + docID),
	}
	if _, err := w.pub.PublishDocument(doc, docenc.EncodeOptions{
		DocID: docID, Key: w.key, BlockPlain: 128, MinSkipBytes: 32,
	}); err != nil {
		t.Fatal(err)
	}
	rs := workload.MustParseRules(rules)
	rs.DocID = docID
	if err := w.pub.GrantRules(w.key, rs); err != nil {
		t.Fatal(err)
	}
	c := card.New(card.Modern)
	if err := c.PutKey(docID, w.key); err != nil {
		t.Fatal(err)
	}
	w.term = &Terminal{Store: store, Card: c}
	if err := w.term.InstallRules(rs.Subject, docID); err != nil {
		t.Fatal(err)
	}
	return w
}

func mutateTexts(root *xmlstream.Node, every int) *xmlstream.Node {
	cp := &xmlstream.Node{Name: root.Name, Text: root.Text}
	for _, c := range root.Children {
		cp.Children = append(cp.Children, mutateTexts(c, 0))
	}
	if every > 0 {
		n := 0
		var walk func(*xmlstream.Node)
		walk = func(x *xmlstream.Node) {
			for _, c := range x.Children {
				if c.IsText() {
					if n++; n%every == 0 && len(c.Text) > 0 {
						b := []byte(c.Text)
						for i := range b {
							b[i] = 'a' + (b[i]+11)%26
						}
						c.Text = string(b)
					}
					continue
				}
				walk(c)
			}
		}
		walk(cp)
	}
	return cp
}

// TestRepublishDeltaEqualsFull is the differential acceptance check: a
// terminal reading version N+1 after a delta re-publish must produce
// byte-identical output to one reading a full re-publication of the same
// tree at the same version.
func TestRepublishDeltaEqualsFull(t *testing.T) {
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 55, Patients: 10, VisitsPerPatient: 3})
	mutated := mutateTexts(doc, 12)
	const rules = "subject nurse\ndefault +\n- //ssn\n- //report"

	// World A: publish v0, delta re-publish the mutation.
	a := newRepublishWorld(t, dsp.NewMemStore(), doc, "folder", rules)
	before, err := a.term.Query("nurse", "folder", "")
	if err != nil {
		t.Fatal(err)
	}
	ri, err := a.pub.Republish(mutated, docenc.EncodeOptions{DocID: "folder", Key: a.key})
	if err != nil {
		t.Fatal(err)
	}
	if ri.Fallback {
		t.Fatal("MemStore took the whole-container fallback")
	}
	if ri.ChangedBlocks == 0 || ri.ChangedBlocks >= ri.TotalBlocks {
		t.Fatalf("degenerate delta: %d/%d blocks", ri.ChangedBlocks, ri.TotalBlocks)
	}
	afterDelta, err := a.term.Query("nurse", "folder", "")
	if err != nil {
		t.Fatal(err)
	}
	if afterDelta.Version != ri.Version || afterDelta.Version != before.Version+1 {
		t.Fatalf("served version %d after republish to %d (was %d)",
			afterDelta.Version, ri.Version, before.Version)
	}

	// World B: full publication of the same tree at the same version.
	b := newRepublishWorld(t, dsp.NewMemStore(), doc, "folder", rules)
	if _, err := b.pub.PublishDocument(mutated, docenc.EncodeOptions{
		DocID: "folder", Key: b.key, BlockPlain: 128, MinSkipBytes: 32, Version: ri.Version,
	}); err != nil {
		t.Fatal(err)
	}
	afterFull, err := b.term.Query("nurse", "folder", "")
	if err != nil {
		t.Fatal(err)
	}

	if afterDelta.XML() != afterFull.XML() {
		t.Fatal("delta re-publish and full re-publish yield different terminal output")
	}
	if afterDelta.XML() == before.XML() {
		t.Fatal("mutation was invisible to the terminal (vacuous differential)")
	}
}

// TestRepublishFallbackStore: a store without the handshake still ends
// up at the right version via the whole-container fallback.
func TestRepublishFallbackStore(t *testing.T) {
	type bare struct{ dsp.Store }
	inner := dsp.NewMemStore()
	w := newRepublishWorld(t, bare{inner}, workload.Agenda(workload.AgendaConfig{
		Seed: 9, Members: 5, EventsPerMember: 3,
	}), "agenda", "subject m\ndefault +")
	mutated := mutateTexts(workload.Agenda(workload.AgendaConfig{
		Seed: 9, Members: 5, EventsPerMember: 3,
	}), 6)
	ri, err := w.pub.Republish(mutated, docenc.EncodeOptions{DocID: "agenda", Key: w.key})
	if err != nil {
		t.Fatal(err)
	}
	if !ri.Fallback {
		t.Fatal("bare store did not fall back")
	}
	res, err := w.term.Query("m", "agenda", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != ri.Version {
		t.Fatalf("fallback left version %d, want %d", res.Version, ri.Version)
	}
}

// TestPublishStreamMatchesBuffered: the io-driven publish produces a
// stored document indistinguishable (to a terminal) from the buffered
// one, and negotiates the version on re-publication.
func TestPublishStreamMatchesBuffered(t *testing.T) {
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 21, Patients: 6, VisitsPerPatient: 2})
	const rules = "subject doc\ndefault +\n- //ssn"

	buffered := newRepublishWorld(t, dsp.NewMemStore(), doc, "d", rules)
	want, err := buffered.term.Query("doc", "d", "")
	if err != nil {
		t.Fatal(err)
	}

	store := dsp.NewMemStore()
	key := secure.KeyFromSeed("republish:d")
	pub := &Publisher{Store: store}
	if _, err := pub.PublishStream(doc, docenc.EncodeOptions{
		DocID: "d", Key: key, BlockPlain: 128, MinSkipBytes: 32,
	}); err != nil {
		t.Fatal(err)
	}
	rs := workload.MustParseRules(rules)
	rs.DocID = "d"
	if err := pub.GrantRules(key, rs); err != nil {
		t.Fatal(err)
	}
	c := card.New(card.Modern)
	if err := c.PutKey("d", key); err != nil {
		t.Fatal(err)
	}
	term := &Terminal{Store: store, Card: c}
	if err := term.InstallRules("doc", "d"); err != nil {
		t.Fatal(err)
	}
	got, err := term.Query("doc", "d", "")
	if err != nil {
		t.Fatal(err)
	}
	if got.XML() != want.XML() {
		t.Fatal("streamed publish serves different content than buffered publish")
	}

	// Re-publication through the stream path auto-bumps the version.
	if _, err := pub.PublishStream(mutateTexts(doc, 9), docenc.EncodeOptions{
		DocID: "d", Key: key, BlockPlain: 128, MinSkipBytes: 32,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := term.Query("doc", "d", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != got.Version+1 {
		t.Fatalf("streamed re-publish served version %d, want %d", res.Version, got.Version+1)
	}
}
