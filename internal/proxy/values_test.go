package proxy

import (
	"strings"
	"testing"

	"repro/internal/card"
	"repro/internal/docenc"
	"repro/internal/soe"
	"repro/internal/workload"
	"repro/internal/xmlstream"
)

// bigValueDoc builds a document whose text nodes dwarf the e-gate's 1 KB
// of RAM.
func bigValueDoc(valueBytes int) *xmlstream.Node {
	text := strings.Repeat("x", valueBytes)
	return &xmlstream.Node{Name: "doc", Children: []*xmlstream.Node{
		{Name: "public", Children: []*xmlstream.Node{{Text: text}}},
		{Name: "secret", Children: []*xmlstream.Node{{Text: text}}},
		{Name: "tail", Children: []*xmlstream.Node{{Text: "end"}}},
	}}
}

// TestValueStreamingThroughTinyRAM: a 6 KB text node flows through a
// 1 KB card intact (chunked delivery, bounded memory).
func TestValueStreamingThroughTinyRAM(t *testing.T) {
	doc := bigValueDoc(6 * 1024)
	rs := workload.MustParseRules("subject u\ndefault +")
	r := newRig(t, doc, "big", card.EGate, docenc.EncodeOptions{}, rs)
	res, err := r.term.Query("u", "big", "")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Tree.TextContent()); got != 2*6*1024+3 {
		t.Fatalf("delivered %d text bytes, want %d", got, 2*6*1024+3)
	}
	if res.Stats.Session.RAMPeak > card.EGate.RAMBudget {
		t.Errorf("RAM peak %d exceeded the budget", res.Stats.Session.RAMPeak)
	}
}

// TestValueSkippingAvoidsDeniedBytes: the denied 6 KB value must be
// neither delivered nor decrypted.
func TestValueSkippingAvoidsDeniedBytes(t *testing.T) {
	doc := bigValueDoc(6 * 1024)
	rs := workload.MustParseRules("subject u\ndefault +\n- /doc/secret")
	// Disable the element-level index so only VALUE skipping can save
	// bytes (the secret element itself gets no meta record).
	r := newRig(t, doc, "big", card.EGate, docenc.EncodeOptions{DisableIndex: true}, rs)
	res, err := r.term.Query("u", "big", "")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.XML(), "xxx") && len(res.Tree.Find("secret")) > 0 {
		if res.Tree.Find("secret")[0].TextContent() != "" {
			t.Fatal("denied text delivered")
		}
	}
	if res.Stats.Session.Core.ValueBytesSkipped < 6*1024 {
		t.Errorf("value skipping saved only %d bytes, want >= %d",
			res.Stats.Session.Core.ValueBytesSkipped, 6*1024)
	}
	// The skipped value's interior blocks must never have been fetched.
	if res.Stats.BlocksFetched >= res.Stats.BlocksTotal {
		t.Errorf("value skipping fetched every block (%d/%d)",
			res.Stats.BlocksFetched, res.Stats.BlocksTotal)
	}
	if got := res.Tree.Find("tail")[0].TextContent(); got != "end" {
		t.Fatalf("content after the skipped value corrupted: %q", got)
	}
}

// TestLargeComparedValueRejectedGracefully: a text comparison against a
// value bigger than the secure buffer must fail with a clean error, not
// an overflow or a wrong answer.
func TestLargeComparedValueRejectedGracefully(t *testing.T) {
	doc := bigValueDoc(6 * 1024)
	rs := workload.MustParseRules(`subject u` + "\n" + `default -` + "\n" + `+ /doc/secret[. = "password"]`)
	r := newRig(t, doc, "big", card.EGate, docenc.EncodeOptions{}, rs)
	r.term.Options = soe.Options{MaxValue: 512}
	_, err := r.term.Query("u", "big", "")
	if err == nil {
		t.Fatal("comparing a 6 KB value in a 512-byte buffer must fail")
	}
	if !strings.Contains(err.Error(), "secure buffer") {
		t.Errorf("unexpected failure mode: %v", err)
	}
}
