// Package proxy implements the terminal side of the architecture: the
// component that "allows the applications to communicate easily with the
// different elements of the architecture through an XML API independent
// of the underlying protocols" (Section 3).
//
// The Terminal orchestrates a pull session end to end: it fetches the
// container header and the blocks the card asks for from the DSP, feeds
// them to the SOE session, decodes the output records, buffers pending
// parts until the card resolves them, and reassembles the authorized
// result in document order. With Prefetch set, fetching becomes a
// speculative two-stage pipeline (see pipeline.go) that overlaps
// batched DSP round trips with card evaluation. The Publisher is the
// administrative counterpart: it encodes and uploads documents and
// sealed rule sets.
package proxy

import (
	"fmt"

	"repro/internal/card"
	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/soe"
	"repro/internal/tagdict"
	"repro/internal/xmlstream"
)

// Terminal drives queries for one card against one store.
type Terminal struct {
	Store dsp.Store
	Card  *card.Card
	// Options passes through to the SOE session (ablation switches).
	Options soe.Options
	// Prefetch enables the two-stage streaming pipeline: when > 0, a
	// prefetcher goroutine speculatively fetches runs of up to Prefetch
	// blocks per store round trip (one batched ReadBlocks call when the
	// store supports it) into a bounded double buffer, overlapped with
	// the card's feed/evaluate stage. Speculative blocks the card never
	// asks for are counted in ResultStats.BlocksWasted. 0 keeps the
	// historical serial one-block-per-round-trip loop.
	Prefetch int
}

// DefaultPrefetch is a good pipeline depth for stores reached over a
// network: long enough to amortize a round trip, short enough to keep
// speculation waste small when the card skips.
const DefaultPrefetch = 8

// ResultStats describes the cost of one query.
type ResultStats struct {
	// BlocksFetched / BlocksTotal: the skip index's transfer saving.
	// On the pipelined path BlocksFetched includes speculative blocks
	// (see BlocksWasted for how many of those the card never consumed).
	BlocksFetched int
	BlocksTotal   int
	// BlocksWasted counts prefetched blocks the card never asked for —
	// the price of speculation on the pipelined path (always 0 on the
	// serial path).
	BlocksWasted int
	// BytesFetched counts stored bytes pulled from the DSP.
	BytesFetched int64
	// Session carries the SOE-side counters (RAM peak, evaluator work).
	Session soe.Stats
	// Meter is the card work performed by this query (delta).
	Meter card.Meter
	// Time prices the meter under the card's profile.
	Time card.TimeBreakdown
	// PendingEvents / PendingBytes measure the terminal-side buffering
	// caused by pending rules (delivered only after resolution).
	PendingEvents int
	PendingBytes  int64
}

// Result is the outcome of a pull query.
type Result struct {
	// Tree is the authorized result (nil when nothing is visible).
	Tree *xmlstream.Node
	// Version is the document version the query was served from (the
	// authenticated header's version) — what lets a gateway detect that
	// a document moved underneath its fleet.
	Version uint32
	// Stats describes the query's cost.
	Stats ResultStats
}

// XML renders the result tree (indented), or "" when empty.
func (r *Result) XML() string {
	if r.Tree == nil {
		return ""
	}
	s, err := xmlstream.Serialize(r.Tree.Events(), xmlstream.WriterOptions{Indent: "  "})
	if err != nil {
		return fmt.Sprintf("<!-- unserializable result: %v -->", err)
	}
	return s
}

// Query runs a pull request: fetch, decrypt-on-card, filter, reassemble.
// query is an XP{[],*,//} expression, or "" for the full authorized view.
//
// Terminal is the one-shot facade: each call runs on a throwaway
// Session. Callers that issue many queries per card (the fleet
// gateway) hold a Session directly and recycle it.
func (t *Terminal) Query(subject, docID, query string) (*Result, error) {
	return t.session().Query(subject, docID, query)
}

// session builds the single-use Session a facade call runs on.
func (t *Terminal) session() *Session {
	return NewSession(t.Store, t.Card, t.Options, t.Prefetch)
}

// feedBlock pushes one block into the card and routes the output records
// to the collector — the evaluate stage of the serial pull path.
func feedBlock(sess *soe.Session, col *Collector, idx int, blk []byte) error {
	out, err := sess.Feed(idx, blk)
	if err != nil {
		return err
	}
	return soe.DecodeRecords(out, col)
}

// feedPrepared is feedBlock for the pipelined path: the block was
// already decrypted by the prefetch stage, the card charges its meters
// at feed time.
func feedPrepared(sess *soe.Session, col *Collector, idx int, prep *soe.PreparedRun) error {
	out, err := sess.FeedPrepared(prep, idx)
	if err != nil {
		return err
	}
	return soe.DecodeRecords(out, col)
}

// InstallRules pulls the subject's sealed rule set from the store and
// installs it on the card (the "access rights update protocol" of the
// demonstration: rights refresh without touching the document).
func (t *Terminal) InstallRules(subject, docID string) error {
	return t.session().InstallRules(subject, docID)
}

// Collector is the terminal-side record sink: it grows a name table from
// the card's lazy bindings and feeds the document-order assembler.
type Collector struct {
	names map[tagdict.Code]string
	asm   *core.Assembler
	done  bool
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	c := &Collector{names: make(map[tagdict.Code]string)}
	c.asm = core.NewAssembler(c)
	return c
}

// Name implements core.NameResolver over the learned bindings.
func (c *Collector) Name(code tagdict.Code) string {
	if n, ok := c.names[code]; ok {
		return n
	}
	// Unreachable when the card keeps its binding contract; keep the
	// output well-formed regardless.
	return fmt.Sprintf("tag-%d", code)
}

// Bind implements soe.RecordSink.
func (c *Collector) Bind(code tagdict.Code, name string) error {
	c.names[code] = name
	return nil
}

// Open implements soe.RecordSink.
func (c *Collector) Open(code tagdict.Code, mode core.Mode, group core.GroupID) error {
	return c.asm.EmitOpen(code, mode, group)
}

// Value implements soe.RecordSink.
func (c *Collector) Value(text string, mode core.Mode, group core.GroupID) error {
	return c.asm.EmitValue(text, mode, group)
}

// Close implements soe.RecordSink.
func (c *Collector) Close(mode core.Mode, group core.GroupID) error {
	return c.asm.EmitClose(mode, group)
}

// Resolve implements soe.RecordSink.
func (c *Collector) Resolve(group core.GroupID, deliver bool) error {
	return c.asm.ResolveGroup(group, deliver)
}

// Done implements soe.RecordSink.
func (c *Collector) Done() error {
	c.done = true
	return nil
}

// PendingLoad reports the terminal-side pending-buffer load (events and
// text bytes that awaited group resolution).
func (c *Collector) PendingLoad() (int, int64) {
	return c.asm.PendingLoad()
}

// Result finalizes the assembly; it fails if the card never signalled
// completion.
func (c *Collector) Result() (*xmlstream.Node, error) {
	if !c.done {
		return nil, fmt.Errorf("proxy: card session ended without a done record")
	}
	return c.asm.Result()
}
