package proxy

import (
	"repro/internal/dsp"
	"repro/internal/soe"
)

// The pipelined pull path splits the terminal in two stages connected by
// a bounded double buffer:
//
//	prefetcher ──runCh──▶ feed/evaluate
//	     ▲                    │
//	     └──────wantCh────────┘ (demand jumps only)
//
// The prefetcher speculatively fetches contiguous runs of blocks — one
// batched store round trip per run — while the consumer feeds the
// previous run into the card. As long as the card consumes linearly the
// two stages overlap perfectly and no demand signalling is needed; when
// the card's skip index jumps the wanted offset beyond the buffered
// data, the consumer bumps a generation counter and redirects the
// prefetcher, and every block fetched under the old generation is
// accounted as speculation waste (ResultStats.BlocksWasted).
//
// The buffer is bounded by construction: one run held by the consumer,
// one in the channel, one in flight at the prefetcher.

// fetchRun is one speculative batch pulled from the store.
type fetchRun struct {
	gen    int
	start  int
	blocks [][]byte
	err    error
}

// jump redirects the prefetcher to a new demand point.
type jump struct {
	gen int
	idx int
	// sure is the session's contiguity bound (soe.Session.NeedRun): the
	// run of blocks from idx guaranteed to be consumed. When it exceeds
	// the prefetch depth the prefetcher may batch harder, because no
	// block of the run can turn into waste.
	sure int
}

// prefetchTotals is what the prefetcher hands back when it exits; it is
// read by the consumer only after pfDone is closed (happens-before via
// the channel close), so plain ints are race-free.
type prefetchTotals struct {
	blocks int // blocks pulled from the store, useful and wasted alike
	bytes  int64
}

// runLen picks the next run length: the configured depth k, stretched up
// to twice that when the session's contiguity bound guarantees the
// blocks will be consumed (waste-free, so the only limit is buffer
// memory), and always clamped to the payload geometry.
func runLen(k, sure, remaining int) int {
	n := k
	if sure > n {
		n = sure
		if n > 2*k {
			n = 2 * k
		}
	}
	if n > remaining {
		n = remaining
	}
	return n
}

// runPipelined drives the session through the two-stage pipeline.
func (t *Terminal) runPipelined(sess *soe.Session, docID string, numBlocks int, col *Collector, stats *ResultStats) (err error) {
	next, sure := sess.NeedRun()
	if next < 0 {
		return nil // nothing demanded (degenerate payload)
	}

	var (
		wantCh = make(chan jump)
		runCh  = make(chan fetchRun, 1)
		done   = make(chan struct{})
		pfDone = make(chan struct{})
		totals prefetchTotals
	)
	go t.prefetchLoop(docID, numBlocks, wantCh, runCh, done, pfDone, &totals)

	fed := 0
	defer func() {
		close(done)
		<-pfDone
		stats.BlocksFetched += totals.blocks
		stats.BytesFetched += totals.bytes
		stats.BlocksWasted += totals.blocks - fed
	}()

	gen := 0
	wantCh <- jump{gen: gen, idx: next, sure: sure}

	var (
		cur  fetchRun // have==true: the current fresh-generation run
		have bool
	)
	for {
		idx := sess.NeedBlock()
		if idx < 0 {
			return nil
		}
		// Obtain block idx from the buffer, pulling runs and redirecting
		// the prefetcher as needed. Demand is strictly forward (the
		// source never re-requests a fed block), so idx >= cur.start
		// whenever a fresh run is held.
		for {
			if have && idx < cur.start+len(cur.blocks) {
				break
			}
			if have && idx > cur.start+len(cur.blocks) {
				// The demand skipped past this run and anything
				// contiguously in flight behind it: redirect.
				gen++
				_, sure = sess.NeedRun()
				wantCh <- jump{gen: gen, idx: idx, sure: sure}
				have = false
				continue
			}
			// No run yet, a stale run was dropped, or idx is exactly the
			// next contiguous block: take the next run.
			r := <-runCh
			if r.err != nil && r.gen == gen {
				return r.err
			}
			// A stale-generation run is discarded speculation; its blocks
			// stay counted in totals and therefore in the waste.
			cur, have = r, r.gen == gen
		}
		blk := cur.blocks[idx-cur.start]
		fed++
		if err := feedBlock(sess, col, idx, blk); err != nil {
			return err
		}
	}
}

// prefetchLoop is the fetch stage: it walks forward from the latest
// demand point in batched runs, parking when it overruns the payload and
// restarting whenever the consumer redirects it.
func (t *Terminal) prefetchLoop(docID string, numBlocks int, wantCh chan jump, runCh chan fetchRun, done chan struct{}, pfDone chan struct{}, totals *prefetchTotals) {
	defer close(pfDone)
	k := t.Prefetch
	cur, gen, sure := -1, 0, 1
	for {
		if cur < 0 || cur >= numBlocks {
			select {
			case j := <-wantCh:
				cur, gen, sure = j.idx, j.gen, j.sure
			case <-done:
				return
			}
			continue
		}
		n := runLen(k, sure, numBlocks-cur)
		blocks, err := dsp.ReadBlockRange(t.Store, docID, cur, n)
		for _, b := range blocks {
			totals.blocks++
			totals.bytes += int64(len(b))
		}
		select {
		case runCh <- fetchRun{gen: gen, start: cur, blocks: blocks, err: err}:
			if err != nil {
				cur = -1 // park; the consumer aborts on the error
				continue
			}
			cur += len(blocks)
			if sure -= len(blocks); sure < 1 {
				sure = 1
			}
		case j := <-wantCh:
			// The run was fetched under the old demand and is never
			// delivered; it stays counted in totals (waste).
			cur, gen, sure = j.idx, j.gen, j.sure
		case <-done:
			return
		}
	}
}
