package proxy

import (
	"repro/internal/dsp"
	"repro/internal/soe"
)

// The pipelined pull path splits the terminal in two stages connected by
// a bounded double buffer:
//
//	prefetch+decrypt ──runCh──▶ feed/evaluate
//	     ▲                          │
//	     └──────────wantCh──────────┘ (demand jumps only)
//
// The prefetcher speculatively fetches contiguous runs of blocks — one
// batched store round trip per run — and decrypts each run through the
// card's shared cipher context (soe.Session.PrepareRun: MAC verify and
// CTR XOR fanned across a small worker pool) before handing it over, so
// the consumer's critical path is pure feed/evaluate. When the store
// supports pooled frames (dsp.Client / dsp.Pool) the run is decrypted
// in place inside the frame buffer: the block bytes are written by the
// store exactly once and never copied again until the session's source
// window absorbs the plaintext. As long as the card consumes linearly
// the two stages overlap perfectly and no demand signalling is needed;
// when the card's skip index jumps the wanted offset beyond the
// buffered data, the consumer bumps a generation counter and redirects
// the prefetcher, and every block fetched under the old generation is
// accounted as speculation waste (ResultStats.BlocksWasted). Meter
// determinism survives the speculation: PrepareRun charges nothing, and
// FeedPrepared charges exactly what the serial Feed would, block by
// consumed block.
//
// The buffer is bounded by construction: one run held by the consumer,
// one in the channel, one in flight at the prefetcher. Runs own pooled
// resources (plaintext run buffers, client frames), so every path that
// drops a run — stale generation, redirect, shutdown — must Release it.

// fetchRun is one speculative batch pulled from the store and decrypted
// ahead of demand.
type fetchRun struct {
	gen   int
	start int
	count int
	prep  *soe.PreparedRun
	err   error
}

// jump redirects the prefetcher to a new demand point.
type jump struct {
	gen int
	idx int
	// sure is the session's contiguity bound (soe.Session.NeedRun): the
	// run of blocks from idx guaranteed to be consumed. When it exceeds
	// the prefetch depth the prefetcher may batch harder, because no
	// block of the run can turn into waste.
	sure int
}

// prefetchTotals is what the prefetcher hands back when it exits; it is
// read by the consumer only after pfDone is closed (happens-before via
// the channel close), so plain ints are race-free.
type prefetchTotals struct {
	blocks int // blocks pulled from the store, useful and wasted alike
	bytes  int64
}

// frameReader is the store capability the in-place decrypt path needs:
// batched reads into caller-owned pooled buffers.
type frameReader interface {
	ReadBlocksFrame(docID string, start, count int) (*dsp.BlockFrame, error)
}

// runLen picks the next run length: the configured depth k, stretched up
// to twice that when the session's contiguity bound guarantees the
// blocks will be consumed (waste-free, so the only limit is buffer
// memory), and always clamped to the payload geometry.
func runLen(k, sure, remaining int) int {
	n := k
	if sure > n {
		n = sure
		if n > 2*k {
			n = 2 * k
		}
	}
	if n > remaining {
		n = remaining
	}
	return n
}

// runPipelined drives the session through the two-stage pipeline.
func (s *Session) runPipelined(sess *soe.Session, docID string, numBlocks int, col *Collector, stats *ResultStats) (err error) {
	next, sure := sess.NeedRun()
	if next < 0 {
		return nil // nothing demanded (degenerate payload)
	}

	var (
		wantCh = make(chan jump)
		runCh  = make(chan fetchRun, 1)
		done   = make(chan struct{})
		pfDone = make(chan struct{})
		totals prefetchTotals
	)
	go s.prefetchLoop(sess, docID, numBlocks, wantCh, runCh, done, pfDone, &totals)

	fed := 0
	var (
		cur  fetchRun // have==true: the current fresh-generation run
		have bool
	)
	defer func() {
		close(done)
		<-pfDone
		// Return every outstanding pooled resource: the held run and any
		// run the prefetcher managed to buffer before pfDone.
		cur.prep.Release()
		for {
			select {
			case r := <-runCh:
				r.prep.Release()
			default:
				stats.BlocksFetched += totals.blocks
				stats.BytesFetched += totals.bytes
				stats.BlocksWasted += totals.blocks - fed
				return
			}
		}
	}()

	gen := 0
	wantCh <- jump{gen: gen, idx: next, sure: sure}

	for {
		idx := sess.NeedBlock()
		if idx < 0 {
			return nil
		}
		// Obtain block idx from the buffer, pulling runs and redirecting
		// the prefetcher as needed. Demand is strictly forward (the
		// source never re-requests a fed block), so idx >= cur.start
		// whenever a fresh run is held.
		for {
			if have && idx < cur.start+cur.count {
				break
			}
			if have && idx > cur.start+cur.count {
				// The demand skipped past this run and anything
				// contiguously in flight behind it: redirect.
				gen++
				_, sure = sess.NeedRun()
				wantCh <- jump{gen: gen, idx: idx, sure: sure}
				cur.prep.Release()
				cur, have = fetchRun{}, false
				continue
			}
			// No run yet, a stale run was dropped, or idx is exactly the
			// next contiguous block: take the next run.
			if have {
				cur.prep.Release() // fully consumed predecessor
			}
			r := <-runCh
			if r.gen != gen {
				// A stale-generation run is discarded speculation; its
				// blocks stay counted in totals and therefore in the waste.
				r.prep.Release()
				cur, have = fetchRun{}, false
				continue
			}
			if r.err != nil {
				return r.err
			}
			cur, have = r, true
		}
		fed++
		if err := feedPrepared(sess, col, idx, cur.prep); err != nil {
			return err
		}
	}
}

// prefetchLoop is the fetch+decrypt stage: it walks forward from the
// latest demand point in batched runs, decrypts each run through the
// session's prepared path, parks when it overruns the payload and
// restarts whenever the consumer redirects it.
func (s *Session) prefetchLoop(sess *soe.Session, docID string, numBlocks int, wantCh chan jump, runCh chan fetchRun, done chan struct{}, pfDone chan struct{}, totals *prefetchTotals) {
	defer close(pfDone)
	k := s.prefetch
	fr, _ := s.store.(frameReader)
	cur, gen, sure := -1, 0, 1
	for {
		if cur < 0 || cur >= numBlocks {
			select {
			case j := <-wantCh:
				cur, gen, sure = j.idx, j.gen, j.sure
			case <-done:
				return
			}
			continue
		}
		n := runLen(k, sure, numBlocks-cur)

		// Fetch the run; through the frame path when the store offers it
		// (the ciphertext then lives in a pooled buffer this pipeline
		// owns, so decryption can happen in place).
		var (
			blocks  [][]byte
			owned   bool
			release func()
			err     error
		)
		if fr != nil {
			var f *dsp.BlockFrame
			if f, err = fr.ReadBlocksFrame(docID, cur, n); err == nil {
				blocks, owned, release = f.Blocks(), true, f.Release
			}
		} else {
			blocks, err = dsp.ReadBlockRange(s.store, docID, cur, n)
		}
		for _, b := range blocks {
			totals.blocks++
			totals.bytes += int64(len(b))
		}

		// Decrypt off the consumer's critical path. Per-block integrity
		// failures ride inside the prepared run and surface only if the
		// card actually demands the bad block.
		var prep *soe.PreparedRun
		if err == nil {
			prep, err = sess.PrepareRun(cur, blocks, owned, release)
			if err != nil && release != nil {
				release()
			}
		}

		select {
		case runCh <- fetchRun{gen: gen, start: cur, count: len(blocks), prep: prep, err: err}:
			if err != nil {
				cur = -1 // park; the consumer aborts on the error
				continue
			}
			cur += len(blocks)
			if sure -= len(blocks); sure < 1 {
				sure = 1
			}
		case j := <-wantCh:
			// The run was fetched under the old demand and is never
			// delivered; it stays counted in totals (waste).
			prep.Release()
			cur, gen, sure = j.idx, j.gen, j.sure
		case <-done:
			prep.Release()
			return
		}
	}
}
