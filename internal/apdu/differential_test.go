package apdu

import (
	"fmt"
	"testing"

	"repro/internal/accessrule"
	"repro/internal/card"
	"repro/internal/docenc"
	"repro/internal/dsp"
	"repro/internal/proxy"
	"repro/internal/secure"
	"repro/internal/workload"
	"repro/internal/xpath"
)

// TestAPDUDifferential drives randomized sessions entirely over the APDU
// protocol — chunked commands, chunked record responses — and checks the
// result against the reference semantics. This is the third, most
// protocol-faithful layer of the differential tower (engine, encrypted
// pipeline, APDU).
func TestAPDUDifferential(t *testing.T) {
	iterations := 25
	if testing.Short() {
		iterations = 6
	}
	for seed := int64(0); seed < int64(iterations); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			doc := workload.RandomDocument(workload.TreeConfig{
				Seed: seed, Elements: 60 + int(seed*13), MaxDepth: 6, MaxFanout: 4,
				AttrProb: 0.25, TextProb: 0.7,
				Tags: []string{"a", "b", "c", "d", "e"},
			})
			rcfg := workload.RuleConfig{
				Seed: seed + 300, Count: 1 + int(seed%4),
				Tags:     []string{"a", "b", "c", "d", "e", "@a"},
				MaxSteps: 3, DescProb: 0.4, PredProb: 0.3, ValuePredProb: 0.3, NegProb: 0.4,
			}
			if seed%2 == 0 {
				rcfg.DefaultSign = accessrule.Permit
			}
			rs := workload.RandomRuleSet("u", rcfg)
			query := ""
			if seed%3 == 1 {
				query = workload.RandomQuery(workload.RuleConfig{
					Seed: seed + 800, Tags: rcfg.Tags, MaxSteps: 3, DescProb: 0.5,
				}).String()
			}

			key := secure.KeyFromSeed(fmt.Sprintf("apdu-diff-%d", seed))
			store := dsp.NewMemStore()
			pub := &proxy.Publisher{Store: store}
			if _, err := pub.PublishDocument(doc, docenc.EncodeOptions{
				DocID: "d", Key: key, BlockPlain: 64, MinSkipBytes: 24,
			}); err != nil {
				t.Fatal(err)
			}
			rs.DocID = "d"
			if err := pub.GrantRules(key, rs); err != nil {
				t.Fatal(err)
			}

			term := &Terminal{Store: store, Channel: NewApplet(card.New(card.Modern))}
			if err := term.ProvisionKey("d", key.Marshal()); err != nil {
				t.Fatal(err)
			}
			if err := term.InstallRules("u", "d"); err != nil {
				t.Fatal(err)
			}
			got, err := term.Query("u", "d", query)
			if err != nil {
				t.Fatalf("query: %v\nrules:\n%s", err, rs)
			}

			var q *xpath.Path
			if query != "" {
				q = xpath.MustParse(query)
			}
			want := accessrule.ApplyTreeQuery(doc, rs, q)
			if !got.Equal(want) {
				t.Fatalf("APDU result diverges from oracle\nrules:\n%s\nquery: %s", rs, query)
			}
		})
	}
}
