package apdu

import (
	"encoding/binary"
	"errors"

	"repro/internal/card"
	"repro/internal/mem"
	"repro/internal/secure"
	"repro/internal/soe"
	"repro/internal/xpath"
)

// Applet instruction bytes (CLA AppletCLA).
const (
	AppletCLA = 0x80

	// INSPutKey provisions a document key: data = str(docID) || key(48).
	INSPutKey = 0x10
	// INSPutRules installs a sealed rule set, chunked. P1=1 on the last
	// chunk. First chunk data = str(docID) || str(subject) || blob...;
	// later chunks are raw blob bytes.
	INSPutRules = 0x12
	// INSBegin opens a session: data = str(docID) || str(subject) ||
	// str(query) || flags byte (bit0: disable skip, bit1: disable copy).
	INSBegin = 0x20
	// INSHeader delivers the container header, chunked (P1=1 on last).
	INSHeader = 0x22
	// INSData delivers the next wanted cipher block, chunked (P1=1 on
	// last). The response starts draining output records.
	INSData = 0x24
	// INSGetOutput drains pending output records (<= 255 bytes each).
	INSGetOutput = 0x26
	// INSGetNeed returns the wanted block index as 4 big-endian bytes,
	// 0xFFFFFFFF when the session is done.
	INSGetNeed = 0x28
	// INSEnd aborts/closes the session.
	INSEnd = 0x2A
)

// Applet dispatches APDUs onto a card and at most one active session,
// like the mono-applicative e-gate applet of the demonstration.
type Applet struct {
	Card *card.Card

	sess    *soe.Session
	rulesIn chunkBuf
	hdrIn   chunkBuf
	blockIn chunkBuf
	rulesID struct{ docID, subject string }
	outBuf  []byte
}

// NewApplet wraps a provisionable card.
func NewApplet(c *card.Card) *Applet {
	return &Applet{Card: c}
}

// chunkBuf reassembles multi-APDU payloads.
type chunkBuf struct {
	data  []byte
	armed bool
}

func (b *chunkBuf) add(chunk []byte) {
	b.data = append(b.data, chunk...)
	b.armed = true
}

func (b *chunkBuf) take() []byte {
	d := b.data
	b.data = nil
	b.armed = false
	return d
}

// Process executes one command. It never panics on hostile input; every
// failure maps to a status word.
func (a *Applet) Process(c Command) Response {
	if c.CLA != AppletCLA {
		return Response{SW: SWUnknownINS}
	}
	switch c.INS {
	case INSPutKey:
		return a.putKey(c)
	case INSPutRules:
		return a.putRules(c)
	case INSBegin:
		return a.begin(c)
	case INSHeader:
		return a.header(c)
	case INSData:
		return a.data(c)
	case INSGetOutput:
		return a.getOutput()
	case INSGetNeed:
		return a.getNeed()
	case INSEnd:
		return a.end()
	default:
		return Response{SW: SWUnknownINS}
	}
}

func (a *Applet) putKey(c Command) Response {
	r := &reader{data: c.Data}
	docID := r.str()
	keyBytes := r.take(48)
	if r.err != nil || !r.done() {
		return Response{SW: SWWrongData}
	}
	key, err := secure.UnmarshalDocKey(keyBytes)
	if err != nil {
		return Response{SW: SWWrongData}
	}
	if err := a.Card.PutKey(docID, key); err != nil {
		return statusFor(err)
	}
	return Response{SW: SWOK}
}

func (a *Applet) putRules(c Command) Response {
	if !a.rulesIn.armed {
		r := &reader{data: c.Data}
		a.rulesID.docID = r.str()
		a.rulesID.subject = r.str()
		if r.err != nil {
			return Response{SW: SWWrongData}
		}
		a.rulesIn.add(r.rest())
	} else {
		a.rulesIn.add(c.Data)
	}
	if c.P1 != 1 {
		return Response{SW: SWOK} // more chunks follow
	}
	sealed := a.rulesIn.take()
	if err := a.Card.PutSealedRuleSet(a.rulesID.docID, a.rulesID.subject, sealed); err != nil {
		return statusFor(err)
	}
	return Response{SW: SWOK}
}

func (a *Applet) begin(c Command) Response {
	if a.sess != nil {
		a.sess.Abort()
		a.sess = nil
	}
	r := &reader{data: c.Data}
	docID := r.str()
	subject := r.str()
	queryStr := r.str()
	flags := r.byte()
	if r.err != nil || !r.done() {
		return Response{SW: SWWrongData}
	}
	var query *xpath.Path
	if queryStr != "" {
		q, err := xpath.Parse(queryStr)
		if err != nil {
			return Response{SW: SWWrongData}
		}
		query = q
	}
	sess, err := soe.NewSession(a.Card, docID, subject, query, soe.Options{
		DisableSkip: flags&1 != 0,
		DisableCopy: flags&2 != 0,
	})
	if err != nil {
		return statusFor(err)
	}
	a.sess = sess
	a.outBuf = nil
	return Response{SW: SWOK}
}

func (a *Applet) header(c Command) Response {
	if a.sess == nil {
		return Response{SW: SWConditions}
	}
	a.hdrIn.add(c.Data)
	if c.P1 != 1 {
		return Response{SW: SWOK}
	}
	if err := a.sess.LoadHeader(a.hdrIn.take()); err != nil {
		a.sess = nil
		return statusFor(err)
	}
	return Response{SW: SWOK}
}

func (a *Applet) data(c Command) Response {
	if a.sess == nil {
		return Response{SW: SWConditions}
	}
	a.blockIn.add(c.Data)
	if c.P1 != 1 {
		return Response{SW: SWOK}
	}
	idx := a.sess.NeedBlock()
	out, err := a.sess.Feed(idx, a.blockIn.take())
	if err != nil {
		a.sess = nil
		return statusFor(err)
	}
	a.outBuf = append(a.outBuf, out...)
	return a.drain()
}

func (a *Applet) getOutput() Response {
	return a.drain()
}

// drain returns up to MaxData pending output bytes; the status word says
// whether more remain.
func (a *Applet) drain() Response {
	n := len(a.outBuf)
	if n > MaxData {
		n = MaxData
	}
	chunk := a.outBuf[:n]
	a.outBuf = a.outBuf[n:]
	sw := uint16(SWOK)
	if len(a.outBuf) > 0 {
		hint := len(a.outBuf)
		if hint > 255 {
			hint = 255
		}
		sw = SWBytesRemain | uint16(hint)
	}
	return Response{Data: chunk, SW: sw}
}

func (a *Applet) getNeed() Response {
	if a.sess == nil {
		return Response{SW: SWConditions}
	}
	idx := a.sess.NeedBlock()
	var out [4]byte
	if idx < 0 {
		binary.BigEndian.PutUint32(out[:], 0xFFFFFFFF)
	} else {
		binary.BigEndian.PutUint32(out[:], uint32(idx))
	}
	return Response{Data: out[:], SW: SWOK}
}

func (a *Applet) end() Response {
	if a.sess != nil {
		a.sess.Abort()
		a.sess = nil
	}
	a.outBuf = nil
	return Response{SW: SWOK}
}

// statusFor maps internal errors onto card status words.
func statusFor(err error) Response {
	switch {
	case errors.Is(err, secure.ErrIntegrity):
		return Response{SW: SWSecurity}
	case errors.Is(err, mem.ErrBudget):
		return Response{SW: SWMemoryFailure}
	default:
		return Response{SW: SWConditions}
	}
}

// reader parses command data fields.
type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) str() string {
	l := r.uvarint()
	b := r.take(int(l))
	return string(b)
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.err = errors.New("apdu: truncated varint")
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.data) {
		r.err = errors.New("apdu: truncated field")
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) byte() byte {
	b := r.take(1)
	if len(b) == 1 {
		return b[0]
	}
	return 0
}

func (r *reader) rest() []byte {
	b := r.data[r.pos:]
	r.pos = len(r.data)
	return b
}

func (r *reader) done() bool { return r.err == nil && r.pos == len(r.data) }
