package apdu

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dsp"
	"repro/internal/proxy"
	"repro/internal/soe"
	"repro/internal/xmlstream"
)

// Channel abstracts the transport carrying APDUs to a card: in-process
// (the Applet itself), or any reader/writer pair in a deployment.
type Channel interface {
	Exchange(Command) (Response, error)
}

// Applet implements Channel directly (in-process card).
func (a *Applet) Exchange(c Command) (Response, error) {
	// Round-trip through the wire encoding to exercise framing exactly as
	// a reader device would.
	raw, err := c.Marshal()
	if err != nil {
		return Response{}, err
	}
	cmd, err := UnmarshalCommand(raw)
	if err != nil {
		return Response{}, err
	}
	resp := a.Process(cmd)
	return UnmarshalResponse(resp.Marshal())
}

var _ Channel = (*Applet)(nil)

// Terminal drives the full card dialogue over APDUs. It is the
// protocol-faithful counterpart of proxy.Terminal: same store, same
// result assembly, but every byte crosses the 255-byte APDU boundary.
type Terminal struct {
	Store   dsp.Store
	Channel Channel
}

// ProvisionKey installs a document key over the channel.
func (t *Terminal) ProvisionKey(docID string, key []byte) error {
	data := appendStr(nil, docID)
	data = append(data, key...)
	return t.simple(Command{CLA: AppletCLA, INS: INSPutKey, Data: data})
}

// InstallRules fetches the sealed rule set from the store and installs it
// chunk by chunk.
func (t *Terminal) InstallRules(subject, docID string) error {
	sealed, err := t.Store.RuleSet(docID, subject)
	if err != nil {
		return err
	}
	first := appendStr(nil, docID)
	first = appendStr(first, subject)
	chunks := chunkPayload(first, sealed)
	for i, chunk := range chunks {
		p1 := byte(0)
		if i == len(chunks)-1 {
			p1 = 1
		}
		if err := t.simple(Command{CLA: AppletCLA, INS: INSPutRules, P1: p1, Data: chunk}); err != nil {
			return err
		}
	}
	return nil
}

// Query runs a pull request entirely over APDUs and returns the
// authorized result tree (nil when nothing is visible).
func (t *Terminal) Query(subject, docID, query string) (*xmlstream.Node, error) {
	begin := appendStr(nil, docID)
	begin = appendStr(begin, subject)
	begin = appendStr(begin, query)
	begin = append(begin, 0) // flags
	if err := t.simple(Command{CLA: AppletCLA, INS: INSBegin, Data: begin}); err != nil {
		return nil, err
	}

	header, err := t.Store.Header(docID)
	if err != nil {
		return nil, err
	}
	hdrBytes, err := header.MarshalBinary()
	if err != nil {
		return nil, err
	}
	if err := t.sendChunked(INSHeader, hdrBytes, nil); err != nil {
		return nil, err
	}

	col := proxy.NewCollector()
	rec := &recordStream{col: col}
	for {
		idx, err := t.need()
		if err != nil {
			return nil, err
		}
		if idx < 0 {
			break
		}
		blk, err := t.Store.ReadBlock(docID, idx)
		if err != nil {
			return nil, err
		}
		if err := t.sendChunked(INSData, blk, rec); err != nil {
			return nil, err
		}
	}
	if err := rec.flushCheck(); err != nil {
		return nil, err
	}
	if err := t.simple(Command{CLA: AppletCLA, INS: INSEnd}); err != nil {
		return nil, err
	}
	return col.Result()
}

// recordStream reassembles records split across APDU response chunks.
type recordStream struct {
	col *proxy.Collector
	buf []byte
}

func (r *recordStream) add(chunk []byte) error {
	r.buf = append(r.buf, chunk...)
	n, err := soe.DecodeRecordsPartial(r.buf, r.col)
	if err != nil {
		return err
	}
	r.buf = r.buf[n:]
	return nil
}

// flushCheck verifies no partial record is left dangling at end of
// session.
func (r *recordStream) flushCheck() error {
	if len(r.buf) != 0 {
		return fmt.Errorf("apdu: %d bytes of an incomplete record at end of session", len(r.buf))
	}
	return nil
}

// need asks the card for the next wanted block.
func (t *Terminal) need() (int, error) {
	resp, err := t.Channel.Exchange(Command{CLA: AppletCLA, INS: INSGetNeed})
	if err != nil {
		return 0, err
	}
	if !resp.OK() {
		return 0, fmt.Errorf("apdu: GET_NEED failed with SW %04X", resp.SW)
	}
	if len(resp.Data) != 4 {
		return 0, fmt.Errorf("apdu: GET_NEED returned %d bytes", len(resp.Data))
	}
	v := binary.BigEndian.Uint32(resp.Data)
	if v == 0xFFFFFFFF {
		return -1, nil
	}
	return int(v), nil
}

// sendChunked transmits a payload in MaxData chunks, draining output
// records into the record stream (when given) as responses arrive.
func (t *Terminal) sendChunked(ins byte, payload []byte, rec *recordStream) error {
	chunks := chunkPayload(nil, payload)
	for i, chunk := range chunks {
		p1 := byte(0)
		if i == len(chunks)-1 {
			p1 = 1
		}
		resp, err := t.Channel.Exchange(Command{CLA: AppletCLA, INS: ins, P1: p1, Data: chunk})
		if err != nil {
			return err
		}
		if !resp.OK() {
			return fmt.Errorf("apdu: INS %02X failed with SW %04X", ins, resp.SW)
		}
		if rec != nil {
			if err := t.collect(resp, rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// collect feeds response bytes into the record stream and keeps draining
// while the card signals remaining output.
func (t *Terminal) collect(resp Response, rec *recordStream) error {
	for {
		if len(resp.Data) > 0 {
			if err := rec.add(resp.Data); err != nil {
				return err
			}
		}
		if resp.SW&0xFF00 != SWBytesRemain {
			return nil
		}
		var err error
		resp, err = t.Channel.Exchange(Command{CLA: AppletCLA, INS: INSGetOutput})
		if err != nil {
			return err
		}
		if !resp.OK() {
			return fmt.Errorf("apdu: GET_OUTPUT failed with SW %04X", resp.SW)
		}
	}
}

func (t *Terminal) simple(c Command) error {
	resp, err := t.Channel.Exchange(c)
	if err != nil {
		return err
	}
	if !resp.OK() {
		return fmt.Errorf("apdu: INS %02X failed with SW %04X", c.INS, resp.SW)
	}
	return nil
}

// chunkPayload splits first||payload into MaxData-sized chunks (at least
// one, possibly empty).
func chunkPayload(first, payload []byte) [][]byte {
	all := append(first, payload...)
	if len(all) == 0 {
		return [][]byte{nil}
	}
	var chunks [][]byte
	for len(all) > 0 {
		n := len(all)
		if n > MaxData {
			n = MaxData
		}
		chunks = append(chunks, all[:n])
		all = all[n:]
	}
	return chunks
}

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}
