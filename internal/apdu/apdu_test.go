package apdu

import (
	"bytes"
	"testing"

	"repro/internal/accessrule"
	"repro/internal/card"
	"repro/internal/docenc"
	"repro/internal/dsp"
	"repro/internal/proxy"
	"repro/internal/secure"
	"repro/internal/workload"
	"repro/internal/xmlstream"
)

func TestCommandFraming(t *testing.T) {
	c := Command{CLA: 0x80, INS: 0x24, P1: 1, P2: 0, Data: []byte{1, 2, 3}}
	raw, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCommand(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.CLA != c.CLA || back.INS != c.INS || back.P1 != c.P1 || !bytes.Equal(back.Data, c.Data) {
		t.Fatalf("round trip changed command: %+v", back)
	}

	// Header-only command.
	raw2, _ := Command{CLA: 0x80, INS: INSGetNeed}.Marshal()
	if len(raw2) != 4 {
		t.Errorf("header-only command must be 4 bytes, got %d", len(raw2))
	}

	// Oversized data.
	if _, err := (Command{Data: make([]byte, 256)}).Marshal(); err == nil {
		t.Error("oversized command accepted")
	}
	// Truncated frames.
	if _, err := UnmarshalCommand([]byte{1, 2}); err == nil {
		t.Error("short frame accepted")
	}
	if _, err := UnmarshalCommand([]byte{1, 2, 3, 4, 9, 1}); err == nil {
		t.Error("Lc mismatch accepted")
	}
}

func TestResponseFraming(t *testing.T) {
	r := Response{Data: []byte("out"), SW: SWOK}
	back, err := UnmarshalResponse(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.SW != SWOK || !bytes.Equal(back.Data, []byte("out")) {
		t.Fatalf("round trip changed response: %+v", back)
	}
	if !back.OK() {
		t.Error("SWOK must be OK")
	}
	if (Response{SW: SWSecurity}).OK() {
		t.Error("SWSecurity must not be OK")
	}
	if !(Response{SW: SWBytesRemain | 0x12}).OK() {
		t.Error("SWBytesRemain must be OK")
	}
	if _, err := UnmarshalResponse([]byte{1}); err == nil {
		t.Error("frame without SW accepted")
	}
}

// newAppletRig publishes a document and returns an APDU terminal wired to
// a fresh applet.
func newAppletRig(t *testing.T, doc *xmlstream.Node, docID, rules string) (*Terminal, *card.Card, secure.DocKey) {
	t.Helper()
	key := secure.KeyFromSeed("apdu:" + docID)
	store := dsp.NewMemStore()
	pub := &proxy.Publisher{Store: store}
	if _, err := pub.PublishDocument(doc, docenc.EncodeOptions{DocID: docID, Key: key}); err != nil {
		t.Fatal(err)
	}
	rs := workload.MustParseRules(rules)
	rs.DocID = docID
	if err := pub.GrantRules(key, rs); err != nil {
		t.Fatal(err)
	}
	c := card.New(card.Modern)
	term := &Terminal{Store: store, Channel: NewApplet(c)}
	return term, c, key
}

func TestAppletFullQuery(t *testing.T) {
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 2, Patients: 4, VisitsPerPatient: 2})
	rules := "subject nurse\ndefault +\n- //ssn\n- //contact"
	term, _, key := newAppletRig(t, doc, "folder", rules)

	if err := term.ProvisionKey("folder", key.Marshal()); err != nil {
		t.Fatal(err)
	}
	if err := term.InstallRules("nurse", "folder"); err != nil {
		t.Fatal(err)
	}
	tree, err := term.Query("nurse", "folder", "")
	if err != nil {
		t.Fatal(err)
	}
	rs := workload.MustParseRules(rules)
	want := accessrule.ApplyTree(doc, rs)
	if !tree.Equal(want) {
		t.Fatal("APDU query diverges from oracle")
	}
}

func TestAppletQueryWithXPath(t *testing.T) {
	doc := workload.Catalog(workload.CatalogConfig{Seed: 2, Categories: 3, ProductsPerCategory: 3})
	term, _, key := newAppletRig(t, doc, "cat", "subject u\ndefault +")
	_ = term.ProvisionKey("cat", key.Marshal())
	_ = term.InstallRules("u", "cat")
	tree, err := term.Query("u", "cat", "//product/name")
	if err != nil {
		t.Fatal(err)
	}
	if tree == nil || len(tree.Find("name")) == 0 {
		t.Fatal("query delivered nothing")
	}
	if len(tree.Find("price")) != 0 {
		t.Error("query leaked non-matching content")
	}
}

func TestAppletStatusWords(t *testing.T) {
	c := card.New(card.Modern)
	app := NewApplet(c)

	if resp := app.Process(Command{CLA: 0x00, INS: INSBegin}); resp.SW != SWUnknownINS {
		t.Errorf("wrong CLA: SW %04X", resp.SW)
	}
	if resp := app.Process(Command{CLA: AppletCLA, INS: 0xEE}); resp.SW != SWUnknownINS {
		t.Errorf("unknown INS: SW %04X", resp.SW)
	}
	if resp := app.Process(Command{CLA: AppletCLA, INS: INSPutKey, Data: []byte{1}}); resp.SW != SWWrongData {
		t.Errorf("malformed PUT_KEY: SW %04X", resp.SW)
	}
	// Session commands without a session.
	for _, ins := range []byte{INSHeader, INSData, INSGetNeed} {
		if resp := app.Process(Command{CLA: AppletCLA, INS: ins, P1: 1}); resp.SW != SWConditions {
			t.Errorf("INS %02X without session: SW %04X", ins, resp.SW)
		}
	}
	// Begin for an unprovisioned document.
	begin := appendStr(nil, "nosuch")
	begin = appendStr(begin, "u")
	begin = appendStr(begin, "")
	begin = append(begin, 0)
	if resp := app.Process(Command{CLA: AppletCLA, INS: INSBegin, Data: begin}); resp.SW != SWConditions {
		t.Errorf("begin without key: SW %04X", resp.SW)
	}
	// Begin with a bad query.
	_ = c.PutKey("doc", secure.KeyFromSeed("x"))
	_ = c.PutRuleSet(&accessrule.RuleSet{Subject: "u", DocID: "doc", DefaultSign: accessrule.Permit})
	begin = appendStr(nil, "doc")
	begin = appendStr(begin, "u")
	begin = appendStr(begin, "not-an-xpath")
	begin = append(begin, 0)
	if resp := app.Process(Command{CLA: AppletCLA, INS: INSBegin, Data: begin}); resp.SW != SWWrongData {
		t.Errorf("bad query: SW %04X", resp.SW)
	}
}

func TestAppletTamperedBlockSecuritySW(t *testing.T) {
	doc := workload.Agenda(workload.AgendaConfig{Seed: 4, Members: 3, EventsPerMember: 2})
	term, _, key := newAppletRig(t, doc, "a", "subject u\ndefault +")
	_ = term.ProvisionKey("a", key.Marshal())
	_ = term.InstallRules("u", "a")

	// Tamper the store, then drive the query: it must fail with an error
	// mentioning the security status word.
	if ms, ok := term.Store.(*dsp.MemStore); ok {
		_ = ms.Tamper("a", 1, 3)
	}
	if _, err := term.Query("u", "a", ""); err == nil {
		t.Fatal("tampered store went undetected over APDUs")
	}
}

func TestChunkPayload(t *testing.T) {
	chunks := chunkPayload([]byte{1, 2}, make([]byte, 600))
	if len(chunks) != 3 {
		t.Fatalf("602 bytes must make 3 chunks, got %d", len(chunks))
	}
	if len(chunks[0]) != MaxData || len(chunks[2]) != 602-2*MaxData {
		t.Errorf("chunk sizes wrong: %d, %d, %d", len(chunks[0]), len(chunks[1]), len(chunks[2]))
	}
	if got := chunkPayload(nil, nil); len(got) != 1 || got[0] != nil {
		t.Error("empty payload must make one empty chunk")
	}
}
