// Package apdu implements the ISO 7816-4 style command/response protocol
// between the terminal and the smart card (footnote 1 of the paper:
// "Application Protocol Data Unit: Communication protocol between the
// terminal and the smart card"), and the access-control applet dispatch
// table on top of it.
//
// Short APDUs carry at most 255 data bytes, which is why every payload of
// the architecture (rule blobs, container header, cipher blocks, output
// records) crosses the link in chunks. The applet is a thin protocol
// adapter over soe.Session: all evaluation logic stays in the SOE
// packages; this layer contributes framing, chunk reassembly and status
// words.
package apdu

import (
	"fmt"
)

// Command is one terminal-to-card APDU (short form).
type Command struct {
	CLA, INS, P1, P2 byte
	Data             []byte
}

// MaxData is the short-APDU data capacity.
const MaxData = 255

// Marshal encodes the command as CLA INS P1 P2 [Lc data].
func (c Command) Marshal() ([]byte, error) {
	if len(c.Data) > MaxData {
		return nil, fmt.Errorf("apdu: %d data bytes exceed short-APDU capacity", len(c.Data))
	}
	out := []byte{c.CLA, c.INS, c.P1, c.P2}
	if len(c.Data) > 0 {
		out = append(out, byte(len(c.Data)))
		out = append(out, c.Data...)
	}
	return out, nil
}

// UnmarshalCommand decodes a command frame.
func UnmarshalCommand(b []byte) (Command, error) {
	if len(b) < 4 {
		return Command{}, fmt.Errorf("apdu: command of %d bytes is shorter than a header", len(b))
	}
	c := Command{CLA: b[0], INS: b[1], P1: b[2], P2: b[3]}
	if len(b) == 4 {
		return c, nil
	}
	lc := int(b[4])
	if len(b) != 5+lc {
		return Command{}, fmt.Errorf("apdu: Lc=%d but %d data bytes follow", lc, len(b)-5)
	}
	c.Data = b[5 : 5+lc]
	return c, nil
}

// Status words.
const (
	SWOK            = 0x9000 // success
	SWBytesRemain   = 0x6100 // more output available (low byte: hint)
	SWWrongData     = 0x6A80 // malformed data field
	SWConditions    = 0x6985 // conditions of use not satisfied
	SWMemoryFailure = 0x6581 // secure memory exhausted
	SWSecurity      = 0x6982 // integrity/authentication failure
	SWUnknownINS    = 0x6D00 // INS not supported
)

// Response is one card-to-terminal APDU.
type Response struct {
	Data []byte
	SW   uint16
}

// Marshal encodes data || SW1 SW2.
func (r Response) Marshal() []byte {
	out := make([]byte, 0, len(r.Data)+2)
	out = append(out, r.Data...)
	return append(out, byte(r.SW>>8), byte(r.SW))
}

// UnmarshalResponse decodes a response frame.
func UnmarshalResponse(b []byte) (Response, error) {
	if len(b) < 2 {
		return Response{}, fmt.Errorf("apdu: response of %d bytes lacks a status word", len(b))
	}
	return Response{
		Data: b[:len(b)-2],
		SW:   uint16(b[len(b)-2])<<8 | uint16(b[len(b)-1]),
	}, nil
}

// OK reports whether the status word signals success (or remaining
// output).
func (r Response) OK() bool {
	return r.SW == SWOK || r.SW&0xFF00 == SWBytesRemain
}
