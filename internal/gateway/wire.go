// Package gateway exposes a fleet.Gateway over TCP: the network face of
// the paper's deployment story, where a long-running portal mediates
// many smart-card subjects against one untrusted store. The protocol is
// deliberately tiny — open-session / query / close-session / stats,
// length-prefixed frames, responses correlated by order — and one
// client multiplexes any number of wire sessions over one connection.
//
// A wire session is a cheap binding of a session id to a subject name;
// the expensive state (provisioned cards, cipher contexts, prefetch
// pipelines) lives in the fleet's session pool behind the server, so a
// client connecting, querying and disconnecting does not churn cards.
package gateway

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Wire protocol: each message is a uint32 big-endian length followed by
// the payload. Requests start with an op byte; responses start with a
// status byte (statusOK/statusErr) followed by the body or an error
// string.
const (
	// opOpen binds a session id to a subject: request is the subject
	// name; response is the new session id (uvarint).
	opOpen = 1
	// opQuery runs one pull query: request is session id, docID, query
	// expression; response is document version, blocks fetched, blocks
	// wasted (uvarints) and the result XML as the rest of the frame.
	opQuery = 2
	// opClose releases a session id; the pooled card state stays warm in
	// the fleet for the subject's next session.
	opClose = 3
	// opStats asks for the daemon's observability snapshot; the response
	// body is a JSON Snapshot.
	opStats = 4
)

const (
	statusOK  = 0
	statusErr = 1
)

// maxFrame bounds a single message: far above any authorized view this
// system produces, low enough to stop hostile length prefixes.
const maxFrame = 16 << 20

// ServerError is an error the gateway reported about a request (unknown
// session, rate limit, refused subject, …). The connection that carried
// it is still healthy.
type ServerError string

func (e ServerError) Error() string { return "gateway: server: " + string(e) }

// writeFrame sends one length-prefixed message.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("gateway: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrameInto receives one length-prefixed message into buf when its
// capacity suffices, allocating only when the frame is larger. The
// returned slice aliases buf in the reuse case.
func readFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("gateway: frame of %d bytes exceeds limit", n)
	}
	if uint32(cap(buf)) >= n {
		buf = buf[:n]
	} else {
		buf = make([]byte, n)
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// wire string helpers (uvarint length prefix).
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

type wireReader struct {
	data []byte
	pos  int
	err  error
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.err = fmt.Errorf("gateway: truncated varint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *wireReader) string() string {
	l := r.uvarint()
	if r.err != nil {
		return ""
	}
	if l > uint64(len(r.data)-r.pos) {
		r.err = fmt.Errorf("gateway: truncated field at offset %d", r.pos)
		return ""
	}
	s := string(r.data[r.pos : r.pos+int(l)])
	r.pos += int(l)
	return s
}

func (r *wireReader) rest() []byte {
	if r.err != nil {
		return nil
	}
	b := r.data[r.pos:]
	r.pos = len(r.data)
	return b
}

// bufPool recycles request/response build buffers across frames — the
// same discipline the dsp tier applies to its block frames, applied to
// the gateway's small control messages.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

const maxPooledBuf = 1 << 20

func getBuf() []byte { return (*bufPool.Get().(*[]byte))[:0] }

func putBuf(b []byte) {
	if cap(b) > maxPooledBuf {
		return // oversized one-off; let it be collected
	}
	bufPool.Put(&b)
}
