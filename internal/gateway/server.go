package gateway

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dsp"
	"repro/internal/fleet"
)

// ServerConfig tunes the serving machinery.
type ServerConfig struct {
	// Workers bounds the requests executing at once across all
	// connections (<= 0: 4 × GOMAXPROCS). The fleet's own admission
	// bound still applies underneath.
	Workers int
	// PipelineDepth bounds how many requests one connection may have in
	// flight before its reader stops pulling frames (<= 0: 32).
	PipelineDepth int
	// Label names this daemon in stats output.
	Label string
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Workers <= 0 {
		c.Workers = 4 * runtime.GOMAXPROCS(0)
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 32
	}
	return c
}

// Server terminates many concurrent subject connections over a
// fleet.Gateway. Each connection pipelines like the dsp server: a
// reader pulls frames, a bounded worker pool executes them against the
// fleet's session pool, and a per-connection writer puts responses back
// in request order.
//
// Close drains gracefully: in-flight queries finish and their responses
// flush before the connections come down — the behaviour a SIGTERM'd
// daemon owes clients mid-query.
type Server struct {
	fl  *fleet.Gateway
	cfg ServerConfig
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
	// CacheStats, when set, contributes the local block-cache snapshot
	// to Stats (the daemon wires it to the cache it put in front of the
	// remote store).
	CacheStats func() dsp.CacheStats
	// StoreStats, when set, contributes the backing dsp store's snapshot
	// to Stats (WAL/fsync/mmap counters when the store is durable).
	StoreStats func() (*dsp.ServerStats, error)

	workers chan struct{}
	started time.Time

	wireSessions atomic.Int64 // wire sessions currently open
	queries      atomic.Int64 // queries served over the wire

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	handlers sync.WaitGroup
}

// NewServer wraps a fleet gateway for wire service.
func NewServer(fl *fleet.Gateway, cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		fl:      fl,
		cfg:     cfg,
		workers: make(chan struct{}, cfg.Workers),
		conns:   make(map[net.Conn]struct{}),
		started: time.Now(),
	}
}

// Fleet exposes the wrapped gateway (the daemon closes it after drain).
func (s *Server) Fleet() *fleet.Gateway { return s.fl }

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = l.Close()
		return fmt.Errorf("gateway: server is closed")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.handlers.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Close drains the server: the listener stops, every connection's
// reader is kicked (reads unblock; writes are untouched), in-flight
// requests finish and their responses flush, and only then do the
// connections come down. The fleet underneath is left open — the owner
// closes it after Close returns, so a final stats snapshot can still be
// taken.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.handlers.Wait()
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	// Expire reads immediately: each connection's reader returns its
	// in-flight ReadFull with a timeout, stops pulling frames, and the
	// per-connection writer drains what was already dispatched before
	// the handler closes the socket. A plain conn.Close here would race
	// the final response writes.
	for c := range s.conns {
		_ = c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.handlers.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// connState is one connection's wire-session table: ids handed out by
// opOpen, looked up by opQuery, dropped by opClose. Guarded by its own
// lock because pipelined requests on one connection execute
// concurrently in the worker pool.
type connState struct {
	mu       sync.Mutex
	next     uint64
	sessions map[uint64]string
}

func (cs *connState) open(subject string) uint64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.next++
	cs.sessions[cs.next] = subject
	return cs.next
}

func (cs *connState) lookup(sid uint64) (string, bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	subject, ok := cs.sessions[sid]
	return subject, ok
}

func (cs *connState) close(sid uint64) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if _, ok := cs.sessions[sid]; !ok {
		return false
	}
	delete(cs.sessions, sid)
	return true
}

// handle owns one connection: reader → worker pool → ordered writer,
// the dsp server's shape.
func (s *Server) handle(conn net.Conn) {
	cs := &connState{sessions: make(map[uint64]string)}
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
		// Sessions the client never closed die with the connection.
		cs.mu.Lock()
		s.wireSessions.Add(-int64(len(cs.sessions)))
		cs.sessions = nil
		cs.mu.Unlock()
		s.handlers.Done()
	}()

	pending := make(chan chan []byte, s.cfg.PipelineDepth)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		broken := false
		for ch := range pending {
			resp := <-ch
			if !broken {
				if err := writeFrame(conn, resp); err != nil {
					if !errors.Is(err, net.ErrClosed) {
						s.logf("gateway: connection %s: write: %v", remoteAddr(conn), err)
					}
					_ = conn.Close()
					broken = true
				}
			}
			putBuf(resp)
		}
	}()

	for {
		req, err := readFrameInto(conn, nil)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, os.ErrDeadlineExceeded) {
				s.logf("gateway: connection %s: %v", remoteAddr(conn), err)
			}
			break
		}
		ch := make(chan []byte, 1)
		pending <- ch
		s.workers <- struct{}{}
		go func(req []byte, ch chan<- []byte) {
			defer func() { <-s.workers }()
			ch <- s.dispatch(cs, req)
		}(req, ch)
	}
	close(pending)
	<-writerDone
}

func remoteAddr(conn net.Conn) string {
	if a := conn.RemoteAddr(); a != nil {
		return a.String()
	}
	return "?"
}

// dispatch executes one request and builds the response in a pooled
// buffer (returned to the pool by the writer).
func (s *Server) dispatch(cs *connState, req []byte) []byte {
	resp := append(getBuf(), statusOK)
	fail := func(err error) []byte {
		resp = append(resp[:0], statusErr)
		return append(resp, err.Error()...)
	}
	if len(req) == 0 {
		return fail(fmt.Errorf("gateway: empty request"))
	}
	op := req[0]
	r := &wireReader{data: req, pos: 1}
	switch op {
	case opOpen:
		subject := r.string()
		if r.err != nil {
			return fail(r.err)
		}
		if subject == "" {
			return fail(fmt.Errorf("gateway: empty subject"))
		}
		sid := cs.open(subject)
		s.wireSessions.Add(1)
		return binary.AppendUvarint(resp, sid)
	case opQuery:
		sid := r.uvarint()
		docID := r.string()
		query := r.string()
		if r.err != nil {
			return fail(r.err)
		}
		subject, ok := cs.lookup(sid)
		if !ok {
			return fail(fmt.Errorf("gateway: unknown session %d", sid))
		}
		res, err := s.fl.Query(subject, docID, query)
		if err != nil {
			return fail(err)
		}
		s.queries.Add(1)
		resp = binary.AppendUvarint(resp, uint64(res.Version))
		resp = binary.AppendUvarint(resp, uint64(res.Stats.BlocksFetched))
		resp = binary.AppendUvarint(resp, uint64(res.Stats.BlocksWasted))
		return append(resp, res.XML()...)
	case opClose:
		sid := r.uvarint()
		if r.err != nil {
			return fail(r.err)
		}
		if !cs.close(sid) {
			return fail(fmt.Errorf("gateway: unknown session %d", sid))
		}
		s.wireSessions.Add(-1)
		return resp
	case opStats:
		js, err := json.Marshal(s.Snapshot())
		if err != nil {
			return fail(err)
		}
		return append(resp, js...)
	default:
		return fail(fmt.Errorf("gateway: unknown op %d", op))
	}
}
