package gateway

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/dsp"
	"repro/internal/fleet"
)

// Snapshot is the daemon's observability surface: one JSON document
// answering "what is this gateway doing right now" — wire traffic,
// session-pool occupancy and recycling, per-subject meters and prefetch
// waste, the local block cache, and the backing store's WAL/fsync
// counters when the daemon can reach them.
type Snapshot struct {
	Label         string  `json:"label,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// WireSessions is the number of wire sessions currently open across
	// every client connection; Queries counts queries served over the
	// wire since start.
	WireSessions int64 `json:"wire_sessions"`
	Queries      int64 `json:"queries"`
	// Pool aggregates the fleet's session-pool telemetry.
	Pool fleet.PoolStats `json:"pool"`
	// Subjects carries each subject's meters, transfer counters and pool
	// occupancy.
	Subjects []fleet.SubjectStats `json:"subjects"`
	// Cache is the daemon's local block cache, when one fronts the store.
	Cache *dsp.CacheStats `json:"cache,omitempty"`
	// CacheHitRate flattens Cache's hit rate for dashboards.
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
	// Store is the backing dsp tier's snapshot (its own cache, WAL and
	// fsync counters), when the daemon can fetch it.
	Store *dsp.ServerStats `json:"store,omitempty"`
	// StoreError reports why Store is absent when fetching it failed —
	// a stats endpoint must degrade loudly, not silently.
	StoreError string `json:"store_error,omitempty"`
}

// Snapshot assembles the current observability snapshot.
func (s *Server) Snapshot() Snapshot {
	snap := Snapshot{
		Label:         s.cfg.Label,
		UptimeSeconds: time.Since(s.started).Seconds(),
		WireSessions:  s.wireSessions.Load(),
		Queries:       s.queries.Load(),
		Pool:          s.fl.PoolStats(),
		Subjects:      s.fl.Stats(),
	}
	if s.CacheStats != nil {
		cs := s.CacheStats()
		snap.Cache = &cs
		snap.CacheHitRate = cs.HitRate()
	}
	if s.StoreStats != nil {
		st, err := s.StoreStats()
		if err != nil {
			snap.StoreError = err.Error()
		} else {
			snap.Store = st
		}
	}
	return snap
}

// StatsHandler serves the snapshot as JSON — the daemon mounts it at
// /stats on its HTTP listener.
func (s *Server) StatsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.Snapshot()); err != nil {
			s.logf("gateway: /stats encode: %v", err)
		}
	})
}
