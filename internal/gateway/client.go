package gateway

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// Client talks to a gatewayd server over one connection. Requests are
// serialized on the connection (responses are correlated by order);
// any number of Sessions may be open at once and used from different
// goroutines — the gateway's fleet runs their queries concurrently up
// to its pool bounds even though the frames interleave on one wire.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	// recv is the reusable receive buffer; responses are parsed into
	// owned values under mu before the next round trip reuses it.
	recv []byte
}

// Dial connects to a gatewayd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gateway: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// Close terminates the connection; open sessions die with it.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip runs one exchange and hands the response body to parse
// while the connection lock is still held — the body aliases the
// reusable receive buffer, so parse must copy out what it keeps.
func (c *Client) roundTrip(req []byte, parse func(body []byte) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, req); err != nil {
		return err
	}
	resp, err := readFrameInto(c.conn, c.recv[:0:cap(c.recv)])
	if err != nil {
		return err
	}
	c.recv = resp
	if len(resp) == 0 {
		return fmt.Errorf("gateway: empty response")
	}
	switch resp[0] {
	case statusOK:
		if parse == nil {
			return nil
		}
		return parse(resp[1:])
	case statusErr:
		return ServerError(resp[1:])
	default:
		return fmt.Errorf("gateway: bad response status %d", resp[0])
	}
}

// Session is one subject binding on the wire. The heavyweight state it
// stands for (card, keys, rules, pipeline) is pooled server-side per
// subject, so opening and closing sessions is cheap by design.
type Session struct {
	c       *Client
	id      uint64
	subject string
}

// Open binds a new wire session to subject.
func (c *Client) Open(subject string) (*Session, error) {
	req := appendString(append(getBuf(), opOpen), subject)
	defer putBuf(req)
	var id uint64
	err := c.roundTrip(req, func(body []byte) error {
		v, n := binary.Uvarint(body)
		if n <= 0 {
			return fmt.Errorf("gateway: bad open response")
		}
		id = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Session{c: c, id: id, subject: subject}, nil
}

// Subject reports the subject this session is bound to.
func (s *Session) Subject() string { return s.subject }

// QueryResult is one pull query's outcome over the wire.
type QueryResult struct {
	// XML is the authorized view ("" when nothing is visible).
	XML string
	// Version is the document version the query was served from.
	Version uint32
	// BlocksFetched / BlocksWasted are the transfer counters of the
	// server-side session that ran the query.
	BlocksFetched int
	BlocksWasted  int
}

// Query runs one pull query. query is an XP{[],*,//} expression, or ""
// for the full authorized view.
func (s *Session) Query(docID, query string) (*QueryResult, error) {
	req := binary.AppendUvarint(append(getBuf(), opQuery), s.id)
	req = appendString(req, docID)
	req = appendString(req, query)
	defer putBuf(req)
	res := &QueryResult{}
	err := s.c.roundTrip(req, func(body []byte) error {
		r := &wireReader{data: body}
		version := r.uvarint()
		fetched := r.uvarint()
		wasted := r.uvarint()
		xml := r.rest()
		if r.err != nil {
			return r.err
		}
		res.Version = uint32(version)
		res.BlocksFetched = int(fetched)
		res.BlocksWasted = int(wasted)
		res.XML = string(xml) // copy out: body aliases the recv buffer
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Close releases the wire session; the subject's pooled cards stay warm
// server-side.
func (s *Session) Close() error {
	req := binary.AppendUvarint(append(getBuf(), opClose), s.id)
	defer putBuf(req)
	return s.c.roundTrip(req, nil)
}

// Stats fetches the daemon's observability snapshot.
func (c *Client) Stats() (*Snapshot, error) {
	req := append(getBuf(), opStats)
	defer putBuf(req)
	var snap Snapshot
	err := c.roundTrip(req, func(body []byte) error {
		return json.Unmarshal(body, &snap)
	})
	if err != nil {
		return nil, err
	}
	return &snap, nil
}
