package gateway

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/card"
	"repro/internal/docenc"
	"repro/internal/dsp"
	"repro/internal/fleet"
	"repro/internal/proxy"
	"repro/internal/secure"
	"repro/internal/workload"
)

const testDoc = "gw-folder"

// ruleTemplates are the access profiles the churn subjects cycle
// through; every subject of one template sees the same authorized view,
// which is what lets a serial oracle check hundreds of subjects.
var ruleTemplates = []string{
	"subject T\ndefault +",
	"subject T\ndefault +\n- //ssn",
	"subject T\ndefault -\n+ //patient/name\n+ //visit/date",
	"subject T\ndefault -\n+ //emergency",
}

// world is a published document behind a loopback dsp server — the
// store side of the full deployment: gatewayd's fleet pulls blocks over
// real TCP through the pooled frame path.
type world struct {
	store    *dsp.MemStore
	key      secure.DocKey
	dspAddr  string
	dspSrv   *dsp.Server
	dspCache *dsp.Cache
	// oracle[template] = serial-terminal XML for that access profile.
	oracle []string
}

// subjectName assigns subject i to its rule template.
func subjectName(i int) string { return fmt.Sprintf("subj-%03d", i) }

func templateOf(i int) int { return i % len(ruleTemplates) }

// newWorld publishes the document, grants each of n subjects its
// template's rules, computes the per-template oracle, and serves the
// store over loopback TCP.
func newWorld(t *testing.T, n int) *world {
	t.Helper()
	w := &world{store: dsp.NewMemStore(), key: secure.KeyFromSeed(testDoc)}
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 77, Patients: 5, VisitsPerPatient: 2})
	pub := &proxy.Publisher{Store: w.store}
	if _, err := pub.PublishDocument(doc, docenc.EncodeOptions{
		DocID: testDoc, Key: w.key, BlockPlain: 128, MinSkipBytes: 32,
	}); err != nil {
		t.Fatal(err)
	}
	// At least one subject per template, so the oracle pass below can
	// always query subject tmpl under template tmpl.
	if n < len(ruleTemplates) {
		n = len(ruleTemplates)
	}
	for i := 0; i < n; i++ {
		rs := workload.MustParseRules(ruleTemplates[templateOf(i)])
		rs.Subject = subjectName(i)
		rs.DocID = testDoc
		if err := pub.GrantRules(w.key, rs); err != nil {
			t.Fatal(err)
		}
	}
	// Serial oracle per template, straight against the in-process store.
	for tmpl := range ruleTemplates {
		c := card.New(card.Modern)
		if err := c.PutKey(testDoc, w.key); err != nil {
			t.Fatal(err)
		}
		term := &proxy.Terminal{Store: w.store, Card: c}
		subject := subjectName(tmpl) // subject tmpl uses template tmpl
		if err := term.InstallRules(subject, testDoc); err != nil {
			t.Fatal(err)
		}
		res, err := term.Query(subject, testDoc, "")
		if err != nil {
			t.Fatal(err)
		}
		w.oracle = append(w.oracle, res.XML())
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w.dspAddr = l.Addr().String()
	w.dspCache = dsp.NewCache(w.store, 16<<20)
	w.dspSrv = dsp.NewServer(w.dspCache)
	go func() { _ = w.dspSrv.Serve(l) }()
	t.Cleanup(func() { _ = w.dspSrv.Close() })
	return w
}

// gatewayd stands up the full daemon stack minus main(): dsp pool over
// loopback TCP, fleet session pool, wire server on its own loopback
// listener.
func (w *world) gatewayd(t *testing.T, fcfg fleet.Config) (*Server, string) {
	t.Helper()
	pool, err := dsp.DialPool(w.dspAddr, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pool.Close() })
	fcfg.Store = pool
	fcfg.Keys = fleet.FixedKeys(map[string]secure.DocKey{testDoc: w.key})
	if fcfg.Prefetch == 0 {
		fcfg.Prefetch = proxy.DefaultPrefetch
	}
	fl, err := fleet.New(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(fl, ServerConfig{Label: "test"})
	srv.CacheStats = w.dspCache.Stats
	srv.StoreStats = pool.StoreStats
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() {
		_ = srv.Close()
		fl.Close()
	})
	return srv, addr
}

// TestGatewaydChurnHammer is the session-recycling churn test: hundreds
// of subjects connect, query, and disconnect over loopback TCP, twice,
// so every subject's second round must land on recycled pool state.
// Results are checked against the serial oracle; afterwards the pool
// must be fully idle (no leaked checkouts), recycling must have
// happened, and ReapIdle must be able to empty the pool completely (a
// leaked frame or pin would keep a session's query marked in flight and
// show up here as occupancy — and -race covers the rest).
func TestGatewaydChurnHammer(t *testing.T) {
	const subjects = 256
	w := newWorld(t, subjects)
	srv, addr := w.gatewayd(t, fleet.Config{})

	const (
		workers = 32
		rounds  = 2 // reconnects: round 2 rides recycled sessions
		queries = 2
	)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for s := wk; s < subjects; s += workers {
					if err := churnOnce(addr, s, queries, w.oracle); err != nil {
						errCh <- fmt.Errorf("subject %d round %d: %w", s, r, err)
						return
					}
				}
			}
		}(wk)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	ps := srv.Fleet().PoolStats()
	if ps.SessionsInUse != 0 {
		t.Errorf("pool reports %d sessions still checked out after the hammer", ps.SessionsInUse)
	}
	if ps.Subjects != subjects {
		t.Errorf("pool holds %d subjects, want %d", ps.Subjects, subjects)
	}
	wantQueries := int64(subjects * rounds * queries)
	if ps.Queries != wantQueries {
		t.Errorf("pool served %d queries, want %d", ps.Queries, wantQueries)
	}
	if ps.Errors != 0 {
		t.Errorf("pool recorded %d errors", ps.Errors)
	}
	if ps.Recycles == 0 {
		t.Error("no session recycling happened across reconnect rounds")
	}
	if ps.Recycles < wantQueries {
		t.Errorf("recycles = %d, want >= %d (every successful query recycles)", ps.Recycles, wantQueries)
	}
	snap := srv.Snapshot()
	if snap.WireSessions != 0 {
		t.Errorf("%d wire sessions leaked past their connections", snap.WireSessions)
	}
	if snap.Queries != wantQueries {
		t.Errorf("wire served %d queries, want %d", snap.Queries, wantQueries)
	}
	// Every session must be reapable: a stuck query or leaked checkout
	// would leave live-but-unreapable occupancy behind.
	reaped := srv.Fleet().ReapIdle(0)
	if after := srv.Fleet().PoolStats(); after.SessionsLive != 0 {
		t.Errorf("reaped %d sessions but %d still live", reaped, after.SessionsLive)
	}
}

// churnOnce is one subject's connect/query/disconnect cycle.
func churnOnce(addr string, subjIdx, queries int, oracle []string) error {
	c, err := Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	sess, err := c.Open(subjectName(subjIdx))
	if err != nil {
		return err
	}
	want := oracle[templateOf(subjIdx)]
	for q := 0; q < queries; q++ {
		res, err := sess.Query(testDoc, "")
		if err != nil {
			return err
		}
		if res.XML != want {
			return fmt.Errorf("result diverges from the serial oracle")
		}
		if res.BlocksFetched == 0 {
			return fmt.Errorf("query reported zero blocks fetched")
		}
	}
	return sess.Close()
}

// slowStore delays block reads so a query is reliably in flight when
// the drain test pulls the plug.
type slowStore struct {
	dsp.Store
	delay time.Duration
}

func (s *slowStore) ReadBlock(docID string, idx int) ([]byte, error) {
	time.Sleep(s.delay)
	return s.Store.ReadBlock(docID, idx)
}

// TestGatewaydDrainMidQuery: Close must let an in-flight query finish
// and flush its response before the connection comes down, and refuse
// new connections afterwards.
func TestGatewaydDrainMidQuery(t *testing.T) {
	w := newWorld(t, 1)
	fl, err := fleet.New(fleet.Config{
		Store: &slowStore{Store: w.store, delay: 2 * time.Millisecond},
		Keys:  fleet.FixedKeys(map[string]secure.DocKey{testDoc: w.key}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	srv := NewServer(fl, ServerConfig{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	go func() { _ = srv.Serve(l) }()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Open(subjectName(0))
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		res *QueryResult
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := sess.Query(testDoc, "")
		resCh <- outcome{res, err}
	}()
	// Let the query reach the slow store, then drain while it is in
	// flight.
	time.Sleep(5 * time.Millisecond)
	closed := make(chan struct{})
	go func() {
		_ = srv.Close()
		close(closed)
	}()

	out := <-resCh
	if out.err != nil {
		t.Fatalf("in-flight query failed during drain: %v", out.err)
	}
	if out.res.XML != w.oracle[0] {
		t.Error("drained query's result diverges from the oracle")
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the in-flight query finished")
	}
	if srv.Snapshot().Queries != 1 {
		t.Errorf("drained server counted %d queries, want 1", srv.Snapshot().Queries)
	}
	// The listener is down: new connections must fail.
	if _, err := Dial(addr); err == nil {
		t.Error("drained server accepted a new connection")
	}
}

// TestGatewaydStats covers both stats surfaces: the wire opStats and
// the HTTP /stats handler must report pool, cache, meter and store
// metrics after traffic.
func TestGatewaydStats(t *testing.T) {
	w := newWorld(t, 4)
	srv, addr := w.gatewayd(t, fleet.Config{})

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 4; i++ {
		sess, err := c.Open(subjectName(i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Query(testDoc, ""); err != nil {
			t.Fatal(err)
		}
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
	}

	check := func(name string, snap *Snapshot) {
		t.Helper()
		if snap.Queries != 4 {
			t.Errorf("%s: queries = %d, want 4", name, snap.Queries)
		}
		if snap.Pool.Subjects != 4 || snap.Pool.Recycles == 0 {
			t.Errorf("%s: pool metrics missing: %+v", name, snap.Pool)
		}
		if len(snap.Subjects) != 4 {
			t.Errorf("%s: %d subject entries, want 4", name, len(snap.Subjects))
		}
		for _, st := range snap.Subjects {
			if st.Queries > 0 && st.Meter.BytesToCard == 0 {
				t.Errorf("%s: subject %s has queries but an empty meter", name, st.Subject)
			}
		}
		if snap.Cache == nil || snap.Cache.Hits+snap.Cache.Misses == 0 {
			t.Errorf("%s: cache metrics missing", name)
		}
		if snap.Store == nil {
			t.Errorf("%s: store stats missing (%s)", name, snap.StoreError)
		} else if snap.Store.Documents != 1 {
			t.Errorf("%s: store reports %d documents, want 1", name, snap.Store.Documents)
		}
		if snap.Label != "test" {
			t.Errorf("%s: label = %q", name, snap.Label)
		}
	}

	// Wire surface.
	snap, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	check("opStats", snap)

	// HTTP surface.
	rec := httptest.NewRecorder()
	srv.StatsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("/stats returned %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("/stats content type %q", ct)
	}
	var httpSnap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &httpSnap); err != nil {
		t.Fatalf("/stats is not valid JSON: %v", err)
	}
	check("/stats", &httpSnap)
	if !strings.Contains(rec.Body.String(), "sessions_idle") {
		t.Error("/stats JSON lacks pool occupancy fields")
	}
}

// TestGatewaydWireErrors: server-reported errors must come back as
// ServerError values and leave the connection healthy.
func TestGatewaydWireErrors(t *testing.T) {
	w := newWorld(t, 1)
	_, addr := w.gatewayd(t, fleet.Config{})

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Open(""); err == nil {
		t.Error("empty subject must refuse")
	}
	sess, err := c.Open(subjectName(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query("no-such-doc", ""); err == nil {
		t.Error("unknown document must refuse")
	} else if _, ok := err.(ServerError); !ok {
		t.Errorf("server-side failure surfaced as %T, want ServerError", err)
	}
	// The connection survived the errors.
	if res, err := sess.Query(testDoc, ""); err != nil {
		t.Fatalf("healthy query after server errors: %v", err)
	} else if res.XML != w.oracle[0] {
		t.Error("result diverges from the oracle")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err == nil {
		t.Error("double session close must refuse")
	}
}
