// Package pki simulates the public-key infrastructure of the
// demonstration platform: document secret keys are "exchanged between
// users thanks to a public key infrastructure (PKI)", which the authors
// themselves "simulate [...] to keep the demonstration independent of a
// network connection" (Section 3, footnote 2). We make the same
// substitution: real asymmetric cryptography (X25519 ECDH + HKDF-style
// derivation), in-process registry instead of certificate chains.
//
// The flow it supports is the community-sharing scenario: the document
// owner wraps the document key for each community member; the member's
// terminal unwraps it and provisions the member's card.
package pki

import (
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"
	"sync"

	"repro/internal/secure"
)

// Principal is one registered user: a name and an X25519 key pair. The
// private key never leaves the principal (in the deployed system it lives
// in the user's card).
type Principal struct {
	Name string
	priv *ecdh.PrivateKey
}

// Public returns the principal's public key bytes.
func (p *Principal) Public() []byte {
	return p.priv.PublicKey().Bytes()
}

// Authority is the simulated PKI: a registry of principals. A zero
// authority uses crypto/rand; NewSeededAuthority derives keys
// deterministically for reproducible workloads and tests.
type Authority struct {
	mu    sync.Mutex
	users map[string]*Principal
	rng   io.Reader
}

// NewAuthority returns an Authority drawing keys from crypto/rand.
func NewAuthority() *Authority {
	return &Authority{users: make(map[string]*Principal), rng: rand.Reader}
}

// NewSeededAuthority returns a deterministic Authority (tests and
// experiment harnesses).
func NewSeededAuthority(seed string) *Authority {
	return &Authority{users: make(map[string]*Principal), rng: newDetReader(seed)}
}

// Register creates (or returns) the named principal.
func (a *Authority) Register(name string) (*Principal, error) {
	if name == "" {
		return nil, fmt.Errorf("pki: empty principal name")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if p, ok := a.users[name]; ok {
		return p, nil
	}
	// Draw the private scalar directly rather than via GenerateKey: the
	// standard library deliberately consumes a random extra byte there
	// (randutil.MaybeReadByte), which would defeat seeded determinism.
	var scalar [32]byte
	if _, err := io.ReadFull(a.rng, scalar[:]); err != nil {
		return nil, fmt.Errorf("pki: generating key for %s: %w", name, err)
	}
	priv, err := ecdh.X25519().NewPrivateKey(scalar[:])
	if err != nil {
		return nil, fmt.Errorf("pki: generating key for %s: %w", name, err)
	}
	p := &Principal{Name: name, priv: priv}
	a.users[name] = p
	return p, nil
}

// Lookup returns a registered principal.
func (a *Authority) Lookup(name string) (*Principal, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.users[name]
	if !ok {
		return nil, fmt.Errorf("pki: unknown principal %q", name)
	}
	return p, nil
}

// WrappedKey is a document key sealed for one recipient.
type WrappedKey struct {
	// Sender and Recipient name the endpoints (authenticated by the KEK
	// derivation: only this pair derives the same secret).
	Sender    string
	Recipient string
	// DocID binds the wrap to a document.
	DocID string
	// Sealed is the encrypted key material.
	Sealed []byte
}

// Wrap seals a document key from sender to the named recipient.
func (a *Authority) Wrap(sender *Principal, recipient string, docID string, key secure.DocKey) (*WrappedKey, error) {
	rcpt, err := a.Lookup(recipient)
	if err != nil {
		return nil, err
	}
	kek, err := deriveKEK(sender.priv, rcpt.priv.PublicKey(), sender.Name, recipient, docID)
	if err != nil {
		return nil, err
	}
	sealed, err := secure.EncryptBlob(kek, "pki:"+docID, 0, key.Marshal())
	if err != nil {
		return nil, err
	}
	return &WrappedKey{Sender: sender.Name, Recipient: recipient, DocID: docID, Sealed: sealed}, nil
}

// Unwrap opens a wrapped key as the recipient.
func (a *Authority) Unwrap(recipient *Principal, w *WrappedKey) (secure.DocKey, error) {
	if w.Recipient != recipient.Name {
		return secure.DocKey{}, fmt.Errorf("pki: wrap is for %q, not %q", w.Recipient, recipient.Name)
	}
	sender, err := a.Lookup(w.Sender)
	if err != nil {
		return secure.DocKey{}, err
	}
	kek, err := deriveKEK(recipient.priv, sender.priv.PublicKey(), w.Sender, recipient.Name, w.DocID)
	if err != nil {
		return secure.DocKey{}, err
	}
	plain, err := secure.DecryptBlob(kek, "pki:"+w.DocID, 0, w.Sealed)
	if err != nil {
		return secure.DocKey{}, fmt.Errorf("pki: unwrapping: %w", err)
	}
	return secure.UnmarshalDocKey(plain)
}

// deriveKEK computes the pairwise key-encryption key: ECDH shared secret
// expanded with the (sender, recipient, doc) context. Both directions
// derive the same KEK because X25519(a, B) == X25519(b, A) and the
// context strings are ordered by role, not by who computes.
func deriveKEK(own *ecdh.PrivateKey, peer *ecdh.PublicKey, sender, recipient, docID string) (secure.DocKey, error) {
	shared, err := own.ECDH(peer)
	if err != nil {
		return secure.DocKey{}, fmt.Errorf("pki: ECDH: %w", err)
	}
	expand := func(label string) []byte {
		mac := hmac.New(sha256.New, shared)
		mac.Write([]byte(label))
		mac.Write([]byte(sender))
		mac.Write([]byte{0})
		mac.Write([]byte(recipient))
		mac.Write([]byte{0})
		mac.Write([]byte(docID))
		return mac.Sum(nil)
	}
	var kek secure.DocKey
	copy(kek.Enc[:], expand("kek-enc"))
	copy(kek.Mac[:], expand("kek-mac"))
	return kek, nil
}

// detReader is a deterministic byte stream (SHA-256 in counter mode) for
// seeded authorities.
type detReader struct {
	seed  []byte
	ctr   uint64
	cache []byte
}

func newDetReader(seed string) *detReader {
	return &detReader{seed: []byte("pki-seed:" + seed)}
}

func (r *detReader) Read(p []byte) (int, error) {
	for len(r.cache) < len(p) {
		h := sha256.New()
		h.Write(r.seed)
		var c [8]byte
		for i := 0; i < 8; i++ {
			c[i] = byte(r.ctr >> (8 * i))
		}
		h.Write(c[:])
		r.ctr++
		r.cache = append(r.cache, h.Sum(nil)...)
	}
	copy(p, r.cache[:len(p)])
	r.cache = r.cache[len(p):]
	return len(p), nil
}
