package pki

import (
	"testing"

	"repro/internal/secure"
)

func TestWrapUnwrap(t *testing.T) {
	a := NewSeededAuthority("t1")
	alice, err := a.Register("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := a.Register("bob")
	if err != nil {
		t.Fatal(err)
	}
	key := secure.KeyFromSeed("doc-key")
	w, err := a.Wrap(alice, "bob", "doc1", key)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Unwrap(bob, w)
	if err != nil {
		t.Fatal(err)
	}
	if got != key {
		t.Fatal("unwrapped key differs")
	}
}

func TestUnwrapWrongRecipient(t *testing.T) {
	a := NewSeededAuthority("t2")
	alice, _ := a.Register("alice")
	_, _ = a.Register("bob")
	carol, _ := a.Register("carol")
	w, err := a.Wrap(alice, "bob", "doc1", secure.KeyFromSeed("k"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Unwrap(carol, w); err == nil {
		t.Error("carol unwrapped bob's key")
	}
	// Even lying about the recipient field must fail (the KEK binds the
	// true key pair).
	w.Recipient = "carol"
	if _, err := a.Unwrap(carol, w); err == nil {
		t.Error("renamed wrap unwrapped by the wrong key pair")
	}
}

func TestWrapBindsDocument(t *testing.T) {
	a := NewSeededAuthority("t3")
	alice, _ := a.Register("alice")
	bob, _ := a.Register("bob")
	w, _ := a.Wrap(alice, "bob", "doc1", secure.KeyFromSeed("k"))
	w.DocID = "doc2"
	if _, err := a.Unwrap(bob, w); err == nil {
		t.Error("wrap replayed for another document")
	}
}

func TestWrapTamperDetected(t *testing.T) {
	a := NewSeededAuthority("t4")
	alice, _ := a.Register("alice")
	bob, _ := a.Register("bob")
	w, _ := a.Wrap(alice, "bob", "doc1", secure.DocKey{})
	w.Sealed[3] ^= 0xFF
	if _, err := a.Unwrap(bob, w); err == nil {
		t.Error("tampered wrap accepted")
	}
}

func TestRegisterIdempotent(t *testing.T) {
	a := NewSeededAuthority("t5")
	p1, _ := a.Register("alice")
	p2, _ := a.Register("alice")
	if p1 != p2 {
		t.Error("re-registering must return the same principal")
	}
	if _, err := a.Register(""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := a.Lookup("nobody"); err == nil {
		t.Error("unknown lookup succeeded")
	}
}

func TestSeededDeterminism(t *testing.T) {
	a1 := NewSeededAuthority("same")
	a2 := NewSeededAuthority("same")
	p1, _ := a1.Register("alice")
	p2, _ := a2.Register("alice")
	if string(p1.Public()) != string(p2.Public()) {
		t.Error("same seed must derive the same keys")
	}
	a3 := NewSeededAuthority("different")
	p3, _ := a3.Register("alice")
	if string(p1.Public()) == string(p3.Public()) {
		t.Error("different seeds must derive different keys")
	}
}

func TestRandomAuthority(t *testing.T) {
	a := NewAuthority()
	alice, err := a.Register("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := a.Register("bob")
	if err != nil {
		t.Fatal(err)
	}
	key, err := secure.NewDocKey()
	if err != nil {
		t.Fatal(err)
	}
	w, err := a.Wrap(bob, "alice", "d", key)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Unwrap(alice, w)
	if err != nil || got != key {
		t.Fatalf("random-key round trip failed: %v", err)
	}
}
