package soe

import (
	"testing"

	"repro/internal/docenc"
	"repro/internal/workload"
	"repro/internal/xpath"
)

// TestNeedRunLinearGeometry drives a no-skip session block by block and
// checks the demand signal against the header geometry at every step,
// including the final partial block.
func TestNeedRunLinearGeometry(t *testing.T) {
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 31, Patients: 3, VisitsPerPatient: 2})
	c, key := provision(t, "nr", "subject u\ndefault +")

	var container *docenc.Container
	for _, bp := range []int{64, 96, 80} {
		cand, _, err := docenc.Encode(doc, docenc.EncodeOptions{DocID: "nr", Key: key, BlockPlain: bp})
		if err != nil {
			t.Fatal(err)
		}
		if cand.Header.PayloadLen%uint64(cand.Header.BlockPlain) != 0 {
			container = cand
			break
		}
	}
	if container == nil {
		t.Fatal("could not produce a payload with a partial last block")
	}
	numBlocks := container.Header.NumBlocks()

	sess, err := NewSession(c, "nr", "u", nil, Options{DisableSkip: true, DisableCopy: true})
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := container.Header.MarshalBinary()
	if err := sess.LoadHeader(hb); err != nil {
		t.Fatal(err)
	}

	last := -1
	for !sess.Done() {
		next, sure := sess.NeedRun()
		if next < 0 {
			break
		}
		if want := sess.NeedBlock(); next != want {
			t.Fatalf("NeedRun next %d != NeedBlock %d", next, want)
		}
		// Linear mode: the whole remainder is guaranteed, never past the
		// payload geometry.
		if wantSure := numBlocks - next; sure != wantSure {
			t.Fatalf("at block %d: sure = %d, want the full remainder %d", next, sure, wantSure)
		}
		if _, err := sess.Feed(next, container.Blocks[next]); err != nil {
			t.Fatal(err)
		}
		last = next
	}
	if !sess.Done() {
		t.Fatal("session never finished")
	}
	// The final demanded block is the partial one, with a bound of
	// exactly 1: the geometry stops the run at the payload end.
	if last != numBlocks-1 {
		t.Fatalf("last fed block %d, want the final partial block %d", last, numBlocks-1)
	}
	if next, sure := sess.NeedRun(); next != -1 || sure != 0 {
		t.Fatalf("finished session NeedRun = (%d,%d), want (-1,0)", next, sure)
	}
}

// TestNeedRunSpeculativeBound: with the skip index live, only the
// demanded block is guaranteed — the bound must be 1 at every step.
func TestNeedRunSpeculativeBound(t *testing.T) {
	doc := workload.Agenda(workload.AgendaConfig{Seed: 32, Members: 4, EventsPerMember: 3})
	c, key := provision(t, "nrs", "subject u\ndefault +\n- //phone")
	container, _, err := docenc.Encode(doc, docenc.EncodeOptions{
		DocID: "nrs", Key: key, BlockPlain: 64, MinSkipBytes: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(c, "nrs", "u", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := container.Header.MarshalBinary()
	if err := sess.LoadHeader(hb); err != nil {
		t.Fatal(err)
	}
	for !sess.Done() {
		next, sure := sess.NeedRun()
		if next < 0 {
			break
		}
		if sure != 1 {
			t.Fatalf("skip-enabled session promised %d sure blocks at %d, want 1", sure, next)
		}
		if _, err := sess.Feed(next, container.Blocks[next]); err != nil {
			t.Fatal(err)
		}
	}
	if !sess.Done() {
		t.Fatal("session never finished")
	}
}

// TestNeedRunSkipLandsAtPayloadEnd: a skip whose landing offset reaches
// PayloadLen leaves nothing to demand — NeedRun must report (-1, 0)
// rather than a block index derived from an out-of-range offset.
func TestNeedRunSkipLandsAtPayloadEnd(t *testing.T) {
	doc := workload.Agenda(workload.AgendaConfig{Seed: 33, Members: 3, EventsPerMember: 2})
	c, key := provision(t, "nre", "subject u\ndefault +")
	container, _, err := docenc.Encode(doc, docenc.EncodeOptions{DocID: "nre", Key: key, BlockPlain: 64})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(c, "nre", "u", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := container.Header.MarshalBinary()
	if err := sess.LoadHeader(hb); err != nil {
		t.Fatal(err)
	}
	// Feed the first block so the source has a live window, then emulate
	// the evaluator skipping every remaining byte of the payload.
	idx := sess.NeedBlock()
	if _, err := sess.Feed(idx, container.Blocks[idx]); err != nil {
		t.Fatal(err)
	}
	rest := int(sess.header.PayloadLen) - sess.src.Offset()
	if rest <= 0 {
		t.Fatalf("payload exhausted too early (offset %d)", sess.src.Offset())
	}
	if err := sess.src.Skip(rest); err != nil {
		t.Fatal(err)
	}
	if next, sure := sess.NeedRun(); next != -1 || sure != 0 {
		t.Fatalf("NeedRun after a skip to the payload end = (%d,%d), want (-1,0)", next, sure)
	}
	if got := sess.NeedBlock(); got != -1 {
		t.Fatalf("NeedBlock after a skip to the payload end = %d, want -1", got)
	}
	// One byte further must be rejected by the source itself.
	if err := sess.src.Skip(1); err == nil {
		t.Fatal("skip past PayloadLen accepted")
	}
}

// TestNeedRunQuerySkipsWholePayload: a query that cannot match anything
// under the root lets the card skip the entire payload right after the
// dictionary — the demand signal must jump straight past the middle
// blocks instead of walking them.
func TestNeedRunQuerySkipsWholePayload(t *testing.T) {
	// A folder with an 'emergency' tag in the dictionary but a query
	// ('/emergency') that requires it at the root, which is 'folder':
	// nothing under the root can ever match, so its whole content is
	// skippable.
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 34, Patients: 10, VisitsPerPatient: 4})
	c, key := provision(t, "nrq", "subject u\ndefault +")
	container, _, err := docenc.Encode(doc, docenc.EncodeOptions{
		DocID: "nrq", Key: key, BlockPlain: 64, MinSkipBytes: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	numBlocks := container.Header.NumBlocks()
	if numBlocks < 8 {
		t.Fatalf("workload too small to observe a jump: %d blocks", numBlocks)
	}
	sess, err := NewSession(c, "nrq", "u", xpath.MustParse("/emergency"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := container.Header.MarshalBinary()
	if err := sess.LoadHeader(hb); err != nil {
		t.Fatal(err)
	}
	var fed []int
	for !sess.Done() {
		next, sure := sess.NeedRun()
		if next < 0 {
			break
		}
		if sure < 1 || next+sure > numBlocks {
			t.Fatalf("bound (%d,%d) escapes the %d-block geometry", next, sure, numBlocks)
		}
		if _, err := sess.Feed(next, container.Blocks[next]); err != nil {
			t.Fatal(err)
		}
		fed = append(fed, next)
	}
	if !sess.Done() {
		t.Fatal("session never finished")
	}
	if next, sure := sess.NeedRun(); next != -1 || sure != 0 {
		t.Fatalf("finished session NeedRun = (%d,%d), want (-1,0)", next, sure)
	}
	// The whole payload after the dictionary prefix is skipped: the
	// demand signal must die (-1) after a handful of prefix blocks —
	// the root's content skip swallows everything through the final
	// close record, so not even the last block is demanded.
	if len(fed) >= numBlocks/4 {
		t.Fatalf("query skip ineffective: %d of %d blocks demanded (%v)", len(fed), numBlocks, fed)
	}
	for i, b := range fed {
		if b != i {
			t.Fatalf("demanded blocks %v are not the contiguous dictionary prefix", fed)
		}
	}
}
