package soe

import (
	"errors"
	"testing"

	"repro/internal/accessrule"
	"repro/internal/card"
	"repro/internal/core"
	"repro/internal/docenc"
	"repro/internal/secure"
	"repro/internal/tagdict"
	"repro/internal/workload"
	"repro/internal/xmlstream"
)

// provision returns a card with key and rules for (doc, subject).
func provision(t *testing.T, docID, rules string) (*card.Card, secure.DocKey) {
	t.Helper()
	key := secure.KeyFromSeed("soe:" + docID)
	c := card.New(card.Modern)
	if err := c.PutKey(docID, key); err != nil {
		t.Fatal(err)
	}
	rs := workload.MustParseRules(rules)
	rs.DocID = docID
	if err := c.PutRuleSet(rs); err != nil {
		t.Fatal(err)
	}
	return c, key
}

// runSession drives a full session and returns the assembled tree.
func runSession(t *testing.T, c *card.Card, container *docenc.Container, subject string, opts Options) *xmlstream.Node {
	t.Helper()
	sess, err := NewSession(c, container.Header.DocID, subject, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := container.Header.MarshalBinary()
	if err := sess.LoadHeader(hb); err != nil {
		t.Fatal(err)
	}
	sink := newTestSink()
	for !sess.Done() {
		idx := sess.NeedBlock()
		if idx < 0 {
			break
		}
		out, err := sess.Feed(idx, container.Blocks[idx])
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeRecords(out, sink); err != nil {
			t.Fatal(err)
		}
	}
	if !sess.Done() {
		t.Fatal("session never finished")
	}
	tree, err := sink.asm.Result()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// testSink adapts RecordSink onto a core.Assembler with a name table.
type testSink struct {
	names map[tagdict.Code]string
	asm   *core.Assembler
	done  bool
}

func newTestSink() *testSink {
	s := &testSink{names: make(map[tagdict.Code]string)}
	s.asm = core.NewAssembler(s)
	return s
}

func (s *testSink) Name(c tagdict.Code) string { return s.names[c] }
func (s *testSink) Bind(c tagdict.Code, n string) error {
	s.names[c] = n
	return nil
}
func (s *testSink) Open(c tagdict.Code, m core.Mode, g core.GroupID) error {
	return s.asm.EmitOpen(c, m, g)
}
func (s *testSink) Value(text string, m core.Mode, g core.GroupID) error {
	return s.asm.EmitValue(text, m, g)
}
func (s *testSink) Close(m core.Mode, g core.GroupID) error {
	return s.asm.EmitClose(m, g)
}
func (s *testSink) Resolve(g core.GroupID, d bool) error {
	return s.asm.ResolveGroup(g, d)
}
func (s *testSink) Done() error {
	s.done = true
	return nil
}

func TestSessionEndToEnd(t *testing.T) {
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 1, Patients: 4, VisitsPerPatient: 2})
	c, key := provision(t, "folder", "subject u\ndefault +\n- //ssn")
	container, _, err := docenc.Encode(doc, docenc.EncodeOptions{DocID: "folder", Key: key})
	if err != nil {
		t.Fatal(err)
	}
	tree := runSession(t, c, container, "u", Options{})
	rs := workload.MustParseRules("subject u\ndefault +\n- //ssn")
	want := accessrule.ApplyTree(doc, rs)
	if !tree.Equal(want) {
		t.Fatal("session result diverges from oracle")
	}
	if c.RAM.InUse() != 0 {
		t.Errorf("session left %d bytes charged", c.RAM.InUse())
	}
}

func TestSessionsReclaimEEPROM(t *testing.T) {
	// Hundreds of sessions on one card must not exhaust its stable
	// storage: the session-scoped dictionary is reclaimed at end.
	doc := workload.Agenda(workload.AgendaConfig{Seed: 5, Members: 3, EventsPerMember: 2})
	c, key := provision(t, "a", "subject u\ndefault +")
	container, _, err := docenc.Encode(doc, docenc.EncodeOptions{DocID: "a", Key: key})
	if err != nil {
		t.Fatal(err)
	}
	base := c.EEPROM.InUse()
	for i := 0; i < 400; i++ {
		_ = runSession(t, c, container, "u", Options{})
	}
	if got := c.EEPROM.InUse(); got != base {
		t.Fatalf("EEPROM leaked: %d -> %d after 400 sessions", base, got)
	}
}

func TestSessionRequiresProvisioning(t *testing.T) {
	c := card.New(card.Modern)
	if _, err := NewSession(c, "doc", "u", nil, Options{}); err == nil {
		t.Error("session without a key must fail")
	}
	if err := c.PutKey("doc", secure.KeyFromSeed("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSession(c, "doc", "u", nil, Options{}); err == nil {
		t.Error("session without rules must fail")
	}
}

func TestSessionRejectsWrongHeader(t *testing.T) {
	doc := &xmlstream.Node{Name: "a"}
	c, key := provision(t, "doc1", "subject u\ndefault +")
	// A header for a different document (even with the same key) fails.
	other, _, err := docenc.Encode(doc, docenc.EncodeOptions{DocID: "doc2", Key: key})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(c, "doc1", "u", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := other.Header.MarshalBinary()
	if err := sess.LoadHeader(hb); err == nil {
		t.Error("header for another document accepted")
	}
}

func TestSessionRejectsTamperedHeader(t *testing.T) {
	doc := &xmlstream.Node{Name: "a"}
	c, key := provision(t, "doc1", "subject u\ndefault +")
	container, _, err := docenc.Encode(doc, docenc.EncodeOptions{DocID: "doc1", Key: key})
	if err != nil {
		t.Fatal(err)
	}
	sess, _ := NewSession(c, "doc1", "u", nil, Options{})
	hb, _ := container.Header.MarshalBinary()
	hb[len(hb)-1] ^= 1 // corrupt the MAC
	if err := sess.LoadHeader(hb); !errors.Is(err, secure.ErrIntegrity) {
		t.Errorf("tampered header: %v", err)
	}
}

func TestSessionRejectsWrongBlockOrder(t *testing.T) {
	doc := workload.Agenda(workload.AgendaConfig{Seed: 2, Members: 3, EventsPerMember: 3})
	c, key := provision(t, "a", "subject u\ndefault +")
	container, _, err := docenc.Encode(doc, docenc.EncodeOptions{DocID: "a", Key: key})
	if err != nil {
		t.Fatal(err)
	}
	sess, _ := NewSession(c, "a", "u", nil, Options{})
	hb, _ := container.Header.MarshalBinary()
	if err := sess.LoadHeader(hb); err != nil {
		t.Fatal(err)
	}
	want := sess.NeedBlock()
	if _, err := sess.Feed(want+1, container.Blocks[want+1]); err == nil {
		t.Error("out-of-order block accepted")
	}
}

func TestSessionTamperedBlock(t *testing.T) {
	doc := workload.Agenda(workload.AgendaConfig{Seed: 3, Members: 3, EventsPerMember: 3})
	c, key := provision(t, "a", "subject u\ndefault +")
	container, _, err := docenc.Encode(doc, docenc.EncodeOptions{DocID: "a", Key: key})
	if err != nil {
		t.Fatal(err)
	}
	sess, _ := NewSession(c, "a", "u", nil, Options{})
	hb, _ := container.Header.MarshalBinary()
	_ = sess.LoadHeader(hb)
	idx := sess.NeedBlock()
	bad := append([]byte(nil), container.Blocks[idx]...)
	bad[0] ^= 0xFF
	if _, err := sess.Feed(idx, bad); !errors.Is(err, secure.ErrIntegrity) {
		t.Errorf("tampered block: %v", err)
	}
	// The session must be dead afterwards.
	if sess.NeedBlock() != -1 {
		t.Error("aborted session still asks for blocks")
	}
	if c.RAM.InUse() != 0 {
		t.Errorf("aborted session left %d bytes charged", c.RAM.InUse())
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	dict, _ := tagdict.FromTags([]string{"a", "b"})
	w := &recordWriter{}
	e := &recordEmitter{w: w, dict: dict, announced: make([]bool, dict.Len())}
	_ = e.EmitOpen(0, core.ModeDeliver, 0)
	_ = e.EmitValue("hello", core.ModePending, 3)
	_ = e.EmitClose(core.ModeDeliver, 0)
	_ = e.ResolveGroup(3, true)
	w.done()
	blob := w.take()

	sink := newTestSink()
	if err := DecodeRecords(blob, sink); err != nil {
		t.Fatal(err)
	}
	if !sink.done {
		t.Error("done record lost")
	}
	if sink.names[0] != "a" {
		t.Error("lazy binding lost")
	}
}

func TestRecordsPartialDecode(t *testing.T) {
	dict, _ := tagdict.FromTags([]string{"tagname"})
	w := &recordWriter{}
	e := &recordEmitter{w: w, dict: dict, announced: make([]bool, 1)}
	_ = e.EmitOpen(0, core.ModeDeliver, 0)
	_ = e.EmitValue("some text content", core.ModeDeliver, 0)
	_ = e.EmitClose(core.ModeDeliver, 0)
	blob := w.take()

	// Feeding byte by byte must never error and must consume exactly the
	// whole stream.
	sink := newTestSink()
	var buf []byte
	total := 0
	for _, b := range blob {
		buf = append(buf, b)
		n, err := DecodeRecordsPartial(buf, sink)
		if err != nil {
			t.Fatal(err)
		}
		buf = buf[n:]
		total += n
	}
	if total != len(blob) || len(buf) != 0 {
		t.Errorf("consumed %d of %d bytes (%d left)", total, len(blob), len(buf))
	}
}

func TestLazyBindingOncePerCode(t *testing.T) {
	dict, _ := tagdict.FromTags([]string{"x"})
	w := &recordWriter{}
	e := &recordEmitter{w: w, dict: dict, announced: make([]bool, 1)}
	_ = e.EmitOpen(0, core.ModeDeliver, 0)
	_ = e.EmitClose(core.ModeDeliver, 0)
	first := len(w.take())
	_ = e.EmitOpen(0, core.ModeDeliver, 0)
	_ = e.EmitClose(core.ModeDeliver, 0)
	second := len(w.take())
	if second >= first {
		t.Errorf("second emission (%dB) must be smaller than the first (%dB): binding must not repeat", second, first)
	}
}
