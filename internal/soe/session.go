// Package soe implements the applet running inside the Secure Operating
// Environment: the session state machine that, per Section 2.1, "is in
// charge of decrypting the input document, checking its integrity and
// evaluating the access control policy corresponding to a given
// (document, subject) pair" — plus the optional query of pull mode.
//
// A Session is driven by the terminal proxy: the proxy pushes encrypted
// blocks one at a time (Feed) and reads back (a) a stream of compact
// output records carrying the authorized events, and (b) the index of the
// next block the card wants — which jumps forward whenever the evaluator
// skips a subtree, turning skip decisions into bytes that are neither
// transmitted nor decrypted.
//
// Everything the session allocates is charged to the card's secure RAM
// gauge; exhausting the budget aborts the session exactly as a real
// applet would fail allocation.
package soe

import (
	"errors"
	"fmt"

	"repro/internal/card"
	"repro/internal/core"
	"repro/internal/docenc"
	"repro/internal/mem"
	"repro/internal/secure"
	"repro/internal/tagdict"
	"repro/internal/xpath"
)

// errNeedMore signals that the decoder ran out of buffered plaintext
// mid-item; the session rolls back to the item start and asks the
// terminal for the next block.
var errNeedMore = errors.New("soe: need more input")

// Options tunes a session.
type Options struct {
	// DisableSkip ignores the skip index (ablation).
	DisableSkip bool
	// DisableCopy disables the copy-through fast path (ablation).
	DisableCopy bool
	// MaxValue bounds a single text node (default: 8 plaintext blocks).
	MaxValue int
}

// sessionPhase is the applet state machine.
type sessionPhase uint8

const (
	phaseHeader sessionPhase = iota // waiting for LoadHeader
	phaseDict                       // accumulating the dictionary
	phaseStream                     // evaluating the structure stream
	phaseDone
	phaseAborted
)

// Session is one (document, subject[, query]) evaluation.
type Session struct {
	card *card.Card
	opts Options

	docID   string
	subject string
	query   *xpath.Path

	key    secure.DocKey
	ctx    *secure.BlockContext // card-cached cipher state; immutable once set
	header docenc.Header

	ram        *mem.Scope
	dict       *tagdict.Dict
	dictEEPROM int // session-scoped stable storage, reclaimed at end
	dec        *docenc.Decoder
	eval       *core.Evaluator
	src        *blockSource
	out        *recordWriter

	phase     sessionPhase
	lastStats core.Stats

	// value accumulates a streamed value when the evaluator cannot accept
	// chunks (an unresolved comparison targets the current node's text).
	value struct {
		active    bool
		chunkable bool
		buf       []byte
		charged   int
	}
}

// NewSession opens a session on a provisioned card. The key and the
// subject's rule set must already be installed (see card.PutKey and
// card.PutSealedRuleSet).
func NewSession(c *card.Card, docID, subject string, query *xpath.Path, opts Options) (*Session, error) {
	if _, err := c.Key(docID); err != nil {
		return nil, err
	}
	if _, err := c.RuleSet(subject, docID); err != nil {
		return nil, err
	}
	return &Session{
		card:    c,
		opts:    opts,
		docID:   docID,
		subject: subject,
		query:   query,
		ram:     mem.NewScope(c.RAM),
		phase:   phaseHeader,
	}, nil
}

// LoadHeader installs and authenticates the container header.
func (s *Session) LoadHeader(hdrBytes []byte) error {
	if s.phase != phaseHeader {
		return fmt.Errorf("soe: header already loaded")
	}
	s.card.Meter.BytesToCard += int64(len(hdrBytes))
	s.card.Meter.APDUs++
	h, _, err := docenc.UnmarshalHeader(hdrBytes)
	if err != nil {
		return s.abort(err)
	}
	key, err := s.card.Key(h.DocID)
	if err != nil {
		return s.abort(err)
	}
	if err := h.Verify(key); err != nil {
		return s.abort(fmt.Errorf("soe: header authentication: %w", err))
	}
	if h.DocID != s.docID {
		return s.abort(fmt.Errorf("soe: header is for document %q, session is for %q", h.DocID, s.docID))
	}
	ctx, err := s.card.DecryptContext(h.DocID)
	if err != nil {
		return s.abort(err)
	}
	s.key = key
	s.ctx = ctx
	s.header = h
	if s.opts.MaxValue <= 0 {
		s.opts.MaxValue = 8 * int(h.BlockPlain)
	}
	s.src = newBlockSource(&s.header, s.ram)
	s.out = &recordWriter{}
	s.phase = phaseDict
	return nil
}

// NeedBlock reports the next block index the card wants, or -1 when the
// session is finished (or aborted).
func (s *Session) NeedBlock() int {
	switch s.phase {
	case phaseDict, phaseStream:
		want := s.src.wantOffset()
		if uint64(want) >= s.header.PayloadLen {
			return -1
		}
		return want / int(s.header.BlockPlain)
	default:
		return -1
	}
}

// NeedRun is the run-aware demand signal behind the terminal's
// prefetching pipeline. It reports the next block index the card wants
// (next, -1 when the session is finished) together with a contiguity
// bound: sure is the number of contiguous blocks, starting at next,
// that the session is certain to consume.
//
// The bound is derived from the header geometry — it never extends past
// the payload, so the terminal can size a batched read without
// overshooting the document — and from the evaluator's skip state: with
// the skip index disabled no skip or value jump can ever occur, so
// every remaining block is guaranteed to be wanted (sure covers the
// whole remainder and speculation is free of waste); while skipping
// remains possible only the block carrying the wanted offset is
// guaranteed, and anything a terminal fetches beyond it is speculation
// it must be prepared to discard.
func (s *Session) NeedRun() (next, sure int) {
	next = s.NeedBlock()
	if next < 0 {
		return -1, 0
	}
	if s.opts.DisableSkip {
		// Linear consumption: geometry alone bounds the run.
		return next, s.header.NumBlocks() - next
	}
	return next, 1
}

// Done reports whether the session completed successfully.
func (s *Session) Done() bool { return s.phase == phaseDone }

// Feed pushes one stored block into the card and returns the output
// records produced. The block must be the one NeedBlock asked for.
func (s *Session) Feed(blockIdx int, stored []byte) ([]byte, error) {
	if s.phase != phaseDict && s.phase != phaseStream {
		return nil, fmt.Errorf("soe: session not accepting blocks (phase %d)", s.phase)
	}
	if want := s.NeedBlock(); blockIdx != want {
		return nil, fmt.Errorf("soe: fed block %d, card wants %d", blockIdx, want)
	}

	// Link accounting: the block crosses the terminal->card link in
	// MaxAPDUData-sized chunks.
	s.card.Meter.BytesToCard += int64(len(stored))
	s.card.Meter.APDUs += int64(apduCount(len(stored), s.card.Profile.MaxAPDUData))

	// Decrypt under the block's own generation: after a delta re-publish
	// the untouched blocks keep the ciphertext (and version binding) of
	// the publication that last wrote them; the MAC'd header vouches for
	// the generation vector.
	plain, err := s.ctx.DecryptBlock(s.header.DocID, s.header.BlockGen(blockIdx), uint32(blockIdx), stored)
	if err != nil {
		return nil, s.abort(err)
	}
	s.card.Meter.CryptoBytes += int64(len(plain))
	s.card.Meter.MACBytes += int64(len(plain))

	// Validate geometry: every block but the last is exactly BlockPlain.
	expect := int(s.header.BlockPlain)
	if blockIdx == s.header.NumBlocks()-1 {
		expect = int(s.header.PayloadLen) - blockIdx*int(s.header.BlockPlain)
	}
	if len(plain) != expect {
		return nil, s.abort(fmt.Errorf("%w: block %d has %d plaintext bytes, geometry says %d",
			secure.ErrIntegrity, blockIdx, len(plain), expect))
	}

	if err := s.src.feed(blockIdx, plain); err != nil {
		return nil, s.abort(err)
	}

	if s.phase == phaseDict {
		if err := s.tryFinishDict(); err != nil {
			if errors.Is(err, errNeedMore) {
				return s.drainOut(), nil
			}
			return nil, s.abort(err)
		}
	}
	if s.phase == phaseStream {
		if err := s.pump(); err != nil {
			if errors.Is(err, errNeedMore) {
				return s.drainOut(), nil
			}
			return nil, s.abort(err)
		}
	}
	return s.drainOut(), nil
}

// tryFinishDict attempts to parse the tag dictionary from the buffered
// payload prefix and, on success, builds the decoder and the evaluator.
func (s *Session) tryFinishDict() error {
	window := s.src.window()
	dict, n, err := tagdict.UnmarshalBinary(window)
	if err != nil {
		if s.src.windowEnd() < int(s.header.PayloadLen) {
			return errNeedMore // likely truncated: wait for more payload
		}
		return fmt.Errorf("soe: dictionary: %w", err)
	}
	// The dictionary moves to secure stable storage for the session
	// (lazy name bindings are resolved from there, not from RAM); the
	// space is reclaimed when the session ends.
	dictBytes := dict.ByteSize()
	if err := s.card.EEPROM.Alloc(dictBytes); err != nil {
		return fmt.Errorf("soe: dictionary store: %w", err)
	}
	s.dictEEPROM = dictBytes
	s.card.Meter.EEPROMBytes += int64(dictBytes)
	s.dict = dict
	if err := s.src.consume(n); err != nil {
		return err
	}

	rules, err := s.card.RuleSet(s.subject, s.docID)
	if err != nil {
		return err
	}
	emit := &recordEmitter{w: s.out, dict: dict, announced: make([]bool, dict.Len())}
	eval, err := core.NewEvaluator(core.Config{
		Rules:       rules,
		Query:       s.query,
		Dict:        dict,
		Emitter:     emit,
		Gauge:       s.ram,
		DisableSkip: s.opts.DisableSkip,
		DisableCopy: s.opts.DisableCopy,
	})
	if err != nil {
		return err
	}
	s.eval = eval
	s.dec = docenc.NewDecoder(s.src, dict, s.opts.MaxValue)
	s.phase = phaseStream
	return nil
}

// pump decodes and evaluates items until the buffered input runs dry or
// the document ends.
func (s *Session) pump() error {
	defer s.syncMeter()
	for {
		s.src.mark()
		it, err := s.dec.Next()
		if err != nil {
			if errors.Is(err, errNeedMore) {
				s.src.rollback()
				return errNeedMore
			}
			return err
		}
		switch it.Kind {
		case docenc.ItemOpen:
			skip, err := s.eval.Open(it.Code, it.Meta)
			if err != nil {
				return err
			}
			if skip > 0 {
				if err := s.dec.SkipContent(it.Meta); err != nil {
					return err
				}
			}
		case docenc.ItemValue:
			if err := s.eval.Value(it.Text); err != nil {
				return err
			}
		case docenc.ItemValueStart:
			// Value skipping: a structural node's text with no pending
			// comparison is never needed — jump the bytes, which skips
			// their transfer and decryption entirely.
			if !s.opts.DisableSkip && !s.eval.NeedsValues() {
				if err := s.dec.SkipValue(); err != nil {
					return err
				}
				s.eval.SkipValue(it.Size)
				if err := s.src.compact(); err != nil {
					return err
				}
				continue
			}
			s.value.active = true
			s.value.chunkable = s.eval.CanChunkValues()
			s.value.buf = s.value.buf[:0]
			if !s.value.chunkable && it.Size > s.opts.MaxValue {
				return fmt.Errorf("soe: a %d-byte value under an unresolved comparison exceeds the %d-byte secure buffer",
					it.Size, s.opts.MaxValue)
			}
		case docenc.ItemValueChunk:
			if !s.value.active {
				return fmt.Errorf("soe: value chunk without a value start")
			}
			if s.value.chunkable {
				// Pass the piece straight through: bounded memory
				// regardless of value size.
				if err := s.eval.Value(it.Text); err != nil {
					return err
				}
			} else {
				if err := s.ram.Alloc(len(it.Text)); err != nil {
					return fmt.Errorf("soe: value buffer: %w", err)
				}
				s.value.charged += len(it.Text)
				s.value.buf = append(s.value.buf, it.Text...)
				if it.Last {
					err := s.eval.Value(string(s.value.buf))
					s.ram.Free(s.value.charged)
					s.value.charged = 0
					s.value.buf = s.value.buf[:0]
					if err != nil {
						return err
					}
				}
			}
			if it.Last {
				s.value.active = false
			}
		case docenc.ItemClose:
			if err := s.eval.Close(); err != nil {
				return err
			}
		case docenc.ItemEOF:
			if err := s.eval.Finish(); err != nil {
				return err
			}
			s.out.done()
			s.finish()
			return nil
		}
		if err := s.src.compact(); err != nil {
			return err
		}
	}
}

// drainOut takes the pending output records and accounts for their trip
// over the link.
func (s *Session) drainOut() []byte {
	out := s.out.take()
	if len(out) > 0 {
		s.card.Meter.BytesFromCard += int64(len(out))
		// Responses piggyback on the command APDU; only overflow beyond
		// one response frame costs extra exchanges.
		extra := apduCount(len(out), 256) - 1
		if extra > 0 {
			s.card.Meter.APDUs += int64(extra)
		}
	}
	return out
}

// syncMeter folds the evaluator's work counters into the card meter
// (delta since the previous sync).
func (s *Session) syncMeter() {
	if s.eval == nil {
		return
	}
	cur := s.eval.Stats()
	d := &s.card.Meter
	d.Events += int64(cur.Opens-s.lastStats.Opens) +
		int64(cur.Values-s.lastStats.Values) +
		int64(cur.Closes-s.lastStats.Closes)
	d.Transitions += int64(cur.TransitionsScanned - s.lastStats.TransitionsScanned)
	d.CopyBytes += cur.CopiedBytes - s.lastStats.CopiedBytes
	s.lastStats = cur
}

// finish releases session memory and closes the state machine.
func (s *Session) finish() {
	s.ram.Close()
	s.releaseEEPROM()
	s.phase = phaseDone
}

// releaseEEPROM reclaims the session-scoped stable storage.
func (s *Session) releaseEEPROM() {
	if s.dictEEPROM > 0 {
		s.card.EEPROM.Free(s.dictEEPROM)
		s.dictEEPROM = 0
	}
}

// Abort terminates the session, releasing its memory.
func (s *Session) Abort() {
	if s.phase != phaseDone && s.phase != phaseAborted {
		_ = s.abort(fmt.Errorf("soe: aborted by terminal"))
	}
}

func (s *Session) abort(err error) error {
	s.ram.Close()
	s.releaseEEPROM()
	s.phase = phaseAborted
	return err
}

// Stats reports the session's evaluation counters and memory high-water
// marks.
type Stats struct {
	Core    core.Stats
	RAMPeak int
}

// Stats returns the session statistics collected so far.
func (s *Session) Stats() Stats {
	st := Stats{RAMPeak: s.ram.Peak()}
	if s.eval != nil {
		st.Core = s.eval.Stats()
	}
	return st
}

// apduCount is the number of MaxData-sized APDUs needed for n bytes.
func apduCount(n, maxData int) int {
	if n <= 0 {
		return 0
	}
	if maxData <= 0 {
		return 1
	}
	return (n + maxData - 1) / maxData
}
