package soe

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/tagdict"
)

// Output record opcodes: the compact card-to-terminal protocol carrying
// the evaluator's output. Closes carry no tag (the terminal tracks the
// stack), and tag names cross the link once, the first time a code is
// delivered — so the terminal learns only the names of tags that actually
// appear in the (candidate) result, not the whole dictionary.
const (
	recBind    = 0x01 // varint code, varint len, name bytes
	recOpen    = 0x02 // varint code, mode byte, varint group
	recValue   = 0x03 // mode byte, varint group, varint len, text bytes
	recClose   = 0x04 // mode byte, varint group
	recResolve = 0x05 // varint group, deliver byte
	recDone    = 0x06
)

// recordWriter accumulates encoded records between Feed calls.
type recordWriter struct {
	buf []byte
}

func (w *recordWriter) take() []byte {
	out := w.buf
	w.buf = nil
	return out
}

func (w *recordWriter) done() {
	w.buf = append(w.buf, recDone)
}

// recordEmitter adapts the evaluator's Emitter interface onto the record
// protocol, inserting lazy name bindings.
type recordEmitter struct {
	w         *recordWriter
	dict      *tagdict.Dict
	announced []bool
}

// EmitOpen implements core.Emitter.
func (e *recordEmitter) EmitOpen(code tagdict.Code, mode core.Mode, group core.GroupID) error {
	if int(code) < len(e.announced) && !e.announced[code] {
		e.announced[code] = true
		name := e.dict.Name(code)
		e.w.buf = append(e.w.buf, recBind)
		e.w.buf = binary.AppendUvarint(e.w.buf, uint64(code))
		e.w.buf = binary.AppendUvarint(e.w.buf, uint64(len(name)))
		e.w.buf = append(e.w.buf, name...)
	}
	e.w.buf = append(e.w.buf, recOpen)
	e.w.buf = binary.AppendUvarint(e.w.buf, uint64(code))
	e.w.buf = append(e.w.buf, byte(mode))
	e.w.buf = binary.AppendUvarint(e.w.buf, uint64(group))
	return nil
}

// EmitValue implements core.Emitter.
func (e *recordEmitter) EmitValue(text string, mode core.Mode, group core.GroupID) error {
	e.w.buf = append(e.w.buf, recValue)
	e.w.buf = append(e.w.buf, byte(mode))
	e.w.buf = binary.AppendUvarint(e.w.buf, uint64(group))
	e.w.buf = binary.AppendUvarint(e.w.buf, uint64(len(text)))
	e.w.buf = append(e.w.buf, text...)
	return nil
}

// EmitClose implements core.Emitter.
func (e *recordEmitter) EmitClose(mode core.Mode, group core.GroupID) error {
	e.w.buf = append(e.w.buf, recClose)
	e.w.buf = append(e.w.buf, byte(mode))
	e.w.buf = binary.AppendUvarint(e.w.buf, uint64(group))
	return nil
}

// ResolveGroup implements core.Emitter.
func (e *recordEmitter) ResolveGroup(group core.GroupID, deliver bool) error {
	e.w.buf = append(e.w.buf, recResolve)
	e.w.buf = binary.AppendUvarint(e.w.buf, uint64(group))
	d := byte(0)
	if deliver {
		d = 1
	}
	e.w.buf = append(e.w.buf, d)
	return nil
}

// RecordSink receives decoded records on the terminal side.
type RecordSink interface {
	Bind(code tagdict.Code, name string) error
	Open(code tagdict.Code, mode core.Mode, group core.GroupID) error
	Value(text string, mode core.Mode, group core.GroupID) error
	Close(mode core.Mode, group core.GroupID) error
	Resolve(group core.GroupID, deliver bool) error
	Done() error
}

// errTruncated marks a record cut short at the end of a chunk: the caller
// must retry once more bytes arrive.
var errTruncated = fmt.Errorf("soe: truncated record")

// DecodeRecords parses a record stream chunk that contains only whole
// records (as Session.Feed outputs always do), invoking the sink per
// record.
func DecodeRecords(data []byte, sink RecordSink) error {
	n, err := DecodeRecordsPartial(data, sink)
	if err != nil {
		return err
	}
	if n != len(data) {
		return fmt.Errorf("soe: %d trailing bytes form an incomplete record", len(data)-n)
	}
	return nil
}

// DecodeRecordsPartial decodes as many complete records as data holds and
// returns the bytes consumed; a record cut short at the end is left for
// the caller to complete (APDU chunking splits records arbitrarily).
func DecodeRecordsPartial(data []byte, sink RecordSink) (int, error) {
	pos := 0
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n == 0 {
			return 0, errTruncated
		}
		if n < 0 {
			return 0, fmt.Errorf("soe: malformed varint at offset %d", pos)
		}
		pos += n
		return v, nil
	}
	readByte := func() (byte, error) {
		if pos >= len(data) {
			return 0, errTruncated
		}
		b := data[pos]
		pos++
		return b, nil
	}
	consumed := 0
	for pos < len(data) {
		op, _ := readByte()
		err := func() error {
			switch op {
			case recBind:
				code, err := readUvarint()
				if err != nil {
					return err
				}
				l, err := readUvarint()
				if err != nil {
					return err
				}
				if pos+int(l) > len(data) {
					return errTruncated
				}
				name := string(data[pos : pos+int(l)])
				pos += int(l)
				return sink.Bind(tagdict.Code(code), name)
			case recOpen:
				code, err := readUvarint()
				if err != nil {
					return err
				}
				mode, err := readByte()
				if err != nil {
					return err
				}
				group, err := readUvarint()
				if err != nil {
					return err
				}
				return sink.Open(tagdict.Code(code), core.Mode(mode), core.GroupID(group))
			case recValue:
				mode, err := readByte()
				if err != nil {
					return err
				}
				group, err := readUvarint()
				if err != nil {
					return err
				}
				l, err := readUvarint()
				if err != nil {
					return err
				}
				if pos+int(l) > len(data) {
					return errTruncated
				}
				text := string(data[pos : pos+int(l)])
				pos += int(l)
				return sink.Value(text, core.Mode(mode), core.GroupID(group))
			case recClose:
				mode, err := readByte()
				if err != nil {
					return err
				}
				group, err := readUvarint()
				if err != nil {
					return err
				}
				return sink.Close(core.Mode(mode), core.GroupID(group))
			case recResolve:
				group, err := readUvarint()
				if err != nil {
					return err
				}
				d, err := readByte()
				if err != nil {
					return err
				}
				return sink.Resolve(core.GroupID(group), d != 0)
			case recDone:
				return sink.Done()
			default:
				return fmt.Errorf("soe: unknown record opcode %#x at offset %d", op, pos-1)
			}
		}()
		if err == errTruncated {
			return consumed, nil
		}
		if err != nil {
			return consumed, err
		}
		consumed = pos
	}
	return consumed, nil
}
