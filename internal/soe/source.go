package soe

import (
	"fmt"
	"io"

	"repro/internal/docenc"
	"repro/internal/mem"
)

// blockSource adapts block-by-block feeding to the decoder's pull
// interface. It keeps a small plaintext window (the current block plus
// the carry of an item that straddles a block boundary) and turns Skip
// into a jump of the wanted offset — the mechanism that converts
// evaluator skip decisions into blocks never requested from the DSP.
//
// RAM accounting: one block's worth of window rides in the card's
// hardware I/O buffer (the APDU buffer exists independently of applet
// RAM on the target hardware), so only the carry beyond one block is
// charged to the applet's gauge.
type blockSource struct {
	header *docenc.Header
	gauge  mem.Gauge

	buf      []byte // plaintext window
	bufStart int    // absolute payload offset of buf[0]
	pos      int    // absolute offset of the next byte to deliver
	markPos  int    // rollback point (start of the in-flight item)
	charged  int    // carry bytes currently charged
}

func newBlockSource(h *docenc.Header, g mem.Gauge) *blockSource {
	return &blockSource{header: h, gauge: g}
}

// wantOffset is the absolute payload offset of the first byte the source
// cannot serve yet.
func (s *blockSource) wantOffset() int {
	if end := s.windowEnd(); s.pos < end {
		return end // carry present: next bytes needed are past the window
	}
	return s.pos
}

// windowEnd is the absolute offset just past the buffered window.
func (s *blockSource) windowEnd() int { return s.bufStart + len(s.buf) }

// window exposes the unconsumed buffered bytes (dictionary parsing).
func (s *blockSource) window() []byte { return s.buf[s.pos-s.bufStart:] }

// feed appends a decrypted block's usable bytes to the window.
func (s *blockSource) feed(blockIdx int, plain []byte) error {
	blockStart := blockIdx * int(s.header.BlockPlain)
	usableFrom := 0
	switch {
	case s.pos > s.windowEnd():
		return fmt.Errorf("soe: source position %d beyond window end %d", s.pos, s.windowEnd())
	case len(s.buf) == 0:
		// Empty window: the block must contain pos.
		if s.pos < blockStart || s.pos >= blockStart+len(plain) {
			return fmt.Errorf("soe: fed block %d does not contain offset %d", blockIdx, s.pos)
		}
		s.bufStart = s.pos
		usableFrom = s.pos - blockStart
	default:
		// Carry present: the block must extend the window contiguously.
		if blockStart != s.windowEnd() {
			return fmt.Errorf("soe: fed block %d not contiguous with window end %d", blockIdx, s.windowEnd())
		}
	}
	s.buf = append(s.buf, plain[usableFrom:]...)
	return s.updateCharge()
}

// updateCharge reconciles the gauge with the current carry size (window
// bytes beyond one hardware block buffer).
func (s *blockSource) updateCharge() error {
	want := len(s.buf) - int(s.header.BlockPlain)
	if want < 0 {
		want = 0
	}
	switch {
	case want > s.charged:
		if err := s.gauge.Alloc(want - s.charged); err != nil {
			return fmt.Errorf("soe: input window carry: %w", err)
		}
	case want < s.charged:
		s.gauge.Free(s.charged - want)
	}
	s.charged = want
	return nil
}

// mark remembers the current position for rollback.
func (s *blockSource) mark() { s.markPos = s.pos }

// rollback returns to the marked position (item restart after feeding).
func (s *blockSource) rollback() { s.pos = s.markPos }

// consume advances past n bytes that were inspected via window() rather
// than Read (dictionary phase).
func (s *blockSource) consume(n int) error {
	if s.pos+n > s.windowEnd() {
		return fmt.Errorf("soe: consume(%d) beyond window", n)
	}
	s.pos += n
	return s.compact()
}

// compact drops consumed bytes from the window and releases their memory
// charge. Called between items, never mid-item (rollback must stay
// possible while an item is in flight).
func (s *blockSource) compact() error {
	drop := s.pos - s.bufStart
	if drop <= 0 {
		return nil
	}
	if drop >= len(s.buf) {
		s.buf = s.buf[:0]
	} else {
		s.buf = append(s.buf[:0], s.buf[drop:]...)
	}
	s.bufStart = s.pos
	return s.updateCharge()
}

// ReadByte implements docenc.Source.
func (s *blockSource) ReadByte() (byte, error) {
	if uint64(s.pos) >= s.header.PayloadLen {
		return 0, io.EOF
	}
	if s.pos >= s.windowEnd() || s.pos < s.bufStart {
		return 0, errNeedMore
	}
	b := s.buf[s.pos-s.bufStart]
	s.pos++
	return b, nil
}

// Read implements docenc.Source.
func (s *blockSource) Read(p []byte) error {
	if uint64(s.pos+len(p)) > s.header.PayloadLen {
		return fmt.Errorf("%w: read past payload end", io.ErrUnexpectedEOF)
	}
	if s.pos < s.bufStart || s.pos+len(p) > s.windowEnd() {
		return errNeedMore
	}
	copy(p, s.buf[s.pos-s.bufStart:])
	s.pos += len(p)
	return nil
}

// Skip implements docenc.Source: the skip may jump far beyond the window,
// in which case the window is dropped and the next wanted block jumps
// with it.
func (s *blockSource) Skip(n int) error {
	if n < 0 {
		return fmt.Errorf("soe: negative skip %d", n)
	}
	if uint64(s.pos+n) > s.header.PayloadLen {
		return fmt.Errorf("soe: skip of %d bytes overruns payload (offset %d, length %d)",
			n, s.pos, s.header.PayloadLen)
	}
	s.pos += n
	if s.pos >= s.windowEnd() {
		s.buf = s.buf[:0]
		s.bufStart = s.pos
		if err := s.updateCharge(); err != nil {
			return err
		}
	}
	return nil
}

// Offset implements docenc.Source.
func (s *blockSource) Offset() int { return s.pos }

// Avail implements docenc.Source: bytes servable without another block.
func (s *blockSource) Avail() int {
	a := s.windowEnd() - s.pos
	if a < 0 {
		return 0
	}
	if end := int(s.header.PayloadLen); s.pos+a > end {
		a = end - s.pos
	}
	return a
}
