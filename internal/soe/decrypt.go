package soe

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/secure"
)

// PreparedRun is a contiguous run of blocks the terminal has fetched and
// decrypted ahead of the card's demand. Preparation does the pure
// cryptographic work — MAC verification and CTR keystream XOR — off the
// session's critical path; everything the simulator meters (link bytes,
// APDUs, crypto/MAC byte counts) is charged only when a block is
// actually fed (FeedPrepared), so a speculatively prepared block the
// evaluator skips past costs the simulated card nothing, exactly as in
// the serial path.
type PreparedRun struct {
	start      int
	storedLens []int    // stored sizes, for feed-time link accounting
	plains     [][]byte // decrypted payloads (views into buf or the frame)
	errs       []error  // deferred per-block decrypt failures
	buf        []byte   // pooled contiguous plaintext (nil when in place)
	release    func()   // frame release when the ciphertext was borrowed
	fed        int      // blocks consumed so far (monotonic offset)
}

// Start is the absolute index of the run's first block.
func (r *PreparedRun) Start() int { return r.start }

// Len is the number of blocks in the run.
func (r *PreparedRun) Len() int { return len(r.plains) }

// Release returns the run's plaintext buffer to the pool and releases
// the ciphertext frame, if any. The run must not be fed afterwards;
// Release is idempotent.
func (r *PreparedRun) Release() {
	if r == nil {
		return
	}
	if r.buf != nil {
		secure.PutRunBuffer(r.buf)
		r.buf = nil
	}
	if r.release != nil {
		r.release()
		r.release = nil
	}
	r.plains = nil
}

// prepWorkers is the fan-out of the run decryptor: MAC verify and CTR
// XOR are independent across blocks, so a short run saturates a few
// cores without the scheduling cost of one goroutine per block.
func prepWorkers(blocks int) int {
	w := runtime.GOMAXPROCS(0)
	if w > 4 {
		w = 4
	}
	if w > blocks {
		w = blocks
	}
	return w
}

// PrepareRun decrypts a fetched run of stored blocks (absolute indices
// start, start+1, ...) through the card's shared cipher context, fanning
// the per-block MAC+XOR work across a small worker pool. It may run on
// the terminal's prefetch goroutine, concurrently with the session
// consuming earlier blocks: it touches only state that is immutable
// after LoadHeader and charges no meters.
//
// When owned is true the caller guarantees the stored slices are its own
// (a dsp.BlockFrame it will release via the run) and decryption happens
// in place — zero copies. Otherwise the plaintexts are decrypted into
// one pooled contiguous buffer and the stored slices are left untouched.
// release, if non-nil, is invoked by PreparedRun.Release.
//
// Per-block failures (tampered or truncated blocks) are recorded, not
// returned: the session only aborts if the card actually asks for the
// bad block, matching the serial path where a block after a skip target
// is never decrypted at all.
func (s *Session) PrepareRun(start int, stored [][]byte, owned bool, release func()) (*PreparedRun, error) {
	if s.ctx == nil {
		return nil, fmt.Errorf("soe: PrepareRun before LoadHeader")
	}
	n := len(stored)
	r := &PreparedRun{
		start:      start,
		storedLens: make([]int, n),
		plains:     make([][]byte, n),
		errs:       make([]error, n),
		release:    release,
	}
	total := 0
	for i, b := range stored {
		r.storedLens[i] = len(b)
		if len(b) >= secure.MACLen {
			total += len(b) - secure.MACLen
		}
	}
	if !owned {
		buf := secure.GetRunBuffer()
		if cap(buf) < total {
			buf = make([]byte, total)
		}
		r.buf = buf[:total]
	}

	docID, hdr := s.header.DocID, &s.header
	at := 0
	offsets := make([]int, n)
	for i, b := range stored {
		offsets[i] = at
		if len(b) >= secure.MACLen {
			at += len(b) - secure.MACLen
		}
	}
	decryptOne := func(i int) {
		b := stored[i]
		idx := start + i
		if len(b) < secure.MACLen {
			r.errs[i] = fmt.Errorf("%w: block %d shorter than its tag", secure.ErrIntegrity, idx)
			return
		}
		gen := hdr.BlockGen(idx)
		if owned {
			plain, err := s.ctx.DecryptBlockInPlace(docID, gen, uint32(idx), b)
			r.plains[i], r.errs[i] = plain, err
			return
		}
		dst := r.buf[offsets[i] : offsets[i]+len(b)-secure.MACLen]
		if err := s.ctx.DecryptBlockInto(dst, docID, gen, uint32(idx), b); err != nil {
			r.errs[i] = err
			return
		}
		r.plains[i] = dst
	}

	if w := prepWorkers(n); w <= 1 {
		for i := range stored {
			decryptOne(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int, n)
		for i := range stored {
			next <- i
		}
		close(next)
		wg.Add(w)
		for k := 0; k < w; k++ {
			go func() {
				defer wg.Done()
				for i := range next {
					decryptOne(i)
				}
			}()
		}
		wg.Wait()
	}
	return r, nil
}

// FeedPrepared pushes one block of a prepared run into the card. It is
// the prepared twin of Feed: the same meter charges in the same order,
// the same geometry validation, the same abort semantics — only the
// cryptographic work already happened in PrepareRun. blockIdx must be
// the block NeedBlock asked for and must lie within the run at or past
// the last block fed from it (the gap being blocks the evaluator
// skipped, which are charged to no meter — they were speculation).
func (s *Session) FeedPrepared(r *PreparedRun, blockIdx int) ([]byte, error) {
	if s.phase != phaseDict && s.phase != phaseStream {
		return nil, fmt.Errorf("soe: session not accepting blocks (phase %d)", s.phase)
	}
	if want := s.NeedBlock(); blockIdx != want {
		return nil, fmt.Errorf("soe: fed block %d, card wants %d", blockIdx, want)
	}
	off := blockIdx - r.start
	if off < 0 || off >= len(r.plains) {
		return nil, fmt.Errorf("soe: block %d outside prepared run [%d,%d)", blockIdx, r.start, r.start+len(r.plains))
	}
	if off < r.fed {
		return nil, fmt.Errorf("soe: block %d of the run already fed", blockIdx)
	}
	r.fed = off + 1

	// Identical accounting to Feed: the stored block crosses the link...
	s.card.Meter.BytesToCard += int64(r.storedLens[off])
	s.card.Meter.APDUs += int64(apduCount(r.storedLens[off], s.card.Profile.MaxAPDUData))

	// ...then the card decrypts it (the simulated card still pays for the
	// crypto; only the host-side work was hoisted off the critical path).
	if err := r.errs[off]; err != nil {
		return nil, s.abort(err)
	}
	plain := r.plains[off]
	s.card.Meter.CryptoBytes += int64(len(plain))
	s.card.Meter.MACBytes += int64(len(plain))

	expect := int(s.header.BlockPlain)
	if blockIdx == s.header.NumBlocks()-1 {
		expect = int(s.header.PayloadLen) - blockIdx*int(s.header.BlockPlain)
	}
	if len(plain) != expect {
		return nil, s.abort(fmt.Errorf("%w: block %d has %d plaintext bytes, geometry says %d",
			secure.ErrIntegrity, blockIdx, len(plain), expect))
	}

	if err := s.src.feed(blockIdx, plain); err != nil {
		return nil, s.abort(err)
	}

	if s.phase == phaseDict {
		if err := s.tryFinishDict(); err != nil {
			if errors.Is(err, errNeedMore) {
				return s.drainOut(), nil
			}
			return nil, s.abort(err)
		}
	}
	if s.phase == phaseStream {
		if err := s.pump(); err != nil {
			if errors.Is(err, errNeedMore) {
				return s.drainOut(), nil
			}
			return nil, s.abort(err)
		}
	}
	return s.drainOut(), nil
}
