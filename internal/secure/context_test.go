package secure

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// oracleEncrypt is an independent reimplementation of the stored-block
// format straight from crypto/hmac and cipher.NewCTR — the reference
// the amortized BlockContext is differentially tested against. It is
// deliberately NOT the production code path.
func oracleEncrypt(t *testing.T, key DocKey, docID string, version, blockIdx uint32, plain []byte) []byte {
	t.Helper()
	c, err := aes.NewCipher(key.Enc[:])
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	h.Write([]byte("sds-iv"))
	var n [8]byte
	binary.BigEndian.PutUint32(n[:4], version)
	binary.BigEndian.PutUint32(n[4:], blockIdx)
	h.Write(n[:])
	h.Write([]byte(docID))
	iv := h.Sum(nil)[:aes.BlockSize]
	out := make([]byte, len(plain)+MACLen)
	cipher.NewCTR(c, iv).XORKeyStream(out[:len(plain)], plain)
	mac := hmac.New(sha256.New, key.Mac[:])
	mac.Write([]byte("blk"))
	mac.Write(n[:])
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(docID)))
	mac.Write(l[:])
	mac.Write([]byte(docID))
	mac.Write(out[:len(plain)])
	copy(out[len(plain):], mac.Sum(nil)[:MACLen])
	return out
}

// TestContextMatchesOracle: every context path (encrypt, decrypt, into,
// in-place, batched run) agrees byte for byte with the independent
// crypto/hmac + cipher.NewCTR construction across sizes and positions.
func TestContextMatchesOracle(t *testing.T) {
	key := KeyFromSeed("ctx-oracle")
	ctx, err := NewBlockContext(key)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{0, 1, 15, 16, 17, 255, 256, 1024} {
		for _, pos := range []uint32{0, 1, 7, 1 << 20} {
			plain := bytes.Repeat([]byte{byte(size), byte(pos)}, (size+1)/2)[:size]
			want := oracleEncrypt(t, key, "doc", 3, pos, plain)
			got, err := ctx.EncryptBlock("doc", 3, pos, plain)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("size=%d pos=%d: context ciphertext diverges from oracle", size, pos)
			}
			back, err := ctx.DecryptBlock("doc", 3, pos, want)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, plain) {
				t.Fatalf("size=%d pos=%d: decrypt diverges", size, pos)
			}
			dst := make([]byte, size)
			if err := ctx.DecryptBlockInto(dst, "doc", 3, pos, want); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dst, plain) {
				t.Fatalf("size=%d pos=%d: DecryptBlockInto diverges", size, pos)
			}
			owned := append([]byte(nil), want...)
			inPlace, err := ctx.DecryptBlockInPlace("doc", 3, pos, owned)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(inPlace, plain) {
				t.Fatalf("size=%d pos=%d: in-place decrypt diverges", size, pos)
			}
			if size > 0 && &inPlace[0] != &owned[0] {
				t.Fatal("in-place plaintext is not a view into the stored block")
			}
		}
	}
}

// TestDecryptBlocksRun: a batched run decrypts into one contiguous
// buffer, in order, with per-block generations honored.
func TestDecryptBlocksRun(t *testing.T) {
	key := KeyFromSeed("ctx-run")
	ctx, err := NewBlockContext(key)
	if err != nil {
		t.Fatal(err)
	}
	const start = 5
	versions := []uint32{1, 1, 2, 3}
	var blocks [][]byte
	var wantPlain [][]byte
	for i, v := range versions {
		plain := bytes.Repeat([]byte{byte('a' + i)}, 40+i)
		stored, err := ctx.EncryptBlock("doc", v, start+uint32(i), plain)
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, stored)
		wantPlain = append(wantPlain, plain)
	}
	plains, buf, err := ctx.DecryptBlocks(GetRunBuffer(), "doc", start, versions, blocks)
	if err != nil {
		t.Fatal(err)
	}
	defer PutRunBuffer(buf)
	if len(plains) != len(blocks) {
		t.Fatalf("got %d plaintexts for %d blocks", len(plains), len(blocks))
	}
	at := 0
	for i, p := range plains {
		if !bytes.Equal(p, wantPlain[i]) {
			t.Fatalf("block %d plaintext diverges", i)
		}
		if &p[0] != &buf[at] {
			t.Fatalf("block %d does not alias the contiguous buffer at offset %d", i, at)
		}
		at += len(p)
	}

	// Single shared version variant.
	uniform := make([][]byte, 3)
	for i := range uniform {
		plain := []byte(strings.Repeat("x", 10+i))
		uniform[i], _ = ctx.EncryptBlock("doc", 9, uint32(i), plain)
	}
	if _, buf2, err := ctx.DecryptBlocks(nil, "doc", 0, []uint32{9}, uniform); err != nil {
		t.Fatalf("shared-version run: %v", err)
	} else {
		PutRunBuffer(buf2)
	}
}

// TestDecryptBlocksPartialRunError: a tampered block fails the run with
// its absolute index, and blocks past the failure are never reported.
func TestDecryptBlocksPartialRunError(t *testing.T) {
	key := KeyFromSeed("ctx-partial")
	ctx, _ := NewBlockContext(key)
	var blocks [][]byte
	for i := 0; i < 4; i++ {
		stored, _ := ctx.EncryptBlock("doc", 1, uint32(10+i), bytes.Repeat([]byte{7}, 32))
		blocks = append(blocks, stored)
	}
	blocks[2][0] ^= 1 // tamper block index 12
	plains, _, err := ctx.DecryptBlocks(nil, "doc", 10, []uint32{1}, blocks)
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered run: err=%v, want ErrIntegrity", err)
	}
	if !strings.Contains(err.Error(), "block 12") {
		t.Fatalf("error does not name the failing absolute index: %v", err)
	}
	if plains != nil {
		t.Fatal("a failed run must not hand out plaintexts")
	}
	// Truncated block (shorter than its tag) is detected before any work.
	short := [][]byte{blocks[0], {1, 2, 3}}
	if _, _, err := ctx.DecryptBlocks(nil, "doc", 10, []uint32{1}, short); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("truncated run: err=%v, want ErrIntegrity", err)
	}
}

// TestContextTamperPerBlock mirrors TestBlockTamperDetected on the
// context path: every flipped bit of a stored block is caught.
func TestContextTamperPerBlock(t *testing.T) {
	key := KeyFromSeed("ctx-tamper")
	ctx, _ := NewBlockContext(key)
	stored, _ := ctx.EncryptBlock("doc", 1, 7, []byte("payload data here"))
	for i := range stored {
		mutated := append([]byte(nil), stored...)
		mutated[i] ^= 0x01
		if _, err := ctx.DecryptBlock("doc", 1, 7, mutated); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("flipping byte %d went undetected", i)
		}
		// In-place must also refuse — and must not have touched the bytes.
		before := append([]byte(nil), mutated...)
		if _, err := ctx.DecryptBlockInPlace("doc", 1, 7, mutated); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("in-place: flipping byte %d went undetected", i)
		}
		if !bytes.Equal(before, mutated) {
			t.Fatalf("in-place decrypt of a tampered block %d modified the input", i)
		}
	}
}

// TestContextConcurrentUse hammers one shared context from many
// goroutines (the prefetch pipeline's shape) under -race.
func TestContextConcurrentUse(t *testing.T) {
	key := KeyFromSeed("ctx-conc")
	ctx, _ := NewBlockContext(key)
	const blocks = 64
	stored := make([][]byte, blocks)
	for i := range stored {
		stored[i], _ = ctx.EncryptBlock("doc", 2, uint32(i), bytes.Repeat([]byte{byte(i)}, 128))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for pass := 0; pass < 20; pass++ {
				i := (w*13 + pass*7) % blocks
				p, err := ctx.DecryptBlock("doc", 2, uint32(i), stored[i])
				if err != nil {
					errs <- err
					return
				}
				if len(p) != 128 || p[0] != byte(i) {
					errs <- fmt.Errorf("block %d: wrong plaintext", i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// TestDecryptAllocsFlatAcrossRunLengths is the acceptance gate behind
// the decrypt_allocs_per_block metric: the amortized per-block toll of
// the batched path must not grow with the run length (the whole point
// of cloning HMAC state instead of re-keying).
func TestDecryptAllocsFlatAcrossRunLengths(t *testing.T) {
	key := KeyFromSeed("ctx-allocs")
	ctx, _ := NewBlockContext(key)
	perBlock := func(run int) float64 {
		stored := make([][]byte, run)
		for i := range stored {
			stored[i], _ = ctx.EncryptBlock("doc", 1, uint32(i), bytes.Repeat([]byte{9}, 256))
		}
		buf := GetRunBuffer()
		defer func() { PutRunBuffer(buf) }()
		// Warm the scratch pool.
		for i := 0; i < 4; i++ {
			_, b, err := ctx.DecryptBlocks(buf, "doc", 0, []uint32{1}, stored)
			if err != nil {
				t.Fatal(err)
			}
			buf = b
		}
		allocs := testing.AllocsPerRun(50, func() {
			_, b, err := ctx.DecryptBlocks(buf, "doc", 0, []uint32{1}, stored)
			if err != nil {
				t.Fatal(err)
			}
			buf = b
		})
		return allocs / float64(run)
	}
	small, large := perBlock(4), perBlock(32)
	// One allocation per run (the [][]byte header) is expected; per
	// block it must shrink, not grow, as runs lengthen.
	if large > small+0.5 {
		t.Fatalf("allocs per block grew with run length: run=4 %.2f, run=32 %.2f", small, large)
	}
	if large > 1.0 {
		t.Fatalf("batched decrypt allocates %.2f per block; the amortized path should stay below 1", large)
	}
}

// TestBlobContextRoundTrip: the blob framing works through a context
// (namespace is a per-call parameter, so one context serves a key's
// documents and blobs alike).
func TestBlobContextRoundTrip(t *testing.T) {
	key := KeyFromSeed("ctx-blob")
	ctx, _ := NewBlockContext(key)
	sealed, err := ctx.EncryptBlob("rules:doc|alice", 3, []byte("rule data"))
	if err != nil {
		t.Fatal(err)
	}
	// Interoperates with the package-level path in both directions.
	back, err := DecryptBlob(key, "rules:doc|alice", 3, sealed)
	if err != nil || string(back) != "rule data" {
		t.Fatalf("package-level open of context seal: %q, %v", back, err)
	}
	sealed2, err := EncryptBlob(key, "rules:doc|alice", 3, []byte("rule data"))
	if err != nil {
		t.Fatal(err)
	}
	back2, err := ctx.DecryptBlob("rules:doc|alice", 3, sealed2)
	if err != nil || string(back2) != "rule data" {
		t.Fatalf("context open of package-level seal: %q, %v", back2, err)
	}
	if _, err := ctx.DecryptBlob("rules:doc|bob", 3, sealed); !errors.Is(err, ErrIntegrity) {
		t.Error("cross-namespace blob accepted")
	}
}

// TestDecryptBlockIntoSizeMismatch: a wrong-size destination is refused
// before any verification work.
func TestDecryptBlockIntoSizeMismatch(t *testing.T) {
	key := KeyFromSeed("ctx-size")
	ctx, _ := NewBlockContext(key)
	stored, _ := ctx.EncryptBlock("doc", 1, 0, []byte("0123456789"))
	if err := ctx.DecryptBlockInto(make([]byte, 9), "doc", 1, 0, stored); err == nil {
		t.Fatal("short destination accepted")
	}
	if err := ctx.DecryptBlockInto(make([]byte, 11), "doc", 1, 0, stored); err == nil {
		t.Fatal("long destination accepted")
	}
}
