// Package secure implements the cryptographic envelope of the paper's
// architecture: documents are stored encrypted on the untrusted DSP, cut
// into cipher blocks so the SOE can decrypt them incrementally, and
// integrity-protected so that "the only way to mislead the access control
// rule evaluator is to tamper the input document, for example by
// substituting or modifying encrypted blocks" is detected (Section 2.1).
//
// Design choices:
//
//   - AES-128-CTR per block, with a keystream position derived from
//     (document, version, block index): random access, which the skip
//     index requires, and no padding overhead;
//   - a truncated HMAC-SHA-256 tag per block, bound to the document id,
//     version and block index: substituting a block by another (from the
//     same or another document, or from a previous version) is detected
//     even when surrounding blocks are never read — the property chained
//     MACs lack, and the reason the paper's skips need positional
//     integrity (see DESIGN.md);
//   - an authenticated header binding the document geometry, which
//     defeats truncation.
//
// Key sizes follow today's floor rather than the 2005 -era 3DES the
// e-gate card accelerated; the simulator's cost model, not the cipher
// identity, carries the performance fidelity.
package secure

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// MACLen is the per-block authentication tag length. 8 bytes keeps the
// storage and transmission overhead close to the smartcard-era DES-MAC
// the original platform used, while 2^-64 forgery odds remain far beyond
// the attacker model of a data store.
const MACLen = 8

// HeaderMACLen authenticates the container header.
const HeaderMACLen = 16

// DocKey is the symmetric key material protecting one document: an
// encryption key and an independent MAC key.
type DocKey struct {
	Enc [16]byte
	Mac [32]byte
}

// NewDocKey draws a fresh random key pair.
func NewDocKey() (DocKey, error) {
	var k DocKey
	if _, err := rand.Read(k.Enc[:]); err != nil {
		return k, fmt.Errorf("secure: generating key: %w", err)
	}
	if _, err := rand.Read(k.Mac[:]); err != nil {
		return k, fmt.Errorf("secure: generating key: %w", err)
	}
	return k, nil
}

// KeyFromSeed derives a DocKey deterministically from a seed. Tests and
// deterministic workloads use it; production paths use NewDocKey.
func KeyFromSeed(seed string) DocKey {
	var k DocKey
	h := sha256.Sum256([]byte("sds-enc:" + seed))
	copy(k.Enc[:], h[:16])
	k.Mac = sha256.Sum256([]byte("sds-mac:" + seed))
	return k
}

// Marshal serializes the key (for PKI wrapping).
func (k DocKey) Marshal() []byte {
	out := make([]byte, 0, 48)
	out = append(out, k.Enc[:]...)
	out = append(out, k.Mac[:]...)
	return out
}

// UnmarshalDocKey reverses Marshal.
func UnmarshalDocKey(b []byte) (DocKey, error) {
	var k DocKey
	if len(b) != 48 {
		return k, fmt.Errorf("secure: key material must be 48 bytes, got %d", len(b))
	}
	copy(k.Enc[:], b[:16])
	copy(k.Mac[:], b[16:])
	return k, nil
}

// blockIV derives the CTR start counter for a block.
func blockIV(docID string, version uint32, blockIdx uint32) [aes.BlockSize]byte {
	h := sha256.New()
	h.Write([]byte("sds-iv"))
	var n [8]byte
	binary.BigEndian.PutUint32(n[:4], version)
	binary.BigEndian.PutUint32(n[4:], blockIdx)
	h.Write(n[:])
	h.Write([]byte(docID))
	var iv [aes.BlockSize]byte
	copy(iv[:], h.Sum(nil))
	return iv
}

// blockMAC computes the positional tag of a ciphertext block.
func blockMAC(key DocKey, docID string, version uint32, blockIdx uint32, ct []byte) [MACLen]byte {
	mac := hmac.New(sha256.New, key.Mac[:])
	var n [8]byte
	binary.BigEndian.PutUint32(n[:4], version)
	binary.BigEndian.PutUint32(n[4:], blockIdx)
	mac.Write([]byte("blk"))
	mac.Write(n[:])
	writeLenPrefixed(mac, []byte(docID))
	mac.Write(ct)
	var out [MACLen]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// EncryptBlock produces the stored form of one plaintext block:
// ciphertext || tag. The stored block is len(plain)+MACLen bytes.
func EncryptBlock(key DocKey, docID string, version uint32, blockIdx uint32, plain []byte) ([]byte, error) {
	c, err := aes.NewCipher(key.Enc[:])
	if err != nil {
		return nil, fmt.Errorf("secure: %w", err)
	}
	iv := blockIV(docID, version, blockIdx)
	out := make([]byte, len(plain)+MACLen)
	cipher.NewCTR(c, iv[:]).XORKeyStream(out[:len(plain)], plain)
	tag := blockMAC(key, docID, version, blockIdx, out[:len(plain)])
	copy(out[len(plain):], tag[:])
	return out, nil
}

// DecryptBlock verifies and decrypts a stored block. A tag mismatch
// (tampering, substitution, replay of another position or version)
// returns ErrIntegrity.
func DecryptBlock(key DocKey, docID string, version uint32, blockIdx uint32, stored []byte) ([]byte, error) {
	if len(stored) < MACLen {
		return nil, fmt.Errorf("%w: block %d shorter than its tag", ErrIntegrity, blockIdx)
	}
	ct := stored[:len(stored)-MACLen]
	want := blockMAC(key, docID, version, blockIdx, ct)
	if !hmac.Equal(want[:], stored[len(stored)-MACLen:]) {
		return nil, fmt.Errorf("%w: block %d tag mismatch", ErrIntegrity, blockIdx)
	}
	c, err := aes.NewCipher(key.Enc[:])
	if err != nil {
		return nil, fmt.Errorf("secure: %w", err)
	}
	iv := blockIV(docID, version, blockIdx)
	plain := make([]byte, len(ct))
	cipher.NewCTR(c, iv[:]).XORKeyStream(plain, ct)
	return plain, nil
}

// ErrIntegrity reports tampered input.
var ErrIntegrity = fmt.Errorf("secure: integrity check failed")

// HeaderMAC authenticates the canonical header encoding.
func HeaderMAC(key DocKey, headerBytes []byte) [HeaderMACLen]byte {
	mac := hmac.New(sha256.New, key.Mac[:])
	mac.Write([]byte("hdr"))
	mac.Write(headerBytes)
	var out [HeaderMACLen]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// VerifyHeaderMAC checks a header tag in constant time.
func VerifyHeaderMAC(key DocKey, headerBytes []byte, tag [HeaderMACLen]byte) error {
	want := HeaderMAC(key, headerBytes)
	if !hmac.Equal(want[:], tag[:]) {
		return fmt.Errorf("%w: header tag mismatch", ErrIntegrity)
	}
	return nil
}

// EncryptBlob seals a small standalone blob (rule sets on the DSP) with
// the same primitives, using block index 0 of a caller-chosen namespace.
func EncryptBlob(key DocKey, namespace string, version uint32, plain []byte) ([]byte, error) {
	return EncryptBlock(key, "blob:"+namespace, version, 0, plain)
}

// DecryptBlob opens an EncryptBlob result.
func DecryptBlob(key DocKey, namespace string, version uint32, sealed []byte) ([]byte, error) {
	return DecryptBlock(key, "blob:"+namespace, version, 0, sealed)
}

func writeLenPrefixed(mac interface{ Write([]byte) (int, error) }, b []byte) {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(b)))
	mac.Write(l[:])
	mac.Write(b)
}
