// Package secure implements the cryptographic envelope of the paper's
// architecture: documents are stored encrypted on the untrusted DSP, cut
// into cipher blocks so the SOE can decrypt them incrementally, and
// integrity-protected so that "the only way to mislead the access control
// rule evaluator is to tamper the input document, for example by
// substituting or modifying encrypted blocks" is detected (Section 2.1).
//
// Design choices:
//
//   - AES-128-CTR per block, with a keystream position derived from
//     (document, version, block index): random access, which the skip
//     index requires, and no padding overhead;
//   - a truncated HMAC-SHA-256 tag per block, bound to the document id,
//     version and block index: substituting a block by another (from the
//     same or another document, or from a previous version) is detected
//     even when surrounding blocks are never read — the property chained
//     MACs lack, and the reason the paper's skips need positional
//     integrity (see DESIGN.md);
//   - an authenticated header binding the document geometry, which
//     defeats truncation.
//
// Key sizes follow today's floor rather than the 2005 -era 3DES the
// e-gate card accelerated; the simulator's cost model, not the cipher
// identity, carries the performance fidelity.
package secure

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
)

// MACLen is the per-block authentication tag length. 8 bytes keeps the
// storage and transmission overhead close to the smartcard-era DES-MAC
// the original platform used, while 2^-64 forgery odds remain far beyond
// the attacker model of a data store.
const MACLen = 8

// HeaderMACLen authenticates the container header.
const HeaderMACLen = 16

// DocKey is the symmetric key material protecting one document: an
// encryption key and an independent MAC key.
type DocKey struct {
	Enc [16]byte
	Mac [32]byte
}

// NewDocKey draws a fresh random key pair.
func NewDocKey() (DocKey, error) {
	var k DocKey
	if _, err := rand.Read(k.Enc[:]); err != nil {
		return k, fmt.Errorf("secure: generating key: %w", err)
	}
	if _, err := rand.Read(k.Mac[:]); err != nil {
		return k, fmt.Errorf("secure: generating key: %w", err)
	}
	return k, nil
}

// KeyFromSeed derives a DocKey deterministically from a seed. Tests and
// deterministic workloads use it; production paths use NewDocKey.
func KeyFromSeed(seed string) DocKey {
	var k DocKey
	h := sha256.Sum256([]byte("sds-enc:" + seed))
	copy(k.Enc[:], h[:16])
	k.Mac = sha256.Sum256([]byte("sds-mac:" + seed))
	return k
}

// Marshal serializes the key (for PKI wrapping).
func (k DocKey) Marshal() []byte {
	out := make([]byte, 0, 48)
	out = append(out, k.Enc[:]...)
	out = append(out, k.Mac[:]...)
	return out
}

// UnmarshalDocKey reverses Marshal.
func UnmarshalDocKey(b []byte) (DocKey, error) {
	var k DocKey
	if len(b) != 48 {
		return k, fmt.Errorf("secure: key material must be 48 bytes, got %d", len(b))
	}
	copy(k.Enc[:], b[:16])
	copy(k.Mac[:], b[16:])
	return k, nil
}

// EncryptBlock produces the stored form of one plaintext block:
// ciphertext || tag. The stored block is len(plain)+MACLen bytes.
//
// One-shot convenience over a throwaway BlockContext; callers that
// touch more than one block of a key hold a BlockContext instead and
// pay the cipher and HMAC setup once.
func EncryptBlock(key DocKey, docID string, version uint32, blockIdx uint32, plain []byte) ([]byte, error) {
	c, err := NewBlockContext(key)
	if err != nil {
		return nil, err
	}
	return c.EncryptBlock(docID, version, blockIdx, plain)
}

// DecryptBlock verifies and decrypts a stored block. A tag mismatch
// (tampering, substitution, replay of another position or version)
// returns ErrIntegrity. One-shot convenience over a throwaway
// BlockContext (see EncryptBlock).
func DecryptBlock(key DocKey, docID string, version uint32, blockIdx uint32, stored []byte) ([]byte, error) {
	c, err := NewBlockContext(key)
	if err != nil {
		return nil, err
	}
	return c.DecryptBlock(docID, version, blockIdx, stored)
}

// ErrIntegrity reports tampered input.
var ErrIntegrity = fmt.Errorf("secure: integrity check failed")

// HeaderMAC authenticates the canonical header encoding.
func HeaderMAC(key DocKey, headerBytes []byte) [HeaderMACLen]byte {
	mac := hmac.New(sha256.New, key.Mac[:])
	mac.Write([]byte("hdr"))
	mac.Write(headerBytes)
	var out [HeaderMACLen]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// VerifyHeaderMAC checks a header tag in constant time.
func VerifyHeaderMAC(key DocKey, headerBytes []byte, tag [HeaderMACLen]byte) error {
	want := HeaderMAC(key, headerBytes)
	if !hmac.Equal(want[:], tag[:]) {
		return fmt.Errorf("%w: header tag mismatch", ErrIntegrity)
	}
	return nil
}

// EncryptBlob seals a small standalone blob (rule sets on the DSP) with
// the same primitives, using block index 0 of a caller-chosen namespace.
func EncryptBlob(key DocKey, namespace string, version uint32, plain []byte) ([]byte, error) {
	return EncryptBlock(key, "blob:"+namespace, version, 0, plain)
}

// DecryptBlob opens an EncryptBlob result.
func DecryptBlob(key DocKey, namespace string, version uint32, sealed []byte) ([]byte, error) {
	return DecryptBlock(key, "blob:"+namespace, version, 0, sealed)
}
