package secure

// The batched decrypt layer. DecryptBlock pays a fresh aes.NewCipher,
// a fresh hmac.New (two SHA-256 inits plus key processing) and a heap
// plaintext per call — per *block*, on the hottest path of the system
// (the card side of the pull link). A BlockContext amortizes everything
// that depends only on the key: the AES cipher is built once, and the
// HMAC ipad/opad SHA-256 states are absorbed once and cloned per block
// through the hash's encoding.BinaryMarshaler state, which replaces two
// key-schedule compressions and five allocations per block with two
// state restores and none. Scratch space (hash clones, counter and
// keystream buffers, the MAC preimage prefix) lives in a sync.Pool, so
// a context is safe for concurrent use — the prefetch pipeline decrypts
// run blocks from several goroutines against one shared context.

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"fmt"
	"hash"
	"sync"
)

// BlockContext is the reusable per-DocKey cipher state. It is immutable
// after construction and safe for concurrent use.
type BlockContext struct {
	key   DocKey
	block cipher.Block

	// ipad / opad are the marshaled SHA-256 states after absorbing the
	// MAC key XOR 0x36 / 0x5c pads — the two halves of HMAC-SHA-256,
	// precomputed once and restored per block.
	ipad, opad []byte

	scratch sync.Pool // *blockScratch
}

// blockScratch is the per-goroutine working state of one block
// operation; pooling it makes the steady-state path allocation-free.
type blockScratch struct {
	inner, outer hash.Hash // HMAC halves, restored from ipad/opad
	ivh          hash.Hash // plain SHA-256 for IV derivation
	pre          []byte    // MAC/IV preimage prefix, reused
	sum          [sha256.Size]byte
	iv           [sha256.Size]byte
	ctr, ks      [aes.BlockSize]byte
}

// NewBlockContext builds the reusable cipher state for one key.
func NewBlockContext(key DocKey) (*BlockContext, error) {
	b, err := aes.NewCipher(key.Enc[:])
	if err != nil {
		return nil, fmt.Errorf("secure: %w", err)
	}
	var pad [sha256.BlockSize]byte
	for i := range pad {
		pad[i] = 0x36
	}
	for i, kb := range key.Mac {
		pad[i] ^= kb
	}
	inner := sha256.New()
	inner.Write(pad[:])
	ipad, err := inner.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("secure: marshaling hmac state: %w", err)
	}
	for i := range pad {
		pad[i] ^= 0x36 ^ 0x5c
	}
	outer := sha256.New()
	outer.Write(pad[:])
	opad, err := outer.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("secure: marshaling hmac state: %w", err)
	}
	c := &BlockContext{key: key, block: b, ipad: ipad, opad: opad}
	c.scratch.New = func() any {
		return &blockScratch{inner: sha256.New(), outer: sha256.New(), ivh: sha256.New()}
	}
	return c, nil
}

// Key returns the key this context was built for.
func (c *BlockContext) Key() DocKey { return c.key }

// restore rewinds a pooled hash to a precomputed state. The states were
// produced by the same implementation's MarshalBinary, so a failure is
// a programming error, not an input condition.
func restore(h hash.Hash, state []byte) {
	if err := h.(encoding.BinaryUnmarshaler).UnmarshalBinary(state); err != nil {
		panic(fmt.Sprintf("secure: restoring hmac state: %v", err))
	}
}

// macPrefix assembles the positional MAC preimage prefix into s.pre:
// "blk" || version || blockIdx || len(docID) || docID. One buffered
// Write instead of four keeps the hot path free of byte-slice
// conversions.
func (s *blockScratch) macPrefix(docID string, version, blockIdx uint32) {
	s.pre = append(s.pre[:0], 'b', 'l', 'k')
	var n [8]byte
	binary.BigEndian.PutUint32(n[:4], version)
	binary.BigEndian.PutUint32(n[4:], blockIdx)
	s.pre = append(s.pre, n[:]...)
	binary.BigEndian.PutUint32(n[:4], uint32(len(docID)))
	s.pre = append(s.pre, n[:4]...)
	s.pre = append(s.pre, docID...)
}

// mac computes the positional tag of a ciphertext block — bit-identical
// to the historical hmac.New(sha256.New, key.Mac) construction, via the
// precomputed pad states.
func (c *BlockContext) mac(s *blockScratch, docID string, version, blockIdx uint32, ct []byte) [MACLen]byte {
	restore(s.inner, c.ipad)
	s.macPrefix(docID, version, blockIdx)
	s.inner.Write(s.pre)
	s.inner.Write(ct)
	innerSum := s.inner.Sum(s.sum[:0])
	restore(s.outer, c.opad)
	s.outer.Write(innerSum)
	full := s.outer.Sum(s.sum[:0])
	var out [MACLen]byte
	copy(out[:], full)
	return out
}

// deriveIV computes the CTR start counter into s.iv (same derivation as
// the package-level path: sha256("sds-iv" || version || blockIdx ||
// docID), truncated to the AES block size).
func (c *BlockContext) deriveIV(s *blockScratch, docID string, version, blockIdx uint32) {
	s.pre = append(s.pre[:0], "sds-iv"...)
	var n [8]byte
	binary.BigEndian.PutUint32(n[:4], version)
	binary.BigEndian.PutUint32(n[4:], blockIdx)
	s.pre = append(s.pre, n[:]...)
	s.pre = append(s.pre, docID...)
	s.ivh.Reset()
	s.ivh.Write(s.pre)
	s.ivh.Sum(s.iv[:0])
}

// ctrXOR applies the AES-CTR keystream starting at s.iv to src, writing
// into dst (dst may alias src — the in-place path). Equivalent to
// cipher.NewCTR(block, iv).XORKeyStream but without the per-call stream
// allocation.
func (c *BlockContext) ctrXOR(s *blockScratch, dst, src []byte) {
	copy(s.ctr[:], s.iv[:aes.BlockSize])
	for len(src) > 0 {
		c.block.Encrypt(s.ks[:], s.ctr[:])
		n := len(src)
		if n > aes.BlockSize {
			n = aes.BlockSize
		}
		if n == aes.BlockSize {
			// Word-wise XOR of a full keystream block.
			binary.LittleEndian.PutUint64(dst[:8],
				binary.LittleEndian.Uint64(src[:8])^binary.LittleEndian.Uint64(s.ks[:8]))
			binary.LittleEndian.PutUint64(dst[8:16],
				binary.LittleEndian.Uint64(src[8:16])^binary.LittleEndian.Uint64(s.ks[8:16]))
		} else {
			for i := 0; i < n; i++ {
				dst[i] = src[i] ^ s.ks[i]
			}
		}
		src = src[n:]
		dst = dst[n:]
		for i := aes.BlockSize - 1; i >= 0; i-- {
			s.ctr[i]++
			if s.ctr[i] != 0 {
				break
			}
		}
	}
}

// EncryptBlock is the context form of the package-level EncryptBlock:
// ciphertext || tag, len(plain)+MACLen bytes, amortized cipher state.
func (c *BlockContext) EncryptBlock(docID string, version, blockIdx uint32, plain []byte) ([]byte, error) {
	s := c.scratch.Get().(*blockScratch)
	defer c.scratch.Put(s)
	out := make([]byte, len(plain)+MACLen)
	c.deriveIV(s, docID, version, blockIdx)
	c.ctrXOR(s, out[:len(plain)], plain)
	tag := c.mac(s, docID, version, blockIdx, out[:len(plain)])
	copy(out[len(plain):], tag[:])
	return out, nil
}

// DecryptBlock verifies and decrypts a stored block into fresh heap
// memory (the context form of the package-level DecryptBlock).
func (c *BlockContext) DecryptBlock(docID string, version, blockIdx uint32, stored []byte) ([]byte, error) {
	if len(stored) < MACLen {
		return nil, fmt.Errorf("%w: block %d shorter than its tag", ErrIntegrity, blockIdx)
	}
	plain := make([]byte, len(stored)-MACLen)
	if err := c.DecryptBlockInto(plain, docID, version, blockIdx, stored); err != nil {
		return nil, err
	}
	return plain, nil
}

// DecryptBlockInto verifies a stored block and decrypts it into dst,
// which must be exactly len(stored)-MACLen bytes. dst may alias the
// ciphertext prefix of stored: the tag is checked before a single byte
// is transformed, so in-place decryption never reads mixed state.
func (c *BlockContext) DecryptBlockInto(dst []byte, docID string, version, blockIdx uint32, stored []byte) error {
	if len(stored) < MACLen {
		return fmt.Errorf("%w: block %d shorter than its tag", ErrIntegrity, blockIdx)
	}
	ct := stored[:len(stored)-MACLen]
	if len(dst) != len(ct) {
		return fmt.Errorf("secure: block %d destination is %d bytes, ciphertext is %d", blockIdx, len(dst), len(ct))
	}
	s := c.scratch.Get().(*blockScratch)
	defer c.scratch.Put(s)
	want := c.mac(s, docID, version, blockIdx, ct)
	if !hmac.Equal(want[:], stored[len(stored)-MACLen:]) {
		return fmt.Errorf("%w: block %d tag mismatch", ErrIntegrity, blockIdx)
	}
	c.deriveIV(s, docID, version, blockIdx)
	c.ctrXOR(s, dst, ct)
	return nil
}

// DecryptBlockInPlace verifies a stored block and decrypts its
// ciphertext where it lies, returning the plaintext as a prefix view of
// stored. Only callers that own the stored bytes may use it — blocks
// handed out by in-process stores and caches are shared store memory,
// while a client's pooled BlockFrame is caller-owned until Release.
func (c *BlockContext) DecryptBlockInPlace(docID string, version, blockIdx uint32, stored []byte) ([]byte, error) {
	if len(stored) < MACLen {
		return nil, fmt.Errorf("%w: block %d shorter than its tag", ErrIntegrity, blockIdx)
	}
	ct := stored[:len(stored)-MACLen]
	if err := c.DecryptBlockInto(ct, docID, version, blockIdx, stored); err != nil {
		return nil, err
	}
	return ct, nil
}

// DecryptBlocks verifies and decrypts a contiguous run of stored blocks
// (indices start, start+1, ...) into one contiguous buffer grown from
// dst (pass a pooled buffer — GetRunBuffer — or nil). versions holds
// the per-block generation: either one entry per block or a single
// entry shared by the whole run. It returns one plaintext view per
// block, all aliasing the returned buffer, and fails on the first bad
// block with its index in the error (the partial-run contract: nothing
// is reported decrypted past a failure).
func (c *BlockContext) DecryptBlocks(dst []byte, docID string, start uint32, versions []uint32, blocks [][]byte) ([][]byte, []byte, error) {
	if len(versions) != 1 && len(versions) != len(blocks) {
		return nil, dst, fmt.Errorf("secure: %d versions for %d blocks", len(versions), len(blocks))
	}
	total := 0
	for i, b := range blocks {
		if len(b) < MACLen {
			return nil, dst, fmt.Errorf("%w: block %d shorter than its tag", ErrIntegrity, start+uint32(i))
		}
		total += len(b) - MACLen
	}
	buf := dst[:0]
	if cap(buf) < total {
		buf = make([]byte, 0, total)
	}
	buf = buf[:total]
	plains := make([][]byte, len(blocks))
	at := 0
	for i, b := range blocks {
		v := versions[0]
		if len(versions) > 1 {
			v = versions[i]
		}
		n := len(b) - MACLen
		seg := buf[at : at+n : at+n]
		if err := c.DecryptBlockInto(seg, docID, v, start+uint32(i), b); err != nil {
			return nil, buf, err
		}
		plains[i] = seg
		at += n
	}
	return plains, buf, nil
}

// EncryptBlob seals a standalone blob through the context (same framing
// as the package-level EncryptBlob).
func (c *BlockContext) EncryptBlob(namespace string, version uint32, plain []byte) ([]byte, error) {
	return c.EncryptBlock("blob:"+namespace, version, 0, plain)
}

// DecryptBlob opens an EncryptBlob result through the context.
func (c *BlockContext) DecryptBlob(namespace string, version uint32, sealed []byte) ([]byte, error) {
	return c.DecryptBlock("blob:"+namespace, version, 0, sealed)
}

// maxPooledRunBuf bounds the capacity a released run buffer may retain,
// mirroring the client frame pool's cap.
const maxPooledRunBuf = 1 << 20

// runBufPool recycles the contiguous plaintext buffers of DecryptBlocks
// across runs.
var runBufPool = sync.Pool{New: func() any { return new([]byte) }}

// GetRunBuffer returns a pooled buffer for DecryptBlocks' dst.
func GetRunBuffer() []byte { return *runBufPool.Get().(*[]byte) }

// PutRunBuffer returns a DecryptBlocks buffer to the pool. The caller
// must be done with every plaintext view into it.
func PutRunBuffer(b []byte) {
	if cap(b) > maxPooledRunBuf {
		return
	}
	b = b[:0]
	runBufPool.Put(&b)
}
