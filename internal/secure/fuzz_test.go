package secure

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecryptBlock drives the block opener with arbitrary stored bytes
// and positions. Properties checked: no panic on any input; a genuine
// EncryptBlock output round-trips; any input that differs from the
// genuine stored block is rejected with ErrIntegrity (never silently
// accepted, never a foreign error).
func FuzzDecryptBlock(f *testing.F) {
	key := KeyFromSeed("fuzz-block")
	ctx, err := NewBlockContext(key)
	if err != nil {
		f.Fatal(err)
	}
	seedPlain := []byte("fuzz seed plaintext 0123456789")
	seedStored, err := ctx.EncryptBlock("doc", 1, 0, seedPlain)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seedStored, "doc", uint32(1), uint32(0))
	f.Add(seedStored[:len(seedStored)-1], "doc", uint32(1), uint32(0)) // truncated
	f.Add([]byte{}, "", uint32(0), uint32(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7}, "d", uint32(2), uint32(9)) // shorter than tag
	f.Fuzz(func(t *testing.T, stored []byte, docID string, version, blockIdx uint32) {
		plain, err := ctx.DecryptBlock(docID, version, blockIdx, stored)
		if err != nil {
			if !errors.Is(err, ErrIntegrity) {
				t.Fatalf("non-integrity error from arbitrary input: %v", err)
			}
			return
		}
		// Accepted: must be a forgery-free round trip — re-encrypting
		// the plaintext at the same position reproduces the input.
		again, err := ctx.EncryptBlock(docID, version, blockIdx, plain)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, stored) {
			t.Fatalf("accepted stored block is not the canonical encryption of its plaintext")
		}
		// And the package-level path agrees.
		p2, err := DecryptBlock(key, docID, version, blockIdx, stored)
		if err != nil || !bytes.Equal(p2, plain) {
			t.Fatalf("package-level DecryptBlock disagrees with context: %v", err)
		}
	})
}

// FuzzDecryptBlob covers the blob framing (namespace binding) the rule
// store depends on: arbitrary sealed bytes must never open, except the
// genuine seal under the genuine namespace and version.
func FuzzDecryptBlob(f *testing.F) {
	key := KeyFromSeed("fuzz-blob")
	sealed, err := EncryptBlob(key, "rules:doc|alice", 3, []byte("GRANT read"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sealed, "rules:doc|alice", uint32(3))
	f.Add(sealed, "rules:doc|bob", uint32(3))   // wrong namespace
	f.Add(sealed, "rules:doc|alice", uint32(4)) // wrong version
	f.Add(sealed[:4], "rules:doc|alice", uint32(3))
	f.Add([]byte(nil), "", uint32(0))
	f.Fuzz(func(t *testing.T, blob []byte, namespace string, version uint32) {
		plain, err := DecryptBlob(key, namespace, version, blob)
		if err != nil {
			if !errors.Is(err, ErrIntegrity) {
				t.Fatalf("non-integrity error from arbitrary blob: %v", err)
			}
			return
		}
		again, err := EncryptBlob(key, namespace, version, plain)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, blob) {
			t.Fatalf("accepted blob is not the canonical seal of its plaintext")
		}
	})
}
