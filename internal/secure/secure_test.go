package secure

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestBlockRoundTrip(t *testing.T) {
	key := KeyFromSeed("k1")
	plain := []byte("the quick brown fox jumps over the lazy dog")
	stored, err := EncryptBlock(key, "doc", 1, 7, plain)
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != len(plain)+MACLen {
		t.Fatalf("stored size %d, want %d", len(stored), len(plain)+MACLen)
	}
	if bytes.Contains(stored, []byte("quick")) {
		t.Fatal("plaintext leaks into stored block")
	}
	back, err := DecryptBlock(key, "doc", 1, 7, stored)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, plain) {
		t.Fatalf("round trip changed data: %q", back)
	}
}

func TestBlockTamperDetected(t *testing.T) {
	key := KeyFromSeed("k1")
	stored, _ := EncryptBlock(key, "doc", 1, 7, []byte("payload data here"))
	for i := range stored {
		mutated := append([]byte(nil), stored...)
		mutated[i] ^= 0x01
		if _, err := DecryptBlock(key, "doc", 1, 7, mutated); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
}

// TestPositionalBinding: the attacks the paper names — substituting or
// moving encrypted blocks — must all be detected.
func TestPositionalBinding(t *testing.T) {
	key := KeyFromSeed("k1")
	plain := []byte("some confidential block")
	stored, _ := EncryptBlock(key, "doc", 1, 7, plain)

	cases := []struct {
		name         string
		docID        string
		version, idx uint32
	}{
		{"wrong position", "doc", 1, 8},
		{"wrong version (replay of an old version)", "doc", 2, 7},
		{"wrong document", "other", 1, 7},
	}
	for _, c := range cases {
		if _, err := DecryptBlock(key, c.docID, c.version, c.idx, stored); !errors.Is(err, ErrIntegrity) {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := DecryptBlock(KeyFromSeed("k2"), "doc", 1, 7, stored); !errors.Is(err, ErrIntegrity) {
		t.Error("wrong key: accepted")
	}
}

func TestShortBlockRejected(t *testing.T) {
	if _, err := DecryptBlock(KeyFromSeed("k"), "d", 0, 0, []byte{1, 2, 3}); !errors.Is(err, ErrIntegrity) {
		t.Error("block shorter than its tag must fail integrity")
	}
}

func TestHeaderMAC(t *testing.T) {
	key := KeyFromSeed("k1")
	hdr := []byte("header bytes")
	tag := HeaderMAC(key, hdr)
	if err := VerifyHeaderMAC(key, hdr, tag); err != nil {
		t.Fatal(err)
	}
	if err := VerifyHeaderMAC(key, []byte("header bytez"), tag); !errors.Is(err, ErrIntegrity) {
		t.Error("modified header accepted")
	}
	if err := VerifyHeaderMAC(KeyFromSeed("k2"), hdr, tag); !errors.Is(err, ErrIntegrity) {
		t.Error("wrong key accepted")
	}
}

func TestBlobRoundTripAndNamespace(t *testing.T) {
	key := KeyFromSeed("k1")
	sealed, err := EncryptBlob(key, "rules:doc|alice", 3, []byte("rule data"))
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecryptBlob(key, "rules:doc|alice", 3, sealed)
	if err != nil || string(back) != "rule data" {
		t.Fatalf("round trip: %q, %v", back, err)
	}
	if _, err := DecryptBlob(key, "rules:doc|bob", 3, sealed); !errors.Is(err, ErrIntegrity) {
		t.Error("cross-namespace blob accepted")
	}
	if _, err := DecryptBlob(key, "rules:doc|alice", 4, sealed); !errors.Is(err, ErrIntegrity) {
		t.Error("cross-version blob accepted")
	}
}

func TestKeyMarshal(t *testing.T) {
	key, err := NewDocKey()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalDocKey(key.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back != key {
		t.Fatal("key round trip changed material")
	}
	if _, err := UnmarshalDocKey([]byte("short")); err == nil {
		t.Error("short key material accepted")
	}
}

func TestKeyFromSeedDeterministicAndDistinct(t *testing.T) {
	if KeyFromSeed("a") != KeyFromSeed("a") {
		t.Error("same seed must derive the same key")
	}
	if KeyFromSeed("a") == KeyFromSeed("b") {
		t.Error("different seeds must derive different keys")
	}
}

func TestDistinctBlocksDistinctCiphertext(t *testing.T) {
	// CTR keystreams must differ per position: identical plaintext at two
	// positions must not produce identical ciphertext.
	key := KeyFromSeed("k1")
	plain := bytes.Repeat([]byte{0x42}, 64)
	a, _ := EncryptBlock(key, "doc", 1, 0, plain)
	b, _ := EncryptBlock(key, "doc", 1, 1, plain)
	if bytes.Equal(a[:64], b[:64]) {
		t.Fatal("two positions share a keystream")
	}
}

// TestQuickRoundTrip: arbitrary payloads round trip at arbitrary
// positions.
func TestQuickRoundTrip(t *testing.T) {
	key := KeyFromSeed("q")
	f := func(plain []byte, idx uint32, version uint32) bool {
		stored, err := EncryptBlock(key, "doc", version, idx, plain)
		if err != nil {
			return false
		}
		back, err := DecryptBlock(key, "doc", version, idx, stored)
		return err == nil && bytes.Equal(back, plain)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
