// Package xmlstream implements the event-based (SAX-style) XML substrate
// the paper's streaming access-control evaluator is fed with.
//
// The paper assumes "the evaluator is fed by an event-based parser (e.g.,
// SAX) raising open, value and close events respectively for each opening,
// text and closing tag in the input document". This package provides:
//
//   - the Event model (Open / Value / Close),
//   - a small, non-validating pull parser producing those events,
//   - a serializer turning an event stream back into XML text,
//   - tree helpers and document statistics used by tests and workloads.
//
// Attributes are modelled as children: an element's attribute a="v" is
// reported as Open("@a"), Value("v"), Close("@a") immediately after the
// element's own Open event, before any other content. This is the usual
// convention in the XML access-control literature (rules can then target
// attributes with the same machinery as elements) and is reversed by the
// serializer, which folds leading "@" children back into attributes.
package xmlstream

import "fmt"

// Kind discriminates the three stream events of the paper's model.
type Kind uint8

// The three event kinds raised by the parser.
const (
	// Open is raised for each opening tag (and synthesized attribute).
	Open Kind = iota
	// Value is raised for each text node (and attribute value).
	Value
	// Close is raised for each closing tag (and synthesized attribute).
	Close
)

// String returns the conventional name of the event kind.
func (k Kind) String() string {
	switch k {
	case Open:
		return "open"
	case Value:
		return "value"
	case Close:
		return "close"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one element of the stream: an opening tag, a text value, or a
// closing tag. Attribute pseudo-elements use names starting with '@'.
type Event struct {
	Kind Kind
	// Name is the tag name for Open and Close events ("" for Value).
	Name string
	// Text is the character data for Value events ("" otherwise).
	Text string
}

// OpenEvent returns an Open event for the named tag.
func OpenEvent(name string) Event { return Event{Kind: Open, Name: name} }

// ValueEvent returns a Value event carrying the given text.
func ValueEvent(text string) Event { return Event{Kind: Value, Text: text} }

// CloseEvent returns a Close event for the named tag.
func CloseEvent(name string) Event { return Event{Kind: Close, Name: name} }

// IsAttribute reports whether the event names an attribute pseudo-element.
func (e Event) IsAttribute() bool {
	return len(e.Name) > 0 && e.Name[0] == '@'
}

// String renders the event in a compact debug form.
func (e Event) String() string {
	switch e.Kind {
	case Open:
		return "<" + e.Name + ">"
	case Close:
		return "</" + e.Name + ">"
	case Value:
		return fmt.Sprintf("%q", e.Text)
	default:
		return fmt.Sprintf("Event{%d}", e.Kind)
	}
}
