package xmlstream

import (
	"fmt"
	"strings"
)

// WriterOptions tunes the serializer.
type WriterOptions struct {
	// Indent, when non-empty, pretty-prints with one Indent per depth
	// level. Empty produces compact one-line output.
	Indent string
}

// Writer serializes an event stream back into XML text. Leading '@'
// pseudo-element triples after an Open are folded back into attributes of
// that element, reversing the parser's convention.
type Writer struct {
	b    strings.Builder
	opts WriterOptions

	depth int
	// pendingOpen holds an element whose '>' has not been emitted yet,
	// because attributes may still arrive.
	pendingOpen string
	pendingAttr string // attribute currently open ("" if none)
	attrValue   strings.Builder
	// hadChild tracks, per depth, whether the open element produced child
	// output (to decide between <a/> and <a></a> and indentation).
	hadChild []bool
	lastVal  bool
}

// NewWriter returns a Writer with the given options.
func NewWriter(opts WriterOptions) *Writer {
	return &Writer{opts: opts}
}

// WriteEvent appends one event to the output.
func (w *Writer) WriteEvent(ev Event) error {
	switch ev.Kind {
	case Open:
		if ev.IsAttribute() {
			if w.pendingOpen == "" {
				return fmt.Errorf("xmlstream: attribute %s outside an opening tag", ev.Name)
			}
			if w.pendingAttr != "" {
				return fmt.Errorf("xmlstream: nested attribute %s inside %s", ev.Name, w.pendingAttr)
			}
			w.pendingAttr = ev.Name
			w.attrValue.Reset()
			return nil
		}
		w.flushOpen(false)
		w.newlineIndent()
		// Emit "<name" now; the closing '>' (or "/>") is deferred until
		// we know whether attributes or content follow.
		w.b.WriteString("<" + ev.Name)
		w.pendingOpen = ev.Name
		w.markChild()
		w.depth++
		w.hadChild = append(w.hadChild, false)
		w.lastVal = false
		return nil
	case Value:
		if w.pendingAttr != "" {
			w.attrValue.WriteString(ev.Text)
			return nil
		}
		w.flushOpen(false)
		if w.depth == 0 {
			return fmt.Errorf("xmlstream: value %q outside root element", truncate(ev.Text))
		}
		w.markChild()
		w.b.WriteString(escapeText(ev.Text))
		w.lastVal = true
		return nil
	case Close:
		if ev.IsAttribute() {
			if w.pendingAttr != ev.Name {
				return fmt.Errorf("xmlstream: close of attribute %s does not match open %s", ev.Name, w.pendingAttr)
			}
			w.b.WriteString(" " + w.pendingAttr[1:] + `="` + escapeAttr(w.attrValue.String()) + `"`)
			w.pendingAttr = ""
			return nil
		}
		if w.depth == 0 {
			return fmt.Errorf("xmlstream: close of </%s> with no open element", ev.Name)
		}
		if w.pendingOpen != "" {
			// Empty element.
			if w.pendingOpen != ev.Name {
				return fmt.Errorf("xmlstream: close </%s> does not match open <%s>", ev.Name, w.pendingOpen)
			}
			w.flushOpen(true)
			w.depth--
			w.hadChild = w.hadChild[:len(w.hadChild)-1]
			w.lastVal = false
			return nil
		}
		had := w.hadChild[len(w.hadChild)-1]
		w.depth--
		w.hadChild = w.hadChild[:len(w.hadChild)-1]
		if had && !w.lastVal {
			w.newlineIndent()
		}
		w.b.WriteString("</" + ev.Name + ">")
		w.lastVal = false
		return nil
	default:
		return fmt.Errorf("xmlstream: unknown event kind %d", ev.Kind)
	}
}

// flushOpen terminates a deferred opening tag. selfClose renders "/>".
func (w *Writer) flushOpen(selfClose bool) {
	if w.pendingOpen == "" {
		return
	}
	if selfClose {
		w.b.WriteString("/>")
	} else {
		w.b.WriteString(">")
	}
	w.pendingOpen = ""
}

func (w *Writer) markChild() {
	if len(w.hadChild) > 0 {
		w.hadChild[len(w.hadChild)-1] = true
	}
}

func (w *Writer) newlineIndent() {
	if w.opts.Indent == "" || w.b.Len() == 0 {
		return
	}
	w.b.WriteString("\n")
	w.b.WriteString(strings.Repeat(w.opts.Indent, w.depth))
}

// String returns the XML accumulated so far. It is an error to call it
// with unterminated elements; the partial output is returned regardless.
func (w *Writer) String() string {
	return w.b.String()
}

// Err reports whether the stream terminated cleanly.
func (w *Writer) Err() error {
	if w.depth != 0 || w.pendingOpen != "" || w.pendingAttr != "" {
		return fmt.Errorf("xmlstream: serializer finished with unterminated markup (depth %d)", w.depth)
	}
	return nil
}

// Serialize renders an event slice as XML text.
func Serialize(evs []Event, opts WriterOptions) (string, error) {
	w := NewWriter(opts)
	for _, ev := range evs {
		if err := w.WriteEvent(ev); err != nil {
			return "", err
		}
	}
	if err := w.Err(); err != nil {
		return "", err
	}
	return w.String(), nil
}

func escapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

func escapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
