package xmlstream

import (
	"testing"
)

func mustParse(t *testing.T, src string) []Event {
	t.Helper()
	evs, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return evs
}

func TestBuildTreeAndBack(t *testing.T) {
	evs := mustParse(t, `<a x="1"><b>t</b><c><d/></c></a>`)
	tree, err := BuildTree(evs)
	if err != nil {
		t.Fatal(err)
	}
	back := tree.Events()
	if len(back) != len(evs) {
		t.Fatalf("round trip changed event count: %d -> %d", len(evs), len(back))
	}
	for i := range evs {
		if evs[i] != back[i] {
			t.Errorf("event %d: %v -> %v", i, evs[i], back[i])
		}
	}
}

func TestBuildTreeErrors(t *testing.T) {
	bad := [][]Event{
		{OpenEvent("a")},                  // unclosed
		{OpenEvent("a"), CloseEvent("b")}, // mismatch
		{CloseEvent("a")},                 // close first
		{ValueEvent("x")},                 // text only
		{},                                // empty
		{OpenEvent("a"), CloseEvent("a"), OpenEvent("b"), CloseEvent("b")}, // two roots
	}
	for i, evs := range bad {
		if _, err := BuildTree(evs); err == nil {
			t.Errorf("case %d: BuildTree succeeded, want error", i)
		}
	}
}

func TestNodeEqualAndFind(t *testing.T) {
	a, _ := BuildTree(mustParse(t, `<r><a>1</a><b><a>2</a></b></r>`))
	b, _ := BuildTree(mustParse(t, `<r><a>1</a><b><a>2</a></b></r>`))
	c, _ := BuildTree(mustParse(t, `<r><a>1</a><b><a>3</a></b></r>`))
	if !a.Equal(b) {
		t.Error("identical trees not Equal")
	}
	if a.Equal(c) {
		t.Error("different trees Equal")
	}
	if got := len(a.Find("a")); got != 2 {
		t.Errorf("Find(a) = %d nodes, want 2", got)
	}
	if got := a.TextContent(); got != "12" {
		t.Errorf("TextContent = %q, want \"12\"", got)
	}
}

func TestCollectStats(t *testing.T) {
	evs := mustParse(t, `<r i="1"><a>xx</a><a>yy</a><b><c/></b></r>`)
	s := CollectStats(evs)
	if s.Elements != 5 {
		t.Errorf("Elements = %d, want 5", s.Elements)
	}
	if s.Attributes != 1 {
		t.Errorf("Attributes = %d, want 1", s.Attributes)
	}
	if s.TextNodes != 3 || s.TextBytes != 5 {
		t.Errorf("TextNodes=%d TextBytes=%d, want 3/5", s.TextNodes, s.TextBytes)
	}
	if s.MaxDepth != 3 {
		t.Errorf("MaxDepth = %d, want 3", s.MaxDepth)
	}
	if s.DistinctTags != 5 {
		t.Errorf("DistinctTags = %d, want 5", s.DistinctTags)
	}
	tags := s.TagsByFrequency()
	if tags[0] != "a" {
		t.Errorf("most frequent tag = %q, want a", tags[0])
	}
}

func TestIsAttribute(t *testing.T) {
	if !(&Node{Name: "@id"}).IsAttribute() {
		t.Error("@id should be an attribute")
	}
	if (&Node{Name: "id"}).IsAttribute() {
		t.Error("id should not be an attribute")
	}
	if !OpenEvent("@x").IsAttribute() {
		t.Error("event @x should be an attribute")
	}
}

func TestWriterIndent(t *testing.T) {
	evs := mustParse(t, `<a><b>x</b></a>`)
	out, err := Serialize(evs, WriterOptions{Indent: "  "})
	if err != nil {
		t.Fatal(err)
	}
	want := "<a>\n  <b>x</b>\n</a>"
	if out != want {
		t.Errorf("indented output:\n%s\nwant:\n%s", out, want)
	}
}

func TestWriterErrors(t *testing.T) {
	w := NewWriter(WriterOptions{})
	if err := w.WriteEvent(CloseEvent("a")); err == nil {
		t.Error("close with nothing open should fail")
	}
	w = NewWriter(WriterOptions{})
	if err := w.WriteEvent(OpenEvent("@attr")); err == nil {
		t.Error("attribute outside opening tag should fail")
	}
	w = NewWriter(WriterOptions{})
	_ = w.WriteEvent(OpenEvent("a"))
	if w.Err() == nil {
		t.Error("Err() should report unterminated element")
	}
}
