package xmlstream

import (
	"fmt"
	"io"
	"strings"
)

// ParserOptions tunes the pull parser.
type ParserOptions struct {
	// KeepWhitespace keeps text nodes made only of whitespace. The default
	// (false) drops them, which is what every workload in the paper wants:
	// indentation between tags is not data.
	KeepWhitespace bool
}

// Parser is a small, non-validating pull parser producing the paper's
// open/value/close event stream from an XML byte slice. It understands
// elements, attributes (reported as '@' pseudo-elements), character data,
// CDATA sections, comments, processing instructions, a DOCTYPE prologue,
// and the five predefined entities plus numeric character references.
type Parser struct {
	src  []byte
	pos  int
	opts ParserOptions

	// queue holds events synthesized ahead of time (attribute triples and
	// self-closing tag closes).
	queue []Event
	// stack of open element names, for well-formedness checking.
	stack []string
	// sawRoot records that a root element was encountered (to reject
	// forests with more than one root).
	sawRoot bool
	done    bool
}

// NewParser returns a Parser over src with default options.
func NewParser(src []byte) *Parser {
	return NewParserOptions(src, ParserOptions{})
}

// NewParserOptions returns a Parser over src with the given options.
func NewParserOptions(src []byte, opts ParserOptions) *Parser {
	return &Parser{src: src, opts: opts}
}

// Next returns the next event, or io.EOF after the last close of the root
// element. A malformed document yields a descriptive error.
func (p *Parser) Next() (Event, error) {
	for {
		if len(p.queue) > 0 {
			ev := p.queue[0]
			p.queue = p.queue[1:]
			return ev, nil
		}
		if p.done {
			return Event{}, io.EOF
		}
		ev, ok, err := p.step()
		if err != nil {
			return Event{}, err
		}
		if ok {
			return ev, nil
		}
	}
}

// step consumes one syntactic construct. It returns ok=false when the
// construct produced no event (comment, PI, skipped whitespace).
func (p *Parser) step() (Event, bool, error) {
	if p.pos >= len(p.src) {
		if len(p.stack) > 0 {
			return Event{}, false, fmt.Errorf("xmlstream: unexpected end of input, %d element(s) still open (innermost <%s>)",
				len(p.stack), p.stack[len(p.stack)-1])
		}
		p.done = true
		return Event{}, false, nil
	}
	c := p.src[p.pos]
	if c != '<' {
		// Character data run up to the next '<'.
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != '<' {
			p.pos++
		}
		text := string(p.src[start:p.pos])
		if len(p.stack) == 0 {
			if strings.TrimSpace(text) == "" {
				return Event{}, false, nil
			}
			return Event{}, false, fmt.Errorf("xmlstream: character data %q outside root element", truncate(text))
		}
		if !p.opts.KeepWhitespace && strings.TrimSpace(text) == "" {
			return Event{}, false, nil
		}
		decoded, err := decodeEntities(text)
		if err != nil {
			return Event{}, false, err
		}
		return ValueEvent(decoded), true, nil
	}

	// A markup construct.
	if p.pos+1 >= len(p.src) {
		return Event{}, false, fmt.Errorf("xmlstream: truncated markup at offset %d", p.pos)
	}
	switch p.src[p.pos+1] {
	case '?':
		return Event{}, false, p.skipUntil("?>")
	case '!':
		rest := p.src[p.pos:]
		switch {
		case hasPrefix(rest, "<!--"):
			return Event{}, false, p.skipUntil("-->")
		case hasPrefix(rest, "<![CDATA["):
			return p.readCDATA()
		case hasPrefix(rest, "<!DOCTYPE"):
			return Event{}, false, p.skipDoctype()
		default:
			return Event{}, false, fmt.Errorf("xmlstream: unsupported declaration at offset %d", p.pos)
		}
	case '/':
		return p.readCloseTag()
	default:
		return p.readOpenTag()
	}
}

func (p *Parser) readCDATA() (Event, bool, error) {
	p.pos += len("<![CDATA[")
	end := indexFrom(p.src, p.pos, "]]>")
	if end < 0 {
		return Event{}, false, fmt.Errorf("xmlstream: unterminated CDATA section")
	}
	text := string(p.src[p.pos:end])
	p.pos = end + len("]]>")
	if len(p.stack) == 0 {
		return Event{}, false, fmt.Errorf("xmlstream: CDATA outside root element")
	}
	if text == "" {
		return Event{}, false, nil
	}
	return ValueEvent(text), true, nil
}

func (p *Parser) readCloseTag() (Event, bool, error) {
	p.pos += 2 // "</"
	name, err := p.readName()
	if err != nil {
		return Event{}, false, err
	}
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '>' {
		return Event{}, false, fmt.Errorf("xmlstream: malformed closing tag </%s", name)
	}
	p.pos++
	if len(p.stack) == 0 {
		return Event{}, false, fmt.Errorf("xmlstream: closing tag </%s> with no open element", name)
	}
	top := p.stack[len(p.stack)-1]
	if top != name {
		return Event{}, false, fmt.Errorf("xmlstream: closing tag </%s> does not match open <%s>", name, top)
	}
	p.stack = p.stack[:len(p.stack)-1]
	return CloseEvent(name), true, nil
}

func (p *Parser) readOpenTag() (Event, bool, error) {
	p.pos++ // '<'
	name, err := p.readName()
	if err != nil {
		return Event{}, false, err
	}
	if len(p.stack) == 0 && p.rootSeen() {
		return Event{}, false, fmt.Errorf("xmlstream: second root element <%s>", name)
	}

	// Attributes.
	var attrs []Event
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return Event{}, false, fmt.Errorf("xmlstream: unterminated tag <%s", name)
		}
		c := p.src[p.pos]
		if c == '>' || c == '/' {
			break
		}
		aname, err := p.readName()
		if err != nil {
			return Event{}, false, fmt.Errorf("xmlstream: in <%s>: %w", name, err)
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != '=' {
			return Event{}, false, fmt.Errorf("xmlstream: attribute %s of <%s> lacks '='", aname, name)
		}
		p.pos++
		p.skipSpace()
		val, err := p.readQuoted()
		if err != nil {
			return Event{}, false, fmt.Errorf("xmlstream: attribute %s of <%s>: %w", aname, name, err)
		}
		attrs = append(attrs,
			OpenEvent("@"+aname),
			ValueEvent(val),
			CloseEvent("@"+aname))
	}

	selfClose := false
	if p.src[p.pos] == '/' {
		selfClose = true
		p.pos++
		if p.pos >= len(p.src) || p.src[p.pos] != '>' {
			return Event{}, false, fmt.Errorf("xmlstream: malformed self-closing tag <%s", name)
		}
	}
	p.pos++ // '>'

	p.queue = append(p.queue, attrs...)
	if selfClose {
		p.queue = append(p.queue, CloseEvent(name))
	} else {
		p.stack = append(p.stack, name)
	}
	p.sawRoot = true
	return OpenEvent(name), true, nil
}

func (p *Parser) rootSeen() bool { return p.sawRoot }

func (p *Parser) readName() (string, error) {
	start := p.pos
	for p.pos < len(p.src) && isNameByte(p.src[p.pos], p.pos == start) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("xmlstream: expected name at offset %d", p.pos)
	}
	return string(p.src[start:p.pos]), nil
}

func (p *Parser) readQuoted() (string, error) {
	if p.pos >= len(p.src) {
		return "", fmt.Errorf("unterminated attribute value")
	}
	q := p.src[p.pos]
	if q != '"' && q != '\'' {
		return "", fmt.Errorf("attribute value must be quoted")
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != q {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", fmt.Errorf("unterminated attribute value")
	}
	raw := string(p.src[start:p.pos])
	p.pos++
	return decodeEntities(raw)
}

func (p *Parser) skipSpace() {
	for p.pos < len(p.src) && isSpace(p.src[p.pos]) {
		p.pos++
	}
}

func (p *Parser) skipUntil(end string) error {
	idx := indexFrom(p.src, p.pos, end)
	if idx < 0 {
		return fmt.Errorf("xmlstream: unterminated construct (expected %q)", end)
	}
	p.pos = idx + len(end)
	return nil
}

// skipDoctype skips a DOCTYPE declaration, including an internal subset in
// square brackets.
func (p *Parser) skipDoctype() error {
	depth := 0
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth <= 0 {
				p.pos++
				return nil
			}
		}
		p.pos++
	}
	return fmt.Errorf("xmlstream: unterminated DOCTYPE")
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

func isNameByte(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case !first && (c >= '0' && c <= '9' || c == '-' || c == '.'):
		return true
	case c >= 0x80: // permit UTF-8 names wholesale
		return true
	}
	return false
}

func hasPrefix(b []byte, s string) bool {
	return len(b) >= len(s) && string(b[:len(s)]) == s
}

func indexFrom(b []byte, from int, s string) int {
	idx := strings.Index(string(b[from:]), s)
	if idx < 0 {
		return -1
	}
	return from + idx
}

func truncate(s string) string {
	if len(s) > 24 {
		return s[:24] + "..."
	}
	return s
}

// decodeEntities expands the predefined entities and numeric character
// references in s.
func decodeEntities(s string) (string, error) {
	if !strings.ContainsRune(s, '&') {
		return s, nil
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 {
			return "", fmt.Errorf("xmlstream: unterminated entity reference in %q", truncate(s))
		}
		ent := s[i+1 : i+semi]
		switch {
		case ent == "amp":
			b.WriteByte('&')
		case ent == "lt":
			b.WriteByte('<')
		case ent == "gt":
			b.WriteByte('>')
		case ent == "quot":
			b.WriteByte('"')
		case ent == "apos":
			b.WriteByte('\'')
		case len(ent) > 1 && ent[0] == '#':
			r, err := parseCharRef(ent[1:])
			if err != nil {
				return "", err
			}
			b.WriteRune(r)
		default:
			return "", fmt.Errorf("xmlstream: unknown entity &%s;", ent)
		}
		i += semi + 1
	}
	return b.String(), nil
}

func parseCharRef(s string) (rune, error) {
	base := 10
	if len(s) > 0 && (s[0] == 'x' || s[0] == 'X') {
		base = 16
		s = s[1:]
	}
	var n int64
	for _, c := range s {
		var d int64
		switch {
		case c >= '0' && c <= '9':
			d = int64(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = int64(c-'A') + 10
		default:
			return 0, fmt.Errorf("xmlstream: bad character reference &#%s;", s)
		}
		n = n*int64(base) + d
		if n > 0x10FFFF {
			return 0, fmt.Errorf("xmlstream: character reference out of range")
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("xmlstream: empty character reference")
	}
	return rune(n), nil
}

// Parse decodes src entirely into an event slice. It is the convenience
// entry point used by workloads and tests; streaming consumers should use
// the pull API.
func Parse(src []byte) ([]Event, error) {
	return ParseOptions(src, ParserOptions{})
}

// ParseOptions is Parse with explicit options.
func ParseOptions(src []byte, opts ParserOptions) ([]Event, error) {
	p := NewParserOptions(src, opts)
	var evs []Event
	for {
		ev, err := p.Next()
		if err == io.EOF {
			return evs, nil
		}
		if err != nil {
			return nil, err
		}
		evs = append(evs, ev)
	}
}
