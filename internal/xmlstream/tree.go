package xmlstream

import (
	"fmt"
	"sort"
	"strings"
)

// Node is a materialized document tree. The streaming engine never builds
// one (that is the point of the paper), but tests, workload generators and
// the terminal-side result assembler do.
type Node struct {
	// Name is the element name; "" marks a text node.
	Name string
	// Text is the content of a text node.
	Text string
	// Children are element and text children in document order. Attribute
	// pseudo-elements ('@' prefix) appear first.
	Children []*Node
}

// IsText reports whether the node is a text node.
func (n *Node) IsText() bool { return n.Name == "" }

// IsAttribute reports whether the node is an attribute pseudo-element
// (name starting with '@').
func (n *Node) IsAttribute() bool {
	return strings.HasPrefix(n.Name, "@")
}

// BuildTree materializes an event stream into a tree. The stream must
// contain exactly one balanced root element.
func BuildTree(evs []Event) (*Node, error) {
	var stack []*Node
	var root *Node
	for i, ev := range evs {
		switch ev.Kind {
		case Open:
			n := &Node{Name: ev.Name}
			if len(stack) > 0 {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, n)
			} else {
				if root != nil {
					return nil, fmt.Errorf("xmlstream: second root <%s> at event %d", ev.Name, i)
				}
				root = n
			}
			stack = append(stack, n)
		case Value:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmlstream: value outside root at event %d", i)
			}
			parent := stack[len(stack)-1]
			parent.Children = append(parent.Children, &Node{Text: ev.Text})
		case Close:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmlstream: unbalanced close </%s> at event %d", ev.Name, i)
			}
			top := stack[len(stack)-1]
			if top.Name != ev.Name {
				return nil, fmt.Errorf("xmlstream: close </%s> does not match <%s> at event %d", ev.Name, top.Name, i)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmlstream: %d element(s) left open", len(stack))
	}
	if root == nil {
		return nil, fmt.Errorf("xmlstream: empty stream")
	}
	return root, nil
}

// Events flattens the tree back into an event stream.
func (n *Node) Events() []Event {
	var evs []Event
	n.appendEvents(&evs)
	return evs
}

func (n *Node) appendEvents(evs *[]Event) {
	if n.IsText() {
		*evs = append(*evs, ValueEvent(n.Text))
		return
	}
	*evs = append(*evs, OpenEvent(n.Name))
	for _, c := range n.Children {
		c.appendEvents(evs)
	}
	*evs = append(*evs, CloseEvent(n.Name))
}

// Equal reports deep equality of two trees.
func (n *Node) Equal(o *Node) bool {
	if n == nil || o == nil {
		return n == o
	}
	if n.Name != o.Name || n.Text != o.Text || len(n.Children) != len(o.Children) {
		return false
	}
	for i := range n.Children {
		if !n.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// Canonicalize normalizes the tree in place for comparison: adjacent text
// children merge into one node (XML cannot distinguish them) and empty
// text nodes disappear. It returns the receiver.
func (n *Node) Canonicalize() *Node {
	if n == nil {
		return nil
	}
	out := n.Children[:0]
	for _, c := range n.Children {
		if c.IsText() {
			if c.Text == "" {
				continue
			}
			if len(out) > 0 && out[len(out)-1].IsText() {
				out[len(out)-1] = &Node{Text: out[len(out)-1].Text + c.Text}
				continue
			}
			out = append(out, c)
			continue
		}
		out = append(out, c.Canonicalize())
	}
	n.Children = out
	return n
}

// Find returns all descendant elements (including n itself) with the given
// name, in document order.
func (n *Node) Find(name string) []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(m *Node) {
		if m.Name == name {
			out = append(out, m)
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// TextContent concatenates all text beneath the node.
func (n *Node) TextContent() string {
	var b strings.Builder
	var walk func(*Node)
	walk = func(m *Node) {
		if m.IsText() {
			b.WriteString(m.Text)
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return b.String()
}

// Stats summarizes a document's shape; workloads use it to report the
// parameters of generated documents and tests use it as an oracle.
type Stats struct {
	Elements     int
	Attributes   int
	TextNodes    int
	TextBytes    int
	MaxDepth     int
	DistinctTags int
	TagCounts    map[string]int
}

// CollectStats computes Stats from an event stream.
func CollectStats(evs []Event) Stats {
	s := Stats{TagCounts: make(map[string]int)}
	depth := 0
	for _, ev := range evs {
		switch ev.Kind {
		case Open:
			depth++
			if depth > s.MaxDepth {
				s.MaxDepth = depth
			}
			if ev.IsAttribute() {
				s.Attributes++
			} else {
				s.Elements++
			}
			s.TagCounts[ev.Name]++
		case Value:
			s.TextNodes++
			s.TextBytes += len(ev.Text)
		case Close:
			depth--
		}
	}
	s.DistinctTags = len(s.TagCounts)
	return s
}

// TagsByFrequency returns the distinct tags sorted by decreasing count,
// ties broken alphabetically. The tag dictionary uses this ordering so
// that frequent tags get small codes.
func (s Stats) TagsByFrequency() []string {
	tags := make([]string, 0, len(s.TagCounts))
	for t := range s.TagCounts {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool {
		ci, cj := s.TagCounts[tags[i]], s.TagCounts[tags[j]]
		if ci != cj {
			return ci > cj
		}
		return tags[i] < tags[j]
	})
	return tags
}
