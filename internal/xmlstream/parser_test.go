package xmlstream

import (
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimple(t *testing.T) {
	evs, err := Parse([]byte(`<a><b>hi</b><c/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		OpenEvent("a"),
		OpenEvent("b"), ValueEvent("hi"), CloseEvent("b"),
		OpenEvent("c"), CloseEvent("c"),
		CloseEvent("a"),
	}
	if len(evs) != len(want) {
		t.Fatalf("got %d events, want %d: %v", len(evs), len(want), evs)
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Errorf("event %d: got %v, want %v", i, evs[i], want[i])
		}
	}
}

func TestParseAttributes(t *testing.T) {
	evs, err := Parse([]byte(`<a id="1" lang='fr'><b x="&amp;"/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		OpenEvent("a"),
		OpenEvent("@id"), ValueEvent("1"), CloseEvent("@id"),
		OpenEvent("@lang"), ValueEvent("fr"), CloseEvent("@lang"),
		OpenEvent("b"),
		OpenEvent("@x"), ValueEvent("&"), CloseEvent("@x"),
		CloseEvent("b"),
		CloseEvent("a"),
	}
	if len(evs) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(evs), evs, len(want))
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Errorf("event %d: got %v, want %v", i, evs[i], want[i])
		}
	}
}

func TestParseProlog(t *testing.T) {
	src := `<?xml version="1.0"?>
<!DOCTYPE doc [<!ELEMENT doc ANY>]>
<!-- top comment -->
<doc><![CDATA[raw <stuff> & more]]></doc>`
	evs, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("got %d events: %v", len(evs), evs)
	}
	if evs[1].Text != "raw <stuff> & more" {
		t.Errorf("CDATA text = %q", evs[1].Text)
	}
}

func TestParseEntities(t *testing.T) {
	evs, err := Parse([]byte(`<a>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</a>`))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := evs[1].Text, `<>&"'AB`; got != want {
		t.Errorf("text = %q, want %q", got, want)
	}
}

func TestParseWhitespaceHandling(t *testing.T) {
	src := []byte("<a>\n  <b>x</b>\n</a>")
	evs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 5 {
		t.Fatalf("default options should drop whitespace-only text: %v", evs)
	}
	evs, err = ParseOptions(src, ParserOptions{KeepWhitespace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 7 {
		t.Fatalf("KeepWhitespace should keep both text runs: %v", evs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unclosed element", `<a><b></b>`},
		{"mismatched close", `<a></b>`},
		{"stray close", `</a>`},
		{"two roots", `<a/><b/>`},
		{"text outside root", `hello<a/>`},
		{"bad entity", `<a>&nosuch;</a>`},
		{"unterminated entity", `<a>&amp</a>`},
		{"unterminated comment", `<!-- foo`},
		{"unterminated cdata", `<a><![CDATA[x</a>`},
		{"attr without value", `<a id></a>`},
		{"attr unquoted", `<a id=1></a>`},
		{"truncated tag", `<a`},
		{"empty char ref", `<a>&#;</a>`},
		{"huge char ref", `<a>&#1114112;</a>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse([]byte(tc.src)); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tc.src)
			}
		})
	}
}

func TestParserPullEOF(t *testing.T) {
	p := NewParser([]byte(`<a/>`))
	for i := 0; i < 2; i++ {
		if _, err := p.Next(); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	if _, err := p.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
	// EOF must be sticky.
	if _, err := p.Next(); err != io.EOF {
		t.Fatalf("second call: want io.EOF, got %v", err)
	}
}

func TestSelfClosingWithAttrs(t *testing.T) {
	evs, err := Parse([]byte(`<a x="1"/>`))
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		OpenEvent("a"),
		OpenEvent("@x"), ValueEvent("1"), CloseEvent("@x"),
		CloseEvent("a"),
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Errorf("event %d: got %v want %v", i, evs[i], want[i])
		}
	}
}

// TestRoundTrip checks Parse∘Serialize is the identity on event streams.
func TestRoundTrip(t *testing.T) {
	srcs := []string{
		`<a><b>hi</b><c/></a>`,
		`<root id="7"><x y="z">v</x><x>w</x></root>`,
		`<a>mixed <b>bold</b> tail</a>`,
	}
	for _, src := range srcs {
		evs, err := Parse([]byte(src))
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		out, err := Serialize(evs, WriterOptions{})
		if err != nil {
			t.Fatalf("%s: serialize: %v", src, err)
		}
		evs2, err := Parse([]byte(out))
		if err != nil {
			t.Fatalf("%s: reparse of %q: %v", src, out, err)
		}
		if len(evs) != len(evs2) {
			t.Fatalf("%s: %d events became %d (%q)", src, len(evs), len(evs2), out)
		}
		for i := range evs {
			if evs[i] != evs2[i] {
				t.Errorf("%s: event %d changed: %v -> %v", src, i, evs[i], evs2[i])
			}
		}
	}
}

// TestEscapingQuick property: any text survives a serialize/parse cycle.
func TestEscapingQuick(t *testing.T) {
	f := func(text string) bool {
		if strings.ContainsAny(text, "\r") {
			return true // carriage returns are line-ending-normalized by XML
		}
		if !validXMLChars(text) {
			return true
		}
		evs := []Event{OpenEvent("t"), ValueEvent(text), CloseEvent("t")}
		out, err := Serialize(evs, WriterOptions{})
		if err != nil {
			return false
		}
		back, err := ParseOptions([]byte(out), ParserOptions{KeepWhitespace: true})
		if err != nil {
			return false
		}
		if text == "" {
			return len(back) == 2
		}
		return len(back) == 3 && back[1].Text == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func validXMLChars(s string) bool {
	for _, r := range s {
		if r == 0xFFFD || r < 0x20 && r != '\t' && r != '\n' {
			return false
		}
	}
	return true
}
