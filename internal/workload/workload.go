// Package workload generates the synthetic documents, rule sets and
// queries used by the test suite and the experiment harness.
//
// The demonstration paper exercises its platform with two applications —
// collaborative data sharing among a community of users and selective
// dissemination of multimedia streams — plus the medical-folder and
// parental-control scenarios that motivate the introduction. This package
// provides deterministic generators for all of them, plus a purely random
// document/rule generator used by property tests.
//
// All generators are deterministic functions of their seed.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/xmlstream"
)

// Words is the vocabulary text values are drawn from.
var words = []string{
	"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
	"hotel", "india", "juliet", "kilo", "lima", "mike", "november",
	"oscar", "papa", "quebec", "romeo", "sierra", "tango", "uniform",
	"victor", "whiskey", "xray", "yankee", "zulu",
}

// defaultTags is the tag pool of the random tree generator.
var defaultTags = []string{
	"a", "b", "c", "d", "e", "f", "g", "h",
	"item", "name", "note", "data", "info", "list", "entry", "ref",
}

// TreeConfig parameterizes RandomDocument.
type TreeConfig struct {
	// Seed drives all randomness.
	Seed int64
	// Tags is the tag pool; nil uses a built-in pool.
	Tags []string
	// Elements is the approximate number of elements to generate
	// (minimum 1). The generator stops expanding once the budget is
	// spent.
	Elements int
	// MaxDepth bounds nesting (minimum 2).
	MaxDepth int
	// MaxFanout bounds children per element (minimum 1).
	MaxFanout int
	// AttrProb is the probability that an element gets an attribute.
	AttrProb float64
	// TextProb is the probability that an element holds a text child.
	TextProb float64
}

func (c *TreeConfig) normalize() {
	if len(c.Tags) == 0 {
		c.Tags = defaultTags
	}
	if c.Elements < 1 {
		c.Elements = 1
	}
	if c.MaxDepth < 2 {
		c.MaxDepth = 2
	}
	if c.MaxFanout < 1 {
		c.MaxFanout = 1
	}
}

// RandomDocument generates a random tree: the adversarial workload of the
// property tests (uniform tags maximize automaton nondeterminism).
func RandomDocument(cfg TreeConfig) *xmlstream.Node {
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	budget := cfg.Elements - 1
	root := &xmlstream.Node{Name: cfg.Tags[rng.Intn(len(cfg.Tags))]}
	fill(rng, &cfg, root, 1, &budget)
	return root
}

func fill(rng *rand.Rand, cfg *TreeConfig, n *xmlstream.Node, depth int, budget *int) {
	if rng.Float64() < cfg.AttrProb {
		attr := &xmlstream.Node{Name: "@" + cfg.Tags[rng.Intn(len(cfg.Tags))]}
		attr.Children = []*xmlstream.Node{{Text: words[rng.Intn(len(words))]}}
		n.Children = append(n.Children, attr)
	}
	if rng.Float64() < cfg.TextProb {
		n.Children = append(n.Children, &xmlstream.Node{Text: words[rng.Intn(len(words))]})
	}
	if depth >= cfg.MaxDepth || *budget <= 0 {
		return
	}
	kids := rng.Intn(cfg.MaxFanout) + 1
	for i := 0; i < kids && *budget > 0; i++ {
		*budget--
		child := &xmlstream.Node{Name: cfg.Tags[rng.Intn(len(cfg.Tags))]}
		n.Children = append(n.Children, child)
		fill(rng, cfg, child, depth+1, budget)
		// Interleave trailing text occasionally, to exercise mixed content.
		if rng.Float64() < cfg.TextProb/2 {
			n.Children = append(n.Children, &xmlstream.Node{Text: words[rng.Intn(len(words))]})
		}
	}
}

// Text renders a node tree to XML bytes (compact form).
func Text(n *xmlstream.Node) []byte {
	s, err := xmlstream.Serialize(n.Events(), xmlstream.WriterOptions{})
	if err != nil {
		panic(fmt.Sprintf("workload: generated tree does not serialize: %v", err))
	}
	return []byte(s)
}
