package workload

import (
	"testing"

	"repro/internal/xmlstream"
	"repro/internal/xpath"
)

func TestRandomDocumentDeterministic(t *testing.T) {
	cfg := TreeConfig{Seed: 42, Elements: 100, MaxDepth: 6, MaxFanout: 4, AttrProb: 0.3, TextProb: 0.6}
	a := RandomDocument(cfg)
	b := RandomDocument(cfg)
	if !a.Equal(b) {
		t.Fatal("same seed must generate the same document")
	}
	cfg.Seed = 43
	if a.Equal(RandomDocument(cfg)) {
		t.Fatal("different seeds must differ")
	}
}

func TestRandomDocumentRespectsBounds(t *testing.T) {
	cfg := TreeConfig{Seed: 7, Elements: 200, MaxDepth: 5, MaxFanout: 3, TextProb: 0.5}
	doc := RandomDocument(cfg)
	stats := xmlstream.CollectStats(doc.Events())
	if stats.MaxDepth > cfg.MaxDepth+1 { // +1: attributes nest one deeper
		t.Errorf("depth %d exceeds bound %d", stats.MaxDepth, cfg.MaxDepth)
	}
	if stats.Elements > cfg.Elements+1 {
		t.Errorf("elements %d exceed budget %d", stats.Elements, cfg.Elements)
	}
}

func TestRandomDocumentAttributesFirst(t *testing.T) {
	// The engine's attribute fail-fast depends on attributes preceding
	// all other children; the generators must honour that convention.
	doc := RandomDocument(TreeConfig{Seed: 3, Elements: 300, MaxDepth: 7, MaxFanout: 4, AttrProb: 0.5, TextProb: 0.7})
	var check func(n *xmlstream.Node)
	check = func(n *xmlstream.Node) {
		seenOther := false
		for _, c := range n.Children {
			if c.IsText() {
				seenOther = true
				continue
			}
			if c.IsAttribute() {
				if seenOther {
					t.Fatalf("attribute %s after content in <%s>", c.Name, n.Name)
				}
				continue
			}
			seenOther = true
			check(c)
		}
	}
	check(doc)
}

func TestDomainGeneratorsWellFormed(t *testing.T) {
	docs := map[string]*xmlstream.Node{
		"medical": MedicalFolder(MedicalConfig{Seed: 1, Patients: 5, VisitsPerPatient: 3}),
		"agenda":  Agenda(AgendaConfig{Seed: 1, Members: 4, EventsPerMember: 3}),
		"catalog": Catalog(CatalogConfig{Seed: 1, Categories: 3, ProductsPerCategory: 4}),
		"stream":  MediaStream(StreamConfig{Seed: 1, Segments: 6, PayloadBytes: 50}),
	}
	for name, doc := range docs {
		xml := Text(doc) // panics if not serializable
		back, err := xmlstream.Parse(xml)
		if err != nil {
			t.Errorf("%s: reparse: %v", name, err)
		}
		tree, err := xmlstream.BuildTree(back)
		if err != nil {
			t.Errorf("%s: rebuild: %v", name, err)
		}
		if !tree.Equal(doc) {
			t.Errorf("%s: serialize/parse round trip changed the document", name)
		}
	}
}

func TestMedicalShape(t *testing.T) {
	doc := MedicalFolder(MedicalConfig{Seed: 2, Patients: 7, VisitsPerPatient: 2})
	if len(doc.Find("patient")) != 7 {
		t.Errorf("want 7 patients, got %d", len(doc.Find("patient")))
	}
	if len(doc.Find("emergency")) != 7 {
		t.Error("every patient needs an emergency record")
	}
	if len(doc.Find("ssn")) != 7 {
		t.Error("every patient needs an ssn")
	}
}

func TestStreamRatingsConsistent(t *testing.T) {
	doc := MediaStream(StreamConfig{Seed: 2, Segments: 20, PayloadBytes: 30})
	for _, seg := range doc.Find("segment") {
		var attrVal, elemVal string
		for _, c := range seg.Children {
			if c.Name == "@rating" {
				attrVal = c.TextContent()
			}
		}
		for _, r := range seg.Find("rating") {
			elemVal = r.TextContent()
		}
		if attrVal == "" || attrVal != elemVal {
			t.Fatalf("segment rating attr %q != element %q", attrVal, elemVal)
		}
	}
}

func TestRandomRuleSetDeterministicAndValid(t *testing.T) {
	cfg := RuleConfig{Seed: 5, Count: 20, MaxSteps: 4, DescProb: 0.4, PredProb: 0.5, ValuePredProb: 0.4, NegProb: 0.4}
	a := RandomRuleSet("u", cfg)
	b := RandomRuleSet("u", cfg)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Rules) != 20 {
		t.Fatalf("got %d rules", len(a.Rules))
	}
	for i := range a.Rules {
		if !a.Rules[i].Object.Equal(b.Rules[i].Object) || a.Rules[i].Sign != b.Rules[i].Sign {
			t.Fatal("same seed must generate the same rules")
		}
		// Generated objects must reparse from their own text form.
		if _, err := xpath.Parse(a.Rules[i].Object.String()); err != nil {
			t.Errorf("rule %d unparseable: %s (%v)", i, a.Rules[i].Object, err)
		}
	}
}

func TestProfileConfigs(t *testing.T) {
	for _, p := range Profiles {
		cfg := ProfileConfig(p, 1, 8, nil)
		rs := RandomRuleSet("u", cfg)
		if err := rs.Validate(); err != nil {
			t.Errorf("profile %s produced an invalid set: %v", p, err)
		}
		if len(rs.Rules) != 8 {
			t.Errorf("profile %s: got %d rules", p, len(rs.Rules))
		}
	}
	predCfg := ProfileConfig(ProfilePredicate, 1, 30, nil)
	rs := RandomRuleSet("u", predCfg)
	preds := 0
	for _, r := range rs.Rules {
		preds += r.Object.PredCount()
	}
	if preds == 0 {
		t.Error("predicate profile generated no predicates")
	}
}

func TestGrantAllAndMustParse(t *testing.T) {
	rs := GrantAll("owner")
	if rs.DefaultSign.String() != "+" || len(rs.Rules) != 0 {
		t.Error("GrantAll must be a bare open default")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParseRules must panic on bad input")
		}
	}()
	MustParseRules("not a ruleset")
}
