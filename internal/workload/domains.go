package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/xmlstream"
)

// MedicalConfig parameterizes the medical-folder generator (the paper's
// motivating healthcare scenario: exchange of medical information with
// rules that "may suffer exceptions in particular situations (e.g., in
// case of emergency) and may evolve over time").
type MedicalConfig struct {
	Seed     int64
	Patients int
	// VisitsPerPatient is the mean number of visits (minimum 1).
	VisitsPerPatient int
}

var (
	diagnoses  = []string{"flu", "fracture", "asthma", "allergy", "migraine", "diabetes", "hypertension"}
	treatments = []string{"rest", "cast", "inhaler", "antihistamine", "analgesic", "insulin", "diet"}
	drugs      = []string{"paracetamol", "ibuprofen", "salbutamol", "cetirizine", "metformin", "ramipril"}
	names      = []string{"Martin", "Bernard", "Dubois", "Thomas", "Robert", "Richard", "Petit", "Durand"}
	firstNames = []string{"Luc", "Marie", "Jean", "Sophie", "Pierre", "Claire", "Paul", "Anne"}
)

// MedicalFolder generates a hospital folder document:
//
//	folder/patient[@id]/{name, ssn, contact, visit*/{date, diagnosis,
//	treatment, prescription[@drug]}, emergency/{bloodtype, allergy*}}
func MedicalFolder(cfg MedicalConfig) *xmlstream.Node {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Patients < 1 {
		cfg.Patients = 1
	}
	if cfg.VisitsPerPatient < 1 {
		cfg.VisitsPerPatient = 1
	}
	folder := &xmlstream.Node{Name: "folder"}
	for i := 0; i < cfg.Patients; i++ {
		p := elem("patient",
			attr("@id", fmt.Sprintf("p%03d", i+1)),
			textElem("name", firstNames[rng.Intn(len(firstNames))]+" "+names[rng.Intn(len(names))]),
			textElem("ssn", fmt.Sprintf("%09d", rng.Intn(1_000_000_000))),
			textElem("contact", fmt.Sprintf("+33 1 %08d", rng.Intn(100_000_000))),
		)
		visits := 1 + rng.Intn(cfg.VisitsPerPatient*2-1)
		for v := 0; v < visits; v++ {
			visit := elem("visit",
				textElem("date", fmt.Sprintf("2004-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))),
				textElem("diagnosis", diagnoses[rng.Intn(len(diagnoses))]),
				textElem("treatment", treatments[rng.Intn(len(treatments))]),
				textElem("report", sentence(rng, 20+rng.Intn(20))),
			)
			if rng.Float64() < 0.7 {
				visit.Children = append(visit.Children, elem("prescription",
					attr("@drug", drugs[rng.Intn(len(drugs))]),
					textElem("dose", fmt.Sprintf("%dmg", 50*(1+rng.Intn(10)))),
				))
			}
			p.Children = append(p.Children, visit)
		}
		emergency := elem("emergency",
			textElem("bloodtype", []string{"A+", "A-", "B+", "O+", "O-", "AB+"}[rng.Intn(6)]),
		)
		for a := rng.Intn(3); a > 0; a-- {
			emergency.Children = append(emergency.Children,
				textElem("allergy", drugs[rng.Intn(len(drugs))]))
		}
		p.Children = append(p.Children, emergency)
		folder.Children = append(folder.Children, p)
	}
	return folder
}

// AgendaConfig parameterizes the collaborative-community generator (demo
// application 1: "collaborative works among a community of users").
type AgendaConfig struct {
	Seed    int64
	Members int
	// EventsPerMember is the mean number of events (minimum 1).
	EventsPerMember int
}

// Agenda generates a shared community agenda:
//
//	agenda/member[@user]/{profile/{email, phone}, event*/{date, title,
//	place, visibility, notes}}
func Agenda(cfg AgendaConfig) *xmlstream.Node {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Members < 1 {
		cfg.Members = 1
	}
	if cfg.EventsPerMember < 1 {
		cfg.EventsPerMember = 1
	}
	agenda := &xmlstream.Node{Name: "agenda"}
	visibilities := []string{"public", "friends", "private"}
	places := []string{"office", "lab", "cafeteria", "room12", "online"}
	titles := []string{"standup", "review", "dinner", "seminar", "deadline", "travel"}
	for i := 0; i < cfg.Members; i++ {
		user := fmt.Sprintf("user%02d", i+1)
		m := elem("member",
			attr("@user", user),
			elem("profile",
				textElem("email", user+"@example.org"),
				textElem("phone", fmt.Sprintf("+33 6 %08d", rng.Intn(100_000_000))),
			),
		)
		events := 1 + rng.Intn(cfg.EventsPerMember*2-1)
		for ev := 0; ev < events; ev++ {
			m.Children = append(m.Children, elem("event",
				textElem("date", fmt.Sprintf("2005-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))),
				textElem("title", titles[rng.Intn(len(titles))]),
				textElem("place", places[rng.Intn(len(places))]),
				textElem("visibility", visibilities[rng.Intn(len(visibilities))]),
				textElem("notes", words[rng.Intn(len(words))]+" "+words[rng.Intn(len(words))]),
			))
		}
		agenda.Children = append(agenda.Children, m)
	}
	return agenda
}

// CatalogConfig parameterizes a product-catalog generator (a generic
// DSP-hosted shared dataset).
type CatalogConfig struct {
	Seed       int64
	Categories int
	// ProductsPerCategory is the mean product count (minimum 1).
	ProductsPerCategory int
}

// Catalog generates catalog/category[@name]/product*/{name, price,
// margin, stock}: margin and stock are the confidential fields rule sets
// typically protect.
func Catalog(cfg CatalogConfig) *xmlstream.Node {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Categories < 1 {
		cfg.Categories = 1
	}
	if cfg.ProductsPerCategory < 1 {
		cfg.ProductsPerCategory = 1
	}
	catalog := &xmlstream.Node{Name: "catalog"}
	for c := 0; c < cfg.Categories; c++ {
		cat := elem("category", attr("@name", fmt.Sprintf("cat%02d", c+1)))
		// Roughly a quarter of the categories run a promotion; rules with
		// a [promo] branch make whole categories index-decidable.
		if rng.Float64() < 0.25 {
			cat.Children = append(cat.Children, textElem("promo", sentence(rng, 6)))
		}
		products := 1 + rng.Intn(cfg.ProductsPerCategory*2-1)
		for p := 0; p < products; p++ {
			cat.Children = append(cat.Children, elem("product",
				textElem("name", words[rng.Intn(len(words))]),
				textElem("price", fmt.Sprintf("%d.%02d", 1+rng.Intn(500), rng.Intn(100))),
				textElem("margin", fmt.Sprintf("%d%%", 5+rng.Intn(40))),
				textElem("stock", fmt.Sprintf("%d", rng.Intn(1000))),
				textElem("blurb", sentence(rng, 8+rng.Intn(8))),
			))
		}
		catalog.Children = append(catalog.Children, cat)
	}
	return catalog
}

// sentence builds n words of deterministic filler prose.
func sentence(rng *rand.Rand, n int) string {
	out := make([]byte, 0, n*6)
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, words[rng.Intn(len(words))]...)
	}
	return string(out)
}

// StreamConfig parameterizes the media-stream generator (demo application
// 2: "selective dissemination of multimedia streams through unsecured
// channels").
type StreamConfig struct {
	Seed     int64
	Segments int
	// PayloadBytes is the synthetic payload size per segment (the video
	// frames of the paper's demo, which we model as opaque text).
	PayloadBytes int
}

// MediaStream generates stream/segment[@n][@rating]/{meta/{rating,
// channel, timestamp}, payload}. The rating is carried both as a segment
// attribute (resolvable during the attribute phase, before any payload
// byte — what dissemination filters key on) and as a metadata element
// (for element-predicate rules); payload is what dissemination must
// sustain in real time.
func MediaStream(cfg StreamConfig) *xmlstream.Node {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Segments < 1 {
		cfg.Segments = 1
	}
	if cfg.PayloadBytes < 1 {
		cfg.PayloadBytes = 64
	}
	ratings := []string{"all", "family", "teen", "adult"}
	channels := []string{"news", "sports", "movies", "kids"}
	stream := &xmlstream.Node{Name: "stream"}
	for s := 0; s < cfg.Segments; s++ {
		rating := ratings[rng.Intn(len(ratings))]
		stream.Children = append(stream.Children, elem("segment",
			attr("@n", fmt.Sprintf("%d", s)),
			attr("@rating", rating),
			elem("meta",
				textElem("rating", rating),
				textElem("channel", channels[rng.Intn(len(channels))]),
				textElem("timestamp", fmt.Sprintf("%d", 1_100_000_000+s*40)),
			),
			textElem("payload", payload(rng, cfg.PayloadBytes)),
		))
	}
	return stream
}

func payload(rng *rand.Rand, n int) string {
	const hex = "0123456789abcdef"
	b := make([]byte, n)
	for i := range b {
		b[i] = hex[rng.Intn(16)]
	}
	return string(b)
}

func elem(name string, children ...*xmlstream.Node) *xmlstream.Node {
	return &xmlstream.Node{Name: name, Children: children}
}

func textElem(name, text string) *xmlstream.Node {
	return &xmlstream.Node{Name: name, Children: []*xmlstream.Node{{Text: text}}}
}

func attr(name, value string) *xmlstream.Node {
	return &xmlstream.Node{Name: name, Children: []*xmlstream.Node{{Text: value}}}
}
