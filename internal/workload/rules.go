package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/accessrule"
	"repro/internal/xpath"
)

// RuleConfig parameterizes RandomRuleSet and RandomQuery.
type RuleConfig struct {
	// Seed drives all randomness.
	Seed int64
	// Count is the number of rules to generate.
	Count int
	// Tags is the pool of node tests; typically the document's tags so
	// rules actually bite.
	Tags []string
	// MaxSteps bounds path length (minimum 1).
	MaxSteps int
	// DescProb is the probability a step uses '//'.
	DescProb float64
	// WildProb is the probability a step is '*'.
	WildProb float64
	// PredProb is the probability a step carries a predicate.
	PredProb float64
	// ValuePredProb is the probability a predicate compares text (rather
	// than testing existence). Values are drawn from the generator
	// vocabulary so comparisons can actually succeed.
	ValuePredProb float64
	// NegProb is the probability a rule is negative.
	NegProb float64
	// DefaultSign for the generated set (0 means Deny).
	DefaultSign accessrule.Sign
}

func (c *RuleConfig) normalize() {
	if len(c.Tags) == 0 {
		c.Tags = defaultTags
	}
	if c.MaxSteps < 1 {
		c.MaxSteps = 1
	}
	if c.DefaultSign == 0 {
		c.DefaultSign = accessrule.Deny
	}
}

// RandomRuleSet generates a rule set for the subject.
func RandomRuleSet(subject string, cfg RuleConfig) *accessrule.RuleSet {
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	rs := &accessrule.RuleSet{
		Subject:     subject,
		DefaultSign: cfg.DefaultSign,
	}
	for i := 0; i < cfg.Count; i++ {
		sign := accessrule.Permit
		if rng.Float64() < cfg.NegProb {
			sign = accessrule.Deny
		}
		rs.Rules = append(rs.Rules, accessrule.Rule{
			ID:     fmt.Sprintf("r%d", i+1),
			Sign:   sign,
			Object: randomPath(rng, &cfg, true),
		})
	}
	return rs
}

// RandomQuery generates a query path.
func RandomQuery(cfg RuleConfig) *xpath.Path {
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	return randomPath(rng, &cfg, true)
}

// randomPath builds a path of 1..MaxSteps steps. allowPreds gates
// predicate generation (predicate paths themselves stay predicate-free
// one level down with probability decay, bounding nesting).
func randomPath(rng *rand.Rand, cfg *RuleConfig, allowPreds bool) *xpath.Path {
	steps := rng.Intn(cfg.MaxSteps) + 1
	p := &xpath.Path{}
	for i := 0; i < steps; i++ {
		var st xpath.Step
		if rng.Float64() < cfg.DescProb {
			st.Axis = xpath.Descendant
		} else {
			st.Axis = xpath.Child
		}
		if i == 0 && st.Axis == xpath.Child {
			// An absolute /tag first step only matches the root; bias the
			// first step toward '//' so generated rules reach content.
			if rng.Float64() < 0.7 {
				st.Axis = xpath.Descendant
			}
		}
		if rng.Float64() < cfg.WildProb {
			st.Name = "*"
		} else {
			st.Name = cfg.Tags[rng.Intn(len(cfg.Tags))]
		}
		if allowPreds && rng.Float64() < cfg.PredProb {
			st.Preds = append(st.Preds, randomPred(rng, cfg))
		}
		p.Steps = append(p.Steps, st)
	}
	return p
}

func randomPred(rng *rand.Rand, cfg *RuleConfig) xpath.Pred {
	var pred xpath.Pred
	if rng.Float64() < 0.1 {
		// '.' text comparison on the context node.
		pred.Path = nil
		pred.Cmp = xpath.Eq
		pred.Value = words[rng.Intn(len(words))]
		if rng.Float64() < 0.3 {
			pred.Cmp = xpath.Neq
		}
		return pred
	}
	sub := *cfg
	sub.MaxSteps = 2
	sub.PredProb = cfg.PredProb / 3 // decay nested predicates
	pred.Path = randomPath(rng, &sub, rng.Float64() < sub.PredProb)
	if rng.Float64() < cfg.ValuePredProb {
		pred.Cmp = xpath.Eq
		pred.Value = words[rng.Intn(len(words))]
		if rng.Float64() < 0.3 {
			pred.Cmp = xpath.Neq
		}
	}
	return pred
}

// Profile names a canonical rule-shape mix used by experiment E1.
type Profile string

// The four rule profiles of experiment E1.
const (
	// ProfileShallow: short absolute child paths, no predicates.
	ProfileShallow Profile = "shallow"
	// ProfileDeep: long child paths.
	ProfileDeep Profile = "deep"
	// ProfileDescendant: '//'-heavy paths (maximum nondeterminism).
	ProfileDescendant Profile = "descendant"
	// ProfilePredicate: predicate-heavy paths (pending machinery).
	ProfilePredicate Profile = "predicate"
)

// Profiles lists all experiment profiles.
var Profiles = []Profile{ProfileShallow, ProfileDeep, ProfileDescendant, ProfilePredicate}

// ProfileConfig returns the RuleConfig realizing a profile.
func ProfileConfig(p Profile, seed int64, count int, tags []string) RuleConfig {
	cfg := RuleConfig{Seed: seed, Count: count, Tags: tags, NegProb: 0.3}
	switch p {
	case ProfileShallow:
		cfg.MaxSteps = 2
	case ProfileDeep:
		cfg.MaxSteps = 6
	case ProfileDescendant:
		cfg.MaxSteps = 4
		cfg.DescProb = 0.8
		cfg.WildProb = 0.2
	case ProfilePredicate:
		cfg.MaxSteps = 3
		cfg.DescProb = 0.4
		cfg.PredProb = 0.8
		cfg.ValuePredProb = 0.4
	default:
		panic(fmt.Sprintf("workload: unknown profile %q", p))
	}
	return cfg
}

// GrantAll returns the trivial rule set that permits everything — used as
// the "owner" baseline in examples and benchmarks.
func GrantAll(subject string) *accessrule.RuleSet {
	return &accessrule.RuleSet{
		Subject:     subject,
		DefaultSign: accessrule.Permit,
	}
}

// MustParseRules parses the textual rule format and panics on error;
// examples use it for fixed policy tables.
func MustParseRules(text string) *accessrule.RuleSet {
	rs, err := accessrule.ParseSet(strings.TrimSpace(text))
	if err != nil {
		panic(err)
	}
	return rs
}
