// Package card models the smart-card hardware of the demonstration: the
// resource envelope of the Axalto e-gate card the paper runs on ("a
// powerful CPU and strong security features but still [...] a limited
// memory (only 1 KB of RAM available for on-board applications) and a low
// bandwidth (2KB/s)", Section 3).
//
// The paper's own pre-demonstration evaluation used a cycle-accurate
// hardware simulator; this package plays that role for the reproduction.
// It provides:
//
//   - Profile: the calibrated constants of a card model (CPU rate, link
//     rate, per-byte crypto costs, RAM/EEPROM budgets);
//   - Card: enforced secure-RAM and EEPROM gauges plus a Meter that
//     accumulates simulated work and converts it into a simulated time
//     breakdown (transfer / decrypt+MAC / evaluation), the three cost
//     drivers every experiment in EXPERIMENTS.md decomposes;
//   - the key and rule stores a provisioned card keeps in its secure
//     stable memory.
//
// Simulated time is derived from counters, never from wall-clock, so
// experiment results are deterministic and machine-independent.
package card

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/accessrule"
	"repro/internal/mem"
	"repro/internal/secure"
)

// Profile holds the calibrated constants of one card model.
type Profile struct {
	// Name labels the profile in reports.
	Name string
	// CPUHz is the effective application CPU rate.
	CPUHz float64
	// RAMBudget is the working memory available to the applet, enforced.
	RAMBudget int
	// EEPROMBudget is the stable storage available, enforced.
	EEPROMBudget int
	// LinkBytesPerSec is the terminal<->card throughput.
	LinkBytesPerSec float64
	// APDUOverheadBytes is the framing cost charged per APDU exchange.
	APDUOverheadBytes int
	// MaxAPDUData is the data bytes one APDU may carry.
	MaxAPDUData int
	// CyclesPerByteCrypto prices block decryption per byte (the e-gate
	// has a crypto co-processor; software AES on a modern card is priced
	// differently).
	CyclesPerByteCrypto float64
	// CyclesPerByteMAC prices integrity verification per byte.
	CyclesPerByteMAC float64
	// CyclesPerEvent is the base cost of handling one parsed event.
	CyclesPerEvent float64
	// CyclesPerTransition prices one automaton transition scan.
	CyclesPerTransition float64
	// CyclesPerCopyByte prices copy-through forwarding per byte.
	CyclesPerCopyByte float64
	// CyclesPerEEPROMByte prices stable-storage writes per byte.
	CyclesPerEEPROMByte float64
}

// EGate approximates the Axalto e-gate of the demonstration: 1 KB of
// applet RAM, a 2 KB/s link, a ~33 MHz-class processor with hardware
// crypto, and slow EEPROM writes.
var EGate = Profile{
	Name:                "e-gate",
	CPUHz:               33e6,
	RAMBudget:           1024,
	EEPROMBudget:        32 * 1024,
	LinkBytesPerSec:     2048,
	APDUOverheadBytes:   10,
	MaxAPDUData:         255,
	CyclesPerByteCrypto: 40, // hardware 3DES-class engine
	CyclesPerByteMAC:    40,
	CyclesPerEvent:      600,
	CyclesPerTransition: 60,
	CyclesPerCopyByte:   8,
	CyclesPerEEPROMByte: 1000,
}

// Modern approximates a contemporary secure element: more RAM, USB-class
// link, faster core.
var Modern = Profile{
	Name:                "modern-se",
	CPUHz:               200e6,
	RAMBudget:           16 * 1024,
	EEPROMBudget:        512 * 1024,
	LinkBytesPerSec:     1 << 20, // ~1 MB/s
	APDUOverheadBytes:   10,
	MaxAPDUData:         255,
	CyclesPerByteCrypto: 20,
	CyclesPerByteMAC:    20,
	CyclesPerEvent:      400,
	CyclesPerTransition: 40,
	CyclesPerCopyByte:   4,
	CyclesPerEEPROMByte: 400,
}

// Unconstrained is the "trusted terminal" profile used by baselines: no
// budgets, negligible costs. It isolates algorithmic behaviour from the
// hardware envelope.
var Unconstrained = Profile{
	Name:              "unconstrained",
	CPUHz:             1e9,
	LinkBytesPerSec:   1 << 30,
	APDUOverheadBytes: 0,
	MaxAPDUData:       1 << 20,
}

// Meter accumulates simulated work.
type Meter struct {
	BytesToCard   int64 // link traffic toward the card (incl. overhead)
	BytesFromCard int64 // link traffic from the card
	APDUs         int64
	CryptoBytes   int64 // bytes decrypted
	MACBytes      int64 // bytes MAC-verified
	Events        int64 // parsed events handled
	Transitions   int64 // automaton transitions scanned
	CopyBytes     int64 // bytes forwarded in copy-through mode
	EEPROMBytes   int64 // stable-storage bytes written
}

// Add accumulates another meter (per-subscriber aggregation).
func (m *Meter) Add(o Meter) {
	m.BytesToCard += o.BytesToCard
	m.BytesFromCard += o.BytesFromCard
	m.APDUs += o.APDUs
	m.CryptoBytes += o.CryptoBytes
	m.MACBytes += o.MACBytes
	m.Events += o.Events
	m.Transitions += o.Transitions
	m.CopyBytes += o.CopyBytes
	m.EEPROMBytes += o.EEPROMBytes
}

// Sub returns the field-wise difference m - o: the work performed since
// the snapshot o was taken (per-query deltas in proxy and dissem).
func (m Meter) Sub(o Meter) Meter {
	return Meter{
		BytesToCard:   m.BytesToCard - o.BytesToCard,
		BytesFromCard: m.BytesFromCard - o.BytesFromCard,
		APDUs:         m.APDUs - o.APDUs,
		CryptoBytes:   m.CryptoBytes - o.CryptoBytes,
		MACBytes:      m.MACBytes - o.MACBytes,
		Events:        m.Events - o.Events,
		Transitions:   m.Transitions - o.Transitions,
		CopyBytes:     m.CopyBytes - o.CopyBytes,
		EEPROMBytes:   m.EEPROMBytes - o.EEPROMBytes,
	}
}

// TimeBreakdown is a simulated elapsed-time decomposition.
type TimeBreakdown struct {
	Transfer time.Duration // link transmission
	Crypto   time.Duration // decryption + integrity
	Evaluate time.Duration // parsing + automata + copy-through
	EEPROM   time.Duration // stable-storage writes
}

// Total sums the components (the model is additive: the e-gate applet is
// single-threaded and the link is half-duplex).
func (t TimeBreakdown) Total() time.Duration {
	return t.Transfer + t.Crypto + t.Evaluate + t.EEPROM
}

// Price converts accumulated work into simulated time under a profile.
func (m Meter) Price(p Profile) TimeBreakdown {
	secToDur := func(s float64) time.Duration {
		return time.Duration(s * float64(time.Second))
	}
	linkBytes := float64(m.BytesToCard+m.BytesFromCard) +
		float64(m.APDUs)*float64(p.APDUOverheadBytes)
	cycles := float64(m.CryptoBytes)*p.CyclesPerByteCrypto +
		float64(m.MACBytes)*p.CyclesPerByteMAC
	evalCycles := float64(m.Events)*p.CyclesPerEvent +
		float64(m.Transitions)*p.CyclesPerTransition +
		float64(m.CopyBytes)*p.CyclesPerCopyByte
	eepromCycles := float64(m.EEPROMBytes) * p.CyclesPerEEPROMByte
	return TimeBreakdown{
		Transfer: secToDur(linkBytes / p.LinkBytesPerSec),
		Crypto:   secToDur(cycles / p.CPUHz),
		Evaluate: secToDur(evalCycles / p.CPUHz),
		EEPROM:   secToDur(eepromCycles / p.CPUHz),
	}
}

// Card is one simulated device: budgets, meter and provisioned secrets.
//
// Provisioning calls (PutKey, PutRuleSet, PutSealedRuleSet, Key,
// RuleSet, RuleVersion) may race each other from multiple goroutines;
// the internal mutex keeps the secret store and their meter/EEPROM
// accounting consistent. The card still models a single-threaded
// applet, so nothing may run concurrently with a live session on the
// same card — not even provisioning: sessions touch the Meter and the
// RAM/EEPROM gauges without the lock. The fleet gateway enforces this
// by holding the per-card lock across both provisioning and queries.
type Card struct {
	Profile Profile
	RAM     *mem.Tracking
	EEPROM  *mem.Tracking
	Meter   Meter

	mu       sync.Mutex // guards keys, ctxs and rulesets
	keys     map[string]secure.DocKey
	ctxs     map[string]*secure.BlockContext
	rulesets map[string]*storedRuleSet
}

// storedRuleSet is a provisioned rule set with its anti-rollback floor.
type storedRuleSet struct {
	rs    *accessrule.RuleSet
	bytes int
}

// New returns a provisionable card with the profile's budgets enforced.
func New(p Profile) *Card {
	return &Card{
		Profile:  p,
		RAM:      mem.NewTracking(p.RAMBudget),
		EEPROM:   mem.NewTracking(p.EEPROMBudget),
		keys:     make(map[string]secure.DocKey),
		ctxs:     make(map[string]*secure.BlockContext),
		rulesets: make(map[string]*storedRuleSet),
	}
}

// PutKey stores a document key in secure stable memory. In the deployed
// architecture keys arrive "via a secure channel from different sources
// (trusted server, license provider, ...)" (Section 2.1); the simulator
// models the result, not the channel.
func (c *Card) PutKey(docID string, key secure.DocKey) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.keys[docID]; !ok {
		if err := c.EEPROM.Alloc(48 + len(docID)); err != nil {
			return fmt.Errorf("card: key store: %w", err)
		}
		c.Meter.EEPROMBytes += 48 + int64(len(docID))
	} else if old != key {
		delete(c.ctxs, docID) // rotated key: drop the amortized cipher state
	}
	c.keys[docID] = key
	return nil
}

// DecryptContext returns the card's amortized cipher state for docID:
// the AES schedule and precomputed HMAC pads of the document key, built
// once and shared by every session pulling that document through this
// card. Rotating the key via PutKey invalidates the cached context. The
// returned context is immutable and safe for concurrent use.
func (c *Card) DecryptContext(docID string) (*secure.BlockContext, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ctx, ok := c.ctxs[docID]; ok {
		return ctx, nil
	}
	key, ok := c.keys[docID]
	if !ok {
		return nil, fmt.Errorf("card: no key for document %q", docID)
	}
	ctx, err := secure.NewBlockContext(key)
	if err != nil {
		return nil, fmt.Errorf("card: building decrypt context: %w", err)
	}
	c.ctxs[docID] = ctx
	return ctx, nil
}

// Key fetches a provisioned key.
func (c *Card) Key(docID string) (secure.DocKey, error) {
	c.mu.Lock()
	k, ok := c.keys[docID]
	c.mu.Unlock()
	if !ok {
		return secure.DocKey{}, fmt.Errorf("card: no key for document %q", docID)
	}
	return k, nil
}

// HasKey reports whether a key is provisioned for docID without the
// error allocation of Key (fleet provisioning checks).
func (c *Card) HasKey(docID string) bool {
	c.mu.Lock()
	_, ok := c.keys[docID]
	c.mu.Unlock()
	return ok
}

// PutRuleSet installs a subject's rule set for a document, enforcing
// version monotonicity: a replayed older set (a revoked right) is
// rejected, which is what makes DSP-side replay of stale rule blobs
// useless.
func (c *Card) PutRuleSet(rs *accessrule.RuleSet) error {
	if err := rs.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := rs.Subject + "\x00" + rs.DocID
	old := c.rulesets[key]
	if old != nil && rs.Version < old.rs.Version {
		return fmt.Errorf("card: rule set version %d older than installed %d (replay rejected)",
			rs.Version, old.rs.Version)
	}
	blob, err := rs.MarshalBinary()
	if err != nil {
		return err
	}
	if old != nil {
		c.EEPROM.Free(old.bytes)
	}
	if err := c.EEPROM.Alloc(len(blob)); err != nil {
		if old != nil {
			_ = c.EEPROM.Alloc(old.bytes) // restore accounting
		}
		return fmt.Errorf("card: rule store: %w", err)
	}
	c.Meter.EEPROMBytes += int64(len(blob))
	c.rulesets[key] = &storedRuleSet{rs: rs, bytes: len(blob)}
	return nil
}

// PutSealedRuleSet installs a rule set delivered in its encrypted DSP
// form. The seal binds the (document, subject) pair, so the untrusted
// store cannot hand one subject another subject's rights; version
// monotonicity (PutRuleSet) defeats replay of revoked sets.
func (c *Card) PutSealedRuleSet(docID, subject string, sealed []byte) error {
	ctx, err := c.DecryptContext(docID)
	if err != nil {
		return err
	}
	plain, err := ctx.DecryptBlob(RuleBlobNamespace(docID, subject), 0, sealed)
	if err != nil {
		return fmt.Errorf("card: unsealing rule set: %w", err)
	}
	c.mu.Lock()
	c.Meter.CryptoBytes += int64(len(plain))
	c.Meter.MACBytes += int64(len(plain))
	c.mu.Unlock()
	rs, err := accessrule.UnmarshalRuleSet(plain)
	if err != nil {
		return err
	}
	if rs.Subject != subject || rs.DocID != docID {
		return fmt.Errorf("card: sealed rule set is for (%q,%q), expected (%q,%q)",
			rs.Subject, rs.DocID, subject, docID)
	}
	return c.PutRuleSet(rs)
}

// RuleBlobNamespace is the sealing namespace of a (document, subject)
// rule set; the publishing side (proxy/pki) uses the same value.
func RuleBlobNamespace(docID, subject string) string {
	return docID + "|" + subject
}

// RuleSet fetches the installed set for (subject, doc), falling back to
// the subject's document-independent set.
func (c *Card) RuleSet(subject, docID string) (*accessrule.RuleSet, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.rulesets[subject+"\x00"+docID]; ok {
		return s.rs, nil
	}
	if s, ok := c.rulesets[subject+"\x00"]; ok {
		return s.rs, nil
	}
	return nil, fmt.Errorf("card: no rule set installed for subject %q on document %q", subject, docID)
}

// RuleVersion reports the version of the installed rule set for
// (subject, doc), or -1 when none is installed — the fleet's cheap
// freshness check before deciding to re-pull the sealed blob.
func (c *Card) RuleVersion(subject, docID string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.rulesets[subject+"\x00"+docID]; ok {
		return int64(s.rs.Version)
	}
	if s, ok := c.rulesets[subject+"\x00"]; ok {
		return int64(s.rs.Version)
	}
	return -1
}
