package card

import (
	"strings"
	"testing"
	"time"

	"repro/internal/accessrule"
	"repro/internal/secure"
	"repro/internal/xpath"
)

func ruleSet(subject, docID string, version uint32) *accessrule.RuleSet {
	return &accessrule.RuleSet{
		Subject:     subject,
		DocID:       docID,
		Version:     version,
		DefaultSign: accessrule.Deny,
		Rules: []accessrule.Rule{
			{ID: "r1", Sign: accessrule.Permit, Object: xpath.MustParse("//a")},
		},
	}
}

func TestKeyStore(t *testing.T) {
	c := New(EGate)
	key := secure.KeyFromSeed("k")
	if _, err := c.Key("doc"); err == nil {
		t.Error("unknown doc must fail")
	}
	if err := c.PutKey("doc", key); err != nil {
		t.Fatal(err)
	}
	got, err := c.Key("doc")
	if err != nil || got != key {
		t.Fatalf("Key() = %v, %v", got, err)
	}
	if c.EEPROM.InUse() == 0 {
		t.Error("key storage must charge EEPROM")
	}
	// Overwriting the same doc must not double-charge.
	before := c.EEPROM.InUse()
	if err := c.PutKey("doc", secure.KeyFromSeed("k2")); err != nil {
		t.Fatal(err)
	}
	if c.EEPROM.InUse() != before {
		t.Error("key replacement double-charged EEPROM")
	}
}

func TestRuleSetVersionMonotonic(t *testing.T) {
	c := New(EGate)
	if err := c.PutRuleSet(ruleSet("u", "d", 5)); err != nil {
		t.Fatal(err)
	}
	if err := c.PutRuleSet(ruleSet("u", "d", 4)); err == nil {
		t.Fatal("rollback to version 4 accepted")
	}
	if err := c.PutRuleSet(ruleSet("u", "d", 5)); err != nil {
		t.Fatal("same-version refresh must be accepted")
	}
	if err := c.PutRuleSet(ruleSet("u", "d", 9)); err != nil {
		t.Fatal(err)
	}
	rs, err := c.RuleSet("u", "d")
	if err != nil || rs.Version != 9 {
		t.Fatalf("RuleSet() = %+v, %v", rs, err)
	}
}

func TestRuleSetFallbackToDocIndependent(t *testing.T) {
	c := New(EGate)
	generic := ruleSet("u", "", 1)
	if err := c.PutRuleSet(generic); err != nil {
		t.Fatal(err)
	}
	rs, err := c.RuleSet("u", "anydoc")
	if err != nil || rs != generic {
		t.Fatalf("fallback failed: %v", err)
	}
	if _, err := c.RuleSet("nobody", "anydoc"); err == nil {
		t.Error("unknown subject must fail")
	}
}

func TestPutSealedRuleSet(t *testing.T) {
	c := New(EGate)
	key := secure.KeyFromSeed("k")
	if err := c.PutKey("d", key); err != nil {
		t.Fatal(err)
	}
	rs := ruleSet("alice", "d", 1)
	plain, _ := rs.MarshalBinary()
	sealed, err := secure.EncryptBlob(key, RuleBlobNamespace("d", "alice"), 0, plain)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PutSealedRuleSet("d", "alice", sealed); err != nil {
		t.Fatal(err)
	}
	// Wrong subject namespace: reject.
	if err := c.PutSealedRuleSet("d", "bob", sealed); err == nil {
		t.Error("cross-subject sealed blob accepted")
	}
	// Inner subject mismatch: seal alice's blob under bob's namespace.
	forged, _ := secure.EncryptBlob(key, RuleBlobNamespace("d", "bob"), 0, plain)
	if err := c.PutSealedRuleSet("d", "bob", forged); err == nil ||
		!strings.Contains(err.Error(), "expected") {
		t.Errorf("subject mismatch not caught: %v", err)
	}
}

func TestMeterPricing(t *testing.T) {
	m := Meter{
		BytesToCard:   2048,
		BytesFromCard: 0,
		APDUs:         10,
		CryptoBytes:   1 << 20,
		Events:        1000,
		Transitions:   5000,
	}
	tb := m.Price(EGate)
	// 2048 payload + 100 overhead bytes over a 2048 B/s link ≈ 1.05 s.
	if tb.Transfer < time.Second || tb.Transfer > 2*time.Second {
		t.Errorf("transfer = %v, want ~1.05s", tb.Transfer)
	}
	// 1 MiB at 40 cycles/byte on 33 MHz ≈ 1.27 s.
	if tb.Crypto < time.Second || tb.Crypto > 2*time.Second {
		t.Errorf("crypto = %v, want ~1.3s", tb.Crypto)
	}
	if tb.Total() != tb.Transfer+tb.Crypto+tb.Evaluate+tb.EEPROM {
		t.Error("Total must be the component sum")
	}
	// The same work on the modern profile must be much faster.
	if fast := m.Price(Modern); fast.Total() >= tb.Total()/10 {
		t.Errorf("modern profile not meaningfully faster: %v vs %v", fast.Total(), tb.Total())
	}
}

func TestMeterAdd(t *testing.T) {
	a := Meter{BytesToCard: 1, APDUs: 2, Events: 3}
	a.Add(Meter{BytesToCard: 10, APDUs: 20, Events: 30, CryptoBytes: 5})
	if a.BytesToCard != 11 || a.APDUs != 22 || a.Events != 33 || a.CryptoBytes != 5 {
		t.Errorf("Add wrong: %+v", a)
	}
}

func TestProfilesSane(t *testing.T) {
	for _, p := range []Profile{EGate, Modern, Unconstrained} {
		if p.CPUHz <= 0 || p.LinkBytesPerSec <= 0 || p.MaxAPDUData <= 0 {
			t.Errorf("profile %s has zero constants: %+v", p.Name, p)
		}
	}
	if EGate.RAMBudget != 1024 {
		t.Errorf("the e-gate profile must model the paper's 1 KB, got %d", EGate.RAMBudget)
	}
	if EGate.LinkBytesPerSec != 2048 {
		t.Errorf("the e-gate profile must model the paper's 2 KB/s, got %v", EGate.LinkBytesPerSec)
	}
}

func TestEEPROMBudgetEnforced(t *testing.T) {
	p := EGate
	p.EEPROMBudget = 100
	c := New(p)
	rs := ruleSet("u", "d", 1)
	for i := 0; i < 50; i++ {
		rs.Rules = append(rs.Rules, accessrule.Rule{
			ID: rs.Rules[len(rs.Rules)-1].ID + "x", Sign: accessrule.Permit,
			Object: xpath.MustParse("//a"),
		})
	}
	if err := c.PutRuleSet(rs); err == nil {
		t.Error("oversized rule set must exhaust the EEPROM budget")
	}
}

func TestMeterSub(t *testing.T) {
	before := Meter{BytesToCard: 10, APDUs: 2, CryptoBytes: 100, Events: 5}
	after := before
	after.Add(Meter{
		BytesToCard: 7, BytesFromCard: 3, APDUs: 1, CryptoBytes: 64,
		MACBytes: 64, Events: 9, Transitions: 40, CopyBytes: 12, EEPROMBytes: 6,
	})
	d := after.Sub(before)
	want := Meter{
		BytesToCard: 7, BytesFromCard: 3, APDUs: 1, CryptoBytes: 64,
		MACBytes: 64, Events: 9, Transitions: 40, CopyBytes: 12, EEPROMBytes: 6,
	}
	if d != want {
		t.Fatalf("Sub delta = %+v, want %+v", d, want)
	}
	// Sub inverts Add: (m + o) - o == m for every field.
	if back := after.Sub(d); back != before {
		t.Fatalf("Sub does not invert Add: %+v != %+v", back, before)
	}
	if zero := before.Sub(before); zero != (Meter{}) {
		t.Fatalf("self-difference must be zero, got %+v", zero)
	}
}

func TestRuleVersion(t *testing.T) {
	c := New(Modern)
	if got := c.RuleVersion("u", "d"); got != -1 {
		t.Fatalf("unprovisioned RuleVersion = %d, want -1", got)
	}
	rs := ruleSet("u", "d", 3)
	if err := c.PutRuleSet(rs); err != nil {
		t.Fatal(err)
	}
	if got := c.RuleVersion("u", "d"); got != 3 {
		t.Fatalf("RuleVersion = %d, want 3", got)
	}
}
