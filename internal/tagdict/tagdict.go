// Package tagdict implements the tag dictionary the paper uses to
// compress the structure of XML documents before encryption.
//
// "For ensuring compactness, we compress the document structure using a
// dictionary of tags [XGRIND] and encode the set of tags thanks to a bit
// array referring to the tag dictionary." (Section 2.3.)
//
// Every distinct element or attribute name of a document gets a small
// integer Code; the encrypted document stream and the skip index are
// expressed entirely in code space. At session start the SOE translates
// the node tests of the user's access rules into code space and can then
// evaluate rules without ever materializing tag strings, which matters on
// a device with ~1 KB of working memory.
package tagdict

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Code identifies a tag in a dictionary. Codes are dense: 0..Len()-1.
type Code uint16

// NoCode is returned for names absent from the dictionary. A rule node
// test that maps to NoCode can never match anything in the document (the
// automaton compiler exploits this to prune the rule).
const NoCode Code = 0xFFFF

// MaxTags is the maximum number of distinct tags per document. The bound
// keeps bit arrays and the code space small, as the paper's compactness
// argument requires; real document schemas are far below it.
const MaxTags = 4096

// Dict maps tag names to codes and back. Codes are assigned in the order
// names are added; builders add names by decreasing frequency so frequent
// tags get small codes (shorter varints in the encoded stream).
type Dict struct {
	names []string
	codes map[string]Code
}

// New returns an empty dictionary.
func New() *Dict {
	return &Dict{codes: make(map[string]Code)}
}

// FromTags builds a dictionary from a name list (order = code order).
func FromTags(tags []string) (*Dict, error) {
	d := New()
	for _, t := range tags {
		if _, err := d.Add(t); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// FromCounts builds a dictionary from tag frequencies, assigning small
// codes to frequent tags (ties broken alphabetically for determinism).
func FromCounts(counts map[string]int) (*Dict, error) {
	tags := make([]string, 0, len(counts))
	for t := range counts {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool {
		if counts[tags[i]] != counts[tags[j]] {
			return counts[tags[i]] > counts[tags[j]]
		}
		return tags[i] < tags[j]
	})
	return FromTags(tags)
}

// Add inserts a name and returns its code. Adding an existing name
// returns the existing code.
func (d *Dict) Add(name string) (Code, error) {
	if name == "" {
		return NoCode, fmt.Errorf("tagdict: empty tag name")
	}
	if c, ok := d.codes[name]; ok {
		return c, nil
	}
	if len(d.names) >= MaxTags {
		return NoCode, fmt.Errorf("tagdict: more than %d distinct tags", MaxTags)
	}
	c := Code(len(d.names))
	d.names = append(d.names, name)
	d.codes[name] = c
	return c, nil
}

// Code returns the code for a name, or NoCode if absent.
func (d *Dict) Code(name string) Code {
	if c, ok := d.codes[name]; ok {
		return c
	}
	return NoCode
}

// Name returns the name for a code. It panics on an out-of-range code,
// which is always a programming error (codes only originate here).
func (d *Dict) Name(c Code) string {
	if int(c) >= len(d.names) {
		panic(fmt.Sprintf("tagdict: code %d out of range (%d tags)", c, len(d.names)))
	}
	return d.names[c]
}

// Len returns the number of entries.
func (d *Dict) Len() int { return len(d.names) }

// Names returns the names in code order. The returned slice is shared;
// callers must not modify it.
func (d *Dict) Names() []string { return d.names }

// MarshalBinary encodes the dictionary as
//
//	varint(count) { varint(len) bytes }*
//
// This is the form embedded (encrypted) at the head of the document
// container.
func (d *Dict) MarshalBinary() ([]byte, error) {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(d.names)))
	for _, n := range d.names {
		buf = binary.AppendUvarint(buf, uint64(len(n)))
		buf = append(buf, n...)
	}
	return buf, nil
}

// UnmarshalBinary decodes a dictionary produced by MarshalBinary and
// returns the number of bytes consumed.
func UnmarshalBinary(data []byte) (*Dict, int, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, 0, fmt.Errorf("tagdict: truncated count")
	}
	if count > MaxTags {
		return nil, 0, fmt.Errorf("tagdict: declared %d tags exceeds maximum %d", count, MaxTags)
	}
	pos := n
	d := New()
	for i := uint64(0); i < count; i++ {
		l, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("tagdict: truncated length of tag %d", i)
		}
		pos += n
		if pos+int(l) > len(data) {
			return nil, 0, fmt.Errorf("tagdict: truncated name of tag %d", i)
		}
		if _, err := d.Add(string(data[pos : pos+int(l)])); err != nil {
			return nil, 0, err
		}
		pos += int(l)
	}
	return d, pos, nil
}

// ByteSize estimates the serialized size without serializing.
func (d *Dict) ByteSize() int {
	sz := uvarintLen(uint64(len(d.names)))
	for _, n := range d.names {
		sz += uvarintLen(uint64(len(n))) + len(n)
	}
	return sz
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
