package tagdict

import (
	"testing"
	"testing/quick"
)

func TestAddAndLookup(t *testing.T) {
	d := New()
	a, err := d.Add("alpha")
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Add("beta")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("distinct names must get distinct codes")
	}
	if got, _ := d.Add("alpha"); got != a {
		t.Errorf("re-adding alpha returned %d, want %d", got, a)
	}
	if d.Code("alpha") != a || d.Code("beta") != b {
		t.Error("Code lookup wrong")
	}
	if d.Code("gamma") != NoCode {
		t.Error("unknown name must map to NoCode")
	}
	if d.Name(a) != "alpha" {
		t.Error("Name lookup wrong")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestEmptyNameRejected(t *testing.T) {
	if _, err := New().Add(""); err == nil {
		t.Error("empty tag name must be rejected")
	}
}

func TestFromCountsOrdersByFrequency(t *testing.T) {
	d, err := FromCounts(map[string]int{"rare": 1, "common": 100, "mid": 10})
	if err != nil {
		t.Fatal(err)
	}
	if d.Code("common") != 0 || d.Code("mid") != 1 || d.Code("rare") != 2 {
		t.Errorf("frequency ordering wrong: %v", d.Names())
	}
}

func TestFromCountsDeterministicTies(t *testing.T) {
	a, _ := FromCounts(map[string]int{"x": 1, "y": 1, "z": 1})
	b, _ := FromCounts(map[string]int{"z": 1, "y": 1, "x": 1})
	for i := 0; i < a.Len(); i++ {
		if a.Name(Code(i)) != b.Name(Code(i)) {
			t.Fatal("tie-breaking must be deterministic")
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	d, _ := FromTags([]string{"folder", "patient", "@id", "ssn"})
	blob, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) != d.ByteSize() {
		t.Errorf("ByteSize = %d, marshaled %d", d.ByteSize(), len(blob))
	}
	// Round trip with trailing data: consumed count must be exact.
	back, n, err := UnmarshalBinary(append(blob, 0xAA, 0xBB))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(blob) {
		t.Errorf("consumed %d bytes, want %d", n, len(blob))
	}
	if back.Len() != d.Len() {
		t.Fatalf("Len changed: %d -> %d", d.Len(), back.Len())
	}
	for i := 0; i < d.Len(); i++ {
		if back.Name(Code(i)) != d.Name(Code(i)) {
			t.Errorf("code %d: %q -> %q", i, d.Name(Code(i)), back.Name(Code(i)))
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := [][]byte{
		{},                 // no count
		{2, 3, 'a'},        // truncated names
		{2, 1, 'a'},        // second name missing
		{0xFF, 0xFF, 0xFF}, // huge count varint (truncated)
	}
	for i, data := range cases {
		if _, _, err := UnmarshalBinary(data); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMaxTagsEnforced(t *testing.T) {
	d := New()
	for i := 0; i < MaxTags; i++ {
		if _, err := d.Add(string(rune('a')) + string(rune('0'+i%10)) + string(rune('A'+(i/10)%26)) + string(rune('a'+(i/260)%26)) + string(rune('a'+i/6760))); err != nil {
			t.Fatalf("tag %d rejected: %v", i, err)
		}
	}
	if _, err := d.Add("one-too-many"); err == nil {
		t.Error("exceeding MaxTags must fail")
	}
}

// TestQuickRoundTrip: any tag list survives marshal/unmarshal.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []string) bool {
		d := New()
		for _, s := range raw {
			if s == "" || len(s) > 100 {
				continue
			}
			if _, err := d.Add(s); err != nil {
				return false
			}
		}
		blob, err := d.MarshalBinary()
		if err != nil {
			return false
		}
		back, n, err := UnmarshalBinary(blob)
		if err != nil || n != len(blob) || back.Len() != d.Len() {
			return false
		}
		for i := 0; i < d.Len(); i++ {
			if back.Name(Code(i)) != d.Name(Code(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
