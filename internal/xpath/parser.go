package xpath

import (
	"fmt"
	"strings"
)

// Parse parses an absolute XP{[],*,//} expression such as
//
//	/folder/patient[@id = "12"]//diagnosis
//	//b[c]/d
//
// The expression must start with '/' or '//'.
func Parse(expr string) (*Path, error) {
	p := &parser{src: expr}
	p.skipSpace()
	if !p.peekIs('/') {
		return nil, p.errorf("absolute path must start with '/' or '//'")
	}
	path, err := p.parsePath(true)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eof() {
		return nil, p.errorf("trailing input %q", p.rest())
	}
	if len(path.Steps) == 0 {
		return nil, p.errorf("empty path")
	}
	return path, nil
}

// ParseRelative parses a relative expression (as found inside predicates),
// e.g. "a//b" or "@id".
func ParseRelative(expr string) (*Path, error) {
	p := &parser{src: expr}
	p.skipSpace()
	path, err := p.parsePath(false)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eof() {
		return nil, p.errorf("trailing input %q", p.rest())
	}
	if len(path.Steps) == 0 {
		return nil, p.errorf("empty path")
	}
	return path, nil
}

// MustParse is Parse that panics on error; for tests and fixed tables.
func MustParse(expr string) *Path {
	p, err := Parse(expr)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	src string
	pos int
}

func (p *parser) parsePath(absolute bool) (*Path, error) {
	path := &Path{}
	first := true
	for {
		p.skipSpace()
		axis := Child
		switch {
		case p.consume("//"):
			axis = Descendant
		case p.peekIs('/'):
			if first && !absolute {
				return nil, p.errorf("leading '/' not allowed in a relative path")
			}
			p.pos++
			axis = Child
		default:
			if first && !absolute {
				// relative path: implicit child axis for the first step
			} else {
				return path, nil
			}
		}
		if first && absolute && axis == Child && p.eof() {
			return nil, p.errorf("path consists of '/' only")
		}
		step, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		step.Axis = axis
		path.Steps = append(path.Steps, step)
		first = false
		p.skipSpace()
		if p.eof() || !p.peekIs('/') {
			return path, nil
		}
	}
}

func (p *parser) parseStep() (Step, error) {
	p.skipSpace()
	var step Step
	switch {
	case p.consume("@*"):
		step.Name = "@*"
	case p.consume("@"):
		name, err := p.parseName()
		if err != nil {
			return step, err
		}
		step.Name = "@" + name
	case p.consume("*"):
		step.Name = "*"
	default:
		name, err := p.parseName()
		if err != nil {
			return step, err
		}
		step.Name = name
	}
	for {
		p.skipSpace()
		if !p.consume("[") {
			return step, nil
		}
		pred, err := p.parsePred()
		if err != nil {
			return step, err
		}
		p.skipSpace()
		if !p.consume("]") {
			return step, p.errorf("expected ']'")
		}
		step.Preds = append(step.Preds, pred)
	}
}

func (p *parser) parsePred() (Pred, error) {
	p.skipSpace()
	var pred Pred
	if p.consume(".") {
		pred.Path = nil // context node
	} else {
		path, err := p.parsePath(false)
		if err != nil {
			return pred, err
		}
		if len(path.Steps) == 0 {
			return pred, p.errorf("empty predicate path")
		}
		pred.Path = path
	}
	p.skipSpace()
	switch {
	case p.consume("!="):
		pred.Cmp = Neq
	case p.consume("="):
		pred.Cmp = Eq
	default:
		if pred.Path == nil {
			return pred, p.errorf("'.' predicate requires a comparison")
		}
		pred.Cmp = Exists
		return pred, nil
	}
	p.skipSpace()
	lit, err := p.parseLiteral()
	if err != nil {
		return pred, err
	}
	pred.Value = lit
	return pred, nil
}

func (p *parser) parseName() (string, error) {
	start := p.pos
	for p.pos < len(p.src) && isNameChar(p.src[p.pos], p.pos == start) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errorf("expected a name")
	}
	return p.src[start:p.pos], nil
}

func (p *parser) parseLiteral() (string, error) {
	if p.eof() {
		return "", p.errorf("expected a string literal")
	}
	q := p.src[p.pos]
	if q != '"' && q != '\'' {
		return "", p.errorf("string literal must be quoted")
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != q {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", p.errorf("unterminated string literal")
	}
	lit := p.src[start:p.pos]
	p.pos++
	return lit, nil
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) consume(tok string) bool {
	if strings.HasPrefix(p.src[p.pos:], tok) {
		// Avoid treating "//" prefix as "/": the caller must test longer
		// tokens first, which parsePath does.
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *parser) peekIs(c byte) bool {
	return p.pos < len(p.src) && p.src[p.pos] == c
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) rest() string {
	r := p.src[p.pos:]
	if len(r) > 16 {
		r = r[:16] + "..."
	}
	return r
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("xpath: %s at offset %d in %q", fmt.Sprintf(format, args...), p.pos, p.src)
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case !first && (c >= '0' && c <= '9' || c == '-' || c == '.'):
		return true
	case c >= 0x80:
		return true
	}
	return false
}
