package xpath

import (
	"repro/internal/xmlstream"
)

// Select evaluates an absolute path against a document tree and returns
// the matched element (or attribute pseudo-element) nodes in document
// order. It is the reference evaluator: a deliberately simple,
// materializing implementation that the streaming engine is checked
// against. The root node is the document root element; the first step is
// matched against it (for the Child axis) or against any node of the tree
// (for the Descendant axis), mirroring standard semantics where the
// context of an absolute path is the document node above the root element.
func Select(root *xmlstream.Node, p *Path) []*xmlstream.Node {
	if root == nil || p == nil || len(p.Steps) == 0 {
		return nil
	}
	ctx := []*xmlstream.Node{}
	// The virtual document node has a single child: the root element.
	ctx = stepFrom(ctx, []*xmlstream.Node{root}, p.Steps[0])
	for _, s := range p.Steps[1:] {
		next := []*xmlstream.Node{}
		for _, n := range ctx {
			next = stepFrom(next, childElems(n), s)
		}
		ctx = dedupe(next)
	}
	return ctx
}

// Matches reports whether the path selects at least one node.
func Matches(root *xmlstream.Node, p *Path) bool {
	return len(Select(root, p)) > 0
}

// MatchesNode reports whether the given node is among the nodes selected
// by the path.
func MatchesNode(root *xmlstream.Node, p *Path, target *xmlstream.Node) bool {
	for _, n := range Select(root, p) {
		if n == target {
			return true
		}
	}
	return false
}

// stepFrom appends to out the nodes reached from the candidate set by one
// step. candidates are the nodes the axis starts from: for Child they are
// the candidate matches themselves; for Descendant the step matches any
// node in their subtrees (descendant-or-self).
func stepFrom(out, candidates []*xmlstream.Node, s Step) []*xmlstream.Node {
	switch s.Axis {
	case Child:
		for _, n := range candidates {
			if nodeMatches(n, s) {
				out = append(out, n)
			}
		}
	case Descendant:
		var walk func(*xmlstream.Node)
		walk = func(n *xmlstream.Node) {
			if nodeMatches(n, s) {
				out = append(out, n)
			}
			for _, c := range childElems(n) {
				walk(c)
			}
		}
		for _, n := range candidates {
			walk(n)
		}
	}
	return out
}

// nodeMatches reports whether node n passes the step's node test and all
// its predicates.
func nodeMatches(n *xmlstream.Node, s Step) bool {
	if n.IsText() || !s.MatchesName(n.Name) {
		return false
	}
	for _, pr := range s.Preds {
		if !evalPred(n, pr) {
			return false
		}
	}
	return true
}

// evalPred evaluates a predicate with n as context node.
func evalPred(n *xmlstream.Node, pr Pred) bool {
	if pr.Path == nil {
		// '.' — compare the context node's direct text.
		return compareText(n, pr.Cmp, pr.Value)
	}
	sel := selectRelative(n, pr.Path)
	switch pr.Cmp {
	case Exists:
		return len(sel) > 0
	case Eq, Neq:
		for _, m := range sel {
			if compareText(m, pr.Cmp, pr.Value) {
				return true
			}
		}
		return false
	}
	return false
}

// selectRelative evaluates a relative path with n as context node.
func selectRelative(n *xmlstream.Node, p *Path) []*xmlstream.Node {
	ctx := []*xmlstream.Node{n}
	for i, s := range p.Steps {
		next := []*xmlstream.Node{}
		for _, m := range ctx {
			next = stepFrom(next, childElems(m), s)
		}
		ctx = dedupe(next)
		if len(ctx) == 0 {
			return nil
		}
		_ = i
	}
	return ctx
}

// compareText applies Eq/Neq against the node's direct text children. The
// streaming engine sees Value events as children of the element carrying
// the comparison, so the reference semantics is: some direct text child
// satisfies the comparison. Attribute pseudo-elements carry their value as
// a single text child, so the same rule covers [@a = "v"].
func compareText(n *xmlstream.Node, cmp Comparison, value string) bool {
	for _, c := range n.Children {
		if !c.IsText() {
			continue
		}
		switch cmp {
		case Eq:
			if c.Text == value {
				return true
			}
		case Neq:
			if c.Text != value {
				return true
			}
		}
	}
	return false
}

// childElems returns the element and attribute children of n (text nodes
// excluded).
func childElems(n *xmlstream.Node) []*xmlstream.Node {
	out := make([]*xmlstream.Node, 0, len(n.Children))
	for _, c := range n.Children {
		if !c.IsText() {
			out = append(out, c)
		}
	}
	return out
}

func dedupe(nodes []*xmlstream.Node) []*xmlstream.Node {
	seen := make(map[*xmlstream.Node]bool, len(nodes))
	out := nodes[:0]
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
