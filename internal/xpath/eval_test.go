package xpath

import (
	"testing"

	"repro/internal/xmlstream"
)

func tree(t *testing.T, src string) *xmlstream.Node {
	t.Helper()
	evs, err := xmlstream.Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	n, err := xmlstream.BuildTree(evs)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// selectTexts evaluates the expression and returns the text content of
// each selected node, a convenient fingerprint for assertions.
func selectTexts(t *testing.T, root *xmlstream.Node, expr string) []string {
	t.Helper()
	p, err := Parse(expr)
	if err != nil {
		t.Fatalf("Parse(%q): %v", expr, err)
	}
	var out []string
	for _, n := range Select(root, p) {
		out = append(out, n.TextContent())
	}
	return out
}

func TestSelectBasics(t *testing.T) {
	root := tree(t, `<a><b><c>1</c><d>2</d></b><b><d>3</d></b><d>4</d></a>`)
	cases := []struct {
		expr string
		want []string
	}{
		{"/a", []string{"1234"}},
		{"/b", nil}, // root is a, not b
		{"//b", []string{"12", "3"}},
		{"/a/b/d", []string{"2", "3"}},
		{"/a/d", []string{"4"}},
		{"//d", []string{"2", "3", "4"}},
		{"/a/*/d", []string{"2", "3"}},
		{"//b[c]/d", []string{"2"}},
		{"//b[c/e]/d", nil},
		{"/a//d", []string{"2", "3", "4"}},
		{"//c", []string{"1"}},
		{"//b[d]", []string{"12", "3"}},
		{"//b[c][d]", []string{"12"}},
	}
	for _, c := range cases {
		got := selectTexts(t, root, c.expr)
		if !sameStrings(got, c.want) {
			t.Errorf("Select(%s) = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestSelectAttributes(t *testing.T) {
	root := tree(t, `<r><p id="1"><x>a</x></p><p id="2"><x>b</x></p></r>`)
	cases := []struct {
		expr string
		want []string
	}{
		{"//p/@id", []string{"1", "2"}},
		{"//@id", []string{"1", "2"}},
		{"//@*", []string{"1", "2"}},
		{`//p[@id = "2"]/x`, []string{"b"}},
		{`//p[@id != "2"]/x`, []string{"a"}},
		{`//p[@id = "3"]/x`, nil},
	}
	for _, c := range cases {
		got := selectTexts(t, root, c.expr)
		if !sameStrings(got, c.want) {
			t.Errorf("Select(%s) = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestSelectValuePredicates(t *testing.T) {
	root := tree(t, `<lib><book><title>go</title><price>10</price></book><book><title>xml</title><price>20</price></book></lib>`)
	cases := []struct {
		expr string
		want []string
	}{
		{`//book[title = "go"]/price`, []string{"10"}},
		{`//book[title != "go"]/price`, []string{"20"}},
		{`//book[title = "perl"]/price`, nil},
		{`//title[. = "xml"]`, []string{"xml"}},
		{`//title[. != "xml"]`, []string{"go"}},
	}
	for _, c := range cases {
		got := selectTexts(t, root, c.expr)
		if !sameStrings(got, c.want) {
			t.Errorf("Select(%s) = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestSelectDescendantSemantics(t *testing.T) {
	// //a must match nested a's at every level, and a//a strictly below.
	root := tree(t, `<a><a><a>x</a></a></a>`)
	if got := len(Select(root, MustParse("//a"))); got != 3 {
		t.Errorf("//a matched %d nodes, want 3", got)
	}
	if got := len(Select(root, MustParse("/a//a"))); got != 2 {
		t.Errorf("/a//a matched %d nodes, want 2", got)
	}
	if got := len(Select(root, MustParse("/a/a/a"))); got != 1 {
		t.Errorf("/a/a/a matched %d nodes, want 1", got)
	}
}

func TestSelectNestedPredicates(t *testing.T) {
	root := tree(t, `<r><s><t><u>deep</u></t></s><s><t>shallow</t></s></r>`)
	got := selectTexts(t, root, `//s[t[u]]`)
	if !sameStrings(got, []string{"deep"}) {
		t.Errorf("nested predicate: got %v", got)
	}
	got = selectTexts(t, root, `//s[t//u]`)
	if !sameStrings(got, []string{"deep"}) {
		t.Errorf("descendant predicate: got %v", got)
	}
}

func TestMatchesNode(t *testing.T) {
	root := tree(t, `<a><b>1</b><c>2</c></a>`)
	b := root.Find("b")[0]
	c := root.Find("c")[0]
	p := MustParse("//b")
	if !MatchesNode(root, p, b) {
		t.Error("//b should match the b node")
	}
	if MatchesNode(root, p, c) {
		t.Error("//b should not match the c node")
	}
	if !Matches(root, p) {
		t.Error("Matches(//b) should be true")
	}
	if Matches(root, MustParse("//zzz")) {
		t.Error("Matches(//zzz) should be false")
	}
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
