// Package xpath implements the XPath fragment XP{[],*,//} used by the
// paper for both access-control rule objects and user queries.
//
// The fragment (Miklau & Suciu's robust subset, cited as [7] in the paper)
// consists of node tests, the child axis (/), the descendant-or-self axis
// (//), wildcards (*) and predicates ([...]). We additionally support
// attribute tests (@name, matching the '@' pseudo-elements produced by
// package xmlstream) and text-equality comparisons inside predicates
// ([price = "42"]), both of which the demonstrated applications rely on.
//
// Besides parsing, the package provides a reference, tree-based evaluator
// (Select, Matches). The streaming automaton engine in internal/automaton
// and internal/core is validated against this oracle by property tests.
package xpath

import "strings"

// Axis is the navigation axis of a step.
type Axis uint8

// The two axes of the fragment.
const (
	// Child is the '/' axis.
	Child Axis = iota
	// Descendant is the '//' axis (descendant-or-self applied to the next
	// node test, per the usual abbreviated-syntax semantics).
	Descendant
)

func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// Comparison is the operator of a predicate.
type Comparison uint8

// Predicate operators.
const (
	// Exists tests mere existence of the predicate path: [a/b].
	Exists Comparison = iota
	// Eq tests text equality of a selected node: [a/b = "v"].
	Eq
	// Neq tests text inequality: [a/b != "v"].
	Neq
)

// Pred is a branch predicate attached to a step.
type Pred struct {
	// Path is the relative path of the predicate. A nil Path denotes the
	// context node itself ('.'), which is only meaningful with Eq/Neq.
	Path *Path
	// Cmp is the comparison operator; Exists if the predicate is a bare
	// path.
	Cmp Comparison
	// Value is the literal compared against (Eq/Neq only).
	Value string
}

// Step is one location step: an axis, a node test and its predicates.
type Step struct {
	Axis Axis
	// Name is the node test: an element name, an attribute test "@name",
	// the element wildcard "*", or the attribute wildcard "@*".
	Name string
	// Preds are the step's predicates, all of which must hold.
	Preds []Pred
}

// Wildcard reports whether the step's node test is "*" or "@*".
func (s Step) Wildcard() bool { return s.Name == "*" || s.Name == "@*" }

// Attribute reports whether the node test targets attributes.
func (s Step) Attribute() bool { return strings.HasPrefix(s.Name, "@") }

// MatchesName reports whether the node test accepts the given
// element/attribute name (attributes carry their '@' prefix).
func (s Step) MatchesName(name string) bool {
	isAttr := strings.HasPrefix(name, "@")
	switch s.Name {
	case "*":
		return !isAttr
	case "@*":
		return isAttr
	default:
		return s.Name == name
	}
}

// Path is a parsed XP{[],*,//} expression. Rule objects and queries are
// absolute paths (rooted at the document); predicate paths are relative.
type Path struct {
	Steps []Step
}

// String reconstructs the textual form of the path. Absolute and relative
// paths are distinguished by how the first step is printed: absolute paths
// always start with an axis token, relative paths omit a leading '/'.
func (p *Path) String() string { return p.text(true) }

// RelString renders the path as a relative expression (used for predicate
// paths).
func (p *Path) RelString() string { return p.text(false) }

func (p *Path) text(absolute bool) string {
	if p == nil {
		return "."
	}
	var b strings.Builder
	for i, s := range p.Steps {
		switch {
		case i == 0 && !absolute && s.Axis == Child:
			// relative first step: bare name
		default:
			b.WriteString(s.Axis.String())
		}
		b.WriteString(s.Name)
		for _, pr := range s.Preds {
			b.WriteString("[")
			if pr.Path == nil {
				b.WriteString(".")
			} else {
				b.WriteString(pr.Path.RelString())
			}
			switch pr.Cmp {
			case Eq:
				b.WriteString(" = \"" + pr.Value + "\"")
			case Neq:
				b.WriteString(" != \"" + pr.Value + "\"")
			}
			b.WriteString("]")
		}
	}
	return b.String()
}

// Equal reports structural equality of two paths.
func (p *Path) Equal(o *Path) bool {
	if p == nil || o == nil {
		return p == o
	}
	if len(p.Steps) != len(o.Steps) {
		return false
	}
	for i := range p.Steps {
		a, b := p.Steps[i], o.Steps[i]
		if a.Axis != b.Axis || a.Name != b.Name || len(a.Preds) != len(b.Preds) {
			return false
		}
		for j := range a.Preds {
			pa, pb := a.Preds[j], b.Preds[j]
			if pa.Cmp != pb.Cmp || pa.Value != pb.Value || !pa.Path.Equal(pb.Path) {
				return false
			}
		}
	}
	return true
}

// HasDescendant reports whether any step (including predicate paths) uses
// the descendant axis. Paths without '//' have a fixed evaluation depth.
func (p *Path) HasDescendant() bool {
	if p == nil {
		return false
	}
	for _, s := range p.Steps {
		if s.Axis == Descendant {
			return true
		}
		for _, pr := range s.Preds {
			if pr.Path.HasDescendant() {
				return true
			}
		}
	}
	return false
}

// NameTests returns every concrete (non-wildcard) name test mentioned in
// the path, including inside predicates. The skip index uses this set to
// decide whether a rule can possibly apply inside a subtree.
func (p *Path) NameTests() []string {
	seen := make(map[string]bool)
	var out []string
	p.collectNames(seen, &out)
	return out
}

func (p *Path) collectNames(seen map[string]bool, out *[]string) {
	if p == nil {
		return
	}
	for _, s := range p.Steps {
		if !s.Wildcard() && !seen[s.Name] {
			seen[s.Name] = true
			*out = append(*out, s.Name)
		}
		for _, pr := range s.Preds {
			pr.Path.collectNames(seen, out)
		}
	}
}

// PredCount returns the total number of predicates in the path, including
// nested ones.
func (p *Path) PredCount() int {
	if p == nil {
		return 0
	}
	n := 0
	for _, s := range p.Steps {
		n += len(s.Preds)
		for _, pr := range s.Preds {
			n += pr.Path.PredCount()
		}
	}
	return n
}
