package xpath

import (
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	exprs := []string{
		"/a",
		"//b",
		"/a/b/c",
		"//b[c]/d",
		"/a//b",
		"//*",
		"/a/*/c",
		"/a/@id",
		"//@*",
		"/a[b]",
		"/a[b/c]",
		"/a[b//c]",
		`/a[b = "v"]`,
		`/a[b != "v"]`,
		`/a[. = "self"]`,
		`//patient[@id = "12"]/diagnosis`,
		"/a[b][c]",
		"/a[b[c]/d]",
		`//x[@y = "1"]//z`,
	}
	for _, expr := range exprs {
		p, err := Parse(expr)
		if err != nil {
			t.Errorf("Parse(%q): %v", expr, err)
			continue
		}
		if got := p.String(); got != expr {
			t.Errorf("Parse(%q).String() = %q", expr, got)
		}
		// Reparse of the printed form must be structurally equal.
		p2, err := Parse(p.String())
		if err != nil {
			t.Errorf("reparse of %q: %v", p.String(), err)
			continue
		}
		if !p.Equal(p2) {
			t.Errorf("reparse of %q not Equal", expr)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"a/b",      // relative where absolute required
		"/",        // empty path
		"/a[",      // unterminated predicate
		"/a[]",     // empty predicate
		"/a[b",     // missing ]
		"/a[.]",    // bare '.' without comparison
		`/a[b="v]`, // unterminated literal
		"/a[b=v]",  // unquoted literal
		"/a/",      // trailing slash
		"/a b",     // trailing junk
		"/a[b]x",   // junk after predicate
		"//",       // descendant of nothing
		"/a[/b]",   // absolute predicate path is not in the fragment
	}
	for _, expr := range bad {
		if _, err := Parse(expr); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", expr)
		}
	}
}

func TestParseRelative(t *testing.T) {
	for _, expr := range []string{"a", "a/b", "a//b", "@id", "*", "a[b]"} {
		p, err := ParseRelative(expr)
		if err != nil {
			t.Errorf("ParseRelative(%q): %v", expr, err)
			continue
		}
		if got := p.RelString(); got != expr {
			t.Errorf("ParseRelative(%q).RelString() = %q", expr, got)
		}
	}
}

func TestPathProperties(t *testing.T) {
	p := MustParse(`//b[c]/d`)
	if !p.HasDescendant() {
		t.Error("//b[c]/d should report a descendant axis")
	}
	if p.PredCount() != 1 {
		t.Errorf("PredCount = %d, want 1", p.PredCount())
	}
	names := p.NameTests()
	if len(names) != 3 {
		t.Errorf("NameTests = %v, want [b c d]", names)
	}

	q := MustParse("/a/*/c")
	if q.HasDescendant() {
		t.Error("/a/*/c should not report a descendant axis")
	}
	if got := len(q.NameTests()); got != 2 {
		t.Errorf("NameTests of /a/*/c = %d entries, want 2 (wildcard excluded)", got)
	}

	nested := MustParse("/a[b[c]/d]")
	if nested.PredCount() != 2 {
		t.Errorf("nested PredCount = %d, want 2", nested.PredCount())
	}
}

func TestStepMatchesName(t *testing.T) {
	cases := []struct {
		test, name string
		want       bool
	}{
		{"*", "a", true},
		{"*", "@a", false},
		{"@*", "@a", true},
		{"@*", "a", false},
		{"a", "a", true},
		{"a", "b", false},
		{"@id", "@id", true},
		{"@id", "id", false},
	}
	for _, c := range cases {
		s := Step{Name: c.test}
		if got := s.MatchesName(c.name); got != c.want {
			t.Errorf("Step(%q).MatchesName(%q) = %v, want %v", c.test, c.name, got, c.want)
		}
	}
}

func TestWildcardAndAttrFlags(t *testing.T) {
	if !(Step{Name: "*"}).Wildcard() || !(Step{Name: "@*"}).Wildcard() {
		t.Error("* and @* must be wildcards")
	}
	if (Step{Name: "a"}).Wildcard() {
		t.Error("a must not be a wildcard")
	}
	if !(Step{Name: "@x"}).Attribute() || (Step{Name: "x"}).Attribute() {
		t.Error("attribute detection wrong")
	}
}
