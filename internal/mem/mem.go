// Package mem provides logical memory accounting for components that must
// operate inside the secure working memory of a Secure Operating
// Environment (SOE).
//
// The paper's target hardware (an Axalto e-gate smart card) exposes roughly
// 1 KB of RAM to on-board applications. The streaming access-control
// evaluator is designed around that ceiling, and the simulator enforces it:
// every data structure living inside the simulated card charges its size to
// a Gauge, and exceeding the budget is a hard error, exactly as an
// allocation failure would be on the card.
package mem

import "fmt"

// ErrBudget is returned (wrapped) when an allocation would exceed the
// configured budget.
var ErrBudget = fmt.Errorf("mem: secure memory budget exceeded")

// Gauge tracks logical allocations against an optional budget.
type Gauge interface {
	// Alloc charges n bytes. It returns an error wrapping ErrBudget if the
	// charge would exceed the budget.
	Alloc(n int) error
	// Free releases n bytes previously charged with Alloc.
	Free(n int)
	// InUse reports the bytes currently charged.
	InUse() int
	// Peak reports the high-water mark of charged bytes.
	Peak() int
}

// Tracking is a Gauge with an enforced budget. A Budget of 0 means
// "unlimited" (tracking only). The zero value is an unlimited gauge.
type Tracking struct {
	Budget int

	inUse int
	peak  int
}

// NewTracking returns a Gauge enforcing the given budget in bytes.
// budget <= 0 disables enforcement but still tracks usage.
func NewTracking(budget int) *Tracking {
	return &Tracking{Budget: budget}
}

// Alloc implements Gauge.
func (t *Tracking) Alloc(n int) error {
	if n < 0 {
		return fmt.Errorf("mem: negative allocation %d", n)
	}
	if t.Budget > 0 && t.inUse+n > t.Budget {
		return fmt.Errorf("%w: in use %d + request %d > budget %d",
			ErrBudget, t.inUse, n, t.Budget)
	}
	t.inUse += n
	if t.inUse > t.peak {
		t.peak = t.inUse
	}
	return nil
}

// Free implements Gauge.
func (t *Tracking) Free(n int) {
	t.inUse -= n
	if t.inUse < 0 {
		t.inUse = 0
	}
}

// InUse implements Gauge.
func (t *Tracking) InUse() int { return t.inUse }

// Peak implements Gauge.
func (t *Tracking) Peak() int { return t.peak }

// Scope is a Gauge that forwards to a parent gauge while tracking its own
// net allocation and peak. Closing the scope releases whatever it still
// holds — how a card session returns its working memory when it ends.
type Scope struct {
	Parent Gauge

	net  int
	peak int
}

// NewScope returns a scope over parent.
func NewScope(parent Gauge) *Scope { return &Scope{Parent: parent} }

// Alloc implements Gauge.
func (s *Scope) Alloc(n int) error {
	if err := s.Parent.Alloc(n); err != nil {
		return err
	}
	s.net += n
	if s.net > s.peak {
		s.peak = s.net
	}
	return nil
}

// Free implements Gauge.
func (s *Scope) Free(n int) {
	s.Parent.Free(n)
	s.net -= n
	if s.net < 0 {
		s.net = 0
	}
}

// InUse implements Gauge.
func (s *Scope) InUse() int { return s.net }

// Peak implements Gauge.
func (s *Scope) Peak() int { return s.peak }

// Close releases everything the scope still holds.
func (s *Scope) Close() {
	if s.net > 0 {
		s.Parent.Free(s.net)
		s.net = 0
	}
}

// Nop is a Gauge that tracks nothing and never fails. It is used when the
// evaluator runs outside a simulated SOE (plain library use).
type Nop struct{}

// Alloc implements Gauge.
func (Nop) Alloc(int) error { return nil }

// Free implements Gauge.
func (Nop) Free(int) {}

// InUse implements Gauge.
func (Nop) InUse() int { return 0 }

// Peak implements Gauge.
func (Nop) Peak() int { return 0 }
