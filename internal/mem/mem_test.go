package mem

import (
	"errors"
	"testing"
)

func TestTrackingBudget(t *testing.T) {
	g := NewTracking(100)
	if err := g.Alloc(60); err != nil {
		t.Fatal(err)
	}
	if err := g.Alloc(40); err != nil {
		t.Fatal(err)
	}
	if err := g.Alloc(1); !errors.Is(err, ErrBudget) {
		t.Fatalf("over-budget alloc must fail with ErrBudget, got %v", err)
	}
	if g.InUse() != 100 || g.Peak() != 100 {
		t.Errorf("InUse=%d Peak=%d, want 100/100", g.InUse(), g.Peak())
	}
	g.Free(50)
	if g.InUse() != 50 {
		t.Errorf("InUse after free = %d", g.InUse())
	}
	if g.Peak() != 100 {
		t.Errorf("Peak must not shrink, got %d", g.Peak())
	}
	if err := g.Alloc(50); err != nil {
		t.Errorf("alloc after free failed: %v", err)
	}
}

func TestTrackingUnlimited(t *testing.T) {
	g := NewTracking(0)
	if err := g.Alloc(1 << 30); err != nil {
		t.Fatalf("unlimited gauge must not fail: %v", err)
	}
	if g.Peak() != 1<<30 {
		t.Error("unlimited gauge must still track")
	}
}

func TestTrackingNegativeAlloc(t *testing.T) {
	if err := NewTracking(10).Alloc(-1); err == nil {
		t.Error("negative alloc must fail")
	}
}

func TestTrackingOverFree(t *testing.T) {
	g := NewTracking(10)
	_ = g.Alloc(5)
	g.Free(50)
	if g.InUse() != 0 {
		t.Errorf("over-free must clamp to zero, got %d", g.InUse())
	}
}

func TestScope(t *testing.T) {
	parent := NewTracking(100)
	s := NewScope(parent)
	if err := s.Alloc(30); err != nil {
		t.Fatal(err)
	}
	if parent.InUse() != 30 || s.InUse() != 30 {
		t.Errorf("parent=%d scope=%d, want 30/30", parent.InUse(), s.InUse())
	}
	s.Free(10)
	if s.InUse() != 20 || s.Peak() != 30 {
		t.Errorf("scope InUse=%d Peak=%d, want 20/30", s.InUse(), s.Peak())
	}
	s.Close()
	if parent.InUse() != 0 {
		t.Errorf("Close must release the scope's holdings, parent has %d", parent.InUse())
	}
	// Closing twice is harmless.
	s.Close()
	if parent.InUse() != 0 {
		t.Error("double Close corrupted accounting")
	}
}

func TestScopePropagatesBudget(t *testing.T) {
	parent := NewTracking(10)
	s := NewScope(parent)
	if err := s.Alloc(11); !errors.Is(err, ErrBudget) {
		t.Errorf("scope must surface the parent's budget, got %v", err)
	}
	if s.InUse() != 0 {
		t.Error("failed alloc must not be counted")
	}
}

func TestTwoScopesShareParent(t *testing.T) {
	parent := NewTracking(100)
	a, b := NewScope(parent), NewScope(parent)
	_ = a.Alloc(60)
	if err := b.Alloc(60); !errors.Is(err, ErrBudget) {
		t.Error("scopes must compete for the same budget")
	}
	a.Close()
	if err := b.Alloc(60); err != nil {
		t.Errorf("budget must free up after a scope closes: %v", err)
	}
}

func TestNop(t *testing.T) {
	var g Nop
	if err := g.Alloc(1 << 40); err != nil {
		t.Fatal("Nop must never fail")
	}
	g.Free(5)
	if g.InUse() != 0 || g.Peak() != 0 {
		t.Error("Nop must report zero")
	}
}
