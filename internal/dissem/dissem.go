// Package dissem implements the push scenario of the demonstration:
// "selective dissemination of multimedia streams through unsecured
// channels" (Section 3). A publisher broadcasts the encrypted document's
// blocks in order; every subscriber runs its own SOE which filters the
// stream against the subscriber's rules — the same engine as pull mode,
// with one inversion: there is no back-channel, so skips cannot reduce
// what is *broadcast*, but each subscriber's terminal forwards to its
// card only the blocks the card asks for, so skips still save the
// card-link transfer and the decryption that dominate the target
// hardware. When a document is re-published as a block-level delta,
// DeltaBroadcast pushes only the changed blocks to the subscriber
// fleet.
package dissem

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/card"
	"repro/internal/docenc"
	"repro/internal/proxy"
	"repro/internal/soe"
	"repro/internal/xmlstream"
	"repro/internal/xpath"
)

// Subscriber is one receiving device: a provisioned card plus its
// terminal-side collector.
type Subscriber struct {
	Name    string
	Card    *card.Card
	Options soe.Options
	// Query optionally narrows the subscription (a standing query).
	Query *xpath.Path

	sess        *soe.Session
	col         *proxy.Collector
	meterBefore card.Meter

	// BlocksOffered / BlocksForwarded measure the terminal-side filter
	// for the current (or last finished) stream.
	BlocksOffered   int
	BlocksForwarded int

	// Retained skip state of the last completed stream: which version it
	// was, which blocks the card actually consumed, and what it
	// delivered. A DeltaBroadcast whose changed set misses every
	// consumed block can reuse the delivery outright — the card would
	// provably produce the same view.
	lastVersion   uint32
	lastGeometry  [2]uint64 // BlockPlain, PayloadLen
	lastForwarded []bool
	lastReception *Reception
}

// NewSubscriber wraps a provisioned card (key and rule set installed).
func NewSubscriber(name string, c *card.Card, query *xpath.Path, opts soe.Options) *Subscriber {
	return &Subscriber{Name: name, Card: c, Options: opts, Query: query}
}

// begin opens the card session when the stream header arrives.
func (s *Subscriber) begin(subject, docID string, hdrBytes []byte, numBlocks int) error {
	s.meterBefore = s.Card.Meter
	sess, err := soe.NewSession(s.Card, docID, subject, s.Query, s.Options)
	if err != nil {
		return err
	}
	if err := sess.LoadHeader(hdrBytes); err != nil {
		return err
	}
	s.sess = sess
	s.col = proxy.NewCollector()
	s.BlocksOffered, s.BlocksForwarded = 0, 0
	s.lastForwarded = make([]bool, numBlocks)
	s.lastReception = nil
	return nil
}

// offer hands a broadcast block to the subscriber. The terminal forwards
// it to the card only if the card's wanted offset lies inside it.
func (s *Subscriber) offer(idx int, blk []byte) error {
	s.BlocksOffered++
	if s.sess.Done() {
		return nil
	}
	want := s.sess.NeedBlock()
	if want < 0 || want != idx {
		return nil // skipped or not yet wanted: dropped at the terminal
	}
	s.BlocksForwarded++
	if idx < len(s.lastForwarded) {
		s.lastForwarded[idx] = true
	}
	out, err := s.sess.Feed(idx, blk)
	if err != nil {
		return err
	}
	return soe.DecodeRecords(out, s.col)
}

// Reception is a subscriber's outcome.
type Reception struct {
	Subscriber string
	// Tree is the filtered stream content delivered to the application.
	Tree *xmlstream.Node
	// BlocksOffered / BlocksForwarded: broadcast size vs card traffic.
	BlocksOffered   int
	BlocksForwarded int
	// Meter is the card work spent on this stream.
	Meter card.Meter
	// Time prices the meter under the subscriber's card profile.
	Time card.TimeBreakdown
	// Session exposes evaluator counters (skips, RAM peak).
	Session soe.Stats
}

// finish closes the session and assembles the delivered content
// (receive attributes errors to the subscriber).
func (s *Subscriber) finish() (*Reception, error) {
	if !s.sess.Done() {
		return nil, fmt.Errorf("stream ended but the session is not done")
	}
	tree, err := s.col.Result()
	if err != nil {
		return nil, err
	}
	r := &Reception{
		Subscriber:      s.Name,
		Tree:            tree,
		BlocksOffered:   s.BlocksOffered,
		BlocksForwarded: s.BlocksForwarded,
		Session:         s.sess.Stats(),
	}
	r.Meter = s.Card.Meter.Sub(s.meterBefore)
	r.Time = r.Meter.Price(s.Card.Profile)
	return r, nil
}

// Broadcast pushes one encrypted container to a set of subscribers, in
// block order, with no back-channel — the "unsecured channel" of the
// demo: any number of devices may listen; only provisioned cards can
// decrypt, and each delivers only its subject's authorized view.
//
// Subscribers are independent devices, so they are served concurrently:
// each runs its own session over the shared block sequence on its own
// goroutine (bounded by GOMAXPROCS), which is what lets one publisher
// feed a large audience at the speed of the slowest card rather than
// the sum of all of them.
func Broadcast(container *docenc.Container, subject string, subs []*Subscriber) ([]*Reception, error) {
	return broadcast(container, subs, func(*Subscriber) (string, error) { return subject, nil })
}

// BroadcastPerSubject runs Broadcast with per-subscriber subjects (each
// card filters under its own identity).
func BroadcastPerSubject(container *docenc.Container, subjects map[string]string, subs []*Subscriber) ([]*Reception, error) {
	return broadcast(container, subs, func(s *Subscriber) (string, error) {
		subject, ok := subjects[s.Name]
		if !ok {
			return "", fmt.Errorf("dissem: no subject for subscriber %s", s.Name)
		}
		return subject, nil
	})
}

// broadcast is the shared implementation: subjectFor picks each
// subscriber's filtering identity. The first subscriber failure (carrying
// that subscriber's name) cancels the broadcast: subscribers not yet
// started are never started, and in-flight ones stop at the next block.
func broadcast(container *docenc.Container, subs []*Subscriber, subjectFor func(*Subscriber) (string, error)) ([]*Reception, error) {
	hdrBytes, err := container.Header.MarshalBinary()
	if err != nil {
		return nil, err
	}

	out := make([]*Reception, len(subs))
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	cancelled := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	for i, s := range subs {
		wg.Add(1)
		go func(i int, s *Subscriber) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if cancelled() {
				return // the broadcast already failed: spawn no new work
			}
			rec, err := s.receive(container, hdrBytes, subjectFor, cancelled)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			out[i] = rec
		}(i, s)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// errCancelled marks a reception abandoned because another subscriber
// already failed the broadcast; it never surfaces (the first error does).
var errCancelled = fmt.Errorf("dissem: broadcast cancelled")

// receive drives one subscriber through a whole broadcast: session
// start, the block sequence in order, assembly. Every error is
// attributed to the subscriber by name.
func (s *Subscriber) receive(container *docenc.Container, hdrBytes []byte, subjectFor func(*Subscriber) (string, error), cancelled func() bool) (*Reception, error) {
	subject, err := subjectFor(s)
	if err != nil {
		return nil, err
	}
	if err := s.begin(subject, container.Header.DocID, hdrBytes, len(container.Blocks)); err != nil {
		return nil, fmt.Errorf("dissem: subscriber %s: %w", s.Name, err)
	}
	for idx, blk := range container.Blocks {
		if cancelled != nil && cancelled() {
			s.sess.Abort()
			return nil, errCancelled
		}
		if err := s.offer(idx, blk); err != nil {
			return nil, fmt.Errorf("dissem: subscriber %s at block %d: %w", s.Name, idx, err)
		}
	}
	rec, err := s.finish()
	if err != nil {
		return nil, fmt.Errorf("dissem: subscriber %s: %w", s.Name, err)
	}
	s.lastVersion = container.Header.Version
	s.lastGeometry = [2]uint64{uint64(container.Header.BlockPlain), container.Header.PayloadLen}
	s.lastReception = rec
	return rec, nil
}

// DeltaStats summarizes a delta dissemination round.
type DeltaStats struct {
	// BlocksChanged / BlocksTotal: the channel payload shrinkage. The
	// publisher pushes only the changed blocks onto the (shared)
	// channel; every other block a re-running subscriber consumes comes
	// from its terminal's retained copy of the previous stream, never
	// from the channel.
	BlocksChanged int
	BlocksTotal   int
	// Rerun counts subscribers whose retained skip state intersected the
	// delta (their card had consumed at least one changed block, so
	// their view may have moved and was re-derived).
	Rerun int
	// Reused counts subscribers served from their retained view: every
	// block their card consumed is bit-identical across versions, so the
	// delivered view provably cannot have changed.
	Reused int
}

// DeltaBroadcast pushes a new version of a previously broadcast document
// to subscribers that hold the old one. The channel carries only the
// changed blocks (derived from the containers' stored blocks —
// unchanged blocks keep their old ciphertext under the delta re-publish
// scheme, so the sets are byte-comparable); each re-running subscriber's
// terminal splices them into its retained copy of the old stream. A
// subscriber whose card consumed no changed block keeps its previous
// delivery without touching the card at all.
//
// In this in-process harness the splice is modeled, not transported:
// re-runs are fed from the new container, whose unchanged blocks are
// byte-identical to the retention they stand in for, so card behavior
// and receptions are exactly those of a spliced stream while
// DeltaStats.BlocksChanged accounts what a real channel would carry.
func DeltaBroadcast(old, new *docenc.Container, subject string, subs []*Subscriber) ([]*Reception, *DeltaStats, error) {
	if old.Header.DocID != new.Header.DocID {
		return nil, nil, fmt.Errorf("dissem: delta between different documents %q and %q",
			old.Header.DocID, new.Header.DocID)
	}
	changed := make([]bool, len(new.Blocks))
	nChanged := 0
	for i := range new.Blocks {
		if i >= len(old.Blocks) || !bytes.Equal(old.Blocks[i], new.Blocks[i]) {
			changed[i] = true
			nChanged++
		}
	}
	stats := &DeltaStats{BlocksChanged: nChanged, BlocksTotal: len(new.Blocks)}
	sameGeometry := old.Header.BlockPlain == new.Header.BlockPlain &&
		old.Header.PayloadLen == new.Header.PayloadLen

	out := make([]*Reception, len(subs))
	var rerun []*Subscriber
	var rerunIdx []int
	for i, s := range subs {
		if sameGeometry && s.reusable(old.Header, changed) {
			out[i] = s.lastReception
			stats.Reused++
			continue
		}
		rerun = append(rerun, s)
		rerunIdx = append(rerunIdx, i)
		stats.Rerun++
	}
	if len(rerun) > 0 {
		recs, err := Broadcast(new, subject, rerun)
		if err != nil {
			return nil, nil, err
		}
		for j, rec := range recs {
			out[rerunIdx[j]] = rec
		}
	}
	return out, stats, nil
}

// reusable reports whether the subscriber's retained view of the old
// version is provably identical under the new one: it completed the old
// stream and none of the blocks its card consumed changed. (The blocks
// it skipped were never decrypted, so their generations are
// irrelevant to what was delivered.)
func (s *Subscriber) reusable(oldHeader docenc.Header, changed []bool) bool {
	if s.lastReception == nil || s.lastVersion != oldHeader.Version ||
		s.lastGeometry != [2]uint64{uint64(oldHeader.BlockPlain), oldHeader.PayloadLen} {
		return false
	}
	for idx, fed := range s.lastForwarded {
		if fed && idx < len(changed) && changed[idx] {
			return false
		}
	}
	return true
}
