// Package dissem implements the push scenario of the demonstration:
// "selective dissemination of multimedia streams through unsecured
// channels" (Section 3). A publisher broadcasts the encrypted document's
// blocks in order; every subscriber runs its own SOE which filters the
// stream against the subscriber's rules — the same engine as pull mode,
// with one inversion: there is no back-channel, so skips cannot reduce
// what is *broadcast*, but each subscriber's terminal forwards to its
// card only the blocks the card asks for, so skips still save the
// card-link transfer and the decryption that dominate the target
// hardware.
package dissem

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/card"
	"repro/internal/docenc"
	"repro/internal/proxy"
	"repro/internal/soe"
	"repro/internal/xmlstream"
	"repro/internal/xpath"
)

// Subscriber is one receiving device: a provisioned card plus its
// terminal-side collector.
type Subscriber struct {
	Name    string
	Card    *card.Card
	Options soe.Options
	// Query optionally narrows the subscription (a standing query).
	Query *xpath.Path

	sess        *soe.Session
	col         *proxy.Collector
	meterBefore card.Meter

	// BlocksOffered / BlocksForwarded measure the terminal-side filter.
	BlocksOffered   int
	BlocksForwarded int
}

// NewSubscriber wraps a provisioned card (key and rule set installed).
func NewSubscriber(name string, c *card.Card, query *xpath.Path, opts soe.Options) *Subscriber {
	return &Subscriber{Name: name, Card: c, Options: opts, Query: query}
}

// begin opens the card session when the stream header arrives.
func (s *Subscriber) begin(subject, docID string, hdrBytes []byte) error {
	s.meterBefore = s.Card.Meter
	sess, err := soe.NewSession(s.Card, docID, subject, s.Query, s.Options)
	if err != nil {
		return err
	}
	if err := sess.LoadHeader(hdrBytes); err != nil {
		return err
	}
	s.sess = sess
	s.col = proxy.NewCollector()
	return nil
}

// offer hands a broadcast block to the subscriber. The terminal forwards
// it to the card only if the card's wanted offset lies inside it.
func (s *Subscriber) offer(idx int, blk []byte) error {
	s.BlocksOffered++
	if s.sess.Done() {
		return nil
	}
	want := s.sess.NeedBlock()
	if want < 0 || want != idx {
		return nil // skipped or not yet wanted: dropped at the terminal
	}
	s.BlocksForwarded++
	out, err := s.sess.Feed(idx, blk)
	if err != nil {
		return err
	}
	return soe.DecodeRecords(out, s.col)
}

// Reception is a subscriber's outcome.
type Reception struct {
	Subscriber string
	// Tree is the filtered stream content delivered to the application.
	Tree *xmlstream.Node
	// BlocksOffered / BlocksForwarded: broadcast size vs card traffic.
	BlocksOffered   int
	BlocksForwarded int
	// Meter is the card work spent on this stream.
	Meter card.Meter
	// Time prices the meter under the subscriber's card profile.
	Time card.TimeBreakdown
	// Session exposes evaluator counters (skips, RAM peak).
	Session soe.Stats
}

// finish closes the session and assembles the delivered content.
func (s *Subscriber) finish() (*Reception, error) {
	if !s.sess.Done() {
		return nil, fmt.Errorf("dissem: stream ended but subscriber %s's session is not done", s.Name)
	}
	tree, err := s.col.Result()
	if err != nil {
		return nil, err
	}
	r := &Reception{
		Subscriber:      s.Name,
		Tree:            tree,
		BlocksOffered:   s.BlocksOffered,
		BlocksForwarded: s.BlocksForwarded,
		Session:         s.sess.Stats(),
	}
	r.Meter = s.Card.Meter.Sub(s.meterBefore)
	r.Time = r.Meter.Price(s.Card.Profile)
	return r, nil
}

// Broadcast pushes one encrypted container to a set of subscribers, in
// block order, with no back-channel — the "unsecured channel" of the
// demo: any number of devices may listen; only provisioned cards can
// decrypt, and each delivers only its subject's authorized view.
//
// Subscribers are independent devices, so they are served concurrently:
// each runs its own session over the shared block sequence on its own
// goroutine (bounded by GOMAXPROCS), which is what lets one publisher
// feed a large audience at the speed of the slowest card rather than
// the sum of all of them.
func Broadcast(container *docenc.Container, subject string, subs []*Subscriber) ([]*Reception, error) {
	return broadcast(container, subs, func(*Subscriber) (string, error) { return subject, nil })
}

// BroadcastPerSubject runs Broadcast with per-subscriber subjects (each
// card filters under its own identity).
func BroadcastPerSubject(container *docenc.Container, subjects map[string]string, subs []*Subscriber) ([]*Reception, error) {
	return broadcast(container, subs, func(s *Subscriber) (string, error) {
		subject, ok := subjects[s.Name]
		if !ok {
			return "", fmt.Errorf("dissem: no subject for subscriber %s", s.Name)
		}
		return subject, nil
	})
}

// broadcast is the shared implementation: subjectFor picks each
// subscriber's filtering identity.
func broadcast(container *docenc.Container, subs []*Subscriber, subjectFor func(*Subscriber) (string, error)) ([]*Reception, error) {
	hdrBytes, err := container.Header.MarshalBinary()
	if err != nil {
		return nil, err
	}

	out := make([]*Reception, len(subs))
	errs := make([]error, len(subs))
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	var wg sync.WaitGroup
	for i, s := range subs {
		wg.Add(1)
		go func(i int, s *Subscriber) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = s.receive(container, hdrBytes, subjectFor)
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// receive drives one subscriber through a whole broadcast: session
// start, the block sequence in order, assembly.
func (s *Subscriber) receive(container *docenc.Container, hdrBytes []byte, subjectFor func(*Subscriber) (string, error)) (*Reception, error) {
	subject, err := subjectFor(s)
	if err != nil {
		return nil, err
	}
	if err := s.begin(subject, container.Header.DocID, hdrBytes); err != nil {
		return nil, fmt.Errorf("dissem: subscriber %s: %w", s.Name, err)
	}
	for idx, blk := range container.Blocks {
		if err := s.offer(idx, blk); err != nil {
			return nil, fmt.Errorf("dissem: subscriber %s at block %d: %w", s.Name, idx, err)
		}
	}
	return s.finish()
}
