package dissem

import (
	"strings"
	"testing"

	"repro/internal/card"
	"repro/internal/docenc"
	"repro/internal/secure"
	"repro/internal/soe"
	"repro/internal/workload"
	"repro/internal/xmlstream"
)

// deltaDoc builds a document with a small authorized head and a bulky
// tail subtree, so a subscriber restricted to the head skips the tail.
func deltaDoc(tailText func(i int) string) *xmlstream.Node {
	root := &xmlstream.Node{Name: "doc"}
	keep := &xmlstream.Node{Name: "keep"}
	for i := 0; i < 4; i++ {
		keep.Children = append(keep.Children, &xmlstream.Node{Name: "item",
			Children: []*xmlstream.Node{{Text: "head-content-stays-put"}}})
	}
	bulky := &xmlstream.Node{Name: "bulky"}
	for i := 0; i < 40; i++ {
		bulky.Children = append(bulky.Children, &xmlstream.Node{Name: "slab",
			Children: []*xmlstream.Node{{Text: tailText(i)}}})
	}
	// A constant trailer keeps the document's final blocks (which every
	// card consumes: the root's close record lives there) out of any
	// interior delta.
	trailer := &xmlstream.Node{Name: "trailer"}
	for i := 0; i < 8; i++ {
		trailer.Children = append(trailer.Children, &xmlstream.Node{Name: "pad",
			Children: []*xmlstream.Node{{Text: "constant-trailer-padding-text"}}})
	}
	root.Children = []*xmlstream.Node{keep, bulky, trailer}
	return root
}

func deltaSubscriber(t *testing.T, name, rules string, key secure.DocKey) *Subscriber {
	t.Helper()
	c := card.New(card.Modern)
	if err := c.PutKey("delta-doc", key); err != nil {
		t.Fatal(err)
	}
	rs := workload.MustParseRules(rules)
	rs.DocID = "delta-doc"
	if err := c.PutRuleSet(rs); err != nil {
		t.Fatal(err)
	}
	return NewSubscriber(name, c, nil, soe.Options{})
}

// TestDeltaBroadcastReuseAndRerun: a tail-only mutation reruns the
// all-access subscriber but serves the head-only subscriber from its
// retained view; both end up matching a fresh broadcast of the new
// version.
func TestDeltaBroadcastReuseAndRerun(t *testing.T) {
	key := secure.KeyFromSeed("delta-dissem")
	opts := docenc.EncodeOptions{DocID: "delta-doc", Key: key, BlockPlain: 64, MinSkipBytes: 32}
	oldDoc := deltaDoc(func(i int) string { return "tail-segment-payload-contents" })
	newDoc := deltaDoc(func(i int) string {
		if i >= 10 && i < 30 {
			return "TAIL-SEGMENT-PAYLOAD-CHANGED!"
		}
		return "tail-segment-payload-contents"
	})

	old, _, err := docenc.Encode(oldDoc, opts)
	if err != nil {
		t.Fatal(err)
	}
	delta, _, err := docenc.DiffEncode(newDoc, opts, old)
	if err != nil {
		t.Fatal(err)
	}
	if delta.ChangedBlocks == 0 || delta.ChangedBlocks == delta.TotalBlocks {
		t.Fatalf("degenerate delta: %d/%d", delta.ChangedBlocks, delta.TotalBlocks)
	}
	applied, err := delta.Apply(old)
	if err != nil {
		t.Fatal(err)
	}

	headOnly := deltaSubscriber(t, "head-only", "subject s\ndefault -\n+ /doc/keep", key)
	allAccess := deltaSubscriber(t, "all-access", "subject s\ndefault +", key)
	subs := []*Subscriber{headOnly, allAccess}

	if _, err := Broadcast(old, "s", subs); err != nil {
		t.Fatal(err)
	}
	if headOnly.BlocksForwarded >= allAccess.BlocksForwarded {
		t.Fatalf("head-only forwarded %d blocks, all-access %d: the skip premise is broken",
			headOnly.BlocksForwarded, allAccess.BlocksForwarded)
	}

	recs, stats, err := DeltaBroadcast(old, applied, "s", subs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlocksChanged != delta.ChangedBlocks {
		t.Fatalf("delta round broadcasts %d blocks, differ said %d", stats.BlocksChanged, delta.ChangedBlocks)
	}
	if stats.Reused != 1 || stats.Rerun != 1 {
		t.Fatalf("reused=%d rerun=%d, want 1/1", stats.Reused, stats.Rerun)
	}

	// Oracle: a cold broadcast of the new version to fresh subscribers.
	oracle := []*Subscriber{
		deltaSubscriber(t, "head-only", "subject s\ndefault -\n+ /doc/keep", key),
		deltaSubscriber(t, "all-access", "subject s\ndefault +", key),
	}
	want, err := Broadcast(applied, "s", oracle)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		got, _ := xmlstream.Serialize(recs[i].Tree.Events(), xmlstream.WriterOptions{})
		exp, _ := xmlstream.Serialize(want[i].Tree.Events(), xmlstream.WriterOptions{})
		if got != exp {
			t.Fatalf("subscriber %s: delta round delivered a different view", recs[i].Subscriber)
		}
	}
}

// TestDeltaBroadcastGeometryChange: a payload-length change reruns
// everyone (no reuse is provable across geometries).
func TestDeltaBroadcastGeometryChange(t *testing.T) {
	key := secure.KeyFromSeed("delta-geom")
	opts := docenc.EncodeOptions{DocID: "delta-doc", Key: key, BlockPlain: 64, MinSkipBytes: 32}
	oldDoc := deltaDoc(func(i int) string { return "tail-segment-payload-contents" })
	newDoc := deltaDoc(func(i int) string { return "tail-grew-longer-this-time-around" })

	old, _, err := docenc.Encode(oldDoc, opts)
	if err != nil {
		t.Fatal(err)
	}
	delta, _, err := docenc.DiffEncode(newDoc, opts, old)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := delta.Apply(old)
	if err != nil {
		t.Fatal(err)
	}
	sub := deltaSubscriber(t, "head-only", "subject s\ndefault -\n+ /doc/keep", key)
	if _, err := Broadcast(old, "s", []*Subscriber{sub}); err != nil {
		t.Fatal(err)
	}
	_, stats, err := DeltaBroadcast(old, applied, "s", []*Subscriber{sub})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reused != 0 || stats.Rerun != 1 {
		t.Fatalf("geometry change must rerun: reused=%d rerun=%d", stats.Reused, stats.Rerun)
	}
}

// TestBroadcastErrorNamesSubscriber: a failing subscriber is named in
// the propagated error even among healthy peers.
func TestBroadcastErrorNamesSubscriber(t *testing.T) {
	key := secure.KeyFromSeed("named")
	opts := docenc.EncodeOptions{DocID: "delta-doc", Key: key, BlockPlain: 64, MinSkipBytes: 32}
	container, _, err := docenc.Encode(deltaDoc(func(int) string { return "x-content-x" }), opts)
	if err != nil {
		t.Fatal(err)
	}
	good := deltaSubscriber(t, "good", "subject s\ndefault +", key)
	// The bad subscriber's card lacks key and rules: its session refuses
	// to open.
	bad := NewSubscriber("the-broken-one", card.New(card.Modern), nil, soe.Options{})
	_, err = Broadcast(container, "s", []*Subscriber{good, bad})
	if err == nil {
		t.Fatal("broadcast with an unprovisioned card succeeded")
	}
	if !strings.Contains(err.Error(), "the-broken-one") {
		t.Fatalf("error %q does not name the failing subscriber", err)
	}
}
