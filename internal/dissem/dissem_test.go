package dissem

import (
	"fmt"
	"testing"

	"repro/internal/accessrule"
	"repro/internal/card"
	"repro/internal/docenc"
	"repro/internal/secure"
	"repro/internal/soe"
	"repro/internal/workload"
	"repro/internal/xpath"
)

// subscriberFor provisions a card and wraps it in a subscriber.
func subscriberFor(t *testing.T, name, docID, rules string, key secure.DocKey, query *xpath.Path) *Subscriber {
	t.Helper()
	c := card.New(card.Modern)
	if err := c.PutKey(docID, key); err != nil {
		t.Fatal(err)
	}
	rs := workload.MustParseRules(rules)
	rs.DocID = docID
	if err := c.PutRuleSet(rs); err != nil {
		t.Fatal(err)
	}
	return NewSubscriber(name, c, query, soe.Options{})
}

func TestBroadcastFiltersPerSubscriber(t *testing.T) {
	// Payloads must span multiple cipher blocks for terminal-side block
	// dropping to show: a skip shorter than a block still touches every
	// block it straddles.
	doc := workload.MediaStream(workload.StreamConfig{Seed: 5, Segments: 30, PayloadBytes: 400})
	key := secure.KeyFromSeed("bcast")
	container, _, err := docenc.Encode(doc, docenc.EncodeOptions{DocID: "s", Key: key, MinSkipBytes: 24})
	if err != nil {
		t.Fatal(err)
	}

	profiles := map[string]string{
		"child": `subject child` + "\n" + `default -` + "\n" + `+ //segment[@rating = "all"]`,
		"adult": "subject adult\ndefault +",
	}
	subs := []*Subscriber{
		subscriberFor(t, "child", "s", profiles["child"], key, nil),
		subscriberFor(t, "adult", "s", profiles["adult"], key, nil),
	}
	recs, err := BroadcastPerSubject(container, map[string]string{"child": "child", "adult": "adult"}, subs)
	if err != nil {
		t.Fatal(err)
	}

	for _, r := range recs {
		rs := workload.MustParseRules(profiles[r.Subscriber])
		want := accessrule.ApplyTree(doc, rs)
		if !r.Tree.Equal(want) {
			t.Errorf("%s: delivered stream diverges from oracle", r.Subscriber)
		}
	}
	child, adult := recs[0], recs[1]
	if child.BlocksForwarded >= adult.BlocksForwarded {
		t.Errorf("the child's terminal must drop blocks (%d vs %d forwarded)",
			child.BlocksForwarded, adult.BlocksForwarded)
	}
	if child.Time.Total() >= adult.Time.Total() {
		t.Errorf("the child's card must do less work (%v vs %v)",
			child.Time.Total(), adult.Time.Total())
	}
}

func TestBroadcastWithStandingQuery(t *testing.T) {
	doc := workload.MediaStream(workload.StreamConfig{Seed: 6, Segments: 20, PayloadBytes: 80})
	key := secure.KeyFromSeed("bq")
	container, _, err := docenc.Encode(doc, docenc.EncodeOptions{DocID: "s", Key: key, MinSkipBytes: 24})
	if err != nil {
		t.Fatal(err)
	}
	q := xpath.MustParse(`//segment[meta/channel = "news"]`)
	sub := subscriberFor(t, "newsie", "s", "subject u\ndefault +", key, q)
	recs, err := Broadcast(container, "u", []*Subscriber{sub})
	if err != nil {
		t.Fatal(err)
	}
	rs := workload.MustParseRules("subject u\ndefault +")
	want := accessrule.ApplyTreeQuery(doc, rs, q)
	if !recs[0].Tree.Equal(want) {
		t.Fatal("standing-query stream diverges from oracle")
	}
}

func TestBroadcastManySubscribers(t *testing.T) {
	doc := workload.MediaStream(workload.StreamConfig{Seed: 7, Segments: 15, PayloadBytes: 60})
	key := secure.KeyFromSeed("many")
	container, _, err := docenc.Encode(doc, docenc.EncodeOptions{DocID: "s", Key: key})
	if err != nil {
		t.Fatal(err)
	}
	var subs []*Subscriber
	subjects := map[string]string{}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("sub%d", i)
		subs = append(subs, subscriberFor(t, name, "s", "subject "+name+"\ndefault +", key, nil))
		subjects[name] = name
	}
	recs, err := BroadcastPerSubject(container, subjects, subs)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 {
		t.Fatalf("got %d receptions", len(recs))
	}
	for _, r := range recs[1:] {
		if !r.Tree.Equal(recs[0].Tree) {
			t.Error("identical subscribers must receive identical streams")
		}
	}
}

func TestBroadcastMissingSubject(t *testing.T) {
	doc := workload.MediaStream(workload.StreamConfig{Seed: 8, Segments: 3, PayloadBytes: 40})
	key := secure.KeyFromSeed("ms")
	container, _, _ := docenc.Encode(doc, docenc.EncodeOptions{DocID: "s", Key: key})
	sub := subscriberFor(t, "x", "s", "subject x\ndefault +", key, nil)
	if _, err := BroadcastPerSubject(container, map[string]string{}, []*Subscriber{sub}); err == nil {
		t.Error("missing subject mapping must fail")
	}
}

func TestBroadcastUnprovisionedSubscriber(t *testing.T) {
	doc := workload.MediaStream(workload.StreamConfig{Seed: 9, Segments: 3, PayloadBytes: 40})
	key := secure.KeyFromSeed("up")
	container, _, _ := docenc.Encode(doc, docenc.EncodeOptions{DocID: "s", Key: key})
	c := card.New(card.Modern) // no key, no rules
	sub := NewSubscriber("ghost", c, nil, soe.Options{})
	if _, err := Broadcast(container, "ghost", []*Subscriber{sub}); err == nil {
		t.Error("an unprovisioned card cannot join a broadcast")
	}
}
