package docenc

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// TestDecoderNeverPanicsOnCorruptPayload: random mutations of a valid
// payload must produce clean errors (or a silently consistent decode),
// never a panic or an endless loop. The SOE parses attacker-held bytes;
// robustness here is part of the security argument.
func TestDecoderNeverPanicsOnCorruptPayload(t *testing.T) {
	doc := workload.Agenda(workload.AgendaConfig{Seed: 3, Members: 4, EventsPerMember: 3})
	payload, _, err := EncodePayload(doc, EncodeOptions{MinSkipBytes: 24})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		mutated := append([]byte(nil), payload...)
		for flips := 1 + rng.Intn(4); flips > 0; flips-- {
			mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: decoder panicked: %v", trial, r)
				}
			}()
			dict, dec, err := ParsePayload(mutated, 0)
			if err != nil {
				return // rejected at the dictionary: fine
			}
			_ = dict
			// Bounded walk: a consistent decode of a corrupt payload is
			// acceptable (the MAC layer rejects it upstream); loops and
			// panics are not.
			for steps := 0; steps < 100000; steps++ {
				it, err := dec.Next()
				if err != nil {
					return
				}
				if it.Kind == ItemEOF {
					return
				}
			}
			t.Fatalf("trial %d: decoder did not terminate", trial)
		}()
	}
}

// TestDecoderNeverPanicsOnRandomBytes: pure noise as payload.
func TestDecoderNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		junk := make([]byte, rng.Intn(400))
		rng.Read(junk)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panicked on noise: %v", trial, r)
				}
			}()
			_, dec, err := ParsePayload(junk, 0)
			if err != nil {
				return
			}
			for steps := 0; steps < 10000; steps++ {
				it, err := dec.Next()
				if err != nil || it.Kind == ItemEOF {
					return
				}
			}
		}()
	}
}

// TestSkipOverrunRejected: a hostile ContentSize cannot push the decoder
// past the payload.
func TestSkipOverrunRejected(t *testing.T) {
	doc := workload.Agenda(workload.AgendaConfig{Seed: 4, Members: 2, EventsPerMember: 2})
	payload, _, err := EncodePayload(doc, EncodeOptions{MinSkipBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	_, dec, err := ParsePayload(payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	for {
		it, err := dec.Next()
		if err != nil {
			t.Fatal(err)
		}
		if it.Kind == ItemEOF {
			t.Skip("no indexed node found (payload too small)")
		}
		if it.Kind == ItemOpen && it.Meta != nil {
			bad := *it.Meta
			bad.ContentSize = 1 << 30
			if err := dec.SkipContent(&bad); err == nil {
				t.Fatal("overrunning skip accepted")
			}
			return
		}
	}
}

var _ = fmt.Sprintf
