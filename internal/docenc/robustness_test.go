package docenc

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/secure"
	"repro/internal/skipindex"
	"repro/internal/tagdict"
	"repro/internal/workload"
)

// TestDecoderNeverPanicsOnCorruptPayload: random mutations of a valid
// payload must produce clean errors (or a silently consistent decode),
// never a panic or an endless loop. The SOE parses attacker-held bytes;
// robustness here is part of the security argument.
func TestDecoderNeverPanicsOnCorruptPayload(t *testing.T) {
	doc := workload.Agenda(workload.AgendaConfig{Seed: 3, Members: 4, EventsPerMember: 3})
	payload, _, err := EncodePayload(doc, EncodeOptions{MinSkipBytes: 24})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		mutated := append([]byte(nil), payload...)
		for flips := 1 + rng.Intn(4); flips > 0; flips-- {
			mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: decoder panicked: %v", trial, r)
				}
			}()
			dict, dec, err := ParsePayload(mutated, 0)
			if err != nil {
				return // rejected at the dictionary: fine
			}
			_ = dict
			// Bounded walk: a consistent decode of a corrupt payload is
			// acceptable (the MAC layer rejects it upstream); loops and
			// panics are not.
			for steps := 0; steps < 100000; steps++ {
				it, err := dec.Next()
				if err != nil {
					return
				}
				if it.Kind == ItemEOF {
					return
				}
			}
			t.Fatalf("trial %d: decoder did not terminate", trial)
		}()
	}
}

// TestDecoderNeverPanicsOnRandomBytes: pure noise as payload.
func TestDecoderNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		junk := make([]byte, rng.Intn(400))
		rng.Read(junk)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panicked on noise: %v", trial, r)
				}
			}()
			_, dec, err := ParsePayload(junk, 0)
			if err != nil {
				return
			}
			for steps := 0; steps < 10000; steps++ {
				it, err := dec.Next()
				if err != nil || it.Kind == ItemEOF {
					return
				}
			}
		}()
	}
}

// TestSkipOverrunRejected: a hostile ContentSize cannot push the decoder
// past the payload.
func TestSkipOverrunRejected(t *testing.T) {
	doc := workload.Agenda(workload.AgendaConfig{Seed: 4, Members: 2, EventsPerMember: 2})
	payload, _, err := EncodePayload(doc, EncodeOptions{MinSkipBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	_, dec, err := ParsePayload(payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	for {
		it, err := dec.Next()
		if err != nil {
			t.Fatal(err)
		}
		if it.Kind == ItemEOF {
			t.Skip("no indexed node found (payload too small)")
		}
		if it.Kind == ItemOpen && it.Meta != nil {
			bad := *it.Meta
			bad.ContentSize = 1 << 30
			if err := dec.SkipContent(&bad); err == nil {
				t.Fatal("overrunning skip accepted")
			}
			return
		}
	}
}

// validHeaderImage builds a marshalled header with generation runs — the
// richest header shape the parser accepts.
func validHeaderImage(t *testing.T) []byte {
	t.Helper()
	h := Header{DocID: "robust-doc", Version: 9, BlockPlain: 128, PayloadLen: 1000,
		GenRuns: []GenRun{{Count: 2, Gen: 3}, {Count: 5, Gen: 9}, {Count: 1, Gen: 7}}}
	img, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestUnmarshalHeaderTruncated: every proper prefix of a valid header
// must be rejected cleanly — the header is the first attacker-held input
// the terminal parses.
func TestUnmarshalHeaderTruncated(t *testing.T) {
	img := validHeaderImage(t)
	if _, n, err := UnmarshalHeader(img); err != nil || n != len(img) {
		t.Fatalf("valid header rejected: n=%d err=%v", n, err)
	}
	for cut := 0; cut < len(img); cut++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("prefix of %d bytes: parser panicked: %v", cut, r)
				}
			}()
			if _, _, err := UnmarshalHeader(img[:cut]); err == nil {
				t.Fatalf("prefix of %d bytes accepted", cut)
			}
		}()
	}
}

// TestUnmarshalHeaderBitFlips: random corruption must never panic, hang
// or produce a header whose generation vector escapes its own geometry.
func TestUnmarshalHeaderBitFlips(t *testing.T) {
	img := validHeaderImage(t)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 2000; trial++ {
		mutated := append([]byte(nil), img...)
		for flips := 1 + rng.Intn(4); flips > 0; flips-- {
			mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: parser panicked: %v", trial, r)
				}
			}()
			h, _, err := UnmarshalHeader(mutated)
			if err != nil {
				return // rejected: fine (the MAC layer catches the rest)
			}
			// A parse that survives must stay internally consistent.
			if h.BlockPlain == 0 {
				t.Fatalf("trial %d: zero block size escaped validation", trial)
			}
			covered := 0
			for _, r := range h.GenRuns {
				if r.Gen > h.Version {
					t.Fatalf("trial %d: generation %d beyond version %d", trial, r.Gen, h.Version)
				}
				covered += int(r.Count)
			}
			if len(h.GenRuns) > 0 && covered != h.NumBlocks() {
				t.Fatalf("trial %d: %d-block gen vector over %d-block geometry", trial, covered, h.NumBlocks())
			}
			// BlockGen must stay total over the geometry.
			for i := 0; i < h.NumBlocks() && i < 1<<12; i++ {
				_ = h.BlockGen(i)
			}
		}()
	}
}

// TestUnmarshalHeaderHostileRunCount: a generation-run count far beyond
// the geometry must be rejected before any allocation is attempted.
func TestUnmarshalHeaderHostileRunCount(t *testing.T) {
	h := Header{DocID: "x", Version: 1, BlockPlain: 128, PayloadLen: 256}
	base := h.canonical()
	// canonical ends with uvarint(0) for "no runs"; rewrite the tail
	// with a huge run count and no run data.
	img := append(base[:len(base)-1], 0xff, 0xff, 0xff, 0xff, 0x7f)
	img = append(img, make([]byte, secure.HeaderMACLen)...)
	if _, _, err := UnmarshalHeader(img); err == nil {
		t.Fatal("hostile run count accepted")
	}
}

// TestDecodeMetaRobust: truncated and bit-flipped skip-index records
// against assorted parent sets must error or decode, never panic; a
// decoded record's tag set must stay inside the parent set (the decoder
// stack's invariant).
func TestDecodeMetaRobust(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 1000; trial++ {
		n := 1 + rng.Intn(40)
		parent := skipindex.NewSet(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				parent.Add(tagdict.Code(i))
			}
		}
		child := skipindex.NewSet(n)
		for i := 0; i < n; i++ {
			if parent.Has(tagdict.Code(i)) && rng.Intn(2) == 0 {
				child.Add(tagdict.Code(i))
			}
		}
		img := skipindex.AppendMeta(nil, skipindex.NodeMeta{Tags: child, ContentSize: rng.Intn(1 << 20)}, parent)
		// Truncations.
		for cut := 0; cut < len(img); cut++ {
			if _, _, err := skipindex.DecodeMeta(img[:cut], parent); err == nil {
				t.Fatalf("trial %d: %d-byte prefix of a %d-byte record accepted", trial, cut, len(img))
			}
		}
		// Bit flips: must never panic and never escape the parent set.
		mutated := append([]byte(nil), img...)
		if len(mutated) > 0 {
			mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
		}
		meta, _, err := skipindex.DecodeMeta(mutated, parent)
		if err != nil {
			continue
		}
		if !meta.Tags.SubsetOf(parent) {
			t.Fatalf("trial %d: decoded tag set escapes the parent set", trial)
		}
	}
}

var _ = fmt.Sprintf
