package docenc

import (
	"fmt"
	"testing"

	"repro/internal/secure"
	"repro/internal/workload"
	"repro/internal/xmlstream"
)

func testKey() secure.DocKey { return secure.KeyFromSeed("docenc-test") }

func TestEncodeDecodeRoundTrip(t *testing.T) {
	docs := map[string]*xmlstream.Node{
		"medical": workload.MedicalFolder(workload.MedicalConfig{Seed: 1, Patients: 5, VisitsPerPatient: 3}),
		"agenda":  workload.Agenda(workload.AgendaConfig{Seed: 1, Members: 4, EventsPerMember: 3}),
		"stream":  workload.MediaStream(workload.StreamConfig{Seed: 1, Segments: 8, PayloadBytes: 500}),
		"random": workload.RandomDocument(workload.TreeConfig{
			Seed: 1, Elements: 120, MaxDepth: 6, MaxFanout: 4, AttrProb: 0.3, TextProb: 0.7,
		}),
		"tiny": {Name: "a"},
	}
	for name, doc := range docs {
		t.Run(name, func(t *testing.T) {
			c, info, err := Encode(doc, EncodeOptions{DocID: name, Key: testKey()})
			if err != nil {
				t.Fatal(err)
			}
			if info.PayloadBytes <= 0 || info.Nodes <= 0 {
				t.Errorf("implausible info: %+v", info)
			}
			back, err := DecodeDocument(c, testKey())
			if err != nil {
				t.Fatal(err)
			}
			if !back.Equal(doc) {
				t.Fatal("round trip changed the document")
			}
		})
	}
}

func TestEncodeRoundTripRandomized(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		doc := workload.RandomDocument(workload.TreeConfig{
			Seed: seed, Elements: 20 + int(seed)*7, MaxDepth: 7, MaxFanout: 5,
			AttrProb: 0.3, TextProb: 0.8,
		})
		for _, block := range []int{32, 128, 1024} {
			c, _, err := Encode(doc, EncodeOptions{
				DocID: "r", Key: testKey(), BlockPlain: block, MinSkipBytes: 24,
			})
			if err != nil {
				t.Fatalf("seed %d block %d: %v", seed, block, err)
			}
			back, err := DecodeDocument(c, testKey())
			if err != nil {
				t.Fatalf("seed %d block %d: %v", seed, block, err)
			}
			if !back.Equal(doc) {
				t.Fatalf("seed %d block %d: round trip changed document", seed, block)
			}
		}
	}
}

func TestEncodeOptionsValidation(t *testing.T) {
	doc := &xmlstream.Node{Name: "a"}
	if _, _, err := Encode(doc, EncodeOptions{}); err == nil {
		t.Error("missing DocID accepted")
	}
	if _, _, err := Encode(doc, EncodeOptions{DocID: "d", BlockPlain: 8}); err == nil {
		t.Error("absurd block size accepted")
	}
	if _, _, err := Encode(nil, EncodeOptions{DocID: "d"}); err == nil {
		t.Error("nil root accepted")
	}
	if _, _, err := Encode(&xmlstream.Node{Text: "t"}, EncodeOptions{DocID: "d"}); err == nil {
		t.Error("text root accepted")
	}
}

func TestHeaderRoundTripAndVerify(t *testing.T) {
	doc := workload.Agenda(workload.AgendaConfig{Seed: 2, Members: 3, EventsPerMember: 2})
	c, _, err := Encode(doc, EncodeOptions{DocID: "agenda", Version: 9, Key: testKey()})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := c.Header.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	h, n, err := UnmarshalHeader(append(hb, 0xEE))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(hb) {
		t.Errorf("consumed %d, want %d", n, len(hb))
	}
	if h.DocID != "agenda" || h.Version != 9 || h.PayloadLen != c.Header.PayloadLen {
		t.Errorf("header fields changed: %+v", h)
	}
	if err := h.Verify(testKey()); err != nil {
		t.Fatal(err)
	}
	// Tampered geometry must fail authentication.
	h.PayloadLen--
	if err := h.Verify(testKey()); err == nil {
		t.Error("tampered header accepted")
	}
}

func TestHeaderUnmarshalErrors(t *testing.T) {
	if _, _, err := UnmarshalHeader([]byte("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, _, err := UnmarshalHeader([]byte("SDS1")); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestContainerMarshalRoundTrip(t *testing.T) {
	doc := workload.Catalog(workload.CatalogConfig{Seed: 3, Categories: 3, ProductsPerCategory: 4})
	c, _, err := Encode(doc, EncodeOptions{DocID: "cat", Key: testKey()})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) != c.StoredSize() {
		t.Errorf("StoredSize %d != marshaled %d", c.StoredSize(), len(blob))
	}
	back, err := UnmarshalContainer(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Blocks) != len(c.Blocks) {
		t.Fatalf("block count changed: %d -> %d", len(c.Blocks), len(back.Blocks))
	}
	tree, err := DecodeDocument(back, testKey())
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(doc) {
		t.Fatal("container round trip changed document")
	}
	if _, err := UnmarshalContainer(blob[:len(blob)-4]); err == nil {
		t.Error("truncated container accepted")
	}
	if _, err := UnmarshalContainer(append(blob, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestBlockRange(t *testing.T) {
	h := Header{BlockPlain: 100, PayloadLen: 1000}
	if h.NumBlocks() != 10 {
		t.Errorf("NumBlocks = %d", h.NumBlocks())
	}
	first, count := h.BlockRange(250, 300)
	if first != 2 || count != 4 {
		t.Errorf("BlockRange(250,300) = %d,%d; want 2,4", first, count)
	}
	if _, count := h.BlockRange(0, 0); count != 0 {
		t.Error("empty range must cover no blocks")
	}
}

func TestIndexThresholdMonotone(t *testing.T) {
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 5, Patients: 10, VisitsPerPatient: 3})
	var prev int = 1 << 30
	for _, min := range []int{16, 64, 256} {
		_, info, err := EncodePayload(doc, EncodeOptions{MinSkipBytes: min})
		if err != nil {
			t.Fatal(err)
		}
		if info.IndexedNodes > prev {
			t.Errorf("threshold %d indexed MORE nodes (%d > %d)", min, info.IndexedNodes, prev)
		}
		prev = info.IndexedNodes
	}
	_, info, err := EncodePayload(doc, EncodeOptions{DisableIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.IndexedNodes != 0 || info.IndexBytes != 0 {
		t.Error("DisableIndex must index nothing")
	}
}

func TestDecoderSkipContent(t *testing.T) {
	// Build <r><big>...</big><tail>x</tail></r>, skip big, land on tail.
	big := &xmlstream.Node{Name: "big"}
	for i := 0; i < 50; i++ {
		big.Children = append(big.Children, &xmlstream.Node{
			Name:     "item",
			Children: []*xmlstream.Node{{Text: fmt.Sprintf("content-%03d", i)}},
		})
	}
	doc := &xmlstream.Node{Name: "r", Children: []*xmlstream.Node{
		big,
		{Name: "tail", Children: []*xmlstream.Node{{Text: "x"}}},
	}}
	payload, _, err := EncodePayload(doc, EncodeOptions{MinSkipBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	dict, dec, err := ParsePayload(payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	// r open
	it, err := dec.Next()
	if err != nil || it.Kind != ItemOpen || dict.Name(it.Code) != "r" {
		t.Fatalf("first item: %+v, %v", it, err)
	}
	// big open, then skip it
	it, err = dec.Next()
	if err != nil || it.Kind != ItemOpen || dict.Name(it.Code) != "big" {
		t.Fatalf("second item: %+v, %v", it, err)
	}
	if it.Meta == nil {
		t.Fatal("big must carry an index record")
	}
	if err := dec.SkipContent(it.Meta); err != nil {
		t.Fatal(err)
	}
	// next must be tail's open
	it, err = dec.Next()
	if err != nil || it.Kind != ItemOpen || dict.Name(it.Code) != "tail" {
		t.Fatalf("after skip: %+v, %v", it, err)
	}
	if dec.Depth() != 2 {
		t.Errorf("depth after skip = %d, want 2", dec.Depth())
	}
}

func TestDecoderValueStreaming(t *testing.T) {
	text := make([]byte, 3000)
	for i := range text {
		text[i] = byte('a' + i%26)
	}
	doc := &xmlstream.Node{Name: "r", Children: []*xmlstream.Node{{Text: string(text)}}}
	payload, _, err := EncodePayload(doc, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, dec, err := ParsePayload(payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	if it, _ := dec.Next(); it.Kind != ItemOpen {
		t.Fatal("expected root open")
	}
	it, err := dec.Next()
	if err != nil || it.Kind != ItemValueStart || it.Size != len(text) {
		t.Fatalf("expected value start of %d bytes, got %+v", len(text), it)
	}
	var got []byte
	for {
		it, err = dec.Next()
		if err != nil {
			t.Fatal(err)
		}
		if it.Kind != ItemValueChunk {
			t.Fatalf("expected chunk, got %+v", it)
		}
		if len(it.Text) > ValueChunkSize {
			t.Fatalf("chunk of %d bytes exceeds limit", len(it.Text))
		}
		got = append(got, it.Text...)
		if it.Last {
			break
		}
	}
	if string(got) != string(text) {
		t.Fatal("streamed value differs from original")
	}
}

func TestDecoderRejectsGarbage(t *testing.T) {
	doc := &xmlstream.Node{Name: "a"}
	payload, _, _ := EncodePayload(doc, EncodeOptions{})
	// Corrupt the structure opcode.
	payload[len(payload)-2] = 0x7F
	_, dec, err := ParsePayload(payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := dec.Next(); err != nil {
			return // rejected, good
		}
	}
	t.Error("garbage opcode never rejected")
}

func TestDecryptPayloadDetectsTruncation(t *testing.T) {
	doc := workload.Agenda(workload.AgendaConfig{Seed: 4, Members: 3, EventsPerMember: 2})
	c, _, err := Encode(doc, EncodeOptions{DocID: "a", Key: testKey()})
	if err != nil {
		t.Fatal(err)
	}
	c.Blocks = c.Blocks[:len(c.Blocks)-1]
	if _, err := c.DecryptPayload(testKey()); err == nil {
		t.Error("truncated container accepted")
	}
}
