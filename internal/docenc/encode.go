// Package docenc implements the encrypted document container: the form
// XML documents take on the untrusted DSP.
//
// The plaintext payload is the tag-dictionary-compressed structure stream
// of Section 2.3 with the skip index interleaved: every sufficiently
// large element's opening record embeds the set of tags occurring in its
// content (recursively compressed against its parent's set) and its
// encoded content size, so the SOE can decide — before decrypting a
// subtree — whether anything can fire inside it, and jump over it
// otherwise. The payload is cut into fixed-size blocks, each encrypted
// and integrity-tagged independently (package secure), so skipped blocks
// are never transmitted nor decrypted.
//
// Payload layout:
//
//	dict                     tagdict.MarshalBinary
//	node                     (the root element)
//
//	node      := openMeta | openPlain
//	openMeta  := 0x01 varint(code) relBitmap varint(len(content)) content
//	openPlain := 0x02 varint(code) content
//	content   := (node | value)* 0x03
//	value     := 0x04 varint(len) bytes
//
// A node gets a skip-index record (openMeta) when its encoded content is
// at least MinSkipBytes; since a child's content is strictly contained in
// its parent's, index-free subtrees are contiguous and the decoder's
// parent-set stack stays consistent.
//
// Encoding is a streaming two-phase pass: a sizing walk annotates every
// node with its content tag set and exact encoded size (sizes, not
// bytes), after which the emitter produces the payload front to back in
// one pass, encrypting and handing off each block as it fills. No
// payload or container image is ever materialized — the resident state
// is the per-node annotations plus one plaintext block.
package docenc

import (
	"encoding/binary"
	"fmt"

	"repro/internal/secure"
	"repro/internal/skipindex"
	"repro/internal/tagdict"
	"repro/internal/xmlstream"
)

// Structure stream opcodes.
const (
	opOpenMeta  = 0x01
	opOpenPlain = 0x02
	opClose     = 0x03
	opValue     = 0x04
)

// DefaultBlockPlain is the default plaintext bytes per cipher block. Small
// blocks keep skip granularity fine and fit one block per APDU, matching
// the constraints of the paper's target card.
const DefaultBlockPlain = 128

// DefaultMinSkipBytes is the default content size under which a node
// carries no index record (the record would cost more than it saves).
const DefaultMinSkipBytes = 64

// EncodeOptions parameterizes Encode.
type EncodeOptions struct {
	// DocID names the document (bound into every block tag).
	DocID string
	// Version of the document (re-publication bumps it).
	Version uint32
	// Key protects the document.
	Key secure.DocKey
	// BlockPlain is the plaintext block size (default DefaultBlockPlain).
	BlockPlain int
	// MinSkipBytes is the indexing threshold (default DefaultMinSkipBytes).
	MinSkipBytes int
	// DisableIndex omits all skip-index records (ablation baseline).
	DisableIndex bool
}

func (o *EncodeOptions) normalize() error {
	if o.DocID == "" {
		return fmt.Errorf("docenc: DocID is required")
	}
	if o.BlockPlain == 0 {
		o.BlockPlain = DefaultBlockPlain
	}
	if o.BlockPlain < 32 || o.BlockPlain > 65536 {
		return fmt.Errorf("docenc: BlockPlain %d outside [32,65536]", o.BlockPlain)
	}
	if o.MinSkipBytes == 0 {
		o.MinSkipBytes = DefaultMinSkipBytes
	}
	return nil
}

// EncodeInfo reports how the payload decomposes; experiment E4 (index
// overhead) reads it.
type EncodeInfo struct {
	Dict           *tagdict.Dict
	PayloadBytes   int
	DictBytes      int
	IndexBytes     int // bytes spent on skip-index records
	StructureBytes int // opcodes and tag codes
	TextBytes      int // value payloads (with length prefixes)
	Nodes          int
	IndexedNodes   int
	StoredBytes    int // total ciphertext+tag bytes on the DSP
	// FlatIndexBytes is what the index would cost WITHOUT the paper's
	// recursive compression (every bitmap over the full dictionary): the
	// E4 ablation, computed analytically during encoding.
	FlatIndexBytes int
}

// Encode compresses, indexes, encrypts and packages a document. It is
// the buffered convenience over Encoder: the streaming pass collects
// into a Container.
func Encode(root *xmlstream.Node, opts EncodeOptions) (*Container, *EncodeInfo, error) {
	enc, err := NewEncoder(root, opts)
	if err != nil {
		return nil, nil, err
	}
	c := &Container{Header: enc.Header()}
	if err := enc.Run(func(idx int, stored []byte) error {
		c.Blocks = append(c.Blocks, stored)
		return nil
	}); err != nil {
		return nil, nil, err
	}
	info := enc.Info()
	info.StoredBytes = c.StoredSize()
	return c, info, nil
}

// EncodePayload builds the plaintext payload (dictionary + indexed
// structure stream) without encrypting it. Engine-only benchmarks and the
// index-overhead experiment use it directly.
func EncodePayload(root *xmlstream.Node, opts EncodeOptions) ([]byte, *EncodeInfo, error) {
	if opts.DocID == "" {
		opts.DocID = "payload-only"
	}
	p, err := newPlan(root, opts)
	if err != nil {
		return nil, nil, err
	}
	out := make([]byte, 0, p.payloadLen)
	if err := p.emit(func(b []byte) error {
		out = append(out, b...)
		return nil
	}); err != nil {
		return nil, nil, err
	}
	if len(out) != p.payloadLen {
		return nil, nil, fmt.Errorf("docenc: emitted %d payload bytes, sizing pass computed %d",
			len(out), p.payloadLen)
	}
	return out, p.info, nil
}

// Seal encrypts a ready payload into a container (the buffered last
// stage, exposed for re-encryption experiments; the streaming Encoder
// never goes through it).
func Seal(payload []byte, opts EncodeOptions) (*Container, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	c := &Container{
		Header: Header{
			DocID:      opts.DocID,
			Version:    opts.Version,
			BlockPlain: uint32(opts.BlockPlain),
			PayloadLen: uint64(len(payload)),
		},
	}
	c.Header.MAC = secure.HeaderMAC(opts.Key, c.Header.canonical())
	sctx, err := secure.NewBlockContext(opts.Key)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(payload); i += opts.BlockPlain {
		end := i + opts.BlockPlain
		if end > len(payload) {
			end = len(payload)
		}
		blk, err := sctx.EncryptBlock(opts.DocID, opts.Version,
			uint32(len(c.Blocks)), payload[i:end])
		if err != nil {
			return nil, err
		}
		c.Blocks = append(c.Blocks, blk)
	}
	return c, nil
}

// nodeInfo is the annotation tree of the two-phase encoder: the sizing
// walk computes content tag sets and exact encoded sizes bottom-up; the
// emitter then writes bytes top-down (child records are compressed
// against the parent set, which is only known once all children are
// annotated).
type nodeInfo struct {
	node     *xmlstream.Node
	code     tagdict.Code
	tags     skipindex.Set // codes strictly below the node
	children []*nodeInfo   // parallel to element children; nil for text
	// contentSize is the exact byte size of the node's encoded content
	// (children records, values, closing opcode) — the skip record's
	// jump distance, known before a single byte is emitted.
	contentSize int
	// indexed records the sizing walk's decision to attach a skip record.
	indexed bool
}

// plan is the outcome of the sizing pass: everything the emitter needs
// to stream the payload in one pass of exactly payloadLen bytes.
type plan struct {
	opts      EncodeOptions
	dict      *tagdict.Dict
	info      *EncodeInfo
	root      *nodeInfo
	universe  skipindex.Set
	dictImage []byte
	// payloadLen is the exact total payload size, known up front — what
	// lets the streaming encoder MAC the header before emitting blocks.
	payloadLen int
}

// newPlan runs the sizing pass.
func newPlan(root *xmlstream.Node, opts EncodeOptions) (*plan, error) {
	if root == nil || root.IsText() {
		return nil, fmt.Errorf("docenc: document root must be an element")
	}
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	stats := xmlstream.CollectStats(root.Events())
	dict, err := tagdict.FromCounts(stats.TagCounts)
	if err != nil {
		return nil, err
	}
	p := &plan{opts: opts, dict: dict, info: &EncodeInfo{Dict: dict}}
	ni, err := p.annotate(root)
	if err != nil {
		return nil, err
	}
	p.root = ni
	p.dictImage, err = dict.MarshalBinary()
	if err != nil {
		return nil, err
	}
	p.info.DictBytes = len(p.dictImage)
	p.universe = skipindex.NewSet(dict.Len())
	for i := 0; i < dict.Len(); i++ {
		p.universe.Add(tagdict.Code(i))
	}
	p.payloadLen = len(p.dictImage) + p.recordSize(ni, p.universe)
	return p, nil
}

// annotate computes tag sets and exact sizes bottom-up.
func (p *plan) annotate(n *xmlstream.Node) (*nodeInfo, error) {
	code := p.dict.Code(n.Name)
	if code == tagdict.NoCode {
		return nil, fmt.Errorf("docenc: tag %q missing from dictionary", n.Name)
	}
	info := &nodeInfo{node: n, code: code, tags: skipindex.NewSet(p.dict.Len())}
	p.info.Nodes++
	for _, c := range n.Children {
		if c.IsText() {
			info.children = append(info.children, nil)
			continue
		}
		ci, err := p.annotate(c)
		if err != nil {
			return nil, err
		}
		info.children = append(info.children, ci)
		info.tags.Add(ci.code)
		info.tags.UnionWith(ci.tags)
	}
	// Child record sizes are measured against this node's now-complete
	// tag set (the recursive compression of the paper).
	size := 0
	for i, c := range n.Children {
		if c.IsText() {
			size += 1 + uvarintLen(uint64(len(c.Text))) + len(c.Text)
			continue
		}
		size += p.recordSize(info.children[i], info.tags)
	}
	size++ // closing opcode
	info.contentSize = size
	info.indexed = !p.opts.DisableIndex && size >= p.opts.MinSkipBytes
	return info, nil
}

// recordSize is the exact encoded size of a node's record (open through
// close) when emitted under parentTags.
func (p *plan) recordSize(info *nodeInfo, parentTags skipindex.Set) int {
	n := 1 + uvarintLen(uint64(info.code)) + info.contentSize
	if info.indexed {
		n += skipindex.MetaSize(skipindex.NodeMeta{
			Tags:        info.tags,
			ContentSize: info.contentSize,
		}, parentTags)
	}
	return n
}

// emit streams the payload (dictionary, then the structure stream) to
// write, front to back, filling in the byte-level EncodeInfo counters.
func (p *plan) emit(write func([]byte) error) error {
	if err := write(p.dictImage); err != nil {
		return err
	}
	var scratch []byte
	if err := p.emitNode(write, &scratch, p.root, p.universe); err != nil {
		return err
	}
	p.info.PayloadBytes = p.payloadLen
	return nil
}

// emitNode writes one node's record. scratch is a reused staging buffer
// for the record header (opcodes, varints, index record); values stream
// through unstaged.
func (p *plan) emitNode(write func([]byte) error, scratch *[]byte, info *nodeInfo, parentTags skipindex.Set) error {
	b := (*scratch)[:0]
	if info.indexed {
		b = append(b, opOpenMeta)
		b = binary.AppendUvarint(b, uint64(info.code))
		before := len(b)
		b = skipindex.AppendMeta(b, skipindex.NodeMeta{
			Tags:        info.tags,
			ContentSize: info.contentSize,
		}, parentTags)
		p.info.IndexBytes += len(b) - before
		p.info.FlatIndexBytes += (p.dict.Len()+7)/8 + uvarintLen(uint64(info.contentSize))
		p.info.IndexedNodes++
	} else {
		b = append(b, opOpenPlain)
		b = binary.AppendUvarint(b, uint64(info.code))
	}
	p.info.StructureBytes += 1 + uvarintLen(uint64(info.code)) + 1 // open, code, close
	*scratch = b
	if err := write(b); err != nil {
		return err
	}
	for i, c := range info.node.Children {
		if c.IsText() {
			b = (*scratch)[:0]
			b = append(b, opValue)
			b = binary.AppendUvarint(b, uint64(len(c.Text)))
			*scratch = b
			if err := write(b); err != nil {
				return err
			}
			if err := write([]byte(c.Text)); err != nil {
				return err
			}
			p.info.TextBytes += 1 + uvarintLen(uint64(len(c.Text))) + len(c.Text)
			continue
		}
		if err := p.emitNode(write, scratch, info.children[i], info.tags); err != nil {
			return err
		}
	}
	return write(closeOp)
}

// closeOp is the shared one-byte close record.
var closeOp = []byte{opClose}

// Encoder streams a document into an encrypted container in one
// bounded-memory pass: the sizing walk fixes the geometry (so the header
// can be MAC'd up front), then Run encodes, indexes and encrypts block
// by block, handing each stored block to the caller as it is produced.
// Nothing larger than one plaintext block is buffered — the publish path
// can pipe a document straight onto the wire.
type Encoder struct {
	plan   *plan
	header Header
	ran    bool
}

// NewEncoder runs the sizing pass and seals the header.
func NewEncoder(root *xmlstream.Node, opts EncodeOptions) (*Encoder, error) {
	if opts.DocID == "" {
		return nil, fmt.Errorf("docenc: DocID is required")
	}
	p, err := newPlan(root, opts)
	if err != nil {
		return nil, err
	}
	h := Header{
		DocID:      p.opts.DocID,
		Version:    p.opts.Version,
		BlockPlain: uint32(p.opts.BlockPlain),
		PayloadLen: uint64(p.payloadLen),
	}
	h.MAC = secure.HeaderMAC(p.opts.Key, h.canonical())
	return &Encoder{plan: p, header: h}, nil
}

// Header returns the sealed container header (valid before Run: the
// publish handshake sends it first).
func (e *Encoder) Header() Header { return e.header }

// NumBlocks reports how many stored blocks Run will emit.
func (e *Encoder) NumBlocks() int { return e.header.NumBlocks() }

// Info returns the encoding statistics. The node counts are final after
// NewEncoder; the byte-level counters are final after Run (StoredBytes
// is filled by Run as blocks leave).
func (e *Encoder) Info() *EncodeInfo { return e.plan.info }

// Run streams the stored blocks, in order, to emit. It can be called
// once.
func (e *Encoder) Run(emit func(idx int, stored []byte) error) error {
	sctx, err := secure.NewBlockContext(e.plan.opts.Key)
	if err != nil {
		return err
	}
	return e.runPlain(func(idx int, plain []byte) error {
		stored, err := sctx.EncryptBlock(e.plan.opts.DocID,
			e.plan.opts.Version, uint32(idx), plain)
		if err != nil {
			return err
		}
		e.plan.info.StoredBytes += len(stored)
		return emit(idx, stored)
	})
}

// runPlain streams the plaintext blocks (the delta differ hooks in here,
// deciding per block whether re-encryption is needed at all).
func (e *Encoder) runPlain(emit func(idx int, plain []byte) error) error {
	if e.ran {
		return fmt.Errorf("docenc: encoder already ran")
	}
	e.ran = true
	hb, err := e.header.MarshalBinary()
	if err != nil {
		return err
	}
	e.plan.info.StoredBytes = len(hb)
	bb := &blockBuilder{
		buf:  make([]byte, 0, e.plan.opts.BlockPlain),
		emit: emit,
	}
	if err := e.plan.emit(bb.write); err != nil {
		return err
	}
	if err := bb.flush(); err != nil {
		return err
	}
	if bb.total != e.plan.payloadLen {
		return fmt.Errorf("docenc: emitted %d payload bytes, sizing pass computed %d",
			bb.total, e.plan.payloadLen)
	}
	return nil
}

// blockBuilder cuts the emitted payload stream into plaintext blocks.
type blockBuilder struct {
	buf   []byte
	idx   int
	total int
	emit  func(idx int, plain []byte) error
}

func (b *blockBuilder) write(p []byte) error {
	for len(p) > 0 {
		n := copy(b.buf[len(b.buf):cap(b.buf)], p)
		b.buf = b.buf[:len(b.buf)+n]
		p = p[n:]
		if len(b.buf) == cap(b.buf) {
			if err := b.flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (b *blockBuilder) flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	b.total += len(b.buf)
	err := b.emit(b.idx, b.buf)
	b.idx++
	b.buf = b.buf[:0]
	return err
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
