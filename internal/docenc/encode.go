// Package docenc implements the encrypted document container: the form
// XML documents take on the untrusted DSP.
//
// The plaintext payload is the tag-dictionary-compressed structure stream
// of Section 2.3 with the skip index interleaved: every sufficiently
// large element's opening record embeds the set of tags occurring in its
// content (recursively compressed against its parent's set) and its
// encoded content size, so the SOE can decide — before decrypting a
// subtree — whether anything can fire inside it, and jump over it
// otherwise. The payload is cut into fixed-size blocks, each encrypted
// and integrity-tagged independently (package secure), so skipped blocks
// are never transmitted nor decrypted.
//
// Payload layout:
//
//	dict                     tagdict.MarshalBinary
//	node                     (the root element)
//
//	node      := openMeta | openPlain
//	openMeta  := 0x01 varint(code) relBitmap varint(len(content)) content
//	openPlain := 0x02 varint(code) content
//	content   := (node | value)* 0x03
//	value     := 0x04 varint(len) bytes
//
// A node gets a skip-index record (openMeta) when its encoded content is
// at least MinSkipBytes; since a child's content is strictly contained in
// its parent's, index-free subtrees are contiguous and the decoder's
// parent-set stack stays consistent.
package docenc

import (
	"encoding/binary"
	"fmt"

	"repro/internal/secure"
	"repro/internal/skipindex"
	"repro/internal/tagdict"
	"repro/internal/xmlstream"
)

// Structure stream opcodes.
const (
	opOpenMeta  = 0x01
	opOpenPlain = 0x02
	opClose     = 0x03
	opValue     = 0x04
)

// DefaultBlockPlain is the default plaintext bytes per cipher block. Small
// blocks keep skip granularity fine and fit one block per APDU, matching
// the constraints of the paper's target card.
const DefaultBlockPlain = 128

// DefaultMinSkipBytes is the default content size under which a node
// carries no index record (the record would cost more than it saves).
const DefaultMinSkipBytes = 64

// EncodeOptions parameterizes Encode.
type EncodeOptions struct {
	// DocID names the document (bound into every block tag).
	DocID string
	// Version of the document (re-publication bumps it).
	Version uint32
	// Key protects the document.
	Key secure.DocKey
	// BlockPlain is the plaintext block size (default DefaultBlockPlain).
	BlockPlain int
	// MinSkipBytes is the indexing threshold (default DefaultMinSkipBytes).
	MinSkipBytes int
	// DisableIndex omits all skip-index records (ablation baseline).
	DisableIndex bool
}

func (o *EncodeOptions) normalize() error {
	if o.DocID == "" {
		return fmt.Errorf("docenc: DocID is required")
	}
	if o.BlockPlain == 0 {
		o.BlockPlain = DefaultBlockPlain
	}
	if o.BlockPlain < 32 || o.BlockPlain > 65536 {
		return fmt.Errorf("docenc: BlockPlain %d outside [32,65536]", o.BlockPlain)
	}
	if o.MinSkipBytes == 0 {
		o.MinSkipBytes = DefaultMinSkipBytes
	}
	return nil
}

// EncodeInfo reports how the payload decomposes; experiment E4 (index
// overhead) reads it.
type EncodeInfo struct {
	Dict           *tagdict.Dict
	PayloadBytes   int
	DictBytes      int
	IndexBytes     int // bytes spent on skip-index records
	StructureBytes int // opcodes and tag codes
	TextBytes      int // value payloads (with length prefixes)
	Nodes          int
	IndexedNodes   int
	StoredBytes    int // total ciphertext+tag bytes on the DSP
	// FlatIndexBytes is what the index would cost WITHOUT the paper's
	// recursive compression (every bitmap over the full dictionary): the
	// E4 ablation, computed analytically during encoding.
	FlatIndexBytes int
}

// Encode compresses, indexes, encrypts and packages a document.
func Encode(root *xmlstream.Node, opts EncodeOptions) (*Container, *EncodeInfo, error) {
	payload, info, err := EncodePayload(root, opts)
	if err != nil {
		return nil, nil, err
	}
	container, err := Seal(payload, opts)
	if err != nil {
		return nil, nil, err
	}
	info.StoredBytes = container.StoredSize()
	return container, info, nil
}

// EncodePayload builds the plaintext payload (dictionary + indexed
// structure stream) without encrypting it. Engine-only benchmarks and the
// index-overhead experiment use it directly.
func EncodePayload(root *xmlstream.Node, opts EncodeOptions) ([]byte, *EncodeInfo, error) {
	if root == nil || root.IsText() {
		return nil, nil, fmt.Errorf("docenc: document root must be an element")
	}
	if opts.DocID == "" {
		opts.DocID = "payload-only"
	}
	if err := opts.normalize(); err != nil {
		return nil, nil, err
	}

	stats := xmlstream.CollectStats(root.Events())
	dict, err := tagdict.FromCounts(stats.TagCounts)
	if err != nil {
		return nil, nil, err
	}

	enc := &encoder{dict: dict, opts: &opts, info: &EncodeInfo{Dict: dict}}
	info, err := enc.annotate(root)
	if err != nil {
		return nil, nil, err
	}

	payload, err := dict.MarshalBinary()
	if err != nil {
		return nil, nil, err
	}
	enc.info.DictBytes = len(payload)

	universe := skipindex.NewSet(dict.Len())
	for i := 0; i < dict.Len(); i++ {
		universe.Add(tagdict.Code(i))
	}
	payload = enc.encodeNode(payload, info, universe)
	enc.info.PayloadBytes = len(payload)
	return payload, enc.info, nil
}

// Seal encrypts a ready payload into a container (Encode's last stage,
// exposed for re-encryption experiments).
func Seal(payload []byte, opts EncodeOptions) (*Container, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	c := &Container{
		Header: Header{
			DocID:      opts.DocID,
			Version:    opts.Version,
			BlockPlain: uint32(opts.BlockPlain),
			PayloadLen: uint64(len(payload)),
		},
	}
	c.Header.MAC = secure.HeaderMAC(opts.Key, c.Header.canonical())
	for i := 0; i < len(payload); i += opts.BlockPlain {
		end := i + opts.BlockPlain
		if end > len(payload) {
			end = len(payload)
		}
		blk, err := secure.EncryptBlock(opts.Key, opts.DocID, opts.Version,
			uint32(len(c.Blocks)), payload[i:end])
		if err != nil {
			return nil, err
		}
		c.Blocks = append(c.Blocks, blk)
	}
	return c, nil
}

// nodeInfo is the annotation tree of the two-phase encoder: phase A
// computes content tag sets bottom-up; phase B emits bytes top-down
// (child records are compressed against the parent set, which is only
// known once all children are annotated).
type nodeInfo struct {
	node     *xmlstream.Node
	code     tagdict.Code
	tags     skipindex.Set // codes strictly below the node
	children []*nodeInfo   // parallel to element children; nil for text
}

type encoder struct {
	dict *tagdict.Dict
	opts *EncodeOptions
	info *EncodeInfo
}

func (e *encoder) annotate(n *xmlstream.Node) (*nodeInfo, error) {
	code := e.dict.Code(n.Name)
	if code == tagdict.NoCode {
		return nil, fmt.Errorf("docenc: tag %q missing from dictionary", n.Name)
	}
	info := &nodeInfo{node: n, code: code, tags: skipindex.NewSet(e.dict.Len())}
	e.info.Nodes++
	for _, c := range n.Children {
		if c.IsText() {
			info.children = append(info.children, nil)
			continue
		}
		ci, err := e.annotate(c)
		if err != nil {
			return nil, err
		}
		info.children = append(info.children, ci)
		info.tags.Add(ci.code)
		info.tags.UnionWith(ci.tags)
	}
	return info, nil
}

// encodeNode appends the node's encoding to dst. parentTags is the
// content tag set of the parent (the full universe for the root).
func (e *encoder) encodeNode(dst []byte, info *nodeInfo, parentTags skipindex.Set) []byte {
	var content []byte
	for i, c := range info.node.Children {
		if c.IsText() {
			content = append(content, opValue)
			content = binary.AppendUvarint(content, uint64(len(c.Text)))
			content = append(content, c.Text...)
			e.info.TextBytes += 1 + uvarintLen(uint64(len(c.Text))) + len(c.Text)
			continue
		}
		content = e.encodeNode(content, info.children[i], info.tags)
	}
	content = append(content, opClose)

	indexed := !e.opts.DisableIndex && len(content) >= e.opts.MinSkipBytes
	if indexed {
		dst = append(dst, opOpenMeta)
		dst = binary.AppendUvarint(dst, uint64(info.code))
		before := len(dst)
		dst = skipindex.AppendMeta(dst, skipindex.NodeMeta{
			Tags:        info.tags,
			ContentSize: len(content),
		}, parentTags)
		e.info.IndexBytes += len(dst) - before
		e.info.FlatIndexBytes += (e.dict.Len()+7)/8 + uvarintLen(uint64(len(content)))
		e.info.IndexedNodes++
	} else {
		dst = append(dst, opOpenPlain)
		dst = binary.AppendUvarint(dst, uint64(info.code))
	}
	e.info.StructureBytes += 1 + uvarintLen(uint64(info.code)) + 1 // open, code, close
	return append(dst, content...)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
