package docenc

import (
	"bytes"
	"fmt"

	"repro/internal/secure"
	"repro/internal/xmlstream"
)

// This file implements the block-level delta between two versions of a
// container. The crypto layer binds every stored block to (docID,
// generation, index) with a deterministic IV, so a plaintext block that
// did not change between versions has a still-valid ciphertext under its
// old generation; a delta re-publish therefore re-encrypts (and
// re-uploads) only the blocks whose plaintext moved, and records the
// surviving generations in the header's MAC'd GenRuns vector so the SOE
// keeps authenticating every block.

// BlockRun is a contiguous run of block indexes.
type BlockRun struct {
	Start, Count int
}

// DiffBlocks compares two payload images block-aligned and returns the
// runs of block indexes (over the NEW geometry) whose plaintext differs —
// including every block past the end of the shorter payload.
func DiffBlocks(oldPayload, newPayload []byte, blockPlain int) []BlockRun {
	if blockPlain <= 0 {
		return nil
	}
	numNew := (len(newPayload) + blockPlain - 1) / blockPlain
	var runs []BlockRun
	for i := 0; i < numNew; i++ {
		if blockEqual(blockAt(oldPayload, blockPlain, i), blockAt(newPayload, blockPlain, i)) {
			continue
		}
		if n := len(runs); n > 0 && runs[n-1].Start+runs[n-1].Count == i {
			runs[n-1].Count++
		} else {
			runs = append(runs, BlockRun{Start: i, Count: 1})
		}
	}
	return runs
}

// blockAt returns payload's plaintext block i under the given geometry
// (nil when i is past the end).
func blockAt(payload []byte, blockPlain, i int) []byte {
	off := i * blockPlain
	if off >= len(payload) {
		return nil
	}
	end := off + blockPlain
	if end > len(payload) {
		end = len(payload)
	}
	return payload[off:end]
}

// blockEqual reports whether two blocks exist and are byte-identical
// (same length, same bytes) — the reuse condition: a shorter or longer
// final block is a different block even on a shared prefix.
func blockEqual(a, b []byte) bool {
	return a != nil && b != nil && bytes.Equal(a, b)
}

// PatchRun is one changed run with its re-encrypted stored blocks.
type PatchRun struct {
	Start  int
	Blocks [][]byte
}

// DeltaUpdate is a block-level delta from one container version to its
// successor: the new (MAC'd) header plus the stored blocks of the
// changed runs. Everything outside the runs is, by construction,
// byte-identical on the store already.
type DeltaUpdate struct {
	// Header is the successor header: Version bumped, GenRuns recording
	// which generation each block of the new geometry is encrypted under.
	Header Header
	// BaseVersion is the version this delta applies on top of.
	BaseVersion uint32
	// Runs are the changed runs in ascending block order.
	Runs []PatchRun
	// TotalBlocks and ChangedBlocks summarize the delta's size.
	TotalBlocks   int
	ChangedBlocks int
	// BytesChanged is the stored bytes carried by Runs.
	BytesChanged int64
}

// ChangedRuns returns the delta's runs as index ranges (no payloads).
func (d *DeltaUpdate) ChangedRuns() []BlockRun {
	out := make([]BlockRun, len(d.Runs))
	for i, r := range d.Runs {
		out[i] = BlockRun{Start: r.Start, Count: len(r.Blocks)}
	}
	return out
}

// DiffEncode encodes root as the successor of old: the new version is
// old's plus one, unchanged blocks keep old ciphertext and generation,
// and only changed blocks are re-encrypted. The old container is
// authenticated (header MAC, block tags) before it is trusted as the
// diff base. The encoding pass streams: each plaintext block is compared
// against the old payload as it is produced and either dropped (reuse)
// or encrypted into the delta, so resident memory is the old payload
// plus the changed blocks.
//
// opts.Version is ignored (the successor version is negotiated from
// old); opts.DocID and opts.BlockPlain, when set, must match old — the
// delta is only meaningful over an identical geometry.
func DiffEncode(root *xmlstream.Node, opts EncodeOptions, old *Container) (*DeltaUpdate, *EncodeInfo, error) {
	if old == nil {
		return nil, nil, fmt.Errorf("docenc: delta needs a base container")
	}
	if opts.DocID != "" && opts.DocID != old.Header.DocID {
		return nil, nil, fmt.Errorf("docenc: delta DocID %q does not match base %q",
			opts.DocID, old.Header.DocID)
	}
	if opts.BlockPlain != 0 && opts.BlockPlain != int(old.Header.BlockPlain) {
		return nil, nil, fmt.Errorf("docenc: delta block size %d does not match base %d",
			opts.BlockPlain, old.Header.BlockPlain)
	}
	opts.DocID = old.Header.DocID
	opts.BlockPlain = int(old.Header.BlockPlain)
	opts.Version = old.Header.Version + 1

	oldPayload, err := old.DecryptPayload(opts.Key)
	if err != nil {
		return nil, nil, fmt.Errorf("docenc: authenticating the delta base: %w", err)
	}

	enc, err := NewEncoder(root, opts)
	if err != nil {
		return nil, nil, err
	}
	d := &DeltaUpdate{
		BaseVersion: old.Header.Version,
		TotalBlocks: enc.NumBlocks(),
	}
	sctx, err := secure.NewBlockContext(opts.Key)
	if err != nil {
		return nil, nil, err
	}
	gens := make([]uint32, 0, enc.NumBlocks())
	err = enc.runPlain(func(idx int, plain []byte) error {
		if blockEqual(blockAt(oldPayload, opts.BlockPlain, idx), plain) {
			gens = append(gens, old.Header.BlockGen(idx))
			return nil
		}
		stored, err := sctx.EncryptBlock(opts.DocID, opts.Version, uint32(idx), plain)
		if err != nil {
			return err
		}
		gens = append(gens, opts.Version)
		d.ChangedBlocks++
		d.BytesChanged += int64(len(stored))
		if n := len(d.Runs); n > 0 && d.Runs[n-1].Start+len(d.Runs[n-1].Blocks) == idx {
			d.Runs[n-1].Blocks = append(d.Runs[n-1].Blocks, stored)
		} else {
			d.Runs = append(d.Runs, PatchRun{Start: idx, Blocks: [][]byte{stored}})
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	// Re-seal the header with the generation vector (the encoder MAC'd a
	// gen-free header before the diff outcome was known).
	h := enc.Header()
	h.GenRuns = compressGens(gens, h.Version)
	h.MAC = secure.HeaderMAC(opts.Key, h.canonical())
	d.Header = h
	return d, enc.Info(), nil
}

// compressGens run-length encodes the generation vector; a vector that
// is uniformly the current version collapses to nil (the header's
// compact full-publish form).
func compressGens(gens []uint32, version uint32) []GenRun {
	uniform := true
	for _, g := range gens {
		if g != version {
			uniform = false
			break
		}
	}
	if uniform {
		return nil
	}
	var runs []GenRun
	for _, g := range gens {
		if n := len(runs); n > 0 && runs[n-1].Gen == g {
			runs[n-1].Count++
		} else {
			runs = append(runs, GenRun{Count: 1, Gen: g})
		}
	}
	return runs
}

// Apply materializes the successor container locally: the fallback path
// for stores without the block-patch protocol, and the oracle for
// differential tests.
func (d *DeltaUpdate) Apply(old *Container) (*Container, error) {
	if old == nil || old.Header.DocID != d.Header.DocID {
		return nil, fmt.Errorf("docenc: delta applies to %q", d.Header.DocID)
	}
	if old.Header.Version != d.BaseVersion {
		return nil, fmt.Errorf("docenc: delta is against version %d, container is at %d",
			d.BaseVersion, old.Header.Version)
	}
	c := &Container{Header: d.Header}
	n := d.Header.NumBlocks()
	c.Blocks = make([][]byte, n)
	for i := 0; i < n && i < len(old.Blocks); i++ {
		c.Blocks[i] = old.Blocks[i]
	}
	for _, r := range d.Runs {
		for j, b := range r.Blocks {
			if r.Start+j >= n {
				return nil, fmt.Errorf("docenc: delta block %d outside the %d-block geometry", r.Start+j, n)
			}
			c.Blocks[r.Start+j] = b
		}
	}
	remaining := int(d.Header.PayloadLen)
	for i, b := range c.Blocks {
		plainLen := int(d.Header.BlockPlain)
		if remaining < plainLen {
			plainLen = remaining
		}
		if b == nil || len(b) != plainLen+secure.MACLen {
			return nil, fmt.Errorf("docenc: delta leaves block %d missing or mis-sized", i)
		}
		remaining -= plainLen
	}
	return c, nil
}
