package docenc

import (
	"fmt"
	"io"

	"repro/internal/secure"
	"repro/internal/skipindex"
	"repro/internal/tagdict"
	"repro/internal/xmlstream"
)

// Source is the byte stream the Decoder pulls the plaintext payload from.
// Inside the SOE the implementation draws on block-by-block decryption
// and turns Skip into blocks never requested; outside it is a plain
// buffer.
type Source interface {
	// ReadByte returns the next payload byte, io.EOF past the end.
	ReadByte() (byte, error)
	// Read fills p entirely or fails.
	Read(p []byte) error
	// Skip advances n bytes without delivering them.
	Skip(n int) error
	// Offset reports the current plaintext offset.
	Offset() int
	// Avail reports how many bytes can be read without new input.
	Avail() int
}

// ItemKind discriminates decoded stream items.
type ItemKind uint8

// Decoded item kinds.
const (
	// ItemOpen is an element (or attribute pseudo-element) opening.
	ItemOpen ItemKind = iota
	// ItemValue is a complete (small) text node.
	ItemValue
	// ItemValueStart announces a large text node of Size bytes; its
	// content follows as ItemValueChunk items. Streaming large values in
	// bounded chunks is what lets the SOE forward payloads bigger than
	// its working memory (dissemination streams).
	ItemValueStart
	// ItemValueChunk carries a piece of a large text node; Last marks
	// the final piece.
	ItemValueChunk
	// ItemClose closes the innermost open element.
	ItemClose
	// ItemEOF marks the clean end of the payload.
	ItemEOF
)

// Item is one decoded stream element.
type Item struct {
	Kind ItemKind
	// Code is the tag for ItemOpen.
	Code tagdict.Code
	// Meta is the skip-index record of an indexed open, nil otherwise.
	Meta *skipindex.NodeMeta
	// Text is the character data of ItemValue/ItemValueChunk.
	Text string
	// Size is the total value length for ItemValueStart.
	Size int
	// Last marks the final chunk of a streamed value.
	Last bool
}

// InlineValueLimit is the largest text node delivered as a single
// ItemValue; longer values are streamed in chunks.
const InlineValueLimit = 64

// ValueChunkSize bounds one streamed chunk.
const ValueChunkSize = 256

// Decoder incrementally parses the structure stream. Its own memory use
// is bounded regardless of input: large values stream through in
// ValueChunkSize pieces.
type Decoder struct {
	src Source
	// dictLen bounds valid tag codes.
	dictLen int

	// parents holds the content tag sets of enclosing indexed nodes;
	// parents[0] is the full dictionary universe.
	parents []skipindex.Set
	// hadMeta records, per open element, whether it pushed onto parents.
	hadMeta []bool
	// valueRemaining is the unread byte count of an in-flight streamed
	// value.
	valueRemaining int
	done           bool
	meta           skipindex.NodeMeta // scratch for the last open's record
}

// NewDecoder returns a Decoder positioned at the root node record (after
// the dictionary). The maxValue argument is retained for compatibility
// and ignored: streaming bounds decoder memory unconditionally.
func NewDecoder(src Source, dict *tagdict.Dict, maxValue int) *Decoder {
	universe := skipindex.NewSet(dict.Len())
	for i := 0; i < dict.Len(); i++ {
		universe.Add(tagdict.Code(i))
	}
	_ = maxValue
	return &Decoder{
		src:     src,
		dictLen: dict.Len(),
		parents: []skipindex.Set{universe},
	}
}

// Depth reports the number of currently open elements.
func (d *Decoder) Depth() int { return len(d.hadMeta) }

// Next decodes the next item.
func (d *Decoder) Next() (Item, error) {
	if d.done {
		return Item{Kind: ItemEOF}, nil
	}
	if d.valueRemaining > 0 {
		return d.nextChunk()
	}
	op, err := d.src.ReadByte()
	if err == io.EOF {
		if len(d.hadMeta) != 0 {
			return Item{}, fmt.Errorf("docenc: payload ended with %d open element(s)", len(d.hadMeta))
		}
		d.done = true
		return Item{Kind: ItemEOF}, nil
	}
	if err != nil {
		return Item{}, err
	}
	if len(d.hadMeta) == 0 && op != opOpenMeta && op != opOpenPlain {
		return Item{}, fmt.Errorf("docenc: expected a root element record, got opcode %#x", op)
	}
	switch op {
	case opOpenMeta, opOpenPlain:
		code, err := d.uvarint()
		if err != nil {
			return Item{}, fmt.Errorf("docenc: tag code: %w", err)
		}
		if code >= uint64(d.dictLen) {
			return Item{}, fmt.Errorf("docenc: tag code %d outside the %d-entry dictionary", code, d.dictLen)
		}
		it := Item{Kind: ItemOpen, Code: tagdict.Code(code)}
		if op == opOpenMeta {
			meta, err := d.readMeta()
			if err != nil {
				return Item{}, err
			}
			d.meta = meta
			it.Meta = &d.meta
			d.parents = append(d.parents, meta.Tags)
			d.hadMeta = append(d.hadMeta, true)
		} else {
			d.hadMeta = append(d.hadMeta, false)
		}
		return it, nil
	case opClose:
		if len(d.hadMeta) == 0 {
			return Item{}, fmt.Errorf("docenc: unbalanced close record")
		}
		d.pop()
		return Item{Kind: ItemClose}, nil
	case opValue:
		l, err := d.uvarint()
		if err != nil {
			return Item{}, fmt.Errorf("docenc: value length: %w", err)
		}
		if len(d.hadMeta) == 0 {
			return Item{}, fmt.Errorf("docenc: value outside the root element")
		}
		if l <= InlineValueLimit {
			buf := make([]byte, l)
			if err := d.src.Read(buf); err != nil {
				return Item{}, fmt.Errorf("docenc: value body: %w", err)
			}
			return Item{Kind: ItemValue, Text: string(buf)}, nil
		}
		d.valueRemaining = int(l)
		return Item{Kind: ItemValueStart, Size: int(l)}, nil
	default:
		return Item{}, fmt.Errorf("docenc: unknown opcode %#x at offset %d", op, d.src.Offset()-1)
	}
}

// nextChunk serves the next piece of an in-flight streamed value. A chunk
// consumes only bytes already buffered, so it never needs rollback.
func (d *Decoder) nextChunk() (Item, error) {
	avail := d.src.Avail()
	if avail == 0 {
		// Force the source to say why: more input needed, or truncation.
		if _, err := d.src.ReadByte(); err != nil {
			if err == io.EOF {
				return Item{}, fmt.Errorf("docenc: payload ends inside a value (%d bytes missing)", d.valueRemaining)
			}
			return Item{}, err
		}
		return Item{}, fmt.Errorf("docenc: source reported no available bytes but served one")
	}
	n := d.valueRemaining
	if n > avail {
		n = avail
	}
	if n > ValueChunkSize {
		n = ValueChunkSize
	}
	buf := make([]byte, n)
	if err := d.src.Read(buf); err != nil {
		return Item{}, fmt.Errorf("docenc: value chunk: %w", err)
	}
	d.valueRemaining -= n
	return Item{Kind: ItemValueChunk, Text: string(buf), Last: d.valueRemaining == 0}, nil
}

// SkipValue jumps over the unread remainder of a streamed value (after
// ItemValueStart), as if all its chunks had been read.
func (d *Decoder) SkipValue() error {
	if d.valueRemaining == 0 {
		return fmt.Errorf("docenc: no value in flight to skip")
	}
	if err := d.src.Skip(d.valueRemaining); err != nil {
		return fmt.Errorf("docenc: skipping %d value bytes: %w", d.valueRemaining, err)
	}
	d.valueRemaining = 0
	return nil
}

// SkipContent jumps over the content of the element whose indexed open
// was just returned by Next, leaving the decoder positioned after the
// element, as if it had been read and closed.
func (d *Decoder) SkipContent(meta *skipindex.NodeMeta) error {
	if meta == nil {
		return fmt.Errorf("docenc: cannot skip a node without an index record")
	}
	if err := d.src.Skip(meta.ContentSize); err != nil {
		return fmt.Errorf("docenc: skipping %d bytes: %w", meta.ContentSize, err)
	}
	if len(d.hadMeta) == 0 {
		return fmt.Errorf("docenc: skip with no open element")
	}
	d.pop()
	return nil
}

func (d *Decoder) pop() {
	if d.hadMeta[len(d.hadMeta)-1] {
		d.parents = d.parents[:len(d.parents)-1]
	}
	d.hadMeta = d.hadMeta[:len(d.hadMeta)-1]
}

// readMeta decodes a skip-index record against the innermost parent set.
func (d *Decoder) readMeta() (skipindex.NodeMeta, error) {
	parent := d.parents[len(d.parents)-1]
	bm := make([]byte, skipindex.RelSize(parent))
	if err := d.src.Read(bm); err != nil {
		return skipindex.NodeMeta{}, fmt.Errorf("docenc: index bitmap: %w", err)
	}
	tags, _, err := skipindex.DecodeRel(bm, parent)
	if err != nil {
		return skipindex.NodeMeta{}, err
	}
	size, err := d.uvarint()
	if err != nil {
		return skipindex.NodeMeta{}, fmt.Errorf("docenc: content size: %w", err)
	}
	return skipindex.NodeMeta{Tags: tags, ContentSize: int(size)}, nil
}

func (d *Decoder) uvarint() (uint64, error) {
	var v uint64
	for shift := uint(0); ; shift += 7 {
		if shift >= 64 {
			return 0, fmt.Errorf("varint overflow")
		}
		b, err := d.src.ReadByte()
		if err != nil {
			return 0, err
		}
		v |= uint64(b&0x7F) << shift
		if b < 0x80 {
			return v, nil
		}
	}
}

// BytesSource is an in-memory Source.
type BytesSource struct {
	data []byte
	off  int
}

// NewBytesSource wraps a payload slice.
func NewBytesSource(data []byte) *BytesSource { return &BytesSource{data: data} }

// ReadByte implements Source.
func (s *BytesSource) ReadByte() (byte, error) {
	if s.off >= len(s.data) {
		return 0, io.EOF
	}
	b := s.data[s.off]
	s.off++
	return b, nil
}

// Read implements Source.
func (s *BytesSource) Read(p []byte) error {
	if s.off+len(p) > len(s.data) {
		return io.ErrUnexpectedEOF
	}
	copy(p, s.data[s.off:])
	s.off += len(p)
	return nil
}

// Skip implements Source.
func (s *BytesSource) Skip(n int) error {
	if n < 0 || s.off+n > len(s.data) {
		return fmt.Errorf("docenc: skip of %d bytes at offset %d overruns payload of %d",
			n, s.off, len(s.data))
	}
	s.off += n
	return nil
}

// Offset implements Source.
func (s *BytesSource) Offset() int { return s.off }

// Avail implements Source.
func (s *BytesSource) Avail() int { return len(s.data) - s.off }

// ParsePayload splits a decrypted payload into its dictionary and a
// decoder over the structure stream.
func ParsePayload(payload []byte, maxValue int) (*tagdict.Dict, *Decoder, error) {
	dict, n, err := tagdict.UnmarshalBinary(payload)
	if err != nil {
		return nil, nil, err
	}
	src := NewBytesSource(payload)
	if err := src.Skip(n); err != nil {
		return nil, nil, err
	}
	return dict, NewDecoder(src, dict, maxValue), nil
}

// DecodeDocument decrypts a container entirely and rebuilds the document
// tree: the round-trip check (Encode then DecodeDocument must be the
// identity) and the trusted-terminal baseline both use it.
func DecodeDocument(c *Container, key secure.DocKey) (*xmlstream.Node, error) {
	payload, err := c.DecryptPayload(key)
	if err != nil {
		return nil, err
	}
	dict, dec, err := ParsePayload(payload, 0)
	if err != nil {
		return nil, err
	}
	var stack []*xmlstream.Node
	var root *xmlstream.Node
	var valueBuf []byte
	for {
		it, err := dec.Next()
		if err != nil {
			return nil, err
		}
		switch it.Kind {
		case ItemOpen:
			n := &xmlstream.Node{Name: dict.Name(it.Code)}
			if len(stack) > 0 {
				p := stack[len(stack)-1]
				p.Children = append(p.Children, n)
			} else if root == nil {
				root = n
			} else {
				return nil, fmt.Errorf("docenc: second root in payload")
			}
			stack = append(stack, n)
		case ItemValue:
			if len(stack) == 0 {
				return nil, fmt.Errorf("docenc: value outside root")
			}
			p := stack[len(stack)-1]
			p.Children = append(p.Children, &xmlstream.Node{Text: it.Text})
		case ItemValueStart:
			valueBuf = valueBuf[:0]
		case ItemValueChunk:
			valueBuf = append(valueBuf, it.Text...)
			if it.Last {
				if len(stack) == 0 {
					return nil, fmt.Errorf("docenc: value outside root")
				}
				p := stack[len(stack)-1]
				p.Children = append(p.Children, &xmlstream.Node{Text: string(valueBuf)})
			}
		case ItemClose:
			stack = stack[:len(stack)-1]
		case ItemEOF:
			if root == nil {
				return nil, fmt.Errorf("docenc: empty payload")
			}
			return root, nil
		}
	}
}
