package docenc

import (
	"encoding/binary"
	"fmt"

	"repro/internal/secure"
)

// Header is the cleartext part of a container: the minimum the terminal
// and DSP need to address blocks. It is authenticated with the document
// key, so the SOE detects any tampering with the geometry (shrinking
// PayloadLen would otherwise truncate the document undetected) and with
// the per-block generation vector (rolling one block back to an older
// generation would otherwise replay superseded content undetected).
type Header struct {
	DocID      string
	Version    uint32
	BlockPlain uint32
	PayloadLen uint64
	// GenRuns run-length encodes the per-block encryption generation: the
	// document version under which each block was last (re-)encrypted. An
	// empty slice means every block is at Version — the full-publish case,
	// which costs no header bytes. A delta re-publish re-encrypts only the
	// changed blocks at the new version; the untouched blocks keep their
	// old ciphertext and therefore their old generation, recorded here so
	// the SOE can still authenticate them. Runs must cover exactly
	// NumBlocks() blocks and no generation may exceed Version.
	GenRuns []GenRun
	MAC     [secure.HeaderMACLen]byte
}

// GenRun is one run of consecutive blocks sharing an encryption
// generation.
type GenRun struct {
	Count uint32
	Gen   uint32
}

// BlockGen reports the generation block idx was encrypted under: the
// version argument the SOE must pass to secure.DecryptBlock.
func (h *Header) BlockGen(idx int) uint32 {
	for _, r := range h.GenRuns {
		if idx < int(r.Count) {
			return r.Gen
		}
		idx -= int(r.Count)
	}
	return h.Version
}

// magic identifies the container format.
var magic = [4]byte{'S', 'D', 'S', '2'}

// canonical serializes the MAC'd fields.
func (h *Header) canonical() []byte {
	var b []byte
	b = append(b, magic[:]...)
	b = binary.AppendUvarint(b, uint64(len(h.DocID)))
	b = append(b, h.DocID...)
	b = binary.AppendUvarint(b, uint64(h.Version))
	b = binary.AppendUvarint(b, uint64(h.BlockPlain))
	b = binary.AppendUvarint(b, h.PayloadLen)
	b = binary.AppendUvarint(b, uint64(len(h.GenRuns)))
	for _, r := range h.GenRuns {
		b = binary.AppendUvarint(b, uint64(r.Count))
		b = binary.AppendUvarint(b, uint64(r.Gen))
	}
	return b
}

// MarshalBinary serializes the header (canonical fields + MAC).
func (h *Header) MarshalBinary() ([]byte, error) {
	return append(h.canonical(), h.MAC[:]...), nil
}

// UnmarshalHeader decodes a header and returns the bytes consumed.
func UnmarshalHeader(data []byte) (Header, int, error) {
	var h Header
	if len(data) < 4 || [4]byte(data[:4]) != magic {
		return h, 0, fmt.Errorf("docenc: bad container magic")
	}
	pos := 4
	l, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return h, 0, fmt.Errorf("docenc: truncated header")
	}
	pos += n
	if pos+int(l) > len(data) {
		return h, 0, fmt.Errorf("docenc: truncated doc id")
	}
	h.DocID = string(data[pos : pos+int(l)])
	pos += int(l)
	v, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return h, 0, fmt.Errorf("docenc: truncated version")
	}
	h.Version = uint32(v)
	pos += n
	bp, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return h, 0, fmt.Errorf("docenc: truncated block size")
	}
	h.BlockPlain = uint32(bp)
	pos += n
	pl, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return h, 0, fmt.Errorf("docenc: truncated payload length")
	}
	h.PayloadLen = pl
	pos += n
	if h.BlockPlain == 0 {
		return h, 0, fmt.Errorf("docenc: zero block size")
	}
	nRuns, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return h, 0, fmt.Errorf("docenc: truncated generation runs")
	}
	pos += n
	// A run covers at least one block, so a hostile run count larger than
	// the geometry can be rejected before any allocation.
	if nRuns > uint64(h.NumBlocks()) {
		return h, 0, fmt.Errorf("docenc: %d generation runs exceed the %d-block geometry",
			nRuns, h.NumBlocks())
	}
	var covered uint64
	for i := uint64(0); i < nRuns; i++ {
		count, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return h, 0, fmt.Errorf("docenc: truncated generation run count")
		}
		pos += n
		gen, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return h, 0, fmt.Errorf("docenc: truncated generation")
		}
		pos += n
		if count == 0 || count > uint64(h.NumBlocks()) {
			return h, 0, fmt.Errorf("docenc: generation run of %d blocks outside the geometry", count)
		}
		if gen > uint64(h.Version) {
			return h, 0, fmt.Errorf("docenc: block generation %d ahead of document version %d",
				gen, h.Version)
		}
		covered += count
		h.GenRuns = append(h.GenRuns, GenRun{Count: uint32(count), Gen: uint32(gen)})
	}
	if nRuns > 0 && covered != uint64(h.NumBlocks()) {
		return h, 0, fmt.Errorf("docenc: generation runs cover %d blocks, geometry has %d",
			covered, h.NumBlocks())
	}
	if pos+secure.HeaderMACLen > len(data) {
		return h, 0, fmt.Errorf("docenc: truncated header MAC")
	}
	copy(h.MAC[:], data[pos:pos+secure.HeaderMACLen])
	pos += secure.HeaderMACLen
	return h, pos, nil
}

// Verify checks the header tag against the document key.
func (h *Header) Verify(key secure.DocKey) error {
	return secure.VerifyHeaderMAC(key, h.canonical(), h.MAC)
}

// NumBlocks derives the block count from the geometry.
func (h *Header) NumBlocks() int {
	if h.PayloadLen == 0 {
		return 0
	}
	return int((h.PayloadLen + uint64(h.BlockPlain) - 1) / uint64(h.BlockPlain))
}

// BlockPlainLen reports the plaintext length of block idx under the
// geometry (0 when idx is out of range).
func (h *Header) BlockPlainLen(idx int) int {
	if idx < 0 || idx >= h.NumBlocks() {
		return 0
	}
	rem := h.PayloadLen - uint64(idx)*uint64(h.BlockPlain)
	if rem > uint64(h.BlockPlain) {
		return int(h.BlockPlain)
	}
	return int(rem)
}

// BlockStoredLen reports the stored (ciphertext+tag) length of block idx.
func (h *Header) BlockStoredLen(idx int) int {
	n := h.BlockPlainLen(idx)
	if n == 0 {
		return 0
	}
	return n + secure.MACLen
}

// BlockRange maps a plaintext byte range to the block indexes covering it.
func (h *Header) BlockRange(off, n int) (first, count int) {
	if n <= 0 {
		return 0, 0
	}
	first = off / int(h.BlockPlain)
	last := (off + n - 1) / int(h.BlockPlain)
	return first, last - first + 1
}

// Container is the stored form of a document: header plus one stored
// block (ciphertext||tag) per plaintext block.
type Container struct {
	Header Header
	Blocks [][]byte
}

// StoredSize is the total bytes the DSP keeps for this document.
func (c *Container) StoredSize() int {
	h, _ := c.Header.MarshalBinary()
	total := len(h)
	for _, b := range c.Blocks {
		total += len(b)
	}
	return total
}

// MarshalBinary flattens the container (header, then blocks in order;
// block boundaries are recomputable from the geometry).
func (c *Container) MarshalBinary() ([]byte, error) {
	out, err := c.Header.MarshalBinary()
	if err != nil {
		return nil, err
	}
	if len(c.Blocks) != c.Header.NumBlocks() {
		return nil, fmt.Errorf("docenc: container has %d blocks, geometry says %d",
			len(c.Blocks), c.Header.NumBlocks())
	}
	for _, b := range c.Blocks {
		out = append(out, b...)
	}
	return out, nil
}

// UnmarshalContainer reverses MarshalBinary.
func UnmarshalContainer(data []byte) (*Container, error) {
	h, n, err := UnmarshalHeader(data)
	if err != nil {
		return nil, err
	}
	c := &Container{Header: h}
	rest := data[n:]
	remaining := int(h.PayloadLen)
	for i := 0; i < h.NumBlocks(); i++ {
		plainLen := int(h.BlockPlain)
		if remaining < plainLen {
			plainLen = remaining
		}
		stored := plainLen + secure.MACLen
		if len(rest) < stored {
			return nil, fmt.Errorf("docenc: container truncated at block %d", i)
		}
		c.Blocks = append(c.Blocks, rest[:stored:stored])
		rest = rest[stored:]
		remaining -= plainLen
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("docenc: %d trailing bytes after container", len(rest))
	}
	return c, nil
}

// DecryptPayload verifies and decrypts the full payload (bulk path used
// by tests and by trusted-terminal baselines; the SOE pipeline decrypts
// block by block instead).
func (c *Container) DecryptPayload(key secure.DocKey) ([]byte, error) {
	if err := c.Header.Verify(key); err != nil {
		return nil, err
	}
	sctx, err := secure.NewBlockContext(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, c.Header.PayloadLen)
	for i, blk := range c.Blocks {
		plain, err := sctx.DecryptBlock(c.Header.DocID, c.Header.BlockGen(i), uint32(i), blk)
		if err != nil {
			return nil, err
		}
		out = append(out, plain...)
	}
	if uint64(len(out)) != c.Header.PayloadLen {
		return nil, fmt.Errorf("%w: payload length %d does not match header %d",
			secure.ErrIntegrity, len(out), c.Header.PayloadLen)
	}
	return out, nil
}
