package docenc

import (
	"bytes"
	"testing"

	"repro/internal/secure"
	"repro/internal/workload"
	"repro/internal/xmlstream"
)

// TestStreamingEncoderMatchesSeal: the streaming Encoder must produce a
// container byte-identical to the buffered EncodePayload+Seal pipeline
// (header and every stored block).
func TestStreamingEncoderMatchesSeal(t *testing.T) {
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 5, Patients: 6, VisitsPerPatient: 3})
	opts := EncodeOptions{DocID: "stream", Version: 3, Key: secure.KeyFromSeed("k"), MinSkipBytes: 24}

	payload, pInfo, err := EncodePayload(doc, opts)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := Seal(payload, opts)
	if err != nil {
		t.Fatal(err)
	}

	streamed, sInfo, err := Encode(doc, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sealed.Header.MarshalBinary()
	b, _ := streamed.Header.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatalf("streamed header differs from sealed header")
	}
	if len(streamed.Blocks) != len(sealed.Blocks) {
		t.Fatalf("streamed %d blocks, sealed %d", len(streamed.Blocks), len(sealed.Blocks))
	}
	for i := range sealed.Blocks {
		if !bytes.Equal(streamed.Blocks[i], sealed.Blocks[i]) {
			t.Fatalf("block %d differs between streamed and sealed encodings", i)
		}
	}
	if sInfo.PayloadBytes != pInfo.PayloadBytes || sInfo.IndexBytes != pInfo.IndexBytes ||
		sInfo.IndexedNodes != pInfo.IndexedNodes || sInfo.TextBytes != pInfo.TextBytes {
		t.Fatalf("info mismatch: streamed %+v, buffered %+v", sInfo, pInfo)
	}
}

// TestEncoderBlocksArriveInOrder: Run hands blocks out sequentially and
// exactly as many as the header geometry announces.
func TestEncoderBlocksArriveInOrder(t *testing.T) {
	doc := workload.Agenda(workload.AgendaConfig{Seed: 8, Members: 5, EventsPerMember: 4})
	enc, err := NewEncoder(doc, EncodeOptions{DocID: "ord", Key: secure.KeyFromSeed("k")})
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	if err := enc.Run(func(idx int, stored []byte) error {
		if idx != next {
			t.Fatalf("block %d arrived, want %d", idx, next)
		}
		next++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if next != enc.NumBlocks() {
		t.Fatalf("emitted %d blocks, header says %d", next, enc.NumBlocks())
	}
	if err := enc.Run(func(int, []byte) error { return nil }); err == nil {
		t.Fatal("second Run accepted")
	}
}

// mutateValues rewrites a fraction of the document's text nodes in place
// (same length, different bytes) and returns the mutated copy.
func mutateValues(t *testing.T, root *xmlstream.Node, every int) *xmlstream.Node {
	t.Helper()
	cp := cloneTree(root)
	n := 0
	var walk func(*xmlstream.Node)
	walk = func(x *xmlstream.Node) {
		for _, c := range x.Children {
			if c.IsText() {
				if n++; n%every == 0 && len(c.Text) > 0 {
					b := []byte(c.Text)
					for i := range b {
						b[i] = 'a' + (b[i]+13)%26
					}
					c.Text = string(b)
				}
				continue
			}
			walk(c)
		}
	}
	walk(cp)
	return cp
}

func cloneTree(n *xmlstream.Node) *xmlstream.Node {
	cp := &xmlstream.Node{Name: n.Name, Text: n.Text}
	for _, c := range n.Children {
		cp.Children = append(cp.Children, cloneTree(c))
	}
	return cp
}

// TestDiffEncodeDelta: the delta applied to the old container must equal
// a decode of the new tree, reuse unchanged ciphertext, and keep every
// block authenticating under its recorded generation.
func TestDiffEncodeDelta(t *testing.T) {
	key := secure.KeyFromSeed("delta")
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 77, Patients: 10, VisitsPerPatient: 3})
	opts := EncodeOptions{DocID: "d", Key: key, BlockPlain: 128, MinSkipBytes: 32}
	old, _, err := Encode(doc, opts)
	if err != nil {
		t.Fatal(err)
	}

	mutated := mutateValues(t, doc, 20)
	delta, _, err := DiffEncode(mutated, opts, old)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Header.Version != old.Header.Version+1 {
		t.Fatalf("delta version %d, want %d", delta.Header.Version, old.Header.Version+1)
	}
	if delta.ChangedBlocks == 0 || delta.ChangedBlocks == delta.TotalBlocks {
		t.Fatalf("degenerate delta: %d/%d blocks changed", delta.ChangedBlocks, delta.TotalBlocks)
	}

	applied, err := delta.Apply(old)
	if err != nil {
		t.Fatal(err)
	}
	// Unchanged blocks must be the old ciphertext, byte for byte.
	changed := make(map[int]bool)
	for _, r := range delta.ChangedRuns() {
		for i := 0; i < r.Count; i++ {
			changed[r.Start+i] = true
		}
	}
	for i := range applied.Blocks {
		if i < len(old.Blocks) && !changed[i] && !bytes.Equal(applied.Blocks[i], old.Blocks[i]) {
			t.Fatalf("unchanged block %d was rewritten", i)
		}
	}
	// The applied container must decode to exactly the mutated tree, and
	// a full republication of the same tree must decode identically.
	gotDelta, err := DecodeDocument(applied, key)
	if err != nil {
		t.Fatal(err)
	}
	fullOpts := opts
	fullOpts.Version = old.Header.Version + 1
	full, _, err := Encode(mutated, fullOpts)
	if err != nil {
		t.Fatal(err)
	}
	gotFull, err := DecodeDocument(full, key)
	if err != nil {
		t.Fatal(err)
	}
	xa, _ := xmlstream.Serialize(gotDelta.Events(), xmlstream.WriterOptions{})
	xb, _ := xmlstream.Serialize(gotFull.Events(), xmlstream.WriterOptions{})
	if xa != xb {
		t.Fatal("delta re-publish decodes differently from full re-publish")
	}
}

// TestDiffEncodeIdentical: a delta of an unchanged tree uploads nothing.
func TestDiffEncodeIdentical(t *testing.T) {
	key := secure.KeyFromSeed("same")
	doc := workload.Agenda(workload.AgendaConfig{Seed: 2, Members: 4, EventsPerMember: 3})
	opts := EncodeOptions{DocID: "same", Key: key}
	old, _, err := Encode(doc, opts)
	if err != nil {
		t.Fatal(err)
	}
	delta, _, err := DiffEncode(doc, opts, old)
	if err != nil {
		t.Fatal(err)
	}
	if delta.ChangedBlocks != 0 || len(delta.Runs) != 0 {
		t.Fatalf("identical tree produced %d changed blocks", delta.ChangedBlocks)
	}
	applied, err := delta.Apply(old)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDocument(applied, key); err != nil {
		t.Fatalf("version-bumped container stopped decoding: %v", err)
	}
}

// TestDiffEncodeGrowAndShrink: geometry changes (payload longer or
// shorter) still apply cleanly and decode to the new tree.
func TestDiffEncodeGrowAndShrink(t *testing.T) {
	key := secure.KeyFromSeed("grow")
	opts := EncodeOptions{DocID: "g", Key: key, BlockPlain: 64, MinSkipBytes: 32}
	small := workload.Agenda(workload.AgendaConfig{Seed: 3, Members: 3, EventsPerMember: 2})
	big := workload.Agenda(workload.AgendaConfig{Seed: 3, Members: 6, EventsPerMember: 4})

	for _, tc := range []struct {
		name     string
		from, to *xmlstream.Node
	}{{"grow", small, big}, {"shrink", big, small}} {
		old, _, err := Encode(tc.from, opts)
		if err != nil {
			t.Fatal(err)
		}
		delta, _, err := DiffEncode(tc.to, opts, old)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		applied, err := delta.Apply(old)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got, err := DecodeDocument(applied, key)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, _ := xmlstream.Serialize(tc.to.Events(), xmlstream.WriterOptions{})
		have, _ := xmlstream.Serialize(got.Events(), xmlstream.WriterOptions{})
		if want != have {
			t.Fatalf("%s: applied delta decodes to the wrong tree", tc.name)
		}
	}
}

// TestGenRunsHeaderRoundTrip: a header with generation runs survives
// MarshalBinary/UnmarshalHeader and keeps its MAC.
func TestGenRunsHeaderRoundTrip(t *testing.T) {
	key := secure.KeyFromSeed("hdr")
	h := Header{DocID: "x", Version: 7, BlockPlain: 128, PayloadLen: 1000,
		GenRuns: []GenRun{{Count: 3, Gen: 2}, {Count: 4, Gen: 7}, {Count: 1, Gen: 5}}}
	h.MAC = secure.HeaderMAC(key, h.canonical())
	img, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, n, err := UnmarshalHeader(img)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(img) {
		t.Fatalf("consumed %d of %d header bytes", n, len(img))
	}
	if err := back.Verify(key); err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint32{2, 2, 2, 7, 7, 7, 7, 5} {
		if got := back.BlockGen(i); got != want {
			t.Fatalf("BlockGen(%d) = %d, want %d", i, got, want)
		}
	}
	// Rolling one run's generation back must break the MAC.
	tampered := back
	tampered.GenRuns = append([]GenRun(nil), back.GenRuns...)
	tampered.GenRuns[1].Gen = 2
	if err := tampered.Verify(key); err == nil {
		t.Fatal("generation rollback passed header authentication")
	}
}

// TestDiffBlocks: the run coalescing over raw payloads.
func TestDiffBlocks(t *testing.T) {
	old := bytes.Repeat([]byte{'o'}, 10*16)
	niu := append([]byte(nil), old...)
	niu[0] ^= 1          // block 0
	niu[16*3+5] ^= 1     // block 3
	niu[16*4] ^= 1       // block 4 (coalesces with 3)
	niu = niu[:10*16-20] // drops into block 8; block 9 disappears
	runs := DiffBlocks(old, niu, 16)
	want := []BlockRun{{0, 1}, {3, 2}, {8, 1}}
	if len(runs) != len(want) {
		t.Fatalf("runs %+v, want %+v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("runs %+v, want %+v", runs, want)
		}
	}
}
