package core

import (
	"fmt"

	"repro/internal/accessrule"
	"repro/internal/mem"
	"repro/internal/tagdict"
	"repro/internal/xmlstream"
	"repro/internal/xpath"
)

// Filter runs the streaming evaluator over an in-memory event stream and
// returns the authorized view — the paper's engine used as a plain
// library, without encryption or card simulation. It is also the
// reference integration point for property tests (its result must equal
// accessrule.ApplyTreeQuery on every input).
//
// A nil query delivers the entire authorized view. The returned tree is
// nil when nothing is visible.
func Filter(evs []xmlstream.Event, rules *accessrule.RuleSet, query *xpath.Path) (*xmlstream.Node, Stats, error) {
	return FilterGauge(evs, rules, query, mem.Nop{})
}

// FilterGauge is Filter with explicit secure-memory accounting, used by
// the memory-footprint experiments.
func FilterGauge(evs []xmlstream.Event, rules *accessrule.RuleSet, query *xpath.Path, gauge mem.Gauge) (*xmlstream.Node, Stats, error) {
	dict, err := DictFromEvents(evs)
	if err != nil {
		return nil, Stats{}, err
	}
	asm := NewAssembler(dict)
	ev, err := NewEvaluator(Config{
		Rules:   rules,
		Query:   query,
		Dict:    dict,
		Emitter: asm,
		Gauge:   gauge,
	})
	if err != nil {
		return nil, Stats{}, err
	}
	for i, e := range evs {
		switch e.Kind {
		case xmlstream.Open:
			// No skip index on a raw event stream: meta is nil.
			if _, err := ev.Open(dict.Code(e.Name), nil); err != nil {
				return nil, ev.Stats(), fmt.Errorf("core: event %d: %w", i, err)
			}
		case xmlstream.Value:
			if err := ev.Value(e.Text); err != nil {
				return nil, ev.Stats(), fmt.Errorf("core: event %d: %w", i, err)
			}
		case xmlstream.Close:
			if err := ev.Close(); err != nil {
				return nil, ev.Stats(), fmt.Errorf("core: event %d: %w", i, err)
			}
		}
	}
	if err := ev.Finish(); err != nil {
		return nil, ev.Stats(), err
	}
	tree, err := asm.Result()
	return tree, ev.Stats(), err
}

// DictFromEvents builds a frequency-ordered tag dictionary from an event
// stream (the encoder does the same on the publishing side).
func DictFromEvents(evs []xmlstream.Event) (*tagdict.Dict, error) {
	stats := xmlstream.CollectStats(evs)
	return tagdict.FromCounts(stats.TagCounts)
}
