package core

import (
	"fmt"

	"repro/internal/accessrule"
	"repro/internal/automaton"
	"repro/internal/mem"
	"repro/internal/skipindex"
	"repro/internal/tagdict"
	"repro/internal/xpath"
)

// Config assembles an Evaluator.
type Config struct {
	// Rules is the subject's rule set. Required.
	Rules *accessrule.RuleSet
	// Query optionally restricts delivery to matching subtrees (pull
	// mode). Nil delivers the whole authorized view (push mode).
	Query *xpath.Path
	// Dict is the document's tag dictionary. Required.
	Dict *tagdict.Dict
	// Emitter receives the output protocol. Required.
	Emitter Emitter
	// Gauge charges secure working memory; nil disables accounting.
	Gauge mem.Gauge
	// DisableSkip turns the skip index off (ablation; also the forced
	// behaviour on documents encoded without index records).
	DisableSkip bool
	// DisableCopy turns the copy-through fast path off (ablation).
	DisableCopy bool
}

// entry is one active NFA state instance on the token stack.
type entry struct {
	// m indexes the evaluator's machine table.
	m uint16
	// s is the active state.
	s automaton.StateID
	// tok is the predicate-instance token this entry feeds; 0 for
	// navigational-chain entries.
	tok TokenID
	// cond are the unresolved tokens this partial match is conditioned
	// on (predicates anchored along its path).
	cond []TokenID
}

// entryMem is the logical secure-memory charge of an entry (machine id,
// state id, token) plus 4 bytes per condition token.
const entryMem = 8

// frame is the per-open-element record of the paper's stacks: the active
// state set (token stack level), the node's decision (sign stack level),
// its query status, its output routing and the predicate instances
// anchored at it.
type frame struct {
	entries  []entry
	code     tagdict.Code
	ac       *decision
	q        *qmatch
	group    *outGroup
	mode     Mode
	anchored []TokenID
	memBytes int
	// attrPhase is true until the node's first non-attribute event.
	// Attribute pseudo-elements precede all other content (the SAX model
	// delivers attributes with the opening tag), so when the phase ends,
	// predicate chains that can only advance through this node's own
	// attributes are dead and their tokens can fail early.
	attrPhase bool
}

// frameMem is the logical base charge of a frame.
const frameMem = 16

// Evaluator is the streaming access-control engine. Feed it the document
// event stream via Open/Value/Close; it pushes the authorized output to
// the configured Emitter and returns skip instructions when the skip
// index proves a subtree irrelevant.
type Evaluator struct {
	machines    []*automaton.Machine
	signs       []accessrule.Sign
	queryIdx    int // index into machines, -1 when no query
	defaultSign accessrule.Sign

	attrMask skipindex.Set
	emit     Emitter
	gauge    mem.Gauge
	res      *resolver

	frames   []frame
	groupSeq GroupID

	// copyDepth > 0 means the evaluator is inside a copy-through region:
	// a definitively authorized, query-covered subtree where no automaton
	// can fire; events pass through without NFA work or frame growth.
	copyDepth int

	skipEnabled bool
	copyEnabled bool

	entriesLive int
	tokensFreed int
	stats       Stats
	finished    bool
	emitErr     error
}

// NewEvaluator compiles the rules (and query) against the dictionary and
// returns a ready evaluator. Compilation is the session-start work the
// SOE performs once per (document, subject) pair; its memory cost is
// charged to the gauge.
func NewEvaluator(cfg Config) (*Evaluator, error) {
	if cfg.Rules == nil {
		return nil, fmt.Errorf("core: Config.Rules is required")
	}
	if cfg.Dict == nil {
		return nil, fmt.Errorf("core: Config.Dict is required")
	}
	if cfg.Emitter == nil {
		return nil, fmt.Errorf("core: Config.Emitter is required")
	}
	if err := cfg.Rules.Validate(); err != nil {
		return nil, err
	}
	gauge := cfg.Gauge
	if gauge == nil {
		gauge = mem.Nop{}
	}

	e := &Evaluator{
		queryIdx:    -1,
		defaultSign: cfg.Rules.DefaultSign,
		emit:        cfg.Emitter,
		gauge:       gauge,
		res:         newResolver(),
		skipEnabled: !cfg.DisableSkip,
		copyEnabled: !cfg.DisableCopy,
	}

	for _, r := range cfg.Rules.Rules {
		m, err := automaton.Compile(r.Object, cfg.Dict)
		if err != nil {
			return nil, fmt.Errorf("core: rule %q: %w", r.ID, err)
		}
		e.machines = append(e.machines, m)
		e.signs = append(e.signs, r.Sign)
	}
	if cfg.Query != nil {
		m, err := automaton.Compile(cfg.Query, cfg.Dict)
		if err != nil {
			return nil, fmt.Errorf("core: query: %w", err)
		}
		e.queryIdx = len(e.machines)
		e.machines = append(e.machines, m)
		e.signs = append(e.signs, accessrule.Permit)
	}

	for _, m := range e.machines {
		if err := gauge.Alloc(m.MemBytes()); err != nil {
			return nil, fmt.Errorf("core: loading automata: %w", err)
		}
	}

	e.attrMask = skipindex.NewSet(cfg.Dict.Len())
	for i, name := range cfg.Dict.Names() {
		if len(name) > 0 && name[0] == '@' {
			e.attrMask.Add(tagdict.Code(i))
		}
	}
	if err := gauge.Alloc(e.attrMask.MemBytes()); err != nil {
		return nil, fmt.Errorf("core: attribute mask: %w", err)
	}

	// Frame 0: the virtual document node. Its decision is the set's
	// default sign; its query status is "in" when there is no query.
	root := frame{
		ac:   &decision{definite: true, sign: e.defaultSign},
		q:    qIn,
		mode: ModeStructure,
	}
	if e.queryIdx >= 0 {
		root.q = qOut
	}
	for mi := range e.machines {
		root.entries = append(root.entries, entry{m: uint16(mi), s: 0})
	}
	root.memBytes = frameMem + entryMem*len(root.entries)
	if err := gauge.Alloc(root.memBytes); err != nil {
		return nil, fmt.Errorf("core: root frame: %w", err)
	}
	e.entriesLive = len(root.entries)
	e.frames = append(e.frames, root)
	return e, nil
}

// instanceRec is a rule instance fired at the current node.
type instanceRec struct {
	sign accessrule.Sign
	cond []TokenID
}

// Open processes an opening tag. meta, when non-nil, is the node's skip
// index record. The returned skip count is nonzero when the evaluator
// decided to skip the node's content: the caller must advance the encoded
// stream by that many bytes and must NOT report the node's Close (the
// evaluator has already retired the node).
func (e *Evaluator) Open(code tagdict.Code, meta *skipindex.NodeMeta) (skip int, err error) {
	if e.finished {
		return 0, fmt.Errorf("core: Open after Finish")
	}
	if e.emitErr != nil {
		return 0, e.emitErr
	}
	e.stats.Opens++
	if e.copyDepth > 0 {
		e.copyDepth++
		e.stats.CopiedEvents++
		e.stats.EmittedOpens++
		return 0, e.emit.EmitOpen(code, ModeDeliver, 0)
	}

	top := &e.frames[len(e.frames)-1]
	if !e.attrMask.Has(code) {
		e.endAttrPhase(top)
	}
	nf := frame{code: code, attrPhase: true}
	var direct []instanceRec
	var queryFired [][]TokenID
	var sawQueryDef bool

	for i := range top.entries {
		en := &top.entries[i]
		st := &e.machines[en.m].States[en.s]
		if en.tok != 0 && e.res.tokenResolved(en.tok) {
			continue // settled predicate instance: chain is dead weight
		}
		if st.SelfLoop {
			nf.entries = append(nf.entries, *en)
			if en.tok != 0 {
				e.res.entryAdded(en.tok)
			}
		}
		for ti := range st.Trans {
			tr := &st.Trans[ti]
			e.stats.TransitionsScanned++
			if !e.transMatches(tr, code) {
				continue
			}
			e.stats.TransitionsTaken++
			tstate := &e.machines[en.m].States[tr.Target]
			cond := en.cond
			if len(tstate.StartPreds) > 0 {
				cond = append(make([]TokenID, 0, len(en.cond)+len(tstate.StartPreds)), en.cond...)
				for _, ps := range tstate.StartPreds {
					t := e.newToken()
					nf.anchored = append(nf.anchored, t)
					cond = append(cond, t)
					nf.entries = append(nf.entries, entry{m: en.m, s: ps.Start, tok: t})
					e.res.entryAdded(t)
				}
			}
			if tstate.NavFinal {
				if int(en.m) == e.queryIdx {
					if len(cond) == 0 {
						sawQueryDef = true
					} else {
						queryFired = append(queryFired, cond)
					}
				} else {
					direct = append(direct, instanceRec{sign: e.signs[en.m], cond: cond})
				}
			}
			if tstate.PredFinal >= 0 && tstate.Cmp == xpath.Exists {
				e.res.satisfy(en.tok, cond)
			}
			// Keep the target active only if it can still do something:
			// transition further, survive descents, or await a Value.
			if len(tstate.Trans) > 0 || tstate.SelfLoop ||
				(tstate.PredFinal >= 0 && tstate.Cmp != xpath.Exists) {
				nf.entries = append(nf.entries, entry{m: en.m, s: tr.Target, tok: en.tok, cond: cond})
				if en.tok != 0 {
					e.res.entryAdded(en.tok)
				}
			}
		}
	}

	// Rule suspension (Section 2.3: the index detects "rules and queries
	// that cannot apply inside a given subtree", and rules "may be
	// inhibited [...] thereby optimizations such as suspending
	// evaluations of rules can be devised"): every entry of the new frame
	// only ever sees events of this node's subtree, so an entry whose
	// remaining chain needs tags the subtree lacks is dead — drop it.
	// Predicate instances losing their last entry fail right here, which
	// is what settles decisions early enough to skip whole subtrees.
	if e.skipEnabled && meta != nil {
		e.cullDead(&nf, meta)
	}

	nf.ac = e.decideNode(top, direct)
	nf.q = e.decideQuery(top, queryFired, sawQueryDef)
	nf.mode, nf.group = e.routeNode(top, nf.ac, nf.q)

	// Skip decision (Section 2.3: "skip this subtree if it turns out to
	// be forbidden or irrelevant wrt the query"). Two sound cases:
	//
	//   - definite denial: skippable unless a positive rule could fire
	//     inside (most-specific re-grant) or a predicate instance could
	//     progress inside;
	//   - definitely outside the query: nothing inside can ever be
	//     delivered, so only the query's own automaton (a match would
	//     cover descendants) or predicate progress can block the skip.
	if e.skipEnabled && meta != nil {
		skippable := false
		switch {
		case nf.ac.definite && nf.ac.sign == accessrule.Deny:
			skippable = e.canPrune(nf.entries, meta, func(m int) bool {
				return m != e.queryIdx && e.signs[m] == accessrule.Permit
			})
		case nf.q.definite && !nf.q.in:
			skippable = e.canPrune(nf.entries, meta, func(m int) bool {
				return m == e.queryIdx
			})
		}
		if skippable {
			for i := range nf.entries {
				if t := nf.entries[i].tok; t != 0 {
					e.res.entryRemoved(t)
				}
			}
			for _, t := range nf.anchored {
				e.res.fail(t)
			}
			e.settle()
			e.stats.SkippedSubtrees++
			e.stats.SkippedBytes += int64(meta.ContentSize)
			return meta.ContentSize, nil
		}
	}

	nf.memBytes = frameMem + 4*len(nf.anchored)
	for i := range nf.entries {
		nf.memBytes += entryMem + 4*len(nf.entries[i].cond)
	}
	if err := e.gauge.Alloc(nf.memBytes); err != nil {
		return 0, fmt.Errorf("core: depth %d: %w", len(e.frames), err)
	}
	e.entriesLive += len(nf.entries)
	if e.entriesLive > e.stats.EntriesPeak {
		e.stats.EntriesPeak = e.entriesLive
	}
	e.frames = append(e.frames, nf)
	if d := len(e.frames) - 1; d > e.stats.MaxDepth {
		e.stats.MaxDepth = d
	}

	e.settle()
	var groupID GroupID
	if nf.group != nil {
		groupID = nf.group.id
	}
	e.stats.EmittedOpens++
	if err := e.emit.EmitOpen(code, nf.mode, groupID); err != nil {
		return 0, err
	}

	// Copy-through: inside a definitively delivered region where neither
	// a negative rule nor a predicate chain can fire, the automata are
	// idle; forward events directly.
	if e.copyEnabled && meta != nil && nf.mode == ModeDeliver &&
		e.canPrune(e.frames[len(e.frames)-1].entries, meta, func(m int) bool {
			return m != e.queryIdx && e.signs[m] == accessrule.Deny
		}) {
		e.copyDepth = 1
	}
	return 0, nil
}

// Value processes a text event.
func (e *Evaluator) Value(text string) error {
	if e.finished {
		return fmt.Errorf("core: Value after Finish")
	}
	e.stats.Values++
	if e.copyDepth > 0 {
		e.stats.CopiedEvents++
		e.stats.CopiedBytes += int64(len(text))
		e.stats.EmittedValues++
		return e.emit.EmitValue(text, ModeDeliver, 0)
	}
	if len(e.frames) <= 1 {
		return fmt.Errorf("core: Value outside the document root")
	}
	top := &e.frames[len(e.frames)-1]
	e.endAttrPhase(top)

	touched := false
	for i := range top.entries {
		en := &top.entries[i]
		st := &e.machines[en.m].States[en.s]
		if st.PredFinal < 0 || st.Cmp == xpath.Exists {
			continue
		}
		if en.tok == 0 || e.res.tokenResolved(en.tok) {
			continue
		}
		match := false
		switch st.Cmp {
		case xpath.Eq:
			match = text == st.CmpValue
		case xpath.Neq:
			match = text != st.CmpValue
		}
		if match {
			e.res.satisfy(en.tok, en.cond)
			touched = true
		}
	}
	if touched {
		e.settle()
	}

	switch top.mode {
	case ModeDeliver:
		e.stats.EmittedValues++
		return e.emit.EmitValue(text, ModeDeliver, 0)
	case ModePending:
		e.stats.EmittedValues++
		return e.emit.EmitValue(text, ModePending, top.group.id)
	default:
		return nil // structural nodes never deliver text
	}
}

// CanChunkValues reports whether the current node's text may be delivered
// in arbitrary pieces (multiple Value calls) without changing semantics.
// It is false only while an unresolved value comparison is active in the
// current frame — splitting text would break the equality test; in every
// other state text only flows to the output, where adjacent pieces are
// indistinguishable from one node. This is what lets the SOE forward
// values larger than its working memory.
func (e *Evaluator) CanChunkValues() bool {
	if e.copyDepth > 0 {
		return true
	}
	if len(e.frames) <= 1 {
		return true
	}
	top := &e.frames[len(e.frames)-1]
	for i := range top.entries {
		en := &top.entries[i]
		st := &e.machines[en.m].States[en.s]
		if st.PredFinal >= 0 && st.Cmp != xpath.Exists &&
			en.tok != 0 && !e.res.tokenResolved(en.tok) {
			return false
		}
	}
	return true
}

// NeedsValues reports whether the current node's text matters at all:
// either it will be emitted (delivered or pending), or an unresolved
// comparison must inspect it. When false, the SOE may skip value bytes
// outright — neither transferring nor decrypting them — because
// structural nodes never deliver text.
func (e *Evaluator) NeedsValues() bool {
	if e.copyDepth > 0 {
		return true
	}
	if len(e.frames) <= 1 {
		return true
	}
	top := &e.frames[len(e.frames)-1]
	if top.mode != ModeStructure {
		return true
	}
	for i := range top.entries {
		en := &top.entries[i]
		st := &e.machines[en.m].States[en.s]
		if st.PredFinal >= 0 && st.Cmp != xpath.Exists &&
			en.tok != 0 && !e.res.tokenResolved(en.tok) {
			return true
		}
	}
	return false
}

// SkipValue records a value suppressed without inspection (the caller
// skipped its bytes in the encoded stream).
func (e *Evaluator) SkipValue(n int) {
	e.stats.Values++
	e.stats.ValueBytesSkipped += int64(n)
}

// Close processes a closing tag.
func (e *Evaluator) Close() error {
	if e.finished {
		return fmt.Errorf("core: Close after Finish")
	}
	e.stats.Closes++
	if e.copyDepth > 1 {
		e.copyDepth--
		e.stats.CopiedEvents++
		e.stats.EmittedCloses++
		return e.emit.EmitClose(ModeDeliver, 0)
	}
	e.copyDepth = 0
	if len(e.frames) <= 1 {
		return fmt.Errorf("core: unbalanced Close")
	}
	top := &e.frames[len(e.frames)-1]

	var groupID GroupID
	if top.group != nil {
		groupID = top.group.id
	}
	e.stats.EmittedCloses++
	if err := e.emit.EmitClose(top.mode, groupID); err != nil {
		return err
	}

	// The node is over: predicates anchored here that never completed
	// have definitively failed, and its entries go out of scope.
	for _, t := range top.anchored {
		e.res.fail(t)
	}
	for i := range top.entries {
		if t := top.entries[i].tok; t != 0 {
			e.res.entryRemoved(t)
		}
	}
	e.entriesLive -= len(top.entries)
	e.gauge.Free(top.memBytes)
	e.frames = e.frames[:len(e.frames)-1]
	e.settle()
	return nil
}

// Finish verifies the stream ended balanced with every pending group
// resolved, and releases session memory.
func (e *Evaluator) Finish() error {
	if e.finished {
		return nil
	}
	if e.emitErr != nil {
		return e.emitErr
	}
	if len(e.frames) != 1 {
		return fmt.Errorf("core: document ended with %d open element(s)", len(e.frames)-1)
	}
	e.settle()
	if e.emitErr != nil {
		return e.emitErr
	}
	if err := e.res.checkAllResolved(); err != nil {
		return err
	}
	e.finished = true
	return nil
}

// Stats returns the work counters accumulated so far.
func (e *Evaluator) Stats() Stats { return e.stats }

// decideNode computes the node's authorization decision from the direct
// rule instances and the parent decision, implementing both conflict
// resolution policies (see the decision type).
func (e *Evaluator) decideNode(parent *frame, direct []instanceRec) *decision {
	if len(direct) == 0 {
		return parent.ac
	}
	var negC, posC [][]TokenID
	defPos := false
	for _, in := range direct {
		if in.sign == accessrule.Deny {
			if len(in.cond) == 0 {
				return &decision{definite: true, sign: accessrule.Deny}
			}
			negC = append(negC, in.cond)
		} else {
			if len(in.cond) == 0 {
				defPos = true
			} else {
				posC = append(posC, in.cond)
			}
		}
	}
	if len(negC) == 0 && defPos {
		return &decision{definite: true, sign: accessrule.Permit}
	}
	if defPos {
		posC = append(posC, nil) // an always-true positive candidate
	}
	d := &decision{negCands: negC, posCands: posC, parent: parent.ac}
	if sign, ok := e.res.evalDecision(d); ok {
		return &decision{definite: true, sign: sign}
	}
	e.res.pendingDecisions = append(e.res.pendingDecisions, d)
	_ = e.gauge.Alloc(decisionMem) // budget failures surface on frames
	return d
}

// decideQuery computes the node's query-match status.
func (e *Evaluator) decideQuery(parent *frame, fired [][]TokenID, def bool) *qmatch {
	if e.queryIdx < 0 {
		return qIn
	}
	if parent.q.definite && parent.q.in {
		return qIn
	}
	if def {
		return qIn
	}
	if len(fired) == 0 {
		return parent.q
	}
	q := &qmatch{cands: fired, parent: parent.q}
	if in, ok := e.res.evalQMatch(q); ok {
		if in {
			return qIn
		}
		return qOut
	}
	e.res.pendingQMatches = append(e.res.pendingQMatches, q)
	_ = e.gauge.Alloc(decisionMem)
	return q
}

// routeNode derives the node's output mode and pending group.
func (e *Evaluator) routeNode(parent *frame, ac *decision, q *qmatch) (Mode, *outGroup) {
	switch {
	case ac.definite && ac.sign == accessrule.Deny:
		return ModeStructure, nil
	case ac.definite && ac.sign == accessrule.Permit:
		if q.definite {
			if q.in {
				return ModeDeliver, nil
			}
			return ModeStructure, nil
		}
	default:
		if q.definite && !q.in {
			return ModeStructure, nil
		}
	}
	// Pending: share the parent's group when the context is unchanged.
	if parent.mode == ModePending && parent.ac == ac && parent.q == q {
		return ModePending, parent.group
	}
	e.groupSeq++
	g := &outGroup{id: e.groupSeq, ac: ac, q: q}
	e.res.pendingGroups = append(e.res.pendingGroups, g)
	e.stats.GroupsCreated++
	_ = e.gauge.Alloc(groupMem)
	return ModePending, g
}

// canPrune reports whether, given the subtree's tag set, no automaton can
// make relevant progress inside it. navBlocks selects which machines'
// navigational completions are relevant: positive rules when skipping
// under a denial, the query when skipping outside the query, negative
// rules when entering copy-through. Unresolved predicate chains always
// block (their resolution can affect pending decisions anywhere), as do
// unresolved value comparisons (the index says nothing about text).
func (e *Evaluator) canPrune(entries []entry, meta *skipindex.NodeMeta, navBlocks func(machine int) bool) bool {
	for i := range entries {
		en := &entries[i]
		st := &e.machines[en.m].States[en.s]
		if en.tok != 0 {
			if e.res.tokenResolved(en.tok) {
				continue // settled instance, chain inert
			}
			// An unresolved comparison awaits a Value event, which the
			// index cannot rule out.
			if st.PredFinal >= 0 && st.Cmp != xpath.Exists {
				return false
			}
		}
		for ti := range st.Trans {
			req := st.FireReqs[ti]
			if !req.Possible || !req.Codes.SubsetOf(meta.Tags) {
				continue
			}
			if en.tok != 0 {
				return false // a predicate chain could complete inside
			}
			if navBlocks(int(en.m)) {
				return false
			}
		}
	}
	return true
}

// cullDead removes new-frame entries that cannot make any progress within
// the subtree described by meta. An entry is alive if it awaits a value
// comparison, or if some transition's completion requirement is satisfied
// by the subtree's tag set.
func (e *Evaluator) cullDead(nf *frame, meta *skipindex.NodeMeta) {
	kept := nf.entries[:0]
	changed := false
	for i := range nf.entries {
		en := nf.entries[i]
		st := &e.machines[en.m].States[en.s]
		alive := false
		if st.PredFinal >= 0 && st.Cmp != xpath.Exists &&
			en.tok != 0 && !e.res.tokenResolved(en.tok) {
			alive = true
		}
		if !alive {
			for ti := range st.FireReqs {
				req := &st.FireReqs[ti]
				if req.Possible && req.Codes.SubsetOf(meta.Tags) {
					alive = true
					break
				}
			}
		}
		if alive {
			kept = append(kept, en)
			continue
		}
		e.stats.EntriesSuspended++
		if en.tok != 0 {
			e.res.entryRemoved(en.tok)
			changed = true
		}
	}
	nf.entries = kept
	if changed {
		e.settle()
	}
}

// endAttrPhase closes a frame's attribute phase: predicate-chain entries
// that can only advance through this node's own attributes are culled,
// possibly failing their tokens early (see token.live).
func (e *Evaluator) endAttrPhase(f *frame) {
	if !f.attrPhase {
		return
	}
	f.attrPhase = false
	removed := 0
	kept := f.entries[:0]
	for i := range f.entries {
		en := f.entries[i]
		if en.tok != 0 && !e.res.tokenResolved(en.tok) && e.attrBound(&en) {
			removed += entryMem + 4*len(en.cond)
			e.res.entryRemoved(en.tok)
			continue
		}
		kept = append(kept, en)
	}
	if removed == 0 {
		return
	}
	e.entriesLive -= len(f.entries) - len(kept)
	f.entries = kept
	f.memBytes -= removed
	e.gauge.Free(removed)
	e.settle()
}

// attrBound reports whether the entry's state can only progress through
// attribute opens of the current node (no self-loop, no pending value
// comparison, and every transition tests an attribute or nothing).
func (e *Evaluator) attrBound(en *entry) bool {
	st := &e.machines[en.m].States[en.s]
	if st.SelfLoop || len(st.Trans) == 0 {
		return false
	}
	if st.PredFinal >= 0 && st.Cmp != xpath.Exists {
		return false
	}
	for ti := range st.Trans {
		switch st.Trans[ti].Kind {
		case automaton.WildAttr, automaton.Never:
			// attribute-only or dead: cullable
		case automaton.Exact:
			if !e.attrMask.Has(st.Trans[ti].Code) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// settle runs token propagation and resolves every group that settled,
// informing the emitter.
func (e *Evaluator) settle() {
	e.res.propagate()

	// Release the secure memory of freshly resolved tokens.
	if n := e.res.resolved - e.tokensFreed; n > 0 {
		e.gauge.Free(n * tokenMem)
		e.tokensFreed = e.res.resolved
	}

	// Collapse settled decisions and query matches so later evaluations
	// are O(1) and their memory is released.
	keptD := e.res.pendingDecisions[:0]
	for _, d := range e.res.pendingDecisions {
		if sign, ok := e.res.evalDecision(d); ok {
			d.definite = true
			d.sign = sign
			d.negCands, d.posCands, d.parent = nil, nil, nil
			e.gauge.Free(decisionMem)
		} else {
			keptD = append(keptD, d)
		}
	}
	e.res.pendingDecisions = keptD

	keptQ := e.res.pendingQMatches[:0]
	for _, q := range e.res.pendingQMatches {
		if in, ok := e.res.evalQMatch(q); ok {
			q.definite = true
			q.in = in
			q.cands, q.parent = nil, nil
			e.gauge.Free(decisionMem)
		} else {
			keptQ = append(keptQ, q)
		}
	}
	e.res.pendingQMatches = keptQ

	keptG := e.res.pendingGroups[:0]
	for _, g := range e.res.pendingGroups {
		if g.emitted {
			continue
		}
		if deliver, ok := e.res.evalGroup(g); ok {
			g.emitted = true
			e.gauge.Free(groupMem)
			if err := e.emit.ResolveGroup(g.id, deliver); err != nil && e.emitErr == nil {
				e.emitErr = err
			}
			continue
		}
		keptG = append(keptG, g)
	}
	e.res.pendingGroups = keptG
}

// newToken issues a token and charges its memory.
func (e *Evaluator) newToken() TokenID {
	t := e.res.newToken()
	e.stats.TokensCreated++
	_ = e.gauge.Alloc(tokenMem)
	return t
}

// transMatches applies a transition's node test to a tag code.
func (e *Evaluator) transMatches(tr *automaton.Transition, code tagdict.Code) bool {
	switch tr.Kind {
	case automaton.Exact:
		return tr.Code == code
	case automaton.WildElem:
		return !e.attrMask.Has(code)
	case automaton.WildAttr:
		return e.attrMask.Has(code)
	default:
		return false
	}
}
