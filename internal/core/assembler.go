package core

import (
	"fmt"

	"repro/internal/tagdict"
	"repro/internal/xmlstream"
)

// Assembler is the terminal-side consumer of the evaluator's output
// protocol: it buffers pending events until their groups resolve and
// reassembles the authorized result in document order.
//
// The paper keeps the SOE small by pushing this buffering outside the
// card: "the nodes upon which [a pending rule] applies are to be
// delivered only if, later on in the parsing, all the predicate paths are
// found to reach their final states" — the card tags those nodes with a
// group, the terminal holds them, and a later resolution message commits
// or discards them. Note what the terminal buffers is *candidate* output
// the card chose to release under a pending status; content that is
// definitively forbidden never leaves the card.
type Assembler struct {
	names NameResolver
	root  *anode
	stack []*anode
	// outcome maps resolved groups to their deliver flag.
	outcome map[GroupID]bool
	// unresolved counts groups seen in events but not yet resolved.
	seen map[GroupID]bool
	err  error

	// pendingEvents / pendingBytes measure the terminal-side buffering
	// the pending mechanism costs (experiment E6): how much candidate
	// output sat in the buffer awaiting a resolution.
	pendingEvents int
	pendingBytes  int64
}

// PendingLoad reports how many events (and text bytes) were buffered in
// pending state over the whole session.
func (a *Assembler) PendingLoad() (events int, bytes int64) {
	return a.pendingEvents, a.pendingBytes
}

// NameResolver maps tag codes back to names at assembly time. A full
// *tagdict.Dict satisfies it; the terminal proxy uses a partial table
// learned from the card's lazy bindings.
type NameResolver interface {
	Name(code tagdict.Code) string
}

// anode is a buffered output node.
type anode struct {
	code     tagdict.Code
	isText   bool
	text     string
	mode     Mode
	group    GroupID
	children []*anode
}

// NewAssembler returns an Assembler resolving tag codes through names.
func NewAssembler(names NameResolver) *Assembler {
	return &Assembler{
		names:   names,
		outcome: make(map[GroupID]bool),
		seen:    make(map[GroupID]bool),
	}
}

// EmitOpen implements Emitter.
func (a *Assembler) EmitOpen(code tagdict.Code, mode Mode, group GroupID) error {
	if a.err != nil {
		return a.err
	}
	n := &anode{code: code, mode: mode, group: group}
	a.note(group)
	if mode == ModePending {
		a.pendingEvents++
	}
	if len(a.stack) == 0 {
		if a.root != nil {
			a.err = fmt.Errorf("core: assembler received a second root")
			return a.err
		}
		a.root = n
	} else {
		p := a.stack[len(a.stack)-1]
		p.children = append(p.children, n)
	}
	a.stack = append(a.stack, n)
	return nil
}

// EmitValue implements Emitter.
func (a *Assembler) EmitValue(text string, mode Mode, group GroupID) error {
	if a.err != nil {
		return a.err
	}
	if len(a.stack) == 0 {
		a.err = fmt.Errorf("core: assembler received a value outside any element")
		return a.err
	}
	a.note(group)
	if mode == ModePending {
		a.pendingEvents++
		a.pendingBytes += int64(len(text))
	}
	p := a.stack[len(a.stack)-1]
	// Merge with an adjacent text sibling of the same status: the card
	// streams large values in chunks, and adjacent text is one node.
	if n := len(p.children); n > 0 {
		last := p.children[n-1]
		if last.isText && last.mode == mode && last.group == group {
			last.text += text
			return nil
		}
	}
	p.children = append(p.children, &anode{isText: true, text: text, mode: mode, group: group})
	return nil
}

// EmitClose implements Emitter.
func (a *Assembler) EmitClose(mode Mode, group GroupID) error {
	if a.err != nil {
		return a.err
	}
	if len(a.stack) == 0 {
		a.err = fmt.Errorf("core: assembler received an unbalanced close")
		return a.err
	}
	a.stack = a.stack[:len(a.stack)-1]
	return nil
}

// ResolveGroup implements Emitter.
func (a *Assembler) ResolveGroup(group GroupID, deliver bool) error {
	if a.err != nil {
		return a.err
	}
	if _, dup := a.outcome[group]; dup {
		a.err = fmt.Errorf("core: group %d resolved twice", group)
		return a.err
	}
	a.outcome[group] = deliver
	return nil
}

func (a *Assembler) note(group GroupID) {
	if group != 0 {
		a.seen[group] = true
	}
}

// Result finalizes the assembly and returns the authorized view as a
// tree, or nil when nothing was delivered.
func (a *Assembler) Result() (*xmlstream.Node, error) {
	if a.err != nil {
		return nil, a.err
	}
	if len(a.stack) != 0 {
		return nil, fmt.Errorf("core: assembler finished with %d unclosed element(s)", len(a.stack))
	}
	for g := range a.seen {
		if _, ok := a.outcome[g]; !ok {
			return nil, fmt.Errorf("core: group %d never resolved", g)
		}
	}
	if a.root == nil {
		return nil, nil
	}
	return a.build(a.root).Canonicalize(), nil
}

// build prunes and converts a buffered node. Pending nodes degrade per
// their group's outcome; structural elements survive only if they contain
// delivered content; attributes are all-or-nothing.
func (a *Assembler) build(n *anode) *xmlstream.Node {
	delivered := a.delivered(n)
	if n.isText {
		if delivered {
			return &xmlstream.Node{Text: n.text}
		}
		return nil
	}
	name := a.names.Name(n.code)
	out := &xmlstream.Node{Name: name}
	for _, c := range n.children {
		if kept := a.build(c); kept != nil {
			out.Children = append(out.Children, kept)
		}
	}
	if len(name) > 0 && name[0] == '@' {
		// Attribute pseudo-element: meaningful only when delivered.
		if delivered {
			return out
		}
		return nil
	}
	if delivered || len(out.Children) > 0 {
		return out
	}
	return nil
}

// delivered computes a buffered node's final delivery status.
func (a *Assembler) delivered(n *anode) bool {
	switch n.mode {
	case ModeDeliver:
		return true
	case ModePending:
		return a.outcome[n.group]
	default:
		return false
	}
}
