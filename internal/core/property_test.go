package core

import (
	"fmt"
	"testing"

	"repro/internal/accessrule"
	"repro/internal/workload"
	"repro/internal/xmlstream"
)

// countVisible fingerprints a view: delivered text bytes + element count.
func countVisible(n *xmlstream.Node) (texts int, elems int) {
	if n == nil {
		return 0, 0
	}
	texts = len(n.TextContent())
	var walk func(m *xmlstream.Node)
	walk = func(m *xmlstream.Node) {
		if !m.IsText() {
			elems++
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return texts, elems
}

// visibleText concatenates all delivered text in document order. Pruning
// elements deletes segments but never reorders, so a narrower view's text
// is always a (character) subsequence of a wider view's text — the
// monotonicity invariant the properties below check. (Plain multiset
// comparison would be confused by canonicalization: denying an element
// between two text nodes merges them into one.)
func visibleText(n *xmlstream.Node) string {
	if n == nil {
		return ""
	}
	return n.TextContent()
}

// isSubsequence reports whether small can be obtained from big by
// deleting characters.
func isSubsequence(small, big string) bool {
	j := 0
	for i := 0; i < len(small); i++ {
		for {
			if j >= len(big) {
				return false
			}
			if big[j] == small[i] {
				j++
				break
			}
			j++
		}
	}
	return true
}

// TestPropertyGrantAllIsIdentity: an open default with no rules delivers
// the document unchanged.
func TestPropertyGrantAllIsIdentity(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		doc := workload.RandomDocument(workload.TreeConfig{
			Seed: seed, Elements: 60, MaxDepth: 6, MaxFanout: 4, AttrProb: 0.3, TextProb: 0.7,
		})
		rs := workload.GrantAll("u")
		got, _, err := Filter(doc.Events(), rs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(doc.Canonicalize()) {
			t.Fatalf("seed %d: grant-all changed the document", seed)
		}
	}
}

// TestPropertyDenyAllIsEmpty: a closed default with no rules delivers
// nothing.
func TestPropertyDenyAllIsEmpty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		doc := workload.RandomDocument(workload.TreeConfig{
			Seed: seed, Elements: 60, MaxDepth: 6, MaxFanout: 4, TextProb: 0.7,
		})
		rs := &accessrule.RuleSet{Subject: "u", DefaultSign: accessrule.Deny}
		got, _, err := Filter(doc.Events(), rs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != nil {
			t.Fatalf("seed %d: deny-all delivered content", seed)
		}
	}
}

// TestPropertyPositiveRuleMonotone: adding a positive rule never shrinks
// the visible content (direct positives can only flip inherited denials).
func TestPropertyPositiveRuleMonotone(t *testing.T) {
	tags := []string{"a", "b", "c", "d"}
	for seed := int64(0); seed < 40; seed++ {
		doc := workload.RandomDocument(workload.TreeConfig{
			Seed: seed, Elements: 50, MaxDepth: 6, MaxFanout: 4, TextProb: 0.7, Tags: tags,
		})
		base := workload.RandomRuleSet("u", workload.RuleConfig{
			Seed: seed, Count: 3, Tags: tags, MaxSteps: 3, DescProb: 0.4, PredProb: 0.3, NegProb: 0.5,
		})
		extra := workload.RandomRuleSet("u", workload.RuleConfig{
			Seed: seed + 77, Count: 1, Tags: tags, MaxSteps: 3, DescProb: 0.5,
		})
		widened := &accessrule.RuleSet{
			Subject:     base.Subject,
			DefaultSign: base.DefaultSign,
			Rules: append(append([]accessrule.Rule{}, base.Rules...), accessrule.Rule{
				ID: "extra", Sign: accessrule.Permit, Object: extra.Rules[0].Object,
			}),
		}

		before, _, err := Filter(doc.Events(), base, nil)
		if err != nil {
			t.Fatal(err)
		}
		after, _, err := Filter(doc.Events(), widened, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !isSubsequence(visibleText(before), visibleText(after)) {
			t.Fatalf("seed %d: adding %s SHRANK the view\nbase:\n%s", seed, widened.Rules[len(widened.Rules)-1], base)
		}
	}
}

// TestPropertyNegativeRuleMonotone: adding a negative rule never grows
// the visible content.
func TestPropertyNegativeRuleMonotone(t *testing.T) {
	tags := []string{"a", "b", "c", "d"}
	for seed := int64(0); seed < 40; seed++ {
		doc := workload.RandomDocument(workload.TreeConfig{
			Seed: seed, Elements: 50, MaxDepth: 6, MaxFanout: 4, TextProb: 0.7, Tags: tags,
		})
		base := workload.RandomRuleSet("u", workload.RuleConfig{
			Seed: seed, Count: 3, Tags: tags, MaxSteps: 3, DescProb: 0.4, PredProb: 0.3, NegProb: 0.3,
		})
		extra := workload.RandomRuleSet("u", workload.RuleConfig{
			Seed: seed + 99, Count: 1, Tags: tags, MaxSteps: 3, DescProb: 0.5,
		})
		narrowed := &accessrule.RuleSet{
			Subject:     base.Subject,
			DefaultSign: base.DefaultSign,
			Rules: append(append([]accessrule.Rule{}, base.Rules...), accessrule.Rule{
				ID: "extra", Sign: accessrule.Deny, Object: extra.Rules[0].Object,
			}),
		}

		before, _, err := Filter(doc.Events(), base, nil)
		if err != nil {
			t.Fatal(err)
		}
		after, _, err := Filter(doc.Events(), narrowed, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !isSubsequence(visibleText(after), visibleText(before)) {
			t.Fatalf("seed %d: adding a denial GREW the view", seed)
		}
	}
}

// TestPropertyQueryNarrows: a query never delivers more than the full
// authorized view.
func TestPropertyQueryNarrows(t *testing.T) {
	tags := []string{"a", "b", "c", "d"}
	for seed := int64(0); seed < 40; seed++ {
		doc := workload.RandomDocument(workload.TreeConfig{
			Seed: seed, Elements: 50, MaxDepth: 6, MaxFanout: 4, TextProb: 0.7, Tags: tags,
		})
		rs := workload.RandomRuleSet("u", workload.RuleConfig{
			Seed: seed, Count: 3, Tags: tags, MaxSteps: 3, DescProb: 0.4, NegProb: 0.3,
			DefaultSign: accessrule.Permit,
		})
		q := workload.RandomQuery(workload.RuleConfig{Seed: seed + 5, Tags: tags, MaxSteps: 3, DescProb: 0.5})

		full, _, err := Filter(doc.Events(), rs, nil)
		if err != nil {
			t.Fatal(err)
		}
		narrowed, _, err := Filter(doc.Events(), rs, q)
		if err != nil {
			t.Fatal(err)
		}
		if !isSubsequence(visibleText(narrowed), visibleText(full)) {
			t.Fatalf("seed %d: query %s delivered content outside the authorized view", seed, q)
		}
	}
}

// TestPropertyViewIsFixpoint: filtering an authorized view again under
// the same PURELY STRUCTURAL rule set returns the same view. (Rules with
// value predicates are excluded: the first pass may hide the text a
// predicate matched on, legitimately changing the second pass.)
func TestPropertyViewIsFixpoint(t *testing.T) {
	tags := []string{"a", "b", "c", "d"}
	for seed := int64(0); seed < 40; seed++ {
		doc := workload.RandomDocument(workload.TreeConfig{
			Seed: seed, Elements: 50, MaxDepth: 6, MaxFanout: 4, TextProb: 0.7, Tags: tags,
		})
		rs := workload.RandomRuleSet("u", workload.RuleConfig{
			Seed: seed, Count: 4, Tags: tags, MaxSteps: 3, DescProb: 0.4,
			NegProb: 0.4, DefaultSign: accessrule.Permit,
		})
		once, _, err := Filter(doc.Events(), rs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if once == nil {
			continue
		}
		twice, _, err := Filter(once.Events(), rs, nil)
		if err != nil {
			t.Fatal(err)
		}
		// The second pass may prune structural tags that lost their
		// delivered descendants... which cannot happen: structural tags in
		// `once` exist because a delivered descendant exists, and that
		// descendant stays delivered under the same structural rules. So
		// equality must hold.
		if !once.Equal(twice) {
			a, _ := countVisible(once)
			b, _ := countVisible(twice)
			t.Fatalf("seed %d: refiltering changed the view (%d -> %d text bytes)\nrules:\n%s",
				seed, a, b, rs)
		}
	}
}

// TestPropertyStatsConsistent: emitted counts never exceed input counts,
// peak figures are sane.
func TestPropertyStatsConsistent(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		doc := workload.RandomDocument(workload.TreeConfig{
			Seed: seed, Elements: 80, MaxDepth: 7, MaxFanout: 4, TextProb: 0.7, AttrProb: 0.3,
		})
		rs := workload.RandomRuleSet("u", workload.RuleConfig{
			Seed: seed, Count: 5, MaxSteps: 4, DescProb: 0.4, PredProb: 0.4, NegProb: 0.4,
		})
		_, stats, err := Filter(doc.Events(), rs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if stats.EmittedOpens > stats.Opens || stats.EmittedCloses > stats.Closes {
			t.Fatalf("seed %d: emitted more than consumed: %+v", seed, stats)
		}
		if stats.EmittedOpens != stats.EmittedCloses {
			t.Fatalf("seed %d: unbalanced emission: %+v", seed, stats)
		}
		if stats.Opens != stats.Closes {
			t.Fatalf("seed %d: unbalanced input: %+v", seed, stats)
		}
		if stats.MaxDepth <= 0 || stats.EntriesPeak < 0 {
			t.Fatalf("seed %d: implausible stats: %+v", seed, stats)
		}
	}
}

var _ = fmt.Sprintf // keep fmt for failure messages
