package core

import (
	"strings"
	"testing"

	"repro/internal/accessrule"
	"repro/internal/xmlstream"
	"repro/internal/xpath"
)

// runFilter parses a document, applies rules (and optional query) through
// the streaming engine, and renders the result as compact XML ("" when
// nothing is visible).
func runFilter(t *testing.T, doc, rules, query string) string {
	t.Helper()
	evs, err := xmlstream.Parse([]byte(doc))
	if err != nil {
		t.Fatalf("parse doc: %v", err)
	}
	rs, err := accessrule.ParseSet(rules)
	if err != nil {
		t.Fatalf("parse rules: %v", err)
	}
	var q *xpath.Path
	if query != "" {
		q, err = xpath.Parse(query)
		if err != nil {
			t.Fatalf("parse query: %v", err)
		}
	}
	tree, _, err := Filter(evs, rs, q)
	if err != nil {
		t.Fatalf("Filter: %v", err)
	}
	if tree == nil {
		return ""
	}
	out, err := xmlstream.Serialize(tree.Events(), xmlstream.WriterOptions{})
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return out
}

func TestFilterBasicPermit(t *testing.T) {
	got := runFilter(t,
		`<a><b>1</b><c>2</c></a>`,
		"subject u\n+ //b",
		"")
	if got != `<a><b>1</b></a>` {
		t.Errorf("got %q", got)
	}
}

func TestFilterClosedByDefault(t *testing.T) {
	got := runFilter(t, `<a><b>1</b></a>`, "subject u", "")
	if got != "" {
		t.Errorf("closed policy must hide everything, got %q", got)
	}
}

func TestFilterOpenDefault(t *testing.T) {
	got := runFilter(t, `<a><b>1</b></a>`, "subject u\ndefault +", "")
	if got != `<a><b>1</b></a>` {
		t.Errorf("got %q", got)
	}
}

func TestFilterDenialTakesPrecedence(t *testing.T) {
	// Both rules apply directly to the same node: denial wins.
	got := runFilter(t,
		`<a><b>1</b></a>`,
		"subject u\n+ //b\n- //b",
		"")
	if got != "" {
		t.Errorf("denial must take precedence, got %q", got)
	}
}

func TestFilterMostSpecificOverridesDeny(t *testing.T) {
	// Subtree denied, but a more specific positive rule re-grants a
	// descendant; denied ancestors remain as bare structure.
	got := runFilter(t,
		`<a><b><c>secret</c><d>ok</d></b></a>`,
		"subject u\n+ /a\n- /a/b\n+ /a/b/d",
		"")
	if got != `<a><b><d>ok</d></b></a>` {
		t.Errorf("got %q", got)
	}
}

func TestFilterPropagation(t *testing.T) {
	// A permission on an element propagates to its whole subtree.
	got := runFilter(t,
		`<r><keep><x>1</x><y>2</y></keep><drop><x>3</x></drop></r>`,
		"subject u\n+ /r/keep",
		"")
	if got != `<r><keep><x>1</x><y>2</y></keep></r>` {
		t.Errorf("got %q", got)
	}
}

func TestFilterPaperExample(t *testing.T) {
	// The paper's Figure 2 rule: ⊕ //b[c]/d — deliver d children of b
	// elements that have a c child.
	doc := `<a><b><c>1</c><d>yes</d></b><b><d>no</d></b></a>`
	got := runFilter(t, doc, "subject u\n+ //b[c]/d", "")
	if got != `<a><b><d>yes</d></b></a>` {
		t.Errorf("got %q", got)
	}
}

func TestFilterPendingPredicateAfterTarget(t *testing.T) {
	// The predicate child arrives AFTER the target subtree: the rule is
	// pending when d is met and must commit later (paper Section 2.3).
	doc := `<a><b><d>yes</d><c>late</c></b><b><d>no</d><e/></b></a>`
	got := runFilter(t, doc, "subject u\n+ //b[c]/d", "")
	if got != `<a><b><d>yes</d></b></a>` {
		t.Errorf("got %q", got)
	}
}

func TestFilterPendingNegative(t *testing.T) {
	// A pending NEGATIVE rule: delivery of the first d must be withheld
	// until [c] resolves, then denied when it holds; everything else
	// stays visible under the open default.
	doc := `<a><b><d>x</d><c/></b><b><d>y</d></b></a>`
	got := runFilter(t, doc, "subject u\ndefault +\n- //b[c]/d", "")
	if got != `<a><b><c/></b><b><d>y</d></b></a>` {
		t.Errorf("got %q", got)
	}
}

func TestFilterValuePredicate(t *testing.T) {
	doc := `<lib><book><title>go</title><body>A</body></book><book><title>xml</title><body>B</body></book></lib>`
	got := runFilter(t, doc, `subject u`+"\n"+`+ //book[title = "go"]`, "")
	if got != `<lib><book><title>go</title><body>A</body></book></lib>` {
		t.Errorf("got %q", got)
	}
}

func TestFilterNeqPredicate(t *testing.T) {
	doc := `<lib><book><title>go</title></book><book><title>xml</title></book></lib>`
	got := runFilter(t, doc, `subject u`+"\n"+`+ //book[title != "go"]`, "")
	if got != `<lib><book><title>xml</title></book></lib>` {
		t.Errorf("got %q", got)
	}
}

func TestFilterAttributes(t *testing.T) {
	doc := `<r><p id="1"><x>a</x></p><p id="2"><x>b</x></p></r>`
	got := runFilter(t, doc, `subject u`+"\n"+`+ //p[@id = "2"]`, "")
	if got != `<r><p id="2"><x>b</x></p></r>` {
		t.Errorf("got %q", got)
	}
}

func TestFilterAttributeDenied(t *testing.T) {
	// Attributes of a permitted element can be individually denied, and
	// denied attributes leave no structural trace.
	doc := `<r><p secret="s" open="o">text</p></r>`
	got := runFilter(t, doc, "subject u\n+ /r\n- //@secret", "")
	if got != `<r><p open="o">text</p></r>` {
		t.Errorf("got %q", got)
	}
}

func TestFilterQueryRestriction(t *testing.T) {
	doc := `<a><b><x>1</x></b><c><x>2</x></c></a>`
	got := runFilter(t, doc, "subject u\ndefault +", "/a/b")
	if got != `<a><b><x>1</x></b></a>` {
		t.Errorf("got %q", got)
	}
}

func TestFilterQueryIntersectsRules(t *testing.T) {
	// Query selects both subtrees; rules deny one of them.
	doc := `<a><b><x>1</x></b><b><x>2</x><hide/></b></a>`
	got := runFilter(t, doc, "subject u\ndefault +\n- //b[hide]", "//b")
	if got != `<a><b><x>1</x></b></a>` {
		t.Errorf("got %q", got)
	}
}

func TestFilterQueryWithPendingMatch(t *testing.T) {
	// The query itself has a predicate that resolves late.
	doc := `<a><b><x>1</x><mark/></b><b><x>2</x></b></a>`
	got := runFilter(t, doc, "subject u\ndefault +", "//b[mark]")
	if got != `<a><b><x>1</x><mark/></b></a>` && got != `<a><b><x>1</x><mark></mark></b></a>` {
		t.Errorf("got %q", got)
	}
}

func TestFilterNoQueryMatch(t *testing.T) {
	got := runFilter(t, `<a><b>1</b></a>`, "subject u\ndefault +", "//zzz")
	if got != "" {
		t.Errorf("no query match must deliver nothing, got %q", got)
	}
}

func TestFilterWildcards(t *testing.T) {
	doc := `<a><b>1</b><c>2</c></a>`
	got := runFilter(t, doc, "subject u\n+ /a/*", "")
	if got != `<a><b>1</b><c>2</c></a>` {
		t.Errorf("got %q", got)
	}
}

func TestFilterDescendantSelfNesting(t *testing.T) {
	// //b over nested b's: every b matches; inner content delivered.
	doc := `<a><b><b><x>deep</x></b></b></a>`
	got := runFilter(t, doc, "subject u\n+ //b", "")
	if got != `<a><b><b><x>deep</x></b></b></a>` {
		t.Errorf("got %q", got)
	}
}

func TestFilterNestedPredicates(t *testing.T) {
	doc := `<r><s><t><u>1</u></t><v>keep</v></s><s><t>plain</t><v>drop</v></s></r>`
	got := runFilter(t, doc, "subject u\n+ //s[t[u]]/v", "")
	if got != `<r><s><v>keep</v></s></r>` {
		t.Errorf("got %q", got)
	}
}

func TestFilterRuleForUnknownTag(t *testing.T) {
	// A rule naming a tag absent from the document must simply never fire.
	got := runFilter(t, `<a><b>1</b></a>`, "subject u\n+ //nosuch\n+ //b", "")
	if got != `<a><b>1</b></a>` {
		t.Errorf("got %q", got)
	}
}

func TestFilterDotComparison(t *testing.T) {
	doc := `<r><k>on</k><k>off</k></r>`
	got := runFilter(t, doc, `subject u`+"\n"+`+ //k[. = "on"]`, "")
	if got != `<r><k>on</k></r>` {
		t.Errorf("got %q", got)
	}
}

func TestFilterStats(t *testing.T) {
	// d precedes c: the rule instance is pending when d arrives, so a
	// group must be created; the token count is one [c] instance per b.
	evs, _ := xmlstream.Parse([]byte(`<a><b><d>yes</d><c>1</c></b></a>`))
	rs, _ := accessrule.ParseSet("subject u\n+ //b[c]/d")
	_, stats, err := Filter(evs, rs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Opens != 4 || stats.Closes != 4 || stats.Values != 2 {
		t.Errorf("event counts wrong: %+v", stats)
	}
	if stats.TokensCreated != 1 {
		t.Errorf("TokensCreated = %d, want 1 (one [c] instance)", stats.TokensCreated)
	}
	if stats.GroupsCreated != 1 {
		t.Errorf("GroupsCreated = %d, want 1 (d delivered while [c] unresolved)", stats.GroupsCreated)
	}
	if stats.MaxDepth != 3 {
		t.Errorf("MaxDepth = %d, want 3", stats.MaxDepth)
	}

	// Same rule with c first: the instance is definite by the time d
	// opens, so no group is needed.
	evs2, _ := xmlstream.Parse([]byte(`<a><b><c>1</c><d>yes</d></b></a>`))
	_, stats2, err := Filter(evs2, rs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.GroupsCreated != 0 {
		t.Errorf("GroupsCreated = %d, want 0 when the predicate resolves first", stats2.GroupsCreated)
	}
}

func TestEvaluatorRejectsBadConfig(t *testing.T) {
	if _, err := NewEvaluator(Config{}); err == nil {
		t.Error("empty config must be rejected")
	}
	rs := &accessrule.RuleSet{Subject: "u", DefaultSign: accessrule.Deny}
	if _, err := NewEvaluator(Config{Rules: rs}); err == nil {
		t.Error("missing dict must be rejected")
	}
}

func TestFilterUnbalancedStream(t *testing.T) {
	rs, _ := accessrule.ParseSet("subject u\ndefault +")
	evs := []xmlstream.Event{xmlstream.OpenEvent("a")} // never closed
	_, _, err := Filter(evs, rs, nil)
	if err == nil || !strings.Contains(err.Error(), "open element") {
		t.Errorf("unbalanced stream must fail, got %v", err)
	}
}
