package core

import (
	"fmt"
	"testing"

	"repro/internal/accessrule"
	"repro/internal/workload"
	"repro/internal/xmlstream"
	"repro/internal/xpath"
)

// TestDifferentialVsOracle is the central correctness property of the
// reproduction: on randomized documents, rule sets and queries, the
// streaming evaluator must produce exactly the authorized view computed
// by the materializing reference semantics (accessrule.ApplyTreeQuery).
func TestDifferentialVsOracle(t *testing.T) {
	iterations := 400
	if testing.Short() {
		iterations = 60
	}
	for seed := int64(0); seed < int64(iterations); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			doc := workload.RandomDocument(workload.TreeConfig{
				Seed:      seed,
				Elements:  30 + int(seed%50),
				MaxDepth:  6,
				MaxFanout: 4,
				AttrProb:  0.3,
				TextProb:  0.6,
				Tags:      []string{"a", "b", "c", "d", "e"},
			})
			rcfg := workload.RuleConfig{
				Seed:          seed + 1000,
				Count:         1 + int(seed%6),
				Tags:          []string{"a", "b", "c", "d", "e", "@a", "@b"},
				MaxSteps:      4,
				DescProb:      0.4,
				WildProb:      0.15,
				PredProb:      0.4,
				ValuePredProb: 0.3,
				NegProb:       0.4,
			}
			if seed%3 == 0 {
				rcfg.DefaultSign = accessrule.Permit
			}
			rs := workload.RandomRuleSet("tester", rcfg)

			var query *xpath.Path
			if seed%2 == 1 {
				query = workload.RandomQuery(workload.RuleConfig{
					Seed:     seed + 2000,
					Tags:     rcfg.Tags,
					MaxSteps: 3,
					DescProb: 0.5,
					PredProb: 0.3,
				})
			}

			compareFilter(t, doc, rs, query)
		})
	}
}

// TestDifferentialDomains runs the same differential property over the
// domain workloads (realistic shapes: medical folders, agendas, catalogs,
// media streams).
func TestDifferentialDomains(t *testing.T) {
	docs := map[string]*xmlstream.Node{
		"medical": workload.MedicalFolder(workload.MedicalConfig{Seed: 7, Patients: 6, VisitsPerPatient: 3}),
		"agenda":  workload.Agenda(workload.AgendaConfig{Seed: 7, Members: 5, EventsPerMember: 4}),
		"catalog": workload.Catalog(workload.CatalogConfig{Seed: 7, Categories: 4, ProductsPerCategory: 5}),
		"stream":  workload.MediaStream(workload.StreamConfig{Seed: 7, Segments: 10, PayloadBytes: 32}),
	}
	ruleTexts := map[string][]string{
		"medical": {
			"subject doc\ndefault -\n+ /folder\n- //ssn\n- //contact",
			"subject nurse\n+ //patient\n- //diagnosis\n- //prescription",
			"subject emergency\n+ //emergency\n+ //patient/name",
			`subject researcher` + "\n" + `+ //visit[diagnosis = "asthma"]`,
		},
		"agenda": {
			"subject friend\ndefault -\n+ /agenda\n- //phone",
			`subject public` + "\n" + `+ //event[visibility = "public"]`,
			`subject user` + "\n" + `+ //member[@user = "user01"]`,
		},
		"catalog": {
			"subject customer\n+ /catalog\n- //margin\n- //stock",
			`subject manager` + "\n" + `default +` + "\n" + `- //category[@name = "cat02"]`,
		},
		"stream": {
			`subject child` + "\n" + `+ //segment[meta/rating = "all"]`,
			`subject teen` + "\n" + `default +` + "\n" + `- //segment[meta/rating = "adult"]`,
		},
	}
	queries := []string{"", "//name", "//event", "//product", "//segment"}

	for domain, doc := range docs {
		for _, rt := range ruleTexts[domain] {
			rs, err := accessrule.ParseSet(rt)
			if err != nil {
				t.Fatalf("%s: %v", domain, err)
			}
			for _, qs := range queries {
				var q *xpath.Path
				if qs != "" {
					q = xpath.MustParse(qs)
				}
				t.Run(fmt.Sprintf("%s/%s/%s", domain, rs.Subject, qs), func(t *testing.T) {
					compareFilter(t, doc, rs, q)
				})
			}
		}
	}
}

// compareFilter checks streaming result == oracle result.
func compareFilter(t *testing.T, doc *xmlstream.Node, rs *accessrule.RuleSet, query *xpath.Path) {
	t.Helper()
	want := accessrule.ApplyTreeQuery(doc, rs, query)
	got, _, err := Filter(doc.Events(), rs, query)
	if err != nil {
		t.Fatalf("Filter failed: %v\nrules:\n%s", err, rs)
	}
	if !got.Equal(want) {
		t.Fatalf("streaming result diverges from oracle\nrules:\n%s\nquery: %s\ndoc:   %s\ngot:   %s\nwant:  %s",
			rs, pathString(query), render(doc), render(got), render(want))
	}
}

func pathString(p *xpath.Path) string {
	if p == nil {
		return "(none)"
	}
	return p.String()
}

func render(n *xmlstream.Node) string {
	if n == nil {
		return "(nothing)"
	}
	s, err := xmlstream.Serialize(n.Events(), xmlstream.WriterOptions{})
	if err != nil {
		return fmt.Sprintf("(unserializable: %v)", err)
	}
	return s
}
