package core

import (
	"fmt"

	"repro/internal/tagdict"
)

// Mode classifies how an emitted event may be used by the terminal.
type Mode uint8

// Event delivery modes.
const (
	// ModeDeliver: the event is part of the authorized result.
	ModeDeliver Mode = iota
	// ModeStructure: the event is a bare structural tag; it must appear
	// in the result only if needed to enclose delivered content, and its
	// values are never delivered (the evaluator suppresses them).
	ModeStructure
	// ModePending: delivery depends on a pending group; the terminal
	// buffers the event until the group resolves. On "discard", open and
	// close events degrade to ModeStructure and value events vanish.
	ModePending
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeDeliver:
		return "deliver"
	case ModeStructure:
		return "structure"
	case ModePending:
		return "pending"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Emitter receives the evaluator's output: the card-to-terminal protocol.
// Events are in tag-code space; the terminal resolves names through the
// session dictionary.
type Emitter interface {
	// EmitOpen reports an element or attribute opening. group is nonzero
	// only for ModePending.
	EmitOpen(code tagdict.Code, mode Mode, group GroupID) error
	// EmitValue reports character data. Never called with ModeStructure.
	EmitValue(text string, mode Mode, group GroupID) error
	// EmitClose reports the closing of the innermost open element,
	// mirroring the mode and group of its open. The terminal tracks the
	// element stack itself, so no code is transmitted (the card protocol
	// saves those bytes, as the real applet does).
	EmitClose(mode Mode, group GroupID) error
	// ResolveGroup settles a pending group: deliver commits its events,
	// !deliver discards values and degrades tags to structure.
	ResolveGroup(group GroupID, deliver bool) error
}

// Discard is an Emitter that drops everything: engine-only benchmarks
// measure pure evaluation cost with it.
type Discard struct{}

// EmitOpen implements Emitter.
func (Discard) EmitOpen(tagdict.Code, Mode, GroupID) error { return nil }

// EmitValue implements Emitter.
func (Discard) EmitValue(string, Mode, GroupID) error { return nil }

// EmitClose implements Emitter.
func (Discard) EmitClose(Mode, GroupID) error { return nil }

// ResolveGroup implements Emitter.
func (Discard) ResolveGroup(GroupID, bool) error { return nil }

// Stats counts the work done during one document evaluation; the
// experiment harness reads them and the card simulator prices them.
type Stats struct {
	// Opens, Values, Closes count input events processed (post-skip).
	Opens, Values, Closes int
	// TransitionsScanned counts automaton transitions examined.
	TransitionsScanned int
	// TransitionsTaken counts transitions that matched.
	TransitionsTaken int
	// EntriesPeak is the maximum number of active NFA state entries
	// across all frames at any point (the paper's token-stack width).
	EntriesPeak int
	// TokensCreated counts predicate instances.
	TokensCreated int
	// GroupsCreated counts pending output groups.
	GroupsCreated int
	// EntriesSuspended counts NFA entries dropped because the skip index
	// proved their chains cannot complete inside the current subtree
	// (the paper's rule-suspension optimization).
	EntriesSuspended int
	// SkippedSubtrees counts subtrees skipped via the skip index.
	SkippedSubtrees int
	// SkippedBytes totals the encoded bytes never parsed thanks to skips.
	SkippedBytes int64
	// ValueBytesSkipped totals text bytes of structural nodes jumped over
	// without decryption (value skipping).
	ValueBytesSkipped int64
	// CopiedEvents counts events forwarded in copy-through mode (inside a
	// definitively authorized region where no automaton can fire).
	CopiedEvents int
	// CopiedBytes counts text bytes forwarded in copy-through mode.
	CopiedBytes int64
	// MaxDepth is the deepest element nesting seen.
	MaxDepth int
	// EmittedOpens/Values/Closes count emitted output events.
	EmittedOpens, EmittedValues, EmittedCloses int
}
