// Package core implements the paper's primary contribution: a streaming
// evaluator of access-control rules (and an optional query) over the
// open/value/close event stream of an encrypted XML document, designed to
// run inside a Secure Operating Environment with ~1 KB of working memory.
//
// The evaluator follows Section 2.3 of the paper:
//
//   - each rule (and the query) is a non-deterministic automaton
//     (internal/automaton);
//   - a stack of frames tracks the active automaton states, one frame per
//     open element ("a stack that keeps track of active states,
//     materializing all the possible paths that can be followed on the
//     non-deterministic automata");
//   - a predicate set records satisfied predicate instances ("a predicate
//     set which records all the final states of predicates that have been
//     reached");
//   - rules whose navigational final state is reached while predicates
//     are unresolved are *pending*: the affected events are emitted
//     tagged with a pending group that is later resolved to commit or
//     discard ("the rule is said to be pending, meaning that the nodes
//     upon which it applies are to be delivered only if, later on in the
//     parsing, all the predicate paths are found to reach their final
//     states");
//   - propagation and conflicts are managed with a decision stack
//     generalizing the paper's sign stack ("propagation of rules as well
//     as conflicts are managed with a sign stack which keeps on the top
//     the current sign that is propagated if no other rule applies");
//   - the skip index is consulted on every indexed open to skip subtrees
//     where nothing can fire.
//
// This file contains the condition machinery: predicate-instance tokens,
// tri-state authorization decisions, query-match states, and the output
// pending groups with their resolution engine.
package core

import (
	"fmt"

	"repro/internal/accessrule"
)

// TokenID identifies a predicate instance: one predicate chain anchored
// at one specific node. Token 0 is reserved (never issued), so nav-chain
// frame entries can use 0 as "no token".
type TokenID uint32

// GroupID identifies a pending output group. Group 0 means "no group"
// (the event's mode is definite).
type GroupID uint32

// tokenState is the lifecycle of a predicate instance.
type tokenState uint8

const (
	tokenUnresolved tokenState = iota
	tokenTrue                  // predicate satisfied within its anchor's subtree
	tokenFalse                 // anchor closed without satisfaction
)

// token is one predicate instance. A token resolves true as soon as its
// predicate chain completes (monotone: once a child matching [c] is seen,
// the predicate holds for good within the anchor), and false when the
// anchor node closes unsatisfied.
type token struct {
	state tokenState
	// cands holds conditional satisfactions: a predicate chain that
	// completed while itself depending on nested predicate instances
	// (e.g. [a[b]/c]) records the nested tokens here; the token turns
	// true when any candidate set is fully true.
	cands [][]TokenID
	// live counts the active NFA entries carrying this token. When it
	// drops to zero with no candidates, no future event can satisfy the
	// predicate, so the token fails early — which is what lets the
	// evaluator settle decisions (and skip subtrees) before the anchor
	// node closes.
	live int
}

// tokenMem is the logical per-token secure-memory charge (state byte,
// live count, candidate list head in a packed card layout).
const tokenMem = 8

// decision is the tri-state authorization status of a node: a definite
// sign, or a pending expression over predicate-instance tokens.
//
// The final sign of a pending decision is:
//
//	'-'  if any negCand becomes fully true   (Denial-Takes-Precedence)
//	'+'  else if any posCand becomes fully true
//	parent's final sign otherwise            (no direct rule materialized,
//	                                          Most-Specific + propagation)
//
// A definite direct rule contributes an empty candidate set (immediately
// true); nodes without direct rules share their parent's decision object.
type decision struct {
	definite bool
	sign     accessrule.Sign

	negCands [][]TokenID
	posCands [][]TokenID
	parent   *decision
}

// decisionMem is the logical base charge of a pending decision.
const decisionMem = 16

// qmatch is the query-relevance status of a node: whether it lies inside
// (the subtree of) a node matched by the session query. Like decision it
// is tri-state: definitely in, definitely out, or pending on the tokens
// of conditional query-match instances.
type qmatch struct {
	definite bool
	in       bool

	// cands are the condition sets of query instances fired at this node.
	cands [][]TokenID
	// parent is the enclosing node's status (a node is also in a match if
	// an ancestor is).
	parent *qmatch
}

var (
	qIn  = &qmatch{definite: true, in: true}
	qOut = &qmatch{definite: true, in: false}
)

// outGroup is a pending output group: the unit of deferred delivery the
// terminal buffers. All events of nodes sharing the same (decision,
// qmatch) pair are tagged with the same group; the group resolves to
// "deliver" iff the decision resolves Permit and the query match resolves
// in.
type outGroup struct {
	id      GroupID
	ac      *decision
	q       *qmatch
	emitted bool
}

// groupMem is the logical per-group secure-memory charge.
const groupMem = 8

// resolver owns tokens, pending decisions/qmatches/groups, and runs
// resolution to fixpoint after every token event.
type resolver struct {
	tokens []token // index 0 reserved

	pendingTokens    []TokenID // tokens with conditional candidates
	pendingDecisions []*decision
	pendingQMatches  []*qmatch
	pendingGroups    []*outGroup

	// resolved counts tokens that reached a final state; the evaluator
	// uses it to release their secure-memory charge.
	resolved int
}

func newResolver() *resolver {
	return &resolver{tokens: make([]token, 1)} // slot 0 reserved
}

// newToken issues a fresh unresolved token.
func (r *resolver) newToken() TokenID {
	r.tokens = append(r.tokens, token{})
	return TokenID(len(r.tokens) - 1)
}

func (r *resolver) tokenResolved(t TokenID) bool {
	return r.tokens[t].state != tokenUnresolved
}

func (r *resolver) tokenTrue(t TokenID) bool {
	return r.tokens[t].state == tokenTrue
}

// satisfy records a completion of the token's predicate chain, under the
// given nested-condition set (nil = unconditional).
func (r *resolver) satisfy(t TokenID, cond []TokenID) {
	tok := &r.tokens[t]
	if tok.state != tokenUnresolved {
		return
	}
	if allTrue(r, cond) {
		tok.state = tokenTrue
		r.resolved++
		return
	}
	if anyFalse(r, cond) {
		return // this candidate can never materialize
	}
	// Defensive copy: cond aliases a frame entry's condition slice.
	c := make([]TokenID, len(cond))
	copy(c, cond)
	tok.cands = append(tok.cands, c)
	r.pendingTokens = append(r.pendingTokens, t)
}

// fail marks the token false. Called when its anchor closes unresolved.
func (r *resolver) fail(t TokenID) {
	if r.tokens[t].state == tokenUnresolved {
		r.tokens[t].state = tokenFalse
		r.tokens[t].cands = nil
		r.resolved++
	}
}

// entryAdded records that an NFA entry carrying the token went live.
func (r *resolver) entryAdded(t TokenID) {
	r.tokens[t].live++
}

// entryRemoved records that an NFA entry carrying the token disappeared
// (frame pop, attribute-phase cull, or discarded skip frame). When the
// last entry of an unresolved, candidate-free token goes away, no future
// event can satisfy it: it fails now rather than at anchor close.
func (r *resolver) entryRemoved(t TokenID) {
	tok := &r.tokens[t]
	if tok.live > 0 {
		tok.live--
	}
	if tok.live == 0 && tok.state == tokenUnresolved && len(tok.cands) == 0 {
		r.fail(t)
	}
}

// propagate resolves conditional tokens to fixpoint. Group resolution is
// driven by the evaluator (which owns the emitter); propagate only
// settles token states.
func (r *resolver) propagate() {
	for changed := true; changed; {
		changed = false
		kept := r.pendingTokens[:0]
		for _, t := range r.pendingTokens {
			tok := &r.tokens[t]
			if tok.state != tokenUnresolved {
				continue
			}
			settled := false
			for _, cand := range tok.cands {
				if allTrue(r, cand) {
					tok.state = tokenTrue
					tok.cands = nil
					r.resolved++
					settled = true
					changed = true
					break
				}
			}
			if !settled {
				kept = append(kept, t)
			}
		}
		r.pendingTokens = kept
	}
}

// evalDecision attempts to settle a pending decision. It returns the sign
// and true when settled.
func (r *resolver) evalDecision(d *decision) (accessrule.Sign, bool) {
	if d.definite {
		return d.sign, true
	}
	anyNeg, allNegDead := evalCands(r, d.negCands)
	if anyNeg {
		return accessrule.Deny, true
	}
	if !allNegDead {
		return 0, false
	}
	anyPos, allPosDead := evalCands(r, d.posCands)
	if anyPos {
		return accessrule.Permit, true
	}
	if !allPosDead {
		return 0, false
	}
	if d.parent == nil {
		// Cannot happen: the root decision is always definite.
		return accessrule.Deny, true
	}
	return r.evalDecision(d.parent)
}

// evalQMatch attempts to settle a query-match status.
func (r *resolver) evalQMatch(q *qmatch) (bool, bool) {
	if q.definite {
		return q.in, true
	}
	anyIn, allDead := evalCands(r, q.cands)
	if anyIn {
		return true, true
	}
	if !allDead {
		return false, false
	}
	if q.parent == nil {
		return false, true
	}
	return r.evalQMatch(q.parent)
}

// evalGroup attempts to settle a group. It returns (deliver, settled).
func (r *resolver) evalGroup(g *outGroup) (bool, bool) {
	sign, okD := r.evalDecision(g.ac)
	if okD && sign == accessrule.Deny {
		return false, true // denial needs no query answer
	}
	in, okQ := r.evalQMatch(g.q)
	if okQ && !in {
		return false, true // out-of-query needs no authorization answer
	}
	if okD && okQ {
		return sign == accessrule.Permit && in, true
	}
	return false, false
}

// evalCands evaluates an OR-of-AND-sets: (anyTrue, allDead). anyTrue means
// some candidate is fully true; allDead means every candidate contains a
// false token (can never materialize).
func evalCands(r *resolver, cands [][]TokenID) (anyTrue, allDead bool) {
	allDead = true
	for _, cand := range cands {
		if allTrue(r, cand) {
			return true, false
		}
		if !anyFalse(r, cand) {
			allDead = false
		}
	}
	return false, allDead
}

func allTrue(r *resolver, cond []TokenID) bool {
	for _, t := range cond {
		if !r.tokenTrue(t) {
			return false
		}
	}
	return true
}

func anyFalse(r *resolver, cond []TokenID) bool {
	for _, t := range cond {
		if r.tokens[t].state == tokenFalse {
			return true
		}
	}
	return false
}

// checkAllResolved verifies at end of document that nothing is left
// unresolved; a leftover indicates an evaluator bug.
func (r *resolver) checkAllResolved() error {
	for i := 1; i < len(r.tokens); i++ {
		if r.tokens[i].state == tokenUnresolved {
			return fmt.Errorf("core: token %d unresolved at end of document", i)
		}
	}
	for _, g := range r.pendingGroups {
		if !g.emitted {
			return fmt.Errorf("core: group %d unresolved at end of document", g.id)
		}
	}
	return nil
}
