package accessrule

import (
	"repro/internal/xmlstream"
	"repro/internal/xpath"
)

// Decide computes, for every element and attribute node of the tree, the
// authorization sign under the paper's semantics:
//
//   - a rule applies directly to every node its object selects;
//   - rules propagate to descendants (handled by inheritance below);
//   - Most-Specific-Object-Takes-Precedence: a node with direct rules is
//     decided by them alone, overriding anything inherited;
//   - Denial-Takes-Precedence: among direct rules of a node, one negative
//     rule suffices to deny;
//   - nodes with no applicable rule inherit their parent's decision, the
//     root inheriting the set's DefaultSign.
//
// This is the reference implementation: quadratic, materializing, and
// obviously correct. The streaming evaluator must agree with it on every
// document; property tests enforce that.
func Decide(root *xmlstream.Node, rs *RuleSet) map[*xmlstream.Node]Sign {
	direct := make(map[*xmlstream.Node][]Sign)
	for _, r := range rs.Rules {
		for _, n := range xpath.Select(root, r.Object) {
			direct[n] = append(direct[n], r.Sign)
		}
	}
	out := make(map[*xmlstream.Node]Sign)
	var walk func(n *xmlstream.Node, inherited Sign)
	walk = func(n *xmlstream.Node, inherited Sign) {
		decision := inherited
		if signs, ok := direct[n]; ok {
			decision = Permit
			for _, s := range signs {
				if s == Deny {
					decision = Deny
					break
				}
			}
		}
		out[n] = decision
		for _, c := range n.Children {
			if !c.IsText() {
				walk(c, decision)
			}
		}
	}
	walk(root, rs.DefaultSign)
	return out
}

// ApplyTree computes the authorized view of the document: the tree a
// subject holding rs is allowed to see. Semantics (matching [3], which the
// paper's model simplifies):
//
//   - the text of a node is visible iff the node is permitted;
//   - a permitted element is visible;
//   - a denied element whose subtree contains a visible node is kept as
//     bare structure (tag only, no text, no attributes of its own beyond
//     permitted ones) so the view remains a well-formed tree;
//   - attribute pseudo-elements are all-or-nothing: they are kept iff
//     permitted (a valueless attribute has no structural role).
//
// The result is nil when nothing at all is visible.
func ApplyTree(root *xmlstream.Node, rs *RuleSet) *xmlstream.Node {
	return ApplyTreeQuery(root, rs, nil)
}

// ApplyTreeQuery computes the authorized view restricted to a query: the
// delivered content is the intersection of the authorized view with the
// subtrees matched by the query; ancestors of delivered content are kept
// as bare structure. A nil query delivers the whole authorized view.
func ApplyTreeQuery(root *xmlstream.Node, rs *RuleSet, query *xpath.Path) *xmlstream.Node {
	decisions := Decide(root, rs)
	inMatch := map[*xmlstream.Node]bool{}
	if query != nil {
		for _, m := range xpath.Select(root, query) {
			inMatch[m] = true
		}
	}

	var build func(n *xmlstream.Node, matched bool) *xmlstream.Node
	build = func(n *xmlstream.Node, matched bool) *xmlstream.Node {
		if query != nil && inMatch[n] {
			matched = true
		}
		contentVisible := decisions[n] == Permit && (query == nil || matched)
		if n.IsAttribute() {
			if !contentVisible {
				return nil
			}
			cp := &xmlstream.Node{Name: n.Name}
			for _, c := range n.Children {
				if c.IsText() {
					cp.Children = append(cp.Children, &xmlstream.Node{Text: c.Text})
				}
			}
			return cp
		}
		cp := &xmlstream.Node{Name: n.Name}
		for _, c := range n.Children {
			if c.IsText() {
				if contentVisible {
					cp.Children = append(cp.Children, &xmlstream.Node{Text: c.Text})
				}
				continue
			}
			if kept := build(c, matched); kept != nil {
				cp.Children = append(cp.Children, kept)
			}
		}
		if contentVisible || len(cp.Children) > 0 {
			return cp
		}
		return nil
	}
	return build(root, false).Canonicalize()
}

// VisibleFraction reports which share of the document's text bytes the
// subject may read — the measure experiment E3 sweeps.
func VisibleFraction(root *xmlstream.Node, rs *RuleSet) float64 {
	decisions := Decide(root, rs)
	var total, visible int
	var walk func(n *xmlstream.Node)
	walk = func(n *xmlstream.Node) {
		for _, c := range n.Children {
			if c.IsText() {
				total += len(c.Text)
				if decisions[n] == Permit {
					visible += len(c.Text)
				}
				continue
			}
			walk(c)
		}
	}
	walk(root)
	if total == 0 {
		return 0
	}
	return float64(visible) / float64(total)
}
