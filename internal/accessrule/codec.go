package accessrule

import (
	"encoding/binary"
	"fmt"

	"repro/internal/xpath"
)

// codecVersion identifies the rule-set wire format.
const codecVersion = 1

// MarshalBinary encodes the rule set for encrypted storage on the DSP.
// Objects are stored in their textual XPath form: the SOE reparses them at
// session start, which keeps the format transparent and versionable.
func (rs *RuleSet) MarshalBinary() ([]byte, error) {
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	var b []byte
	b = binary.AppendUvarint(b, codecVersion)
	b = appendString(b, rs.Subject)
	b = appendString(b, rs.DocID)
	b = binary.AppendUvarint(b, uint64(rs.Version))
	b = append(b, byte(int8(rs.DefaultSign)))
	b = binary.AppendUvarint(b, uint64(len(rs.Rules)))
	for _, r := range rs.Rules {
		b = appendString(b, r.ID)
		b = append(b, byte(int8(r.Sign)))
		b = appendString(b, r.Object.String())
	}
	return b, nil
}

// UnmarshalRuleSet decodes a rule set produced by MarshalBinary.
func UnmarshalRuleSet(data []byte) (*RuleSet, error) {
	d := &decoder{data: data}
	v := d.uvarint()
	if v != codecVersion {
		return nil, fmt.Errorf("accessrule: unsupported rule-set format version %d", v)
	}
	rs := &RuleSet{}
	rs.Subject = d.string()
	rs.DocID = d.string()
	rs.Version = uint32(d.uvarint())
	rs.DefaultSign = Sign(int8(d.byte()))
	n := d.uvarint()
	if d.err == nil && n > 1<<20 {
		return nil, fmt.Errorf("accessrule: implausible rule count %d", n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		var r Rule
		r.ID = d.string()
		r.Sign = Sign(int8(d.byte()))
		obj := d.string()
		if d.err != nil {
			break
		}
		p, err := xpath.Parse(obj)
		if err != nil {
			return nil, fmt.Errorf("accessrule: rule %d: %w", i, err)
		}
		r.Object = p
		rs.Rules = append(rs.Rules, r)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(data) {
		return nil, fmt.Errorf("accessrule: %d trailing bytes after rule set", len(data)-d.pos)
	}
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	return rs, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

type decoder struct {
	data []byte
	pos  int
	err  error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.err = fmt.Errorf("accessrule: truncated varint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.data) {
		d.err = fmt.Errorf("accessrule: truncated byte at offset %d", d.pos)
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

func (d *decoder) string() string {
	l := d.uvarint()
	if d.err != nil {
		return ""
	}
	if d.pos+int(l) > len(d.data) {
		d.err = fmt.Errorf("accessrule: truncated string at offset %d", d.pos)
		return ""
	}
	s := string(d.data[d.pos : d.pos+int(l)])
	d.pos += int(l)
	return s
}
