// Package accessrule implements the paper's access-control model for XML:
// rules of the form <sign, subject, object> with implicit downward
// propagation and two conflict-resolution policies.
//
// "Access control rules [...] take the form of a 3-uple <sign, subject,
// object>. Sign denotes either a permission (positive rule) or a
// prohibition (negative rule) for the read operation. [...] Object
// corresponds to elements or subtrees in the XML document, identified by
// an XPath expression [in] XP{[],*,//}. The cascading propagation of rules
// is implicit [...]. Conflicts are resolved using two policies:
// 1) Denial-Takes-Precedence [...] and 2) Most-Specific-Object-Takes-
// Precedence." (Section 2.2.)
//
// Besides the model itself, the package provides a reference (tree-based)
// implementation of the authorization semantics (ApplyTree), used as the
// oracle against which the streaming evaluator of internal/core is
// validated, and a binary codec so rule sets can be stored encrypted on
// the untrusted DSP.
package accessrule

import (
	"fmt"
	"strings"

	"repro/internal/xpath"
)

// Sign is the polarity of a rule.
type Sign int8

// Rule polarities.
const (
	// Deny is a prohibition (negative rule).
	Deny Sign = -1
	// Permit is a permission (positive rule).
	Permit Sign = 1
)

// String renders the sign the way the paper's figures do.
func (s Sign) String() string {
	switch s {
	case Permit:
		return "+"
	case Deny:
		return "-"
	default:
		return fmt.Sprintf("Sign(%d)", int8(s))
	}
}

// Rule is one access-control rule. Subject is kept on the enclosing
// RuleSet (a set is the unit granted to a subject for a document).
type Rule struct {
	// ID is a stable identifier, for administration and tracing.
	ID string
	// Sign is Permit or Deny.
	Sign Sign
	// Object designates the elements/subtrees ruled, as an absolute
	// XP{[],*,//} expression.
	Object *xpath.Path
}

// String renders the rule like the paper: "⊕ //b[c]/d" (ASCII signs).
func (r Rule) String() string {
	return r.Sign.String() + " " + r.Object.String()
}

// Validate checks structural sanity.
func (r Rule) Validate() error {
	if r.Sign != Permit && r.Sign != Deny {
		return fmt.Errorf("accessrule: rule %q has invalid sign %d", r.ID, r.Sign)
	}
	if r.Object == nil || len(r.Object.Steps) == 0 {
		return fmt.Errorf("accessrule: rule %q has empty object", r.ID)
	}
	return nil
}

// RuleSet is the unit of access-control state for one (subject, document)
// pair. It is what the DSP stores encrypted and what the SOE loads at
// session start.
type RuleSet struct {
	// Subject identifies the user (or role) the set applies to.
	Subject string
	// DocID identifies the document the set protects ("" = any document
	// the subject's keys open; used by dissemination profiles).
	DocID string
	// Version increases on every administrative change; the SOE refuses
	// stale sets, preventing the DSP from replaying revoked rights.
	Version uint32
	// DefaultSign is the decision for nodes no rule reaches. The paper's
	// model is closed (Deny); open policies are used by some profiles.
	DefaultSign Sign
	// Rules, evaluated under the two conflict-resolution policies.
	Rules []Rule
}

// Validate checks the set and every rule in it.
func (rs *RuleSet) Validate() error {
	if rs.Subject == "" {
		return fmt.Errorf("accessrule: rule set without subject")
	}
	if rs.DefaultSign != Permit && rs.DefaultSign != Deny {
		return fmt.Errorf("accessrule: rule set for %q has invalid default sign", rs.Subject)
	}
	seen := make(map[string]bool, len(rs.Rules))
	for i, r := range rs.Rules {
		if err := r.Validate(); err != nil {
			return err
		}
		if r.ID != "" {
			if seen[r.ID] {
				return fmt.Errorf("accessrule: duplicate rule id %q (rule %d)", r.ID, i)
			}
			seen[r.ID] = true
		}
	}
	return nil
}

// String renders the set in the text form accepted by ParseSet.
func (rs *RuleSet) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "subject %s\n", rs.Subject)
	if rs.DocID != "" {
		fmt.Fprintf(&b, "doc %s\n", rs.DocID)
	}
	fmt.Fprintf(&b, "default %s\n", rs.DefaultSign)
	for _, r := range rs.Rules {
		fmt.Fprintf(&b, "%s\n", r)
	}
	return b.String()
}

// ParseSet parses the textual rule-set format: one directive or rule per
// line; '#' starts a comment. Directives: "subject NAME", "doc ID",
// "default +|-". Rules: "+ /path" or "- /path".
func ParseSet(text string) (*RuleSet, error) {
	rs := &RuleSet{DefaultSign: Deny}
	n := 0
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "subject "):
			rs.Subject = strings.TrimSpace(strings.TrimPrefix(line, "subject "))
		case strings.HasPrefix(line, "doc "):
			rs.DocID = strings.TrimSpace(strings.TrimPrefix(line, "doc "))
		case strings.HasPrefix(line, "default "):
			v := strings.TrimSpace(strings.TrimPrefix(line, "default "))
			switch v {
			case "+", "permit":
				rs.DefaultSign = Permit
			case "-", "deny":
				rs.DefaultSign = Deny
			default:
				return nil, fmt.Errorf("accessrule: line %d: bad default %q", lineNo+1, v)
			}
		case strings.HasPrefix(line, "+") || strings.HasPrefix(line, "-"):
			sign := Permit
			if line[0] == '-' {
				sign = Deny
			}
			expr := strings.TrimSpace(line[1:])
			p, err := xpath.Parse(expr)
			if err != nil {
				return nil, fmt.Errorf("accessrule: line %d: %w", lineNo+1, err)
			}
			n++
			rs.Rules = append(rs.Rules, Rule{
				ID:     fmt.Sprintf("r%d", n),
				Sign:   sign,
				Object: p,
			})
		default:
			return nil, fmt.Errorf("accessrule: line %d: cannot parse %q", lineNo+1, line)
		}
	}
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	return rs, nil
}
