package accessrule

import (
	"strings"
	"testing"

	"repro/internal/xmlstream"
	"repro/internal/xpath"
)

func TestParseSet(t *testing.T) {
	rs, err := ParseSet(`
# a comment
subject nurse
doc folder1
default -
+ /folder            # trailing comment
- //ssn
+ //patient[@id = "7"]
`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Subject != "nurse" || rs.DocID != "folder1" || rs.DefaultSign != Deny {
		t.Errorf("header fields wrong: %+v", rs)
	}
	if len(rs.Rules) != 3 {
		t.Fatalf("got %d rules", len(rs.Rules))
	}
	if rs.Rules[0].Sign != Permit || rs.Rules[1].Sign != Deny {
		t.Error("signs wrong")
	}
	if rs.Rules[2].Object.String() != `//patient[@id = "7"]` {
		t.Errorf("object wrong: %s", rs.Rules[2].Object)
	}
}

func TestParseSetErrors(t *testing.T) {
	bad := []string{
		"",                     // no subject
		"subject u\n* //x",     // bad line
		"subject u\ndefault ?", // bad default
		"subject u\n+ not-a-path",
		"subject u\n+",
	}
	for _, text := range bad {
		if _, err := ParseSet(text); err == nil {
			t.Errorf("ParseSet(%q) succeeded", text)
		}
	}
}

func TestRuleSetValidate(t *testing.T) {
	rs := &RuleSet{Subject: "u", DefaultSign: Deny, Rules: []Rule{
		{ID: "r1", Sign: Permit, Object: xpath.MustParse("/a")},
		{ID: "r1", Sign: Deny, Object: xpath.MustParse("/b")},
	}}
	if err := rs.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate rule ids must be rejected, got %v", err)
	}
	rs.Rules[1].ID = "r2"
	rs.Rules[1].Sign = 0
	if err := rs.Validate(); err == nil {
		t.Error("invalid sign must be rejected")
	}
}

func TestRuleSetTextRoundTrip(t *testing.T) {
	rs, _ := ParseSet("subject u\ndoc d\ndefault +\n+ //a\n- /b/c")
	back, err := ParseSet(rs.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.Subject != rs.Subject || back.DocID != rs.DocID ||
		back.DefaultSign != rs.DefaultSign || len(back.Rules) != len(rs.Rules) {
		t.Fatalf("text round trip changed the set:\n%s\nvs\n%s", rs, back)
	}
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	rs, _ := ParseSet(`subject carol` + "\n" + `doc agenda` + "\n" + `default -` + "\n" +
		`+ //event[visibility = "public"]` + "\n" + `- //phone`)
	rs.Version = 42
	blob, err := rs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalRuleSet(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Subject != "carol" || back.Version != 42 || len(back.Rules) != 2 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if !back.Rules[0].Object.Equal(rs.Rules[0].Object) {
		t.Error("rule object changed")
	}
}

func TestBinaryCodecErrors(t *testing.T) {
	rs, _ := ParseSet("subject u\n+ /a")
	blob, _ := rs.MarshalBinary()
	if _, err := UnmarshalRuleSet(blob[:len(blob)-2]); err == nil {
		t.Error("truncated blob accepted")
	}
	if _, err := UnmarshalRuleSet(append(blob, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := UnmarshalRuleSet([]byte{99}); err == nil {
		t.Error("bad version accepted")
	}
}

func mustTree(t *testing.T, src string) *xmlstream.Node {
	t.Helper()
	evs, err := xmlstream.Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	n, err := xmlstream.BuildTree(evs)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestDecideSemantics(t *testing.T) {
	doc := mustTree(t, `<a><b><c/></b><d/></a>`)
	rs, _ := ParseSet("subject u\ndefault -\n+ /a/b\n- /a/b/c")
	dec := Decide(doc, rs)
	b := doc.Find("b")[0]
	c := doc.Find("c")[0]
	d := doc.Find("d")[0]
	if dec[doc] != Deny {
		t.Error("root must inherit the default deny")
	}
	if dec[b] != Permit {
		t.Error("b has a direct permit")
	}
	if dec[c] != Deny {
		t.Error("c has a direct deny (most specific over inherited permit)")
	}
	if dec[d] != Deny {
		t.Error("d inherits the default")
	}
}

func TestDecideDenialPrecedence(t *testing.T) {
	doc := mustTree(t, `<a><b/></a>`)
	rs, _ := ParseSet("subject u\ndefault +\n+ //b\n- //b")
	if dec := Decide(doc, rs); dec[doc.Find("b")[0]] != Deny {
		t.Error("denial must take precedence among direct rules")
	}
}

func TestApplyTreeStructurePreservation(t *testing.T) {
	doc := mustTree(t, `<a><b><keep>x</keep><drop>y</drop></b></a>`)
	rs, _ := ParseSet("subject u\ndefault -\n+ //keep")
	view := ApplyTree(doc, rs)
	if view == nil {
		t.Fatal("view must not be empty")
	}
	// a and b survive as bare structure, drop vanishes, keep's text stays.
	if len(view.Find("drop")) != 0 {
		t.Error("denied sibling leaked")
	}
	if got := view.TextContent(); got != "x" {
		t.Errorf("view text = %q, want x", got)
	}
	if len(view.Find("b")) != 1 {
		t.Error("structural ancestor pruned")
	}
}

func TestApplyTreeNilWhenNothingVisible(t *testing.T) {
	doc := mustTree(t, `<a><b>x</b></a>`)
	rs, _ := ParseSet("subject u\ndefault -")
	if view := ApplyTree(doc, rs); view != nil {
		t.Errorf("closed policy must yield nil, got %v", view)
	}
}

func TestApplyTreeQueryScoping(t *testing.T) {
	doc := mustTree(t, `<a><b>1</b><c>2</c></a>`)
	rs, _ := ParseSet("subject u\ndefault +")
	view := ApplyTreeQuery(doc, rs, xpath.MustParse("/a/c"))
	if view == nil || view.TextContent() != "2" {
		t.Fatalf("query view = %v", view)
	}
	if len(view.Find("b")) != 0 {
		t.Error("query must exclude non-matching subtrees")
	}
}

func TestVisibleFraction(t *testing.T) {
	doc := mustTree(t, `<a><b>1234</b><c>5678</c></a>`)
	rs, _ := ParseSet("subject u\ndefault -\n+ /a/b")
	if f := VisibleFraction(doc, rs); f != 0.5 {
		t.Errorf("VisibleFraction = %v, want 0.5", f)
	}
	all, _ := ParseSet("subject u\ndefault +")
	if f := VisibleFraction(doc, all); f != 1.0 {
		t.Errorf("VisibleFraction = %v, want 1", f)
	}
}

func TestSignString(t *testing.T) {
	if Permit.String() != "+" || Deny.String() != "-" {
		t.Error("sign rendering wrong")
	}
	r := Rule{Sign: Permit, Object: xpath.MustParse("//b[c]/d")}
	if r.String() != "+ //b[c]/d" {
		t.Errorf("rule rendering = %q", r.String())
	}
}
