package dsp

import (
	"errors"
	"fmt"

	"repro/internal/docenc"
)

// ErrUpdateUnsupported reports a store without the block-patch protocol;
// callers fall back to a whole-container PutDocument.
var ErrUpdateUnsupported = errors.New("dsp: store does not support block updates")

// DocUpdater is implemented by stores that support the atomic
// block-level update handshake behind delta re-publish:
//
//	token := BeginUpdate(newHeader, baseVersion)
//	PutBlocks(token, run.Start, run.Blocks)   // once per changed run
//	CommitUpdate(token)                       // or AbortUpdate
//
// Begin stages an update against the version the publisher diffed from;
// Commit applies header and staged blocks in one atomic step, reusing
// every unstaged block of the previous version — so a delta re-publish
// moves only the changed bytes over the wire. A concurrent publication
// that bumps the version between Begin and Commit makes the Commit fail
// (optimistic concurrency); nothing is partially applied. BeginUpdate
// with baseVersion 0 against an absent document creates it, in which
// case every block must be staged.
type DocUpdater interface {
	BeginUpdate(h docenc.Header, baseVersion uint32) (uint64, error)
	PutBlocks(token uint64, start int, blocks [][]byte) error
	CommitUpdate(token uint64) error
	AbortUpdate(token uint64) error
}

// maxPendingUpdates bounds staged updates per store: an abandoned
// handshake (client crash between Begin and Commit) must not let hostile
// or buggy clients grow server memory without bound. Hitting the bound
// evicts the oldest staged update (see BeginUpdate).
const maxPendingUpdates = 64

// pendingUpdate is one staged (uncommitted) document update.
type pendingUpdate struct {
	header docenc.Header
	base   uint32
	blocks map[int][]byte
}

// BeginUpdate implements DocUpdater.
func (s *MemStore) BeginUpdate(h docenc.Header, baseVersion uint32) (uint64, error) {
	if h.DocID == "" || h.BlockPlain == 0 {
		return 0, fmt.Errorf("dsp: update header without document id or geometry")
	}
	sh := s.shard(h.DocID)
	sh.mu.RLock()
	cur, exists := sh.docs[h.DocID]
	var curVersion uint32
	if exists {
		curVersion = cur.Header.Version
	}
	sh.mu.RUnlock()
	if exists && curVersion != baseVersion {
		return 0, fmt.Errorf("dsp: document %q is at version %d, update is against %d",
			h.DocID, curVersion, baseVersion)
	}
	if !exists && baseVersion != 0 {
		return 0, fmt.Errorf("%w: %q (update against version %d)", ErrUnknownDocument, h.DocID, baseVersion)
	}
	if exists && h.Version <= curVersion {
		return 0, fmt.Errorf("dsp: update version %d does not advance stored version %d",
			h.Version, curVersion)
	}

	s.updMu.Lock()
	defer s.updMu.Unlock()
	// At capacity the oldest staged update is evicted rather than the
	// new one refused: a client that crashed between Begin and Commit
	// must not be able to brick the update path for everyone until a
	// server restart. The evicted update's owner, if it is somehow still
	// alive, sees "unknown token" at its next op and restarts — the same
	// optimistic-retry outcome as a version conflict.
	for !s.noEvict && len(s.updates) >= maxPendingUpdates {
		oldest := uint64(0)
		for t := range s.updates {
			if oldest == 0 || t < oldest {
				oldest = t
			}
		}
		delete(s.updates, oldest)
	}
	s.updSeq++
	token := s.updSeq
	s.updates[token] = &pendingUpdate{header: h, base: baseVersion, blocks: make(map[int][]byte)}
	return token, nil
}

// PutBlocks implements DocUpdater: it stages one run of stored blocks.
// Lengths are validated against the new header's geometry — the store
// cannot check ciphertext (it holds no keys), but it can refuse blocks
// that could never decrypt.
func (s *MemStore) PutBlocks(token uint64, start int, blocks [][]byte) error {
	if start < 0 {
		return fmt.Errorf("dsp: negative block offset %d", start)
	}
	s.updMu.Lock()
	defer s.updMu.Unlock()
	up, ok := s.updates[token]
	if !ok {
		return fmt.Errorf("dsp: unknown update token %d", token)
	}
	n := up.header.NumBlocks()
	if start > n || len(blocks) > n-start {
		return fmt.Errorf("dsp: block run [%d,+%d) outside the %d-block geometry", start, len(blocks), n)
	}
	for i, b := range blocks {
		if want := up.header.BlockStoredLen(start + i); len(b) != want {
			return fmt.Errorf("dsp: staged block %d has %d bytes, geometry says %d", start+i, len(b), want)
		}
	}
	for i, b := range blocks {
		up.blocks[start+i] = b
	}
	return nil
}

// CommitUpdate implements DocUpdater: the staged blocks and the new
// header replace the document in one step under the shard lock. Blocks
// not staged are carried over from the committed base version; a missing
// block (staged nor carryable) fails the whole commit.
func (s *MemStore) CommitUpdate(token uint64) error {
	s.updMu.Lock()
	up, ok := s.updates[token]
	delete(s.updates, token) // a failed commit retires the update too
	s.updMu.Unlock()
	if !ok {
		return fmt.Errorf("dsp: unknown update token %d", token)
	}

	sh := s.shard(up.header.DocID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old, exists := sh.docs[up.header.DocID]
	if exists && old.Header.Version != up.base {
		return fmt.Errorf("dsp: document %q moved to version %d during the update against %d",
			up.header.DocID, old.Header.Version, up.base)
	}
	if !exists && up.base != 0 {
		return fmt.Errorf("dsp: document %q vanished during the update", up.header.DocID)
	}
	n := up.header.NumBlocks()
	blocks := make([][]byte, n)
	for i := 0; i < n; i++ {
		if b, ok := up.blocks[i]; ok {
			blocks[i] = b
			continue
		}
		if exists && i < len(old.Blocks) && len(old.Blocks[i]) == up.header.BlockStoredLen(i) {
			blocks[i] = old.Blocks[i]
			continue
		}
		return fmt.Errorf("dsp: update of %q leaves block %d missing", up.header.DocID, i)
	}
	sh.docs[up.header.DocID] = &docenc.Container{Header: up.header, Blocks: blocks}
	return nil
}

// updateDocID returns the document a staged update targets. Persistence
// layers use it to route an opaque token (commit, abort, put-blocks) to
// the document's log segment without keeping a shadow token map of
// their own.
func (s *MemStore) updateDocID(token uint64) (string, bool) {
	s.updMu.Lock()
	defer s.updMu.Unlock()
	up, ok := s.updates[token]
	if !ok {
		return "", false
	}
	return up.header.DocID, true
}

// AbortUpdate implements DocUpdater.
func (s *MemStore) AbortUpdate(token uint64) error {
	s.updMu.Lock()
	defer s.updMu.Unlock()
	if _, ok := s.updates[token]; !ok {
		return fmt.Errorf("dsp: unknown update token %d", token)
	}
	delete(s.updates, token)
	return nil
}

// maxPutBatchBytes bounds one PutBlocks request built by ApplyDelta well
// under the frame limit.
const maxPutBatchBytes = 4 << 20

// ApplyDelta uploads a DeltaUpdate atomically through the update
// handshake, cutting long runs into batches that respect the wire
// limits. A store without DocUpdater gets ErrUpdateUnsupported — the
// caller decides whether a full PutDocument is an acceptable fallback.
func ApplyDelta(s Store, d *docenc.DeltaUpdate) error {
	up, ok := s.(DocUpdater)
	if !ok {
		return ErrUpdateUnsupported
	}
	token, err := up.BeginUpdate(d.Header, d.BaseVersion)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		_ = up.AbortUpdate(token)
		return err
	}
	for _, run := range d.Runs {
		off := 0
		for off < len(run.Blocks) {
			end, bytes := off, 0
			for end < len(run.Blocks) && end-off < maxBatchBlocks {
				bytes += len(run.Blocks[end])
				if bytes > maxPutBatchBytes && end > off {
					break
				}
				end++
			}
			if err := up.PutBlocks(token, run.Start+off, run.Blocks[off:end]); err != nil {
				return abort(err)
			}
			off = end
		}
	}
	if err := up.CommitUpdate(token); err != nil {
		// Commit retires the token itself; aborting again is harmless
		// but pointless.
		return err
	}
	return nil
}

var _ DocUpdater = (*MemStore)(nil)
