package dsp

// Pooled client-side frames for the batched read path. Client.ReadBlocks
// allocates one frame buffer per response and lets the returned blocks
// alias it — safe, but a terminal scanning a long document allocates a
// fresh frame for every run. ReadBlocksFrame instead parks response
// buffers in a pool: the caller reads the blocks (views into the pooled
// buffer), copies out anything it needs to keep, and releases the frame
// for the next round trip to reuse.

import "sync"

// maxPooledFrameBuf bounds the buffer capacity a released frame may
// retain — one huge response must not pin megabytes in the pool forever.
const maxPooledFrameBuf = 1 << 20

// BlockFrame is one batched-read response backed by a pooled buffer.
// The slices returned by Blocks alias that buffer and are valid only
// until Release; data that must outlive the frame goes through CopyOut
// (or an explicit append-copy) first.
type BlockFrame struct {
	buf    []byte
	blocks [][]byte
}

var framePool = sync.Pool{New: func() any { return new(BlockFrame) }}

// Blocks returns the decoded block views, in request order. The views
// alias the frame's buffer: reading them after Release is a bug (the
// buffer may already carry the next response).
func (f *BlockFrame) Blocks() [][]byte { return f.blocks }

// CopyOut returns a copy of block i that survives Release.
func (f *BlockFrame) CopyOut(i int) []byte {
	b := f.blocks[i]
	return append(make([]byte, 0, len(b)), b...)
}

// Release returns the frame to the pool. The frame and every view
// obtained from Blocks must not be used afterwards.
func (f *BlockFrame) Release() {
	for i := range f.blocks {
		f.blocks[i] = nil
	}
	f.blocks = f.blocks[:0]
	if cap(f.buf) > maxPooledFrameBuf {
		f.buf = nil
	}
	framePool.Put(f)
}

// ReadBlocksFrame is ReadBlocks without the per-call frame allocation:
// the response lands in a pooled buffer and the blocks are views into
// it. The caller must Release the frame when done with the views.
func (c *Client) ReadBlocksFrame(docID string, start, count int) (*BlockFrame, error) {
	if start < 0 || count < 0 {
		return nil, errNegativeRange(start, count)
	}
	f := framePool.Get().(*BlockFrame)
	body, fbuf, err := c.roundTripInto(readBlocksReq(docID, start, count), f.buf)
	// Keep whatever buffer the transport ended up with (it regrows when a
	// response outsizes the pooled one) so the next round trip reuses it.
	f.buf = fbuf
	if err != nil {
		f.Release()
		return nil, err
	}
	blocks, err := parseBlockRun(body, count, f.blocks[:0])
	if err != nil {
		f.Release()
		return nil, err
	}
	f.blocks = blocks
	return f, nil
}
