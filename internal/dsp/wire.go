package dsp

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire protocol: each message is a uint32 big-endian length followed by
// the payload. Requests start with an op byte; responses start with a
// status byte (statusOK/statusErr) followed by the body or an error
// string.
const (
	opPutDocument = 1
	opHeader      = 2
	opReadBlock   = 3
	opPutRuleSet  = 4
	opRuleSet     = 5
	opList        = 6
	// opReadBlocks fetches a contiguous run of blocks in one round trip:
	// request is docID, start, count; response body is count
	// length-prefixed blocks.
	opReadBlocks = 7
	// The block-level update handshake (delta re-publish): opBeginUpdate
	// stages a new header against a base version and returns a token;
	// opPutBlocks stages one run of stored blocks; opCommitUpdate applies
	// everything atomically (opAbortUpdate discards it). See DocUpdater.
	opBeginUpdate  = 8
	opPutBlocks    = 9
	opCommitUpdate = 10
	opAbortUpdate  = 11
	// opStoreStats asks the server for its observability snapshot
	// (documents held, cache hit rates, durable-tier WAL/fsync counters);
	// the response body is a JSON ServerStats.
	opStoreStats = 12
)

// maxBatchBlocks bounds one opReadBlocks run: large enough for any skip
// run the encoder emits, small enough that a hostile count cannot make
// the server stage an absurd response. (The assembled response is
// additionally checked against maxFrame at dispatch, since block sizes
// vary.)
const maxBatchBlocks = 1 << 16

const (
	statusOK  = 0
	statusErr = 1
)

// maxFrame bounds a single message (64 MiB: far above any container this
// system produces, low enough to stop hostile length prefixes).
const maxFrame = 64 << 20

// writeFrame sends one length-prefixed message.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("dsp: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame receives one length-prefixed message.
func readFrame(r io.Reader) ([]byte, error) {
	return readFrameInto(r, nil)
}

// readFrameInto receives one length-prefixed message into buf when its
// capacity suffices, allocating only when the frame is larger. The
// returned slice aliases buf in the reuse case — the caller owns the
// lifetime either way.
func readFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("dsp: frame of %d bytes exceeds limit", n)
	}
	if uint32(cap(buf)) >= n {
		buf = buf[:n]
	} else {
		buf = make([]byte, n)
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// wire string/varint helpers.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

type wireReader struct {
	data []byte
	pos  int
	err  error
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.err = fmt.Errorf("dsp: truncated varint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *wireReader) string() string {
	return string(r.bytes())
}

func (r *wireReader) bytes() []byte {
	l := r.uvarint()
	if r.err != nil {
		return nil
	}
	// Compare in uint64 space: a hostile length would overflow int and
	// slip past an int comparison into a slice panic.
	if l > uint64(len(r.data)-r.pos) {
		r.err = fmt.Errorf("dsp: truncated field at offset %d", r.pos)
		return nil
	}
	b := r.data[r.pos : r.pos+int(l)]
	r.pos += int(l)
	return b
}

func (r *wireReader) rest() []byte {
	if r.err != nil {
		return nil
	}
	b := r.data[r.pos:]
	r.pos = len(r.data)
	return b
}
