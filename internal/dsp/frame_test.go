package dsp

import (
	"bytes"
	"net"
	"testing"
)

// frameRig serves a store over loopback TCP and returns a connected
// client (everything torn down with the test).
func frameRig(t *testing.T, store Store) *Client {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestClientBlockFrameAliasing: the frame contract — Blocks views alias
// the pooled buffer and die with Release, CopyOut survives it — holds
// when the next read reuses the buffer.
func TestClientBlockFrameAliasing(t *testing.T) {
	store := NewMemStore()
	doc := benchContainer("framed", 16, 1024)
	if err := store.PutDocument(doc); err != nil {
		t.Fatal(err)
	}
	c := frameRig(t, store)

	f, err := c.ReadBlocksFrame("framed", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Blocks()
	if len(got) != 4 {
		t.Fatalf("frame carries %d blocks, want 4", len(got))
	}
	for i := range got {
		if !bytes.Equal(got[i], doc.Blocks[i]) {
			t.Fatalf("frame block %d differs", i)
		}
	}
	kept := f.CopyOut(1)
	alias := got[1] // view into the pooled buffer, invalid after Release
	var bufID *byte
	if len(f.buf) > 0 {
		bufID = &f.buf[:1][0]
	}
	f.Release()

	// The next read through the same (single-goroutine) pool reuses the
	// buffer; different request so the bytes under the old views change.
	f2, err := c.ReadBlocksFrame("framed", 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Release()
	for i, b := range f2.Blocks() {
		if !bytes.Equal(b, doc.Blocks[8+i]) {
			t.Fatalf("second frame block %d differs", i)
		}
	}
	if !bytes.Equal(kept, doc.Blocks[1]) {
		t.Fatal("CopyOut data changed when the frame was reused")
	}
	reused := len(f2.buf) > 0 && bufID == &f2.buf[:1][0]
	if !reused {
		// sync.Pool may drop the frame (GC between reads); the aliasing
		// half of the contract is only observable when it kept it.
		t.Logf("pool did not reuse the frame buffer; aliasing unobservable this run")
	} else if bytes.Equal(alias, doc.Blocks[1]) {
		t.Fatal("released view still reads the old response after buffer reuse — Release is not reclaiming")
	}
}

// TestClientBlockFrameMatchesReadBlocks: both batched read paths decode
// the same response body identically, including the error cases.
func TestClientBlockFrameMatchesReadBlocks(t *testing.T) {
	store := NewMemStore()
	doc := benchContainer("paths", 32, 512)
	if err := store.PutDocument(doc); err != nil {
		t.Fatal(err)
	}
	c := frameRig(t, store)
	plain, err := c.ReadBlocks("paths", 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.ReadBlocksFrame("paths", 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Release()
	framed := f.Blocks()
	if len(framed) != len(plain) {
		t.Fatalf("paths disagree on count: %d vs %d", len(framed), len(plain))
	}
	for i := range plain {
		if !bytes.Equal(plain[i], framed[i]) {
			t.Fatalf("paths disagree on block %d", i)
		}
	}
	if _, err := c.ReadBlocksFrame("paths", 30, 9); err == nil {
		t.Fatal("out-of-range framed read served")
	}
	if _, err := c.ReadBlocksFrame("paths", -1, 2); err == nil {
		t.Fatal("negative framed range served")
	}
	// The error path must have returned its frame to the pool without
	// wedging the connection.
	if _, err := c.ReadBlocks("paths", 0, 1); err != nil {
		t.Fatalf("connection unusable after framed error: %v", err)
	}
}

// TestWireReadAllocsFlatAcrossRunLength: the zero-copy acceptance test.
// Over a checkpoint-resident corpus (mmap-served where supported), the
// end-to-end allocations of a batched read must not scale with the block
// count: the server pins views instead of copying blocks and the client
// reuses pooled frames, so an 8× longer run may cost at most a fraction
// of an allocation more.
func TestWireReadAllocsFlatAcrossRunLength(t *testing.T) {
	dir := t.TempDir()
	s := openFileStore(t, dir, FileStoreOptions{})
	defer s.Close()
	const nBlocks = 64
	doc := benchContainer("flat", nBlocks, 4096)
	if err := s.PutDocument(doc); err != nil {
		t.Fatal(err)
	}
	// Make the corpus checkpoint-resident: on mmap platforms the reads
	// below are served as pinned views into the image.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	c := frameRig(t, s)

	measure := func(run int) float64 {
		// Warm the pools (response head/blocks capacity, frame buffer) so
		// the measurement sees steady state, not first-use growth.
		for i := 0; i < 8; i++ {
			f, err := c.ReadBlocksFrame("flat", 0, run)
			if err != nil {
				t.Fatal(err)
			}
			f.Release()
		}
		return testing.AllocsPerRun(100, func() {
			f, err := c.ReadBlocksFrame("flat", 0, run)
			if err != nil {
				t.Fatal(err)
			}
			f.Release()
		})
	}
	small := measure(4)
	large := measure(32)
	t.Logf("allocs/op: run=4 → %.1f, run=32 → %.1f", small, large)
	// Per-op allocations are a fixed toll (request frame, dispatch
	// goroutine, channels) on both sides; per-block cost must be ~zero.
	// 28 extra blocks are allowed at most half an allocation each.
	if large-small > 14 {
		t.Fatalf("allocs grow with run length: %.1f at run=4 vs %.1f at run=32", small, large)
	}
}
