package dsp

// The sendfile cold serve tier. The mmap tier (PR 7) got a cold batched
// read down to zero heap copies — but the kernel still reads page-cache
// bytes back through the user mapping into socket buffers, paying page
// faults and TLB pressure on every cold run. Checkpoint image v3 stores
// every block behind its uvarint length prefix — byte for byte the
// opReadBlocks wire encoding — so a contiguous run of
// checkpoint-resident blocks, interleaved prefixes included, is one
// contiguous file span. The store resolves such a run to (file, offset,
// span) and the per-connection writer ships it with a single
// sendfile(2): page cache → socket entirely inside the kernel.
//
// The fallback contract is byte identity. A wireRun's span is also
// appended to the response as an ordinary in-place buffer, so the plain
// writev path — nosendfile builds, non-linux platforms, conns that are
// not syscall.Conn, or a connection whose sendfile latched off after
// ENOSYS/EINVAL — emits exactly the same frame without any special
// casing. A short sendfile resumes from the mapping at the same byte
// offset for the same reason: span[sent:] is the rest of the wire
// bytes.

import (
	"io"
	"net"
	"os"
	"sync/atomic"
	"syscall"
)

// sendfileMinRunBytes is the floor below which a checkpoint run is
// served through writev anyway: a sendfile costs a syscall plus a
// writev flush of the bytes queued before it, which only pays for
// itself on runs big enough to dominate the frame.
const sendfileMinRunBytes = 16 << 10

// sendfileStats is the sink a connection writer reports sendfile
// outcomes into — owned by the FileStore whose checkpoint files the
// runs point at, carried on each wireRun so the writer never needs to
// know which store built the response.
type sendfileStats struct {
	// reads counts sendfile syscall sequences that shipped a full run;
	// bytes counts the bytes they moved (short-write resumes included).
	reads, bytes atomic.Int64
	// fallbacks counts runs (or run remainders) the writer had to push
	// through writev after the kernel refused sendfile at runtime.
	fallbacks atomic.Int64
}

// wireRun is one contiguous checkpoint-file span covering blocks
// [Start, Start+Count) of a batched read, wire-encoded in place: the
// span bytes are [uvarint len][payload] per block, exactly what the
// response frame needs at that position.
type wireRun struct {
	Start, Count int
	// Span is the mapped view of the run — the writev fallback bytes.
	Span []byte
	// File and Off locate the same bytes on disk for sendfile. The file
	// is kept open by the region the response's pin holds.
	File *os.File
	Off  int64
	// Stats receives the writer's syscall outcomes.
	Stats *sendfileStats
}

// wireBlockReader is implemented by stores that can resolve parts of a
// pinned batched read to sendfile-capable checkpoint-file runs. Runs
// are appended to *runs with Start relative to the returned slice; the
// returned blocks (and every span) stay valid until the pins release,
// exactly like ReadBlocksPinned.
type wireBlockReader interface {
	readBlocksWire(docID string, start, count int, pins *[]BlockPin, runs *[]wireRun) ([][]byte, error)
}

// readBlocksForWire is readBlockRangePinned for the batched-read
// dispatch path: stores with a sendfile tier also report file runs.
func readBlocksForWire(s Store, docID string, start, count int, pins *[]BlockPin, runs *[]wireRun) ([][]byte, error) {
	if wr, ok := s.(wireBlockReader); ok {
		return wr.readBlocksWire(docID, start, count, pins, runs)
	}
	return readBlockRangePinned(s, docID, start, count, pins)
}

// SendfileCapable reports whether this build and platform can serve
// checkpoint runs via sendfile at all (benchmarks gate their sendfile
// metrics on it; the runtime may still latch individual connections
// back to writev).
func SendfileCapable() bool { return sendfileSupported }

// testSendfileOverride, when non-nil, replaces the sendfile syscall on
// the write path: it must behave like one — deliver some prefix of span
// to w, return how many bytes it delivered, whether the connection
// should latch back to writev, and any fatal connection error. Tests
// use it to inject short counts, mid-response ENOSYS and peer deaths.
var testSendfileOverride func(w io.Writer, span []byte) (int64, bool, error)

// connWriter wraps one server connection for the response writer: it
// remembers whether sendfile is still worth attempting here. A conn
// that is not a syscall.Conn (net.Pipe in tests, TLS some day) never
// attempts; a runtime refusal (ENOSYS, EINVAL, EOPNOTSUPP) latches the
// connection back to writev for good — per connection, so one odd
// socket never degrades its neighbors.
type connWriter struct {
	conn net.Conn
	rc   syscall.RawConn
	// sendfileOK starts true on capable builds and latches false on the
	// first runtime refusal.
	sendfileOK bool
}

func newConnWriter(conn net.Conn) *connWriter {
	cw := &connWriter{conn: conn}
	if !sendfileSupported && testSendfileOverride == nil {
		return cw
	}
	if sc, ok := conn.(syscall.Conn); ok {
		if rc, err := sc.SyscallConn(); err == nil {
			cw.rc = rc
			cw.sendfileOK = true
		}
	}
	return cw
}

// sendfile ships one run, resuming short writes, and reports how many
// span bytes reached the socket. A kernel refusal latches the fallback:
// the caller writes span[sent:] through the ordinary path and this
// connection stops attempting sendfile. A non-nil error is a dead
// connection.
func (cw *connWriter) sendfile(span []byte, src *os.File, off int64, stats *sendfileStats) (sent int64, err error) {
	var unsupported bool
	if testSendfileOverride != nil {
		sent, unsupported, err = testSendfileOverride(cw.conn, span)
	} else {
		sent, unsupported, err = sendfileTo(cw.rc, src, off, int64(len(span)))
	}
	if stats != nil {
		if sent > 0 {
			stats.bytes.Add(sent)
		}
		if unsupported {
			stats.fallbacks.Add(1)
		} else if err == nil {
			stats.reads.Add(1)
		}
	}
	if unsupported {
		cw.sendfileOK = false
	}
	return sent, err
}
