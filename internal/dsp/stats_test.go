package dsp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestFileStoreStatsNeverTorn hammers Stats() against concurrent
// committers and asserts the invariants that independent atomic loads
// used to tear: SyncWaits can never be observed below SyncRounds (both
// counters mutate under the group committer's mutex, and every round
// exists because a waiter registered first), and a segment's Records /
// AppendedBytes pair is snapshotted in one lock pass (every record costs
// at least its frame plus a one-byte body, so a Records increment
// without its bytes is detectable). Run under -race in CI.
func TestFileStoreStatsNeverTorn(t *testing.T) {
	s := openFileStore(t, t.TempDir(), FileStoreOptions{NoSync: true})
	defer s.Close()
	// NoSync skips the group committer, so drive it directly too: a
	// second store with sync on shares the Stats path under real rounds.
	sync1 := openFileStore(t, t.TempDir(), FileStoreOptions{})
	defer sync1.Close()

	const writers = 8
	const putsPerWriter = 40
	var done atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < putsPerWriter; i++ {
				c := mmapTestContainer(fmt.Sprintf("stats-%d-%d", w, i), 1, 2)
				if err := s.PutDocument(c); err != nil {
					t.Error(err)
					return
				}
				if err := sync1.PutDocument(c); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for !done.Load() {
				for _, store := range []*FileStore{s, sync1} {
					st := store.Stats()
					if st.SyncRounds > st.SyncWaits {
						t.Errorf("torn group-commit stats: rounds=%d > waits=%d", st.SyncRounds, st.SyncWaits)
						return
					}
					if min := st.Records * (walFrameOverhead + 1); st.AppendedBytes < min {
						t.Errorf("torn wal stats: %d records but only %d bytes (< %d)",
							st.Records, st.AppendedBytes, min)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	done.Store(true)
	readers.Wait()

	st := sync1.Stats()
	if st.SyncWaits == 0 || st.SyncRounds == 0 {
		t.Fatalf("sync store committed without rounds: %+v", st)
	}
	if want := int64(writers * putsPerWriter); st.Records != want || s.Stats().Records != want {
		t.Fatalf("records=%d (nosync %d), want %d", st.Records, s.Stats().Records, want)
	}
}
