package dsp

// FileStore is the durable DSP tier: a MemStore image kept alive by
// write-ahead logging. Reads are served from the sharded in-memory
// store at memory speed; every acknowledged mutation is a WAL record
// first, so a crash at any instant restarts on exactly the prefix of
// history that was made durable. The delta handshake logs typed
// begin/put-blocks/commit records — a delta re-publish appends
// O(changed bytes), where the pre-WAL file store rewrote the whole
// image per commit.
//
// Layout: the on-disk store is segmented to match the in-memory shards.
// A directory holds one `wal-NNN.log` + `checkpoint-NNN` pair per
// shard, a `store.meta` file pinning the segment count the store was
// created with, and a `LOCK` file (flock) so two processes can never
// interleave appends into one log. Every record of a document — its
// puts, its rule sets, its whole update handshake — lives in the
// segment its id hashes to, so writers to different documents append
// under different log mutexes and fsync through different group-commit
// batchers: the write path scales with segments instead of serializing
// on one log lock.
//
// Checkpoints are per-segment and streaming: a segment's image is
// written document by document through a buffered writer straight to
// its temp file (never materialized whole in memory), then published by
// atomic rename, after which that segment's log is truncated and its
// still-staged updates re-logged. A segment crossing its share of
// Options.CheckpointBytes is checkpointed by a background goroutine —
// the writer that tripped the threshold is never charged the
// compaction, and only writers to the compacting segment wait on it.
//
// Recovery is parallel: segment checkpoints load and segment logs
// replay concurrently across GOMAXPROCS workers (a document's whole
// history lives in one segment, so segments replay independently).
// Each segment stops at — and truncates — its own torn tail (kill -9
// mid append); a record that no longer applies (a checkpoint superseded
// it, or its staged update never committed) is skipped, not fatal.
// A directory in the PR 4 single-file layout (`wal.log` + `checkpoint`)
// is migrated to segments, exactly once, on open.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/docenc"
)

// FileStoreOptions tunes a FileStore.
type FileStoreOptions struct {
	// Shards is the partition count — in memory and on disk (one WAL
	// segment + checkpoint per shard). It is fixed when the store is
	// created and persisted in store.meta; opening an existing store
	// keeps the count it was created with (0 = DefaultShards).
	Shards int
	// NoSync skips every fsync. Throughput-measurement and
	// scratch-store use only: a crash can lose acknowledged writes
	// (each log stays ordered, so recovery still sees a clean prefix).
	NoSync bool
	// CheckpointBytes is the total log budget across all segments: a
	// segment whose log grows past its share (CheckpointBytes/Shards)
	// is checkpointed in the background (0 = DefaultCheckpointBytes,
	// < 0 = never — explicit Checkpoint calls only).
	CheckpointBytes int64
	// RecoveryParallelism caps the workers that load checkpoints and
	// replay segment logs at open (0 = GOMAXPROCS, 1 = sequential).
	RecoveryParallelism int
	// DisableMmap forces the heap read tier even where mapping is
	// supported: checkpoint images are loaded into memory instead of
	// mapped, exactly like a nommap build. The on-disk format is the
	// same either way.
	DisableMmap bool
	// DisableSendfile keeps the mapped tier but stops resolving
	// checkpoint runs to (file, offset) spans, so batched reads always
	// travel the writev path — exactly like a nosendfile build (or a
	// non-linux platform). Implied by DisableMmap: the sendfile tier
	// serves out of the mapped images' files.
	DisableSendfile bool
}

// DefaultCheckpointBytes bounds the combined log size (and therefore
// recovery time) when the caller does not choose a budget.
const DefaultCheckpointBytes = 64 << 20

// FileStoreStats is a point-in-time snapshot of a FileStore's durability
// counters.
type FileStoreStats struct {
	// Records and AppendedBytes count WAL appends since open (frame
	// overhead included), summed over segments. Syncs counts fsync
	// barriers actually issued — group commit makes it smaller than the
	// number of durable commits.
	Records, AppendedBytes, Syncs int64
	// SyncWaits counts durable commits served through the cross-segment
	// group committer; SyncRounds counts the fsync rounds it ran.
	// SyncWaits/SyncRounds is the achieved commit-batching factor.
	SyncWaits, SyncRounds int64
	// WALBytes is the combined current log length; Checkpoints counts
	// segment checkpoints taken since open (one Checkpoint() call
	// checkpoints every segment).
	WALBytes, Checkpoints int64
	// ReplayedRecords and SkippedRecords describe recovery at open:
	// applied vs. superseded log records. TornTail reports that at
	// least one segment log ended in a partially written record, which
	// recovery truncated.
	ReplayedRecords, SkippedRecords int64
	TornTail                        bool
	// SegmentCount is the store's on-disk segment count (fixed at
	// creation, read back from store.meta on reopen).
	SegmentCount int
	// RecoveryDuration is the wall time the last open spent loading
	// checkpoints and replaying logs (migration included).
	RecoveryDuration time.Duration
	// LastCheckpointDuration is the wall time of the most recent
	// checkpoint — one segment for a background trigger, all segments
	// for an explicit Checkpoint().
	LastCheckpointDuration time.Duration
	// Migrated reports that this open converted a PR 4 single-file
	// layout (wal.log + checkpoint) into segments.
	Migrated bool
	// MappedBytes is the total size of the currently mapped checkpoint
	// images (0 with mmap disabled or unsupported). MmapReads and
	// HeapReads count blocks served from the mapped tier vs. heap
	// memory — together they show how much of the corpus the store
	// serves without holding it resident.
	MappedBytes          int64
	MmapReads, HeapReads int64
	// MadviseCalls counts paging-advice hints issued for mapped images:
	// WILLNEED ahead of footer-driven recovery scans and large cold
	// pinned runs, SEQUENTIAL on freshly installed images. Always 0 on
	// platforms without madvise and under -tags nommap.
	MadviseCalls int64
	// FooterMigrations counts segments whose checkpoint image this open
	// rewrote into the current format — footerless (pre-index) v1 images
	// and v2 images without wire prefixes alike.
	FooterMigrations int64
	// SendfileReads counts checkpoint runs fully shipped by the
	// kernel-resident serve path (sendfile, one count per run);
	// SendfileBytes the bytes those calls moved page cache → socket.
	// SendfileFallbacks counts runs a connection had to push through
	// writev after the kernel refused sendfile at runtime (ENOSYS,
	// EINVAL, short transfer) — the output is byte-identical either way.
	// All zero with the tier disabled (DisableSendfile/DisableMmap, the
	// nosendfile build tag, non-linux platforms).
	SendfileReads, SendfileBytes, SendfileFallbacks int64
}

// segment is one on-disk partition: a WAL with its own append mutex and
// group-commit batcher, plus a checkpoint image, both owned by the
// in-memory shard of the same index.
type segment struct {
	idx int
	wal *walWriter

	// ckptMu admits one checkpoint of this segment at a time (an
	// explicit Checkpoint racing the background trigger).
	ckptMu sync.Mutex
	// ckptQueued gates one outstanding background request per segment.
	ckptQueued atomic.Bool

	// region is the segment's current checkpoint mapping (nil when the
	// heap tier serves everything). Written under the owning shard's
	// write lock (installMapping) and read under its read lock — the
	// same discipline as the shard's documents, whose blocks may point
	// into it.
	region *mmapRegion
	// needRewrite marks a segment whose recovered checkpoint image
	// predates the current format (v1: no index footer; v2: no wire
	// prefixes); the open rewrites it once. Written single-threaded
	// during recovery.
	needRewrite bool
}

// FileStore implements Store, BlockRangeReader and DocUpdater on disk.
type FileStore struct {
	mem  *MemStore
	dir  string
	opts FileStoreOptions
	lock *dirLock
	segs []*segment

	// gc batches durability barriers across segments: concurrent commits
	// share fsync rounds instead of each paying per-segment barriers.
	gc *groupCommitter

	// segBudget is the per-segment auto-checkpoint threshold
	// (CheckpointBytes split across segments; <= 0 disables).
	segBudget int64

	checkpoints atomic.Int64
	lastCkpt    atomic.Int64 // nanoseconds of the most recent checkpoint

	// mmapOn selects the tiered read path: checkpoint-resident blocks
	// served as views into mapped images, everything newer from heap.
	// Fixed at open (platform support ∧ !DisableMmap).
	mmapOn bool
	// sendfileOn additionally lets batched reads resolve checkpoint
	// runs to (file, offset) spans the connection writer can ship with
	// sendfile. Fixed at open (mmapOn ∧ platform support ∧
	// !DisableSendfile).
	sendfileOn bool
	// sf receives the connection writers' sendfile outcomes for runs
	// this store resolved (each wireRun carries the pointer).
	sf sendfileStats
	// mappedBytes tracks the combined size of the segments' current
	// regions; mmapReads / heapReads count blocks served per tier.
	mappedBytes  atomic.Int64
	mmapReads    atomic.Int64
	heapReads    atomic.Int64
	madviseCalls atomic.Int64
	// footerMigrations is set during open (before the store is visible).
	footerMigrations int64

	// broken latches the first append/checkpoint failure: once a log
	// can no longer record history, acknowledging further mutations
	// would promise durability the store cannot deliver. Reads keep
	// working.
	broken atomic.Value // error

	recovery          time.Duration
	migrated          bool
	replayed, skipped int64
	tornTail          bool

	// The background checkpointer: durable() enqueues a segment index
	// when its log crosses segBudget; the worker compacts it off the
	// request path.
	ckptCh   chan int
	ckptStop chan struct{}
	ckptWG   sync.WaitGroup
	stopOnce sync.Once

	// testCkptGate, when set, is called by the checkpointer under the
	// segment's locks — tests use it to freeze a checkpoint mid-flight.
	// It must be set before the store's first mutation, from the
	// goroutine that will mutate (the trigger enqueue is the
	// happens-before edge to the worker).
	testCkptGate func(seg int)
}

const (
	// Legacy (PR 4) single-file layout, migrated on open.
	walFileName  = "wal.log"
	ckptFileName = "checkpoint"

	metaFileName = "store.meta"
	lockFileName = "LOCK"
	metaHeader   = "sds-segmented-store v1"
)

func segWalName(i int) string  { return fmt.Sprintf("wal-%03d.log", i) }
func segCkptName(i int) string { return fmt.Sprintf("checkpoint-%03d", i) }

func (s *FileStore) segWalPath(i int) string  { return filepath.Join(s.dir, segWalName(i)) }
func (s *FileStore) segCkptPath(i int) string { return filepath.Join(s.dir, segCkptName(i)) }

// checkpoint image magic ("SDSC" + format version). Version 2 appended
// a block-index footer (see ckptindex.go) after the v1 body. Version 3
// keeps the footer and changes the body's block layout: every block is
// written behind its uvarint length prefix — byte for byte the
// opReadBlocks wire encoding — so a contiguous run of
// checkpoint-resident blocks is a wire-exact file span the sendfile
// serve tier ships with one syscall. Footer block refs still point at
// the payloads (the offset skips the prefix), so the mapped tier's
// view machinery is unchanged. Readers accept all three versions;
// v1/v2 images are heap-loaded (or mapped, for footered v2) and
// rewritten in the current format once at open.
var (
	ckptMagic   = []byte{'S', 'D', 'S', 'C', 3}
	ckptMagicV2 = []byte{'S', 'D', 'S', 'C', 2}
	ckptMagicV1 = []byte{'S', 'D', 'S', 'C', 1}
)

// ckptMagicOK accepts the current and the legacy image versions.
func ckptMagicOK(data []byte) bool {
	if len(data) < len(ckptMagic) {
		return false
	}
	head := string(data[:len(ckptMagic)])
	return head == string(ckptMagic) || head == string(ckptMagicV2) || head == string(ckptMagicV1)
}

// ckptWirePrefixed reports a v3 body: blocks stored behind their wire
// varint prefixes.
func ckptWirePrefixed(data []byte) bool {
	return len(data) >= len(ckptMagic) && string(data[:len(ckptMagic)]) == string(ckptMagic)
}

// NewFileStore opens (or creates) a durable store in dir with default
// options.
func NewFileStore(dir string) (*FileStore, error) {
	return NewFileStoreOptions(dir, FileStoreOptions{})
}

// NewFileStoreOptions opens (or creates) a durable store in dir,
// recovering from the segment checkpoints and logs found there. A
// directory already open (this process or another) fails with
// ErrStoreLocked; a lock left by a dead process is reclaimed.
func NewFileStoreOptions(dir string, opts FileStoreOptions) (*FileStore, error) {
	if opts.Shards == 0 {
		opts.Shards = DefaultShards
	}
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = DefaultCheckpointBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := acquireDirLock(filepath.Join(dir, lockFileName))
	if err != nil {
		return nil, err
	}
	s := &FileStore{dir: dir, opts: opts, lock: lock}
	s.mmapOn = mmapSupported && !opts.DisableMmap
	s.sendfileOn = s.mmapOn && sendfileSupported && !opts.DisableSendfile
	start := time.Now()
	if err := s.openDir(); err != nil {
		// Release whatever a partial open acquired — the lock, any
		// segment logs already opened before the failure, and any
		// checkpoint mappings — so a caller retrying the open (say,
		// after repairing a corrupt checkpoint) does not accumulate
		// file descriptors or mappings.
		for _, seg := range s.segs {
			if seg.wal != nil {
				_ = seg.wal.close()
			}
			if seg.region != nil {
				seg.region.release()
			}
		}
		_ = lock.release()
		return nil, err
	}
	// One-shot format migration: a recovered segment whose image
	// predates the current format — footerless v1, or footered v2
	// without wire prefixes — is re-checkpointed now (the image is
	// rewritten from the just-recovered state and its mapping
	// installed), so from here on every image on disk is footered,
	// wire-prefixed and mmap-served. Counted into the recovery time
	// like the layout migration.
	for _, seg := range s.segs {
		if seg.needRewrite && s.mmapOn {
			if err := s.checkpointSegmentMode(seg, true); err != nil {
				_ = s.Close()
				return nil, fmt.Errorf("dsp: rewriting legacy checkpoint of segment %d: %w", seg.idx, err)
			}
			seg.needRewrite = false
			s.footerMigrations++
		}
	}
	s.recovery = time.Since(start)
	s.gc = newGroupCommitter()
	if s.opts.CheckpointBytes > 0 {
		s.segBudget = s.opts.CheckpointBytes / int64(len(s.segs))
		if s.segBudget < 1 {
			s.segBudget = 1
		}
	}
	s.startCheckpointWorker()
	return s, nil
}

// openDir decides which layout the directory holds and recovers it. The
// meta file is authoritative: it is written only after every segment
// image is durable, so its presence means the segmented layout is
// complete (any legacy leftovers are sweepings of an interrupted
// post-migration cleanup).
func (s *FileStore) openDir() error {
	// Sweep temp files a crashed checkpoint, migration or meta write
	// left behind.
	if tmps, err := filepath.Glob(filepath.Join(s.dir, "*.tmp-*")); err == nil {
		for _, t := range tmps {
			_ = os.Remove(t)
		}
	}
	nSeg, err := readSegmentMeta(s.dir)
	if err != nil {
		return err
	}
	legacyWal := fileExists(filepath.Join(s.dir, walFileName))
	legacyCkpt := fileExists(filepath.Join(s.dir, ckptFileName))
	switch {
	case nSeg > 0:
		s.mem = NewMemStoreShards(nSeg)
		s.makeSegments(nSeg)
		if legacyWal || legacyCkpt {
			_ = os.Remove(filepath.Join(s.dir, walFileName))
			_ = os.Remove(filepath.Join(s.dir, ckptFileName))
		}
		return s.recoverSegments()
	case legacyWal || legacyCkpt:
		s.mem = NewMemStoreShards(s.opts.Shards)
		s.makeSegments(s.opts.Shards)
		return s.migrateLegacy()
	default:
		s.mem = NewMemStoreShards(s.opts.Shards)
		s.makeSegments(s.opts.Shards)
		if err := writeSegmentMeta(s.dir, len(s.segs), s.opts.NoSync); err != nil {
			return err
		}
		for _, seg := range s.segs {
			w, err := openWalWriter(s.segWalPath(seg.idx), 0, s.opts.NoSync)
			if err != nil {
				return err
			}
			seg.wal = w
		}
		return nil
	}
}

func (s *FileStore) makeSegments(n int) {
	s.segs = make([]*segment, n)
	for i := range s.segs {
		s.segs[i] = &segment{idx: i}
	}
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// readSegmentMeta returns the persisted segment count, or 0 when the
// directory has no meta file (fresh store or legacy layout).
func readSegmentMeta(dir string) (int, error) {
	data, err := os.ReadFile(filepath.Join(dir, metaFileName))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(string(data))
	if len(fields) != 4 || fields[0]+" "+fields[1] != metaHeader || fields[2] != "segments" {
		return 0, fmt.Errorf("dsp: %s/%s: malformed store meta", dir, metaFileName)
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil || n < 1 {
		return 0, fmt.Errorf("dsp: %s/%s: bad segment count %q", dir, metaFileName, fields[3])
	}
	return n, nil
}

// writeSegmentMeta persists the segment count via temp file + atomic
// rename, then fsyncs the directory: once the meta is durable the
// segmented layout is the store.
func writeSegmentMeta(dir string, n int, noSync bool) error {
	tmp, err := os.CreateTemp(dir, metaFileName+".tmp-*")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if _, err := fmt.Fprintf(tmp, "%s\nsegments %d\n", metaHeader, n); err != nil {
		return cleanup(err)
	}
	if !noSync {
		if err := tmp.Sync(); err != nil {
			return cleanup(err)
		}
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, metaFileName)); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	if noSync {
		return nil
	}
	return syncDir(dir)
}

// segRecovery accumulates one segment's replay outcome (workers write
// their own struct; the opener aggregates after the join).
type segRecovery struct {
	replayed, skipped int64
	torn              bool
}

// recoverSegments loads every segment's checkpoint and replays its log,
// fanned out over RecoveryParallelism workers. Segments are independent
// by construction — a document's whole history (including its update
// handshakes) lives in the segment its id hashes to — so the only
// shared state is the MemStore, whose shard locks and update mutex
// fence the concurrent applies.
func (s *FileStore) recoverSegments() error {
	workers := s.opts.RecoveryParallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(s.segs) {
		workers = len(s.segs)
	}
	// Capacity eviction is order-sensitive; parallel replay must not
	// reproduce it (see MemStore.noEvict). Set before the workers start,
	// cleared after they join.
	s.mem.noEvict = true
	defer func() { s.mem.noEvict = false }()

	recs := make([]segRecovery, len(s.segs))
	errs := make([]error, len(s.segs))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				errs[i] = s.recoverSegment(i, &recs[i])
			}
		}()
	}
	for i := range s.segs {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("dsp: recovering %s segment %d: %w", s.dir, i, err)
		}
	}
	for _, rec := range recs {
		s.replayed += rec.replayed
		s.skipped += rec.skipped
		s.tornTail = s.tornTail || rec.torn
	}
	return nil
}

// recoverSegment restores one segment: checkpoint image, then log
// replay, then eviction of staged updates whose commit never made the
// log (their tokens died with the old process — nobody can ever commit
// them; replay needed them only to serve commits later in the log).
//
// With the mmap tier on, a footered image is mapped and its documents
// installed as views into the mapping — recovery reads the index
// footer, not the full image, and the blocks never become heap
// resident. A footerless (or unparsable-footer) image falls back to
// the heap loader and is marked for a one-shot footer rewrite.
func (s *FileStore) recoverSegment(i int, rec *segRecovery) error {
	path := s.segCkptPath(i)
	mapped := false
	if s.mmapOn {
		var err error
		mapped, err = s.loadCheckpointMapped(s.segs[i])
		if err != nil {
			return err
		}
		if mapped && !s.segs[i].region.wirePrefixed {
			// A footered v2 image maps and serves fine, but its blocks
			// lack wire prefixes, so the sendfile tier cannot coalesce
			// runs out of it: rewrite it in the current format once.
			s.segs[i].needRewrite = true
		}
	}
	if !mapped {
		if err := s.loadCheckpointFile(path); err != nil {
			return err
		}
		if s.mmapOn && fileExists(path) {
			s.segs[i].needRewrite = true
		}
	}
	tokens := make(map[uint64]uint64) // logged token → live token
	size, torn, err := replayWal(s.segWalPath(i), func(body []byte) error {
		return s.applyRecord(body, tokens, rec)
	})
	if err != nil {
		return err
	}
	for _, token := range tokens {
		_ = s.mem.AbortUpdate(token)
	}
	rec.torn = torn
	w, err := openWalWriter(s.segWalPath(i), size, s.opts.NoSync)
	if err != nil {
		return err
	}
	s.segs[i].wal = w
	return nil
}

// migrateLegacy converts a PR 4 single-file store (wal.log +
// checkpoint) into the segmented layout: recover it the old way, write
// every segment image, publish the meta file, retire the legacy pair.
// Ordered so that a crash at any point leaves either a complete legacy
// store (meta absent — migration simply reruns) or a complete segmented
// store (meta present — stray legacy files are swept on the next open).
func (s *FileStore) migrateLegacy() error {
	// Leftover segment files from an interrupted earlier migration
	// (possibly with a different shard count) are garbage — the legacy
	// pair is still the store of record.
	for _, pat := range []string{"wal-*.log", "checkpoint-*"} {
		if stale, err := filepath.Glob(filepath.Join(s.dir, pat)); err == nil {
			for _, f := range stale {
				_ = os.Remove(f)
			}
		}
	}
	if err := s.loadCheckpointFile(filepath.Join(s.dir, ckptFileName)); err != nil {
		return err
	}
	var rec segRecovery
	tokens := make(map[uint64]uint64)
	_, torn, err := replayWal(filepath.Join(s.dir, walFileName), func(body []byte) error {
		return s.applyRecord(body, tokens, &rec)
	})
	if err != nil {
		return fmt.Errorf("dsp: migrating %s: %w", s.dir, err)
	}
	for _, token := range tokens {
		_ = s.mem.AbortUpdate(token)
	}
	s.replayed, s.skipped, s.tornTail = rec.replayed, rec.skipped, torn

	// The migration is fsynced even under NoSync: it is about to unlink
	// the legacy store of record, and NoSync's contract is "a crash may
	// lose acknowledged writes", not "a crash may lose the whole store
	// that sync mode already made durable".
	for _, seg := range s.segs {
		if err := s.writeSegmentImageSync(seg.idx, true); err != nil {
			return fmt.Errorf("dsp: migrating %s: %w", s.dir, err)
		}
	}
	if err := writeSegmentMeta(s.dir, len(s.segs), false); err != nil {
		return err
	}
	for _, name := range []string{walFileName, ckptFileName} {
		if err := os.Remove(filepath.Join(s.dir, name)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	for _, seg := range s.segs {
		w, err := openWalWriter(s.segWalPath(seg.idx), 0, s.opts.NoSync)
		if err != nil {
			return err
		}
		seg.wal = w
		// The freshly written images already carry index footers; serve
		// them mapped from the start (single-threaded here, so the
		// wal.mu discipline installMapping normally relies on is moot).
		s.installMapping(seg)
	}
	s.migrated = true
	return nil
}

// Dir returns the store's directory.
func (s *FileStore) Dir() string { return s.dir }

// seg routes a document to its segment — the same hash, modulus and
// index as the MemStore shard, so segment i's log describes exactly
// shard i's contents.
func (s *FileStore) seg(docID string) *segment {
	return s.segs[shardHash(docID, 0)%uint32(len(s.segs))]
}

// Stats snapshots the durability counters (summed over segments).
func (s *FileStore) Stats() FileStoreStats {
	st := FileStoreStats{
		Checkpoints:            s.checkpoints.Load(),
		ReplayedRecords:        s.replayed,
		SkippedRecords:         s.skipped,
		TornTail:               s.tornTail,
		SegmentCount:           len(s.segs),
		RecoveryDuration:       s.recovery,
		LastCheckpointDuration: time.Duration(s.lastCkpt.Load()),
		Migrated:               s.migrated,
	}
	st.MappedBytes = s.mappedBytes.Load()
	st.MmapReads = s.mmapReads.Load()
	st.HeapReads = s.heapReads.Load()
	st.MadviseCalls = s.madviseCalls.Load()
	st.FooterMigrations = s.footerMigrations
	st.SendfileReads = s.sf.reads.Load()
	st.SendfileBytes = s.sf.bytes.Load()
	st.SendfileFallbacks = s.sf.fallbacks.Load()
	if s.gc != nil {
		// One consistent pair: both counters mutate under gc.mu, so a
		// snapshot there can never observe a round without its waiters
		// (SyncWaits >= SyncRounds always holds for callers).
		st.SyncWaits, st.SyncRounds = s.gc.statsSnapshot()
	}
	for _, seg := range s.segs {
		// Per-segment counters land in one lock pass per writer, not as
		// independent atomic reads — Records, AppendedBytes and WALBytes
		// of one segment are a point-in-time triple, never torn around an
		// in-flight append.
		rec, app, syn, size := seg.wal.statsSnapshot()
		st.Records += rec
		st.AppendedBytes += app
		st.Syncs += syn
		st.WALBytes += size
	}
	return st
}

// Close stops the background checkpointer, makes every segment log
// durable and releases the files, the checkpoint mappings and the
// directory lock. It does not checkpoint: reopening replays the logs.
// Long-lived servers call Checkpoint before Close for an instant next
// start. The store must not be used after Close — with the mmap tier
// on, checkpoint-resident blocks unmap once in-flight pins drain.
func (s *FileStore) Close() error {
	s.stopCheckpointWorker()
	if s.gc != nil {
		s.gc.stop()
	}
	var first error
	for _, seg := range s.segs {
		if seg.wal != nil {
			if err := seg.wal.syncTo(seg.wal.size()); err != nil && first == nil {
				first = err
			}
			if err := seg.wal.close(); err != nil && first == nil {
				first = err
			}
		}
		// Retire the segment's mapping: the owner reference drops here,
		// and the munmap runs once any still-pinned responses release.
		sh := &s.mem.shards[seg.idx]
		sh.mu.Lock()
		region := seg.region
		seg.region = nil
		sh.mu.Unlock()
		if region != nil {
			s.mappedBytes.Add(-int64(len(region.data)))
			region.release()
		}
	}
	if err := s.lock.release(); err != nil && first == nil {
		first = err
	}
	return first
}

func (s *FileStore) fail(err error) error {
	s.broken.CompareAndSwap(nil, err)
	return err
}

func (s *FileStore) failed() error {
	if err, ok := s.broken.Load().(error); ok {
		return fmt.Errorf("dsp: durable store is read-only after a log failure: %w", err)
	}
	return nil
}

// logged runs a store mutation and its WAL append as one atomic step
// under the document's segment log mutex, so log order always equals
// apply order for that document (writers to other segments proceed in
// parallel). It returns the durability offset for syncTo (0 when apply
// failed).
func (s *FileStore) logged(seg *segment, apply func() error, record func() []byte) (int64, error) {
	if err := s.failed(); err != nil {
		return 0, err
	}
	seg.wal.mu.Lock()
	defer seg.wal.mu.Unlock()
	if err := apply(); err != nil {
		return 0, err
	}
	off, err := seg.wal.append(record())
	if err != nil {
		return 0, s.fail(err)
	}
	return off, nil
}

// durable waits for offset off of the segment's log to hit the disk —
// through the group committer, so concurrent commits across segments
// share fsync rounds — then checks the segment's checkpoint trigger.
func (s *FileStore) durable(seg *segment, off int64) error {
	if err := s.gc.wait(seg.wal, off); err != nil {
		return s.fail(err)
	}
	s.scheduleCheckpoint(seg)
	return nil
}

// checkRecordSize rejects a mutation too large for one WAL record
// before anything is applied: the caller gets a plain validation
// error, not a store latched read-only over its own input.
func checkRecordSize(n int) error {
	if n > maxWalRecord {
		return fmt.Errorf("dsp: mutation of %d bytes exceeds the %d-byte wal record limit", n, maxWalRecord)
	}
	return nil
}

// PutDocument implements Store: logged, then made durable before it is
// acknowledged.
func (s *FileStore) PutDocument(c *docenc.Container) error {
	if c == nil {
		return fmt.Errorf("dsp: nil container")
	}
	img, err := c.MarshalBinary()
	if err != nil {
		return err
	}
	body := append([]byte{recPutDocument}, img...)
	if err := checkRecordSize(len(body)); err != nil {
		return err
	}
	seg := s.seg(c.Header.DocID)
	off, err := s.logged(seg,
		func() error { return s.mem.PutDocument(c) },
		func() []byte { return body },
	)
	if err != nil {
		return err
	}
	return s.durable(seg, off)
}

// PutRuleSet implements Store (durable before acknowledged). Rule sets
// live in their document's segment, like their shard in memory.
func (s *FileStore) PutRuleSet(docID, subject string, version uint32, sealed []byte) error {
	body := []byte{recPutRuleSet}
	body = appendString(body, docID)
	body = appendString(body, subject)
	body = appendUvarint(body, uint64(version))
	body = appendBytes(body, sealed)
	if err := checkRecordSize(len(body)); err != nil {
		return err
	}
	seg := s.seg(docID)
	off, err := s.logged(seg,
		func() error { return s.mem.PutRuleSet(docID, subject, version, sealed) },
		func() []byte { return body },
	)
	if err != nil {
		return err
	}
	return s.durable(seg, off)
}

// Header implements Store from memory.
func (s *FileStore) Header(docID string) (docenc.Header, error) { return s.mem.Header(docID) }

// lookupLocked resolves a document and its segment under the shard read
// lock — the tiered read paths share it. The caller must RUnlock sh.
func (s *FileStore) lookupLocked(docID string) (*segment, *memShard, *docenc.Container, error) {
	seg := s.seg(docID)
	sh := &s.mem.shards[seg.idx] // same hash and modulus as mem.shard
	sh.mu.RLock()
	c, ok := sh.docs[docID]
	if !ok {
		sh.mu.RUnlock()
		return nil, nil, nil, fmt.Errorf("%w: %q", ErrUnknownDocument, docID)
	}
	return seg, sh, c, nil
}

// ReadBlock implements Store. The Store contract hands out blocks that
// stay valid indefinitely, so a checkpoint-resident block is copied out
// of the mapping while the shard lock still pins the region; the
// zero-copy path is ReadBlocksPinned.
func (s *FileStore) ReadBlock(docID string, idx int) ([]byte, error) {
	if !s.mmapOn {
		b, err := s.mem.ReadBlock(docID, idx)
		if err == nil {
			s.heapReads.Add(1)
		}
		return b, err
	}
	seg, sh, c, err := s.lookupLocked(docID)
	if err != nil {
		return nil, err
	}
	defer sh.mu.RUnlock()
	if idx < 0 || idx >= len(c.Blocks) {
		return nil, fmt.Errorf("dsp: block %d out of range [0,%d) for %q", idx, len(c.Blocks), docID)
	}
	b := c.Blocks[idx]
	if seg.region.contains(b) {
		s.mmapReads.Add(1)
		return append(make([]byte, 0, len(b)), b...), nil
	}
	s.heapReads.Add(1)
	return b, nil
}

// ReadBlocks implements BlockRangeReader. Like ReadBlock, mapped blocks
// are copied to heap under the shard lock so the returned slices obey
// the Store contract; WAL-resident (heap) blocks are referenced as
// always.
func (s *FileStore) ReadBlocks(docID string, start, count int) ([][]byte, error) {
	if !s.mmapOn {
		out, err := s.mem.ReadBlocks(docID, start, count)
		if err == nil {
			s.heapReads.Add(int64(count))
		}
		return out, err
	}
	seg, sh, c, err := s.lookupLocked(docID)
	if err != nil {
		return nil, err
	}
	defer sh.mu.RUnlock()
	// Bounds are checked without computing start+count, which a hostile
	// wire request can overflow.
	if start < 0 || count < 0 || start > len(c.Blocks) || count > len(c.Blocks)-start {
		return nil, fmt.Errorf("dsp: block range [%d,+%d) out of range [0,%d) for %q",
			start, count, len(c.Blocks), docID)
	}
	reg := seg.region
	out := make([][]byte, count)
	var heap int64
	for i := 0; i < count; i++ {
		b := c.Blocks[start+i]
		if reg.contains(b) {
			out[i] = append(make([]byte, 0, len(b)), b...)
		} else {
			out[i] = b
			heap++
		}
	}
	s.mmapReads.Add(int64(count) - heap)
	s.heapReads.Add(heap)
	return out, nil
}

// ReadBlocksPinned implements PinnedBlockReader: checkpoint-resident
// blocks are returned as views straight into the segment's mapped image
// — no heap copy anywhere between the disk page cache and the caller —
// kept valid by a single pin per call appended to *pins. The pin is
// acquired under the shard read lock, which installMapping's swap (the
// only path that retires a region) excludes, so a view can never
// outlive its mapping unpinned.
func (s *FileStore) ReadBlocksPinned(docID string, start, count int, pins *[]BlockPin) ([][]byte, bool, error) {
	return s.readPinned(docID, start, count, pins, nil)
}

// readBlocksWire implements wireBlockReader: ReadBlocksPinned plus
// sendfile-capable run resolution — contiguous checkpoint-resident
// stretches of the range come back as (file, offset, span) runs the
// connection writer ships with one syscall each. The pins keep both the
// mapping and the underlying file open, so a run outlives an epoch
// retirement mid-flush.
func (s *FileStore) readBlocksWire(docID string, start, count int, pins *[]BlockPin, runs *[]wireRun) ([][]byte, error) {
	out, _, err := s.readPinned(docID, start, count, pins, runs)
	return out, err
}

// readPinned is the shared pinned range read; with runs non-nil (and
// the sendfile tier on) it also resolves wire-exact file runs.
func (s *FileStore) readPinned(docID string, start, count int, pins *[]BlockPin, runs *[]wireRun) ([][]byte, bool, error) {
	seg, sh, c, err := s.lookupLocked(docID)
	if err != nil {
		return nil, false, err
	}
	defer sh.mu.RUnlock()
	if start < 0 || count < 0 || start > len(c.Blocks) || count > len(c.Blocks)-start {
		return nil, false, fmt.Errorf("dsp: block range [%d,+%d) out of range [0,%d) for %q",
			start, count, len(c.Blocks), docID)
	}
	out := make([][]byte, count)
	copy(out, c.Blocks[start:start+count])
	var mapped, mappedBytes int64
	var first, last []byte
	if reg := seg.region; reg != nil {
		for _, b := range out {
			if reg.contains(b) {
				mapped++
				mappedBytes += int64(len(b))
				if first == nil {
					first = b
				}
				last = b
			}
		}
		if mapped > 0 {
			reg.acquire()
			*pins = append(*pins, BlockPin{r: reg})
			// A large cold run is about to stream out of the mapping
			// (disk → page cache → writev): prime the readahead. Small
			// runs skip the syscall — the page cache wins on its own.
			if mappedBytes >= madviseRunBytes {
				if sp := reg.span(first, last); madviseSpan(reg.data, sp, adviseWillNeed) {
					s.madviseCalls.Add(1)
				}
			}
			if runs != nil && s.sendfileOn && reg.wirePrefixed && reg.f != nil {
				s.collectWireRuns(reg, out, runs)
			}
		}
	}
	s.mmapReads.Add(mapped)
	s.heapReads.Add(int64(count) - mapped)
	return out, mapped > 0, nil
}

// collectWireRuns walks a pinned read's blocks and appends every
// contiguous checkpoint span worth a sendfile. A block joins the
// current run when its wire prefix starts exactly where the previous
// block's payload ended — the v3 image layout for blocks written
// back-to-back — and each prefix is verified to decode to the block's
// length, so the span is wire-exact by construction, not by trust in
// the footer. Runs under sendfileMinRunBytes stay on the writev path.
func (s *FileStore) collectWireRuns(reg *mmapRegion, blocks [][]byte, runs *[]wireRun) {
	runStart := -1
	var spanLo, spanEnd int64
	flush := func(end int) {
		if runStart < 0 {
			return
		}
		if spanEnd-spanLo >= sendfileMinRunBytes {
			*runs = append(*runs, wireRun{
				Start: runStart, Count: end - runStart,
				Span: reg.data[spanLo:spanEnd:spanEnd],
				File: reg.f, Off: spanLo, Stats: &s.sf,
			})
		}
		runStart = -1
	}
	for i, b := range blocks {
		off := reg.offsetOf(b)
		if off < 0 {
			flush(i)
			continue
		}
		pl := int64(uvarintLen(uint64(len(b))))
		lo := off - pl
		if lo < 0 || !wirePrefixValid(reg.data[lo:off], len(b)) {
			flush(i)
			continue
		}
		if runStart >= 0 && lo == spanEnd {
			spanEnd = off + int64(len(b))
			continue
		}
		flush(i)
		runStart = i
		spanLo, spanEnd = lo, off+int64(len(b))
	}
	flush(len(blocks))
}

// wirePrefixValid reports that p is exactly the uvarint encoding of n.
func wirePrefixValid(p []byte, n int) bool {
	v, w := binary.Uvarint(p)
	return w == len(p) && v == uint64(n)
}

// RuleSet implements Store from memory.
func (s *FileStore) RuleSet(docID, subject string) ([]byte, error) {
	return s.mem.RuleSet(docID, subject)
}

// ListDocuments implements Store from memory.
func (s *FileStore) ListDocuments() ([]string, error) { return s.mem.ListDocuments() }

// BeginUpdate implements DocUpdater. The begin and its staged blocks
// are appended without an fsync of their own: they only matter if their
// commit record follows, and the commit's barrier covers everything
// before it in the segment's log.
func (s *FileStore) BeginUpdate(h docenc.Header, baseVersion uint32) (uint64, error) {
	hdr, err := h.MarshalBinary()
	if err != nil {
		return 0, err
	}
	var token uint64
	_, err = s.logged(s.seg(h.DocID),
		func() (err error) { token, err = s.mem.BeginUpdate(h, baseVersion); return err },
		func() []byte { return beginRecord(token, baseVersion, hdr) },
	)
	return token, err
}

// updateSeg routes an opaque update token to the segment of the
// document it stages — every record of a handshake must land in one
// log. An unknown token (already committed, aborted or evicted) is
// reported with the MemStore's wording so callers see one error shape.
func (s *FileStore) updateSeg(token uint64) (*segment, error) {
	docID, ok := s.mem.updateDocID(token)
	if !ok {
		return nil, fmt.Errorf("dsp: unknown update token %d", token)
	}
	return s.seg(docID), nil
}

// PutBlocks implements DocUpdater: one appended record per staged run.
func (s *FileStore) PutBlocks(token uint64, start int, blocks [][]byte) error {
	body := putBlocksRecord(token, start, blocks)
	if err := checkRecordSize(len(body)); err != nil {
		return err
	}
	seg, err := s.updateSeg(token)
	if err != nil {
		return err
	}
	_, err = s.logged(seg,
		func() error { return s.mem.PutBlocks(token, start, blocks) },
		func() []byte { return body },
	)
	return err
}

// CommitUpdate implements DocUpdater: the commit record's fsync is the
// one barrier a whole delta re-publish pays, and concurrent commits to
// the same segment share it (group commit).
func (s *FileStore) CommitUpdate(token uint64) error {
	seg, err := s.updateSeg(token)
	if err != nil {
		return err
	}
	off, err := s.logged(seg,
		func() error { return s.mem.CommitUpdate(token) },
		func() []byte { return tokenRecord(recCommit, token) },
	)
	if err != nil {
		return err
	}
	return s.durable(seg, off)
}

// AbortUpdate implements DocUpdater. The abort is logged so replay does
// not resurrect the staged update, but nothing waits on the disk: an
// abort lost to a crash only leaves a stale staged update, which
// recovery (and the staging cap) already tolerates.
func (s *FileStore) AbortUpdate(token uint64) error {
	seg, err := s.updateSeg(token)
	if err != nil {
		return err
	}
	_, err = s.logged(seg,
		func() error { return s.mem.AbortUpdate(token) },
		func() []byte { return tokenRecord(recAbort, token) },
	)
	return err
}

// record body builders (shared by live appends and checkpoint re-logs).

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// uvarintLen is the encoded size of v — the wire prefix the v3 image
// stores ahead of each block.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func beginRecord(token uint64, baseVersion uint32, hdr []byte) []byte {
	body := []byte{recBeginUpdate}
	body = appendUvarint(body, token)
	body = appendUvarint(body, uint64(baseVersion))
	return append(body, hdr...)
}

func putBlocksRecord(token uint64, start int, blocks [][]byte) []byte {
	body := []byte{recPutBlocks}
	body = appendUvarint(body, token)
	body = appendUvarint(body, uint64(start))
	body = appendUvarint(body, uint64(len(blocks)))
	for _, blk := range blocks {
		body = appendBytes(body, blk)
	}
	return body
}

func tokenRecord(kind byte, token uint64) []byte {
	return appendUvarint([]byte{kind}, token)
}

// applyRecord replays one WAL record during recovery. Parse failures of
// a CRC-clean record mean real corruption and abort the open; apply
// failures mean the record was superseded (checkpoint overlap, an
// update that never committed, a duplicate commit) and are skipped.
func (s *FileStore) applyRecord(body []byte, tokens map[uint64]uint64, rec *segRecovery) error {
	if len(body) == 0 {
		return errors.New("empty wal record")
	}
	rec.replayed++
	r := &wireReader{data: body, pos: 1}
	switch body[0] {
	case recPutDocument:
		c, err := docenc.UnmarshalContainer(body[1:])
		if err != nil {
			return fmt.Errorf("put-document record: %w", err)
		}
		// The unmarshal aliases the replay buffer; copy the blocks so a
		// long log is not pinned in memory by the few containers that
		// survive it.
		for i := range c.Blocks {
			c.Blocks[i] = append([]byte(nil), c.Blocks[i]...)
		}
		if err := s.mem.PutDocument(c); err != nil {
			rec.skipped++
		}
	case recPutRuleSet:
		docID := r.string()
		subject := r.string()
		version := r.uvarint()
		sealed := r.bytes()
		if r.err != nil {
			return fmt.Errorf("put-ruleset record: %w", r.err)
		}
		if err := s.mem.PutRuleSet(docID, subject, uint32(version), sealed); err != nil {
			rec.skipped++
		}
	case recBeginUpdate:
		logged := r.uvarint()
		base := r.uvarint()
		if r.err != nil {
			return fmt.Errorf("begin-update record: %w", r.err)
		}
		h, _, err := docenc.UnmarshalHeader(r.rest())
		if err != nil {
			return fmt.Errorf("begin-update header: %w", err)
		}
		token, err := s.mem.BeginUpdate(h, uint32(base))
		if err != nil {
			rec.skipped++
			return nil
		}
		tokens[logged] = token
	case recPutBlocks:
		logged := r.uvarint()
		start := r.uvarint()
		count := r.uvarint()
		if r.err != nil {
			return fmt.Errorf("put-blocks record: %w", r.err)
		}
		blocks := make([][]byte, 0, count)
		for i := uint64(0); i < count; i++ {
			b := r.bytes()
			if r.err != nil {
				return fmt.Errorf("put-blocks record: %w", r.err)
			}
			blocks = append(blocks, append([]byte(nil), b...))
		}
		token, ok := tokens[logged]
		if !ok {
			rec.skipped++ // its begin was superseded
			return nil
		}
		if err := s.mem.PutBlocks(token, int(start), blocks); err != nil {
			rec.skipped++
		}
	case recCommit:
		logged := r.uvarint()
		if r.err != nil {
			return fmt.Errorf("commit record: %w", r.err)
		}
		token, ok := tokens[logged]
		if !ok {
			rec.skipped++ // superseded begin, or a duplicate commit
			return nil
		}
		delete(tokens, logged) // commit retires the token either way
		if err := s.mem.CommitUpdate(token); err != nil {
			rec.skipped++
		}
	case recAbort:
		logged := r.uvarint()
		if r.err != nil {
			return fmt.Errorf("abort record: %w", r.err)
		}
		token, ok := tokens[logged]
		if !ok {
			rec.skipped++
			return nil
		}
		delete(tokens, logged)
		if err := s.mem.AbortUpdate(token); err != nil {
			rec.skipped++
		}
	default:
		return fmt.Errorf("unknown wal record type %d", body[0])
	}
	return nil
}

// startCheckpointWorker launches the background compactor that serves
// scheduleCheckpoint requests — checkpoints run here, never on the
// writer that tripped a threshold.
func (s *FileStore) startCheckpointWorker() {
	s.ckptCh = make(chan int, len(s.segs))
	s.ckptStop = make(chan struct{})
	s.ckptWG.Add(1)
	go func() {
		defer s.ckptWG.Done()
		for {
			select {
			case <-s.ckptStop:
				return
			case idx := <-s.ckptCh:
				seg := s.segs[idx]
				_ = s.checkpointSegment(seg) // a failure latches broken inside
				seg.ckptQueued.Store(false)
			}
		}
	}()
}

func (s *FileStore) stopCheckpointWorker() {
	s.stopOnce.Do(func() {
		if s.ckptStop != nil {
			close(s.ckptStop)
			s.ckptWG.Wait()
		}
	})
}

// scheduleCheckpoint enqueues a segment for background compaction when
// its log crossed the per-segment budget. One request per segment is
// outstanding at a time; if the log keeps growing during the
// checkpoint, the next durable commit re-triggers.
func (s *FileStore) scheduleCheckpoint(seg *segment) {
	if s.segBudget <= 0 || seg.wal.size() < s.segBudget {
		return
	}
	if !seg.ckptQueued.CompareAndSwap(false, true) {
		return
	}
	select {
	case s.ckptCh <- seg.idx:
	default:
		// Unreachable while the channel holds one slot per segment, but
		// never block a committer on the compactor.
		seg.ckptQueued.Store(false)
	}
}

// Checkpoint compacts every segment: each image is streamed to disk
// (temp file, fsync, atomic rename) and the log it absorbs truncated;
// still-staged updates are re-logged so an in-flight delta handshake
// survives. Segments checkpoint in parallel and independently — writers
// to a segment wait only while their segment compacts.
func (s *FileStore) Checkpoint() error {
	start := time.Now()
	errs := make([]error, len(s.segs))
	var wg sync.WaitGroup
	for i, seg := range s.segs {
		wg.Add(1)
		go func(i int, seg *segment) {
			defer wg.Done()
			errs[i] = s.checkpointSegment(seg)
		}(i, seg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	s.lastCkpt.Store(int64(time.Since(start)))
	return nil
}

// checkpointSegment compacts one segment: stream its shard's image,
// publish it, truncate its log, re-log its staged updates. Only writers
// to this segment block for the duration; reads and the other segments
// never notice.
func (s *FileStore) checkpointSegment(seg *segment) error {
	return s.checkpointSegmentMode(seg, false)
}

// checkpointSegmentMode is checkpointSegment with the empty-log skip
// explicit: the open-time footer migration forces an image rewrite even
// when the log is empty (the image content is unchanged — only the
// footer is new).
func (s *FileStore) checkpointSegmentMode(seg *segment, force bool) error {
	seg.ckptMu.Lock()
	defer seg.ckptMu.Unlock()
	if err := s.failed(); err != nil {
		return err
	}
	seg.wal.mu.Lock()
	defer seg.wal.mu.Unlock()
	if s.testCkptGate != nil {
		s.testCkptGate(seg.idx)
	}
	// An empty log means the published image already equals the shard
	// state (any staged update would have left a re-logged begin
	// behind): rewriting the image would only burn fsyncs. This is what
	// keeps an explicit all-segment Checkpoint — every sdsctl exit,
	// every dspd shutdown — proportional to churn, not to shard count.
	if seg.wal.appended == 0 && !force {
		return nil
	}
	start := time.Now()

	if err := s.writeSegmentImage(seg.idx); err != nil {
		return s.fail(err)
	}
	// The image now carries everything this segment's log said; empty
	// the log and re-log the segment's in-flight handshakes (their
	// begin/put-blocks records were just absorbed into nothing — the
	// image has only committed state).
	if err := seg.wal.reset(); err != nil {
		return s.fail(err)
	}
	if err := s.relogStaged(seg); err != nil {
		return s.fail(err)
	}
	// Tier swap: serve the just-published image via mmap and let the
	// heap copies (the segment's former working set) go to the GC. Still
	// under wal.mu, so the shard state equals the image exactly.
	s.installMapping(seg)
	s.checkpoints.Add(1)
	s.lastCkpt.Store(int64(time.Since(start)))
	return nil
}

// writeSegmentImage streams shard idx's committed state into
// checkpoint-NNN via a buffered writer and temp-file + atomic rename —
// one document at a time, never the whole image in memory. The caller
// holds the segment's log mutex, so no mutation of this shard is in
// flight; the shard read-lock fences the map walk.
func (s *FileStore) writeSegmentImage(idx int) error {
	return s.writeSegmentImageSync(idx, !s.opts.NoSync)
}

// writeSegmentImageSync is writeSegmentImage with the fsync decision
// explicit — migration forces sync even for NoSync stores.
func (s *FileStore) writeSegmentImageSync(idx int, sync bool) error {
	tmp, err := os.CreateTemp(s.dir, segCkptName(idx)+".tmp-*")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	bw := bufio.NewWriterSize(tmp, 256<<10)
	cw := &countingWriter{w: bw}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := cw.Write(scratch[:n])
		return err
	}

	// The index entries collected while streaming the body; serialized
	// as the footer once the body (and its rules offset) is known.
	var entries []ckptDocEntry
	var rulesOff int64
	sh := &s.mem.shards[idx]
	sh.mu.RLock()
	err = func() error {
		if _, err := cw.Write(ckptMagic); err != nil {
			return err
		}
		if err := writeUvarint(uint64(len(sh.docs))); err != nil {
			return err
		}
		for _, c := range sh.docs {
			// The image layout of one document is its header bytes
			// followed by wire-encoded blocks — each behind its uvarint
			// length prefix, exactly as opReadBlocks frames it — streamed
			// block by block. Footer refs point at the payloads, so the
			// mapped tier's views skip the prefixes; the sendfile tier
			// ships whole [prefix][payload]... runs verbatim.
			hdr, err := c.Header.MarshalBinary()
			if err != nil {
				return err
			}
			total := len(hdr)
			for _, b := range c.Blocks {
				total += uvarintLen(uint64(len(b))) + len(b)
			}
			if err := writeUvarint(uint64(total)); err != nil {
				return err
			}
			e := ckptDocEntry{
				docID:   c.Header.DocID,
				version: c.Header.Version,
				hdrOff:  cw.n,
				hdrLen:  int64(len(hdr)),
				blocks:  make([]ckptBlockRef, 0, len(c.Blocks)),
			}
			if _, err := cw.Write(hdr); err != nil {
				return err
			}
			for _, b := range c.Blocks {
				if err := writeUvarint(uint64(len(b))); err != nil {
					return err
				}
				e.blocks = append(e.blocks, ckptBlockRef{off: cw.n, len: int64(len(b))})
				if _, err := cw.Write(b); err != nil {
					return err
				}
			}
			entries = append(entries, e)
		}
		rulesOff = cw.n
		if err := writeUvarint(uint64(len(sh.rules))); err != nil {
			return err
		}
		for k, e := range sh.rules {
			if err := writeUvarint(uint64(len(k))); err != nil {
				return err
			}
			if _, err := cw.WriteString(k); err != nil {
				return err
			}
			if err := writeUvarint(uint64(e.version)); err != nil {
				return err
			}
			if err := writeUvarint(uint64(len(e.sealed))); err != nil {
				return err
			}
			if _, err := cw.Write(e.sealed); err != nil {
				return err
			}
		}
		// The block-index footer: offsets into the body just written,
		// CRC'd, terminated by its own magic. Readers that predate it
		// (and the heap fallback) parse the body and never look here.
		_, err := cw.Write(appendCkptIndex(nil, entries, rulesOff))
		return err
	}()
	sh.mu.RUnlock()
	if err != nil {
		return cleanup(err)
	}
	if err := bw.Flush(); err != nil {
		return cleanup(err)
	}
	// The image must be durable before the rename publishes it, or the
	// rename could survive a crash that the contents did not.
	if sync {
		if err := tmp.Sync(); err != nil {
			return cleanup(err)
		}
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.segCkptPath(idx)); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	// The directory entry must survive too: a failed directory fsync
	// after the rename is a durability failure like any other, not a
	// shrug (filesystems that cannot fsync directories report ENOTSUP,
	// which syncDir forgives).
	if sync {
		if err := syncDir(s.dir); err != nil {
			return err
		}
	}
	return nil
}

// countingWriter tracks the logical file offset of everything streamed
// through it — the offsets the checkpoint writer records in the index
// footer.
type countingWriter struct {
	w *bufio.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (c *countingWriter) WriteString(s string) (int, error) {
	n, err := c.w.WriteString(s)
	c.n += int64(n)
	return n, err
}

// relogStaged writes the begin/put-blocks records of this segment's
// still-staged updates into its (fresh) log under their live tokens.
// No fsync: like a live begin, they become durable with their commit's
// barrier.
func (s *FileStore) relogStaged(seg *segment) error {
	s.mem.updMu.Lock()
	tokens := make([]uint64, 0, len(s.mem.updates))
	for t, up := range s.mem.updates {
		if s.seg(up.header.DocID) == seg {
			tokens = append(tokens, t)
		}
	}
	sort.Slice(tokens, func(i, j int) bool { return tokens[i] < tokens[j] })
	type stagedCopy struct {
		token uint64
		up    *pendingUpdate
	}
	staged := make([]stagedCopy, 0, len(tokens))
	for _, t := range tokens {
		staged = append(staged, stagedCopy{t, s.mem.updates[t]})
	}
	s.mem.updMu.Unlock()

	for _, sc := range staged {
		hdr, err := sc.up.header.MarshalBinary()
		if err != nil {
			return err
		}
		if _, err := seg.wal.append(beginRecord(sc.token, sc.up.base, hdr)); err != nil {
			return err
		}
		// Coalesce the staged blocks back into contiguous runs, cut at
		// a byte budget so the re-log never assembles a record larger
		// than the live path could have appended.
		idxs := make([]int, 0, len(sc.up.blocks))
		for i := range sc.up.blocks {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for lo := 0; lo < len(idxs); {
			hi, runBytes := lo+1, len(sc.up.blocks[idxs[lo]])
			for hi < len(idxs) && idxs[hi] == idxs[hi-1]+1 && runBytes < maxPutBatchBytes {
				runBytes += len(sc.up.blocks[idxs[hi]])
				hi++
			}
			run := make([][]byte, 0, hi-lo)
			for _, i := range idxs[lo:hi] {
				run = append(run, sc.up.blocks[i])
			}
			if _, err := seg.wal.append(putBlocksRecord(sc.token, idxs[lo], run)); err != nil {
				return err
			}
			lo = hi
		}
	}
	return nil
}

// loadCheckpointFile reads one checkpoint image (if present) into the
// in-memory store. Used per segment during recovery and once for the
// legacy file during migration — the format is the same.
func (s *FileStore) loadCheckpointFile(path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if !ckptMagicOK(data) {
		return fmt.Errorf("dsp: %s: bad checkpoint magic", path)
	}
	// A footered image carries an index after the body; the body parse
	// below reads exactly nDocs + nRules entries and leaves the trailing
	// index untouched, so the heap loader reads every version alike. The
	// per-document layout differs: v1/v2 store raw back-to-back blocks
	// (Container.MarshalBinary), v3 wire-prefixed ones.
	prefixed := ckptWirePrefixed(data)
	r := &wireReader{data: data, pos: len(ckptMagic)}
	nDocs := r.uvarint()
	for i := uint64(0); i < nDocs; i++ {
		img := r.bytes()
		if r.err != nil {
			break
		}
		var c *docenc.Container
		var err error
		if prefixed {
			c, err = unmarshalWireDoc(img)
		} else {
			c, err = docenc.UnmarshalContainer(img)
		}
		if err != nil {
			return fmt.Errorf("dsp: checkpoint document %d: %w", i, err)
		}
		if err := s.mem.PutDocument(c); err != nil {
			return fmt.Errorf("dsp: checkpoint document %d: %w", i, err)
		}
	}
	nRules := r.uvarint()
	for i := uint64(0); i < nRules; i++ {
		key := r.string()
		version := r.uvarint()
		sealed := r.bytes()
		if r.err != nil {
			break
		}
		docID, subject, ok := splitRuleKey(key)
		if !ok {
			return fmt.Errorf("dsp: checkpoint rule %d: malformed key", i)
		}
		if err := s.mem.PutRuleSet(docID, subject, uint32(version), sealed); err != nil {
			return fmt.Errorf("dsp: checkpoint rule %d: %w", i, err)
		}
	}
	if r.err != nil {
		return fmt.Errorf("dsp: truncated checkpoint %s: %w", path, r.err)
	}
	return nil
}

// unmarshalWireDoc parses one v3 per-document image: header bytes, then
// every block behind its uvarint wire prefix. Each prefix is checked
// against the header's stored-length geometry — the same
// cross-validation the mapped tier applies to footer entries — so a
// corrupt image fails here instead of serving misframed blocks.
func unmarshalWireDoc(img []byte) (*docenc.Container, error) {
	h, n, err := docenc.UnmarshalHeader(img)
	if err != nil {
		return nil, err
	}
	r := &wireReader{data: img, pos: n}
	blocks := make([][]byte, 0, h.NumBlocks())
	for i := 0; i < h.NumBlocks(); i++ {
		b := r.bytes()
		if r.err != nil {
			return nil, fmt.Errorf("dsp: wire-prefixed block %d: %w", i, r.err)
		}
		if len(b) != h.BlockStoredLen(i) {
			return nil, fmt.Errorf("dsp: wire-prefixed block %d: length %d, geometry says %d",
				i, len(b), h.BlockStoredLen(i))
		}
		blocks = append(blocks, b)
	}
	if r.pos != len(img) {
		return nil, fmt.Errorf("dsp: %d trailing bytes after wire-prefixed document", len(img)-r.pos)
	}
	return &docenc.Container{Header: h, Blocks: blocks}, nil
}

// containerFromEntry builds a document container whose blocks are views
// into the mapped image, cross-validating the index entry against the
// header bytes it points at. The header itself is fully copied out of
// the mapping by UnmarshalHeader (strings, MAC, generation runs), so a
// retired region is pinned only by block views, never by metadata.
func containerFromEntry(region *mmapRegion, e *ckptDocEntry) (*docenc.Container, error) {
	h, n, err := docenc.UnmarshalHeader(region.data[e.hdrOff : e.hdrOff+e.hdrLen])
	if err != nil {
		return nil, err
	}
	if int64(n) != e.hdrLen || h.DocID != e.docID || h.Version != e.version {
		return nil, fmt.Errorf("dsp: checkpoint index entry for %q disagrees with image header", e.docID)
	}
	if h.NumBlocks() != len(e.blocks) {
		return nil, fmt.Errorf("dsp: checkpoint index for %q lists %d blocks, geometry has %d",
			e.docID, len(e.blocks), h.NumBlocks())
	}
	blocks := make([][]byte, len(e.blocks))
	for i, br := range e.blocks {
		if int(br.len) != h.BlockStoredLen(i) {
			return nil, fmt.Errorf("dsp: checkpoint index for %q block %d: length %d, geometry says %d",
				e.docID, i, br.len, h.BlockStoredLen(i))
		}
		blocks[i] = region.data[br.off : br.off+br.len : br.off+br.len]
	}
	return &docenc.Container{Header: h, Blocks: blocks}, nil
}

// loadCheckpointMapped maps one segment's checkpoint image and installs
// its documents as views into the mapping, driven by the index footer —
// no full-image read, no heap copies of block payloads. It reports
// false (and no error) whenever the mapping path cannot serve this
// image — file absent, footerless v1 image, unparsable footer, platform
// without mmap — and the caller falls back to the heap loader. Runs
// single-threaded per segment during recovery, before the store is
// visible to any reader.
func (s *FileStore) loadCheckpointMapped(seg *segment) (bool, error) {
	region, err := mapFile(s.segCkptPath(seg.idx))
	switch {
	case os.IsNotExist(err):
		return false, nil // fresh segment
	case errors.Is(err, errMmapUnsupported), errors.Is(err, errMmapEmpty):
		return false, nil // heap loader decides (and reports the empty file)
	case err != nil:
		return false, err
	}
	data := region.data
	if !ckptMagicOK(data) {
		region.release()
		return false, fmt.Errorf("dsp: %s: bad checkpoint magic", s.segCkptPath(seg.idx))
	}
	region.wirePrefixed = ckptWirePrefixed(data)
	// The footer-driven scan is about to fault the whole image in (index
	// entries at the tail, geometry validation over the headers): tell
	// the kernel now so recovery reads ahead instead of faulting page by
	// page.
	if madviseSpan(data, data, adviseWillNeed) {
		s.madviseCalls.Add(1)
	}
	idx, err := parseCkptIndex(data)
	if err != nil {
		// No footer (v1 image) or a corrupt one: the body is the source
		// of truth — heap-load it and rewrite the image with a footer.
		region.release()
		return false, nil
	}
	containers := make([]*docenc.Container, 0, len(idx.docs))
	for i := range idx.docs {
		c, err := containerFromEntry(region, &idx.docs[i])
		if err != nil {
			region.release()
			return false, nil // fall back to the body
		}
		containers = append(containers, c)
	}
	// Validation done — install. PutDocument re-checks geometry and
	// copies nothing; the containers' blocks stay views into the region.
	for _, c := range containers {
		if err := s.mem.PutDocument(c); err != nil {
			region.release()
			return false, fmt.Errorf("dsp: mapped checkpoint document %q: %w", c.Header.DocID, err)
		}
	}
	r := &wireReader{data: data[:idx.bodyEnd], pos: int(idx.rulesOff)}
	nRules := r.uvarint()
	for i := uint64(0); i < nRules; i++ {
		key := r.string()
		version := r.uvarint()
		sealed := r.bytes()
		if r.err != nil {
			break
		}
		docID, subject, ok := splitRuleKey(key)
		if !ok {
			region.release()
			return false, fmt.Errorf("dsp: mapped checkpoint rule %d: malformed key", i)
		}
		// PutRuleSet copies the sealed bytes, so rules never pin the region.
		if err := s.mem.PutRuleSet(docID, subject, uint32(version), sealed); err != nil {
			region.release()
			return false, fmt.Errorf("dsp: mapped checkpoint rule %d: %w", i, err)
		}
	}
	if r.err != nil {
		region.release()
		return false, fmt.Errorf("dsp: truncated mapped checkpoint %s: %w", s.segCkptPath(seg.idx), r.err)
	}
	seg.region = region
	s.mappedBytes.Add(int64(len(data)))
	return true, nil
}

// installMapping maps the image checkpointSegment just published and
// swaps the shard's checkpoint-covered documents over to views into it
// — this is the eviction that keeps the MemStore working set bounded:
// the heap copies those documents held (their WAL-resident deltas
// included, now absorbed by the image) become garbage the moment the
// swap commits. The caller holds seg.wal.mu, so the shard cannot gain
// new committed state between the image write and the swap; the swap
// itself runs under the shard write lock, after which the old region is
// retired (its munmap deferred until in-flight pinned readers drain).
func (s *FileStore) installMapping(seg *segment) {
	if !s.mmapOn {
		return
	}
	region, err := mapFile(s.segCkptPath(seg.idx))
	if err != nil {
		return // heap keeps serving; the next checkpoint retries
	}
	region.wirePrefixed = ckptWirePrefixed(region.data)
	// Cold reads over a fresh image arrive as forward block runs (the
	// terminal's batched pulls, streaming re-checkpoints): ask for
	// sequential readahead over the whole mapping.
	if madviseSpan(region.data, region.data, adviseSequential) {
		s.madviseCalls.Add(1)
	}
	idx, err := parseCkptIndex(region.data)
	if err != nil {
		region.release()
		return
	}
	fresh := make([]*docenc.Container, 0, len(idx.docs))
	for i := range idx.docs {
		c, err := containerFromEntry(region, &idx.docs[i])
		if err != nil {
			region.release()
			return
		}
		fresh = append(fresh, c)
	}
	sh := &s.mem.shards[seg.idx]
	sh.mu.Lock()
	for _, c := range fresh {
		cur, ok := sh.docs[c.Header.DocID]
		if !ok || cur.Header.Version != c.Header.Version || len(cur.Blocks) != len(c.Blocks) {
			continue // superseded while unlocked (cannot happen under wal.mu; guard anyway)
		}
		// Install a fresh container rather than mutating in place:
		// Snapshot holders keep the container they read, with whatever
		// blocks it had.
		sh.docs[c.Header.DocID] = c
	}
	old := seg.region
	seg.region = region
	sh.mu.Unlock()
	s.mappedBytes.Add(int64(len(region.data)))
	if old != nil {
		s.mappedBytes.Add(-int64(len(old.data)))
		old.release()
	}
}

func splitRuleKey(key string) (docID, subject string, ok bool) {
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			return key[:i], key[i+1:], true
		}
	}
	return "", "", false
}

// syncDir fsyncs a directory so a just-renamed file survives a crash of
// the directory entry itself. Filesystems that cannot fsync a directory
// (EINVAL/ENOTSUP) are forgiven — the rename alone is already atomic —
// but a real failure is returned for the caller to latch.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		if dirSyncUnsupported(serr) {
			return nil
		}
		return serr
	}
	return cerr
}

var (
	_ Store             = (*FileStore)(nil)
	_ BlockRangeReader  = (*FileStore)(nil)
	_ DocUpdater        = (*FileStore)(nil)
	_ PinnedBlockReader = (*FileStore)(nil)
	_ wireBlockReader   = (*FileStore)(nil)
)
