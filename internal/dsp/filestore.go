package dsp

// FileStore is the durable DSP tier: a MemStore image kept alive by a
// write-ahead log. Reads are served from the sharded in-memory store at
// memory speed; every acknowledged mutation is a WAL record first, so a
// crash at any instant restarts on exactly the prefix of history that
// was made durable. The delta handshake logs typed begin/put-blocks/
// commit records — a delta re-publish appends O(changed bytes), where
// the previous file store rewrote the whole image per commit.
//
// Layout: one directory holding `wal.log` (see wal.go for the frame
// format) and `checkpoint`, a full store image written by Checkpoint
// via temp-file + atomic rename. A checkpoint absorbs the log: after
// the rename the log is truncated and any still-staged updates are
// re-logged into the fresh log, so recovery cost is bounded by the
// churn since the last checkpoint, not by store size or lifetime.
// Crossing Options.CheckpointBytes of log triggers a checkpoint
// automatically on the mutating call that crossed it.
//
// Recovery: load the checkpoint (if any), then replay the log record by
// record, stopping at — and truncating — a torn tail (kill -9 mid
// append). A record that no longer applies (a checkpoint superseded it,
// or its staged update never committed) is skipped, not fatal: the log
// is a history of operations that once succeeded, and replay converges
// on the same final state the live store had.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/docenc"
)

// FileStoreOptions tunes a FileStore.
type FileStoreOptions struct {
	// Shards is the in-memory partition count (0 = DefaultShards).
	Shards int
	// NoSync skips every fsync. Throughput-measurement and
	// scratch-store use only: a crash can lose acknowledged writes
	// (the log stays ordered, so recovery still sees a clean prefix).
	NoSync bool
	// CheckpointBytes triggers an automatic checkpoint when the log
	// grows past it (0 = DefaultCheckpointBytes, < 0 = never — explicit
	// Checkpoint calls only).
	CheckpointBytes int64
}

// DefaultCheckpointBytes bounds the log (and therefore recovery time)
// when the caller does not choose a budget.
const DefaultCheckpointBytes = 64 << 20

// FileStoreStats is a point-in-time snapshot of a FileStore's durability
// counters.
type FileStoreStats struct {
	// Records and AppendedBytes count WAL appends since open (frame
	// overhead included). Syncs counts fsync barriers actually issued —
	// group commit makes it smaller than the number of durable commits.
	Records, AppendedBytes, Syncs int64
	// WALBytes is the current log length; Checkpoints counts
	// checkpoints taken since open.
	WALBytes, Checkpoints int64
	// ReplayedRecords and SkippedRecords describe recovery at open:
	// applied vs. superseded log records. TornTail reports that the log
	// ended in a partially written record, which recovery truncated.
	ReplayedRecords, SkippedRecords int64
	TornTail                        bool
}

// FileStore implements Store, BlockRangeReader and DocUpdater on disk.
type FileStore struct {
	mem  *MemStore
	dir  string
	wal  *walWriter
	opts FileStoreOptions

	// ckptMu admits one checkpoint at a time; the automatic trigger
	// TryLocks it so concurrent committers never pile up behind one.
	ckptMu      sync.Mutex
	checkpoints atomic.Int64

	// broken latches the first append/checkpoint failure: once the log
	// can no longer record history, acknowledging further mutations
	// would promise durability the store cannot deliver. Reads keep
	// working.
	broken atomic.Value // error

	replayed, skipped int64
	tornTail          bool
}

const (
	walFileName  = "wal.log"
	ckptFileName = "checkpoint"
)

// checkpoint image magic ("SDSC" + format version).
var ckptMagic = []byte{'S', 'D', 'S', 'C', 1}

// NewFileStore opens (or creates) a durable store in dir with default
// options.
func NewFileStore(dir string) (*FileStore, error) {
	return NewFileStoreOptions(dir, FileStoreOptions{})
}

// NewFileStoreOptions opens (or creates) a durable store in dir,
// recovering from the checkpoint and log found there.
func NewFileStoreOptions(dir string, opts FileStoreOptions) (*FileStore, error) {
	if opts.Shards == 0 {
		opts.Shards = DefaultShards
	}
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = DefaultCheckpointBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &FileStore{mem: NewMemStoreShards(opts.Shards), dir: dir, opts: opts}

	if err := s.loadCheckpoint(); err != nil {
		return nil, err
	}
	tokens := make(map[uint64]uint64) // logged token → live token
	size, torn, err := replayWal(filepath.Join(dir, walFileName), func(body []byte) error {
		return s.applyRecord(body, tokens)
	})
	if err != nil {
		return nil, fmt.Errorf("dsp: recovering %s: %w", dir, err)
	}
	// Staged updates with no commit in the log belong to handshakes the
	// crash killed; their tokens died with the old process, so nobody
	// can ever commit them. Replay needed them only to serve commits
	// later in the log — evict the leftovers.
	for _, token := range tokens {
		_ = s.mem.AbortUpdate(token)
	}
	s.tornTail = torn
	s.wal, err = openWalWriter(filepath.Join(dir, walFileName), size, opts.NoSync)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *FileStore) Dir() string { return s.dir }

// Stats snapshots the durability counters.
func (s *FileStore) Stats() FileStoreStats {
	return FileStoreStats{
		Records:         s.wal.records.Load(),
		AppendedBytes:   s.wal.bytesAppended.Load(),
		Syncs:           s.wal.syncs.Load(),
		WALBytes:        s.wal.size(),
		Checkpoints:     s.checkpoints.Load(),
		ReplayedRecords: s.replayed,
		SkippedRecords:  s.skipped,
		TornTail:        s.tornTail,
	}
}

// Close makes the log durable and releases the file. It does not
// checkpoint: reopening replays the log. Long-lived servers call
// Checkpoint before Close for an instant next start.
func (s *FileStore) Close() error {
	err := s.wal.syncTo(s.wal.size())
	if cerr := s.wal.close(); err == nil {
		err = cerr
	}
	return err
}

func (s *FileStore) fail(err error) error {
	s.broken.CompareAndSwap(nil, err)
	return err
}

func (s *FileStore) failed() error {
	if err, ok := s.broken.Load().(error); ok {
		return fmt.Errorf("dsp: durable store is read-only after a log failure: %w", err)
	}
	return nil
}

// logged runs a store mutation and its WAL append as one atomic step
// under the log mutex, so log order always equals apply order. It
// returns the durability offset for syncTo (0 when apply failed).
func (s *FileStore) logged(apply func() error, record func() []byte) (int64, error) {
	if err := s.failed(); err != nil {
		return 0, err
	}
	s.wal.mu.Lock()
	defer s.wal.mu.Unlock()
	if err := apply(); err != nil {
		return 0, err
	}
	off, err := s.wal.append(record())
	if err != nil {
		return 0, s.fail(err)
	}
	return off, nil
}

// durable waits for offset off to hit the disk, then checks the
// checkpoint trigger.
func (s *FileStore) durable(off int64) error {
	if err := s.wal.syncTo(off); err != nil {
		return s.fail(err)
	}
	s.maybeCheckpoint()
	return nil
}

// checkRecordSize rejects a mutation too large for one WAL record
// before anything is applied: the caller gets a plain validation
// error, not a store latched read-only over its own input.
func checkRecordSize(n int) error {
	if n > maxWalRecord {
		return fmt.Errorf("dsp: mutation of %d bytes exceeds the %d-byte wal record limit", n, maxWalRecord)
	}
	return nil
}

// PutDocument implements Store: logged, then made durable before it is
// acknowledged.
func (s *FileStore) PutDocument(c *docenc.Container) error {
	if c == nil {
		return fmt.Errorf("dsp: nil container")
	}
	img, err := c.MarshalBinary()
	if err != nil {
		return err
	}
	body := append([]byte{recPutDocument}, img...)
	if err := checkRecordSize(len(body)); err != nil {
		return err
	}
	off, err := s.logged(
		func() error { return s.mem.PutDocument(c) },
		func() []byte { return body },
	)
	if err != nil {
		return err
	}
	return s.durable(off)
}

// PutRuleSet implements Store (durable before acknowledged).
func (s *FileStore) PutRuleSet(docID, subject string, version uint32, sealed []byte) error {
	body := []byte{recPutRuleSet}
	body = appendString(body, docID)
	body = appendString(body, subject)
	body = appendUvarint(body, uint64(version))
	body = appendBytes(body, sealed)
	if err := checkRecordSize(len(body)); err != nil {
		return err
	}
	off, err := s.logged(
		func() error { return s.mem.PutRuleSet(docID, subject, version, sealed) },
		func() []byte { return body },
	)
	if err != nil {
		return err
	}
	return s.durable(off)
}

// Header implements Store from memory.
func (s *FileStore) Header(docID string) (docenc.Header, error) { return s.mem.Header(docID) }

// ReadBlock implements Store from memory.
func (s *FileStore) ReadBlock(docID string, idx int) ([]byte, error) {
	return s.mem.ReadBlock(docID, idx)
}

// ReadBlocks implements BlockRangeReader from memory.
func (s *FileStore) ReadBlocks(docID string, start, count int) ([][]byte, error) {
	return s.mem.ReadBlocks(docID, start, count)
}

// RuleSet implements Store from memory.
func (s *FileStore) RuleSet(docID, subject string) ([]byte, error) {
	return s.mem.RuleSet(docID, subject)
}

// ListDocuments implements Store from memory.
func (s *FileStore) ListDocuments() ([]string, error) { return s.mem.ListDocuments() }

// BeginUpdate implements DocUpdater. The begin and its staged blocks
// are appended without an fsync of their own: they only matter if their
// commit record follows, and the commit's barrier covers everything
// before it in the log.
func (s *FileStore) BeginUpdate(h docenc.Header, baseVersion uint32) (uint64, error) {
	hdr, err := h.MarshalBinary()
	if err != nil {
		return 0, err
	}
	var token uint64
	_, err = s.logged(
		func() (err error) { token, err = s.mem.BeginUpdate(h, baseVersion); return err },
		func() []byte { return beginRecord(token, baseVersion, hdr) },
	)
	return token, err
}

// PutBlocks implements DocUpdater: one appended record per staged run.
func (s *FileStore) PutBlocks(token uint64, start int, blocks [][]byte) error {
	body := putBlocksRecord(token, start, blocks)
	if err := checkRecordSize(len(body)); err != nil {
		return err
	}
	_, err := s.logged(
		func() error { return s.mem.PutBlocks(token, start, blocks) },
		func() []byte { return body },
	)
	return err
}

// CommitUpdate implements DocUpdater: the commit record's fsync is the
// one barrier a whole delta re-publish pays, and concurrent commits
// share it (group commit).
func (s *FileStore) CommitUpdate(token uint64) error {
	off, err := s.logged(
		func() error { return s.mem.CommitUpdate(token) },
		func() []byte { return tokenRecord(recCommit, token) },
	)
	if err != nil {
		return err
	}
	return s.durable(off)
}

// AbortUpdate implements DocUpdater. The abort is logged so replay does
// not resurrect the staged update, but nothing waits on the disk: an
// abort lost to a crash only leaves a stale staged update, which
// recovery (and the staging cap) already tolerates.
func (s *FileStore) AbortUpdate(token uint64) error {
	_, err := s.logged(
		func() error { return s.mem.AbortUpdate(token) },
		func() []byte { return tokenRecord(recAbort, token) },
	)
	return err
}

// record body builders (shared by live appends and checkpoint re-logs).

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func beginRecord(token uint64, baseVersion uint32, hdr []byte) []byte {
	body := []byte{recBeginUpdate}
	body = appendUvarint(body, token)
	body = appendUvarint(body, uint64(baseVersion))
	return append(body, hdr...)
}

func putBlocksRecord(token uint64, start int, blocks [][]byte) []byte {
	body := []byte{recPutBlocks}
	body = appendUvarint(body, token)
	body = appendUvarint(body, uint64(start))
	body = appendUvarint(body, uint64(len(blocks)))
	for _, blk := range blocks {
		body = appendBytes(body, blk)
	}
	return body
}

func tokenRecord(kind byte, token uint64) []byte {
	return appendUvarint([]byte{kind}, token)
}

// applyRecord replays one WAL record during recovery. Parse failures of
// a CRC-clean record mean real corruption and abort the open; apply
// failures mean the record was superseded (checkpoint overlap, an
// update that never committed, a duplicate commit) and are skipped.
func (s *FileStore) applyRecord(body []byte, tokens map[uint64]uint64) error {
	if len(body) == 0 {
		return errors.New("empty wal record")
	}
	s.replayed++
	r := &wireReader{data: body, pos: 1}
	switch body[0] {
	case recPutDocument:
		c, err := docenc.UnmarshalContainer(body[1:])
		if err != nil {
			return fmt.Errorf("put-document record: %w", err)
		}
		// The unmarshal aliases the replay buffer; copy the blocks so a
		// long log is not pinned in memory by the few containers that
		// survive it.
		for i := range c.Blocks {
			c.Blocks[i] = append([]byte(nil), c.Blocks[i]...)
		}
		if err := s.mem.PutDocument(c); err != nil {
			s.skipped++
		}
	case recPutRuleSet:
		docID := r.string()
		subject := r.string()
		version := r.uvarint()
		sealed := r.bytes()
		if r.err != nil {
			return fmt.Errorf("put-ruleset record: %w", r.err)
		}
		if err := s.mem.PutRuleSet(docID, subject, uint32(version), sealed); err != nil {
			s.skipped++
		}
	case recBeginUpdate:
		logged := r.uvarint()
		base := r.uvarint()
		if r.err != nil {
			return fmt.Errorf("begin-update record: %w", r.err)
		}
		h, _, err := docenc.UnmarshalHeader(r.rest())
		if err != nil {
			return fmt.Errorf("begin-update header: %w", err)
		}
		token, err := s.mem.BeginUpdate(h, uint32(base))
		if err != nil {
			s.skipped++
			return nil
		}
		tokens[logged] = token
	case recPutBlocks:
		logged := r.uvarint()
		start := r.uvarint()
		count := r.uvarint()
		if r.err != nil {
			return fmt.Errorf("put-blocks record: %w", r.err)
		}
		blocks := make([][]byte, 0, count)
		for i := uint64(0); i < count; i++ {
			b := r.bytes()
			if r.err != nil {
				return fmt.Errorf("put-blocks record: %w", r.err)
			}
			blocks = append(blocks, append([]byte(nil), b...))
		}
		token, ok := tokens[logged]
		if !ok {
			s.skipped++ // its begin was superseded
			return nil
		}
		if err := s.mem.PutBlocks(token, int(start), blocks); err != nil {
			s.skipped++
		}
	case recCommit:
		logged := r.uvarint()
		if r.err != nil {
			return fmt.Errorf("commit record: %w", r.err)
		}
		token, ok := tokens[logged]
		if !ok {
			s.skipped++ // superseded begin, or a duplicate commit
			return nil
		}
		delete(tokens, logged) // commit retires the token either way
		if err := s.mem.CommitUpdate(token); err != nil {
			s.skipped++
		}
	case recAbort:
		logged := r.uvarint()
		if r.err != nil {
			return fmt.Errorf("abort record: %w", r.err)
		}
		token, ok := tokens[logged]
		if !ok {
			s.skipped++
			return nil
		}
		delete(tokens, logged)
		if err := s.mem.AbortUpdate(token); err != nil {
			s.skipped++
		}
	default:
		return fmt.Errorf("unknown wal record type %d", body[0])
	}
	return nil
}

// maybeCheckpoint checkpoints when the log crossed the budget, unless a
// checkpoint is already running (the log keeps growing meanwhile and
// the next durable commit re-triggers).
func (s *FileStore) maybeCheckpoint() {
	if s.opts.CheckpointBytes <= 0 || s.wal.size() < s.opts.CheckpointBytes {
		return
	}
	if !s.ckptMu.TryLock() {
		return
	}
	defer s.ckptMu.Unlock()
	_ = s.checkpointLocked() // a failed checkpoint latches broken below
}

// Checkpoint writes the full store image (temp file, fsync, atomic
// rename) and truncates the log it absorbs; still-staged updates are
// re-logged into the fresh log so an in-flight delta handshake survives
// the compaction. Mutations block for the duration; reads do not.
func (s *FileStore) Checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return s.checkpointLocked()
}

func (s *FileStore) checkpointLocked() error {
	if err := s.failed(); err != nil {
		return err
	}
	s.wal.mu.Lock()
	defer s.wal.mu.Unlock()

	img, err := s.snapshotImage()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, ckptFileName+".tmp-*")
	if err != nil {
		return s.fail(err)
	}
	cleanup := func(err error) error {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return s.fail(err)
	}
	if _, err := tmp.Write(img); err != nil {
		return cleanup(err)
	}
	// The image must be durable before the rename publishes it, or the
	// rename could survive a crash that the contents did not.
	if !s.opts.NoSync {
		if err := tmp.Sync(); err != nil {
			return cleanup(err)
		}
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return s.fail(err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, ckptFileName)); err != nil {
		_ = os.Remove(tmp.Name())
		return s.fail(err)
	}
	syncDir(s.dir)

	// The image now carries everything the log said; empty the log and
	// re-log in-flight handshakes (their begin/put-blocks records were
	// just absorbed into nothing — the image has only committed state).
	if err := s.wal.reset(); err != nil {
		return s.fail(err)
	}
	if err := s.relogStaged(); err != nil {
		return s.fail(err)
	}
	s.checkpoints.Add(1)
	return nil
}

// snapshotImage serializes the committed store state. The caller holds
// the log mutex, so no mutation is in flight; shard read-locks fence
// the reads.
func (s *FileStore) snapshotImage() ([]byte, error) {
	out := append([]byte(nil), ckptMagic...)
	var imgs [][]byte
	var ruleRecs []fileRuleRec
	for i := range s.mem.shards {
		sh := &s.mem.shards[i]
		sh.mu.RLock()
		for _, c := range sh.docs {
			img, err := c.MarshalBinary()
			if err != nil {
				sh.mu.RUnlock()
				return nil, err
			}
			imgs = append(imgs, img)
		}
		for k, e := range sh.rules {
			ruleRecs = append(ruleRecs, fileRuleRec{key: k, version: e.version,
				sealed: append([]byte(nil), e.sealed...)})
		}
		sh.mu.RUnlock()
	}
	out = appendUvarint(out, uint64(len(imgs)))
	for _, img := range imgs {
		out = appendBytes(out, img)
	}
	out = appendUvarint(out, uint64(len(ruleRecs)))
	for _, rr := range ruleRecs {
		out = appendString(out, rr.key)
		out = appendUvarint(out, uint64(rr.version))
		out = appendBytes(out, rr.sealed)
	}
	return out, nil
}

type fileRuleRec struct {
	key     string // docID + "\x00" + subject, the shard map key
	version uint32
	sealed  []byte
}

// relogStaged writes the begin/put-blocks records of every still-staged
// update into the (fresh) log under their live tokens. No fsync: like a
// live begin, they become durable with their commit's barrier.
func (s *FileStore) relogStaged() error {
	s.mem.updMu.Lock()
	tokens := make([]uint64, 0, len(s.mem.updates))
	for t := range s.mem.updates {
		tokens = append(tokens, t)
	}
	sort.Slice(tokens, func(i, j int) bool { return tokens[i] < tokens[j] })
	type stagedCopy struct {
		token uint64
		up    *pendingUpdate
	}
	staged := make([]stagedCopy, 0, len(tokens))
	for _, t := range tokens {
		staged = append(staged, stagedCopy{t, s.mem.updates[t]})
	}
	s.mem.updMu.Unlock()

	for _, sc := range staged {
		hdr, err := sc.up.header.MarshalBinary()
		if err != nil {
			return err
		}
		if _, err := s.wal.append(beginRecord(sc.token, sc.up.base, hdr)); err != nil {
			return err
		}
		// Coalesce the staged blocks back into contiguous runs, cut at
		// a byte budget so the re-log never assembles a record larger
		// than the live path could have appended.
		idxs := make([]int, 0, len(sc.up.blocks))
		for i := range sc.up.blocks {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for lo := 0; lo < len(idxs); {
			hi, runBytes := lo+1, len(sc.up.blocks[idxs[lo]])
			for hi < len(idxs) && idxs[hi] == idxs[hi-1]+1 && runBytes < maxPutBatchBytes {
				runBytes += len(sc.up.blocks[idxs[hi]])
				hi++
			}
			run := make([][]byte, 0, hi-lo)
			for _, i := range idxs[lo:hi] {
				run = append(run, sc.up.blocks[i])
			}
			if _, err := s.wal.append(putBlocksRecord(sc.token, idxs[lo], run)); err != nil {
				return err
			}
			lo = hi
		}
	}
	return nil
}

// loadCheckpoint reads the checkpoint image (if present) into the
// in-memory store and sweeps temp files a crashed checkpoint left.
func (s *FileStore) loadCheckpoint() error {
	if tmps, err := filepath.Glob(filepath.Join(s.dir, ckptFileName+".tmp-*")); err == nil {
		for _, t := range tmps {
			_ = os.Remove(t)
		}
	}
	data, err := os.ReadFile(filepath.Join(s.dir, ckptFileName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(data) < len(ckptMagic) || string(data[:len(ckptMagic)]) != string(ckptMagic) {
		return fmt.Errorf("dsp: %s/%s: bad checkpoint magic", s.dir, ckptFileName)
	}
	r := &wireReader{data: data, pos: len(ckptMagic)}
	nDocs := r.uvarint()
	for i := uint64(0); i < nDocs; i++ {
		img := r.bytes()
		if r.err != nil {
			break
		}
		c, err := docenc.UnmarshalContainer(img)
		if err != nil {
			return fmt.Errorf("dsp: checkpoint document %d: %w", i, err)
		}
		if err := s.mem.PutDocument(c); err != nil {
			return fmt.Errorf("dsp: checkpoint document %d: %w", i, err)
		}
	}
	nRules := r.uvarint()
	for i := uint64(0); i < nRules; i++ {
		key := r.string()
		version := r.uvarint()
		sealed := r.bytes()
		if r.err != nil {
			break
		}
		docID, subject, ok := splitRuleKey(key)
		if !ok {
			return fmt.Errorf("dsp: checkpoint rule %d: malformed key", i)
		}
		if err := s.mem.PutRuleSet(docID, subject, uint32(version), sealed); err != nil {
			return fmt.Errorf("dsp: checkpoint rule %d: %w", i, err)
		}
	}
	if r.err != nil {
		return fmt.Errorf("dsp: truncated checkpoint: %w", r.err)
	}
	return nil
}

func splitRuleKey(key string) (docID, subject string, ok bool) {
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			return key[:i], key[i+1:], true
		}
	}
	return "", "", false
}

// syncDir fsyncs a directory so a just-renamed file survives a crash of
// the directory entry itself. Best effort: some filesystems refuse
// directory fsync, and the rename alone is already atomic.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

var (
	_ Store            = (*FileStore)(nil)
	_ BlockRangeReader = (*FileStore)(nil)
	_ DocUpdater       = (*FileStore)(nil)
)
