package dsp

import (
	"bytes"
	"encoding/binary"
	"os"
	"os/exec"
	"testing"
	"time"

	"repro/internal/docenc"
	"repro/internal/secure"
)

// The crash-injection test: a child process (this test binary re-execed
// against TestFileStoreCrashWriter) opens a FileStore and delta-commits
// as fast as it can; the parent SIGKILLs it at an arbitrary moment —
// mid-append, mid-fsync, wherever the scheduler left it — then recovers
// the directory and checks the store landed on exactly one committed
// version, end to end, before re-publishing on top of it.

const (
	crashEnvDir     = "SDS_CRASH_DIR"
	crashDoc        = "crash-doc"
	crashBlockPlain = 2048
	crashNumBlocks  = 8
)

// crashContainer builds a synthetic container whose every block starts
// with its full version (big-endian), so any mix of versions after
// recovery is detectable — the writer commits thousands of versions per
// second, far past what one byte could discriminate.
func crashContainer(version uint32) *docenc.Container {
	h := docenc.Header{DocID: crashDoc, Version: version, BlockPlain: crashBlockPlain,
		PayloadLen: crashBlockPlain * crashNumBlocks}
	c := &docenc.Container{Header: h}
	for i := 0; i < crashNumBlocks; i++ {
		b := bytes.Repeat([]byte{byte(version)}, crashBlockPlain+secure.MACLen)
		binary.BigEndian.PutUint32(b, version)
		c.Blocks = append(c.Blocks, b)
	}
	return c
}

// blockVersion reads the version a crashContainer block was written at.
func blockVersion(b []byte) uint32 { return binary.BigEndian.Uint32(b) }

// TestFileStoreCrashWriter is the child body: not a test of its own (it
// skips unless re-execed with the crash directory in the environment).
func TestFileStoreCrashWriter(t *testing.T) {
	dir := os.Getenv(crashEnvDir)
	if dir == "" {
		t.Skip("crash-writer helper; run via TestFileStoreCrashRecovery")
	}
	s, err := NewFileStoreOptions(dir, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutDocument(crashContainer(1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second) // the parent kills us long before
	for v := uint32(2); time.Now().Before(deadline); v++ {
		c := crashContainer(v)
		token, err := s.BeginUpdate(c.Header, v-1)
		if err != nil {
			t.Fatal(err)
		}
		// A two-block delta staged as two runs, like a real re-publish.
		if err := s.PutBlocks(token, 0, c.Blocks[:1]); err != nil {
			t.Fatal(err)
		}
		if err := s.PutBlocks(token, crashNumBlocks-1, c.Blocks[crashNumBlocks-1:]); err != nil {
			t.Fatal(err)
		}
		if err := s.CommitUpdate(token); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFileStoreCrashRecovery kills a committing writer with SIGKILL and
// proves the acceptance path: recovery replays a clean prefix (torn
// tail truncated), the store serves one consistent committed version,
// and a fresh delta re-publish lands on top of it.
func TestFileStoreCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestFileStoreCrashWriter$")
	cmd.Env = append(os.Environ(), crashEnvDir+"="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Let it commit for a while, then kill -9 mid-whatever.
	time.Sleep(400 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	h, err := s.Header(crashDoc)
	if err != nil {
		t.Fatalf("document lost: %v", err)
	}
	if h.Version < 1 {
		t.Fatalf("recovered version %d", h.Version)
	}
	blocks, err := s.ReadBlocks(crashDoc, 0, crashNumBlocks)
	if err != nil {
		t.Fatal(err)
	}
	// Atomic commits: after recovery the delta'd blocks (0 and last) are
	// at the header's version, never a mix of versions.
	for _, i := range []int{0, crashNumBlocks - 1} {
		if v := blockVersion(blocks[i]); v != h.Version {
			t.Fatalf("block %d at version %d under header version %d — torn commit applied",
				i, v, h.Version)
		}
	}
	st := s.Stats()
	t.Logf("recovered at version %d: %+v", h.Version, st)

	// Republish against the recovered base and bounce the store once
	// more to prove the post-crash log is appendable and replayable.
	next := crashContainer(h.Version + 1)
	token, err := s.BeginUpdate(next.Header, h.Version)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutBlocks(token, 0, next.Blocks[:1]); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitUpdate(token); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := r.Header(crashDoc)
	if err != nil || h2.Version != h.Version+1 {
		t.Fatalf("post-crash republish did not survive: %+v, %v", h2, err)
	}
	blk, err := r.ReadBlock(crashDoc, 0)
	if err != nil || blockVersion(blk) != h.Version+1 {
		t.Fatalf("post-crash republished block wrong: %v, %v", blk[:4], err)
	}
}
