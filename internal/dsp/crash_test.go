package dsp

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"os/exec"
	"testing"
	"time"

	"repro/internal/docenc"
	"repro/internal/secure"
)

// The crash-injection test: a child process (this test binary re-execed
// against TestFileStoreCrashWriter) opens a FileStore and delta-commits
// to several documents — spread across WAL segments — as fast as it
// can; the parent SIGKILLs it at an arbitrary moment — mid-append,
// mid-fsync, wherever the scheduler left it — then recovers the
// directory (replaying every segment, torn tails and all) and checks
// each document landed on exactly one committed version, end to end,
// before re-publishing on top of it.

const (
	crashEnvDir     = "SDS_CRASH_DIR"
	crashDocs       = 4
	crashBlockPlain = 2048
	crashNumBlocks  = 8
)

func crashDocID(d int) string { return fmt.Sprintf("crash-doc-%d", d) }

// crashContainer builds a synthetic container whose every block starts
// with its full version (big-endian), so any mix of versions after
// recovery is detectable — the writer commits thousands of versions per
// second, far past what one byte could discriminate.
func crashContainer(docID string, version uint32) *docenc.Container {
	h := docenc.Header{DocID: docID, Version: version, BlockPlain: crashBlockPlain,
		PayloadLen: crashBlockPlain * crashNumBlocks}
	c := &docenc.Container{Header: h}
	for i := 0; i < crashNumBlocks; i++ {
		b := bytes.Repeat([]byte{byte(version)}, crashBlockPlain+secure.MACLen)
		binary.BigEndian.PutUint32(b, version)
		c.Blocks = append(c.Blocks, b)
	}
	return c
}

// blockVersion reads the version a crashContainer block was written at.
func blockVersion(b []byte) uint32 { return binary.BigEndian.Uint32(b) }

// TestFileStoreCrashWriter is the child body: not a test of its own (it
// skips unless re-execed with the crash directory in the environment).
func TestFileStoreCrashWriter(t *testing.T) {
	dir := os.Getenv(crashEnvDir)
	if dir == "" {
		t.Skip("crash-writer helper; run via TestFileStoreCrashRecovery")
	}
	// A tiny WAL budget makes the background checkpointer churn
	// constantly, so the kill also lands amid image rewrites, footer
	// writes and mmap region swaps — not just mid-append.
	s, err := NewFileStoreOptions(dir, FileStoreOptions{CheckpointBytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < crashDocs; d++ {
		if err := s.PutDocument(crashContainer(crashDocID(d), 1)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(20 * time.Second) // the parent kills us long before
	for v := uint32(2); time.Now().Before(deadline); v++ {
		for d := 0; d < crashDocs; d++ {
			c := crashContainer(crashDocID(d), v)
			token, err := s.BeginUpdate(c.Header, v-1)
			if err != nil {
				t.Fatal(err)
			}
			// A two-block delta staged as two runs, like a real re-publish.
			if err := s.PutBlocks(token, 0, c.Blocks[:1]); err != nil {
				t.Fatal(err)
			}
			if err := s.PutBlocks(token, crashNumBlocks-1, c.Blocks[crashNumBlocks-1:]); err != nil {
				t.Fatal(err)
			}
			if err := s.CommitUpdate(token); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestFileStoreCrashRecovery kills a committing writer with SIGKILL and
// proves the acceptance path: recovery replays a clean prefix of every
// segment (torn tails truncated), the store serves one consistent
// committed version per document, the kernel released the dead
// process's directory lock, and a fresh delta re-publish lands on top.
func TestFileStoreCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestFileStoreCrashWriter$")
	cmd.Env = append(os.Environ(), crashEnvDir+"="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Let it commit for a while, then kill -9 mid-whatever.
	time.Sleep(400 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	// The child died holding the directory lock; flock dies with it, so
	// this open must succeed without ceremony.
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	doc0 := crashDocID(0)
	h0, err := s.Header(doc0)
	if err != nil {
		t.Fatalf("document lost: %v", err)
	}
	for d := 0; d < crashDocs; d++ {
		docID := crashDocID(d)
		h, err := s.Header(docID)
		if err != nil {
			t.Fatalf("%s lost: %v", docID, err)
		}
		if h.Version < 1 {
			t.Fatalf("%s recovered at version %d", docID, h.Version)
		}
		blocks, err := s.ReadBlocks(docID, 0, crashNumBlocks)
		if err != nil {
			t.Fatal(err)
		}
		// Atomic commits: after recovery the delta'd blocks (0 and last)
		// are at the header's version, never a mix of versions.
		for _, i := range []int{0, crashNumBlocks - 1} {
			if v := blockVersion(blocks[i]); v != h.Version {
				t.Fatalf("%s block %d at version %d under header version %d — torn commit applied",
					docID, i, v, h.Version)
			}
		}
		// The writer bumps all documents in lockstep; recovered versions
		// may differ by the one round the kill interrupted, never more.
		if diff := int64(h.Version) - int64(h0.Version); diff < -1 || diff > 1 {
			t.Fatalf("%s at version %d, %s at %d — segments recovered from different eras",
				docID, h.Version, doc0, h0.Version)
		}
	}
	st := s.Stats()
	t.Logf("recovered %d docs (doc0 at version %d) in %v: %+v", crashDocs, h0.Version, st.RecoveryDuration, st)

	// Republish against the recovered base and bounce the store once
	// more to prove the post-crash logs are appendable and replayable.
	next := crashContainer(doc0, h0.Version+1)
	token, err := s.BeginUpdate(next.Header, h0.Version)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutBlocks(token, 0, next.Blocks[:1]); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitUpdate(token); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := r.Header(doc0)
	if err != nil || h2.Version != h0.Version+1 {
		t.Fatalf("post-crash republish did not survive: %+v, %v", h2, err)
	}
	blk, err := r.ReadBlock(doc0, 0)
	if err != nil || blockVersion(blk) != h0.Version+1 {
		t.Fatalf("post-crash republished block wrong: %v, %v", blk[:4], err)
	}
	_ = r.Close()
}
