//go:build !unix

package dsp

// Non-Unix fallback: no flock(2), so the directory lock degrades to the
// diagnostic pid stamp alone — double-open protection is advisory only
// on these platforms. The durable tier targets Unix servers; this stub
// keeps the package compiling everywhere.
func flockExclusive(f interface{ Fd() uintptr }) error { return nil }

// dirSyncUnsupported: directory fsync semantics are undefined off Unix;
// forgive every refusal rather than latch the store broken.
func dirSyncUnsupported(err error) bool { return true }
