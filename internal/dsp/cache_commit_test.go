package dsp

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/docenc"
	"repro/internal/secure"
)

// failOnceStore wraps a MemStore and fails the first CommitUpdate with
// a transient error without applying it — the shape of a network blip
// between a cache and a remote store, where the caller's retry of the
// same token can then succeed.
type failOnceStore struct {
	*MemStore
	failed bool
}

var errTransient = errors.New("transient commit failure")

func (s *failOnceStore) CommitUpdate(token uint64) error {
	if !s.failed {
		s.failed = true
		return errTransient
	}
	return s.MemStore.CommitUpdate(token)
}

// TestCacheCommitRetryInvalidates is the regression test for the
// commit-ordering bug: the cache used to drop its token→document
// mapping before the backing commit, so a failed-then-retried commit
// left the pre-update blocks resident — readers were served stale
// ciphertext forever. The mapping must outlive failed commits and the
// invalidation must run on the attempt that succeeds.
func TestCacheCommitRetryInvalidates(t *testing.T) {
	const (
		blockPlain = 32
		numBlocks  = 4
	)
	backing := &failOnceStore{MemStore: NewMemStore()}
	cache := NewCache(backing, 1<<20)

	makeContainer := func(version uint32) *docenc.Container {
		h := docenc.Header{DocID: "doc", Version: version, BlockPlain: blockPlain,
			PayloadLen: blockPlain * numBlocks}
		c := &docenc.Container{Header: h}
		for i := 0; i < numBlocks; i++ {
			c.Blocks = append(c.Blocks, bytes.Repeat([]byte{byte(version)}, blockPlain+secure.MACLen))
		}
		return c
	}
	if err := cache.PutDocument(makeContainer(1)); err != nil {
		t.Fatal(err)
	}
	// Pull version 1's blocks into the cache.
	if _, err := cache.ReadBlocks("doc", 0, numBlocks); err != nil {
		t.Fatal(err)
	}

	c2 := makeContainer(2)
	token, err := cache.BeginUpdate(c2.Header, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.PutBlocks(token, 0, c2.Blocks); err != nil {
		t.Fatal(err)
	}
	if err := cache.CommitUpdate(token); !errors.Is(err, errTransient) {
		t.Fatalf("first commit = %v, want the injected transient failure", err)
	}
	if err := cache.CommitUpdate(token); err != nil {
		t.Fatalf("retried commit failed: %v", err)
	}

	// The retry succeeded, so the cache must serve version 2 — with the
	// old ordering the resident version-1 blocks survived here.
	blocks, err := cache.ReadBlocks("doc", 0, numBlocks)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range blocks {
		if b[0] != 2 {
			t.Fatalf("block %d served from version %d after a committed update to 2", i, b[0])
		}
	}
}
