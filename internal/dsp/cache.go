package dsp

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/docenc"
)

// CacheStats is a point-in-time snapshot of a Cache's counters.
type CacheStats struct {
	// Hits and Misses count block lookups served from / past the cache.
	Hits, Misses int64
	// Evictions counts blocks dropped to respect the byte budget.
	Evictions int64
	// Blocks and Bytes describe the current residency.
	Blocks int
	Bytes  int64
}

// HitRate returns hits / lookups, or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is an LRU block cache in front of a Store: hot encrypted blocks
// are served from memory without touching the backing store. Blocks are
// ciphertext — the cache never sees plaintext, so it is as untrusted as
// the store it fronts and can run on the same scaled-out tier.
//
// The cache is sharded by (document, block) so it adds no global lock to
// a sharded backend and one hot document can use the whole byte budget.
// Only block reads are cached; headers and rule sets pass through (they
// are one-lock lookups already).
type Cache struct {
	store  Store
	shards []cacheShard

	// gens carries a generation counter per re-published document
	// (docID → *atomic.Uint64). PutDocument bumps it before purging, and
	// fills started against the old generation refuse to insert —
	// otherwise an in-flight read of the old ciphertext could land after
	// the purge and be served until eviction. Entries are created only
	// by invalidation, so reads of arbitrary (or hostile, nonexistent)
	// ids never grow the map.
	gens sync.Map

	// updDocs maps in-flight update tokens to their document id, so a
	// commit knows which document to invalidate.
	updDocs sync.Map

	hits, misses, evictions atomic.Int64
}

type cacheShard struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	lru      *list.List // front = most recently used; values are *cacheEntry
	entries  map[cacheKey]*list.Element
}

type cacheKey struct {
	docID string
	idx   int
}

type cacheEntry struct {
	key   cacheKey
	gen   uint64
	block []byte
}

// DefaultCacheBytes is the NewCache budget when maxBytes <= 0 (64 MiB —
// a few hundred documents of the paper's workloads).
const DefaultCacheBytes = 64 << 20

// NewCache wraps store with an LRU block cache holding at most maxBytes
// of block data (<= 0 selects DefaultCacheBytes).
func NewCache(store Store, maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	n := DefaultShards
	c := &Cache{store: store, shards: make([]cacheShard, n)}
	per := maxBytes / int64(n)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].maxBytes = per
		c.shards[i].lru = list.New()
		c.shards[i].entries = make(map[cacheKey]*list.Element)
	}
	return c
}

func (c *Cache) shard(k cacheKey) *cacheShard {
	return &c.shards[shardHash(k.docID, uint32(k.idx))%uint32(len(c.shards))]
}

// genValue returns the document's current generation (0 until its first
// re-publish; only invalidate creates entries).
func (c *Cache) genValue(docID string) uint64 {
	if g, ok := c.gens.Load(docID); ok {
		return g.(*atomic.Uint64).Load()
	}
	return 0
}

// Stats snapshots the counters and residency.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Blocks += sh.lru.Len()
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return st
}

// lookup returns a cached block, or nil.
func (sh *cacheShard) lookup(k cacheKey) []byte {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[k]
	if !ok {
		return nil
	}
	sh.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).block
}

// insert adds a block fetched under generation wantGen, evicting from
// the tail to stay under budget. A fill whose generation is stale (the
// document was re-published while the backing read was in flight) is
// dropped. Returns the number of evictions.
func (c *Cache) insert(sh *cacheShard, k cacheKey, wantGen uint64, block []byte) int64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c.genValue(k.docID) != wantGen {
		return 0
	}
	if el, ok := sh.entries[k]; ok {
		// Racing fill of the same block and generation: keep the
		// resident copy fresh.
		sh.lru.MoveToFront(el)
		return 0
	}
	if int64(len(block)) > sh.maxBytes {
		return 0 // an oversized block would evict the whole shard for one use
	}
	sh.entries[k] = sh.lru.PushFront(&cacheEntry{key: k, gen: wantGen, block: block})
	sh.bytes += int64(len(block))
	var evicted int64
	for sh.bytes > sh.maxBytes {
		tail := sh.lru.Back()
		if tail == nil {
			break
		}
		e := tail.Value.(*cacheEntry)
		sh.lru.Remove(tail)
		delete(sh.entries, e.key)
		sh.bytes -= int64(len(e.block))
		evicted++
	}
	return evicted
}

// purgeDoc drops every resident block of one document from one shard.
func (sh *cacheShard) purgeDoc(docID string) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for el := sh.lru.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		if e.key.docID == docID {
			sh.lru.Remove(el)
			delete(sh.entries, e.key)
			sh.bytes -= int64(len(e.block))
		}
		el = next
	}
}

// invalidate retires a document's cached blocks: after a re-put the old
// ciphertext must not be served (the header's version changed and the
// card would reject stale blocks as a replay). The generation bump
// happens first so concurrent fills of the old content abort.
func (c *Cache) invalidate(docID string) {
	g, _ := c.gens.LoadOrStore(docID, new(atomic.Uint64))
	g.(*atomic.Uint64).Add(1)
	for i := range c.shards {
		c.shards[i].purgeDoc(docID)
	}
}

// PutDocument implements Store, invalidating the document's cached blocks.
func (c *Cache) PutDocument(con *docenc.Container) error {
	if err := c.store.PutDocument(con); err != nil {
		return err
	}
	if con != nil && con.Header.DocID != "" {
		c.invalidate(con.Header.DocID)
	}
	return nil
}

// Header implements Store (pass-through).
func (c *Cache) Header(docID string) (docenc.Header, error) {
	return c.store.Header(docID)
}

// ReadBlock implements Store through the cache.
func (c *Cache) ReadBlock(docID string, idx int) ([]byte, error) {
	k := cacheKey{docID: docID, idx: idx}
	sh := c.shard(k)
	if b := sh.lookup(k); b != nil {
		c.hits.Add(1)
		return b, nil
	}
	c.misses.Add(1)
	wantGen := c.genValue(docID)
	b, err := c.store.ReadBlock(docID, idx)
	if err != nil {
		return nil, err
	}
	c.evictions.Add(c.insert(sh, k, wantGen, b))
	return b, nil
}

// ReadBlocks implements BlockRangeReader: resident blocks are served from
// memory and each gap is fetched from the backing store in one batched
// read (when it supports ranges).
func (c *Cache) ReadBlocks(docID string, start, count int) ([][]byte, error) {
	return c.readBlocks(docID, start, count, nil, nil)
}

// ReadBlocksPinned implements PinnedBlockReader: cache hits are ordinary
// heap blocks, and gap fills pass the pins through to the backing store,
// so a mostly-cold range still travels mmap → writev without a copy.
func (c *Cache) ReadBlocksPinned(docID string, start, count int, pins *[]BlockPin) ([][]byte, bool, error) {
	pre := len(*pins)
	out, err := c.readBlocks(docID, start, count, pins, nil)
	if err != nil {
		return nil, false, err
	}
	return out, len(*pins) > pre, nil
}

// readBlocksWire implements wireBlockReader: cache hits stay heap
// blocks, and each cold gap forwards the backing store's
// sendfile-capable runs (shifted to this read's indexing) — so the hot
// set rides the LRU while a cold run still leaves the box kernel-side.
func (c *Cache) readBlocksWire(docID string, start, count int, pins *[]BlockPin, runs *[]wireRun) ([][]byte, error) {
	return c.readBlocks(docID, start, count, pins, runs)
}

// readBlocks is the shared range read. With pins == nil every gap fill
// comes back as store-owned heap memory and is inserted into the LRU;
// with pins set, fills go through the backing store's pinned path, and a
// fill that came back mapped is served but NOT cached — the views are
// only valid until the pin releases, while a cache entry would outlive
// it and serve unmapped memory.
func (c *Cache) readBlocks(docID string, start, count int, pins *[]BlockPin, runs *[]wireRun) ([][]byte, error) {
	if start < 0 || count < 0 {
		return nil, fmt.Errorf("dsp: negative block range [%d,+%d)", start, count)
	}
	pr, pinnable := c.store.(PinnedBlockReader)
	wr, wirable := c.store.(wireBlockReader)
	out := make([][]byte, count)
	missFrom := -1
	flushGap := func(end int) error {
		if missFrom < 0 {
			return nil
		}
		wantGen := c.genValue(docID)
		var got [][]byte
		var mapped bool
		var err error
		switch {
		case pins != nil && runs != nil && wirable:
			// Forward the backing store's file runs, re-indexed from the
			// gap's offset to this read's.
			pre := len(*pins)
			preRuns := len(*runs)
			got, err = wr.readBlocksWire(docID, start+missFrom, end-missFrom, pins, runs)
			mapped = err == nil && len(*pins) > pre
			for i := preRuns; i < len(*runs); i++ {
				(*runs)[i].Start += missFrom
			}
		case pins != nil && pinnable:
			got, mapped, err = pr.ReadBlocksPinned(docID, start+missFrom, end-missFrom, pins)
		case pinnable:
			// Plain fills ride the pinned tier too: a gap served out of a
			// mapped checkpoint image is copied out of the mapping once
			// for the caller (the views die with the pins) and then NOT
			// inserted into the LRU — the mapping re-serves those blocks
			// from the page cache for free, so caching the copies would
			// evict blocks that are genuinely expensive to refetch.
			var local []BlockPin
			got, mapped, err = pr.ReadBlocksPinned(docID, start+missFrom, end-missFrom, &local)
			if err == nil && mapped {
				for j, b := range got {
					got[j] = append(make([]byte, 0, len(b)), b...)
				}
			}
			for _, p := range local {
				p.Release()
			}
		default:
			got, err = ReadBlockRange(c.store, docID, start+missFrom, end-missFrom)
		}
		if err != nil {
			return err
		}
		for j, b := range got {
			out[missFrom+j] = b
			if mapped {
				continue // pinned views must not outlive the pin in the LRU
			}
			k := cacheKey{docID: docID, idx: start + missFrom + j}
			c.evictions.Add(c.insert(c.shard(k), k, wantGen, b))
		}
		missFrom = -1
		return nil
	}
	for i := 0; i < count; i++ {
		k := cacheKey{docID: docID, idx: start + i}
		if b := c.shard(k).lookup(k); b != nil {
			c.hits.Add(1)
			if err := flushGap(i); err != nil {
				return nil, err
			}
			out[i] = b
			continue
		}
		c.misses.Add(1)
		if missFrom < 0 {
			missFrom = i
		}
	}
	if err := flushGap(count); err != nil {
		return nil, err
	}
	return out, nil
}

// BeginUpdate implements DocUpdater when the backing store does. The
// token's document is remembered so the commit can invalidate it.
func (c *Cache) BeginUpdate(h docenc.Header, baseVersion uint32) (uint64, error) {
	up, ok := c.store.(DocUpdater)
	if !ok {
		return 0, ErrUpdateUnsupported
	}
	token, err := up.BeginUpdate(h, baseVersion)
	if err != nil {
		return 0, err
	}
	c.updDocs.Store(token, h.DocID)
	return token, nil
}

// PutBlocks implements DocUpdater (pass-through; staged blocks are not
// visible to readers, so the cache has nothing to do yet).
func (c *Cache) PutBlocks(token uint64, start int, blocks [][]byte) error {
	up, ok := c.store.(DocUpdater)
	if !ok {
		return ErrUpdateUnsupported
	}
	return up.PutBlocks(token, start, blocks)
}

// CommitUpdate implements DocUpdater: once the backing store has
// atomically switched versions, the document's resident blocks are
// retired by generation exactly as a whole-document re-put would —
// in-flight fills of the superseded version abort on the bumped
// generation, so readers never see mixed-version blocks linger.
//
// The token→document mapping is deleted only after the backing commit
// succeeds: a transient failure (a remote store's network blip) whose
// retry then commits must still find the mapping, or the cache would
// keep serving the pre-update blocks forever.
func (c *Cache) CommitUpdate(token uint64) error {
	up, ok := c.store.(DocUpdater)
	if !ok {
		return ErrUpdateUnsupported
	}
	docID, _ := c.updDocs.Load(token)
	if err := up.CommitUpdate(token); err != nil {
		return err
	}
	c.updDocs.Delete(token)
	if id, ok := docID.(string); ok && id != "" {
		c.invalidate(id)
	}
	return nil
}

// AbortUpdate implements DocUpdater (pass-through).
func (c *Cache) AbortUpdate(token uint64) error {
	up, ok := c.store.(DocUpdater)
	if !ok {
		return ErrUpdateUnsupported
	}
	c.updDocs.Delete(token)
	return up.AbortUpdate(token)
}

// PutRuleSet implements Store (pass-through).
func (c *Cache) PutRuleSet(docID, subject string, version uint32, sealed []byte) error {
	return c.store.PutRuleSet(docID, subject, version, sealed)
}

// RuleSet implements Store (pass-through).
func (c *Cache) RuleSet(docID, subject string) ([]byte, error) {
	return c.store.RuleSet(docID, subject)
}

// ListDocuments implements Store (pass-through).
func (c *Cache) ListDocuments() ([]string, error) {
	return c.store.ListDocuments()
}

var (
	_ Store             = (*Cache)(nil)
	_ BlockRangeReader  = (*Cache)(nil)
	_ DocUpdater        = (*Cache)(nil)
	_ PinnedBlockReader = (*Cache)(nil)
	_ wireBlockReader   = (*Cache)(nil)
)
