//go:build unix

package dsp

import (
	"errors"
	"syscall"
)

// flockExclusive takes a non-blocking exclusive flock(2) on the open
// LOCK file. Per-open-file-description semantics make it exclude a
// second FileStore in the same process as well as other processes, and
// the kernel releases it when the holder dies.
func flockExclusive(f interface{ Fd() uintptr }) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}

// dirSyncUnsupported recognizes the refusals filesystems report for a
// directory fsync; syncDir treats those as "the platform cannot do
// better", not as durability failures.
func dirSyncUnsupported(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)
}
