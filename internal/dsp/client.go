package dsp

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/docenc"
)

// ServerError is an error the server reported about a request (unknown
// document, stale rule set, …). The connection that carried it is still
// healthy — transport failures are returned as ordinary errors instead.
type ServerError string

func (e ServerError) Error() string { return "dsp: server: " + string(e) }

// Client is a Store backed by a remote dspd server. Requests on one
// client are serialized (responses are correlated by order); use a Pool
// for concurrent traffic over several connections.
type Client struct {
	mu   sync.Mutex
	conn net.Conn

	// bytesRead counts response payload bytes: the "transferred from the
	// DSP" measure of experiment E3 when running against a real server.
	bytesRead atomic.Int64
	// bytesWritten counts request payload bytes: the upload cost of a
	// publish — what experiment E11 compares between full and delta
	// re-publication.
	bytesWritten atomic.Int64
}

// Dial connects to a dspd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dsp: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

// BytesRead reports the response payload bytes received so far.
func (c *Client) BytesRead() int64 { return c.bytesRead.Load() }

// BytesWritten reports the request payload bytes sent so far.
func (c *Client) BytesWritten() int64 { return c.bytesWritten.Load() }

// roundTrip sends a request and decodes the status byte.
func (c *Client) roundTrip(req []byte) ([]byte, error) {
	body, _, err := c.roundTripInto(req, nil)
	return body, err
}

// roundTripInto is roundTrip with a caller-supplied receive buffer: the
// response lands in buf when it fits (the pooled-frame read path). It
// returns the response body — aliasing the returned frame buffer — and
// the frame buffer itself so the caller can park it for reuse.
func (c *Client) roundTripInto(req, buf []byte) (body, frameBuf []byte, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, req); err != nil {
		return nil, buf, err
	}
	c.bytesWritten.Add(int64(len(req)))
	resp, err := readFrameInto(c.conn, buf[:0:cap(buf)])
	if err != nil {
		return nil, buf, err
	}
	if len(resp) == 0 {
		return nil, resp, fmt.Errorf("dsp: empty response")
	}
	c.bytesRead.Add(int64(len(resp)))
	switch resp[0] {
	case statusOK:
		return resp[1:], resp, nil
	case statusErr:
		return nil, resp, ServerError(resp[1:])
	default:
		return nil, resp, fmt.Errorf("dsp: bad response status %d", resp[0])
	}
}

// PutDocument implements Store.
func (c *Client) PutDocument(container *docenc.Container) error {
	body, err := container.MarshalBinary()
	if err != nil {
		return err
	}
	_, err = c.roundTrip(append([]byte{opPutDocument}, body...))
	return err
}

// Header implements Store.
func (c *Client) Header(docID string) (docenc.Header, error) {
	resp, err := c.roundTrip(appendString([]byte{opHeader}, docID))
	if err != nil {
		return docenc.Header{}, err
	}
	h, _, err := docenc.UnmarshalHeader(resp)
	return h, err
}

// ReadBlock implements Store.
func (c *Client) ReadBlock(docID string, idx int) ([]byte, error) {
	req := appendString([]byte{opReadBlock}, docID)
	req = binary.AppendUvarint(req, uint64(idx))
	return c.roundTrip(req)
}

// ReadBlocks implements BlockRangeReader: one round trip for a whole
// skip-index run instead of count request/response exchanges.
func (c *Client) ReadBlocks(docID string, start, count int) ([][]byte, error) {
	if start < 0 || count < 0 {
		return nil, errNegativeRange(start, count)
	}
	resp, err := c.roundTrip(readBlocksReq(docID, start, count))
	if err != nil {
		return nil, err
	}
	// The frame buffer was allocated for this response alone, so the
	// blocks can alias it instead of being copied out one by one. (The
	// pooled variant, ReadBlocksFrame, reuses buffers instead.)
	return parseBlockRun(resp, count, nil)
}

// readBlocksReq builds the opReadBlocks request frame.
func readBlocksReq(docID string, start, count int) []byte {
	req := appendString([]byte{opReadBlocks}, docID)
	req = binary.AppendUvarint(req, uint64(start))
	return binary.AppendUvarint(req, uint64(count))
}

// parseBlockRun decodes an opReadBlocks response body into dst. The
// returned slices alias resp.
func parseBlockRun(resp []byte, count int, dst [][]byte) ([][]byte, error) {
	r := &wireReader{data: resp}
	n := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if n != uint64(count) {
		return nil, fmt.Errorf("dsp: batched read returned %d blocks, want %d", n, count)
	}
	if cap(dst) < int(n) {
		dst = make([][]byte, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		b := r.bytes()
		if r.err != nil {
			return nil, r.err
		}
		dst = append(dst, b)
	}
	return dst, nil
}

func errNegativeRange(start, count int) error {
	return fmt.Errorf("dsp: negative block range [%d,+%d)", start, count)
}

// BeginUpdate implements DocUpdater against a remote server.
func (c *Client) BeginUpdate(h docenc.Header, baseVersion uint32) (uint64, error) {
	hb, err := h.MarshalBinary()
	if err != nil {
		return 0, err
	}
	req := binary.AppendUvarint([]byte{opBeginUpdate}, uint64(baseVersion))
	req = appendBytes(req, hb)
	resp, err := c.roundTrip(req)
	if err != nil {
		return 0, err
	}
	r := &wireReader{data: resp}
	token := r.uvarint()
	if r.err != nil {
		return 0, r.err
	}
	return token, nil
}

// PutBlocks implements DocUpdater: one staged run per round trip.
func (c *Client) PutBlocks(token uint64, start int, blocks [][]byte) error {
	if start < 0 {
		return fmt.Errorf("dsp: negative block offset %d", start)
	}
	req := binary.AppendUvarint([]byte{opPutBlocks}, token)
	req = binary.AppendUvarint(req, uint64(start))
	req = binary.AppendUvarint(req, uint64(len(blocks)))
	for _, b := range blocks {
		req = appendBytes(req, b)
	}
	_, err := c.roundTrip(req)
	return err
}

// CommitUpdate implements DocUpdater.
func (c *Client) CommitUpdate(token uint64) error {
	_, err := c.roundTrip(binary.AppendUvarint([]byte{opCommitUpdate}, token))
	return err
}

// AbortUpdate implements DocUpdater.
func (c *Client) AbortUpdate(token uint64) error {
	_, err := c.roundTrip(binary.AppendUvarint([]byte{opAbortUpdate}, token))
	return err
}

// PutRuleSet implements Store.
func (c *Client) PutRuleSet(docID, subject string, version uint32, sealed []byte) error {
	req := appendString([]byte{opPutRuleSet}, docID)
	req = appendString(req, subject)
	req = binary.AppendUvarint(req, uint64(version))
	req = appendBytes(req, sealed)
	_, err := c.roundTrip(req)
	return err
}

// RuleSet implements Store.
func (c *Client) RuleSet(docID, subject string) ([]byte, error) {
	req := appendString([]byte{opRuleSet}, docID)
	req = appendString(req, subject)
	return c.roundTrip(req)
}

// ListDocuments implements Store.
func (c *Client) ListDocuments() ([]string, error) {
	resp, err := c.roundTrip([]byte{opList})
	if err != nil {
		return nil, err
	}
	r := &wireReader{data: resp}
	n := r.uvarint()
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.string())
	}
	if r.err != nil {
		return nil, r.err
	}
	return out, nil
}

var (
	_ Store            = (*Client)(nil)
	_ BlockRangeReader = (*Client)(nil)
	_ DocUpdater       = (*Client)(nil)
)
