package dsp

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"

	"repro/internal/docenc"
)

// Client is a Store backed by a remote dspd server. Requests on one
// client are serialized (the protocol is strictly request/response);
// open several clients for concurrency.
type Client struct {
	mu   sync.Mutex
	conn net.Conn

	// BytesRead counts response payload bytes: the "transferred from the
	// DSP" measure of experiment E3 when running against a real server.
	BytesRead int64
}

// Dial connects to a dspd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dsp: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends a request and decodes the status byte.
func (c *Client) roundTrip(req []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, req); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if len(resp) == 0 {
		return nil, fmt.Errorf("dsp: empty response")
	}
	c.BytesRead += int64(len(resp))
	switch resp[0] {
	case statusOK:
		return resp[1:], nil
	case statusErr:
		return nil, fmt.Errorf("dsp: server: %s", resp[1:])
	default:
		return nil, fmt.Errorf("dsp: bad response status %d", resp[0])
	}
}

// PutDocument implements Store.
func (c *Client) PutDocument(container *docenc.Container) error {
	body, err := container.MarshalBinary()
	if err != nil {
		return err
	}
	_, err = c.roundTrip(append([]byte{opPutDocument}, body...))
	return err
}

// Header implements Store.
func (c *Client) Header(docID string) (docenc.Header, error) {
	resp, err := c.roundTrip(appendString([]byte{opHeader}, docID))
	if err != nil {
		return docenc.Header{}, err
	}
	h, _, err := docenc.UnmarshalHeader(resp)
	return h, err
}

// ReadBlock implements Store.
func (c *Client) ReadBlock(docID string, idx int) ([]byte, error) {
	req := appendString([]byte{opReadBlock}, docID)
	req = binary.AppendUvarint(req, uint64(idx))
	return c.roundTrip(req)
}

// PutRuleSet implements Store.
func (c *Client) PutRuleSet(docID, subject string, version uint32, sealed []byte) error {
	req := appendString([]byte{opPutRuleSet}, docID)
	req = appendString(req, subject)
	req = binary.AppendUvarint(req, uint64(version))
	req = appendBytes(req, sealed)
	_, err := c.roundTrip(req)
	return err
}

// RuleSet implements Store.
func (c *Client) RuleSet(docID, subject string) ([]byte, error) {
	req := appendString([]byte{opRuleSet}, docID)
	req = appendString(req, subject)
	return c.roundTrip(req)
}

// ListDocuments implements Store.
func (c *Client) ListDocuments() ([]string, error) {
	resp, err := c.roundTrip([]byte{opList})
	if err != nil {
		return nil, err
	}
	r := &wireReader{data: resp}
	n := r.uvarint()
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.string())
	}
	if r.err != nil {
		return nil, r.err
	}
	return out, nil
}

var _ Store = (*Client)(nil)
