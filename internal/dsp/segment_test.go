package dsp

// Tests for the segmented durable layout: the directory lock, the PR 4
// single-file migration, background (off-request-path) checkpointing,
// and the concurrent republish + background checkpoint + mid-run
// recovery hammer the CI -race step runs.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/docenc"
	"repro/internal/secure"
)

// TestFileStoreStaleLockReclaimed: a LOCK file left by a dead process
// holds no flock (the kernel released it with the process), so a fresh
// open reclaims it instead of refusing service forever.
func TestFileStoreStaleLockReclaimed(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, lockFileName), []byte("pid 999999999"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatalf("stale lock not reclaimed: %v", err)
	}
	if err := s.PutDocument(testContainer(t, "doc")); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()
}

// TestFileStoreMigratesLegacyLayoutOnce: a PR 4 directory (one wal.log
// + one checkpoint) opens as a segmented store with all its state, the
// legacy files are retired, and the next open sees a plain segmented
// store — the migration happens exactly once. The persisted segment
// count also wins over a mismatched Shards option on reopen.
func TestFileStoreMigratesLegacyLayoutOnce(t *testing.T) {
	dir := t.TempDir()
	cA, cB := testContainer(t, "legacy-a"), testContainer(t, "legacy-b")

	// Legacy checkpoint: document A and version 1 of a rule set. PR 4
	// wrote raw container images (v1 magic, no wire prefixes).
	img := append([]byte(nil), ckptMagicV1...)
	aImg, err := cA.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	img = appendUvarint(img, 1)
	img = appendBytes(img, aImg)
	img = appendUvarint(img, 1)
	img = appendString(img, "legacy-a\x00alice")
	img = appendUvarint(img, 1)
	img = appendBytes(img, []byte("r1"))
	if err := os.WriteFile(filepath.Join(dir, ckptFileName), img, 0o644); err != nil {
		t.Fatal(err)
	}

	// Legacy log: document B and version 2 of the rule set.
	bImg, err := cB.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var wal []byte
	wal = append(wal, frame(append([]byte{recPutDocument}, bImg...))...)
	rule := []byte{recPutRuleSet}
	rule = appendString(rule, "legacy-a")
	rule = appendString(rule, "alice")
	rule = appendUvarint(rule, 2)
	rule = appendBytes(rule, []byte("r2"))
	wal = append(wal, frame(rule)...)
	if err := os.WriteFile(filepath.Join(dir, walFileName), wal, 0o644); err != nil {
		t.Fatal(err)
	}

	s := openFileStore(t, dir, FileStoreOptions{Shards: 4})
	st := s.Stats()
	if !st.Migrated || st.SegmentCount != 4 || st.ReplayedRecords != 2 {
		t.Fatalf("migration stats: %+v", st)
	}
	for _, id := range []string{"legacy-a", "legacy-b"} {
		if _, err := s.Header(id); err != nil {
			t.Fatalf("%s lost in migration: %v", id, err)
		}
	}
	if sealed, err := s.RuleSet("legacy-a", "alice"); err != nil || string(sealed) != "r2" {
		t.Fatalf("migrated rules = %q, %v", sealed, err)
	}
	for _, name := range []string{walFileName, ckptFileName} {
		if fileExists(filepath.Join(dir, name)) {
			t.Fatalf("legacy %s survived the migration", name)
		}
	}
	if n, err := readSegmentMeta(dir); err != nil || n != 4 {
		t.Fatalf("meta after migration: %d, %v", n, err)
	}
	// Post-migration writes land in segment logs and replay from them.
	if err := s.PutDocument(testContainer(t, "fresh")); err != nil {
		t.Fatal(err)
	}
	crash(s)

	// Second open: no migration, and the persisted 4 segments win over
	// the requested default (16).
	r := openFileStore(t, dir, FileStoreOptions{})
	st = r.Stats()
	if st.Migrated {
		t.Fatalf("migration ran twice: %+v", st)
	}
	if st.SegmentCount != 4 {
		t.Fatalf("persisted segment count lost: %+v", st)
	}
	for _, id := range []string{"legacy-a", "legacy-b", "fresh"} {
		if _, err := r.Header(id); err != nil {
			t.Fatalf("%s lost after migration reopen: %v", id, err)
		}
	}
	if sealed, err := r.RuleSet("legacy-a", "alice"); err != nil || string(sealed) != "r2" {
		t.Fatalf("rules after reopen = %q, %v", sealed, err)
	}
	_ = r.Close()
}

// docsInDistinctSegments probes for two document ids living in
// different segments of an n-segment store.
func docsInDistinctSegments(n int) (a, b string) {
	a = "seg-probe-0"
	for i := 1; ; i++ {
		b = fmt.Sprintf("seg-probe-%d", i)
		if segForDoc(b, n) != segForDoc(a, n) {
			return a, b
		}
	}
}

// TestFileStoreCheckpointOffRequestPath is the latency-regression
// guard for the old inline trigger: the mutation that crosses the
// checkpoint budget must return before the checkpoint even starts (it
// runs on the background goroutine), and a checkpoint frozen mid-flight
// stalls only its own segment — writers to other segments proceed.
func TestFileStoreCheckpointOffRequestPath(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	s := openFileStore(t, dir, FileStoreOptions{
		Shards: shards,
		NoSync: true,
		// Budget of one byte per segment: every durable mutation trips
		// the trigger.
		CheckpointBytes: shards,
	})
	defer func() { _ = s.Close() }()

	entered := make(chan int, 64)
	release := make(chan struct{})
	// Set before the first mutation, from this goroutine (see the hook's
	// contract): the trigger enqueue is the happens-before edge.
	s.testCkptGate = func(seg int) {
		entered <- seg
		<-release
	}

	docA, docB := docsInDistinctSegments(shards)
	// This put crosses the budget. It must return with the checkpoint
	// not yet taken — the old store ran the whole compaction inline
	// right here, on this call.
	if err := s.PutDocument(testContainer(t, docA)); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Checkpoints; got != 0 {
		t.Fatalf("checkpoint ran on the request path: %d checkpoints before the worker was released", got)
	}
	// The worker is now frozen inside docA's segment checkpoint,
	// holding that segment's locks.
	frozen := <-entered
	if frozen != segForDoc(docA, shards) {
		t.Fatalf("checkpoint froze segment %d, want %d", frozen, segForDoc(docA, shards))
	}
	// Writers to every other segment must be unaffected by the
	// in-flight compaction.
	if err := s.PutDocument(testContainer(t, docB)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutRuleSet(docB, "alice", 1, []byte("sealed")); err != nil {
		t.Fatal(err)
	}
	close(release)

	// Released, the background checkpoints complete on their own.
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background checkpoint never completed")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFileStoreSegmentedHammer is the CI -race step for the segmented
// tier: concurrent per-shard delta re-publishers racing background
// checkpoints (a tiny per-segment budget keeps the compactor busy),
// interrupted by a mid-run crash + parallel recovery, hammered again,
// then recovered once more sequentially — every document must land on
// its last committed version every time.
func TestFileStoreSegmentedHammer(t *testing.T) {
	const (
		writers    = 8
		phaseLen   = 20
		blockPlain = 64
		numBlocks  = 4
		shards     = 8
	)
	dir := t.TempDir()
	opts := FileStoreOptions{
		Shards: shards,
		NoSync: true, // hammer the logic, not the disk
		// A few hundred bytes per segment: background checkpoints run
		// constantly under the writers.
		CheckpointBytes: 4 << 10,
	}

	makeContainer := func(docID string, version uint32) *docenc.Container {
		h := docenc.Header{DocID: docID, Version: version, BlockPlain: blockPlain,
			PayloadLen: blockPlain * numBlocks}
		c := &docenc.Container{Header: h}
		for i := 0; i < numBlocks; i++ {
			c.Blocks = append(c.Blocks, bytes.Repeat([]byte{byte(version)}, blockPlain+secure.MACLen))
		}
		return c
	}

	var committed [writers]atomic.Uint32
	hammer := func(s *FileStore, from, to uint32) {
		t.Helper()
		var wg sync.WaitGroup
		errCh := make(chan error, 2*writers)
		stop := make(chan struct{})
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				docID := fmt.Sprintf("doc%d", w)
				for v := from; v <= to; v++ {
					c := makeContainer(docID, v)
					token, err := s.BeginUpdate(c.Header, v-1)
					if err != nil {
						errCh <- err
						return
					}
					if err := s.PutBlocks(token, 0, c.Blocks[:1]); err != nil {
						errCh <- err
						return
					}
					if err := s.CommitUpdate(token); err != nil {
						errCh <- err
						return
					}
					committed[w].Store(v)
				}
			}(w)
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				docID := fmt.Sprintf("doc%d", w)
				for {
					select {
					case <-stop:
						return
					default:
					}
					lo := committed[w].Load()
					blocks, err := s.ReadBlocks(docID, 0, numBlocks)
					if err != nil {
						errCh <- err
						return
					}
					// Block 0 is rewritten each version and must never
					// lag a version the reader knows was committed.
					if uint32(blocks[0][0]) < lo {
						errCh <- fmt.Errorf("%s block 0 from version %d after %d committed",
							docID, blocks[0][0], lo)
						return
					}
				}
			}(w)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		for w := 0; w < writers; w++ {
			for committed[w].Load() < to {
				select {
				case err := <-errCh:
					close(stop)
					t.Fatal(err)
				default:
				}
			}
		}
		close(stop)
		<-done
		select {
		case err := <-errCh:
			t.Fatal(err)
		default:
		}
	}

	verify := func(s *FileStore, want uint32) {
		t.Helper()
		for w := 0; w < writers; w++ {
			docID := fmt.Sprintf("doc%d", w)
			h, err := s.Header(docID)
			if err != nil {
				t.Fatal(err)
			}
			if h.Version != want {
				t.Fatalf("%s recovered at version %d, want %d", docID, h.Version, want)
			}
			blk, err := s.ReadBlock(docID, 0)
			if err != nil || blk[0] != byte(want) {
				t.Fatalf("%s block 0 recovered from version %d, %v", docID, blk[0], err)
			}
		}
	}

	s := openFileStore(t, dir, opts)
	for w := 0; w < writers; w++ {
		if err := s.PutDocument(makeContainer(fmt.Sprintf("doc%d", w), 1)); err != nil {
			t.Fatal(err)
		}
		committed[w].Store(1)
	}
	hammer(s, 2, phaseLen)
	// The compactor is asynchronous; give a queued checkpoint a moment
	// to land before declaring the trigger dead.
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background checkpoints never ran under the hammer")
		}
		time.Sleep(time.Millisecond)
	}
	crash(s)

	// Mid-run recovery (parallel), then hammer the recovered store.
	r := openFileStore(t, dir, opts)
	verify(r, phaseLen)
	hammer(r, phaseLen+1, 2*phaseLen)
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	crash(r)

	// Final recovery, forced sequential: replay order must not matter.
	r2 := openFileStore(t, dir, FileStoreOptions{NoSync: true, RecoveryParallelism: 1})
	verify(r2, 2*phaseLen)
	if st := r2.Stats(); st.SegmentCount != shards {
		t.Fatalf("segment count drifted: %+v", st)
	}
	_ = r2.Close()
}
