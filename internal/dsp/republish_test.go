package dsp

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/docenc"
	"repro/internal/secure"
	"repro/internal/workload"
	"repro/internal/xmlstream"
)

// republishRig serves a cache-fronted MemStore over loopback TCP.
func republishRig(t *testing.T) (*Client, func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewCache(NewMemStore(), 1<<20))
	go func() { _ = srv.Serve(l) }()
	cl, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return cl, func() { _ = cl.Close(); _ = srv.Close() }
}

func mutateTree(root *xmlstream.Node, every int) *xmlstream.Node {
	cp := &xmlstream.Node{Name: root.Name, Text: root.Text}
	for _, c := range root.Children {
		cp.Children = append(cp.Children, mutateTree(c, 0))
	}
	if every > 0 {
		n := 0
		var walk func(*xmlstream.Node)
		walk = func(x *xmlstream.Node) {
			for _, c := range x.Children {
				if c.IsText() {
					if n++; n%every == 0 && len(c.Text) > 0 {
						b := []byte(c.Text)
						for i := range b {
							b[i] = 'a' + (b[i]+7)%26
						}
						c.Text = string(b)
					}
					continue
				}
				walk(c)
			}
		}
		walk(cp)
	}
	return cp
}

// TestRepublishDeltaOverWire: a delta travels the full wire handshake
// and the store afterwards serves a container identical to a local
// application of the same delta.
func TestRepublishDeltaOverWire(t *testing.T) {
	cl, stop := republishRig(t)
	defer stop()

	key := secure.KeyFromSeed("wire-delta")
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 31, Patients: 8, VisitsPerPatient: 3})
	opts := docenc.EncodeOptions{DocID: "wd", Key: key, BlockPlain: 128, MinSkipBytes: 32}
	old, _, err := docenc.Encode(doc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.PutDocument(old); err != nil {
		t.Fatal(err)
	}

	mutated := mutateTree(doc, 15)
	delta, _, err := docenc.DiffEncode(mutated, opts, old)
	if err != nil {
		t.Fatal(err)
	}
	if delta.ChangedBlocks == 0 {
		t.Fatal("mutation produced no changed blocks")
	}
	if err := ApplyDelta(cl, delta); err != nil {
		t.Fatal(err)
	}

	h, err := cl.Header("wd")
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != old.Header.Version+1 {
		t.Fatalf("store is at version %d, want %d", h.Version, old.Header.Version+1)
	}
	blocks, err := cl.ReadBlocks("wd", 0, h.NumBlocks())
	if err != nil {
		t.Fatal(err)
	}
	want, err := delta.Apply(old)
	if err != nil {
		t.Fatal(err)
	}
	for i := range blocks {
		if !bytes.Equal(blocks[i], want.Blocks[i]) {
			t.Fatalf("block %d differs from the locally applied delta", i)
		}
	}
	got, err := docenc.DecodeDocument(&docenc.Container{Header: h, Blocks: blocks}, key)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := xmlstream.Serialize(got.Events(), xmlstream.WriterOptions{})
	b, _ := xmlstream.Serialize(mutated.Events(), xmlstream.WriterOptions{})
	if a != b {
		t.Fatal("republished document decodes to the wrong tree")
	}
}

// TestRepublishVersionConflict: a concurrent publication between Begin
// and Commit fails the commit; nothing is partially applied.
func TestRepublishVersionConflict(t *testing.T) {
	store := NewMemStore()
	key := secure.KeyFromSeed("conflict")
	doc := workload.Agenda(workload.AgendaConfig{Seed: 4, Members: 4, EventsPerMember: 3})
	opts := docenc.EncodeOptions{DocID: "c", Key: key}
	old, _, err := docenc.Encode(doc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.PutDocument(old); err != nil {
		t.Fatal(err)
	}

	delta, _, err := docenc.DiffEncode(mutateTree(doc, 5), opts, old)
	if err != nil {
		t.Fatal(err)
	}
	token, err := store.BeginUpdate(delta.Header, delta.BaseVersion)
	if err != nil {
		t.Fatal(err)
	}
	// A full publication lands in between, bumping the version.
	raced := opts
	raced.Version = old.Header.Version + 5
	newer, _, err := docenc.Encode(doc, raced)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.PutDocument(newer); err != nil {
		t.Fatal(err)
	}
	for _, r := range delta.Runs {
		if err := store.PutBlocks(token, r.Start, r.Blocks); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.CommitUpdate(token); err == nil {
		t.Fatal("commit over a concurrent publication succeeded")
	}
	h, err := store.Header("c")
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != raced.Version {
		t.Fatalf("store at version %d after failed commit, want %d", h.Version, raced.Version)
	}
	// A begin against the wrong base is refused outright.
	if _, err := store.BeginUpdate(delta.Header, delta.BaseVersion); err == nil {
		t.Fatal("begin against a stale base accepted")
	}
}

// TestRepublishMissingBlockRejected: creating a document through the
// handshake demands every block; a gap fails the commit atomically.
func TestRepublishMissingBlockRejected(t *testing.T) {
	store := NewMemStore()
	key := secure.KeyFromSeed("gap")
	doc := workload.Agenda(workload.AgendaConfig{Seed: 6, Members: 4, EventsPerMember: 3})
	c, _, err := docenc.Encode(doc, docenc.EncodeOptions{DocID: "g", Key: key})
	if err != nil {
		t.Fatal(err)
	}
	token, err := store.BeginUpdate(c.Header, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Stage all but the last block.
	if err := store.PutBlocks(token, 0, c.Blocks[:len(c.Blocks)-1]); err != nil {
		t.Fatal(err)
	}
	if err := store.CommitUpdate(token); err == nil {
		t.Fatal("commit with a missing block succeeded")
	}
	if _, err := store.Header("g"); err == nil {
		t.Fatal("failed creation left a document behind")
	}
}

// TestRepublishAbandonedUpdatesEvicted: tokens leaked by crashed
// clients must never brick the update path — at capacity the oldest
// staged update is evicted and its token dies, while fresh handshakes
// keep working.
func TestRepublishAbandonedUpdatesEvicted(t *testing.T) {
	store := NewMemStore()
	h := docenc.Header{DocID: "evict", Version: 1, BlockPlain: 128, PayloadLen: 128}
	first, err := store.BeginUpdate(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 80; i++ { // well past maxPendingUpdates, never committed
		last, err = store.BeginUpdate(h, 0)
		if err != nil {
			t.Fatalf("begin %d refused after leaks: %v", i, err)
		}
	}
	if err := store.AbortUpdate(first); err == nil {
		t.Fatal("the oldest leaked token survived 80 evictions")
	}
	blk := bytes.Repeat([]byte{1}, 128+secure.MACLen)
	if err := store.PutBlocks(last, 0, [][]byte{blk}); err != nil {
		t.Fatal(err)
	}
	if err := store.CommitUpdate(last); err != nil {
		t.Fatalf("fresh handshake broken after eviction churn: %v", err)
	}
}

// nonUpdater hides MemStore's update methods.
type nonUpdater struct{ Store }

// TestRepublishUnsupportedStore: ApplyDelta reports the sentinel for
// stores without the handshake instead of failing half-way.
func TestRepublishUnsupportedStore(t *testing.T) {
	err := ApplyDelta(nonUpdater{NewMemStore()}, &docenc.DeltaUpdate{})
	if err != ErrUpdateUnsupported {
		t.Fatalf("got %v, want ErrUpdateUnsupported", err)
	}
}

// TestRepublishCacheGenerationHammer: readers racing a stream of
// re-publications (alternating full puts and delta commits) must never
// be served a block from a version older than one they know was already
// committed — the cache's generation guard is what stops a stale
// in-flight fill from resurrecting purged ciphertext. Run under -race.
func TestRepublishCacheGenerationHammer(t *testing.T) {
	const (
		blockPlain = 32
		numBlocks  = 8
		versions   = 120
		readers    = 4
	)
	cache := NewCache(NewMemStore(), 1<<20)

	// makeContainer builds a fake container whose every block starts
	// with its version (the store never inspects ciphertext, so test
	// payloads work; lengths must match the geometry).
	makeContainer := func(version uint32) *docenc.Container {
		h := docenc.Header{DocID: "hammer", Version: version, BlockPlain: blockPlain,
			PayloadLen: blockPlain * numBlocks}
		c := &docenc.Container{Header: h}
		for i := 0; i < numBlocks; i++ {
			b := bytes.Repeat([]byte{byte(version)}, blockPlain+secure.MACLen)
			c.Blocks = append(c.Blocks, b)
		}
		return c
	}

	var committed atomic.Uint32
	if err := cache.PutDocument(makeContainer(1)); err != nil {
		t.Fatal(err)
	}
	committed.Store(1)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for v := uint32(2); v <= versions; v++ {
			c := makeContainer(v)
			if v%2 == 0 {
				if err := cache.PutDocument(c); err != nil {
					errCh <- err
					return
				}
			} else {
				token, err := cache.BeginUpdate(c.Header, v-1)
				if err != nil {
					errCh <- err
					return
				}
				// Stage every block: carried-over blocks would keep the
				// previous version's bytes and blur the monotonicity
				// check below. What is exercised here is the handshake
				// commit path plus the generation-guarded invalidation,
				// not the diff.
				if err := cache.PutBlocks(token, 0, c.Blocks); err != nil {
					errCh <- err
					return
				}
				if err := cache.CommitUpdate(token); err != nil {
					errCh <- err
					return
				}
			}
			committed.Store(v)
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Read first, check stop after: the writer can finish before
			// a reader is ever scheduled, and the test's final assertion
			// needs every reader to have exercised at least one lookup.
			for {
				lo := committed.Load()
				blocks, err := cache.ReadBlocks("hammer", 0, numBlocks)
				if err != nil {
					errCh <- err
					return
				}
				for i, b := range blocks {
					if uint32(b[0]) < lo {
						errCh <- fmt.Errorf("block %d from version %d served after version %d committed",
							i, b[0], lo)
						return
					}
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	st := cache.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("hammer exercised no cache lookups")
	}
}
