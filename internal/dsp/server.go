package dsp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/docenc"
)

// Server exposes a Store over TCP.
type Server struct {
	store Store
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
}

// NewServer wraps a store.
func NewServer(store Store) *Server {
	return &Server{store: store, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections until the listener closes. It retains the
// listener so Close can stop it.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		_ = c.Close()
	}
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		req, err := readFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("dsp: connection %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		resp := s.dispatch(req)
		if err := writeFrame(conn, resp); err != nil {
			s.logf("dsp: connection %s: write: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// dispatch executes one request and builds the response.
func (s *Server) dispatch(req []byte) []byte {
	if len(req) == 0 {
		return errResponse(fmt.Errorf("dsp: empty request"))
	}
	op := req[0]
	r := &wireReader{data: req, pos: 1}
	switch op {
	case opPutDocument:
		c, err := docenc.UnmarshalContainer(r.rest())
		if err != nil {
			return errResponse(err)
		}
		if err := s.store.PutDocument(c); err != nil {
			return errResponse(err)
		}
		return okResponse(nil)
	case opHeader:
		docID := r.string()
		if r.err != nil {
			return errResponse(r.err)
		}
		h, err := s.store.Header(docID)
		if err != nil {
			return errResponse(err)
		}
		hb, err := h.MarshalBinary()
		if err != nil {
			return errResponse(err)
		}
		return okResponse(hb)
	case opReadBlock:
		docID := r.string()
		idx := r.uvarint()
		if r.err != nil {
			return errResponse(r.err)
		}
		b, err := s.store.ReadBlock(docID, int(idx))
		if err != nil {
			return errResponse(err)
		}
		return okResponse(b)
	case opPutRuleSet:
		docID := r.string()
		subject := r.string()
		version := r.uvarint()
		sealed := r.bytes()
		if r.err != nil {
			return errResponse(r.err)
		}
		if err := s.store.PutRuleSet(docID, subject, uint32(version), sealed); err != nil {
			return errResponse(err)
		}
		return okResponse(nil)
	case opRuleSet:
		docID := r.string()
		subject := r.string()
		if r.err != nil {
			return errResponse(r.err)
		}
		sealed, err := s.store.RuleSet(docID, subject)
		if err != nil {
			return errResponse(err)
		}
		return okResponse(sealed)
	case opList:
		ids, err := s.store.ListDocuments()
		if err != nil {
			return errResponse(err)
		}
		body := binary.AppendUvarint(nil, uint64(len(ids)))
		for _, id := range ids {
			body = appendString(body, id)
		}
		return okResponse(body)
	default:
		return errResponse(fmt.Errorf("dsp: unknown op %d", op))
	}
}

func okResponse(body []byte) []byte {
	return append([]byte{statusOK}, body...)
}

func errResponse(err error) []byte {
	return append([]byte{statusErr}, err.Error()...)
}
