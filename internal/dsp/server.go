package dsp

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"runtime"
	"sync"

	"repro/internal/docenc"
)

// ServerConfig tunes the concurrent serving machinery.
type ServerConfig struct {
	// Workers bounds the number of requests executing at once across all
	// connections (<= 0: 4 × GOMAXPROCS). One worker degenerates to the
	// strictly sequential server.
	Workers int
	// PipelineDepth bounds how many requests one connection may have in
	// flight before the reader stops pulling frames (<= 0: 32). Depth 1
	// degenerates to strict request/response.
	PipelineDepth int
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Workers <= 0 {
		c.Workers = 4 * runtime.GOMAXPROCS(0)
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 32
	}
	return c
}

// Server exposes a Store over TCP. Each connection pipelines: a reader
// pulls frames as fast as the client sends them, a bounded worker pool
// executes them, and a per-connection writer puts responses back on the
// wire in request order (the protocol has no request ids, so ordering is
// the correlation).
type Server struct {
	store Store
	cfg   ServerConfig
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
	// Stats, when set, serves opStoreStats requests: the daemon wires it
	// to the cache and durable tiers it assembled around the store. Set
	// it before Serve; a server without the hook answers with a minimal
	// snapshot (document count only).
	Stats func() ServerStats

	workers chan struct{} // worker-pool slots

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	handlers sync.WaitGroup // in-flight connection handlers
}

// NewServer wraps a store with the default concurrency configuration.
func NewServer(store Store) *Server {
	return NewServerConfig(store, ServerConfig{})
}

// NewServerConfig wraps a store with an explicit configuration.
func NewServerConfig(store Store, cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		store:   store,
		cfg:     cfg,
		workers: make(chan struct{}, cfg.Workers),
		conns:   make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections until the listener closes. It retains the
// listener so Close can stop it.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = l.Close()
		return fmt.Errorf("dsp: server is closed")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.handlers.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Close stops the listener, closes every connection, and waits for all
// in-flight handlers (and the requests they dispatched) to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.handlers.Wait()
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.handlers.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// handle owns one connection: it reads frames, fans them out to the
// worker pool, and hands each request's response slot to the writer in
// arrival order. It returns (and deregisters the connection exactly once)
// only after every dispatched request has been answered or abandoned.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
		s.handlers.Done()
	}()

	// pending carries, in request order, the channel each in-flight
	// request will deliver its response on. Its capacity is the pipeline
	// depth: a client that floods frames blocks the reader, not the pool.
	pending := make(chan chan *response, s.cfg.PipelineDepth)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		cw := newConnWriter(conn)
		broken := false
		for ch := range pending {
			resp := <-ch
			if broken {
				resp.release()
				continue // drain so dispatchers are never abandoned
			}
			err := resp.writeToConn(cw)
			resp.release()
			if err != nil {
				if !errors.Is(err, net.ErrClosed) {
					s.logf("dsp: connection %s: write: %v", remoteAddr(conn), err)
				}
				// Stop the reader too: without responses the client is wedged.
				_ = conn.Close()
				broken = true
			}
		}
	}()

	for {
		req, err := readFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("dsp: connection %s: %v", remoteAddr(conn), err)
			}
			break
		}
		ch := make(chan *response, 1)
		pending <- ch
		s.workers <- struct{}{}
		go func(req []byte, ch chan<- *response) {
			defer func() { <-s.workers }()
			ch <- s.dispatch(req)
		}(req, ch)
	}
	close(pending)
	<-writerDone
}

// remoteAddr formats a peer address defensively (tests may pass pipes).
func remoteAddr(conn net.Conn) string {
	if a := conn.RemoteAddr(); a != nil {
		return a.String()
	}
	return "?"
}

// dispatch executes one request and builds the response in a pooled
// buffer; the per-connection writer releases it after the vectored
// write. Block payloads are referenced from the store, never copied.
func (s *Server) dispatch(req []byte) *response {
	resp := newResponse()
	if len(req) == 0 {
		return resp.setErr(fmt.Errorf("dsp: empty request"))
	}
	op := req[0]
	r := &wireReader{data: req, pos: 1}
	switch op {
	case opPutDocument:
		c, err := docenc.UnmarshalContainer(r.rest())
		if err != nil {
			return resp.setErr(err)
		}
		if err := s.store.PutDocument(c); err != nil {
			return resp.setErr(err)
		}
		return resp
	case opHeader:
		docID := r.string()
		if r.err != nil {
			return resp.setErr(r.err)
		}
		h, err := s.store.Header(docID)
		if err != nil {
			return resp.setErr(err)
		}
		hb, err := h.MarshalBinary()
		if err != nil {
			return resp.setErr(err)
		}
		resp.appendBody(hb)
		return resp
	case opReadBlock:
		docID := r.string()
		idx := r.uvarint()
		if r.err != nil {
			return resp.setErr(r.err)
		}
		b, err := s.store.ReadBlock(docID, int(idx))
		if err != nil {
			return resp.setErr(err)
		}
		resp.appendRaw(b)
		return resp
	case opReadBlocks:
		docID := r.string()
		start := r.uvarint()
		count := r.uvarint()
		if r.err != nil {
			return resp.setErr(r.err)
		}
		if count > maxBatchBlocks {
			return resp.setErr(fmt.Errorf("dsp: batch of %d blocks exceeds limit %d", count, maxBatchBlocks))
		}
		// No document has anywhere near 2^31 blocks: reject hostile
		// offsets before they reach int arithmetic.
		if start > 1<<31 {
			return resp.setErr(fmt.Errorf("dsp: block offset %d out of range", start))
		}
		// Pin instead of copy: a store with an mmap tier serves
		// checkpoint-resident blocks as views into the mapping, held
		// alive by resp.pins until the writer finishes the vectored
		// write and releases the response. A store with a sendfile tier
		// additionally reports contiguous checkpoint-file runs; those
		// ride the response as wire-exact spans the connection writer
		// may ship kernel-side.
		blocks, err := readBlocksForWire(s.store, docID, int(start), int(count), &resp.pins, &resp.runs)
		if err != nil {
			return resp.setErr(err)
		}
		resp.appendUvarint(uint64(len(blocks)))
		for i, ri := 0, 0; i < len(blocks); {
			if ri < len(resp.runs) && resp.runs[ri].Start == i {
				run := resp.runs[ri]
				ri++
				resp.appendFileRun(run)
				i += run.Count
				continue
			}
			resp.appendBlock(blocks[i])
			i++
		}
		// A run of large blocks can outgrow the frame limit even within
		// the count cap; report it as an error the client can act on
		// (request fewer blocks) instead of letting the writer tear the
		// connection down on an unsendable frame.
		if resp.size() > maxFrame {
			return resp.setErr(errFrameLimit(resp.size()))
		}
		return resp
	case opBeginUpdate:
		up, ok := s.store.(DocUpdater)
		if !ok {
			return resp.setErr(ErrUpdateUnsupported)
		}
		base := r.uvarint()
		hb := r.bytes()
		if r.err != nil {
			return resp.setErr(r.err)
		}
		// Versions are 32-bit; a wider wire value must fail loudly, not
		// be truncated into a base the client never named.
		if base > math.MaxUint32 {
			return resp.setErr(fmt.Errorf("dsp: base version %d out of range", base))
		}
		h, _, err := docenc.UnmarshalHeader(hb)
		if err != nil {
			return resp.setErr(err)
		}
		token, err := up.BeginUpdate(h, uint32(base))
		if err != nil {
			return resp.setErr(err)
		}
		resp.appendUvarint(token)
		return resp
	case opPutBlocks:
		up, ok := s.store.(DocUpdater)
		if !ok {
			return resp.setErr(ErrUpdateUnsupported)
		}
		token := r.uvarint()
		start := r.uvarint()
		count := r.uvarint()
		if r.err != nil {
			return resp.setErr(r.err)
		}
		if count > maxBatchBlocks {
			return resp.setErr(fmt.Errorf("dsp: batch of %d blocks exceeds limit %d", count, maxBatchBlocks))
		}
		if start > 1<<31 {
			return resp.setErr(fmt.Errorf("dsp: block offset %d out of range", start))
		}
		blocks := make([][]byte, 0, count)
		for i := uint64(0); i < count; i++ {
			b := r.bytes()
			if r.err != nil {
				return resp.setErr(r.err)
			}
			blocks = append(blocks, b)
		}
		if err := up.PutBlocks(token, int(start), blocks); err != nil {
			return resp.setErr(err)
		}
		return resp
	case opCommitUpdate, opAbortUpdate:
		up, ok := s.store.(DocUpdater)
		if !ok {
			return resp.setErr(ErrUpdateUnsupported)
		}
		token := r.uvarint()
		if r.err != nil {
			return resp.setErr(r.err)
		}
		var err error
		if op == opCommitUpdate {
			err = up.CommitUpdate(token)
		} else {
			err = up.AbortUpdate(token)
		}
		if err != nil {
			return resp.setErr(err)
		}
		return resp
	case opPutRuleSet:
		docID := r.string()
		subject := r.string()
		version := r.uvarint()
		sealed := r.bytes()
		if r.err != nil {
			return resp.setErr(r.err)
		}
		if err := s.store.PutRuleSet(docID, subject, uint32(version), sealed); err != nil {
			return resp.setErr(err)
		}
		return resp
	case opRuleSet:
		docID := r.string()
		subject := r.string()
		if r.err != nil {
			return resp.setErr(r.err)
		}
		sealed, err := s.store.RuleSet(docID, subject)
		if err != nil {
			return resp.setErr(err)
		}
		resp.appendRaw(sealed)
		return resp
	case opStoreStats:
		var st ServerStats
		if s.Stats != nil {
			st = s.Stats()
		} else if ids, err := s.store.ListDocuments(); err == nil {
			st.Documents = len(ids)
		}
		js, err := json.Marshal(st)
		if err != nil {
			return resp.setErr(err)
		}
		resp.appendBody(js)
		return resp
	case opList:
		ids, err := s.store.ListDocuments()
		if err != nil {
			return resp.setErr(err)
		}
		resp.appendUvarint(uint64(len(ids)))
		for _, id := range ids {
			resp.appendString(id)
		}
		return resp
	default:
		return resp.setErr(fmt.Errorf("dsp: unknown op %d", op))
	}
}

// errFrameLimit is the oversized-response error, shared by dispatch's
// pre-check and writeTo's last-line defence.
func errFrameLimit(n int) error {
	return fmt.Errorf("dsp: batch response of %d bytes exceeds frame limit; request fewer blocks", n)
}
