package dsp

// The server's zero-copy response path. A response used to be one
// contiguous []byte, which cost a batched block read three copies of
// every block: the body assembly, the okResponse status-prefix rebuild,
// and nothing pooled — a 256 KiB run allocated ~2 MB per request. Here
// a response is a pooled head buffer (frame header, status byte, and
// every serialized body byte except block payloads) plus references to
// the store's block slices, written with one vectored write
// (net.Buffers → writev): block bytes cross from the store's memory to
// the socket without being copied by us at all. Stored blocks are
// immutable once published (updates install fresh slices), so handing
// them to writev is safe even while a re-publish commits.

import (
	"encoding/binary"
	"io"
	"net"
	"os"
	"sync"
)

// fileRun marks one response.blocks entry as sendfile-capable: the
// entry's bytes (a wire-exact checkpoint span, prefixes included) also
// live at off in src, so a capable connection ships them page cache →
// socket without touching the mapping. The writev path ignores fileRuns
// entirely and writes the same bytes from the span — that is the
// byte-identity fallback contract.
type fileRun struct {
	buf   int // index into response.blocks holding the span
	src   *os.File
	off   int64
	stats *sendfileStats
}

// response is one assembled reply travelling from dispatch to the
// per-connection writer.
type response struct {
	// head is [4-byte frame length][status][non-block body bytes...].
	// The frame length is filled in at write time, when the total is
	// known.
	head []byte
	// blocks are payloads referenced in place (zero copy). Block i goes
	// on the wire after head[cuts[i-1]:cuts[i]] — the head segment
	// holding its varint length prefix (empty for raw payloads).
	blocks     [][]byte
	cuts       []int
	blockBytes int

	// pins hold mmap'd checkpoint regions alive while blocks reference
	// them; release drops the pins after the vectored write (or on any
	// error/drop path — the writer releases every response exactly once).
	// With the sendfile tier the same pins keep the checkpoint *file*
	// open (the region owns the descriptor), so an in-flight file run
	// survives an epoch retirement mid-flush.
	pins []BlockPin

	// runs is the dispatch-side scratch the store appends
	// sendfile-capable runs into; fileRuns marks the blocks entries those
	// runs became.
	runs     []wireRun
	fileRuns []fileRun

	// bufs is the reused iovec scratch for the vectored write.
	bufs net.Buffers
}

// maxPooledRespHead bounds the head capacity a pooled response may
// retain — a one-off huge header or list response must not pin its
// buffer in the pool forever.
const maxPooledRespHead = 64 << 10

var respPool = sync.Pool{New: func() any { return new(response) }}

// newResponse returns a pooled response initialized as an empty OK
// reply.
func newResponse() *response {
	r := respPool.Get().(*response)
	if r.head == nil {
		r.head = make([]byte, 0, 512)
	}
	r.head = append(r.head[:0], 0, 0, 0, 0, statusOK)
	r.blocks = r.blocks[:0]
	r.cuts = r.cuts[:0]
	r.blockBytes = 0
	r.pins = r.pins[:0]
	r.runs = r.runs[:0]
	r.fileRuns = r.fileRuns[:0]
	return r
}

// release returns the response to the pool, dropping references into
// store memory (a pooled response must not pin blocks) and oversized
// buffers.
func (r *response) release() {
	for i := range r.blocks {
		r.blocks[i] = nil
	}
	for i := range r.pins {
		r.pins[i].Release()
		r.pins[i] = BlockPin{}
	}
	r.pins = r.pins[:0]
	for i := range r.runs {
		r.runs[i] = wireRun{}
	}
	r.runs = r.runs[:0]
	for i := range r.fileRuns {
		r.fileRuns[i] = fileRun{}
	}
	r.fileRuns = r.fileRuns[:0]
	for i := range r.bufs {
		r.bufs[i] = nil
	}
	r.bufs = r.bufs[:0]
	if cap(r.head) > maxPooledRespHead {
		r.head = nil
	}
	respPool.Put(r)
}

// size is the frame payload size the response has grown to.
func (r *response) size() int { return len(r.head) - 4 + r.blockBytes }

// setErr rewrites the response, whatever it holds, into an error reply.
func (r *response) setErr(err error) *response {
	r.head = append(r.head[:4], statusErr)
	r.head = append(r.head, err.Error()...)
	r.blocks = r.blocks[:0]
	r.cuts = r.cuts[:0]
	r.blockBytes = 0
	r.fileRuns = r.fileRuns[:0]
	return r
}

// appendBody copies small serialized bytes (headers, id lists) into the
// head.
func (r *response) appendBody(p []byte) { r.head = append(r.head, p...) }

// appendUvarint serializes v into the head.
func (r *response) appendUvarint(v uint64) { r.head = binary.AppendUvarint(r.head, v) }

// appendString serializes a length-prefixed string into the head.
func (r *response) appendString(s string) {
	r.appendUvarint(uint64(len(s)))
	r.head = append(r.head, s...)
}

// appendBlock appends one length-prefixed block without copying it: the
// varint goes into the head, the payload is referenced in place.
func (r *response) appendBlock(b []byte) {
	r.appendUvarint(uint64(len(b)))
	r.blocks = append(r.blocks, b)
	r.cuts = append(r.cuts, len(r.head))
	r.blockBytes += len(b)
}

// appendRaw appends payload bytes without copy or prefix (the
// single-block and rule-set replies, whose body is the payload itself).
func (r *response) appendRaw(b []byte) {
	r.blocks = append(r.blocks, b)
	r.cuts = append(r.cuts, len(r.head))
	r.blockBytes += len(b)
}

// appendFileRun appends a wire-exact checkpoint span — Count blocks,
// each [uvarint len][payload], already encoded in the image — as one
// blocks entry, and marks it sendfile-capable. Nothing goes into the
// head: the span carries its own prefixes, which is precisely why a
// whole run is one syscall.
func (r *response) appendFileRun(run wireRun) {
	r.blocks = append(r.blocks, run.Span)
	r.cuts = append(r.cuts, len(r.head))
	r.blockBytes += len(run.Span)
	r.fileRuns = append(r.fileRuns, fileRun{
		buf: len(r.blocks) - 1, src: run.File, off: run.Off, stats: run.Stats,
	})
}

// writeTo puts the response on the wire: one Write for a contiguous
// reply, one vectored write interleaving head segments and block
// payloads otherwise.
func (r *response) writeTo(w io.Writer) error {
	n := r.size()
	if n > maxFrame {
		// Callers bound their payloads at dispatch; defend anyway rather
		// than emit a frame the peer must refuse.
		return r.setErr(errFrameLimit(n)).writeTo(w)
	}
	binary.BigEndian.PutUint32(r.head[:4], uint32(n))
	if len(r.blocks) == 0 {
		_, err := w.Write(r.head)
		return err
	}
	bufs := r.bufs[:0]
	prev := 0
	for i, cut := range r.cuts {
		if cut > prev {
			bufs = append(bufs, r.head[prev:cut])
		}
		if len(r.blocks[i]) > 0 {
			bufs = append(bufs, r.blocks[i])
		}
		prev = cut
	}
	if prev < len(r.head) {
		bufs = append(bufs, r.head[prev:])
	}
	r.bufs = bufs
	_, err := (&r.bufs).WriteTo(w)
	return err
}

// writeToConn is writeTo for the server's per-connection writer: file
// runs go out via sendfile when the connection still supports it —
// everything queued before a run is flushed with one vectored write,
// then the run travels page cache → socket inside the kernel. Any
// refusal latches the connection back to writev (connWriter.sendfile)
// and the run's remaining bytes resume from the mapped span at the
// exact offset sendfile stopped, so the peer sees an identical frame
// no matter which path (or mix) served it.
func (r *response) writeToConn(cw *connWriter) error {
	if len(r.fileRuns) == 0 || !cw.sendfileOK {
		return r.writeTo(cw.conn)
	}
	n := r.size()
	if n > maxFrame {
		return r.setErr(errFrameLimit(n)).writeTo(cw.conn)
	}
	binary.BigEndian.PutUint32(r.head[:4], uint32(n))
	var bufs net.Buffers
	flush := func() error {
		if len(bufs) == 0 {
			return nil
		}
		_, err := (&bufs).WriteTo(cw.conn)
		bufs = nil // WriteTo consumed the slice
		return err
	}
	prev := 0
	ri := 0
	for i, cut := range r.cuts {
		if cut > prev {
			bufs = append(bufs, r.head[prev:cut])
		}
		prev = cut
		isRun := ri < len(r.fileRuns) && r.fileRuns[ri].buf == i
		if isRun && cw.sendfileOK {
			run := &r.fileRuns[ri]
			ri++
			if err := flush(); err != nil {
				return err
			}
			span := r.blocks[i]
			sent, err := cw.sendfile(span, run.src, run.off, run.stats)
			if err != nil {
				return err
			}
			if rest := span[sent:]; len(rest) > 0 {
				// The kernel refused partway (or entirely): the mapping
				// holds the same bytes — resume right where sendfile
				// stopped.
				if _, err := cw.conn.Write(rest); err != nil {
					return err
				}
			}
			continue
		}
		if isRun {
			ri++ // latched mid-response: the span rides the writev below
		}
		if len(r.blocks[i]) > 0 {
			bufs = append(bufs, r.blocks[i])
		}
	}
	if prev < len(r.head) {
		bufs = append(bufs, r.head[prev:])
	}
	return flush()
}
