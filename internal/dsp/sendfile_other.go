//go:build !linux || nosendfile

package dsp

// Portable fallback: no sendfile. The store still builds wire-prefixed
// v3 images and the response writer still receives file runs as mapped
// spans — they simply travel the ordinary writev path, byte for byte
// the same frame. A store directory moves freely between builds.

import (
	"os"
	"syscall"
)

const sendfileSupported = false

func sendfileTo(rc syscall.RawConn, src *os.File, off, n int64) (int64, bool, error) {
	return 0, true, nil
}
