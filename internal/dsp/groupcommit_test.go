package dsp

import (
	"fmt"
	"sync"
	"testing"
)

// TestGroupCommitConcurrentWriters drives concurrent writers at a
// multi-segment store and checks every commit lands durably through the
// committer: round accounting consistent, all documents present.
// (Whether rounds actually batch is timing-dependent on a fast disk —
// the deterministic batching proof is TestGroupCommitRoundsBatch.)
func TestGroupCommitConcurrentWriters(t *testing.T) {
	store, err := NewFileStoreOptions(t.TempDir(), FileStoreOptions{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	const writers = 8
	const docsPerWriter = 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < docsPerWriter; i++ {
				id := fmt.Sprintf("doc-%d-%d", w, i)
				if err := store.PutDocument(benchContainer(id, 2, 256)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := store.Stats()
	if st.SyncWaits == 0 {
		t.Fatal("no commits went through the group committer")
	}
	if st.SyncRounds == 0 || st.SyncRounds > st.SyncWaits {
		t.Fatalf("rounds=%d waits=%d: rounds must be in (0, waits]", st.SyncRounds, st.SyncWaits)
	}

	ids, err := store.ListDocuments()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != writers*docsPerWriter {
		t.Fatalf("stored %d documents, want %d", len(ids), writers*docsPerWriter)
	}
}

// TestGroupCommitRoundsBatch proves the batching deterministically: the
// first commit's round is held open at its gate while more committers
// arrive, and all of them must be served by ONE further round.
func TestGroupCommitRoundsBatch(t *testing.T) {
	store, err := NewFileStoreOptions(t.TempDir(), FileStoreOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	gate := make(chan struct{})
	first := true
	store.gc.testRoundGate = func() {
		if first {
			first = false
			<-gate
		}
	}

	done := make(chan error, 1)
	go func() { done <- store.PutDocument(benchContainer("opener", 1, 128)) }()

	// The opener's round is stuck at the gate once rounds hits 1. Pile
	// more committers in behind it.
	for store.gc.rounds.Load() == 0 {
	}
	const late = 6
	lateDone := make(chan error, late)
	for i := 0; i < late; i++ {
		go func(i int) {
			lateDone <- store.PutDocument(benchContainer(fmt.Sprintf("late-%d", i), 1, 128))
		}(i)
	}
	// Every late committer must be registered in the accumulating round
	// before the gate opens, or they could land in rounds of their own.
	for store.gc.waits.Load() < late+1 {
	}
	close(gate)

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < late; i++ {
		if err := <-lateDone; err != nil {
			t.Fatal(err)
		}
	}
	st := store.Stats()
	if st.SyncWaits != late+1 {
		t.Fatalf("waits=%d, want %d", st.SyncWaits, late+1)
	}
	// One round for the opener, one shared round for all late arrivals.
	if st.SyncRounds != 2 {
		t.Fatalf("rounds=%d waits=%d: %d late committers should share one round", st.SyncRounds, st.SyncWaits, late)
	}
}

// TestGroupCommitStopFallsBack checks a wait() arriving after stop()
// still gets a durable answer via the direct per-segment barrier.
func TestGroupCommitStopFallsBack(t *testing.T) {
	dir := t.TempDir()
	store, err := NewFileStoreOptions(dir, FileStoreOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	if err := store.PutDocument(benchContainer("before", 1, 128)); err != nil {
		t.Fatal(err)
	}
	store.gc.stop()
	// The store's committer is stopped but the store is still open:
	// commits must fall back to direct syncTo, not hang or fail.
	if err := store.PutDocument(benchContainer("after", 1, 128)); err != nil {
		t.Fatal(err)
	}
	h, err := store.Header("after")
	if err != nil || h.DocID != "after" {
		t.Fatalf("post-stop commit not applied: %v %v", h, err)
	}
}
