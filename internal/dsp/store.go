// Package dsp implements the untrusted Database Service Provider of the
// architecture: it "hosts encrypted XML documents shared by users as well
// as encrypted access rules" (Section 3) and serves them to terminals.
//
// The store is untrusted by construction: everything it holds is
// encrypted and integrity-tagged by the publishing side, and the SOE
// detects tampering, substitution and replay. The store's only functional
// obligations are availability and range reads — the latter is what turns
// the SOE's skip decisions into bytes never transmitted.
//
// Two implementations are provided: MemStore (in-process) and a TCP
// client/server pair (cmd/dspd) speaking a length-prefixed binary
// protocol.
package dsp

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/docenc"
)

// Store is the DSP interface terminals program against.
type Store interface {
	// PutDocument stores (or replaces) a document container.
	PutDocument(c *docenc.Container) error
	// Header returns a document's cleartext header.
	Header(docID string) (docenc.Header, error)
	// ReadBlock returns one stored block (ciphertext||tag).
	ReadBlock(docID string, idx int) ([]byte, error)
	// PutRuleSet stores a subject's sealed rule set for a document.
	PutRuleSet(docID, subject string, version uint32, sealed []byte) error
	// RuleSet returns the latest sealed rule set for (doc, subject).
	RuleSet(docID, subject string) ([]byte, error)
	// ListDocuments returns the stored document ids, sorted.
	ListDocuments() ([]string, error)
}

// MemStore is the in-process Store.
type MemStore struct {
	mu    sync.RWMutex
	docs  map[string]*docenc.Container
	rules map[string]ruleEntry
}

type ruleEntry struct {
	version uint32
	sealed  []byte
}

// NewMemStore returns an empty store.
func NewMemStore() *MemStore {
	return &MemStore{
		docs:  make(map[string]*docenc.Container),
		rules: make(map[string]ruleEntry),
	}
}

// PutDocument implements Store.
func (s *MemStore) PutDocument(c *docenc.Container) error {
	if c == nil || c.Header.DocID == "" {
		return fmt.Errorf("dsp: container without document id")
	}
	if len(c.Blocks) != c.Header.NumBlocks() {
		return fmt.Errorf("dsp: container block count %d does not match geometry %d",
			len(c.Blocks), c.Header.NumBlocks())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docs[c.Header.DocID] = c
	return nil
}

// Header implements Store.
func (s *MemStore) Header(docID string) (docenc.Header, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.docs[docID]
	if !ok {
		return docenc.Header{}, fmt.Errorf("dsp: unknown document %q", docID)
	}
	return c.Header, nil
}

// ReadBlock implements Store.
func (s *MemStore) ReadBlock(docID string, idx int) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.docs[docID]
	if !ok {
		return nil, fmt.Errorf("dsp: unknown document %q", docID)
	}
	if idx < 0 || idx >= len(c.Blocks) {
		return nil, fmt.Errorf("dsp: block %d out of range [0,%d) for %q", idx, len(c.Blocks), docID)
	}
	return c.Blocks[idx], nil
}

// PutRuleSet implements Store. The store keeps only the latest version it
// has seen; an honest store thereby serves fresh rights, and a malicious
// one replaying old blobs is caught by the card's version check, not here.
func (s *MemStore) PutRuleSet(docID, subject string, version uint32, sealed []byte) error {
	if subject == "" {
		return fmt.Errorf("dsp: rule set without subject")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := docID + "\x00" + subject
	if cur, ok := s.rules[k]; ok && cur.version > version {
		return fmt.Errorf("dsp: rule set version %d older than stored %d", version, cur.version)
	}
	s.rules[k] = ruleEntry{version: version, sealed: append([]byte(nil), sealed...)}
	return nil
}

// RuleSet implements Store.
func (s *MemStore) RuleSet(docID, subject string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.rules[docID+"\x00"+subject]
	if !ok {
		return nil, fmt.Errorf("dsp: no rule set for subject %q on document %q", subject, docID)
	}
	return e.sealed, nil
}

// ListDocuments implements Store.
func (s *MemStore) ListDocuments() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.docs))
	for id := range s.docs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

// Tamper flips a byte of a stored block: the adversarial store used by
// integrity tests. It returns an error if the target does not exist.
func (s *MemStore) Tamper(docID string, blockIdx, byteIdx int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.docs[docID]
	if !ok {
		return fmt.Errorf("dsp: unknown document %q", docID)
	}
	if blockIdx < 0 || blockIdx >= len(c.Blocks) {
		return fmt.Errorf("dsp: block %d out of range", blockIdx)
	}
	b := append([]byte(nil), c.Blocks[blockIdx]...)
	if byteIdx < 0 || byteIdx >= len(b) {
		return fmt.Errorf("dsp: byte %d out of range", byteIdx)
	}
	b[byteIdx] ^= 0xFF
	c.Blocks[blockIdx] = b
	return nil
}

// SwapBlocks exchanges two stored blocks (substitution attack).
func (s *MemStore) SwapBlocks(docID string, i, j int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.docs[docID]
	if !ok {
		return fmt.Errorf("dsp: unknown document %q", docID)
	}
	if i < 0 || j < 0 || i >= len(c.Blocks) || j >= len(c.Blocks) {
		return fmt.Errorf("dsp: block index out of range")
	}
	c.Blocks[i], c.Blocks[j] = c.Blocks[j], c.Blocks[i]
	return nil
}

var _ Store = (*MemStore)(nil)
