// Package dsp implements the untrusted Database Service Provider of the
// architecture: it "hosts encrypted XML documents shared by users as well
// as encrypted access rules" (Section 3) and serves them to terminals.
//
// The store is untrusted by construction: everything it holds is
// encrypted and integrity-tagged by the publishing side, and the SOE
// detects tampering, substitution and replay. The store's only functional
// obligations are availability and range reads — the latter is what turns
// the SOE's skip decisions into bytes never transmitted.
//
// Because the DSP is the only tier the architecture allows to scale out,
// it is built for concurrent traffic: MemStore shards documents across
// independently locked partitions, Cache keeps hot encrypted blocks in an
// LRU front, the TCP server pipelines requests per connection over a
// bounded worker pool and answers block reads zero-copy (pooled response
// heads, one vectored write over store-owned block references — blocks
// are immutable once published, so the wire path never copies them), and
// Pool fans client traffic over several connections. FileStore keeps the
// same in-memory tier durable: per-shard WAL segments with group commit
// within and across segments, streaming checkpoints, and parallel
// recovery. cmd/dspd serves a store over a length-prefixed binary
// protocol.
package dsp

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/docenc"
)

// ErrUnknownDocument reports a read of a document the store does not
// hold. Callers deciding between "absent" and "broken" (the streaming
// publisher's create-or-update negotiation) must use IsUnknownDocument,
// which also recognizes the error after a wire crossing.
var ErrUnknownDocument = errors.New("dsp: unknown document")

// IsUnknownDocument reports whether err means the document is absent —
// locally (errors.Is) or as a server-reported error, which the wire
// flattens to its message.
func IsUnknownDocument(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrUnknownDocument) ||
		strings.Contains(err.Error(), ErrUnknownDocument.Error())
}

// Store is the DSP interface terminals program against.
type Store interface {
	// PutDocument stores (or replaces) a document container.
	PutDocument(c *docenc.Container) error
	// Header returns a document's cleartext header.
	Header(docID string) (docenc.Header, error)
	// ReadBlock returns one stored block (ciphertext||tag).
	ReadBlock(docID string, idx int) ([]byte, error)
	// PutRuleSet stores a subject's sealed rule set for a document.
	PutRuleSet(docID, subject string, version uint32, sealed []byte) error
	// RuleSet returns the latest sealed rule set for (doc, subject).
	RuleSet(docID, subject string) ([]byte, error)
	// ListDocuments returns the stored document ids, sorted.
	ListDocuments() ([]string, error)
}

// BlockRangeReader is implemented by stores that can serve a contiguous
// run of blocks in one call — the skip index hands the terminal exactly
// such runs, so a batched read turns a run into one round trip.
type BlockRangeReader interface {
	ReadBlocks(docID string, start, count int) ([][]byte, error)
}

// ReadBlockRange fetches blocks [start, start+count) of a document,
// batched when the store supports it and block-by-block otherwise.
func ReadBlockRange(s Store, docID string, start, count int) ([][]byte, error) {
	if count < 0 || start < 0 {
		return nil, fmt.Errorf("dsp: negative block range [%d,+%d)", start, count)
	}
	if br, ok := s.(BlockRangeReader); ok {
		return br.ReadBlocks(docID, start, count)
	}
	out := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		b, err := s.ReadBlock(docID, start+i)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// DefaultShards is the MemStore shard count used by NewMemStore.
const DefaultShards = 16

// MemStore is the in-process Store, sharded by document id so that
// concurrent readers of different documents never contend on one lock.
type MemStore struct {
	shards []memShard

	// Staged block-level updates (see update.go); kept off the shard
	// locks so an in-progress upload never blocks readers.
	updMu   sync.Mutex
	updSeq  uint64
	updates map[uint64]*pendingUpdate

	// noEvict suspends the staged-update capacity eviction. Recovery
	// sets it while replaying segment logs in parallel: live eviction
	// order is a property of the interleaved history, which per-segment
	// replay does not reproduce — evicting during replay could kill a
	// begin whose commit (which succeeded live) is still ahead in its
	// log. Replay memory is bounded by the logs themselves, which
	// recovery already holds. Written only while no replay goroutine is
	// running (hand-off via goroutine start/join).
	noEvict bool
}

type memShard struct {
	mu    sync.RWMutex
	docs  map[string]*docenc.Container
	rules map[string]ruleEntry
}

type ruleEntry struct {
	version uint32
	sealed  []byte
}

// NewMemStore returns an empty store with DefaultShards partitions.
func NewMemStore() *MemStore {
	return NewMemStoreShards(DefaultShards)
}

// NewMemStoreShards returns an empty store with n partitions (n < 1 is
// clamped to 1, which degenerates to the single-lock layout).
func NewMemStoreShards(n int) *MemStore {
	if n < 1 {
		n = 1
	}
	s := &MemStore{shards: make([]memShard, n), updates: make(map[uint64]*pendingUpdate)}
	for i := range s.shards {
		s.shards[i].docs = make(map[string]*docenc.Container)
		s.shards[i].rules = make(map[string]ruleEntry)
	}
	return s
}

// shardHash is an allocation-free FNV-1a over a document id and a block
// index (pass 0 when sharding by document alone) — the hot read path
// runs it per request, so it must not heap-allocate a hasher.
func shardHash(docID string, idx uint32) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(docID); i++ {
		h = (h ^ uint32(docID[i])) * 16777619
	}
	for s := 0; s < 32; s += 8 {
		h = (h ^ ((idx >> s) & 0xff)) * 16777619
	}
	return h
}

// shard maps a document id to its partition. Rule sets live with their
// document so one (doc, subject) exchange touches one lock.
func (s *MemStore) shard(docID string) *memShard {
	return &s.shards[shardHash(docID, 0)%uint32(len(s.shards))]
}

// PutDocument implements Store.
func (s *MemStore) PutDocument(c *docenc.Container) error {
	if c == nil || c.Header.DocID == "" {
		return fmt.Errorf("dsp: container without document id")
	}
	if len(c.Blocks) != c.Header.NumBlocks() {
		return fmt.Errorf("dsp: container block count %d does not match geometry %d",
			len(c.Blocks), c.Header.NumBlocks())
	}
	sh := s.shard(c.Header.DocID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.docs[c.Header.DocID] = c
	return nil
}

// Header implements Store.
func (s *MemStore) Header(docID string) (docenc.Header, error) {
	sh := s.shard(docID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	c, ok := sh.docs[docID]
	if !ok {
		return docenc.Header{}, fmt.Errorf("%w: %q", ErrUnknownDocument, docID)
	}
	return c.Header, nil
}

// ReadBlock implements Store.
func (s *MemStore) ReadBlock(docID string, idx int) ([]byte, error) {
	sh := s.shard(docID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	c, ok := sh.docs[docID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDocument, docID)
	}
	if idx < 0 || idx >= len(c.Blocks) {
		return nil, fmt.Errorf("dsp: block %d out of range [0,%d) for %q", idx, len(c.Blocks), docID)
	}
	return c.Blocks[idx], nil
}

// ReadBlocks implements BlockRangeReader under one lock acquisition.
func (s *MemStore) ReadBlocks(docID string, start, count int) ([][]byte, error) {
	sh := s.shard(docID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	c, ok := sh.docs[docID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDocument, docID)
	}
	// Bounds are checked without computing start+count, which a hostile
	// wire request can overflow.
	if start < 0 || count < 0 || start > len(c.Blocks) || count > len(c.Blocks)-start {
		return nil, fmt.Errorf("dsp: block range [%d,+%d) out of range [0,%d) for %q",
			start, count, len(c.Blocks), docID)
	}
	out := make([][]byte, count)
	copy(out, c.Blocks[start:start+count])
	return out, nil
}

// Snapshot returns the stored container of a document: the header plus
// a copied block list (the block payloads are shared and must be treated
// as read-only). Persistence layers shadowing a MemStore use it to see
// the outcome of a block-level update they did not assemble themselves.
func (s *MemStore) Snapshot(docID string) (*docenc.Container, error) {
	sh := s.shard(docID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	c, ok := sh.docs[docID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDocument, docID)
	}
	cp := &docenc.Container{Header: c.Header}
	cp.Blocks = append(cp.Blocks, c.Blocks...)
	return cp, nil
}

// PutRuleSet implements Store. The store keeps only the latest version it
// has seen; an honest store thereby serves fresh rights, and a malicious
// one replaying old blobs is caught by the card's version check, not here.
func (s *MemStore) PutRuleSet(docID, subject string, version uint32, sealed []byte) error {
	if subject == "" {
		return fmt.Errorf("dsp: rule set without subject")
	}
	sh := s.shard(docID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	k := docID + "\x00" + subject
	if cur, ok := sh.rules[k]; ok && cur.version > version {
		return fmt.Errorf("dsp: rule set version %d older than stored %d", version, cur.version)
	}
	sh.rules[k] = ruleEntry{version: version, sealed: append([]byte(nil), sealed...)}
	return nil
}

// RuleSet implements Store.
func (s *MemStore) RuleSet(docID, subject string) ([]byte, error) {
	sh := s.shard(docID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.rules[docID+"\x00"+subject]
	if !ok {
		return nil, fmt.Errorf("dsp: no rule set for subject %q on document %q", subject, docID)
	}
	return e.sealed, nil
}

// ListDocuments implements Store.
func (s *MemStore) ListDocuments() ([]string, error) {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id := range sh.docs {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out, nil
}

// Tamper flips a byte of a stored block: the adversarial store used by
// integrity tests. It returns an error if the target does not exist.
func (s *MemStore) Tamper(docID string, blockIdx, byteIdx int) error {
	sh := s.shard(docID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c, ok := sh.docs[docID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDocument, docID)
	}
	if blockIdx < 0 || blockIdx >= len(c.Blocks) {
		return fmt.Errorf("dsp: block %d out of range", blockIdx)
	}
	b := append([]byte(nil), c.Blocks[blockIdx]...)
	if byteIdx < 0 || byteIdx >= len(b) {
		return fmt.Errorf("dsp: byte %d out of range", byteIdx)
	}
	b[byteIdx] ^= 0xFF
	c.Blocks[blockIdx] = b
	return nil
}

// SwapBlocks exchanges two stored blocks (substitution attack).
func (s *MemStore) SwapBlocks(docID string, i, j int) error {
	sh := s.shard(docID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c, ok := sh.docs[docID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDocument, docID)
	}
	if i < 0 || j < 0 || i >= len(c.Blocks) || j >= len(c.Blocks) {
		return fmt.Errorf("dsp: block index out of range")
	}
	c.Blocks[i], c.Blocks[j] = c.Blocks[j], c.Blocks[i]
	return nil
}

var (
	_ Store            = (*MemStore)(nil)
	_ BlockRangeReader = (*MemStore)(nil)
)
