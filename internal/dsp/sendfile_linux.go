//go:build linux && !nosendfile

package dsp

import (
	"os"
	"syscall"
)

// sendfileSupported selects the kernel-resident cold serve path at
// store open. The nosendfile build tag forces the portable writev
// fallback on linux too — CI runs the dsp tests both ways.
const sendfileSupported = true

// sendfileChunk bounds one sendfile syscall (the kernel caps a single
// call around 2 GiB anyway; staying well under keeps the offset
// arithmetic trivially safe).
const sendfileChunk = 1 << 30

// sendfileTo ships n bytes of src starting at off into the socket
// behind rc, resuming short writes and EAGAIN via the runtime poller.
// unsupported reports a kernel refusal (ENOSYS/EINVAL/EOPNOTSUPP) that
// should latch the connection back to writev — sent bytes are already
// on the wire either way, so the caller resumes the fallback at the
// exact byte offset. A non-nil err is a dead connection.
func sendfileTo(rc syscall.RawConn, src *os.File, off, n int64) (sent int64, unsupported bool, err error) {
	if rc == nil || src == nil {
		return 0, true, nil
	}
	srcFd := int(src.Fd())
	remain := n
	var serr error
	werr := rc.Write(func(fd uintptr) bool {
		for remain > 0 {
			chunk := remain
			if chunk > sendfileChunk {
				chunk = sendfileChunk
			}
			// syscall.Sendfile advances off by the bytes written.
			w, e := syscall.Sendfile(int(fd), srcFd, &off, int(chunk))
			if w > 0 {
				sent += int64(w)
				remain -= int64(w)
			}
			switch e {
			case nil:
				if w == 0 {
					// EOF before the span ended: the file is shorter than
					// the mapping that produced the run, which cannot
					// happen for an image both sides pin — treat it as a
					// refusal and let the mapping serve the rest.
					unsupported = true
					return true
				}
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // wait for writability, then retry
			case syscall.ENOSYS, syscall.EINVAL, syscall.EOPNOTSUPP:
				unsupported = true
				return true
			default:
				serr = e
				return true
			}
		}
		return true
	})
	if serr == nil {
		serr = werr
	}
	if serr != nil {
		return sent, false, &os.SyscallError{Syscall: "sendfile", Err: serr}
	}
	return sent, unsupported, nil
}
