package dsp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("round trip changed payload: %q", got)
	}
	// Empty payloads are legal frames.
	buf.Reset()
	if err := writeFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got, err := readFrame(&buf); err != nil || len(got) != 0 {
		t.Errorf("empty frame = %q, %v", got, err)
	}
}

func TestWriteFrameRejectsOversize(t *testing.T) {
	err := writeFrame(io.Discard, make([]byte, maxFrame+1))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame written: %v", err)
	}
}

func TestReadFrameRejectsHostileLength(t *testing.T) {
	// A hostile length prefix must be rejected before any allocation.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	_, err := readFrame(bytes.NewReader(hdr[:]))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("hostile length accepted: %v", err)
	}
}

func TestReadFrameTruncatedHeader(t *testing.T) {
	_, err := readFrame(bytes.NewReader([]byte{0, 0}))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated header: %v", err)
	}
	_, err = readFrame(bytes.NewReader(nil))
	if !errors.Is(err, io.EOF) {
		t.Fatalf("missing header: %v", err)
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 10)
	_, err := readFrame(bytes.NewReader(append(hdr[:], 1, 2, 3)))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated payload: %v", err)
	}
}

func TestWireReaderTruncation(t *testing.T) {
	r := &wireReader{data: nil}
	r.uvarint()
	if r.err == nil {
		t.Error("uvarint on empty input succeeded")
	}
	// A field whose declared length exceeds the remaining bytes.
	r = &wireReader{data: binary.AppendUvarint(nil, 100)}
	r.bytes()
	if r.err == nil {
		t.Error("overlong field served")
	}
}

func TestDispatchMalformedRequests(t *testing.T) {
	srv := NewServer(NewMemStore())
	cases := []struct {
		name string
		req  []byte
	}{
		{"empty request", nil},
		{"unknown op", []byte{99}},
		{"truncated header request", []byte{opHeader}},
		{"truncated read request", appendString([]byte{opReadBlock}, "doc")},
		{"oversized batch count", func() []byte {
			req := appendString([]byte{opReadBlocks}, "doc")
			req = binary.AppendUvarint(req, 0)
			return binary.AppendUvarint(req, maxBatchBlocks+1)
		}()},
		{"hostile field length", func() []byte {
			// docID length declared as 2^63: must be rejected in uint64
			// space, not wrapped through int into a slice panic.
			return binary.AppendUvarint([]byte{opHeader}, 1<<63)
		}()},
		{"hostile batch offset", func() []byte {
			// start chosen so that start+count overflows int64: the
			// bounds check must reject it, not panic on a wrapped slice.
			req := appendString([]byte{opReadBlocks}, "doc")
			req = binary.AppendUvarint(req, math.MaxInt64)
			return binary.AppendUvarint(req, 1)
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := srv.dispatch(tc.req)
			if len(resp.head) <= 4 || resp.head[4] != statusErr {
				t.Errorf("dispatch(%v) = %v, want error status", tc.req, resp.head)
			}
			resp.release()
		})
	}
}

// TestErrorStatusRoundTrip checks that a server-side error crosses the
// wire as a typed ServerError carrying the message.
func TestErrorStatusRoundTrip(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewMemStore())
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	_, err = client.Header("missing-doc")
	var srvErr ServerError
	if !errors.As(err, &srvErr) {
		t.Fatalf("want ServerError, got %T %v", err, err)
	}
	if !strings.Contains(err.Error(), "missing-doc") {
		t.Errorf("error lost the server message: %v", err)
	}
	// The connection stays synchronized after a server error.
	if _, err := client.ListDocuments(); err != nil {
		t.Fatal(err)
	}
}

// TestClientRejectsBadStatus drives the client against a fake server that
// answers with an unknown status byte.
func TestClientRejectsBadStatus(t *testing.T) {
	clientSide, serverSide := net.Pipe()
	defer serverSide.Close()
	go func() {
		if _, err := readFrame(serverSide); err != nil {
			return
		}
		_ = writeFrame(serverSide, []byte{42})
	}()
	c := &Client{conn: clientSide}
	defer c.Close()
	_, err := c.ListDocuments()
	if err == nil || !strings.Contains(err.Error(), "bad response status") {
		t.Fatalf("bad status accepted: %v", err)
	}
}

// TestPipelinedResponsesStayOrdered sends several raw frames back to back
// on one connection before reading anything: the server must answer them
// in request order even though they execute on a worker pool.
func TestPipelinedResponsesStayOrdered(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	store := NewMemStore()
	c := testContainer(t, "doc")
	if err := store.PutDocument(c); err != nil {
		t.Fatal(err)
	}
	srv := NewServerConfig(store, ServerConfig{Workers: 8, PipelineDepth: 16})
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const n = 10
	for i := 0; i < n; i++ {
		req := appendString([]byte{opReadBlock}, "doc")
		req = binary.AppendUvarint(req, uint64(i%len(c.Blocks)))
		if err := writeFrame(conn, req); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		resp, err := readFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp) == 0 || resp[0] != statusOK {
			t.Fatalf("response %d: status %v", i, resp[:1])
		}
		want := c.Blocks[i%len(c.Blocks)]
		if !bytes.Equal(resp[1:], want) {
			t.Fatalf("response %d out of order", i)
		}
	}
}
