//go:build !unix || nommap

package dsp

// Portable fallback: no mapping support. FileStore detects this at open
// and serves everything from the heap-resident MemStore — the
// checkpoint format (v2 body + index footer) is identical, only the
// read tier differs, so a store directory moves freely between builds.

const mmapSupported = false

func mapFile(path string) (*mmapRegion, error) { return nil, errMmapUnsupported }

func (r *mmapRegion) unmap() error { return nil }
