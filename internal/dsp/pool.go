package dsp

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/docenc"
)

// DefaultPoolSize is the connection count used when DialPool is given a
// size <= 0.
const DefaultPoolSize = 4

// Pool is a fixed-size pool of connections to one dspd server. It
// implements Store, so many goroutines can share one Pool and fan their
// requests over the pooled connections; each call borrows a connection
// for exactly one round trip.
//
// A connection that suffers a transport failure is dropped and redialed
// on next use, so a restarted dspd heals the pool lazily. Server-reported
// errors (ServerError) leave the connection in service — the wire is
// still synchronized after them.
type Pool struct {
	addr string

	// free holds the pool's slots. A nil entry is a slot whose connection
	// died (or was never opened) and is dialed on demand.
	free chan *Client

	mu     sync.Mutex
	open   []*Client // every live client, for Close and byte accounting
	closed bool

	// retiredBytes / retiredWritten accumulate the counters of dropped
	// connections so BytesRead and BytesWritten stay monotonic across
	// redials.
	retiredBytes   atomic.Int64
	retiredWritten atomic.Int64
}

// DialPool connects size connections (<= 0: DefaultPoolSize) to a dspd
// server. The first dial failure aborts and closes the already-open
// connections.
func DialPool(addr string, size int) (*Pool, error) {
	if size <= 0 {
		size = DefaultPoolSize
	}
	p := &Pool{addr: addr, free: make(chan *Client, size)}
	for i := 0; i < size; i++ {
		c, err := Dial(addr)
		if err != nil {
			_ = p.Close()
			return nil, fmt.Errorf("dsp: pool connection %d/%d: %w", i+1, size, err)
		}
		p.track(c)
		p.free <- c
	}
	return p, nil
}

// track registers a live client; if the pool closed while the client was
// being dialed, it is closed instead and track reports false.
func (p *Pool) track(c *Client) bool {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = c.Close()
		return false
	}
	p.open = append(p.open, c)
	p.mu.Unlock()
	return true
}

func (p *Pool) untrack(c *Client) {
	p.mu.Lock()
	found := false
	for i, o := range p.open {
		if o == c {
			p.open[i] = p.open[len(p.open)-1]
			p.open = p.open[:len(p.open)-1]
			found = true
			break
		}
	}
	// Credit the retired counter under the same lock that removed the
	// client from open, so a concurrent BytesRead never sees neither —
	// but only if this call did the removal: a client already retired by
	// Close has been credited there, and crediting it again would
	// double-count its bytes.
	if found {
		p.retiredBytes.Add(c.BytesRead())
		p.retiredWritten.Add(c.BytesWritten())
	}
	p.mu.Unlock()
	_ = c.Close()
}

// Size reports the pool's slot count.
func (p *Pool) Size() int { return cap(p.free) }

// BytesRead sums the response payload bytes received over the pool's
// connections, past and present.
func (p *Pool) BytesRead() int64 {
	total := p.retiredBytes.Load()
	p.mu.Lock()
	for _, c := range p.open {
		total += c.BytesRead()
	}
	p.mu.Unlock()
	return total
}

// BytesWritten sums the request payload bytes sent over the pool's
// connections, past and present.
func (p *Pool) BytesWritten() int64 {
	total := p.retiredWritten.Load()
	p.mu.Lock()
	for _, c := range p.open {
		total += c.BytesWritten()
	}
	p.mu.Unlock()
	return total
}

// Close closes every pooled connection. In-flight calls finish with
// transport errors; subsequent calls fail immediately.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	open := p.open
	p.open = nil
	// Retire the live counters so BytesRead stays monotonic across Close.
	for _, c := range open {
		p.retiredBytes.Add(c.BytesRead())
		p.retiredWritten.Add(c.BytesWritten())
	}
	p.mu.Unlock()
	for _, c := range open {
		_ = c.Close()
	}
	return nil
}

// withConn borrows a slot, dials it if needed, and runs one round trip.
func (p *Pool) withConn(f func(*Client) error) error {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return fmt.Errorf("dsp: pool is closed")
	}
	c := <-p.free
	if c == nil {
		p.mu.Lock()
		closed = p.closed
		p.mu.Unlock()
		if closed {
			p.free <- nil
			return fmt.Errorf("dsp: pool is closed")
		}
		var err error
		c, err = Dial(p.addr)
		if err != nil {
			p.free <- nil
			return err
		}
		if !p.track(c) {
			p.free <- nil
			return fmt.Errorf("dsp: pool is closed")
		}
	}
	err := f(c)
	var srvErr ServerError
	if err != nil && !errors.As(err, &srvErr) {
		// Transport failure: the request/response framing on this
		// connection can no longer be trusted. Drop it.
		p.untrack(c)
		p.free <- nil
		return err
	}
	p.free <- c
	return err
}

// PutDocument implements Store.
func (p *Pool) PutDocument(container *docenc.Container) error {
	return p.withConn(func(c *Client) error { return c.PutDocument(container) })
}

// Header implements Store.
func (p *Pool) Header(docID string) (h docenc.Header, err error) {
	err = p.withConn(func(c *Client) error {
		h, err = c.Header(docID)
		return err
	})
	return h, err
}

// ReadBlock implements Store.
func (p *Pool) ReadBlock(docID string, idx int) (b []byte, err error) {
	err = p.withConn(func(c *Client) error {
		b, err = c.ReadBlock(docID, idx)
		return err
	})
	return b, err
}

// ReadBlocks implements BlockRangeReader. Arguments are validated before
// borrowing a connection: a local validation error must not cost the
// pool a healthy connection.
func (p *Pool) ReadBlocks(docID string, start, count int) (bs [][]byte, err error) {
	if start < 0 || count < 0 {
		return nil, fmt.Errorf("dsp: negative block range [%d,+%d)", start, count)
	}
	err = p.withConn(func(c *Client) error {
		bs, err = c.ReadBlocks(docID, start, count)
		return err
	})
	return bs, err
}

// ReadBlocksFrame is the pooled-buffer batched read over a borrowed
// connection (see Client.ReadBlocksFrame). The frame is independent of
// the connection once the round trip completes, so releasing it after
// the slot went back to the pool is safe.
func (p *Pool) ReadBlocksFrame(docID string, start, count int) (f *BlockFrame, err error) {
	if start < 0 || count < 0 {
		return nil, fmt.Errorf("dsp: negative block range [%d,+%d)", start, count)
	}
	err = p.withConn(func(c *Client) error {
		f, err = c.ReadBlocksFrame(docID, start, count)
		return err
	})
	return f, err
}

// BeginUpdate implements DocUpdater. The update token is store-side
// state, not connection state, so each op of the handshake may travel
// over a different pooled connection.
func (p *Pool) BeginUpdate(h docenc.Header, baseVersion uint32) (token uint64, err error) {
	err = p.withConn(func(c *Client) error {
		token, err = c.BeginUpdate(h, baseVersion)
		return err
	})
	return token, err
}

// PutBlocks implements DocUpdater.
func (p *Pool) PutBlocks(token uint64, start int, blocks [][]byte) error {
	if start < 0 {
		return fmt.Errorf("dsp: negative block offset %d", start)
	}
	return p.withConn(func(c *Client) error { return c.PutBlocks(token, start, blocks) })
}

// CommitUpdate implements DocUpdater.
func (p *Pool) CommitUpdate(token uint64) error {
	return p.withConn(func(c *Client) error { return c.CommitUpdate(token) })
}

// AbortUpdate implements DocUpdater.
func (p *Pool) AbortUpdate(token uint64) error {
	return p.withConn(func(c *Client) error { return c.AbortUpdate(token) })
}

// PutRuleSet implements Store.
func (p *Pool) PutRuleSet(docID, subject string, version uint32, sealed []byte) error {
	return p.withConn(func(c *Client) error { return c.PutRuleSet(docID, subject, version, sealed) })
}

// RuleSet implements Store.
func (p *Pool) RuleSet(docID, subject string) (sealed []byte, err error) {
	err = p.withConn(func(c *Client) error {
		sealed, err = c.RuleSet(docID, subject)
		return err
	})
	return sealed, err
}

// ListDocuments implements Store.
func (p *Pool) ListDocuments() (ids []string, err error) {
	err = p.withConn(func(c *Client) error {
		ids, err = c.ListDocuments()
		return err
	})
	return ids, err
}

var (
	_ Store            = (*Pool)(nil)
	_ BlockRangeReader = (*Pool)(nil)
	_ DocUpdater       = (*Pool)(nil)
)
