//go:build !linux || nommap

package dsp

// Portable fallback: platforms without the Madvise syscall (or builds
// without the mmap tier) take every hint as a no-op. Correctness never
// depends on advice; only the MadviseCalls counter observes the
// difference.

const madviseSupported = false

func madviseSpan(base, span []byte, advice madviseHint) bool { return false }
