package dsp

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

// ErrStoreLocked reports that a store directory is already open — by
// another process, or by another FileStore in this one. Two writers on
// one log would interleave frames and corrupt both histories, so the
// second open is refused instead.
var ErrStoreLocked = errors.New("dsp: store directory is locked by another store instance")

// dirLock is an exclusive advisory lock on a store directory, held via
// flock(2) on a LOCK file inside it (see dirlock_unix.go; platforms
// without flock get a best-effort stub). The kernel releases the lock
// when the holding process dies (kill -9 included), so a stale LOCK
// file left by a crash is reclaimed by simply locking it again — no
// pid liveness guessing. The file's contents (pid of the holder) are
// diagnostic only.
type dirLock struct {
	f *os.File
}

// acquireDirLock takes the exclusive lock or fails immediately with
// ErrStoreLocked (wrapped with the current holder, if it left a pid).
func acquireDirLock(path string) (*dirLock, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := flockExclusive(f); err != nil {
		holder := make([]byte, 64)
		n, _ := f.Read(holder)
		_ = f.Close()
		if owner := strings.TrimSpace(string(holder[:n])); owner != "" {
			return nil, fmt.Errorf("%w: %s (held by %s)", ErrStoreLocked, path, owner)
		}
		return nil, fmt.Errorf("%w: %s", ErrStoreLocked, path)
	}
	// Lock held: stamp the holder for anyone inspecting a busy or
	// crashed store. Best effort — the flock is the lock, not the text.
	_ = f.Truncate(0)
	_, _ = fmt.Fprintf(f, "pid %d", os.Getpid())
	return &dirLock{f: f}, nil
}

// release drops the lock. Closing the file releases the flock; the LOCK
// file itself stays behind (its stale pid is harmless — the next open
// re-locks it).
func (l *dirLock) release() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	return f.Close()
}
