package dsp

// The write-ahead log behind FileStore. One file of framed records:
//
//	[u32le body length][u32le CRC-32C of body][body]
//	body = [1 record type][type-specific payload]
//
// Every mutation FileStore acknowledges is a record here; the in-memory
// MemStore it serves reads from is a pure replay of the log. The frame
// CRC turns a kill -9 mid-append into a detectably torn tail: recovery
// replays records until the first frame that is short or fails its
// checksum and truncates the file there, so the store restarts on the
// longest durable prefix and appends continue from a clean boundary.
//
// Durability is batched (group commit): appends go to the file under one
// mutex, but fsync runs under a second mutex outside the first — while
// one fsync is in flight every other committer keeps appending, and the
// next fsync covers all of them with a single disk barrier. A committer
// whose offset an earlier barrier already covered returns without
// touching the disk at all.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// WAL record types. Put-document and put-ruleset carry the whole
// mutation; the begin/put-blocks/commit triple mirrors the DocUpdater
// handshake so a delta re-publish appends only its changed runs — the
// commit record is what makes the staged records meaningful on replay.
const (
	recPutDocument = 1
	recPutRuleSet  = 2
	recBeginUpdate = 3
	recPutBlocks   = 4
	recCommit      = 5
	recAbort       = 6
)

// walFrameOverhead is the per-record framing cost (length + CRC).
const walFrameOverhead = 8

// maxWalRecord bounds one record body; a longer length prefix during
// replay is treated as a torn tail, the same as a failed CRC.
const maxWalRecord = maxFrame

// crcTable is the Castagnoli polynomial (hardware-accelerated on the
// platforms this runs on).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// walWriter appends framed records to an open log file and tracks which
// prefix of the file is known durable.
type walWriter struct {
	mu       sync.Mutex // serializes appends (and orders them vs. store apply)
	f        *os.File
	appended int64 // file size after the last append (guarded by mu)
	gen      int64 // bumped by reset; offsets are only meaningful within a generation (guarded by mu)

	syncMu sync.Mutex   // serializes fsyncs; group commit happens here
	synced atomic.Int64 // bytes of the current generation known durable

	syncs         atomic.Int64 // fsync barriers actually issued
	bytesAppended atomic.Int64 // record bytes appended (frames included)
	records       atomic.Int64
	noSync        bool
}

// openWalWriter opens (creating if absent) the log for appending. size
// is the current, already-validated length of the file — replay runs
// first and truncates any torn tail before the writer takes over.
func openWalWriter(path string, size int64, noSync bool) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, err
	}
	w := &walWriter{f: f, appended: size, noSync: noSync}
	w.synced.Store(size)
	return w, nil
}

// frame wraps a record body with its length and checksum.
func frame(body []byte) []byte {
	out := make([]byte, walFrameOverhead, walFrameOverhead+len(body))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(body, crcTable))
	return append(out, body...)
}

// append writes one framed record and returns the file offset its last
// byte ends at — the offset a caller passes to syncTo for durability.
// The caller must hold w.mu (FileStore holds it across the store apply
// and the append so log order equals apply order).
func (w *walWriter) append(body []byte) (int64, error) {
	if len(body) > maxWalRecord {
		return 0, fmt.Errorf("dsp: wal record of %d bytes exceeds limit", len(body))
	}
	fr := frame(body)
	if _, err := w.f.Write(fr); err != nil {
		return 0, err
	}
	w.appended += int64(len(fr))
	w.bytesAppended.Add(int64(len(fr)))
	w.records.Add(1)
	return w.appended, nil
}

// syncTo makes everything up to offset off durable. Offsets already
// covered by a concurrent barrier return immediately — that is the
// group-commit batching. A reset (checkpoint) racing this call is
// handled by the generation check: once the log restarted, the
// caller's records live in the fsynced checkpoint image, and the
// stale offset must not pollute the new generation's high-water mark.
func (w *walWriter) syncTo(off int64) error {
	if w.noSync || w.synced.Load() >= off {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced.Load() >= off {
		return nil // an earlier barrier covered us while we queued
	}
	// Capture the appended size before the barrier: bytes written after
	// Sync is entered may not be covered by it.
	w.mu.Lock()
	cur, gen := w.appended, w.gen
	w.mu.Unlock()
	if off > cur {
		// The log is shorter than the caller's offset: a checkpoint
		// reset it since the append, absorbing the record into the
		// durable image. Nothing left to sync.
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncs.Add(1)
	w.mu.Lock()
	stale := w.gen != gen
	w.mu.Unlock()
	if !stale {
		w.synced.Store(cur)
	}
	return nil
}

// reset truncates the log to empty after a checkpoint has absorbed its
// contents. The caller must hold w.mu (no appends in flight).
func (w *walWriter) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if !w.noSync {
		if err := w.f.Sync(); err != nil {
			return err
		}
		w.syncs.Add(1)
	}
	w.appended = 0
	w.gen++
	w.synced.Store(0)
	return nil
}

func (w *walWriter) size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// statsSnapshot returns (records, appendedBytes, syncs, size) as one
// consistent point in time. Independent atomic loads could be torn
// around an in-flight append — Records counted but its bytes not yet —
// so the snapshot takes both mutexes the counters mutate under: syncMu
// first, then mu, the same order syncTo acquires them. With both held,
// no append (mu) and no barrier (syncMu; reset holds mu) can interleave
// the reads.
func (w *walWriter) statsSnapshot() (records, appendedBytes, syncs, size int64) {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records.Load(), w.bytesAppended.Load(), w.syncs.Load(), w.appended
}

func (w *walWriter) close() error { return w.f.Close() }

// replayWal scans the log, handing each intact record body to apply in
// order. It stops at the first torn frame (short header, short body,
// oversized length, or CRC mismatch), truncates the file there, and
// reports how many bytes of clean log remain. Records after a torn
// frame are unreachable by construction: nothing was acknowledged past
// an unsynced tail.
func replayWal(path string, apply func(body []byte) error) (size int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	pos := 0
	for {
		if len(data)-pos < walFrameOverhead {
			torn = pos < len(data)
			break
		}
		n := binary.LittleEndian.Uint32(data[pos : pos+4])
		want := binary.LittleEndian.Uint32(data[pos+4 : pos+8])
		if n > maxWalRecord || int(n) > len(data)-pos-walFrameOverhead {
			torn = true
			break
		}
		body := data[pos+walFrameOverhead : pos+walFrameOverhead+int(n)]
		if crc32.Checksum(body, crcTable) != want {
			torn = true
			break
		}
		if err := apply(body); err != nil {
			return 0, false, err
		}
		pos += walFrameOverhead + int(n)
	}
	if torn {
		if err := os.Truncate(path, int64(pos)); err != nil {
			return 0, false, fmt.Errorf("dsp: truncating torn wal tail: %w", err)
		}
	}
	return int64(pos), torn, nil
}
