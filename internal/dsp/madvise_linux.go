//go:build linux && !nommap

package dsp

import (
	"os"
	"syscall"
	"unsafe"
)

// Paging advice for the mmap read tier. The mapped checkpoint image is
// served straight out of the page cache; telling the kernel how it will
// be read turns first-touch major faults into readahead: WILLNEED on
// the spans a footer-driven recovery scan or a large cold batched read
// is about to walk, SEQUENTIAL on a freshly installed image whose cold
// reads arrive as forward block runs.

// madviseSupported gates the counters' expectations in tests; builds
// without the syscall (or without mmap at all) report false and every
// hint degrades to a no-op.
const madviseSupported = true

// madviseSpan issues paging advice for the part of base that span
// occupies, aligning the span start down to a page boundary (base is an
// mmap result, so its first byte is page-aligned). It reports whether
// the advice was actually issued; failures are deliberately swallowed —
// advice is an optimization, never a correctness dependency.
func madviseSpan(base, span []byte, advice madviseHint) bool {
	if len(base) == 0 || len(span) == 0 {
		return false
	}
	pg := uintptr(os.Getpagesize())
	b0 := uintptr(unsafe.Pointer(&base[0]))
	s0 := uintptr(unsafe.Pointer(&span[0]))
	if s0 < b0 || s0-b0 >= uintptr(len(base)) {
		return false // not a view into base; nothing sane to advise
	}
	off := s0 - b0
	end := off + uintptr(len(span))
	if end > uintptr(len(base)) {
		return false
	}
	off &^= pg - 1
	var sysAdvice int
	switch advice {
	case adviseWillNeed:
		sysAdvice = syscall.MADV_WILLNEED
	case adviseSequential:
		sysAdvice = syscall.MADV_SEQUENTIAL
	default:
		return false
	}
	return syscall.Madvise(base[off:end], sysAdvice) == nil
}
