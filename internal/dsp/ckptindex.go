package dsp

// The checkpoint block-index footer. A footered checkpoint image is
// the body (magic, documents, rules — readable by the heap loader,
// which never inspects trailing bytes) followed by an index section
// and a fixed tail. v2 introduced the footer over the v1 body; v3
// keeps the same footer but stores each block wire-prefixed (uvarint
// length before the payload — see the segment writer), so footer block
// refs in a v3 image point at the payload after its prefix:
//
//	index = uvarint nDocs
//	        per doc: [string docID][uvarint version][uvarint hdrOff]
//	                 [uvarint hdrLen][uvarint nBlocks]
//	                 per block: [uvarint off][uvarint len]
//	        uvarint rulesOff
//	tail  = [u32le index length][u32le CRC-32C of index][8-byte magic]
//
// All offsets are absolute file offsets. The body stays the source of
// truth: the footer only tells the mmap tier where each document's
// header and blocks live, so recovery can hand out views into the
// mapping without re-parsing (or heap-copying) full images. A missing
// or corrupt footer is never fatal — the store falls back to the heap
// loader and rewrites the image with a fresh footer.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// ckptFooterMagic terminates a footered image. Distinct from the body
// magic so a truncated body can never be mistaken for an index.
var ckptFooterMagic = []byte{'S', 'D', 'S', 'X', 'I', 'D', 'X', 2}

// ckptFooterTailLen is the fixed tail: index length, index CRC, magic.
const ckptFooterTailLen = 4 + 4 + 8

// ckptBlockRef locates one stored block inside the image.
type ckptBlockRef struct {
	off, len int64
}

// ckptDocEntry locates one document's header bytes and blocks.
type ckptDocEntry struct {
	docID   string
	version uint32
	hdrOff  int64
	hdrLen  int64
	blocks  []ckptBlockRef
}

// ckptIndex is a parsed footer. bodyEnd is where the body stops and the
// index begins — the rules section runs [rulesOff, bodyEnd).
type ckptIndex struct {
	docs     []ckptDocEntry
	rulesOff int64
	bodyEnd  int64
}

// appendCkptIndex serializes the index section plus tail for an image
// whose body is bodyLen bytes long.
func appendCkptIndex(buf []byte, docs []ckptDocEntry, rulesOff int64) []byte {
	idx := binary.AppendUvarint(nil, uint64(len(docs)))
	for i := range docs {
		d := &docs[i]
		idx = appendString(idx, d.docID)
		idx = binary.AppendUvarint(idx, uint64(d.version))
		idx = binary.AppendUvarint(idx, uint64(d.hdrOff))
		idx = binary.AppendUvarint(idx, uint64(d.hdrLen))
		idx = binary.AppendUvarint(idx, uint64(len(d.blocks)))
		for _, b := range d.blocks {
			idx = binary.AppendUvarint(idx, uint64(b.off))
			idx = binary.AppendUvarint(idx, uint64(b.len))
		}
	}
	idx = binary.AppendUvarint(idx, uint64(rulesOff))

	buf = append(buf, idx...)
	var tail [ckptFooterTailLen]byte
	binary.LittleEndian.PutUint32(tail[0:4], uint32(len(idx)))
	binary.LittleEndian.PutUint32(tail[4:8], crc32.Checksum(idx, crcTable))
	copy(tail[8:], ckptFooterMagic)
	return append(buf, tail[:]...)
}

// parseCkptIndex validates and decodes the footer of a mapped image.
// Every offset is bounds-checked against the body (the bytes before the
// index), so a corrupt footer can never direct a view outside the
// mapping; any inconsistency returns an error and the caller heap-loads
// the body instead.
func parseCkptIndex(data []byte) (*ckptIndex, error) {
	if len(data) < ckptFooterTailLen {
		return nil, fmt.Errorf("dsp: checkpoint too short for an index footer")
	}
	tail := data[len(data)-ckptFooterTailLen:]
	if string(tail[8:]) != string(ckptFooterMagic) {
		return nil, fmt.Errorf("dsp: checkpoint has no index footer")
	}
	idxLen := int64(binary.LittleEndian.Uint32(tail[0:4]))
	wantCRC := binary.LittleEndian.Uint32(tail[4:8])
	idxStart := int64(len(data)) - ckptFooterTailLen - idxLen
	if idxLen <= 0 || idxStart < int64(len(ckptMagic)) {
		return nil, fmt.Errorf("dsp: checkpoint index length %d out of range", idxLen)
	}
	idxBytes := data[idxStart : int64(len(data))-ckptFooterTailLen]
	if crc32.Checksum(idxBytes, crcTable) != wantCRC {
		return nil, fmt.Errorf("dsp: checkpoint index CRC mismatch")
	}
	bodyEnd := idxStart
	inBody := func(off, n int64) bool {
		return off >= int64(len(ckptMagic)) && n >= 0 && off <= bodyEnd && n <= bodyEnd-off
	}

	r := &wireReader{data: idxBytes}
	nDocs := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if nDocs > uint64(len(idxBytes)) { // each entry costs bytes; cap pre-allocation
		return nil, fmt.Errorf("dsp: checkpoint index claims %d documents", nDocs)
	}
	out := &ckptIndex{docs: make([]ckptDocEntry, 0, nDocs), bodyEnd: bodyEnd}
	for i := uint64(0); i < nDocs; i++ {
		var d ckptDocEntry
		d.docID = r.string()
		version := r.uvarint()
		hdrOff := r.uvarint()
		hdrLen := r.uvarint()
		nBlocks := r.uvarint()
		if r.err != nil {
			return nil, fmt.Errorf("dsp: checkpoint index document %d: %w", i, r.err)
		}
		if version > 0xFFFFFFFF || nBlocks > uint64(len(idxBytes)) {
			return nil, fmt.Errorf("dsp: checkpoint index document %d: implausible entry", i)
		}
		d.version = uint32(version)
		d.hdrOff, d.hdrLen = int64(hdrOff), int64(hdrLen)
		if !inBody(d.hdrOff, d.hdrLen) {
			return nil, fmt.Errorf("dsp: checkpoint index document %d: header outside body", i)
		}
		d.blocks = make([]ckptBlockRef, 0, nBlocks)
		for j := uint64(0); j < nBlocks; j++ {
			off := r.uvarint()
			blen := r.uvarint()
			if r.err != nil {
				return nil, fmt.Errorf("dsp: checkpoint index document %d block %d: %w", i, j, r.err)
			}
			ref := ckptBlockRef{off: int64(off), len: int64(blen)}
			if !inBody(ref.off, ref.len) {
				return nil, fmt.Errorf("dsp: checkpoint index document %d block %d outside body", i, j)
			}
			d.blocks = append(d.blocks, ref)
		}
		out.docs = append(out.docs, d)
	}
	rulesOff := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if !inBody(int64(rulesOff), 0) {
		return nil, fmt.Errorf("dsp: checkpoint index rules offset outside body")
	}
	out.rulesOff = int64(rulesOff)
	return out, nil
}
