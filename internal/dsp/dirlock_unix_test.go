//go:build unix

package dsp

// The double-open exclusion rides flock(2), which only the Unix build
// provides (the fallback degrades to a diagnostic stamp).

import (
	"errors"
	"testing"
)

// TestFileStoreLockExcludesSecondOpen: two stores must never share a
// directory — the second open fails with ErrStoreLocked and the first
// keeps working; a clean Close releases the lock for the next open.
func TestFileStoreLockExcludesSecondOpen(t *testing.T) {
	dir := t.TempDir()
	s := openFileStore(t, dir, FileStoreOptions{})
	if _, err := NewFileStore(dir); !errors.Is(err, ErrStoreLocked) {
		t.Fatalf("second open: %v, want ErrStoreLocked", err)
	}
	// The refused open must not have damaged the holder.
	if err := s.PutDocument(testContainer(t, "doc")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openFileStore(t, dir, FileStoreOptions{})
	if _, err := r.Header("doc"); err != nil {
		t.Fatalf("state lost across lock handover: %v", err)
	}
	_ = r.Close()
}
