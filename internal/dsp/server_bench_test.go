package dsp

import (
	"bytes"
	"fmt"
	"net"
	"testing"

	"repro/internal/docenc"
	"repro/internal/secure"
)

// benchContainer builds a synthetic container: blockBytes of stored
// payload per block (the store never inspects ciphertext, so repeated
// bytes are as good as real AES output for wire benchmarks).
func benchContainer(docID string, nBlocks, blockBytes int) *docenc.Container {
	plain := blockBytes - secure.MACLen
	h := docenc.Header{DocID: docID, Version: 1, BlockPlain: uint32(plain),
		PayloadLen: uint64(plain) * uint64(nBlocks)}
	c := &docenc.Container{Header: h}
	for i := 0; i < nBlocks; i++ {
		c.Blocks = append(c.Blocks, bytes.Repeat([]byte{byte(i)}, blockBytes))
	}
	return c
}

// BenchmarkWireReadBlocks measures the batched block read path end to
// end over loopback TCP — store lookup, response framing, the wire, and
// the client decode — at skip-run shapes. AllocsPerOp covers both sides
// of the connection (the server goroutines run in-process), so it is
// the number the pooled zero-copy framing is accountable to.
func BenchmarkWireReadBlocks(b *testing.B) {
	for _, shape := range []struct {
		run        int
		blockBytes int
	}{
		{8, 1024},
		{8, 4096},
		{64, 4096},
	} {
		b.Run(fmt.Sprintf("run=%d/block=%d", shape.run, shape.blockBytes), func(b *testing.B) {
			store := NewMemStore()
			const nBlocks = 64
			if err := store.PutDocument(benchContainer("bench", nBlocks, shape.blockBytes)); err != nil {
				b.Fatal(err)
			}
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			srv := NewServer(store)
			go func() { _ = srv.Serve(l) }()
			defer srv.Close()
			c, err := Dial(l.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()

			b.SetBytes(int64(shape.run * shape.blockBytes))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				at := (i * shape.run) % nBlocks
				if at+shape.run > nBlocks {
					at = 0
				}
				blocks, err := c.ReadBlocks("bench", at, shape.run)
				if err != nil {
					b.Fatal(err)
				}
				if len(blocks) != shape.run {
					b.Fatalf("got %d blocks", len(blocks))
				}
			}
		})
	}
}

// BenchmarkWireReadBlocksMapped measures the full zero-copy pipeline
// over a checkpoint-resident corpus: blocks served as pinned views into
// the mmap'd image, written with one vectored write, decoded into a
// pooled client frame. Per-block server-side heap copies: zero — compare
// allocs/op across the run shapes to see it (the delta is the client's
// per-op toll, not per-block).
func BenchmarkWireReadBlocksMapped(b *testing.B) {
	for _, shape := range []struct {
		run        int
		blockBytes int
	}{
		{8, 4096},
		{64, 4096},
	} {
		b.Run(fmt.Sprintf("run=%d/block=%d", shape.run, shape.blockBytes), func(b *testing.B) {
			dir := b.TempDir()
			// Pin this benchmark to mapped writev: the sendfile variant
			// below measures the kernel-resident path.
			store, err := NewFileStoreOptions(dir, FileStoreOptions{DisableSendfile: true})
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			const nBlocks = 64
			if err := store.PutDocument(benchContainer("bench", nBlocks, shape.blockBytes)); err != nil {
				b.Fatal(err)
			}
			if err := store.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			srv := NewServer(store)
			go func() { _ = srv.Serve(l) }()
			defer srv.Close()
			c, err := Dial(l.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()

			b.SetBytes(int64(shape.run * shape.blockBytes))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				at := (i * shape.run) % nBlocks
				if at+shape.run > nBlocks {
					at = 0
				}
				f, err := c.ReadBlocksFrame("bench", at, shape.run)
				if err != nil {
					b.Fatal(err)
				}
				if len(f.Blocks()) != shape.run {
					b.Fatalf("got %d blocks", len(f.Blocks()))
				}
				f.Release()
			}
			b.StopTimer()
			if st := store.Stats(); mmapSupported && st.MmapReads == 0 {
				b.Fatalf("benchmark did not exercise the mapped tier: %+v", st)
			}
		})
	}
}

// BenchmarkWireReadBlocksSendfile measures the kernel-resident cold
// serve path: the same checkpoint-resident corpus as
// BenchmarkWireReadBlocksMapped, but the run ships with sendfile(2) —
// page cache → socket without crossing the user mapping. Compare ns/op
// and allocs/op against the Mapped benchmark; on builds without
// sendfile the numbers converge because the frames are byte-identical
// by construction.
func BenchmarkWireReadBlocksSendfile(b *testing.B) {
	for _, shape := range []struct {
		run        int
		blockBytes int
	}{
		{8, 4096},
		{64, 4096},
	} {
		b.Run(fmt.Sprintf("run=%d/block=%d", shape.run, shape.blockBytes), func(b *testing.B) {
			dir := b.TempDir()
			store, err := NewFileStoreOptions(dir, FileStoreOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			const nBlocks = 64
			if err := store.PutDocument(benchContainer("bench", nBlocks, shape.blockBytes)); err != nil {
				b.Fatal(err)
			}
			if err := store.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			srv := NewServer(store)
			go func() { _ = srv.Serve(l) }()
			defer srv.Close()
			c, err := Dial(l.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()

			b.SetBytes(int64(shape.run * shape.blockBytes))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				at := (i * shape.run) % nBlocks
				if at+shape.run > nBlocks {
					at = 0
				}
				f, err := c.ReadBlocksFrame("bench", at, shape.run)
				if err != nil {
					b.Fatal(err)
				}
				if len(f.Blocks()) != shape.run {
					b.Fatalf("got %d blocks", len(f.Blocks()))
				}
				f.Release()
			}
			b.StopTimer()
			st := store.Stats()
			wantSendfile := SendfileCapable() &&
				shape.run*shape.blockBytes >= sendfileMinRunBytes
			if wantSendfile && st.SendfileReads == 0 {
				b.Fatalf("benchmark did not exercise the sendfile tier: %+v", st)
			}
			if st.SendfileReads > 0 {
				b.ReportMetric(float64(st.SendfileBytes)/float64(st.SendfileReads), "B/sendfile")
			}
		})
	}
}

// BenchmarkWireReadBlock measures the single-block op the serial
// terminal issues — the per-round-trip floor of the pull path.
func BenchmarkWireReadBlock(b *testing.B) {
	store := NewMemStore()
	if err := store.PutDocument(benchContainer("bench", 64, 1024)); err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(store)
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()
	c, err := Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	b.SetBytes(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReadBlock("bench", i%64); err != nil {
			b.Fatal(err)
		}
	}
}
