package dsp

import (
	"errors"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/docenc"
	"repro/internal/secure"
	"repro/internal/workload"
)

func testContainer(t *testing.T, docID string) *docenc.Container {
	t.Helper()
	doc := workload.Agenda(workload.AgendaConfig{Seed: 1, Members: 3, EventsPerMember: 2})
	c, _, err := docenc.Encode(doc, docenc.EncodeOptions{
		DocID: docID, Key: secure.KeyFromSeed(docID),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// storeContract runs the Store interface contract against any
// implementation.
func storeContract(t *testing.T, s Store) {
	t.Helper()
	c1 := testContainer(t, "doc1")
	c2 := testContainer(t, "doc2")
	if err := s.PutDocument(c1); err != nil {
		t.Fatal(err)
	}
	if err := s.PutDocument(c2); err != nil {
		t.Fatal(err)
	}

	h, err := s.Header("doc1")
	if err != nil {
		t.Fatal(err)
	}
	if h.DocID != "doc1" || h.PayloadLen != c1.Header.PayloadLen {
		t.Errorf("header changed: %+v", h)
	}
	if _, err := s.Header("nosuch"); err == nil {
		t.Error("unknown document header served")
	}

	blk, err := s.ReadBlock("doc1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(blk) != string(c1.Blocks[0]) {
		t.Error("block bytes changed")
	}
	if _, err := s.ReadBlock("doc1", len(c1.Blocks)); err == nil {
		t.Error("out-of-range block served")
	}
	if _, err := s.ReadBlock("nosuch", 0); err == nil {
		t.Error("unknown document block served")
	}

	if err := s.PutRuleSet("doc1", "alice", 3, []byte("sealed-v3")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutRuleSet("doc1", "alice", 2, []byte("sealed-v2")); err == nil {
		t.Error("an honest store must refuse stale rule sets")
	}
	got, err := s.RuleSet("doc1", "alice")
	if err != nil || string(got) != "sealed-v3" {
		t.Fatalf("RuleSet = %q, %v", got, err)
	}
	if _, err := s.RuleSet("doc1", "bob"); err == nil {
		t.Error("unknown subject's rules served")
	}

	ids, err := s.ListDocuments()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "doc1" || ids[1] != "doc2" {
		t.Errorf("ListDocuments = %v", ids)
	}

	// Batched reads must agree with per-block reads, whether the store
	// supports ranges natively or goes through the fallback.
	run, err := ReadBlockRange(s, "doc1", 0, len(c1.Blocks))
	if err != nil {
		t.Fatal(err)
	}
	if len(run) != len(c1.Blocks) {
		t.Fatalf("ReadBlockRange returned %d blocks, want %d", len(run), len(c1.Blocks))
	}
	for i, b := range run {
		if string(b) != string(c1.Blocks[i]) {
			t.Errorf("batched block %d differs from stored block", i)
		}
	}
	if br, ok := s.(BlockRangeReader); ok {
		if _, err := br.ReadBlocks("doc1", 1, len(c1.Blocks)); err == nil {
			t.Error("out-of-range batch served")
		}
		// start+count overflowing int must be rejected, not sliced.
		if _, err := br.ReadBlocks("doc1", math.MaxInt64-1, 2); err == nil {
			t.Error("overflowing batch served")
		}
		if _, err := br.ReadBlocks("nosuch", 0, 1); err == nil {
			t.Error("unknown document batch served")
		}
		empty, err := br.ReadBlocks("doc1", 0, 0)
		if err != nil || len(empty) != 0 {
			t.Errorf("empty batch = %v, %v", empty, err)
		}
	}
}

func TestMemStoreContract(t *testing.T) {
	storeContract(t, NewMemStore())
}

func TestTCPStoreContract(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewMemStore())
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	storeContract(t, client)
	if client.BytesRead() == 0 {
		t.Error("client byte accounting recorded nothing")
	}
}

func TestPoolStoreContract(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewMemStore())
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	pool, err := DialPool(l.Addr().String(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Size() != 3 {
		t.Fatalf("Size = %d", pool.Size())
	}
	storeContract(t, pool)
	if pool.BytesRead() == 0 {
		t.Error("pool byte accounting recorded nothing")
	}
}

func TestCacheStoreContract(t *testing.T) {
	storeContract(t, NewCache(NewMemStore(), 1<<20))
}

func TestSingleShardStoreContract(t *testing.T) {
	storeContract(t, NewMemStoreShards(1))
}

func TestTCPConcurrentClients(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	store := NewMemStore()
	if err := store.PutDocument(testContainer(t, "doc")); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			client, err := Dial(l.Addr().String())
			if err != nil {
				done <- err
				return
			}
			defer client.Close()
			for j := 0; j < 50; j++ {
				if _, err := client.ReadBlock("doc", j%3); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCacheHitMissInvalidation(t *testing.T) {
	mem := NewMemStore()
	cache := NewCache(mem, 1<<20)
	c1 := testContainer(t, "doc")
	if err := cache.PutDocument(c1); err != nil {
		t.Fatal(err)
	}

	first, err := cache.ReadBlock("doc", 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cache.ReadBlock("doc", 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Error("cached block differs from fetched block")
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats after repeat read = %+v, want 1 hit / 1 miss", st)
	}
	if st.Blocks != 1 || st.Bytes != int64(len(first)) {
		t.Errorf("residency = %d blocks / %d bytes, want 1 / %d", st.Blocks, st.Bytes, len(first))
	}

	// Re-publishing the document must invalidate its cached blocks.
	doc := workload.Agenda(workload.AgendaConfig{Seed: 2, Members: 4, EventsPerMember: 3})
	c2, _, err := docenc.Encode(doc, docenc.EncodeOptions{
		DocID: "doc", Key: secure.KeyFromSeed("doc-v2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.PutDocument(c2); err != nil {
		t.Fatal(err)
	}
	got, err := cache.ReadBlock("doc", 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(c2.Blocks[0]) {
		t.Error("cache served a stale block after re-publish")
	}
}

func TestCacheBatchedReadFillsGaps(t *testing.T) {
	cache := NewCache(NewMemStore(), 1<<20)
	c := testContainer(t, "doc")
	if err := cache.PutDocument(c); err != nil {
		t.Fatal(err)
	}
	n := len(c.Blocks)
	if n < 3 {
		t.Fatalf("workload produced only %d blocks", n)
	}
	// Warm one interior block, then batch the whole range: the warm block
	// is a hit, the two gaps around it are batched misses.
	if _, err := cache.ReadBlock("doc", 1); err != nil {
		t.Fatal(err)
	}
	run, err := cache.ReadBlocks("doc", 0, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range run {
		if string(b) != string(c.Blocks[i]) {
			t.Errorf("batched block %d differs", i)
		}
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != int64(n) {
		t.Errorf("stats = %+v, want 1 hit / %d misses", st, n)
	}
	if st.HitRate() <= 0 {
		t.Errorf("hit rate = %v", st.HitRate())
	}
	// The whole document is now resident.
	st2 := cache.Stats()
	if st2.Blocks != n {
		t.Errorf("resident blocks = %d, want %d", st2.Blocks, n)
	}
}

func TestCacheEviction(t *testing.T) {
	mem := NewMemStore()
	doc := workload.RandomDocument(workload.TreeConfig{
		Seed: 7, Elements: 600, MaxDepth: 7, MaxFanout: 5, TextProb: 0.7,
	})
	c, _, err := docenc.Encode(doc, docenc.EncodeOptions{
		DocID: "doc", Key: secure.KeyFromSeed("doc"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.PutDocument(c); err != nil {
		t.Fatal(err)
	}
	if len(c.Blocks) < 2*DefaultShards {
		t.Fatalf("workload produced only %d blocks; eviction needs > %d", len(c.Blocks), 2*DefaultShards)
	}
	// Budget one block per shard: with blocks spread over the shards by
	// (doc, idx), the pigeonhole guarantees evictions.
	cache := NewCache(mem, int64(len(c.Blocks[0]))*int64(DefaultShards))
	for i := 0; i < len(c.Blocks); i++ {
		if _, err := cache.ReadBlock("doc", i); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Evictions == 0 {
		t.Errorf("no evictions despite %d blocks through a %d-block budget", len(c.Blocks), DefaultShards)
	}
	if st.Blocks > 2*DefaultShards {
		t.Errorf("%d blocks resident, budget is ~%d", st.Blocks, DefaultShards)
	}
}

func TestPoolServerErrorKeepsConnection(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewMemStore())
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	pool, err := DialPool(l.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	_, err = pool.Header("nosuch")
	var srvErr ServerError
	if !errors.As(err, &srvErr) {
		t.Fatalf("want ServerError, got %v", err)
	}
	// The single pooled connection must still be serviceable.
	if err := pool.PutDocument(testContainer(t, "doc")); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.ReadBlock("doc", 0); err != nil {
		t.Fatal(err)
	}
	// A local validation error must not cost the pool its connection.
	if _, err := pool.ReadBlocks("doc", -1, 1); err == nil {
		t.Error("negative range served")
	}
	if _, err := pool.ReadBlock("doc", 0); err != nil {
		t.Fatalf("connection dropped after a local validation error: %v", err)
	}
	// Byte accounting survives Close.
	before := pool.BytesRead()
	if before == 0 {
		t.Error("no bytes recorded before Close")
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if got := pool.BytesRead(); got < before {
		t.Errorf("BytesRead fell from %d to %d across Close", before, got)
	}
}

// slowStore delays block reads so shutdown can race an in-flight request.
type slowStore struct {
	*MemStore
	started chan struct{}
	done    atomic.Bool
}

func (s *slowStore) ReadBlock(docID string, idx int) ([]byte, error) {
	close(s.started)
	time.Sleep(100 * time.Millisecond)
	b, err := s.MemStore.ReadBlock(docID, idx)
	s.done.Store(true)
	return b, err
}

func TestServerCloseWaitsForInflight(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	store := &slowStore{MemStore: NewMemStore(), started: make(chan struct{})}
	if err := store.MemStore.PutDocument(testContainer(t, "doc")); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	go func() { _ = srv.Serve(l) }()

	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	go func() { _, _ = client.ReadBlock("doc", 0) }()

	<-store.started
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if !store.done.Load() {
		t.Error("Close returned while a request was still executing")
	}
	// Close must be idempotent.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPooledConcurrentTraffic drives the full concurrent stack — pooled
// client, pipelined server, sharded store, LRU cache — from many
// goroutines; run under -race it is the data-race net for the DSP tier.
func TestPooledConcurrentTraffic(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	store := NewCache(NewMemStore(), 1<<20)
	docs := []string{"doc-a", "doc-b", "doc-c"}
	blocks := make(map[string]int, len(docs))
	for _, id := range docs {
		c := testContainer(t, id)
		if err := store.PutDocument(c); err != nil {
			t.Fatal(err)
		}
		blocks[id] = len(c.Blocks)
	}
	srv := NewServerConfig(store, ServerConfig{Workers: 8, PipelineDepth: 8})
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	pool, err := DialPool(l.Addr().String(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := docs[g%len(docs)]
			n := blocks[id]
			for i := 0; i < 40; i++ {
				switch i % 3 {
				case 0:
					if _, err := pool.ReadBlock(id, i%n); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, err := pool.ReadBlocks(id, 0, n); err != nil {
						errs <- err
						return
					}
				default:
					if _, err := pool.Header(id); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Hits == 0 {
		t.Error("concurrent traffic never hit the cache")
	}
	if pool.BytesRead() == 0 {
		t.Error("pool byte accounting recorded nothing")
	}
}

func TestMemStoreTamperHelpers(t *testing.T) {
	s := NewMemStore()
	if err := s.PutDocument(testContainer(t, "doc")); err != nil {
		t.Fatal(err)
	}
	orig, _ := s.ReadBlock("doc", 1)
	origCopy := append([]byte(nil), orig...)
	if err := s.Tamper("doc", 1, 0); err != nil {
		t.Fatal(err)
	}
	after, _ := s.ReadBlock("doc", 1)
	if string(after) == string(origCopy) {
		t.Error("Tamper changed nothing")
	}
	if err := s.Tamper("doc", 999, 0); err == nil {
		t.Error("tampering a missing block must fail")
	}
	if err := s.SwapBlocks("doc", 0, 2); err != nil {
		t.Fatal(err)
	}
	b0, _ := s.ReadBlock("doc", 0)
	if string(b0) == string(origCopy) && false {
		t.Log("(swap result depends on content)")
	}
	if err := s.SwapBlocks("doc", 0, 999); err == nil {
		t.Error("swapping a missing block must fail")
	}
}

func TestPutDocumentValidation(t *testing.T) {
	s := NewMemStore()
	if err := s.PutDocument(nil); err == nil {
		t.Error("nil container accepted")
	}
	c := testContainer(t, "doc")
	c.Blocks = c.Blocks[:len(c.Blocks)-1]
	if err := s.PutDocument(c); err == nil {
		t.Error("geometry mismatch accepted")
	}
}
