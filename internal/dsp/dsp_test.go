package dsp

import (
	"net"
	"testing"

	"repro/internal/docenc"
	"repro/internal/secure"
	"repro/internal/workload"
)

func testContainer(t *testing.T, docID string) *docenc.Container {
	t.Helper()
	doc := workload.Agenda(workload.AgendaConfig{Seed: 1, Members: 3, EventsPerMember: 2})
	c, _, err := docenc.Encode(doc, docenc.EncodeOptions{
		DocID: docID, Key: secure.KeyFromSeed(docID),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// storeContract runs the Store interface contract against any
// implementation.
func storeContract(t *testing.T, s Store) {
	t.Helper()
	c1 := testContainer(t, "doc1")
	c2 := testContainer(t, "doc2")
	if err := s.PutDocument(c1); err != nil {
		t.Fatal(err)
	}
	if err := s.PutDocument(c2); err != nil {
		t.Fatal(err)
	}

	h, err := s.Header("doc1")
	if err != nil {
		t.Fatal(err)
	}
	if h.DocID != "doc1" || h.PayloadLen != c1.Header.PayloadLen {
		t.Errorf("header changed: %+v", h)
	}
	if _, err := s.Header("nosuch"); err == nil {
		t.Error("unknown document header served")
	}

	blk, err := s.ReadBlock("doc1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(blk) != string(c1.Blocks[0]) {
		t.Error("block bytes changed")
	}
	if _, err := s.ReadBlock("doc1", len(c1.Blocks)); err == nil {
		t.Error("out-of-range block served")
	}
	if _, err := s.ReadBlock("nosuch", 0); err == nil {
		t.Error("unknown document block served")
	}

	if err := s.PutRuleSet("doc1", "alice", 3, []byte("sealed-v3")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutRuleSet("doc1", "alice", 2, []byte("sealed-v2")); err == nil {
		t.Error("an honest store must refuse stale rule sets")
	}
	got, err := s.RuleSet("doc1", "alice")
	if err != nil || string(got) != "sealed-v3" {
		t.Fatalf("RuleSet = %q, %v", got, err)
	}
	if _, err := s.RuleSet("doc1", "bob"); err == nil {
		t.Error("unknown subject's rules served")
	}

	ids, err := s.ListDocuments()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "doc1" || ids[1] != "doc2" {
		t.Errorf("ListDocuments = %v", ids)
	}
}

func TestMemStoreContract(t *testing.T) {
	storeContract(t, NewMemStore())
}

func TestTCPStoreContract(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewMemStore())
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	storeContract(t, client)
	if client.BytesRead == 0 {
		t.Error("client byte accounting recorded nothing")
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	store := NewMemStore()
	if err := store.PutDocument(testContainer(t, "doc")); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			client, err := Dial(l.Addr().String())
			if err != nil {
				done <- err
				return
			}
			defer client.Close()
			for j := 0; j < 50; j++ {
				if _, err := client.ReadBlock("doc", j%3); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestMemStoreTamperHelpers(t *testing.T) {
	s := NewMemStore()
	if err := s.PutDocument(testContainer(t, "doc")); err != nil {
		t.Fatal(err)
	}
	orig, _ := s.ReadBlock("doc", 1)
	origCopy := append([]byte(nil), orig...)
	if err := s.Tamper("doc", 1, 0); err != nil {
		t.Fatal(err)
	}
	after, _ := s.ReadBlock("doc", 1)
	if string(after) == string(origCopy) {
		t.Error("Tamper changed nothing")
	}
	if err := s.Tamper("doc", 999, 0); err == nil {
		t.Error("tampering a missing block must fail")
	}
	if err := s.SwapBlocks("doc", 0, 2); err != nil {
		t.Fatal(err)
	}
	b0, _ := s.ReadBlock("doc", 0)
	if string(b0) == string(origCopy) && false {
		t.Log("(swap result depends on content)")
	}
	if err := s.SwapBlocks("doc", 0, 999); err == nil {
		t.Error("swapping a missing block must fail")
	}
}

func TestPutDocumentValidation(t *testing.T) {
	s := NewMemStore()
	if err := s.PutDocument(nil); err == nil {
		t.Error("nil container accepted")
	}
	c := testContainer(t, "doc")
	c.Blocks = c.Blocks[:len(c.Blocks)-1]
	if err := s.PutDocument(c); err == nil {
		t.Error("geometry mismatch accepted")
	}
}
