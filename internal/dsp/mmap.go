package dsp

// The mmap read tier behind FileStore. Each segment's checkpoint image
// can be mapped read-only; blocks whose latest version is
// checkpoint-resident are then served as []byte views straight into the
// mapping, so a cold batched read travels disk page cache → writev with
// zero heap copies (the PR 6 vectored response path never copies block
// payloads, and with the mmap tier it no longer even starts from heap
// memory).
//
// Lifetime is epoch + refcount. A region starts with one reference — the
// owning segment's — and every pinned reader takes another while the
// shard read-lock is held (installMapping swaps regions under the shard
// write-lock, so an acquire always happens before the retire that could
// unmap). When a checkpoint publishes a new image, the old region is
// retired: the owner reference drops and the munmap runs when the last
// in-flight pin releases. A rename-replaced checkpoint file keeps its
// old inode alive while mapped, so a response mid-writev on the previous
// epoch reads stable bytes.

import (
	"errors"
	"os"
	"sync/atomic"
	"unsafe"
)

var (
	// errMmapUnsupported: this build (or platform) has no mapping
	// support; the store serves from heap.
	errMmapUnsupported = errors.New("dsp: mmap not supported")
	// errMmapEmpty: a zero-length file cannot be mapped.
	errMmapEmpty = errors.New("dsp: cannot map empty file")
)

// madviseHint names the paging-advice patterns the read tier uses; the
// platform files translate them to MADV_* values where they exist.
type madviseHint int

const (
	// adviseWillNeed: the span is about to be read — start readahead now
	// (recovery's footer-driven scans, large cold pinned runs).
	adviseWillNeed madviseHint = iota
	// adviseSequential: reads over this mapping arrive as forward runs —
	// aggressive readahead, early reclaim behind the cursor (freshly
	// installed checkpoint images).
	adviseSequential
)

// madviseRunBytes is the floor below which a pinned read skips the
// WILLNEED hint: a syscall per small run costs more than the faults it
// saves, and short runs are covered by the image-wide SEQUENTIAL advice
// installMapping already issued.
const madviseRunBytes = 64 << 10

// mmapRegion is one read-only file mapping with reference-counted
// lifetime.
type mmapRegion struct {
	// data is the full mapping. Views handed out are subslices of it and
	// must be treated as immutable.
	data []byte
	// f is the mapped file, kept open for the region's lifetime so the
	// sendfile serve path has a stable descriptor onto the same inode the
	// mapping reads — a rename-replaced checkpoint keeps both alive until
	// the last pin drops. Closed by unmap; nil on builds without mmap.
	f *os.File
	// wirePrefixed reports a v3 image body: every block is stored behind
	// its uvarint length prefix, exactly the opReadBlocks wire encoding,
	// so a contiguous block run (prefixes included) is one file span the
	// writer can hand to a single sendfile call.
	wirePrefixed bool
	// refs counts the owner (the segment holding this region as current)
	// plus every in-flight pin. The munmap runs when it reaches zero.
	refs atomic.Int64
}

// offsetOf returns b's byte offset inside the mapping (which equals its
// file offset — the image maps from 0), or -1 when b is not a view into
// it.
func (r *mmapRegion) offsetOf(b []byte) int64 {
	if !r.contains(b) {
		return -1
	}
	base := uintptr(unsafe.Pointer(&r.data[0]))
	off := uintptr(unsafe.Pointer(&b[0])) - base
	if off+uintptr(len(b)) > uintptr(len(r.data)) {
		return -1
	}
	return int64(off)
}

// acquire takes a pin. The caller must hold the lock under which the
// region is still reachable (the shard read-lock), so the owner
// reference cannot have dropped yet.
func (r *mmapRegion) acquire() { r.refs.Add(1) }

// release drops one reference (a pin, or the owner reference when the
// region is retired) and unmaps once nobody can read the bytes anymore.
func (r *mmapRegion) release() {
	if r.refs.Add(-1) == 0 {
		_ = r.unmap()
	}
}

// contains reports whether b points into the mapping — the tiered read
// path's classifier: a block inside the region is checkpoint-resident
// and may be pinned or must be copied; anything else is heap memory
// with ordinary GC lifetime.
func (r *mmapRegion) contains(b []byte) bool {
	if r == nil || len(r.data) == 0 || len(b) == 0 {
		return false
	}
	base := uintptr(unsafe.Pointer(&r.data[0]))
	p := uintptr(unsafe.Pointer(&b[0]))
	return p >= base && p-base < uintptr(len(r.data))
}

// span returns the subslice of the mapping covering first through last
// (both views into it, in address order), or nil when either is not —
// the shape madvise hints for a pinned block run want.
func (r *mmapRegion) span(first, last []byte) []byte {
	if !r.contains(first) || !r.contains(last) {
		return nil
	}
	base := uintptr(unsafe.Pointer(&r.data[0]))
	lo := uintptr(unsafe.Pointer(&first[0])) - base
	hi := uintptr(unsafe.Pointer(&last[0])) - base + uintptr(len(last))
	if hi <= lo || hi > uintptr(len(r.data)) {
		return nil
	}
	return r.data[lo:hi]
}

// BlockPin pins the mapped memory behind zero-copy block views handed
// out by ReadBlocksPinned. The views stay valid until Release; a pin is
// cheap (one atomic) and a zero BlockPin releases as a no-op.
type BlockPin struct{ r *mmapRegion }

// Release drops the pin. After Release the pinned views must not be
// read — the mapping may be gone.
func (p BlockPin) Release() {
	if p.r != nil {
		p.r.release()
	}
}

// PinnedBlockReader is implemented by stores that can serve a block
// range as zero-copy views into memory they own only temporarily (an
// mmap'd checkpoint image). The returned blocks stay readable until
// every pin appended to *pins is released; mapped reports whether any
// pin was taken (callers that outlive the pins must copy instead).
// Blocks not backed by such memory are returned as ordinary store-owned
// slices, exactly like ReadBlocks.
type PinnedBlockReader interface {
	ReadBlocksPinned(docID string, start, count int, pins *[]BlockPin) (blocks [][]byte, mapped bool, err error)
}

// readBlockRangePinned is ReadBlockRange for callers that can hold pins
// across their use of the blocks (the server's response writer): stores
// with a pinned path serve mapped views, everything else falls back to
// the plain range read.
func readBlockRangePinned(s Store, docID string, start, count int, pins *[]BlockPin) ([][]byte, error) {
	if pr, ok := s.(PinnedBlockReader); ok {
		blocks, _, err := pr.ReadBlocksPinned(docID, start, count, pins)
		return blocks, err
	}
	return ReadBlockRange(s, docID, start, count)
}
