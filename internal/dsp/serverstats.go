package dsp

import "encoding/json"

// ServerStats is the observability snapshot a dspd server exports over
// opStoreStats: what a store operator (or a gateway daemon fronting the
// store) needs to see to debug a tier under load. Tiers the server was
// not assembled with are simply absent from the JSON.
type ServerStats struct {
	// Documents is the number of documents the store holds.
	Documents int `json:"documents"`
	// Cache is the LRU block-cache snapshot, when a cache tier is wired.
	Cache *CacheStats `json:"cache,omitempty"`
	// Durable is the WAL/checkpoint snapshot, when the store is a
	// FileStore.
	Durable *FileStoreStats `json:"durable,omitempty"`
}

// StoreStats fetches the remote server's observability snapshot.
func (c *Client) StoreStats() (*ServerStats, error) {
	resp, err := c.roundTrip([]byte{opStoreStats})
	if err != nil {
		return nil, err
	}
	var st ServerStats
	if err := json.Unmarshal(resp, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// StoreStats fetches the remote server's observability snapshot over a
// borrowed pool connection.
func (p *Pool) StoreStats() (st *ServerStats, err error) {
	err = p.withConn(func(c *Client) error {
		st, err = c.StoreStats()
		return err
	})
	return st, err
}
