package dsp

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/docenc"
	"repro/internal/secure"
)

// mmapTestContainer builds a container with deterministic block contents
// (doc id, version and block index baked into each block) so tests can
// verify bytes across checkpoints, remaps and retirements.
func mmapTestContainer(docID string, version uint32, nBlocks int) *docenc.Container {
	const plain = 512
	h := docenc.Header{DocID: docID, Version: version, BlockPlain: plain,
		PayloadLen: uint64(plain * nBlocks)}
	c := &docenc.Container{Header: h}
	for i := 0; i < nBlocks; i++ {
		b := bytes.Repeat([]byte{byte(i)}, plain+secure.MACLen)
		copy(b, docID)
		binary.BigEndian.PutUint32(b[16:], version)
		binary.BigEndian.PutUint32(b[20:], uint32(i))
		c.Blocks = append(c.Blocks, b)
	}
	return c
}

// requireMmap skips tests that assert mapped serving on builds/platforms
// without it (nommap tag, non-unix).
func requireMmap(t *testing.T) {
	t.Helper()
	if !mmapSupported {
		t.Skip("mmap not supported in this build")
	}
}

// TestFileStoreMmapServesCheckpointBlocks: after a checkpoint the
// segment images are mapped, reads of checkpoint-resident blocks are
// counted against the mapped tier and return the right bytes, and a
// reopen recovers straight from the index footers (no heap load, no
// footer migration).
func TestFileStoreMmapServesCheckpointBlocks(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	s := openFileStore(t, dir, FileStoreOptions{})
	want := make(map[string]*docenc.Container)
	for d := 0; d < 6; d++ {
		c := mmapTestContainer(fmt.Sprintf("mmap-doc-%d", d), 1, 8)
		want[c.Header.DocID] = c
		if err := s.PutDocument(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutRuleSet("mmap-doc-0", "alice", 2, []byte("sealed-rules")); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.MappedBytes != 0 {
		t.Fatalf("mapped %d bytes before any checkpoint", st.MappedBytes)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.MappedBytes == 0 {
		t.Fatal("checkpoint did not install any mapping")
	}
	for id, c := range want {
		got, err := s.ReadBlocks(id, 0, len(c.Blocks))
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if !bytes.Equal(got[i], c.Blocks[i]) {
				t.Fatalf("%s block %d differs after checkpoint", id, i)
			}
		}
	}
	after := s.Stats()
	if after.MmapReads == 0 {
		t.Fatalf("checkpoint-resident reads not served from the mapped tier: %+v", after)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: recovery must come straight from the footers.
	r := openFileStore(t, dir, FileStoreOptions{})
	defer r.Close()
	rst := r.Stats()
	if rst.MappedBytes == 0 {
		t.Fatal("reopen did not map the checkpoint images")
	}
	if rst.FooterMigrations != 0 {
		t.Fatalf("footered images migrated again: %d", rst.FooterMigrations)
	}
	for id, c := range want {
		got, err := r.ReadBlocks(id, 0, len(c.Blocks))
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if !bytes.Equal(got[i], c.Blocks[i]) {
				t.Fatalf("%s block %d differs after reopen", id, i)
			}
		}
	}
	sealed, err := r.RuleSet("mmap-doc-0", "alice")
	if err != nil || string(sealed) != "sealed-rules" {
		t.Fatalf("rules lost across mapped recovery: %q, %v", sealed, err)
	}
}

// TestFileStorePinnedViewsSurviveRetirement: views pinned before a
// checkpoint retires their region keep reading the old bytes until the
// pin releases, and the retired region unmaps exactly when the last pin
// drops.
func TestFileStorePinnedViewsSurviveRetirement(t *testing.T) {
	requireMmap(t)
	s := openFileStore(t, t.TempDir(), FileStoreOptions{})
	defer s.Close()
	v1 := mmapTestContainer("pinned", 1, 4)
	if err := s.PutDocument(v1); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var pins []BlockPin
	views, mapped, err := s.ReadBlocksPinned("pinned", 0, 4, &pins)
	if err != nil {
		t.Fatal(err)
	}
	if !mapped || len(pins) != 1 {
		t.Fatalf("checkpoint-resident read not mapped (mapped=%v, %d pins)", mapped, len(pins))
	}
	oldRegion := pins[0].r
	if !oldRegion.contains(views[0]) {
		t.Fatal("pinned view does not point into the pinned region")
	}

	// Retire the region under the pin: publish v2 and checkpoint again.
	if err := s.PutDocument(mmapTestContainer("pinned", 2, 4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if refs := oldRegion.refs.Load(); refs != 1 {
		t.Fatalf("retired region holds %d refs under one pin, want 1", refs)
	}
	// The pinned views must still read the *old* version's bytes.
	for i, v := range views {
		if !bytes.Equal(v, v1.Blocks[i]) {
			t.Fatalf("pinned view %d changed under a checkpoint retirement", i)
		}
	}
	// Fresh reads serve the new version.
	got, err := s.ReadBlock("pinned", 0)
	if err != nil {
		t.Fatal(err)
	}
	if binary.BigEndian.Uint32(got[16:]) != 2 {
		t.Fatal("post-retirement read did not serve the new version")
	}
	pins[0].Release()
	if refs := oldRegion.refs.Load(); refs != 0 {
		t.Fatalf("released region still holds %d refs", refs)
	}
	if oldRegion.data != nil {
		t.Fatal("region not unmapped after the last pin released")
	}
}

// TestFileStoreFooterMigration: a store whose checkpoint image predates
// the index footer (v1 magic, no footer) is heap-loaded, rewritten with
// a footer once, and served mapped from then on — bytes intact.
func TestFileStoreFooterMigration(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	s := openFileStore(t, dir, FileStoreOptions{Shards: 1})
	c := mmapTestContainer("legacy-img", 3, 6)
	if err := s.PutDocument(c); err != nil {
		t.Fatal(err)
	}
	if err := s.PutRuleSet("legacy-img", "bob", 1, []byte("old-sealed")); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Rewrite the (single) image as a genuine pre-footer v1: raw
	// container images, no footer, no wire prefixes.
	path := filepath.Join(dir, segCkptName(0))
	cImg, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	legacy := append([]byte(nil), ckptMagicV1...)
	legacy = appendUvarint(legacy, 1)
	legacy = appendBytes(legacy, cImg)
	legacy = appendUvarint(legacy, 1)
	legacy = appendString(legacy, "legacy-img\x00bob")
	legacy = appendUvarint(legacy, 1)
	legacy = appendBytes(legacy, []byte("old-sealed"))
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openFileStore(t, dir, FileStoreOptions{})
	defer r.Close()
	st := r.Stats()
	if st.FooterMigrations != 1 {
		t.Fatalf("FooterMigrations = %d, want 1", st.FooterMigrations)
	}
	if st.MappedBytes == 0 {
		t.Fatal("migrated image not served mapped")
	}
	got, err := r.ReadBlocks("legacy-img", 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !bytes.Equal(got[i], c.Blocks[i]) {
			t.Fatalf("block %d differs after footer migration", i)
		}
	}
	if sealed, err := r.RuleSet("legacy-img", "bob"); err != nil || string(sealed) != "old-sealed" {
		t.Fatalf("rules lost in footer migration: %q, %v", sealed, err)
	}
	// The image on disk is now current-format: footered, wire-prefixed
	// v3 magic.
	img2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(img2[:len(ckptMagic)]) != string(ckptMagic) {
		t.Fatalf("migrated image magic = %q", img2[:len(ckptMagic)])
	}
	if _, err := parseCkptIndex(img2); err != nil {
		t.Fatalf("migrated image has no parsable footer: %v", err)
	}
}

// TestFileStoreV2ImageRewrite: a footered v2 image (raw blocks, no wire
// prefixes) still maps and serves, but opening it rewrites the image to
// the wire-prefixed v3 format once, so the sendfile tier can coalesce
// runs out of every image on disk.
func TestFileStoreV2ImageRewrite(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	s := openFileStore(t, dir, FileStoreOptions{Shards: 1})
	c := mmapTestContainer("v2-img", 3, 6)
	if err := s.PutDocument(c); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Rebuild segment 0's image as a genuine v2: raw container bytes in
	// the body, footer refs at raw payload offsets.
	raw, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	_, hdrLen, err := docenc.UnmarshalHeader(raw)
	if err != nil {
		t.Fatal(err)
	}
	body := append([]byte(nil), ckptMagicV2...)
	body = appendUvarint(body, 1)
	imgOff := int64(len(body)) + int64(uvarintLen(uint64(len(raw))))
	body = appendBytes(body, raw)
	entry := ckptDocEntry{docID: "v2-img", version: c.Header.Version,
		hdrOff: imgOff, hdrLen: int64(hdrLen)}
	off := imgOff + int64(hdrLen)
	for _, b := range c.Blocks {
		entry.blocks = append(entry.blocks, ckptBlockRef{off: off, len: int64(len(b))})
		off += int64(len(b))
	}
	rulesOff := int64(len(body))
	body = appendUvarint(body, 0)
	img := appendCkptIndex(body, []ckptDocEntry{entry}, rulesOff)
	path := filepath.Join(dir, segCkptName(0))
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openFileStore(t, dir, FileStoreOptions{})
	defer r.Close()
	st := r.Stats()
	if st.FooterMigrations != 1 {
		t.Fatalf("FooterMigrations = %d, want 1 (v2 rewrite)", st.FooterMigrations)
	}
	if st.MappedBytes == 0 {
		t.Fatal("rewritten image not served mapped")
	}
	got, err := r.ReadBlocks("v2-img", 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !bytes.Equal(got[i], c.Blocks[i]) {
			t.Fatalf("block %d differs after v2 rewrite", i)
		}
	}
	img2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !ckptWirePrefixed(img2) {
		t.Fatalf("rewritten image magic = %q, want wire-prefixed v3", img2[:len(ckptMagic)])
	}
	if _, err := parseCkptIndex(img2); err != nil {
		t.Fatalf("rewritten image has no parsable footer: %v", err)
	}
}

// TestFileStoreDisableMmap: the opt-out serves everything from heap (no
// mappings, no pins) while writing the identical on-disk format, so a
// later mmap-enabled open of the same directory maps it.
func TestFileStoreDisableMmap(t *testing.T) {
	dir := t.TempDir()
	s := openFileStore(t, dir, FileStoreOptions{DisableMmap: true})
	c := mmapTestContainer("nomap", 1, 5)
	if err := s.PutDocument(c); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.MappedBytes != 0 || st.MmapReads != 0 {
		t.Fatalf("DisableMmap store mapped anyway: %+v", st)
	}
	var pins []BlockPin
	got, mapped, err := s.ReadBlocksPinned("nomap", 0, 5, &pins)
	if err != nil {
		t.Fatal(err)
	}
	if mapped || len(pins) != 0 {
		t.Fatalf("DisableMmap pinned read reported mapped (%d pins)", len(pins))
	}
	for i := range got {
		if !bytes.Equal(got[i], c.Blocks[i]) {
			t.Fatalf("block %d differs with mmap disabled", i)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !mmapSupported {
		return
	}
	r := openFileStore(t, dir, FileStoreOptions{})
	defer r.Close()
	if st := r.Stats(); st.MappedBytes == 0 || st.FooterMigrations != 0 {
		t.Fatalf("image written by a DisableMmap store did not map cleanly: %+v", st)
	}
	got2, err := r.ReadBlocks("nomap", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got2 {
		if !bytes.Equal(got2[i], c.Blocks[i]) {
			t.Fatalf("block %d differs across the tier switch", i)
		}
	}
}

// TestFileStoreUnpinnedReadsStableAcrossRemap: the plain Store contract
// promises indefinitely valid blocks; bytes handed out before a burst of
// republish+checkpoint cycles must not change underneath the caller.
func TestFileStoreUnpinnedReadsStableAcrossRemap(t *testing.T) {
	requireMmap(t)
	s := openFileStore(t, t.TempDir(), FileStoreOptions{})
	defer s.Close()
	v1 := mmapTestContainer("stable", 1, 4)
	if err := s.PutDocument(v1); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	held, err := s.ReadBlocks("stable", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint32(2); v < 6; v++ {
		if err := s.PutDocument(mmapTestContainer("stable", v, 4)); err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	for i := range held {
		if !bytes.Equal(held[i], v1.Blocks[i]) {
			t.Fatalf("unpinned block %d mutated across remaps", i)
		}
	}
}

// TestCacheSkipsMappedFills: a pinned range read through the cache
// serves mapped views without inserting them into the LRU (an entry
// would outlive the pin), while the copying path still populates it.
func TestCacheSkipsMappedFills(t *testing.T) {
	requireMmap(t)
	s := openFileStore(t, t.TempDir(), FileStoreOptions{})
	defer s.Close()
	c := mmapTestContainer("cached", 1, 6)
	if err := s.PutDocument(c); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	cache := NewCache(s, 1<<20)
	var pins []BlockPin
	got, mapped, err := cache.ReadBlocksPinned("cached", 0, 6, &pins)
	if err != nil {
		t.Fatal(err)
	}
	if !mapped {
		t.Fatal("pinned read through the cache lost the mapping")
	}
	for i := range got {
		if !bytes.Equal(got[i], c.Blocks[i]) {
			t.Fatalf("block %d differs through the cache", i)
		}
	}
	if st := cache.Stats(); st.Blocks != 0 {
		t.Fatalf("mapped fill inserted %d blocks into the LRU", st.Blocks)
	}
	for _, p := range pins {
		p.Release()
	}
	// The plain path rides the pinned tier too: a mapped fill is copied
	// out of the mapping once for the caller and NOT retained in the LRU
	// — the page cache re-serves those blocks for free, so the capacity
	// is kept for blocks that are expensive to refetch.
	plain1, err := cache.ReadBlocks("cached", 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain1 {
		if !bytes.Equal(plain1[i], c.Blocks[i]) {
			t.Fatalf("plain fill block %d differs", i)
		}
	}
	if st := cache.Stats(); st.Blocks != 0 {
		t.Fatalf("mapped plain fill cached %d blocks, want 0", st.Blocks)
	}
	// The caller got private copies, not mapped views: scribbling on
	// them must not reach the store.
	plain1[0][0] ^= 0xff
	plain2, err := cache.ReadBlocks("cached", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain2[0], c.Blocks[0]) {
		t.Fatal("plain fill handed out a view into shared memory")
	}
	// A heap-resident document (committed after the checkpoint, so not
	// in any mapped image) still populates the LRU as before.
	heap := mmapTestContainer("heap-doc", 1, 4)
	if err := s.PutDocument(heap); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.ReadBlocks("heap-doc", 0, 4); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Blocks != 4 {
		t.Fatalf("heap fill cached %d blocks, want 4", st.Blocks)
	}
	// And the now-resident blocks serve pinned reads as plain heap hits.
	pins = pins[:0]
	_, mapped, err = cache.ReadBlocksPinned("heap-doc", 0, 4, &pins)
	if err != nil {
		t.Fatal(err)
	}
	if mapped || len(pins) != 0 {
		t.Fatal("cache hits must not report mapped")
	}
}

// TestMadviseCounter checks that the read tier issues paging advice at
// the three advertised moments — image install after a checkpoint,
// footer-driven recovery scan, large cold pinned runs — and that the
// counter stays zero where the platform (or the nommap build) has no
// madvise. Advice is best-effort by design, but on Linux over a real
// tmpdir the calls must succeed.
func TestMadviseCounter(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	s := openFileStore(t, dir, FileStoreOptions{})
	// 192 blocks x ~520 stored bytes ≈ 97 KiB: over the WILLNEED floor.
	c := mmapTestContainer("advised", 1, 192)
	if err := s.PutDocument(c); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	afterInstall := s.Stats().MadviseCalls
	if madviseSupported && afterInstall == 0 {
		t.Fatal("installing a mapped image issued no SEQUENTIAL advice")
	}
	if !madviseSupported && afterInstall != 0 {
		t.Fatalf("madvise unsupported but %d calls counted", afterInstall)
	}

	var pins []BlockPin
	_, mapped, err := s.ReadBlocksPinned("advised", 0, 192, &pins)
	if err != nil {
		t.Fatal(err)
	}
	afterRead := s.Stats().MadviseCalls
	if madviseSupported {
		if !mapped {
			t.Fatal("checkpointed blocks not served mapped")
		}
		if afterRead <= afterInstall {
			t.Fatal("a large cold pinned run issued no WILLNEED advice")
		}
	}
	// A run under the floor must not spend a syscall.
	if _, _, err := s.ReadBlocksPinned("advised", 0, 4, &pins); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().MadviseCalls; got != afterRead {
		t.Fatalf("a %d-block run advised anyway (%d -> %d calls)", 4, afterRead, got)
	}
	for _, p := range pins {
		p.Release()
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery maps the image back and WILLNEEDs it for the footer scan.
	s2 := openFileStore(t, dir, FileStoreOptions{})
	defer s2.Close()
	if got := s2.Stats().MadviseCalls; madviseSupported && got == 0 {
		t.Fatal("recovery scan issued no WILLNEED advice")
	}
	blocks, err := s2.ReadBlocks("advised", 0, 192)
	if err != nil {
		t.Fatal(err)
	}
	for i := range blocks {
		if !bytes.Equal(blocks[i], c.Blocks[i]) {
			t.Fatalf("block %d differs after advised recovery", i)
		}
	}
}
