package dsp

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"testing"
)

// sendfileRig is a checkpointed FileStore corpus behind a real TCP
// server — the only conn type whose writer can attempt sendfile.
type sendfileRig struct {
	store *FileStore
	srv   *Server
	addr  string
}

func newSendfileRig(t testing.TB, opts FileStoreOptions, docID string, nBlocks, blockBytes int) *sendfileRig {
	t.Helper()
	store, err := NewFileStoreOptions(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.PutDocument(benchContainer(docID, nBlocks, blockBytes)); err != nil {
		t.Fatal(err)
	}
	if err := store.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	// Wire the durable tier into opStoreStats the way dspd does, so the
	// lockstep test exercises the same surface sdsctl reads.
	srv.Stats = func() ServerStats {
		var st ServerStats
		if ids, err := store.ListDocuments(); err == nil {
			st.Documents = len(ids)
		}
		ds := store.Stats()
		st.Durable = &ds
		return st
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() {
		_ = srv.Close()
		_ = store.Close()
	})
	return &sendfileRig{store: store, srv: srv, addr: l.Addr().String()}
}

// framedReadBlocksReq encodes one opReadBlocks request as a full frame.
func framedReadBlocksReq(docID string, start, count int) []byte {
	body := readBlocksReq(docID, start, count)
	frame := make([]byte, 4, 4+len(body))
	binary.BigEndian.PutUint32(frame, uint32(len(body)))
	return append(frame, body...)
}

// rawRoundTrip sends one pre-encoded request on conn and returns the raw
// response frame, length prefix stripped.
func rawRoundTrip(t *testing.T, conn net.Conn, req []byte) []byte {
	t.Helper()
	if _, err := conn.Write(req); err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, binary.BigEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(conn, frame); err != nil {
		t.Fatal(err)
	}
	return frame
}

func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn
}

// requireSendfile skips tests that need the store to produce file runs
// at all (linux without the nosendfile tag, mmap on).
func requireSendfile(t *testing.T) {
	t.Helper()
	requireMmap(t)
	if !SendfileCapable() {
		t.Skip("sendfile not supported in this build")
	}
}

// setSendfileOverride installs a test double for the sendfile syscall
// and restores the real one when the test ends.
func setSendfileOverride(t *testing.T, fn func(w io.Writer, span []byte) (int64, bool, error)) {
	t.Helper()
	testSendfileOverride = fn
	t.Cleanup(func() { testSendfileOverride = nil })
}

// TestSendfileServesColdRun: a cold 64-block batched read off a
// checkpointed corpus travels the sendfile tier — at least 90% of the
// wire payload leaves through sendfile(2), and the client still decodes
// the exact stored bytes.
func TestSendfileServesColdRun(t *testing.T) {
	requireSendfile(t)
	const nBlocks, blockBytes = 64, 4096
	rig := newSendfileRig(t, FileStoreOptions{}, "cold", nBlocks, blockBytes)

	c, err := Dial(rig.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	blocks, err := c.ReadBlocks("cold", 0, nBlocks)
	if err != nil {
		t.Fatal(err)
	}
	want := benchContainer("cold", nBlocks, blockBytes)
	for i := range blocks {
		if !bytes.Equal(blocks[i], want.Blocks[i]) {
			t.Fatalf("block %d differs over the sendfile path", i)
		}
	}

	st := rig.store.Stats()
	if st.SendfileReads == 0 {
		t.Fatalf("cold run did not use sendfile: %+v", st)
	}
	// Wire payload of the run: every stored block plus its varint prefix.
	var wire int64
	for _, b := range want.Blocks {
		wire += int64(uvarintLen(uint64(len(b))) + len(b))
	}
	if st.SendfileBytes < wire*9/10 {
		t.Fatalf("sendfile moved %d of %d wire bytes (< 90%%)", st.SendfileBytes, wire)
	}
	if st.SendfileFallbacks != 0 {
		t.Fatalf("unexpected fallbacks on a healthy connection: %+v", st)
	}
}

// TestSendfileByteIdentity: the same corpus served with the sendfile
// tier on, with it disabled, and with a connection latched back to
// writev mid-stream produces byte-identical response frames.
func TestSendfileByteIdentity(t *testing.T) {
	requireMmap(t)
	const nBlocks, blockBytes = 64, 4096
	on := newSendfileRig(t, FileStoreOptions{}, "ident", nBlocks, blockBytes)
	off := newSendfileRig(t, FileStoreOptions{DisableSendfile: true}, "ident", nBlocks, blockBytes)

	req := framedReadBlocksReq("ident", 0, nBlocks)
	fromOn := rawRoundTrip(t, dialRaw(t, on.addr), req)
	fromOff := rawRoundTrip(t, dialRaw(t, off.addr), req)
	if !bytes.Equal(fromOn, fromOff) {
		t.Fatalf("sendfile frame (%d bytes) differs from writev frame (%d bytes)",
			len(fromOn), len(fromOff))
	}

	// A connection that latches mid-response (kernel refusal after the
	// flush already started) must still emit the same frame.
	if SendfileCapable() {
		setSendfileOverride(t, func(w io.Writer, span []byte) (int64, bool, error) {
			return 0, true, nil // refuse outright: span rides the fallback write
		})
		latched := rawRoundTrip(t, dialRaw(t, on.addr), req)
		if !bytes.Equal(latched, fromOff) {
			t.Fatal("latched-connection frame differs from writev frame")
		}
	}
}

// TestSendfileShortWriteResumes: a sendfile that delivers only part of
// the span (then latches) must resume the fallback at the exact byte
// offset — the peer sees one well-formed, byte-identical frame — and
// count the fallback.
func TestSendfileShortWriteResumes(t *testing.T) {
	requireSendfile(t)
	const nBlocks, blockBytes = 64, 4096
	rig := newSendfileRig(t, FileStoreOptions{}, "short", nBlocks, blockBytes)
	req := framedReadBlocksReq("short", 0, nBlocks)
	want := rawRoundTrip(t, dialRaw(t, rig.addr), req)

	var calls atomic.Int64
	setSendfileOverride(t, func(w io.Writer, span []byte) (int64, bool, error) {
		calls.Add(1)
		half := int64(len(span) / 2)
		n, err := w.Write(span[:half])
		return int64(n), true, err // deliver half, then refuse
	})
	conn := dialRaw(t, rig.addr)
	got := rawRoundTrip(t, conn, req)
	if !bytes.Equal(got, want) {
		t.Fatal("short-write resume produced a different frame")
	}
	if calls.Load() != 1 {
		t.Fatalf("override called %d times, want 1", calls.Load())
	}
	// The refusal latched this connection: the next request on it must
	// not attempt sendfile again.
	got2 := rawRoundTrip(t, conn, req)
	if !bytes.Equal(got2, want) {
		t.Fatal("post-latch frame differs")
	}
	if calls.Load() != 1 {
		t.Fatalf("latched connection attempted sendfile again (%d calls)", calls.Load())
	}
	st := rig.store.Stats()
	if st.SendfileFallbacks == 0 {
		t.Fatalf("short write not counted as a fallback: %+v", st)
	}
}

// TestSendfileFatalErrorReleasesPins: a connection that dies mid-flush
// (fatal sendfile error) must release every pin exactly once — the
// region refcount returns to its owner-only baseline and a checkpoint
// retirement can still unmap it.
func TestSendfileFatalErrorReleasesPins(t *testing.T) {
	requireSendfile(t)
	const nBlocks, blockBytes = 64, 4096
	rig := newSendfileRig(t, FileStoreOptions{}, "fatal", nBlocks, blockBytes)

	setSendfileOverride(t, func(w io.Writer, span []byte) (int64, bool, error) {
		// Deliver a prefix, then kill the transfer: the writer must tear
		// the connection down without double-releasing the response.
		n, _ := w.Write(span[:10])
		return int64(n), false, fmt.Errorf("injected: peer vanished")
	})
	conn := dialRaw(t, rig.addr)
	if _, err := conn.Write(framedReadBlocksReq("fatal", 0, nBlocks)); err != nil {
		t.Fatal(err)
	}
	// The server aborts the flush and closes the connection; drain until
	// we observe it.
	if _, err := io.Copy(io.Discard, conn); err != nil {
		t.Fatalf("draining broken connection: %v", err)
	}
	// Close the server (waits for the handler, hence for the writer's
	// release path), then check the region holds only its owner ref.
	if err := rig.srv.Close(); err != nil {
		t.Fatal(err)
	}
	for _, seg := range rig.store.segs {
		if seg.region == nil {
			continue
		}
		if refs := seg.region.refs.Load(); refs != 1 {
			t.Fatalf("segment %d region holds %d refs after broken flush, want 1 (owner)", seg.idx, refs)
		}
	}
}

// TestSendfileDisabledProducesNoRuns: the DisableSendfile opt-out (and
// the implied opt-out when mmap is off) must keep the dispatch path on
// plain pinned reads — no file runs reach the response.
func TestSendfileDisabledProducesNoRuns(t *testing.T) {
	requireMmap(t)
	for _, opts := range []FileStoreOptions{
		{DisableSendfile: true},
		{DisableMmap: true},
	} {
		store, err := NewFileStoreOptions(t.TempDir(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.PutDocument(benchContainer("noruns", 64, 4096)); err != nil {
			t.Fatal(err)
		}
		if err := store.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		var pins []BlockPin
		var runs []wireRun
		if _, err := store.readBlocksWire("noruns", 0, 64, &pins, &runs); err != nil {
			t.Fatal(err)
		}
		if len(runs) != 0 {
			t.Fatalf("opts %+v produced %d file runs", opts, len(runs))
		}
		for _, p := range pins {
			p.Release()
		}
		_ = store.Close()
	}
}

// TestSendfileRunDetection: runs must cover exactly the contiguous
// checkpoint-resident stretch, skip sub-threshold stretches, and carry
// wire-exact spans (each block's varint prefix followed by its bytes).
func TestSendfileRunDetection(t *testing.T) {
	requireSendfile(t)
	store, err := NewFileStoreOptions(t.TempDir(), FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	const nBlocks, blockBytes = 64, 4096
	if err := store.PutDocument(benchContainer("runs", nBlocks, blockBytes)); err != nil {
		t.Fatal(err)
	}
	if err := store.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	var pins []BlockPin
	var runs []wireRun
	blocks, err := store.readBlocksWire("runs", 0, nBlocks, &pins, &runs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, p := range pins {
			p.Release()
		}
	}()
	if len(runs) != 1 {
		t.Fatalf("contiguous corpus produced %d runs, want 1", len(runs))
	}
	run := runs[0]
	if run.Start != 0 || run.Count != nBlocks {
		t.Fatalf("run covers [%d,+%d), want [0,+%d)", run.Start, run.Count, nBlocks)
	}
	if run.File == nil || run.Stats == nil {
		t.Fatal("run missing file or stats sink")
	}
	// The span is the wire encoding of its blocks.
	var wire []byte
	for i := run.Start; i < run.Start+run.Count; i++ {
		wire = binary.AppendUvarint(wire, uint64(len(blocks[i])))
		wire = append(wire, blocks[i]...)
	}
	if !bytes.Equal(run.Span, wire) {
		t.Fatalf("run span (%d bytes) is not the wire encoding (%d bytes)", len(run.Span), len(wire))
	}

	// A sub-threshold read stays off the sendfile path entirely.
	pins, runs = pins[:len(pins):len(pins)], nil
	small := sendfileMinRunBytes/blockBytes - 1
	if _, err := store.readBlocksWire("runs", 0, small, &pins, &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 0 {
		t.Fatalf("%d-block read (below threshold) produced %d runs", small, len(runs))
	}
}

// TestSendfileStatsLockstep: the operator surfaces cannot drift — the
// wire StoreStats snapshot carries the same Sendfile counters the
// in-process Stats() reports, under the exact field names the JSON
// surface (sdsctl stats) prints.
func TestSendfileStatsLockstep(t *testing.T) {
	requireMmap(t)
	const nBlocks, blockBytes = 64, 4096
	rig := newSendfileRig(t, FileStoreOptions{}, "lockstep", nBlocks, blockBytes)
	c, err := Dial(rig.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.ReadBlocks("lockstep", 0, nBlocks); err != nil {
		t.Fatal(err)
	}

	remote, err := c.StoreStats()
	if err != nil {
		t.Fatal(err)
	}
	if remote.Durable == nil {
		t.Fatal("FileStore-backed server reported no durable stats")
	}
	local := rig.store.Stats()
	if remote.Durable.SendfileReads != local.SendfileReads ||
		remote.Durable.SendfileBytes != local.SendfileBytes ||
		remote.Durable.SendfileFallbacks != local.SendfileFallbacks {
		t.Fatalf("wire stats %+v drifted from local %+v", remote.Durable, local)
	}
	if SendfileCapable() && remote.Durable.SendfileReads == 0 {
		t.Fatal("capable build served the cold run without sendfile")
	}

	// The JSON surface must expose the counters by name (no tags may
	// rename or drop them) — sdsctl prints exactly this marshalling.
	raw, err := json.Marshal(remote.Durable)
	if err != nil {
		t.Fatal(err)
	}
	var fields map[string]any
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"SendfileReads", "SendfileBytes", "SendfileFallbacks"} {
		if _, ok := fields[key]; !ok {
			t.Fatalf("stats JSON lost %s: %s", key, raw)
		}
	}
}

// TestSendfileRetirementKeepsFileAlive: retiring a checkpoint epoch
// while a response still pins the old region must keep the old *file*
// open until the pin drops — a file run resolved before the retirement
// stays readable (sendfile reads the inode, not the path).
func TestSendfileRetirementKeepsFileAlive(t *testing.T) {
	requireSendfile(t)
	store, err := NewFileStoreOptions(t.TempDir(), FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	const nBlocks, blockBytes = 64, 4096
	if err := store.PutDocument(benchContainer("epoch", nBlocks, blockBytes)); err != nil {
		t.Fatal(err)
	}
	if err := store.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	var pins []BlockPin
	var runs []wireRun
	if _, err := store.readBlocksWire("epoch", 0, nBlocks, &pins, &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(runs))
	}
	oldFile := runs[0].File

	// New version, new checkpoint: the old epoch's image is replaced on
	// disk and its region retired — but our pin holds it.
	if err := store.PutDocument(benchContainer("epoch", nBlocks, blockBytes)); err != nil {
		t.Fatal(err)
	}
	if err := store.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// The old file descriptor still serves the run's bytes.
	buf := make([]byte, len(runs[0].Span))
	if _, err := oldFile.ReadAt(buf, runs[0].Off); err != nil {
		t.Fatalf("retired epoch's file unreadable while pinned: %v", err)
	}
	if !bytes.Equal(buf, runs[0].Span) {
		t.Fatal("retired epoch's file bytes differ from the mapped span")
	}

	for _, p := range pins {
		p.Release()
	}
	// With the last pin gone the region unmapped and closed the file.
	if _, err := oldFile.ReadAt(buf[:1], 0); err == nil {
		t.Fatal("old checkpoint file still open after the last pin released")
	}
}
