package dsp

// Cross-segment group commit. Each segment's walWriter already
// collapses concurrent barriers on its own file, but a FileStore spread
// over N segments still pays one fsync per dirty segment per commit:
// eight writers hitting eight segments issue eight barriers even though
// the disk could absorb them together. The groupCommitter turns
// durability waits into rounds: committers register the (writer,
// offset) they need durable and block; a dedicated syncer drains one
// round at a time, issuing a single fsync per dirty segment that covers
// every committer who joined. While a round's fsyncs are in flight,
// arriving committers accumulate into the next round — under load the
// batch grows and fsyncs-per-commit falls, with no timers and no added
// latency when the store is idle (a lone committer's round starts
// immediately).

import (
	"sync"
	"sync/atomic"
)

// syncRound is one batch of durability waits: the highest offset needed
// per writer, and the per-writer outcome once the barriers ran.
type syncRound struct {
	offs map[*walWriter]int64
	errs map[*walWriter]error
	done chan struct{}
}

// groupCommitter batches durability barriers across WAL segments.
type groupCommitter struct {
	mu      sync.Mutex
	next    *syncRound // accumulating round, nil when none pending
	stopped bool

	wake chan struct{} // 1-buffered doorbell for the syncer
	quit chan struct{}
	done chan struct{}

	// waits counts commits served through rounds; rounds counts rounds
	// executed. waits/rounds is the achieved batching factor. Both
	// mutate only under mu — a waiter is counted in the same critical
	// section that registers it, and a round is counted when drain pops
	// it — so statsSnapshot can read a consistent pair in which
	// waits >= rounds always holds (every popped round had at least one
	// registered-and-counted waiter).
	waits  atomic.Int64
	rounds atomic.Int64

	// testRoundGate, when set, runs at the head of every round — tests
	// use it to hold a round open while more committers pile into the
	// next one. Set before the first wait().
	testRoundGate func()
}

func newGroupCommitter() *groupCommitter {
	gc := &groupCommitter{
		wake: make(chan struct{}, 1),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go gc.run()
	return gc
}

// wait blocks until offset off of w's log is durable, sharing fsync
// barriers with every other commit in the same round.
func (gc *groupCommitter) wait(w *walWriter, off int64) error {
	// Already covered (or a NoSync store): no round needed.
	if w.noSync || w.synced.Load() >= off {
		return nil
	}
	gc.mu.Lock()
	if gc.stopped {
		gc.mu.Unlock()
		return w.syncTo(off)
	}
	r := gc.next
	if r == nil {
		r = &syncRound{offs: make(map[*walWriter]int64), done: make(chan struct{})}
		gc.next = r
	}
	if off > r.offs[w] {
		r.offs[w] = off
	}
	gc.waits.Add(1)
	gc.mu.Unlock()
	select {
	case gc.wake <- struct{}{}:
	default:
	}
	<-r.done
	return r.errs[w]
}

// run is the syncer: it drains pending rounds until stopped, then
// drains one final time so no waiter is left blocked.
func (gc *groupCommitter) run() {
	defer close(gc.done)
	for {
		select {
		case <-gc.wake:
			gc.drain()
		case <-gc.quit:
			gc.drain()
			return
		}
	}
}

// drain executes rounds until none is pending. Arrivals during a
// round's barriers form the next round, so consecutive iterations here
// are where the batching pays off.
func (gc *groupCommitter) drain() {
	for {
		gc.mu.Lock()
		r := gc.next
		gc.next = nil
		if r != nil {
			gc.rounds.Add(1)
		}
		gc.mu.Unlock()
		if r == nil {
			return
		}
		gc.runRound(r)
	}
}

// runRound issues the round's barriers — one syncTo per dirty segment,
// in parallel since the segments are separate files — and releases the
// waiters with their writer's outcome.
func (gc *groupCommitter) runRound(r *syncRound) {
	if gc.testRoundGate != nil {
		gc.testRoundGate()
	}
	type result struct {
		w   *walWriter
		err error
	}
	results := make([]result, 0, len(r.offs))
	for w := range r.offs {
		results = append(results, result{w: w})
	}
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(res *result) {
			defer wg.Done()
			res.err = res.w.syncTo(r.offs[res.w])
		}(&results[i])
	}
	wg.Wait()
	r.errs = make(map[*walWriter]error, len(results))
	for _, res := range results {
		r.errs[res.w] = res.err
	}
	close(r.done)
}

// statsSnapshot reads (waits, rounds) as one consistent pair under the
// mutex both counters mutate under.
func (gc *groupCommitter) statsSnapshot() (waits, rounds int64) {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.waits.Load(), gc.rounds.Load()
}

// stop shuts the syncer down after a final drain; wait() calls arriving
// later fall back to a direct per-segment barrier.
func (gc *groupCommitter) stop() {
	gc.mu.Lock()
	if gc.stopped {
		gc.mu.Unlock()
		<-gc.done
		return
	}
	gc.stopped = true
	gc.mu.Unlock()
	close(gc.quit)
	<-gc.done
}
