//go:build unix && !nommap

package dsp

import (
	"os"
	"syscall"
)

// mmapSupported selects the tiered read path at store open. The nommap
// build tag forces the portable fallback on platforms that do have mmap
// — CI runs the dsp tests both ways.
const mmapSupported = true

// mapFile maps path read-only in its entirety. The returned region
// holds its single owner reference; an empty file is reported as
// errMmapEmpty (mmap of length zero is invalid) and callers fall back
// to the heap loader's handling. The file stays open for the region's
// lifetime — the sendfile tier serves from the same inode the mapping
// reads, so both retire together when the last pin drops.
func mapFile(path string) (*mmapRegion, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		_ = f.Close()
		return nil, errMmapEmpty
	}
	if st.Size() != int64(int(st.Size())) {
		_ = f.Close()
		return nil, errMmapUnsupported // larger than the address space
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	r := &mmapRegion{data: data, f: f}
	r.refs.Store(1)
	return r, nil
}

func (r *mmapRegion) unmap() error {
	data := r.data
	r.data = nil
	if r.f != nil {
		_ = r.f.Close()
		r.f = nil
	}
	return syscall.Munmap(data)
}
