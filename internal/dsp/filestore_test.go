package dsp

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/docenc"
	"repro/internal/secure"
	"repro/internal/workload"
	"repro/internal/xmlstream"
)

// openFileStore opens a FileStore in dir, failing the test on error.
func openFileStore(t *testing.T, dir string, opts FileStoreOptions) *FileStore {
	t.Helper()
	s, err := NewFileStoreOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// crash abandons the store without checkpoint or final sync — the
// in-process stand-in for a process death (the real one is exercised by
// TestFileStoreCrashRecovery, which SIGKILLs a child). The background
// checkpointer is stopped (a dead process runs nothing) and the
// directory lock released (the kernel would have done it).
func crash(s *FileStore) {
	s.stopCheckpointWorker()
	for _, seg := range s.segs {
		_ = seg.wal.close()
	}
	_ = s.lock.release()
}

// segForDoc is the segment index docID routes to in a store of n
// segments — tests use it to corrupt exactly the log that holds a
// document's history.
func segForDoc(docID string, n int) int {
	return int(shardHash(docID, 0) % uint32(n))
}

// appendRaw appends raw bytes to one segment's log file, simulating
// what a dying process left behind.
func appendRaw(t *testing.T, dir string, seg int, raw []byte) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, segWalName(seg)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileStoreContract(t *testing.T) {
	storeContract(t, openFileStore(t, t.TempDir(), FileStoreOptions{}))
}

// TestFileStoreRecoversAcrossReopen: documents, rule sets and a delta
// re-publish all survive an abrupt stop (no checkpoint, no clean
// close) byte for byte.
func TestFileStoreRecoversAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openFileStore(t, dir, FileStoreOptions{})

	key := secure.KeyFromSeed("durable")
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 51, Patients: 6, VisitsPerPatient: 2})
	opts := docenc.EncodeOptions{DocID: "d", Key: key, BlockPlain: 128, MinSkipBytes: 32}
	old, _, err := docenc.Encode(doc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutDocument(old); err != nil {
		t.Fatal(err)
	}
	if err := s.PutRuleSet("d", "alice", 2, []byte("sealed")); err != nil {
		t.Fatal(err)
	}
	delta, _, err := docenc.DiffEncode(mutateTree(doc, 9), opts, old)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyDelta(s, delta); err != nil {
		t.Fatal(err)
	}
	want, err := delta.Apply(old)
	if err != nil {
		t.Fatal(err)
	}
	crash(s)

	r := openFileStore(t, dir, FileStoreOptions{})
	h, err := r.Header("d")
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != old.Header.Version+1 {
		t.Fatalf("recovered version %d, want %d", h.Version, old.Header.Version+1)
	}
	blocks, err := r.ReadBlocks("d", 0, h.NumBlocks())
	if err != nil {
		t.Fatal(err)
	}
	for i := range blocks {
		if !bytes.Equal(blocks[i], want.Blocks[i]) {
			t.Fatalf("recovered block %d differs", i)
		}
	}
	sealed, err := r.RuleSet("d", "alice")
	if err != nil || string(sealed) != "sealed" {
		t.Fatalf("recovered rules = %q, %v", sealed, err)
	}
	if st := r.Stats(); st.TornTail || st.SkippedRecords != 0 {
		t.Fatalf("clean log recovered as %+v", st)
	}
}

// TestFileStoreTornTailTruncated: a partially appended record (the
// kill -9 signature) is truncated away; everything before it survives
// and the store appends cleanly from the cut.
func TestFileStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openFileStore(t, dir, FileStoreOptions{})
	c1, c2 := testContainer(t, "doc1"), testContainer(t, "doc2")
	if err := s.PutDocument(c1); err != nil {
		t.Fatal(err)
	}
	if err := s.PutDocument(c2); err != nil {
		t.Fatal(err)
	}
	crash(s)

	// Half a valid frame: the length prefix promises more bytes than
	// the file holds. Torn onto the segment that holds doc1's history.
	whole := frame(append([]byte{recPutDocument}, 0xAA, 0xBB, 0xCC, 0xDD))
	appendRaw(t, dir, segForDoc("doc1", DefaultShards), whole[:len(whole)-2])

	r := openFileStore(t, dir, FileStoreOptions{})
	if st := r.Stats(); !st.TornTail {
		t.Fatalf("torn tail not detected: %+v", st)
	}
	ids, err := r.ListDocuments()
	if err != nil || len(ids) != 2 {
		t.Fatalf("recovered %v, %v", ids, err)
	}
	// The truncation left a clean boundary: new appends replay fine.
	if err := r.PutDocument(testContainer(t, "doc3")); err != nil {
		t.Fatal(err)
	}
	crash(r)
	r2 := openFileStore(t, dir, FileStoreOptions{})
	ids, _ = r2.ListDocuments()
	if len(ids) != 3 {
		t.Fatalf("after post-truncation append: %v", ids)
	}
	if st := r2.Stats(); st.TornTail {
		t.Fatalf("second recovery saw a torn tail: %+v", st)
	}
	crash(r2)

	// A corrupted (CRC-failing) final record is the same case.
	appendRaw(t, dir, segForDoc("doc2", DefaultShards), frame([]byte{recPutRuleSet, 1, 2, 3})[:9])
	r3 := openFileStore(t, dir, FileStoreOptions{})
	if st := r3.Stats(); !st.TornTail {
		t.Fatalf("corrupt tail not detected: %+v", st)
	}
	if ids, _ := r3.ListDocuments(); len(ids) != 3 {
		t.Fatalf("corrupt tail lost state: %v", ids)
	}
}

// TestFileStoreDuplicateCommitRecord: a commit record for an already
// retired token (a crashed writer's duplicate, or a checkpoint-overlap
// replay) is skipped, never fatal, and changes nothing.
func TestFileStoreDuplicateCommitRecord(t *testing.T) {
	dir := t.TempDir()
	s := openFileStore(t, dir, FileStoreOptions{})
	c := testContainer(t, "doc")
	if err := s.PutDocument(c); err != nil {
		t.Fatal(err)
	}
	h2 := c.Header
	h2.Version++
	token, err := s.BeginUpdate(h2, c.Header.Version)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutBlocks(token, 0, c.Blocks); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitUpdate(token); err != nil {
		t.Fatal(err)
	}
	crash(s)

	appendRaw(t, dir, segForDoc("doc", DefaultShards), frame(tokenRecord(recCommit, token)))

	r := openFileStore(t, dir, FileStoreOptions{})
	st := r.Stats()
	if st.SkippedRecords == 0 {
		t.Fatalf("duplicate commit not skipped: %+v", st)
	}
	h, err := r.Header("doc")
	if err != nil || h.Version != h2.Version {
		t.Fatalf("recovered header %+v, %v (want version %d)", h, err, h2.Version)
	}
}

// TestFileStoreCheckpointCompaction: a checkpoint absorbs the log
// (recovery replays only what came after it) and the combined
// checkpoint + truncated-log state is exactly the live state.
func TestFileStoreCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openFileStore(t, dir, FileStoreOptions{})
	if err := s.PutDocument(testContainer(t, "a")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutRuleSet("a", "alice", 1, []byte("r1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.WALBytes != 0 || st.Checkpoints == 0 {
		t.Fatalf("log not absorbed: %+v", st)
	}
	// Post-checkpoint ops land in the fresh log.
	if err := s.PutDocument(testContainer(t, "b")); err != nil {
		t.Fatal(err)
	}
	crash(s)

	r := openFileStore(t, dir, FileStoreOptions{})
	ids, _ := r.ListDocuments()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("recovered %v", ids)
	}
	if sealed, err := r.RuleSet("a", "alice"); err != nil || string(sealed) != "r1" {
		t.Fatalf("checkpointed rules = %q, %v", sealed, err)
	}
	if st := r.Stats(); st.ReplayedRecords != 1 {
		t.Fatalf("replayed %d records past the checkpoint, want 1", st.ReplayedRecords)
	}
	// Torn tail on top of a checkpointed store: still just the prefix.
	crash(r)
	appendRaw(t, dir, segForDoc("a", DefaultShards), []byte{7, 0, 0})
	r2 := openFileStore(t, dir, FileStoreOptions{})
	if ids, _ := r2.ListDocuments(); len(ids) != 2 {
		t.Fatalf("checkpoint + torn log recovered %v", ids)
	}
	if !r2.Stats().TornTail {
		t.Fatal("torn tail after checkpoint not detected")
	}
}

// TestFileStoreCheckpointPreservesStagedUpdate: an in-flight handshake
// must survive log compaction — its begin/put-blocks records are
// re-logged, so a commit after the checkpoint is replayable.
func TestFileStoreCheckpointPreservesStagedUpdate(t *testing.T) {
	dir := t.TempDir()
	s := openFileStore(t, dir, FileStoreOptions{})
	c := testContainer(t, "doc")
	if err := s.PutDocument(c); err != nil {
		t.Fatal(err)
	}
	h2 := c.Header
	h2.Version++
	token, err := s.BeginUpdate(h2, c.Header.Version)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutBlocks(token, 0, c.Blocks); err != nil {
		t.Fatal(err)
	}
	// Compaction happens mid-handshake.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitUpdate(token); err != nil {
		t.Fatalf("live token broken by checkpoint: %v", err)
	}
	crash(s)

	r := openFileStore(t, dir, FileStoreOptions{})
	h, err := r.Header("doc")
	if err != nil || h.Version != h2.Version {
		t.Fatalf("recovered %+v, %v (want version %d)", h, err, h2.Version)
	}
}

// TestFileStoreAbandonedBeginSurvivesRestartAsEviction: a staged update
// whose client died uncommitted is evicted by recovery — the document
// is untouched, the dead token stays dead, and fresh handshakes work.
func TestFileStoreAbandonedBeginSurvivesRestartAsEviction(t *testing.T) {
	dir := t.TempDir()
	s := openFileStore(t, dir, FileStoreOptions{})
	c := testContainer(t, "doc")
	if err := s.PutDocument(c); err != nil {
		t.Fatal(err)
	}
	h2 := c.Header
	h2.Version++
	token, err := s.BeginUpdate(h2, c.Header.Version)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutBlocks(token, 0, c.Blocks[:1]); err != nil {
		t.Fatal(err)
	}
	crash(s) // client and its token die with the process

	r := openFileStore(t, dir, FileStoreOptions{})
	h, err := r.Header("doc")
	if err != nil || h.Version != c.Header.Version {
		t.Fatalf("abandoned update leaked into the store: %+v, %v", h, err)
	}
	if err := r.CommitUpdate(token); err == nil {
		t.Fatal("a dead token committed after restart")
	}
	// The slot is free: a fresh handshake completes.
	token2, err := r.BeginUpdate(h2, c.Header.Version)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.PutBlocks(token2, 0, c.Blocks); err != nil {
		t.Fatal(err)
	}
	if err := r.CommitUpdate(token2); err != nil {
		t.Fatal(err)
	}
}

// TestFileStoreServedOverTCPSurvivesRestart: the acceptance path —
// dspd's serving stack (Server + Cache) on a FileStore, stopped without
// ceremony, restarted on the same directory, then queried and delta
// re-published against the recovered state.
func TestFileStoreServedOverTCPSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	key := secure.KeyFromSeed("tcp-durable")
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 52, Patients: 6, VisitsPerPatient: 2})
	opts := docenc.EncodeOptions{DocID: "d", Key: key, BlockPlain: 128, MinSkipBytes: 32}

	serve := func(fs *FileStore) (*Client, *Server) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(NewCache(fs, 1<<20))
		go func() { _ = srv.Serve(l) }()
		cl, err := Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return cl, srv
	}

	fs := openFileStore(t, dir, FileStoreOptions{})
	cl, srv := serve(fs)
	old, _, err := docenc.Encode(doc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.PutDocument(old); err != nil {
		t.Fatal(err)
	}
	if err := cl.PutRuleSet("d", "alice", 1, []byte("sealed")); err != nil {
		t.Fatal(err)
	}
	_ = cl.Close()
	_ = srv.Close()
	crash(fs) // no checkpoint, no clean close

	fs2 := openFileStore(t, dir, FileStoreOptions{})
	cl2, srv2 := serve(fs2)
	defer func() { _ = cl2.Close(); _ = srv2.Close() }()

	// End-to-end read of the recovered store through the wire.
	h, err := cl2.Header("d")
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := cl2.ReadBlocks("d", 0, h.NumBlocks())
	if err != nil {
		t.Fatal(err)
	}
	got, err := docenc.DecodeDocument(&docenc.Container{Header: h, Blocks: blocks}, key)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := xmlstream.Serialize(got.Events(), xmlstream.WriterOptions{})
	b, _ := xmlstream.Serialize(doc.Events(), xmlstream.WriterOptions{})
	if a != b {
		t.Fatal("recovered store serves the wrong document")
	}

	// And a delta re-publish over the wire against the recovered base.
	mutated := mutateTree(doc, 7)
	delta, _, err := docenc.DiffEncode(mutated, opts, old)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyDelta(cl2, delta); err != nil {
		t.Fatal(err)
	}
	h2, err := cl2.Header("d")
	if err != nil || h2.Version != old.Header.Version+1 {
		t.Fatalf("post-recovery republish: %+v, %v", h2, err)
	}
}

// TestFileStoreConcurrentRepublishHammer is the durable tier's -race
// regression proof (the private sdsctl file store it replaces raced on
// its shadow maps): concurrent delta re-publishers on distinct
// documents, concurrent readers, and checkpoints racing them all —
// then a recovery pass that must agree with the last committed version
// of every document.
func TestFileStoreConcurrentRepublishHammer(t *testing.T) {
	const (
		writers    = 4
		versions   = 30
		blockPlain = 64
		numBlocks  = 4
	)
	dir := t.TempDir()
	s := openFileStore(t, dir, FileStoreOptions{NoSync: true}) // hammer the logic, not the disk

	makeContainer := func(docID string, version uint32) *docenc.Container {
		h := docenc.Header{DocID: docID, Version: version, BlockPlain: blockPlain,
			PayloadLen: blockPlain * numBlocks}
		c := &docenc.Container{Header: h}
		for i := 0; i < numBlocks; i++ {
			c.Blocks = append(c.Blocks, bytes.Repeat([]byte{byte(version)}, blockPlain+secure.MACLen))
		}
		return c
	}

	var committed [writers]atomic.Uint32
	for w := 0; w < writers; w++ {
		if err := s.PutDocument(makeContainer(fmt.Sprintf("doc%d", w), 1)); err != nil {
			t.Fatal(err)
		}
		committed[w].Store(1)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 2*writers+2)
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			docID := fmt.Sprintf("doc%d", w)
			for v := uint32(2); v <= versions; v++ {
				c := makeContainer(docID, v)
				token, err := s.BeginUpdate(c.Header, v-1)
				if err != nil {
					errCh <- err
					return
				}
				// Stage a one-block delta; the rest carries over.
				if err := s.PutBlocks(token, 0, c.Blocks[:1]); err != nil {
					errCh <- err
					return
				}
				if err := s.CommitUpdate(token); err != nil {
					errCh <- err
					return
				}
				committed[w].Store(v)
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			docID := fmt.Sprintf("doc%d", w)
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo := committed[w].Load()
				blocks, err := s.ReadBlocks(docID, 0, numBlocks)
				if err != nil {
					errCh <- err
					return
				}
				// Block 0 is rewritten each version and must never lag a
				// version the reader knows was committed.
				if uint32(blocks[0][0]) < lo {
					errCh <- fmt.Errorf("%s block 0 from version %d after %d committed",
						docID, blocks[0][0], lo)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Checkpoint(); err != nil {
				errCh <- err
				return
			}
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for w := 0; w < writers; w++ {
		for committed[w].Load() < versions {
			select {
			case err := <-errCh:
				close(stop)
				t.Fatal(err)
			default:
			}
		}
	}
	close(stop)
	<-done
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	crash(s)

	// Recovery must land every document on its final committed version,
	// whichever mix of checkpoint and log it comes from.
	r := openFileStore(t, dir, FileStoreOptions{})
	for w := 0; w < writers; w++ {
		docID := fmt.Sprintf("doc%d", w)
		h, err := r.Header(docID)
		if err != nil {
			t.Fatal(err)
		}
		if h.Version != versions {
			t.Fatalf("%s recovered at version %d, want %d", docID, h.Version, versions)
		}
		blk, err := r.ReadBlock(docID, 0)
		if err != nil || blk[0] != byte(versions) {
			t.Fatalf("%s block 0 recovered from version %d, %v", docID, blk[0], err)
		}
	}
}

// TestFileStoreBrokenLogRefusesWrites: once an append fails the store
// must stop acknowledging mutations (it can no longer make them
// durable) while reads keep working.
func TestFileStoreBrokenLogRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	s := openFileStore(t, dir, FileStoreOptions{})
	if err := s.PutDocument(testContainer(t, "doc")); err != nil {
		t.Fatal(err)
	}
	for _, seg := range s.segs {
		_ = seg.wal.f.Close() // the disk goes away
	}
	if err := s.PutDocument(testContainer(t, "doc2")); err == nil {
		t.Fatal("write acknowledged with a dead log")
	}
	if err := s.PutRuleSet("doc", "a", 1, nil); err == nil {
		t.Fatal("rule write acknowledged with a dead log")
	}
	if _, err := s.Header("doc"); err != nil {
		t.Fatalf("reads must survive a broken log: %v", err)
	}
}
