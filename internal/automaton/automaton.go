// Package automaton compiles XP{[],*,//} expressions into the
// non-deterministic automata the paper's streaming evaluator runs.
//
// "Each access rule is represented by a non-deterministic automaton [...]
// made up of a navigational path (in white in the figure) representing the
// XPath without its predicate and predicate paths (in gray in the figure)
// appended to it." (Section 2.3, Figure 2.)
//
// A machine is a set of small linear state chains:
//
//   - the navigational chain: one state per location step, entered when
//     the step's node test matches; reaching the last state (NavFinal)
//     means the rule's object matches the current node;
//   - one predicate chain per predicate, anchored at the state of the
//     step carrying the predicate: entering the anchor activates the
//     chain's start state, and reaching its final state (PredFinal)
//     satisfies the predicate for that anchor instance.
//
// The descendant axis ('//') is realized by marking the *preceding* state
// as self-looping: a self-looping state stays active in every deeper
// stack frame, so its outgoing test can match at any depth below the node
// where the state was entered.
//
// Machines are compiled against a tag dictionary and operate entirely in
// code space: the SOE never compares tag strings during evaluation.
package automaton

import (
	"fmt"

	"repro/internal/skipindex"
	"repro/internal/tagdict"
	"repro/internal/xpath"
)

// StateID indexes a machine's state table.
type StateID uint16

// TransKind classifies a transition's node test.
type TransKind uint8

// Transition kinds.
const (
	// Exact matches one tag code.
	Exact TransKind = iota
	// WildElem matches any element code ('*').
	WildElem
	// WildAttr matches any attribute code ('@*').
	WildAttr
	// Never matches nothing: the node test names a tag absent from the
	// document's dictionary, so this chain can never complete on this
	// document. Kept (rather than pruned) so introspection still shows
	// the full rule.
	Never
)

// Transition is an outgoing edge of a state.
type Transition struct {
	Kind   TransKind
	Code   tagdict.Code // valid when Kind == Exact
	Target StateID
}

// PredStart anchors a predicate chain at a state: entering the state via
// a matching transition activates Start in the same stack frame and
// allocates a fresh predicate-instance token.
type PredStart struct {
	// Pred is the predicate index within the machine.
	Pred int
	// Start is the entry state of the predicate chain.
	Start StateID
}

// FireReq is one "can this chain still complete?" alternative: the set of
// concrete tag codes that must all occur in a subtree for the chain to
// reach its final state through this state's outgoing transition.
type FireReq struct {
	// Codes must be a subset of a subtree's tag set for completion to be
	// possible there.
	Codes skipindex.Set
	// Possible is false when a Never transition lies ahead.
	Possible bool
}

// State is one NFA state.
type State struct {
	// SelfLoop keeps the state active across opens (descendant axis).
	SelfLoop bool
	// Trans are the outgoing edges (at most one in this fragment).
	Trans []Transition
	// NavFinal marks the end of the navigational chain.
	NavFinal bool
	// PredFinal is the predicate index this state completes, or -1.
	PredFinal int
	// Cmp refines PredFinal: Exists is satisfied on entry; Eq/Neq are
	// satisfied by a matching Value event while the state is active.
	Cmp xpath.Comparison
	// CmpValue is the literal for Eq/Neq.
	CmpValue string
	// StartPreds are the predicate chains anchored at this state.
	StartPreds []PredStart
	// FireReqs are the completion requirements through each transition,
	// parallel to Trans.
	FireReqs []FireReq
}

// PredInfo describes one predicate of the machine, for introspection.
type PredInfo struct {
	// Anchor is the state whose entry creates the predicate instance.
	Anchor StateID
	// Start is the chain's entry state.
	Start StateID
	// Final is the chain's completing state.
	Final StateID
	// Source is the predicate's AST.
	Source xpath.Pred
}

// Machine is a compiled expression.
type Machine struct {
	// Source is the original expression.
	Source *xpath.Path
	// States is the state table; state 0 is the start state, active at
	// the virtual document level.
	States []State
	// Preds lists the machine's predicates (flattened, including nested).
	Preds []PredInfo
	// Universe is the dictionary size the machine was compiled against.
	Universe int
}

// Start returns the machine's start state (always 0).
func (m *Machine) Start() StateID { return 0 }

// NumStates returns the size of the state table.
func (m *Machine) NumStates() int { return len(m.States) }

// NumPreds returns the number of predicate chains.
func (m *Machine) NumPreds() int { return len(m.Preds) }

// MemBytes estimates the machine's secure-memory footprint, charged to the
// card's RAM gauge at session start. The estimate models a compact on-card
// layout — packed state records, 12-bit tag codes, bit-array requirement
// sets — not Go's in-memory representation (the original applet is C on a
// card; pointer-rich Go sizes would overstate it several-fold).
func (m *Machine) MemBytes() int {
	const stateRec = 4 // flags, final marks, cmp op, pred index
	const transRec = 4 // kind + code + target
	total := 0
	for _, s := range m.States {
		total += stateRec
		total += transRec * len(s.Trans)
		total += 3 * len(s.StartPreds)
		for _, r := range s.FireReqs {
			total += r.Codes.MemBytes()
		}
		total += len(s.CmpValue)
	}
	total += 4 * len(m.Preds)
	return total
}

// compiler carries compilation state.
type compiler struct {
	m    *Machine
	dict *tagdict.Dict
}

// Compile builds the machine for an absolute expression against dict.
func Compile(path *xpath.Path, dict *tagdict.Dict) (*Machine, error) {
	if path == nil || len(path.Steps) == 0 {
		return nil, fmt.Errorf("automaton: empty path")
	}
	c := &compiler{
		m:    &Machine{Source: path, Universe: dict.Len()},
		dict: dict,
	}
	start := c.newState()
	if _, err := c.compileChain(start, path.Steps, -1); err != nil {
		return nil, err
	}
	c.computeFireReqs()
	return c.m, nil
}

// newState appends a fresh state and returns its id.
func (c *compiler) newState() StateID {
	c.m.States = append(c.m.States, State{PredFinal: -1})
	return StateID(len(c.m.States) - 1)
}

// compileChain appends a chain of states for steps, starting from `from`.
// finalPred < 0 marks the chain's last state NavFinal; otherwise it marks
// it PredFinal for that predicate index. It returns the final state id.
func (c *compiler) compileChain(from StateID, steps []xpath.Step, finalPred int) (StateID, error) {
	cur := from
	for _, step := range steps {
		if step.Axis == xpath.Descendant {
			c.m.States[cur].SelfLoop = true
		}
		next := c.newState()
		tr, err := c.transitionFor(step, next)
		if err != nil {
			return 0, err
		}
		c.m.States[cur].Trans = append(c.m.States[cur].Trans, tr)
		cur = next
		for _, pred := range step.Preds {
			if err := c.compilePred(cur, pred); err != nil {
				return 0, err
			}
		}
	}
	if finalPred < 0 {
		c.m.States[cur].NavFinal = true
	} else {
		c.m.States[cur].PredFinal = finalPred
	}
	return cur, nil
}

// compilePred builds a predicate chain anchored at anchor.
func (c *compiler) compilePred(anchor StateID, pred xpath.Pred) error {
	idx := len(c.m.Preds)
	c.m.Preds = append(c.m.Preds, PredInfo{Anchor: anchor, Source: pred})

	if pred.Path == nil {
		// '.' comparison: a single state active in the anchor's own frame,
		// satisfied by a matching Value event of the anchor node.
		st := c.newState()
		c.m.States[st].PredFinal = idx
		c.m.States[st].Cmp = pred.Cmp
		c.m.States[st].CmpValue = pred.Value
		c.m.Preds[idx].Start = st
		c.m.Preds[idx].Final = st
		c.m.States[anchor].StartPreds = append(c.m.States[anchor].StartPreds,
			PredStart{Pred: idx, Start: st})
		return nil
	}

	start := c.newState()
	final, err := c.compileChain(start, pred.Path.Steps, idx)
	if err != nil {
		return err
	}
	if pred.Cmp != xpath.Exists {
		c.m.States[final].Cmp = pred.Cmp
		c.m.States[final].CmpValue = pred.Value
	}
	c.m.Preds[idx].Start = start
	c.m.Preds[idx].Final = final
	c.m.States[anchor].StartPreds = append(c.m.States[anchor].StartPreds,
		PredStart{Pred: idx, Start: start})
	return nil
}

// transitionFor maps a step's node test to a transition.
func (c *compiler) transitionFor(step xpath.Step, target StateID) (Transition, error) {
	switch step.Name {
	case "":
		return Transition{}, fmt.Errorf("automaton: step with empty node test")
	case "*":
		return Transition{Kind: WildElem, Target: target}, nil
	case "@*":
		return Transition{Kind: WildAttr, Target: target}, nil
	default:
		code := c.dict.Code(step.Name)
		if code == tagdict.NoCode {
			return Transition{Kind: Never, Target: target}, nil
		}
		return Transition{Kind: Exact, Code: code, Target: target}, nil
	}
}

// computeFireReqs fills State.FireReqs: for each transition, the concrete
// codes still required (on the transition's own chain) to reach that
// chain's final state. Targets always have larger ids than sources, so a
// single reverse pass suffices.
//
// Requirements deliberately ignore predicate chains hanging off the
// navigational chain: a missing predicate tag can only make "the rule can
// still fire here" an overestimate, which blocks a skip the SOE could in
// principle have taken — a lost optimization, never a soundness issue.
func (c *compiler) computeFireReqs() {
	m := c.m
	// chainReq[s] is the requirement from state s (inclusive of outgoing
	// tests) to its chain final.
	chainReq := make([]FireReq, len(m.States))
	for i := len(m.States) - 1; i >= 0; i-- {
		s := &m.States[i]
		if len(s.Trans) == 0 {
			// Chain final: nothing further required.
			chainReq[i] = FireReq{Codes: skipindex.NewSet(m.Universe), Possible: true}
			continue
		}
		s.FireReqs = make([]FireReq, len(s.Trans))
		for ti, tr := range s.Trans {
			down := chainReq[tr.Target]
			req := FireReq{Codes: down.Codes.Clone(), Possible: down.Possible}
			switch tr.Kind {
			case Exact:
				req.Codes.Add(tr.Code)
			case Never:
				req.Possible = false
			}
			s.FireReqs[ti] = req
		}
		// A state has exactly one outgoing transition in this fragment;
		// its chain requirement is that of its only alternative.
		chainReq[i] = s.FireReqs[0]
	}
}
