package automaton

import (
	"strings"
	"testing"

	"repro/internal/tagdict"
	"repro/internal/xpath"
)

func dict(t *testing.T, tags ...string) *tagdict.Dict {
	t.Helper()
	d, err := tagdict.FromTags(tags)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func compile(t *testing.T, expr string, d *tagdict.Dict) *Machine {
	t.Helper()
	m, err := Compile(xpath.MustParse(expr), d)
	if err != nil {
		t.Fatalf("Compile(%s): %v", expr, err)
	}
	return m
}

// TestPaperFigure2 reproduces the paper's Figure 2: the automaton for
// R: ⊕ //b[c]/d has a navigational path (s0 self-looping on //, then b,
// then d = NavFinal) and a predicate path (c) anchored at the b state.
func TestPaperFigure2(t *testing.T) {
	d := dict(t, "a", "b", "c", "d")
	m := compile(t, "//b[c]/d", d)

	s0 := m.States[0]
	if !s0.SelfLoop {
		t.Error("the '//' start state must self-loop")
	}
	if len(s0.Trans) != 1 || s0.Trans[0].Kind != Exact || s0.Trans[0].Code != d.Code("b") {
		t.Fatalf("s0 transitions wrong: %+v", s0.Trans)
	}
	bState := m.States[s0.Trans[0].Target]
	if len(bState.StartPreds) != 1 {
		t.Fatalf("the b state must anchor one predicate, got %d", len(bState.StartPreds))
	}
	if len(bState.Trans) != 1 || bState.Trans[0].Code != d.Code("d") {
		t.Fatalf("b state transitions wrong: %+v", bState.Trans)
	}
	dState := m.States[bState.Trans[0].Target]
	if !dState.NavFinal {
		t.Error("the d state must be NavFinal")
	}
	if m.NumPreds() != 1 {
		t.Fatalf("NumPreds = %d", m.NumPreds())
	}
	pred := m.Preds[0]
	predStart := m.States[pred.Start]
	if len(predStart.Trans) != 1 || predStart.Trans[0].Code != d.Code("c") {
		t.Fatalf("predicate start transitions wrong: %+v", predStart.Trans)
	}
	if got := m.States[pred.Final].PredFinal; got != 0 {
		t.Errorf("predicate final marks pred %d, want 0", got)
	}
}

func TestWildcardsAndAttrs(t *testing.T) {
	d := dict(t, "a", "@id")
	m := compile(t, "/a/*/@*", d)
	if m.States[0].SelfLoop {
		t.Error("child-axis start must not self-loop")
	}
	tr1 := m.States[m.States[0].Trans[0].Target].Trans[0]
	if tr1.Kind != WildElem {
		t.Errorf("second step must be WildElem, got %v", tr1.Kind)
	}
	tr2 := m.States[tr1.Target].Trans[0]
	if tr2.Kind != WildAttr {
		t.Errorf("third step must be WildAttr, got %v", tr2.Kind)
	}
}

func TestUnknownTagCompilesToNever(t *testing.T) {
	d := dict(t, "a")
	m := compile(t, "/a/nosuch", d)
	aState := m.States[m.States[0].Trans[0].Target]
	if aState.Trans[0].Kind != Never {
		t.Errorf("unknown tag must compile to Never, got %v", aState.Trans[0].Kind)
	}
	// The start's requirement must be impossible.
	if m.States[0].FireReqs[0].Possible {
		t.Error("a chain through Never must be impossible")
	}
}

func TestFireReqsChain(t *testing.T) {
	d := dict(t, "a", "b", "c")
	m := compile(t, "/a//b/c", d)
	req := m.States[0].FireReqs[0]
	if !req.Possible {
		t.Fatal("chain must be possible")
	}
	for _, tag := range []string{"a", "b", "c"} {
		if !req.Codes.Has(d.Code(tag)) {
			t.Errorf("start requirement missing %s", tag)
		}
	}
	// After matching a, only b and c remain.
	aState := m.States[m.States[0].Trans[0].Target]
	req2 := aState.FireReqs[0]
	if req2.Codes.Has(d.Code("a")) {
		t.Error("a must not be required after it matched")
	}
	if !req2.Codes.Has(d.Code("b")) || !req2.Codes.Has(d.Code("c")) {
		t.Error("b and c still required")
	}
}

func TestFireReqsIgnoreWildcards(t *testing.T) {
	d := dict(t, "a", "b")
	m := compile(t, "/a/*/b", d)
	req := m.States[0].FireReqs[0]
	if req.Codes.Count() != 2 {
		t.Errorf("wildcards must not add requirements: %v", req.Codes)
	}
}

func TestNestedPredCompilation(t *testing.T) {
	d := dict(t, "a", "b", "c")
	m := compile(t, "/a[b[c]]", d)
	if m.NumPreds() != 2 {
		t.Fatalf("nested predicate must flatten to 2 chains, got %d", m.NumPreds())
	}
	// The outer pred's chain state for b anchors the inner pred.
	outer := m.Preds[0]
	bState := m.States[outer.Final]
	if len(bState.StartPreds) != 1 {
		t.Errorf("outer final must anchor the nested predicate")
	}
}

func TestDotComparePred(t *testing.T) {
	d := dict(t, "k")
	m := compile(t, `//k[. = "on"]`, d)
	if m.NumPreds() != 1 {
		t.Fatal("one predicate expected")
	}
	p := m.Preds[0]
	if p.Start != p.Final {
		t.Error("'.' predicate must be a single state")
	}
	st := m.States[p.Final]
	if st.Cmp != xpath.Eq || st.CmpValue != "on" {
		t.Errorf("comparison not recorded: %+v", st)
	}
}

func TestValuePredOnPath(t *testing.T) {
	d := dict(t, "a", "b")
	m := compile(t, `/a[b != "x"]`, d)
	final := m.States[m.Preds[0].Final]
	if final.Cmp != xpath.Neq || final.CmpValue != "x" {
		t.Errorf("Neq comparison not recorded: %+v", final)
	}
}

func TestMemBytesPositive(t *testing.T) {
	d := dict(t, "a", "b", "c")
	small := compile(t, "/a", d)
	big := compile(t, "//a[b]//c[. = \"v\"]", d)
	if small.MemBytes() <= 0 || big.MemBytes() <= small.MemBytes() {
		t.Errorf("MemBytes implausible: small=%d big=%d", small.MemBytes(), big.MemBytes())
	}
}

func TestDumpAndDOT(t *testing.T) {
	d := dict(t, "a", "b", "c", "d")
	m := compile(t, "//b[c]/d", d)
	dump := m.Dump(d)
	for _, want := range []string{"NAV-FINAL", "PRED-FINAL", "start", "--b-->"} {
		if !strings.Contains(dump, want) {
			t.Errorf("Dump lacks %q:\n%s", want, dump)
		}
	}
	dot := m.DOT(d, "r1")
	for _, want := range []string{"digraph", "doublecircle", "gray80", "rankdir=LR"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT lacks %q", want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	d := dict(t, "a")
	if _, err := Compile(nil, d); err == nil {
		t.Error("nil path accepted")
	}
	if _, err := Compile(&xpath.Path{}, d); err == nil {
		t.Error("empty path accepted")
	}
}
