package automaton

import (
	"fmt"
	"strings"

	"repro/internal/tagdict"
	"repro/internal/xpath"
)

// Dump renders the machine as indented text, one state per line, in the
// spirit of the paper's Figure 2: the navigational chain first, then each
// predicate chain.
func (m *Machine) Dump(dict *tagdict.Dict) string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine for %s (%d states, %d predicates)\n",
		m.Source, len(m.States), len(m.Preds))
	for id, s := range m.States {
		fmt.Fprintf(&b, "  s%-3d", id)
		var marks []string
		if id == 0 {
			marks = append(marks, "start")
		}
		if s.SelfLoop {
			marks = append(marks, "//")
		}
		if s.NavFinal {
			marks = append(marks, "NAV-FINAL")
		}
		if s.PredFinal >= 0 {
			pf := fmt.Sprintf("PRED-FINAL(p%d", s.PredFinal)
			switch s.Cmp {
			case xpath.Eq:
				pf += fmt.Sprintf(" = %q", s.CmpValue)
			case xpath.Neq:
				pf += fmt.Sprintf(" != %q", s.CmpValue)
			}
			marks = append(marks, pf+")")
		}
		if len(marks) > 0 {
			fmt.Fprintf(&b, " [%s]", strings.Join(marks, ","))
		}
		for _, tr := range s.Trans {
			fmt.Fprintf(&b, "  --%s--> s%d", transLabel(tr, dict), tr.Target)
		}
		for _, ps := range s.StartPreds {
			fmt.Fprintf(&b, "  anchors p%d@s%d", ps.Pred, ps.Start)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// DOT renders the machine in Graphviz format: navigational states filled
// white, predicate states gray, reproducing the paper's Figure 2 layout
// conventions.
func (m *Machine) DOT(dict *tagdict.Dict, name string) string {
	predState := make([]bool, len(m.States))
	for _, p := range m.Preds {
		for id := p.Start; id <= p.Final; id++ {
			predState[id] = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  label=%q;\n", name, m.Source.String())
	for id, s := range m.States {
		fill := "white"
		if predState[id] {
			fill = "gray80"
		}
		shape := "circle"
		if s.NavFinal || s.PredFinal >= 0 {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  s%d [shape=%s,style=filled,fillcolor=%s,label=\"%d\"];\n",
			id, shape, fill, id)
		if s.SelfLoop {
			fmt.Fprintf(&b, "  s%d -> s%d [label=\"*\",style=dashed];\n", id, id)
		}
		for _, tr := range s.Trans {
			fmt.Fprintf(&b, "  s%d -> s%d [label=%q];\n", id, tr.Target, transLabel(tr, dict))
		}
		for _, ps := range s.StartPreds {
			fmt.Fprintf(&b, "  s%d -> s%d [style=dotted,label=\"p%d\"];\n", id, ps.Start, ps.Pred)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func transLabel(tr Transition, dict *tagdict.Dict) string {
	switch tr.Kind {
	case Exact:
		if dict != nil && int(tr.Code) < dict.Len() {
			return dict.Name(tr.Code)
		}
		return fmt.Sprintf("#%d", tr.Code)
	case WildElem:
		return "*"
	case WildAttr:
		return "@*"
	case Never:
		return "⊥"
	default:
		return "?"
	}
}
