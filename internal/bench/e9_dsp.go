package bench

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/docenc"
	"repro/internal/dsp"
	"repro/internal/secure"
	"repro/internal/workload"
)

// E9 measures the DSP tier under concurrent traffic: the paper makes the
// untrusted store the only tier allowed to scale out (the card only sees
// what the skip index admits), so aggregate encrypted-block throughput at
// fan-out is the number that bounds a deployment. The experiment compares
// the historical single-lock, one-request-at-a-time server against the
// sharded store + LRU cache + pipelined worker-pool server introduced with
// it, both over real loopback TCP.
//
// Unlike E1–E8 this experiment is wall-clock by construction (it measures
// a network server); the workload itself is seeded and deterministic.

// e9RunLen is the batched-read run length: the shape a skip-index run of
// admitted blocks takes on the wire.
const e9RunLen = 8

// DSPRig is a live loopback DSP serving a fleet of encrypted documents,
// either in the legacy single-lock configuration or in the scaled one.
type DSPRig struct {
	Addr string
	Docs []*docenc.Container
	// Cache is non-nil on the scaled rig (hit/miss counters).
	Cache *dsp.Cache

	srv *dsp.Server
}

// NewDSPRig encodes nDocs seeded documents and serves them. scaled
// selects sharded store + cache + worker pool; otherwise a single-shard
// store behind a one-worker, depth-one server reproduces the historical
// serial DSP.
func NewDSPRig(scaled bool, nDocs int) (*DSPRig, error) {
	r := &DSPRig{}
	var store dsp.Store
	var cfg dsp.ServerConfig
	if scaled {
		r.Cache = dsp.NewCache(dsp.NewMemStore(), 32<<20)
		store = r.Cache
		cfg = dsp.ServerConfig{} // defaults: pooled workers, pipelining
	} else {
		store = dsp.NewMemStoreShards(1)
		cfg = dsp.ServerConfig{Workers: 1, PipelineDepth: 1}
	}
	for i := 0; i < nDocs; i++ {
		doc := workload.RandomDocument(workload.TreeConfig{
			Seed: int64(900 + i), Elements: 600, MaxDepth: 7, MaxFanout: 5,
			TextProb: 0.7, AttrProb: 0.2,
		})
		id := fmt.Sprintf("e9-doc-%d", i)
		c, _, err := docenc.Encode(doc, docenc.EncodeOptions{
			DocID: id, Key: secure.KeyFromSeed(id),
		})
		if err != nil {
			return nil, err
		}
		if err := store.PutDocument(c); err != nil {
			return nil, err
		}
		r.Docs = append(r.Docs, c)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	r.Addr = l.Addr().String()
	r.srv = dsp.NewServerConfig(store, cfg)
	go func() { _ = r.srv.Serve(l) }()
	return r, nil
}

// Close stops the server and waits for in-flight requests.
func (r *DSPRig) Close() {
	_ = r.srv.Close()
}

// Hammer runs clients concurrent workers, each scanning its document's
// full block range passes times, and returns aggregate blocks/second.
// batched=false issues one round trip per block over a private
// connection (the legacy client pattern); batched=true fans out over one
// shared connection pool and fetches e9RunLen-block runs per round trip.
func (r *DSPRig) Hammer(clients, passes int, batched bool) (float64, error) {
	var pool *dsp.Pool
	if batched {
		var err error
		pool, err = dsp.DialPool(r.Addr, clients)
		if err != nil {
			return 0, err
		}
		defer pool.Close()
	}

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		total  int
		firstE error
	)
	fail := func(err error) {
		mu.Lock()
		if firstE == nil {
			firstE = err
		}
		mu.Unlock()
	}
	start := time.Now()
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			doc := r.Docs[g%len(r.Docs)]
			id := doc.Header.DocID
			n := len(doc.Blocks)
			var store dsp.Store = pool
			if !batched {
				c, err := dsp.Dial(r.Addr)
				if err != nil {
					fail(err)
					return
				}
				defer c.Close()
				store = c
			}
			served := 0
			for p := 0; p < passes; p++ {
				if batched {
					for at := 0; at < n; at += e9RunLen {
						run := e9RunLen
						if at+run > n {
							run = n - at
						}
						bs, err := dsp.ReadBlockRange(store, id, at, run)
						if err != nil {
							fail(err)
							return
						}
						served += len(bs)
					}
				} else {
					for i := 0; i < n; i++ {
						if _, err := store.ReadBlock(id, i); err != nil {
							fail(err)
							return
						}
						served++
					}
				}
			}
			mu.Lock()
			total += served
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	if firstE != nil {
		return 0, firstE
	}
	return float64(total) / time.Since(start).Seconds(), nil
}

// AllocsPerRead measures heap allocations per batched wire read against
// the rig: ops serial ReadBlocksFrame round trips over one connection
// (pooled frames released each op), counted process-wide so the server
// side of the loopback connection is included. Pools are warmed first,
// so the number is the steady-state per-op toll the zero-copy path is
// accountable to.
func (r *DSPRig) AllocsPerRead(run, ops int) (float64, error) {
	c, err := dsp.Dial(r.Addr)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	id := r.Docs[0].Header.DocID
	readOne := func() error {
		f, err := c.ReadBlocksFrame(id, 0, run)
		if err != nil {
			return err
		}
		f.Release()
		return nil
	}
	for i := 0; i < 32; i++ { // warm response, frame and worker pools
		if err := readOne(); err != nil {
			return 0, err
		}
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < ops; i++ {
		if err := readOne(); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(ops), nil
}

// E9ConcurrentDSP compares aggregate block throughput of the two DSP
// configurations as the number of concurrent clients grows. Recorded
// metrics: absolute blk/s and the core-count-dependent speedup
// (informational), the cache hit rate (gated — deterministic for the
// seeded workload), and the steady-state allocations per batched wire
// read (gated — the pooled frames and zero-copy response path make it a
// fixed per-op toll, independent of load and cores).
func E9ConcurrentDSP(rec *Recorder) []*Table {
	const (
		nDocs  = 4
		passes = 25
	)
	base, err := NewDSPRig(false, nDocs)
	if err != nil {
		panic(err)
	}
	defer base.Close()
	scaled, err := NewDSPRig(true, nDocs)
	if err != nil {
		panic(err)
	}
	defer scaled.Close()

	t := &Table{
		ID:    "E9",
		Title: "DSP aggregate block throughput vs concurrent clients (loopback TCP)",
		Columns: []string{"clients", "single-lock blk/s", "sharded+cached blk/s",
			"speedup", "cache hits"},
		Notes: []string{
			"single-lock: 1-shard store, 1 server worker, depth-1 pipeline, per-block round trips",
			"sharded+cached: 16-shard store, LRU block cache, pooled workers, batched 8-block runs",
			"wall-clock measurement (real network server); workload is seeded",
		},
	}
	for _, clients := range []int{1, 2, 4, 8} {
		baseRate, err := base.Hammer(clients, passes, false)
		if err != nil {
			panic(err)
		}
		before := scaled.Cache.Stats()
		scaledRate, err := scaled.Hammer(clients, passes, true)
		if err != nil {
			panic(err)
		}
		st := scaled.Cache.Stats()
		hits := float64(st.Hits - before.Hits)
		lookups := hits + float64(st.Misses-before.Misses)
		rec.Record(fmt.Sprintf("serial_clients%d", clients), "blk/s", baseRate)
		rec.Record(fmt.Sprintf("scaled_clients%d", clients), "blk/s", scaledRate)
		// The speedup needs real cores, so it is informational: a 2-core
		// CI runner must not fail against a 16-core baseline.
		rec.Record(fmt.Sprintf("speedup_clients%d", clients), "x", scaledRate/baseRate)
		if lookups > 0 {
			rec.RecordHigher(fmt.Sprintf("cache_hit_clients%d", clients), "ratio", hits/lookups)
		}
		t.AddRow(
			fmt.Sprintf("%d", clients),
			fmt.Sprintf("%.0f", baseRate),
			fmt.Sprintf("%.0f", scaledRate),
			fmt.Sprintf("%.1fx", scaledRate/baseRate),
			pct(hits, lookups),
		)
	}
	allocs, err := scaled.AllocsPerRead(e9RunLen, 200)
	if err != nil {
		panic(err)
	}
	rec.RecordLower("wire_read_allocs_per_op", "allocs", allocs)
	t.Notes = append(t.Notes,
		fmt.Sprintf("batched wire read steady state: %.1f allocs/op end to end (pooled frames, zero-copy response)", allocs))
	cold, err := e9ColdServe(rec)
	if err != nil {
		panic(err)
	}
	return []*Table{t, cold}
}

// The cold serve shape: a 64-block × 4 KiB checkpoint-resident run, the
// batched read a skip-index scan of a cold document issues.
const (
	e9ColdRunLen     = 64
	e9ColdBlockBytes = 4096
)

// e9ColdContainer builds the cold corpus (synthetic ciphertext; the
// store and the wire never inspect it).
func e9ColdContainer(docID string) *docenc.Container {
	plain := e9ColdBlockBytes - secure.MACLen
	h := docenc.Header{DocID: docID, Version: 1, BlockPlain: uint32(plain),
		PayloadLen: uint64(plain) * e9ColdRunLen}
	c := &docenc.Container{Header: h}
	for i := 0; i < e9ColdRunLen; i++ {
		c.Blocks = append(c.Blocks, bytes.Repeat([]byte{byte(i)}, e9ColdBlockBytes))
	}
	return c
}

// e9ColdRun drives `ops` cold batched reads of the full run against a
// checkpointed FileStore over loopback TCP and reports heap bytes
// allocated per op (process-wide, both connection ends), the fraction of
// wire bytes that left via sendfile, and the sendfile syscall count.
func e9ColdRun(disableSendfile bool, ops int) (bytesPerOp, ratio float64, reads int64, err error) {
	dir, err := os.MkdirTemp("", "e9cold-*")
	if err != nil {
		return 0, 0, 0, err
	}
	defer os.RemoveAll(dir)
	fs, err := dsp.NewFileStoreOptions(dir, dsp.FileStoreOptions{
		NoSync: true, DisableSendfile: disableSendfile,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer fs.Close()
	c := e9ColdContainer("e9-cold")
	if err := fs.PutDocument(c); err != nil {
		return 0, 0, 0, err
	}
	if err := fs.Checkpoint(); err != nil {
		return 0, 0, 0, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, 0, err
	}
	srv := dsp.NewServer(fs)
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()
	cl, err := dsp.Dial(l.Addr().String())
	if err != nil {
		return 0, 0, 0, err
	}
	defer cl.Close()

	readOne := func() error {
		f, err := cl.ReadBlocksFrame("e9-cold", 0, e9ColdRunLen)
		if err != nil {
			return err
		}
		f.Release()
		return nil
	}
	for i := 0; i < 32; i++ { // warm response, frame and worker pools
		if err := readOne(); err != nil {
			return 0, 0, 0, err
		}
	}
	st0 := fs.Stats()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < ops; i++ {
		if err := readOne(); err != nil {
			return 0, 0, 0, err
		}
	}
	runtime.ReadMemStats(&after)
	st1 := fs.Stats()

	// Wire payload per op: every stored block plus its varint prefix —
	// exactly the span the sendfile tier is accountable for.
	var wire int64
	for _, b := range c.Blocks {
		wire += int64(len(binary.AppendUvarint(nil, uint64(len(b))))) + int64(len(b))
	}
	bytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(ops)
	ratio = float64(st1.SendfileBytes-st0.SendfileBytes) / (float64(wire) * float64(ops))
	return bytesPerOp, ratio, st1.SendfileReads - st0.SendfileReads, nil
}

// e9ColdServe compares the kernel-resident cold serve (sendfile) with
// the mapped writev path over the same checkpoint-resident corpus.
// Gated: the sendfile coverage ratio (on capable builds) and the cold
// read's heap bytes per op — the sendfile path must not allocate more
// than writev did. The writev baseline itself is informational.
func e9ColdServe(rec *Recorder) (*Table, error) {
	const ops = 300
	sfBytes, sfRatio, sfReads, err := e9ColdRun(false, ops)
	if err != nil {
		return nil, err
	}
	wvBytes, _, _, err := e9ColdRun(true, ops)
	if err != nil {
		return nil, err
	}

	if dsp.SendfileCapable() {
		// Gate only where the syscall exists: a darwin/nosendfile run must
		// not fail a linux baseline (CI pins linux, so CI always gates).
		rec.RecordHigher("cold_serve_sendfile_ratio", "ratio", sfRatio)
	}
	rec.RecordLower("cold_read_bytes_per_op", "B", sfBytes)
	rec.Record("cold_read_bytes_per_op_writev", "B", wvBytes)
	rec.Record("cold_serve_sendfile_reads", "ops", float64(sfReads))

	t := &Table{
		ID:      "E9",
		Title:   "cold serve: checkpoint tier onto the wire, sendfile vs mapped writev",
		Columns: []string{"path", "heap B/op", "sendfile coverage", "sendfile calls"},
		Notes: []string{
			fmt.Sprintf("%d-block × %d B checkpoint-resident run over loopback TCP, %d cold batched reads",
				e9ColdRunLen, e9ColdBlockBytes, ops),
			"coverage = bytes shipped by sendfile(2) / wire payload bytes (blocks + varint prefixes)",
			fmt.Sprintf("sendfile capable on this build: %v", dsp.SendfileCapable()),
		},
	}
	t.AddRow("sendfile", fmt.Sprintf("%.0f", sfBytes), fmt.Sprintf("%.1f%%", sfRatio*100),
		fmt.Sprintf("%d", sfReads))
	t.AddRow("writev", fmt.Sprintf("%.0f", wvBytes), "-", "-")
	return t, nil
}
