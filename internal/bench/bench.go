// Package bench is the experiment harness: it regenerates, for every
// claim the demonstration makes, the table or series a paper evaluation
// would report. EXPERIMENTS.md records the output of cmd/sdsbench, which
// drives the functions here; bench_test.go wraps the same kernels in
// testing.B benchmarks.
//
// All experiments are deterministic (seeded workloads, simulated card
// time); wall-clock numbers appear only where explicitly labelled.
//
// The system-path experiments (E9-E14) additionally record metrics into
// a Recorder, from which cmd/sdsbench serializes the machine-readable
// sds-bench-result/v1 files that track the repo's perf trajectory
// (BENCH_<pr>.json at the root) and gate CI via Compare. The gated vs
// informational metric contract is documented in docs/BENCHMARKS.md and
// in results.go.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is one experiment result: a titled grid.
type Table struct {
	ID      string // experiment id, e.g. "E3"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// ms renders a duration in milliseconds with sensible precision.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// pct renders a ratio as a percentage.
func pct(part, whole float64) string {
	if whole == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*part/whole)
}

// kb renders bytes as KiB.
func kb(n int64) string {
	return fmt.Sprintf("%.1f", float64(n)/1024)
}

// Experiment couples an id with its runner. Run renders tables for the
// human report and, when the Recorder is non-nil, records the same
// measurements as metrics for the machine-readable result file.
type Experiment struct {
	ID   string
	Name string
	Run  func(*Recorder) []*Table
}

// tablesOnly adapts a runner that has no metrics to record (E1–E8
// predate the perf-trajectory contract; E9–E14 are the tracked
// hot-path experiments).
func tablesOnly(run func() []*Table) func(*Recorder) []*Table {
	return func(*Recorder) []*Table { return run() }
}

// All returns the full experiment suite in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "evaluator scaling with rule count", tablesOnly(E1RuleScaling)},
		{"E2", "secure-RAM footprint", tablesOnly(E2MemoryFootprint)},
		{"E3", "skip-index benefit vs authorized fraction", tablesOnly(E3SkipBenefit)},
		{"E4", "skip-index compactness", tablesOnly(E4IndexOverhead)},
		{"E5", "end-to-end pull latency", tablesOnly(E5PullLatency)},
		{"E6", "pending-predicate buffering", tablesOnly(E6PendingBuffer)},
		{"E7", "selective dissemination throughput", tablesOnly(E7Dissemination)},
		{"E8", "dynamic rule changes vs re-encryption", tablesOnly(E8DynamicRules)},
		{"E9", "concurrent DSP throughput", E9ConcurrentDSP},
		{"E10", "pipelined pull & card-fleet gateway", E10Pipeline},
		{"E11", "delta re-publish vs full re-publish", E11DeltaRepublish},
		{"E12", "durable WAL store: throughput, write amplification, recovery", E12DurableStore},
		{"E13", "segmented durable tier: parallel commits, background checkpoints, parallel recovery", E13SegmentedStore},
		{"E14", "session-pooled gateway daemon vs in-process fleet", E14GatewayDaemon},
	}
}
