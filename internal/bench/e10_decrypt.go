package bench

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"repro/internal/secure"
)

// Card-side decrypt microbenchmark: the consumer-side twin of E9's wire
// metrics. Two properties are gated:
//
//   - decrypt_allocs_per_block: steady-state heap allocations per block
//     through the batched context path (shared AES schedule, cloned HMAC
//     pad states, pooled run buffer). Reported as the worst case across
//     run lengths, so growth with the run would fail the gate as surely
//     as a regression at any one length.
//   - batch_vs_serial_decrypt: same-run CPU ratio of the historical
//     per-call path (fresh cipher + HMAC setup per block, the pre-PR 8
//     secure.DecryptBlock) over the shared-context batched path, on the
//     e10 block geometry.

// e10DecryptBlockPlain matches the e10 document's block size.
const e10DecryptBlockPlain = 256

// decryptBench builds a run of stored blocks and measures the batched
// path's allocations per block and the serial/batched time ratio.
func e10Decrypt(rec *Recorder) *Table {
	key := secure.KeyFromSeed("e10-decrypt")
	const docID = "e10-decrypt-doc"
	ctx, err := secure.NewBlockContext(key)
	if err != nil {
		panic(err)
	}
	const maxRun = 64
	stored := make([][]byte, maxRun)
	payload := bytes.Repeat([]byte{0x5d}, e10DecryptBlockPlain)
	for i := range stored {
		if stored[i], err = ctx.EncryptBlock(docID, 1, uint32(i), payload); err != nil {
			panic(err)
		}
	}
	versions := []uint32{1}

	t := &Table{
		ID:      "E10",
		Title:   "card-side batch decrypt: amortized context vs per-block setup",
		Columns: []string{"run", "allocs/block", "serial ns/block", "batched ns/block", "ratio"},
		Notes: []string{
			"serial: per-call secure.DecryptBlock (fresh AES + HMAC state per block)",
			fmt.Sprintf("batched: shared BlockContext, DecryptBlocks into a pooled buffer, %d-byte blocks", e10DecryptBlockPlain),
			"allocs counted process-wide after pool warmup",
		},
	}

	allocsPerBlock := func(run, ops int) float64 {
		buf := secure.GetRunBuffer()
		batchOne := func() {
			plains, b, err := ctx.DecryptBlocks(buf, docID, 0, versions, stored[:run])
			if err != nil {
				panic(err)
			}
			_ = plains
			buf = b
		}
		for i := 0; i < 32; i++ { // warm the scratch and run-buffer pools
			batchOne()
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < ops; i++ {
			batchOne()
		}
		runtime.ReadMemStats(&after)
		secure.PutRunBuffer(buf)
		return float64(after.Mallocs-before.Mallocs) / float64(ops) / float64(run)
	}

	timePerBlock := func(run, ops int, batched bool) float64 {
		start := time.Now()
		if batched {
			buf := secure.GetRunBuffer()
			for i := 0; i < ops; i++ {
				_, b, err := ctx.DecryptBlocks(buf, docID, 0, versions, stored[:run])
				if err != nil {
					panic(err)
				}
				buf = b
			}
			secure.PutRunBuffer(buf)
		} else {
			for i := 0; i < ops; i++ {
				for j := 0; j < run; j++ {
					if _, err := secure.DecryptBlock(key, docID, 1, uint32(j), stored[j]); err != nil {
						panic(err)
					}
				}
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(ops) / float64(run)
	}

	worstAllocs := 0.0
	for _, run := range []int{4, 16, 64} {
		const ops = 400
		allocs := allocsPerBlock(run, ops)
		if allocs > worstAllocs {
			worstAllocs = allocs
		}
		serialNs := timePerBlock(run, ops, false)
		batchNs := timePerBlock(run, ops, true)
		ratio := serialNs / batchNs
		rec.Record(fmt.Sprintf("decrypt_allocs_run%d", run), "allocs/blk", allocs)
		if run == 16 {
			// The headline ratio, gated: one representative run length
			// keeps the gate stable; the table shows the whole sweep.
			rec.RecordHigher("batch_vs_serial_decrypt", "x", ratio)
		}
		t.AddRow(fmt.Sprintf("%d", run), fmt.Sprintf("%.2f", allocs),
			fmt.Sprintf("%.0f", serialNs), fmt.Sprintf("%.0f", batchNs),
			fmt.Sprintf("%.1fx", ratio))
	}
	rec.RecordLower("decrypt_allocs_per_block", "allocs/blk", worstAllocs)
	return t
}
