package bench

import (
	"fmt"

	"repro/internal/docenc"
	"repro/internal/workload"
	"repro/internal/xmlstream"
)

// E4IndexOverhead measures the skip index's storage cost across document
// shapes, and the effect of the two compactness mechanisms the paper
// describes: recursive bitmap compression and the indexing threshold.
// Expected shape: single-digit-percent overhead with recursive
// compression, a multiple of that with flat bitmaps, growing with the
// number of distinct tags.
func E4IndexOverhead() []*Table {
	docs := []struct {
		name string
		doc  *xmlstream.Node
	}{
		{"medical", workload.MedicalFolder(workload.MedicalConfig{Seed: 4, Patients: 40, VisitsPerPatient: 4})},
		{"agenda", workload.Agenda(workload.AgendaConfig{Seed: 4, Members: 30, EventsPerMember: 6})},
		{"catalog", workload.Catalog(workload.CatalogConfig{Seed: 4, Categories: 15, ProductsPerCategory: 12})},
		{"stream", workload.MediaStream(workload.StreamConfig{Seed: 4, Segments: 120, PayloadBytes: 256})},
		{"wide-tags", workload.RandomDocument(workload.TreeConfig{
			Seed: 4, Elements: 2500, MaxDepth: 7, MaxFanout: 5, TextProb: 0.7,
			Tags: manyTags(120),
		})},
	}

	t := &Table{
		ID:    "E4",
		Title: "skip-index storage overhead (recursive vs flat bitmaps)",
		Columns: []string{"document", "tags", "payload KB", "indexed nodes",
			"index bytes", "overhead", "flat bytes", "flat overhead", "dict bytes"},
	}
	for _, d := range docs {
		_, info, err := docenc.EncodePayload(d.doc, docenc.EncodeOptions{})
		if err != nil {
			panic(fmt.Sprintf("E4: %v", err))
		}
		base := float64(info.PayloadBytes - info.IndexBytes)
		t.AddRow(
			d.name,
			fmt.Sprintf("%d", info.Dict.Len()),
			kb(int64(info.PayloadBytes)),
			fmt.Sprintf("%d", info.IndexedNodes),
			fmt.Sprintf("%d", info.IndexBytes),
			pct(float64(info.IndexBytes), base),
			fmt.Sprintf("%d", info.FlatIndexBytes),
			pct(float64(info.FlatIndexBytes), base),
			fmt.Sprintf("%d", info.DictBytes),
		)
	}

	t2 := &Table{
		ID:      "E4b",
		Title:   "indexing threshold sweep (medical folder): records vs overhead",
		Columns: []string{"MinSkipBytes", "indexed nodes", "index bytes", "overhead"},
		Notes:   []string{"lower thresholds index more subtrees (finer skips) at higher storage cost"},
	}
	med := workload.MedicalFolder(workload.MedicalConfig{Seed: 4, Patients: 40, VisitsPerPatient: 4})
	for _, min := range []int{16, 32, 64, 128, 256, 1024} {
		_, info, err := docenc.EncodePayload(med, docenc.EncodeOptions{MinSkipBytes: min})
		if err != nil {
			panic(fmt.Sprintf("E4b: %v", err))
		}
		base := float64(info.PayloadBytes - info.IndexBytes)
		t2.AddRow(
			fmt.Sprintf("%d", min),
			fmt.Sprintf("%d", info.IndexedNodes),
			fmt.Sprintf("%d", info.IndexBytes),
			pct(float64(info.IndexBytes), base),
		)
	}

	// Compression of the structure itself: encoded payload vs XML text.
	t3 := &Table{
		ID:      "E4c",
		Title:   "structure compression: encoded payload vs XML text",
		Columns: []string{"document", "xml KB", "payload KB", "ratio"},
	}
	for _, d := range docs {
		xml := workload.Text(d.doc)
		_, info, err := docenc.EncodePayload(d.doc, docenc.EncodeOptions{})
		if err != nil {
			panic(fmt.Sprintf("E4c: %v", err))
		}
		t3.AddRow(
			d.name,
			kb(int64(len(xml))),
			kb(int64(info.PayloadBytes)),
			fmt.Sprintf("%.2f", float64(info.PayloadBytes)/float64(len(xml))),
		)
	}
	return []*Table{t, t2, t3}
}

func manyTags(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("t%03d", i)
	}
	return out
}
