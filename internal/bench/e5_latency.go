package bench

import (
	"fmt"

	"repro/internal/card"
	"repro/internal/docenc"
	"repro/internal/soe"
	"repro/internal/workload"
)

// E5PullLatency measures the end-to-end response time of a pull query as
// the document grows, decomposed into the three cost drivers the paper
// names (transfer, decryption+integrity, evaluation), on both the e-gate
// profile and a modern secure element. Expected shape: e-gate time is
// dominated by the 2 KB/s link; the index keeps it proportional to the
// authorized/relevant part instead of the whole document.
func E5PullLatency() []*Table {
	t := &Table{
		ID:    "E5",
		Title: "pull response time vs document size (nurse profile, full authorized view)",
		Columns: []string{"profile", "patients", "stored KB", "blocks fetched",
			"transfer", "crypto", "evaluate", "total(idx)", "total(no idx)"},
		Notes: []string{"times in simulated milliseconds"},
	}
	rules := `
subject nurse
default -
+ /folder
- //ssn
- //contact
- //report`
	for _, profile := range []card.Profile{card.EGate, card.Modern} {
		for _, patients := range []int{5, 10, 20, 40, 80} {
			doc := workload.MedicalFolder(workload.MedicalConfig{
				Seed: int64(patients), Patients: patients, VisitsPerPatient: 4,
			})
			rs := workload.MustParseRules(rules)
			rig, err := NewPullRig(doc, fmt.Sprintf("e5-%s-%d", profile.Name, patients),
				profile, docenc.EncodeOptions{}, rs)
			if err != nil {
				panic(fmt.Sprintf("E5 setup: %v", err))
			}
			withIdx, err := rig.Query("nurse", "", soe.Options{})
			if err != nil {
				panic(fmt.Sprintf("E5: %v", err))
			}
			if err := rig.FreshCard(profile, "nurse"); err != nil {
				panic(err)
			}
			noIdx, err := rig.Query("nurse", "", soe.Options{DisableSkip: true, DisableCopy: true})
			if err != nil {
				panic(fmt.Sprintf("E5: %v", err))
			}
			tb := withIdx.Stats.Time
			t.AddRow(
				profile.Name,
				fmt.Sprintf("%d", patients),
				kb(int64(rig.Info.StoredBytes)),
				fmt.Sprintf("%d/%d", withIdx.Stats.BlocksFetched, withIdx.Stats.BlocksTotal),
				ms(tb.Transfer),
				ms(tb.Crypto),
				ms(tb.Evaluate),
				ms(tb.Total()),
				ms(noIdx.Stats.Time.Total()),
			)
		}
	}

	// A selective query over a large document: the pull case the skip
	// index was designed for.
	t2 := &Table{
		ID:      "E5b",
		Title:   "selective query latency (query //emergency over growing folders, e-gate)",
		Columns: []string{"patients", "stored KB", "blocks fetched", "total(idx)", "total(no idx)", "speedup"},
	}
	for _, patients := range []int{10, 20, 40, 80} {
		doc := workload.MedicalFolder(workload.MedicalConfig{
			Seed: int64(patients), Patients: patients, VisitsPerPatient: 4,
		})
		rs := workload.MustParseRules("subject all\ndefault +")
		rig, err := NewPullRig(doc, fmt.Sprintf("e5b-%d", patients),
			card.EGate, docenc.EncodeOptions{MinSkipBytes: 32}, rs)
		if err != nil {
			panic(fmt.Sprintf("E5b setup: %v", err))
		}
		withIdx, err := rig.Query("all", "//emergency", soe.Options{})
		if err != nil {
			panic(fmt.Sprintf("E5b: %v", err))
		}
		if err := rig.FreshCard(card.EGate, "all"); err != nil {
			panic(err)
		}
		noIdx, err := rig.Query("all", "//emergency", soe.Options{DisableSkip: true, DisableCopy: true})
		if err != nil {
			panic(fmt.Sprintf("E5b: %v", err))
		}
		speedup := float64(noIdx.Stats.Time.Total()) / float64(withIdx.Stats.Time.Total())
		t2.AddRow(
			fmt.Sprintf("%d", patients),
			kb(int64(rig.Info.StoredBytes)),
			fmt.Sprintf("%d/%d", withIdx.Stats.BlocksFetched, withIdx.Stats.BlocksTotal),
			ms(withIdx.Stats.Time.Total()),
			ms(noIdx.Stats.Time.Total()),
			fmt.Sprintf("%.1fx", speedup),
		)
	}
	return []*Table{t, t2}
}
