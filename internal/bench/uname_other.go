//go:build !linux

package bench

// osRelease has no portable stdlib source off linux; results record an
// empty os_release there (the field is additive and omitempty).
func osRelease() string { return "" }
