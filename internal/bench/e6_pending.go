package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/card"
	"repro/internal/docenc"
	"repro/internal/soe"
	"repro/internal/workload"
	"repro/internal/xmlstream"
)

// pendingDocument builds the E6 workload: sections whose delivery depends
// on a <grant/> marker. markerPos places the marker among the section's
// items (0.0 = first child: predicates resolve immediately; 1.0 = last
// child: the whole section is pending until its end). selectivity is the
// fraction of sections that carry the marker at all.
func pendingDocument(seed int64, sections, items int, markerPos, selectivity float64) *xmlstream.Node {
	rng := rand.New(rand.NewSource(seed))
	root := &xmlstream.Node{Name: "doc"}
	markerAt := int(markerPos * float64(items))
	if markerAt >= items {
		markerAt = items - 1
	}
	for s := 0; s < sections; s++ {
		sec := &xmlstream.Node{Name: "sec"}
		marked := rng.Float64() < selectivity
		for i := 0; i < items; i++ {
			if marked && i == markerAt {
				sec.Children = append(sec.Children, &xmlstream.Node{Name: "grant"})
			}
			sec.Children = append(sec.Children, &xmlstream.Node{
				Name: "item",
				Children: []*xmlstream.Node{
					{Name: "data", Children: []*xmlstream.Node{{Text: randomText(rng, 48)}}},
				},
			})
		}
		root.Children = append(root.Children, sec)
	}
	return root
}

// E6PendingBuffer measures the pending-rule machinery: how much candidate
// output the terminal buffers, and how group counts scale, as a function
// of where the deciding predicate child appears in the section and how
// selective it is. Expected shape: buffering grows linearly with the
// marker position (content before the marker must be withheld) and is
// unaffected by whether the section is eventually delivered — the cost is
// paid by UNCERTAINTY, not by the outcome.
func E6PendingBuffer() []*Table {
	t := &Table{
		ID:    "E6",
		Title: "terminal buffering under pending rules (+ //sec[grant], 30 sections x 20 items)",
		Columns: []string{"marker pos", "selectivity", "groups", "pending events",
			"pending KB", "delivered KB", "RAM peak"},
		Notes: []string{
			"pending: events/bytes the terminal held until the card resolved their group",
			"the SOE buffers nothing: pending state costs it only group records (see RAM peak)",
		},
	}
	for _, posFrac := range []float64{0.0, 0.25, 0.5, 0.75, 1.0} {
		for _, sel := range []float64{0.2, 0.8} {
			doc := pendingDocument(21, 30, 20, posFrac, sel)
			rs := workload.MustParseRules("subject u\ndefault -\n+ //sec[grant]")
			rig, err := NewPullRig(doc, fmt.Sprintf("e6-%v-%v", posFrac, sel),
				card.Modern, docenc.EncodeOptions{}, rs)
			if err != nil {
				panic(fmt.Sprintf("E6 setup: %v", err))
			}
			res, err := rig.Query("u", "", soe.Options{})
			if err != nil {
				panic(fmt.Sprintf("E6: %v", err))
			}
			delivered := int64(0)
			if res.Tree != nil {
				delivered = int64(len(res.Tree.TextContent()))
			}
			t.AddRow(
				fmt.Sprintf("%.0f%%", posFrac*100),
				fmt.Sprintf("%.0f%%", sel*100),
				fmt.Sprintf("%d", res.Stats.Session.Core.GroupsCreated),
				fmt.Sprintf("%d", res.Stats.PendingEvents),
				kb(res.Stats.PendingBytes),
				kb(delivered),
				fmt.Sprintf("%d", res.Stats.Session.RAMPeak),
			)
		}
	}
	return []*Table{t}
}
