package bench

// Machine-readable benchmark results — the contract every perf PR
// reports against. A run of cmd/sdsbench serializes one Result per
// invocation (committed as BENCH_<pr>.json at each PR), and Compare
// diffs two of them, gating CI on regressions.
//
// The contract distinguishes two metric classes by the Better field:
//
//   - Gated metrics ("higher"/"lower") are machine-stable: deterministic
//     byte counts from seeded workloads, ratios of two quantities
//     measured on the same machine in the same run (speedups, hit
//     rates, amplification factors). These are comparable across hosts
//     and are what -compare enforces.
//   - Informational metrics ("") are absolute wall-clock numbers —
//     meaningful within one run, not across machines. Compare reports
//     them but never fails on them.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"time"
)

// ResultSchema identifies the serialized format.
const ResultSchema = "sds-bench-result/v1"

// Metric is one measured value.
type Metric struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit"`
	Value float64 `json:"value"`
	// Better declares the improvement direction: "higher", "lower", or
	// empty for informational metrics that comparisons never gate on.
	Better string `json:"better,omitempty"`
}

// ExperimentResult is one experiment's slice of a run.
type ExperimentResult struct {
	ID      string   `json:"id"`
	Name    string   `json:"name"`
	WallMS  float64  `json:"wall_ms"`
	Failed  bool     `json:"failed,omitempty"`
	Metrics []Metric `json:"metrics"`
}

// Env captures where a run happened — enough to judge whether two
// result files are comparable at all.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Commit     string `json:"commit,omitempty"`
	// OSRelease is the kernel release (uname -r); empty where the
	// platform offers no cheap way to ask. Kernel-path metrics (the
	// sendfile cold serve) shift across kernel versions, so comparisons
	// want it on record. Additive: older result files simply lack it.
	OSRelease string `json:"os_release,omitempty"`
}

// Result is one sdsbench run.
type Result struct {
	Schema      string             `json:"schema"`
	Label       string             `json:"label,omitempty"`
	CreatedAt   time.Time          `json:"created_at"`
	Env         Env                `json:"env"`
	Experiments []ExperimentResult `json:"experiments"`
}

// NewResult starts a Result stamped with the current environment.
func NewResult(label, commit string) *Result {
	return &Result{
		Schema:    ResultSchema,
		Label:     label,
		CreatedAt: time.Now().UTC().Truncate(time.Second),
		Env: Env{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			Commit:     commit,
			OSRelease:  osRelease(),
		},
	}
}

// EncodeResult writes r as indented JSON (stable field order, trailing
// newline — a BENCH_*.json diff should be readable in review).
func EncodeResult(w io.Writer, r *Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeResult reads one result file, rejecting unknown schemas.
func DecodeResult(rd io.Reader) (*Result, error) {
	var r Result
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: decoding result: %w", err)
	}
	if r.Schema != ResultSchema {
		return nil, fmt.Errorf("bench: unknown result schema %q (want %q)", r.Schema, ResultSchema)
	}
	return &r, nil
}

// Recorder collects one experiment's metrics while its runner executes.
// A nil Recorder discards everything, so runners record unconditionally
// and the table-only callers (tests, benchmarks) pass nil.
type Recorder struct {
	metrics []Metric
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

func (r *Recorder) add(name, unit string, value float64, better string) {
	if r == nil {
		return
	}
	r.metrics = append(r.metrics, Metric{Name: name, Unit: unit, Value: value, Better: better})
}

// Record adds an informational metric (never gated by Compare).
func (r *Recorder) Record(name, unit string, value float64) {
	r.add(name, unit, value, "")
}

// RecordHigher adds a gated metric where larger is better.
func (r *Recorder) RecordHigher(name, unit string, value float64) {
	r.add(name, unit, value, "higher")
}

// RecordLower adds a gated metric where smaller is better.
func (r *Recorder) RecordLower(name, unit string, value float64) {
	r.add(name, unit, value, "lower")
}

// Metrics returns what was recorded, in recording order.
func (r *Recorder) Metrics() []Metric {
	if r == nil {
		return nil
	}
	return r.metrics
}

// Compare verdicts.
const (
	VerdictImproved  = "improved"
	VerdictOK        = "ok"
	VerdictRegressed = "regressed"
	VerdictNew       = "new"
	VerdictMissing   = "missing"
	VerdictInfo      = "info"
)

// CompareRow is one metric's old-vs-new outcome. Delta is the relative
// change in the metric's improvement direction: positive is better,
// negative is worse (NaN when undefined).
type CompareRow struct {
	Experiment string
	Metric     string
	Unit       string
	Old, New   float64
	Delta      float64
	Verdict    string
}

// CompareReport is the full diff of two result files.
type CompareReport struct {
	Threshold float64 // relative regression tolerance, e.g. 0.25
	OldLabel  string
	NewLabel  string
	Rows      []CompareRow
}

// Compare diffs two runs. Metrics are matched by (experiment id, metric
// name); only metrics with a Better direction can regress. threshold is
// the tolerated relative loss (0.25 = a gated metric may be up to 25%
// worse before the report fails).
func Compare(old, cur *Result, threshold float64) *CompareReport {
	rep := &CompareReport{Threshold: threshold, OldLabel: old.Label, NewLabel: cur.Label}
	type key struct{ exp, name string }
	oldM := make(map[key]Metric)
	oldSeen := make(map[key]bool)
	var oldKeys []key
	for _, e := range old.Experiments {
		for _, m := range e.Metrics {
			k := key{e.ID, m.Name}
			oldM[k] = m
			oldKeys = append(oldKeys, k)
		}
	}
	for _, e := range cur.Experiments {
		for _, m := range e.Metrics {
			k := key{e.ID, m.Name}
			om, ok := oldM[k]
			if !ok {
				rep.Rows = append(rep.Rows, CompareRow{
					Experiment: e.ID, Metric: m.Name, Unit: m.Unit,
					Old: math.NaN(), New: m.Value, Delta: math.NaN(), Verdict: VerdictNew,
				})
				continue
			}
			oldSeen[k] = true
			row := CompareRow{Experiment: e.ID, Metric: m.Name, Unit: m.Unit, Old: om.Value, New: m.Value}
			row.Delta = gain(om.Value, m.Value, m.Better)
			switch {
			case m.Better == "":
				row.Verdict = VerdictInfo
			case math.IsNaN(row.Delta) || row.Delta >= -threshold && row.Delta <= threshold:
				row.Verdict = VerdictOK
			case row.Delta > threshold:
				row.Verdict = VerdictImproved
			default:
				row.Verdict = VerdictRegressed
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	// A gated metric present in the baseline but absent from the new run
	// is a hole in the trajectory, not a pass.
	for _, k := range oldKeys {
		m := oldM[k]
		if oldSeen[k] || m.Better == "" {
			continue
		}
		rep.Rows = append(rep.Rows, CompareRow{
			Experiment: k.exp, Metric: k.name, Unit: m.Unit,
			Old: m.Value, New: math.NaN(), Delta: math.NaN(), Verdict: VerdictMissing,
		})
	}
	sort.SliceStable(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].Experiment != rep.Rows[j].Experiment {
			return rep.Rows[i].Experiment < rep.Rows[j].Experiment
		}
		return false // keep recording order within an experiment
	})
	return rep
}

// gain computes the relative improvement of new over old in the
// direction better. 0 means unchanged, +0.10 means 10% better, -0.10
// means 10% worse.
func gain(old, cur float64, better string) float64 {
	if old == 0 {
		if cur == 0 {
			return 0
		}
		return math.NaN()
	}
	rel := cur/old - 1
	if better == "lower" {
		rel = -rel
	}
	return rel
}

// Failed reports whether any gated metric regressed beyond the
// threshold or vanished from the new run.
func (r *CompareReport) Failed() bool {
	for _, row := range r.Rows {
		if row.Verdict == VerdictRegressed || row.Verdict == VerdictMissing {
			return true
		}
	}
	return false
}

// Fprint renders the report as an aligned table plus a one-line
// verdict.
func (r *CompareReport) Fprint(w io.Writer) {
	fmt.Fprintf(w, "comparing %s -> %s (threshold %.0f%%)\n\n",
		labelOr(r.OldLabel, "old"), labelOr(r.NewLabel, "new"), 100*r.Threshold)
	t := &Table{
		ID:      "compare",
		Title:   "gated metrics first, informational after",
		Columns: []string{"exp", "metric", "unit", "old", "new", "delta", "verdict"},
	}
	emit := func(gated bool) {
		for _, row := range r.Rows {
			isInfo := row.Verdict == VerdictInfo || row.Verdict == VerdictNew
			if gated == isInfo {
				continue
			}
			t.AddRow(row.Experiment, row.Metric, row.Unit,
				num(row.Old), num(row.New), delta(row.Delta), row.Verdict)
		}
	}
	emit(true)
	emit(false)
	t.Fprint(w)
	if r.Failed() {
		fmt.Fprintln(w, "FAIL: regression beyond threshold (or baseline metric missing)")
	} else {
		fmt.Fprintln(w, "OK: no gated metric regressed beyond threshold")
	}
}

func labelOr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func num(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.4g", v)
}

func delta(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", 100*v)
}
