package bench

import "testing"

// TestDecryptMicrobench runs the E10 decrypt table on its own (the full
// experiment smoke covers it too; this isolates the gated numbers).
func TestDecryptMicrobench(t *testing.T) {
	rec := NewRecorder()
	tab := e10Decrypt(rec)
	if len(tab.Rows) != 3 {
		t.Fatalf("want 3 run lengths, got %d", len(tab.Rows))
	}
	var allocs, ratio float64
	for _, m := range rec.Metrics() {
		t.Logf("%s = %.3f %s", m.Name, m.Value, m.Unit)
		switch m.Name {
		case "decrypt_allocs_per_block":
			allocs = m.Value
		case "batch_vs_serial_decrypt":
			ratio = m.Value
		}
	}
	if allocs > 1.0 {
		t.Errorf("decrypt_allocs_per_block = %.3f, want <= 1 (amortized path must not allocate per block)", allocs)
	}
	if ratio < 1.0 {
		t.Errorf("batch_vs_serial_decrypt = %.2fx, want >= 1 (batched path slower than per-call setup)", ratio)
	}
}
