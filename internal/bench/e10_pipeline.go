package bench

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/card"
	"repro/internal/docenc"
	"repro/internal/dsp"
	"repro/internal/fleet"
	"repro/internal/proxy"
	"repro/internal/secure"
	"repro/internal/workload"
)

// E10 measures the trusted half of the deployment under concurrency: the
// paper's architecture is "one SOE per client, untrusted store shared by
// all", so a portal serving many subjects needs (a) a pull path that
// does not pay one store round trip per block, and (b) a gateway that
// runs many card sessions at once. The experiment compares the
// historical serial terminal (one ReadBlock RTT per demanded block)
// against the prefetching two-stage pipeline (batched runs, overlapped
// with card evaluation), both alone and behind a card-fleet gateway as
// the number of concurrent subjects grows — all over real loopback TCP.
//
// Like E9 this is wall-clock by construction; the workload is seeded.

// e10Subjects are the fleet tenants; their rules span linear scans and
// skip-heavy profiles so the pipeline's speculation waste shows up.
var e10Subjects = []struct {
	name  string
	rules string
}{
	{"admin", "subject admin\ndefault +"},
	{"nurse", "subject nurse\ndefault +\n- //ssn\n- //report"},
	{"doctor", "subject doctor\ndefault +\n- //ssn"},
	{"emergency", "subject emergency\ndefault -\n+ //emergency\n+ //patient/name"},
	{"billing", "subject billing\ndefault -\n+ //patient/name\n+ //visit/date"},
	{"research", "subject research\ndefault -\n+ //diagnosis"},
	{"audit", "subject audit\ndefault +\n- //contact"},
	{"triage", "subject triage\ndefault -\n+ //emergency"},
}

const e10Doc = "e10-folder"

// E10Rig is a loopback DSP plus the published document and granted rule
// sets the gateway experiment needs.
type E10Rig struct {
	Addr string
	Key  secure.DocKey

	srv *dsp.Server
}

// NewE10Rig publishes the document and serves it over loopback TCP with
// the scaled server defaults.
func NewE10Rig() (*E10Rig, error) {
	store := dsp.NewMemStore()
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 1000, Patients: 30, VisitsPerPatient: 4})
	r := &E10Rig{Key: secure.KeyFromSeed(e10Doc)}
	pub := &proxy.Publisher{Store: store}
	if _, err := pub.PublishDocument(doc, docenc.EncodeOptions{
		DocID: e10Doc, Key: r.Key, BlockPlain: 256, MinSkipBytes: 32,
	}); err != nil {
		return nil, err
	}
	for _, s := range e10Subjects {
		rs := workload.MustParseRules(s.rules)
		rs.DocID = e10Doc
		if err := pub.GrantRules(r.Key, rs); err != nil {
			return nil, err
		}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	r.Addr = l.Addr().String()
	r.srv = dsp.NewServer(dsp.NewCache(store, 32<<20))
	go func() { _ = r.srv.Serve(l) }()
	return r, nil
}

// Close stops the server and waits for in-flight requests.
func (r *E10Rig) Close() { _ = r.srv.Close() }

// Gateway dials a fresh connection pool and fronts it with a card-fleet
// gateway at the given pipeline depth (0 = serial terminals).
func (r *E10Rig) Gateway(conns, prefetch int) (*fleet.Gateway, *dsp.Pool, error) {
	pool, err := dsp.DialPool(r.Addr, conns)
	if err != nil {
		return nil, nil, err
	}
	g, err := fleet.New(fleet.Config{
		Store:    pool,
		Keys:     fleet.FixedKeys(map[string]secure.DocKey{e10Doc: r.Key}),
		Profile:  card.Modern,
		Prefetch: prefetch,
	})
	if err != nil {
		pool.Close()
		return nil, nil, err
	}
	return g, pool, nil
}

// Hammer runs `subjects` concurrent tenants, each issuing `passes` full
// pull queries through the gateway, and returns aggregate queries per
// second, the total speculative waste, and every query's wall-clock
// latency (unsorted) for percentile reporting.
func (r *E10Rig) Hammer(g *fleet.Gateway, subjects, passes int) (qps float64, wasted int64, lats []time.Duration, err error) {
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		firstE error
	)
	lats = make([]time.Duration, subjects*passes)
	start := time.Now()
	for i := 0; i < subjects; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			subject := e10Subjects[i%len(e10Subjects)].name
			for p := 0; p < passes; p++ {
				qStart := time.Now()
				if _, err := g.Query(subject, e10Doc, ""); err != nil {
					mu.Lock()
					if firstE == nil {
						firstE = fmt.Errorf("subject %s: %w", subject, err)
					}
					mu.Unlock()
					return
				}
				lats[i*passes+p] = time.Since(qStart)
			}
		}(i)
	}
	wg.Wait()
	if firstE != nil {
		return 0, 0, nil, firstE
	}
	elapsed := time.Since(start).Seconds()
	for _, st := range g.Stats() {
		wasted += st.BlocksWasted
	}
	return float64(subjects*passes) / elapsed, wasted, lats, nil
}

// E10Pipeline compares the serial terminal against the prefetching
// pipeline, alone and at gateway fan-out, over loopback TCP. Recorded
// metrics: queries/s and p50/p99 query latency (informational — wall
// clock), pipelined-vs-serial speedup (gated ratio), and speculative
// waste in blocks (gated — deterministic for the seeded workload).
func E10Pipeline(rec *Recorder) []*Table {
	const passes = 6
	rig, err := NewE10Rig()
	if err != nil {
		panic(err)
	}
	defer rig.Close()

	// Table 1: one subject, pipeline depth sweep.
	t1 := &Table{
		ID:      "E10",
		Title:   "pull path: serial vs prefetching terminal (loopback TCP, one subject)",
		Columns: []string{"terminal", "queries/s", "blocks fetched", "wasted"},
		Notes: []string{
			"serial: one ReadBlock round trip per demanded block",
			"prefetch=K: batched K-block runs, fetch overlapped with card evaluation",
			"wall-clock measurement (real network server); workload is seeded",
		},
	}
	for _, k := range []int{0, 4, proxy.DefaultPrefetch, 16} {
		g, pool, err := rig.Gateway(1, k)
		if err != nil {
			panic(err)
		}
		qps, _, _, err := rig.Hammer(g, 1, passes)
		if err != nil {
			panic(err)
		}
		st := g.SubjectStats(e10Subjects[0].name)
		label := "serial"
		if k > 0 {
			label = fmt.Sprintf("prefetch=%d", k)
		}
		rec.Record(fmt.Sprintf("qps_%s", label), "q/s", qps)
		rec.RecordLower(fmt.Sprintf("fetched_%s", label), "blocks", float64(st.BlocksFetched))
		t1.AddRow(label, fmt.Sprintf("%.1f", qps),
			fmt.Sprintf("%d", st.BlocksFetched), fmt.Sprintf("%d", st.BlocksWasted))
		g.Close()
		pool.Close()
	}

	// Table 2: gateway throughput as concurrent subjects grow.
	t2 := &Table{
		ID:    "E10",
		Title: "card-fleet gateway aggregate query throughput vs concurrent subjects (loopback TCP)",
		Columns: []string{"subjects", "serial q/s", "pipelined q/s", "speedup",
			"wasted blocks"},
		Notes: []string{
			fmt.Sprintf("pipelined: prefetch=%d terminals behind the gateway; serial: prefetch=0", proxy.DefaultPrefetch),
			"each subject runs its own provisioned card; the store connection pool is shared",
		},
	}
	for _, subjects := range []int{1, 2, 4, 8} {
		gs, poolS, err := rig.Gateway(subjects, 0)
		if err != nil {
			panic(err)
		}
		serialQPS, _, _, err := rig.Hammer(gs, subjects, passes)
		if err != nil {
			panic(err)
		}
		gs.Close()
		poolS.Close()

		gp, poolP, err := rig.Gateway(subjects, proxy.DefaultPrefetch)
		if err != nil {
			panic(err)
		}
		pipedQPS, wasted, lats, err := rig.Hammer(gp, subjects, passes)
		if err != nil {
			panic(err)
		}
		gp.Close()
		poolP.Close()

		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rec.Record(fmt.Sprintf("serial_qps_subjects%d", subjects), "q/s", serialQPS)
		rec.Record(fmt.Sprintf("pipelined_qps_subjects%d", subjects), "q/s", pipedQPS)
		rec.Record(fmt.Sprintf("pipelined_p50_subjects%d", subjects), "ms",
			float64(pctile(lats, 50))/float64(time.Millisecond))
		rec.Record(fmt.Sprintf("pipelined_p99_subjects%d", subjects), "ms",
			float64(pctile(lats, 99))/float64(time.Millisecond))
		rec.RecordHigher(fmt.Sprintf("speedup_subjects%d", subjects), "x", pipedQPS/serialQPS)
		rec.RecordLower(fmt.Sprintf("wasted_subjects%d", subjects), "blocks", float64(wasted))

		t2.AddRow(
			fmt.Sprintf("%d", subjects),
			fmt.Sprintf("%.1f", serialQPS),
			fmt.Sprintf("%.1f", pipedQPS),
			fmt.Sprintf("%.1fx", pipedQPS/serialQPS),
			fmt.Sprintf("%d", wasted),
		)
	}

	// Table 3: the card-side decrypt microbenchmark behind the pipeline's
	// prepared runs (gated allocs/block and batch-vs-serial ratio).
	t3 := e10Decrypt(rec)
	return []*Table{t1, t2, t3}
}
