package bench

import (
	"fmt"

	"repro/internal/accessrule"
	"repro/internal/secure"
	"repro/internal/workload"
	"repro/internal/xmlstream"
)

// E8DynamicRules quantifies the paper's motivating claim: client-side
// evaluation "dissociat[es] access rights from encryption", so changing a
// sharing policy costs one re-sealed rule blob, whereas the classical
// server-encryption schemes ([1, 6] in the paper) key-partition the
// document by sharing configuration and must re-encrypt and re-key every
// subtree whose audience changes.
//
// The baseline is modelled faithfully to those schemes: nodes are grouped
// by authorization signature (the exact set of subjects permitted to read
// them); each group has its own key; a policy change re-encrypts every
// node whose signature changes and distributes each new group key to the
// group's audience.
func E8DynamicRules() []*Table {
	doc := workload.Agenda(workload.AgendaConfig{Seed: 9, Members: 20, EventsPerMember: 8})

	// The community's current policy.
	policies := map[string]string{
		"alice": "subject alice\ndefault +",
		"bob":   "subject bob\ndefault -\n+ /agenda\n- //phone\n- //notes",
		"carol": `subject carol` + "\n" + `default -` + "\n" + `+ //event[visibility = "public"]`,
		"dave":  `subject dave` + "\n" + `default -` + "\n" + `+ //member[@user = "user03"]`,
	}

	changes := []struct {
		name    string
		subject string
		newText string
	}{
		{"widen: bob gains //notes", "bob",
			"subject bob\ndefault -\n+ /agenda\n- //phone"},
		{"revoke: alice loses //phone", "alice",
			"subject alice\ndefault +\n- //phone"},
		{"exception: carol gains friends events", "carol",
			`subject carol` + "\n" + `default -` + "\n" + `+ //event[visibility = "public"]` + "\n" + `+ //event[visibility = "friends"]`},
		{"membership: eve joins (read-most profile)", "eve",
			"subject eve\ndefault -\n+ /agenda\n- //phone\n- //notes\n- //email"},
	}

	t := &Table{
		ID:    "E8",
		Title: "cost of one policy change: this system vs static encryption-per-subset",
		Columns: []string{"change", "rules KB (this system)", "re-encrypted KB (baseline)",
			"doc fraction", "keys re-distributed"},
		Notes: []string{
			"this system: bytes uploaded to the DSP = one sealed rule blob; the document is untouched",
			"baseline: subtree bytes whose audience changed, re-encrypted under fresh subset keys",
		},
	}

	for _, ch := range changes {
		before := decideAll(doc, policies)
		after := map[string]string{}
		for k, v := range policies {
			after[k] = v
		}
		after[ch.subject] = ch.newText
		afterDec := decideAll(doc, after)

		// This system's cost: the new sealed blob.
		rs := workload.MustParseRules(ch.newText)
		rs.DocID = "agenda"
		rs.Version = 2
		plain, err := rs.MarshalBinary()
		if err != nil {
			panic(err)
		}
		sealed, err := secure.EncryptBlob(secure.KeyFromSeed("e8"), "agenda|"+ch.subject, 0, plain)
		if err != nil {
			panic(err)
		}

		reenc, totalBytes, keys := baselineCost(doc, before, afterDec)
		t.AddRow(
			ch.name,
			fmt.Sprintf("%.2f", float64(len(sealed))/1024),
			kb(reenc),
			pct(float64(reenc), float64(totalBytes)),
			fmt.Sprintf("%d", keys),
		)
	}
	return []*Table{t}
}

// decideAll evaluates every subject's policy over the document.
func decideAll(doc *xmlstream.Node, policies map[string]string) map[string]map[*xmlstream.Node]accessrule.Sign {
	sets := make(map[string]*accessrule.RuleSet, len(policies))
	for subject, text := range policies {
		sets[subject] = workload.MustParseRules(text)
	}
	return decideSets(doc, sets)
}

// decideSets evaluates parsed policies over the document.
func decideSets(doc *xmlstream.Node, policies map[string]*accessrule.RuleSet) map[string]map[*xmlstream.Node]accessrule.Sign {
	out := make(map[string]map[*xmlstream.Node]accessrule.Sign, len(policies))
	for subject, rs := range policies {
		out[subject] = accessrule.Decide(doc, rs)
	}
	return out
}

// PolicyChangeCost quantifies one subject's policy change both ways: the
// bytes this system uploads (one sealed rule blob) and the bytes the
// static encryption-per-subset baseline re-encrypts. Used by the E8
// benchmark kernel.
func PolicyChangeCost(doc *xmlstream.Node, before, after map[string]*accessrule.RuleSet, changed string) (ours, baseline int64) {
	rs := after[changed]
	plain, err := rs.MarshalBinary()
	if err != nil {
		panic(err)
	}
	sealed, err := secure.EncryptBlob(secure.KeyFromSeed("e8"), "doc|"+changed, 0, plain)
	if err != nil {
		panic(err)
	}
	reenc, _, _ := baselineCost(doc, decideSets(doc, before), decideSets(doc, after))
	return int64(len(sealed)), reenc
}

// baselineCost computes the static scheme's re-encryption bill: bytes of
// nodes whose audience signature changed, total document bytes, and the
// number of (key, subject) distributions the new groups require.
func baselineCost(doc *xmlstream.Node, before, after map[string]map[*xmlstream.Node]accessrule.Sign) (reencrypted, total int64, keyDistributions int) {
	subjects := make([]string, 0, len(after))
	for s := range after {
		subjects = append(subjects, s)
	}
	// Include joining/leaving subjects in the signature space.
	for s := range before {
		if _, ok := after[s]; !ok {
			subjects = append(subjects, s)
		}
	}

	sig := func(dec map[string]map[*xmlstream.Node]accessrule.Sign, n *xmlstream.Node) string {
		out := make([]byte, len(subjects))
		for i, s := range subjects {
			if d, ok := dec[s]; ok && d[n] == accessrule.Permit {
				out[i] = '1'
			} else {
				out[i] = '0'
			}
		}
		return string(out)
	}

	changedSigs := map[string]bool{}
	var walk func(n *xmlstream.Node)
	walk = func(n *xmlstream.Node) {
		if n.IsText() {
			return
		}
		bytes := nodeOwnBytes(n)
		total += bytes
		sb, sa := sig(before, n), sig(after, n)
		if sb != sa {
			reencrypted += bytes
			changedSigs[sa] = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(doc)

	for s := range changedSigs {
		for _, c := range s {
			if c == '1' {
				keyDistributions++
			}
		}
	}
	return reencrypted, total, keyDistributions
}

// nodeOwnBytes approximates a node's own stored footprint: its tags plus
// its direct text (children counted on their own).
func nodeOwnBytes(n *xmlstream.Node) int64 {
	b := int64(2*len(n.Name) + 5)
	for _, c := range n.Children {
		if c.IsText() {
			b += int64(len(c.Text))
		}
	}
	return b
}
