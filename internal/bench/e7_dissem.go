package bench

import (
	"fmt"

	"repro/internal/card"
	"repro/internal/dissem"
	"repro/internal/docenc"
	"repro/internal/secure"
	"repro/internal/soe"
	"repro/internal/workload"
)

// E7Dissemination evaluates the push scenario: a rated media stream
// broadcast to subscribers whose cards enforce different parental-control
// profiles. Reported per subscriber: how much of the broadcast its card
// had to handle, the simulated processing time, the sustainable stream
// rate, and whether an e-gate-class card keeps up with the broadcast in
// real time — the demo's "response time requirements (user patience /
// real time)" axis.
func E7Dissemination() []*Table {
	// Parental-control profiles keyed on the segment's @rating attribute:
	// attributes precede content, so the card settles each segment's fate
	// before its payload and can skip what it must not (or need not)
	// deliver. The same rules written against meta/rating would stay
	// pending across the whole segment — measured as the last row.
	profiles := map[string]string{
		"child":      "subject child\ndefault -\n+ //segment[@rating = \"all\"]",
		"teen":       "subject teen\ndefault +\n- //segment[@rating = \"adult\"]",
		"adult":      "subject adult\ndefault +",
		"child-elem": "subject child-elem\ndefault -\n+ //segment[meta/rating = \"all\"]",
	}

	t := &Table{
		ID:    "E7",
		Title: "selective dissemination of a rated stream (120 segments, 256-byte payloads, e-gate cards)",
		Columns: []string{"subscriber", "blocks fwd", "delivered segs", "sim time",
			"stream KB/s", "realtime @2KB/s"},
		Notes: []string{
			"blocks fwd: broadcast blocks the terminal actually forwarded to the card",
			"stream KB/s: broadcast rate the card sustains (stored size / simulated processing time)",
			"realtime: sustains at least the 2 KB/s the e-gate link delivers",
		},
	}

	doc := workload.MediaStream(workload.StreamConfig{Seed: 3, Segments: 120, PayloadBytes: 256})
	key := secure.KeyFromSeed("e7-stream")
	container, _, err := docenc.Encode(doc, docenc.EncodeOptions{
		DocID: "stream", Key: key, MinSkipBytes: 32,
	})
	if err != nil {
		panic(fmt.Sprintf("E7: %v", err))
	}

	var subs []*dissem.Subscriber
	subjects := map[string]string{}
	for _, name := range []string{"child", "teen", "adult", "child-elem"} {
		c := card.New(card.EGate)
		if err := c.PutKey("stream", key); err != nil {
			panic(err)
		}
		rs := workload.MustParseRules(profiles[name])
		rs.DocID = "stream"
		plain, err := rs.MarshalBinary()
		if err != nil {
			panic(err)
		}
		sealed, err := secure.EncryptBlob(key, card.RuleBlobNamespace("stream", rs.Subject), 0, plain)
		if err != nil {
			panic(err)
		}
		if err := c.PutSealedRuleSet("stream", rs.Subject, sealed); err != nil {
			panic(err)
		}
		subs = append(subs, dissem.NewSubscriber(name, c, nil, soe.Options{}))
		subjects[name] = name
	}

	receptions, err := dissem.BroadcastPerSubject(container, subjects, subs)
	if err != nil {
		panic(fmt.Sprintf("E7: %v", err))
	}
	stored := int64(container.StoredSize())
	for _, r := range receptions {
		delivered := 0
		if r.Tree != nil {
			delivered = len(r.Tree.Find("segment"))
		}
		simT := r.Time.Total()
		rate := "-"
		realtime := "-"
		if simT > 0 {
			bps := float64(stored) / simT.Seconds()
			rate = fmt.Sprintf("%.1f", bps/1024)
			if bps >= 2048 {
				realtime = "yes"
			} else {
				realtime = "no"
			}
		}
		t.AddRow(
			r.Subscriber,
			fmt.Sprintf("%d/%d", r.BlocksForwarded, r.BlocksOffered),
			fmt.Sprintf("%d", delivered),
			ms(simT),
			rate,
			realtime,
		)
	}

	// Payload-size sweep: where does an e-gate stop being a real-time
	// filter? (The demo streamed video METADATA-rated segments; raw video
	// at full rate cannot cross a 2 KB/s link.)
	t2 := &Table{
		ID:      "E7b",
		Title:   "real-time feasibility vs segment payload (teen profile, e-gate)",
		Columns: []string{"payload bytes", "stored KB", "sim time", "sustainable KB/s"},
	}
	for _, payload := range []int{64, 256, 1024, 4096} {
		doc := workload.MediaStream(workload.StreamConfig{Seed: 3, Segments: 60, PayloadBytes: payload})
		key := secure.KeyFromSeed(fmt.Sprintf("e7b-%d", payload))
		container, _, err := docenc.Encode(doc, docenc.EncodeOptions{
			DocID: "stream", Key: key, MinSkipBytes: 32,
		})
		if err != nil {
			panic(err)
		}
		c := card.New(card.EGate)
		if err := c.PutKey("stream", key); err != nil {
			panic(err)
		}
		rs := workload.MustParseRules(profiles["teen"])
		rs.DocID = "stream"
		plain, _ := rs.MarshalBinary()
		sealed, _ := secure.EncryptBlob(key, card.RuleBlobNamespace("stream", "teen"), 0, plain)
		if err := c.PutSealedRuleSet("stream", "teen", sealed); err != nil {
			panic(err)
		}
		sub := dissem.NewSubscriber("teen", c, nil, soe.Options{})
		recs, err := dissem.Broadcast(container, "teen", []*dissem.Subscriber{sub})
		if err != nil {
			panic(err)
		}
		simT := recs[0].Time.Total()
		rate := float64(container.StoredSize()) / simT.Seconds() / 1024
		t2.AddRow(
			fmt.Sprintf("%d", payload),
			kb(int64(container.StoredSize())),
			ms(simT),
			fmt.Sprintf("%.1f", rate),
		)
	}
	return []*Table{t, t2}
}
