package bench

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/docenc"
	"repro/internal/dsp"
	"repro/internal/secure"
)

// E12 opens the durability axis: what does surviving kill -9 cost the
// DSP's write path, and what did promoting the old rewrite-everything
// file store to a WAL buy? Three questions, three tables:
//
//  1. throughput — publish / 1-block delta re-publish / read against
//     MemStore (the ceiling), the WAL store, and the WAL store without
//     fsync (isolating the disk barrier from the logging logic);
//  2. write amplification — bytes that hit the disk per 1-block delta
//     commit: the retired sdsctl file store rewrote the entire store
//     image each time (O(store)), the WAL appends one block run plus a
//     commit record (O(changed bytes));
//  3. recovery — reopen (replay) wall time as the log grows, and after
//     a checkpoint absorbs it.
//
// The containers are synthetic (the store never inspects ciphertext),
// so the numbers isolate the storage tier from the crypto pipeline.

const (
	e12BlockPlain = 1024
	e12NumBlocks  = 64
	e12Docs       = 16
)

// e12Container builds a fake container of the E12 geometry with every
// block stamped by (doc, version).
func e12Container(docID string, version uint32) *docenc.Container {
	h := docenc.Header{DocID: docID, Version: version, BlockPlain: e12BlockPlain,
		PayloadLen: e12BlockPlain * e12NumBlocks}
	c := &docenc.Container{Header: h}
	for i := 0; i < e12NumBlocks; i++ {
		b := bytes.Repeat([]byte{byte(version)}, e12BlockPlain+secure.MACLen)
		binary.BigEndian.PutUint32(b, version)
		c.Blocks = append(c.Blocks, b)
	}
	return c
}

// e12Publish puts e12Docs documents at version 1.
func e12Publish(s dsp.Store) error {
	for d := 0; d < e12Docs; d++ {
		if err := s.PutDocument(e12Container(fmt.Sprintf("e12-%d", d), 1)); err != nil {
			return err
		}
	}
	return nil
}

// e12DeltaRound pushes a 1-block delta (the block-level minimum a real
// edit produces) to every document, bumping it to version v.
func e12DeltaRound(s dsp.Store, v uint32) error {
	up, ok := s.(dsp.DocUpdater)
	if !ok {
		return dsp.ErrUpdateUnsupported
	}
	for d := 0; d < e12Docs; d++ {
		c := e12Container(fmt.Sprintf("e12-%d", d), v)
		token, err := up.BeginUpdate(c.Header, v-1)
		if err != nil {
			return err
		}
		if err := up.PutBlocks(token, int(v)%e12NumBlocks, c.Blocks[:1]); err != nil {
			return err
		}
		if err := up.CommitUpdate(token); err != nil {
			return err
		}
	}
	return nil
}

// E12Seed publishes the E12 corpus (the fixture behind the root
// BenchmarkE12DurableRepublish).
func E12Seed(s dsp.Store) error { return e12Publish(s) }

// E12CommitRound pushes one 1-block delta commit per E12 document at
// version v and returns how many commits that was.
func E12CommitRound(s dsp.Store, v uint32) (int64, error) {
	if err := e12DeltaRound(s, v); err != nil {
		return 0, err
	}
	return e12Docs, nil
}

// e12ConcurrentDeltas drives 1-block delta commits from `writers`
// concurrent goroutines (each owning its own documents, so no version
// conflicts), versions [from, from+rounds). This is the shape that lets
// group commit batch several commits under one fsync barrier.
func e12ConcurrentDeltas(s dsp.Store, writers, rounds int, from uint32) error {
	up, ok := s.(dsp.DocUpdater)
	if !ok {
		return dsp.ErrUpdateUnsupported
	}
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := from; v < from+uint32(rounds); v++ {
				for d := w; d < e12Docs; d += writers {
					c := e12Container(fmt.Sprintf("e12-%d", d), v)
					token, err := up.BeginUpdate(c.Header, v-1)
					if err != nil {
						errCh <- err
						return
					}
					if err := up.PutBlocks(token, int(v)%e12NumBlocks, c.Blocks[:1]); err != nil {
						errCh <- err
						return
					}
					if err := up.CommitUpdate(token); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// e12ReadAll reads every block of every document once, batched.
func e12ReadAll(s dsp.Store) error {
	for d := 0; d < e12Docs; d++ {
		if _, err := dsp.ReadBlockRange(s, fmt.Sprintf("e12-%d", d), 0, e12NumBlocks); err != nil {
			return err
		}
	}
	return nil
}

// e12ImageBytes is what one commit cost the retired sdsctl file store:
// a rewrite of the full marshaled store image.
func e12ImageBytes(s dsp.Store) (int64, error) {
	ids, err := s.ListDocuments()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, id := range ids {
		h, err := s.Header(id)
		if err != nil {
			return 0, err
		}
		blocks, err := dsp.ReadBlockRange(s, id, 0, h.NumBlocks())
		if err != nil {
			return 0, err
		}
		img, err := (&docenc.Container{Header: h, Blocks: blocks}).MarshalBinary()
		if err != nil {
			return 0, err
		}
		total += int64(len(img))
	}
	return total, nil
}

type e12Backend struct {
	name  string
	open  func() (dsp.Store, func(), error)
	stats func(dsp.Store) *dsp.FileStoreStats
}

func e12Backends() []e12Backend {
	fileBackend := func(name string, opts dsp.FileStoreOptions) e12Backend {
		return e12Backend{
			name: name,
			open: func() (dsp.Store, func(), error) {
				dir, err := os.MkdirTemp("", "e12-*")
				if err != nil {
					return nil, nil, err
				}
				fs, err := dsp.NewFileStoreOptions(dir, opts)
				if err != nil {
					_ = os.RemoveAll(dir)
					return nil, nil, err
				}
				return fs, func() { _ = fs.Close(); _ = os.RemoveAll(dir) }, nil
			},
			stats: func(s dsp.Store) *dsp.FileStoreStats {
				st := s.(*dsp.FileStore).Stats()
				return &st
			},
		}
	}
	return []e12Backend{
		{name: "mem", open: func() (dsp.Store, func(), error) {
			return dsp.NewMemStore(), func() {}, nil
		}, stats: func(dsp.Store) *dsp.FileStoreStats { return nil }},
		fileBackend("wal", dsp.FileStoreOptions{}),
		fileBackend("wal-nosync", dsp.FileStoreOptions{NoSync: true}),
	}
}

// E12DurableThroughput compares the write and read paths across
// backends and reports the disk cost per 1-block delta commit.
// Recorded metrics: appended bytes and fsyncs per commit and the
// amplification advantage (gated — deterministic record sizes and
// ratios); wall times are informational.
func E12DurableThroughput(rec *Recorder) (*Table, *Table) {
	const deltaRounds = 8
	tp := &Table{
		ID:    "E12",
		Title: "durable store cost: MemStore vs WAL-backed FileStore",
		Columns: []string{"store", "publish ms", "delta-republish ms", "read ms",
			"fsyncs/commit", "KB appended/commit"},
		Notes: []string{
			fmt.Sprintf("%d docs × %d blocks × %dB; delta = 1 changed block per document per round",
				e12Docs, e12NumBlocks, e12BlockPlain),
			"wal-nosync isolates the fsync barrier from the logging logic",
			"fsyncs/commit: serial commits pay one barrier each (≈1); concurrent committers share barriers via group commit (< 1)",
			"wall-clock measurement (real files in TMPDIR)",
		},
	}
	amp := &Table{
		ID:      "E12",
		Title:   "write amplification per 1-block delta commit",
		Columns: []string{"store", "bytes to disk", "vs image rewrite", "WAL advantage"},
	}
	for _, be := range e12Backends() {
		s, cleanup, err := be.open()
		if err != nil {
			panic(err)
		}
		start := time.Now()
		if err := e12Publish(s); err != nil {
			panic(err)
		}
		publishWall := time.Since(start)

		var beforeApp, beforeSync int64
		if st := be.stats(s); st != nil {
			beforeApp, beforeSync = st.AppendedBytes, st.Syncs
		}
		var memBefore, memAfter runtime.MemStats
		runtime.ReadMemStats(&memBefore)
		start = time.Now()
		for v := uint32(2); v < 2+deltaRounds; v++ {
			if err := e12DeltaRound(s, v); err != nil {
				panic(err)
			}
		}
		deltaWall := time.Since(start)
		runtime.ReadMemStats(&memAfter)
		commits := int64(deltaRounds * e12Docs)
		commitAllocs := float64(memAfter.Mallocs-memBefore.Mallocs) / float64(commits)
		var perCommitBytes, perCommitSyncs float64
		if st := be.stats(s); st != nil {
			perCommitBytes = float64(st.AppendedBytes-beforeApp) / float64(commits)
			perCommitSyncs = float64(st.Syncs-beforeSync) / float64(commits)
		}

		start = time.Now()
		if err := e12ReadAll(s); err != nil {
			panic(err)
		}
		readWall := time.Since(start)

		fsyncCell, appendCell := "-", "-"
		if be.stats(s) != nil {
			fsyncCell = fmt.Sprintf("%.2f", perCommitSyncs)
			appendCell = fmt.Sprintf("%.2f", perCommitBytes/1024)
		}
		tp.AddRow(be.name, ms(publishWall), ms(deltaWall), ms(readWall), fsyncCell, appendCell)
		rec.Record(fmt.Sprintf("publish_ms_%s", be.name), "ms", float64(publishWall)/float64(time.Millisecond))
		rec.Record(fmt.Sprintf("delta_ms_%s", be.name), "ms", float64(deltaWall)/float64(time.Millisecond))
		rec.Record(fmt.Sprintf("read_ms_%s", be.name), "ms", float64(readWall)/float64(time.Millisecond))

		if be.stats(s) != nil {
			imageBytes, err := e12ImageBytes(s)
			if err != nil {
				panic(err)
			}
			amp.AddRow(be.name,
				fmt.Sprintf("%.1f KB", perCommitBytes/1024),
				fmt.Sprintf("%.1f KB", float64(imageBytes)/1024),
				fmt.Sprintf("%.0fx less", float64(imageBytes)/perCommitBytes))
			rec.RecordLower(fmt.Sprintf("commit_bytes_%s", be.name), "B", perCommitBytes)
			rec.RecordLower(fmt.Sprintf("fsyncs_per_commit_%s", be.name), "fsyncs", perCommitSyncs)
			// Heap allocations per 1-block delta commit, process-wide
			// (includes the group committer). The delta is dominated by the
			// container build in e12Container, but the WAL append path rides
			// on top — a regression there (per-record marshaling garbage,
			// lost buffer reuse) moves this number, so it is gated.
			rec.RecordLower(fmt.Sprintf("commit_allocs_%s", be.name), "allocs", commitAllocs)
			rec.RecordHigher(fmt.Sprintf("amplification_advantage_%s", be.name), "x",
				float64(imageBytes)/perCommitBytes)
		}

		// With real fsyncs and concurrent committers, group commit
		// shares barriers — the fsyncs/commit column drops below 1.
		if be.name == "wal" {
			const writers = 8
			st := be.stats(s)
			beforeApp, beforeSync = st.AppendedBytes, st.Syncs
			start = time.Now()
			if err := e12ConcurrentDeltas(s, writers, deltaRounds, 2+deltaRounds); err != nil {
				panic(err)
			}
			wall := time.Since(start)
			st = be.stats(s)
			concSyncs := float64(st.Syncs-beforeSync) / float64(commits)
			tp.AddRow(fmt.Sprintf("wal ×%d writers", writers), "-", ms(wall), "-",
				fmt.Sprintf("%.2f", concSyncs),
				fmt.Sprintf("%.2f", float64(st.AppendedBytes-beforeApp)/float64(commits)/1024))
			// Informational: how much the committers overlap (and so how
			// many barriers they share) depends on disk latency.
			rec.Record("concurrent_delta_ms", "ms", float64(wall)/float64(time.Millisecond))
			rec.Record("concurrent_fsyncs_per_commit", "fsyncs", concSyncs)
			if st.SyncRounds > 0 {
				rec.Record("group_commit_batching", "commits/round",
					float64(st.SyncWaits)/float64(st.SyncRounds))
			}
		}
		cleanup()
	}
	amp.Notes = []string{
		"image rewrite: what the retired sdsctl file store fsynced per commit (the whole store)",
		"WAL: one block run + one commit record — O(changed bytes), independent of store size",
	}
	return tp, amp
}

// E12Recovery measures reopen (replay) time as the log grows, then
// after a checkpoint absorbs it. Log sizes are gated (deterministic
// record framing); replay wall times are informational.
func E12Recovery(rec *Recorder) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "recovery time vs log size",
		Columns: []string{"delta commits in log", "log KB", "replay ms", "after checkpoint ms"},
		Notes: []string{
			"replay: NewFileStore on the directory left by an abrupt stop (no checkpoint)",
			"after checkpoint: the same state reopened once a checkpoint absorbed the log",
			"wall-clock measurement (real files in TMPDIR)",
		},
	}
	for _, rounds := range []int{4, 16, 64} {
		dir, err := os.MkdirTemp("", "e12rec-*")
		if err != nil {
			return nil, err
		}
		fs, err := dsp.NewFileStoreOptions(dir, dsp.FileStoreOptions{NoSync: true})
		if err != nil {
			return nil, err
		}
		if err := e12Publish(fs); err != nil {
			return nil, err
		}
		for v := uint32(2); v < uint32(2+rounds); v++ {
			if err := e12DeltaRound(fs, v); err != nil {
				return nil, err
			}
		}
		logBytes := fs.Stats().WALBytes
		if err := fs.Close(); err != nil {
			return nil, err
		}

		start := time.Now()
		r, err := dsp.NewFileStore(dir)
		if err != nil {
			return nil, err
		}
		replayWall := time.Since(start)
		if err := r.Checkpoint(); err != nil {
			return nil, err
		}
		if err := r.Close(); err != nil {
			return nil, err
		}
		start = time.Now()
		r2, err := dsp.NewFileStore(dir)
		if err != nil {
			return nil, err
		}
		ckptWall := time.Since(start)
		_ = r2.Close()
		_ = os.RemoveAll(dir)

		t.AddRow(fmt.Sprintf("%d", rounds*e12Docs), kb(logBytes), ms(replayWall), ms(ckptWall))
		rec.RecordLower(fmt.Sprintf("log_bytes_commits%d", rounds*e12Docs), "B", float64(logBytes))
		rec.Record(fmt.Sprintf("replay_ms_commits%d", rounds*e12Docs), "ms",
			float64(replayWall)/float64(time.Millisecond))
		rec.Record(fmt.Sprintf("post_checkpoint_ms_commits%d", rounds*e12Docs), "ms",
			float64(ckptWall)/float64(time.Millisecond))
	}
	return t, nil
}

// E12DurableStore runs the full durability experiment.
func E12DurableStore(rec *Recorder) []*Table {
	tp, amp := E12DurableThroughput(rec)
	trec, err := E12Recovery(rec)
	if err != nil {
		panic(err)
	}
	return []*Table{tp, amp, trec}
}
