package bench

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

func sampleResult(label string, speedup, bytesOnWire, wallMS float64) *Result {
	r := NewResult(label, "abc1234")
	rec := NewRecorder()
	rec.RecordHigher("speedup", "x", speedup)
	rec.RecordLower("wire_bytes", "B", bytesOnWire)
	rec.Record("wall", "ms", wallMS)
	r.Experiments = append(r.Experiments, ExperimentResult{
		ID: "E9", Name: "demo", WallMS: wallMS, Metrics: rec.Metrics(),
	})
	return r
}

func TestResultRoundTrip(t *testing.T) {
	r := sampleResult("PR6", 3.5, 120000, 250)
	var buf bytes.Buffer
	if err := EncodeResult(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Error("encoded result must end in a newline")
	}
	got, err := DecodeResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Errorf("round trip mismatch:\nwant %+v\ngot  %+v", r, got)
	}
}

// TestEnvOSReleaseAdditive: os_release is recorded where the platform
// exposes it, and result files written before the field existed still
// decode (the field is additive).
func TestEnvOSReleaseAdditive(t *testing.T) {
	r := NewResult("lbl", "")
	if runtime.GOOS == "linux" && r.Env.OSRelease == "" {
		t.Error("linux run recorded no os_release")
	}
	old := `{"schema":"sds-bench-result/v1","created_at":"2026-01-01T00:00:00Z",` +
		`"env":{"go_version":"go1.24","goos":"linux","goarch":"amd64","gomaxprocs":4,"num_cpu":4},` +
		`"experiments":[]}`
	got, err := DecodeResult(strings.NewReader(old))
	if err != nil {
		t.Fatalf("pre-os_release file rejected: %v", err)
	}
	if got.Env.OSRelease != "" {
		t.Fatalf("old file grew an os_release: %q", got.Env.OSRelease)
	}
}

func TestDecodeRejectsUnknownSchema(t *testing.T) {
	if _, err := DecodeResult(strings.NewReader(`{"schema":"bogus/v9"}`)); err == nil {
		t.Fatal("unknown schema accepted")
	}
	if _, err := DecodeResult(strings.NewReader(`not json`)); err == nil {
		t.Fatal("malformed input accepted")
	}
}

func TestNilRecorderDiscards(t *testing.T) {
	var rec *Recorder
	rec.Record("a", "x", 1)
	rec.RecordHigher("b", "x", 2)
	rec.RecordLower("c", "x", 3)
	if m := rec.Metrics(); m != nil {
		t.Fatalf("nil recorder kept metrics: %v", m)
	}
}

func compareVerdict(t *testing.T, rep *CompareReport, metric, want string) {
	t.Helper()
	for _, row := range rep.Rows {
		if row.Metric == metric {
			if row.Verdict != want {
				t.Errorf("%s: verdict %s, want %s (delta %.3f)", metric, row.Verdict, want, row.Delta)
			}
			return
		}
	}
	t.Errorf("metric %s missing from report", metric)
}

func TestCompareVerdicts(t *testing.T) {
	old := sampleResult("old", 3.0, 100000, 200)

	t.Run("improvement", func(t *testing.T) {
		rep := Compare(old, sampleResult("new", 4.5, 60000, 400), 0.25)
		compareVerdict(t, rep, "speedup", VerdictImproved)
		compareVerdict(t, rep, "wire_bytes", VerdictImproved)
		compareVerdict(t, rep, "wall", VerdictInfo) // doubled, but informational
		if rep.Failed() {
			t.Error("improvement reported as failure")
		}
	})

	t.Run("within-noise", func(t *testing.T) {
		rep := Compare(old, sampleResult("new", 2.8, 108000, 200), 0.25)
		compareVerdict(t, rep, "speedup", VerdictOK)
		compareVerdict(t, rep, "wire_bytes", VerdictOK)
		if rep.Failed() {
			t.Error("within-noise change reported as failure")
		}
	})

	t.Run("regression", func(t *testing.T) {
		rep := Compare(old, sampleResult("new", 1.5, 100000, 200), 0.25)
		compareVerdict(t, rep, "speedup", VerdictRegressed)
		if !rep.Failed() {
			t.Error("regression not reported as failure")
		}
	})

	t.Run("missing-gated-metric", func(t *testing.T) {
		cur := sampleResult("new", 3.0, 100000, 200)
		cur.Experiments[0].Metrics = cur.Experiments[0].Metrics[:1] // drop wire_bytes + wall
		rep := Compare(old, cur, 0.25)
		compareVerdict(t, rep, "wire_bytes", VerdictMissing)
		if !rep.Failed() {
			t.Error("missing gated metric not reported as failure")
		}
	})

	t.Run("new-metric", func(t *testing.T) {
		cur := sampleResult("new", 3.0, 100000, 200)
		cur.Experiments[0].Metrics = append(cur.Experiments[0].Metrics,
			Metric{Name: "fresh", Unit: "x", Value: 1, Better: "higher"})
		rep := Compare(old, cur, 0.25)
		compareVerdict(t, rep, "fresh", VerdictNew)
		if rep.Failed() {
			t.Error("new metric reported as failure")
		}
	})

	t.Run("zero-baseline", func(t *testing.T) {
		z := sampleResult("old", 3.0, 0, 200)
		rep := Compare(z, sampleResult("new", 3.0, 50, 200), 0.25)
		compareVerdict(t, rep, "wire_bytes", VerdictOK) // 0 -> 50: undefined ratio, not a gate
	})
}

// TestCompareFixtures runs the -compare engine over the checked-in
// fixture files — the injected-regression case the CI gate must catch,
// plus its passing counterpart.
func TestCompareFixtures(t *testing.T) {
	load := func(name string) *Result {
		f, err := os.Open(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		r, err := DecodeResult(f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return r
	}
	base := load("compare_base.json")
	if rep := Compare(base, load("compare_ok.json"), 0.25); rep.Failed() {
		t.Error("compare_ok fixture failed against the base")
	}
	rep := Compare(base, load("compare_regressed.json"), 0.25)
	if !rep.Failed() {
		t.Fatal("injected regression not detected")
	}
	var buf bytes.Buffer
	rep.Fprint(&buf)
	if !strings.Contains(buf.String(), "FAIL") {
		t.Errorf("report lacks FAIL verdict:\n%s", buf.String())
	}
}

func TestGain(t *testing.T) {
	cases := []struct {
		old, cur float64
		better   string
		want     float64
	}{
		{100, 110, "higher", 0.10},
		{100, 90, "higher", -0.10},
		{100, 90, "lower", 0.10},
		{100, 110, "lower", -0.10},
		{100, 100, "higher", 0},
		{0, 0, "lower", 0},
	}
	for _, c := range cases {
		if got := gain(c.old, c.cur, c.better); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("gain(%v, %v, %s) = %v, want %v", c.old, c.cur, c.better, got, c.want)
		}
	}
	if !math.IsNaN(gain(0, 5, "lower")) {
		t.Error("gain from a zero baseline must be NaN")
	}
}
